// Quickstart: build a small dataflow graph through the public API, run the
// complete flow (schedule -> bind -> distributed controllers -> baselines ->
// area + latency), and print the paper-style reports.
//
//   $ ./quickstart
#include <iostream>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "dfg/dot.hpp"
#include "dfg/graph.hpp"
#include "fsm/machine.hpp"

int main() {
  using namespace tauhls;

  // y = (a*b + c*d) * e  -- two concurrent multiplications, an addition,
  // and a dependent final multiplication.
  dfg::Dfg g("quickstart");
  const dfg::NodeId a = g.addInput("a");
  const dfg::NodeId b = g.addInput("b");
  const dfg::NodeId c = g.addInput("c");
  const dfg::NodeId d = g.addInput("d");
  const dfg::NodeId e = g.addInput("e");
  const dfg::NodeId m1 = g.addOp(dfg::OpKind::Mul, {a, b}, "m1");
  const dfg::NodeId m2 = g.addOp(dfg::OpKind::Mul, {c, d}, "m2");
  const dfg::NodeId s1 = g.addOp(dfg::OpKind::Add, {m1, m2}, "s1");
  const dfg::NodeId m3 = g.addOp(dfg::OpKind::Mul, {s1, e}, "m3");
  g.markOutput(m3);

  core::FlowConfig cfg;
  cfg.allocation = {{dfg::ResourceClass::Multiplier, 2},
                    {dfg::ResourceClass::Adder, 1}};
  cfg.buildCentFsm = true;  // small design: the explicit product is cheap

  const core::FlowResult r = core::runFlow(g, cfg);

  std::cout << "=== quickstart: y = (a*b + c*d) * e ===\n\n";
  std::cout << "Clock CC_TAU = " << r.scheduled.clockNs << " ns; allocation "
            << core::formatAllocation(r.scheduled) << "\n\n";

  std::cout << "--- Latency (Table 2 style) ---\n";
  std::cout << core::formatTable2Row("quickstart", r) << "\n";

  std::cout << "--- Area (Table 1 style) ---\n";
  std::cout << core::formatTable1(r) << "\n";

  std::cout << "--- Controller of the first telescopic multiplier ---\n";
  for (const fsm::UnitController& ctl : r.distributed.controllers) {
    if (ctl.telescopic) {
      std::cout << fsm::describe(ctl.fsm) << "\n";
      break;
    }
  }

  std::cout << "--- DFG in DOT (render with graphviz) ---\n";
  std::cout << dfg::toDot(r.scheduled.graph);
  return 0;
}
