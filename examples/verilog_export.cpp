// Export the distributed control unit of any built-in benchmark as
// synthesizable Verilog.
//
//   $ ./verilog_export diffeq out.v
//   $ ./verilog_export ar_lattice        # to stdout
//   benchmarks: fir3 fir5 iir2 iir3 diffeq ar_lattice ewf fig2 fig3
#include <fstream>
#include <iostream>
#include <string>

#include "core/flow.hpp"
#include "dfg/benchmarks.hpp"

namespace {

using tauhls::dfg::Allocation;
using tauhls::dfg::Dfg;
using RC = tauhls::dfg::ResourceClass;

bool pick(const std::string& name, Dfg& g, Allocation& alloc) {
  using namespace tauhls::dfg;
  if (name == "fir3") { g = fir(3); alloc = {{RC::Multiplier, 2}, {RC::Adder, 1}}; }
  else if (name == "fir5") { g = fir(5); alloc = {{RC::Multiplier, 2}, {RC::Adder, 1}}; }
  else if (name == "iir2") { g = iir(2); alloc = {{RC::Multiplier, 2}, {RC::Adder, 1}}; }
  else if (name == "iir3") { g = iir(3); alloc = {{RC::Multiplier, 3}, {RC::Adder, 2}}; }
  else if (name == "diffeq") {
    g = diffeq();
    alloc = {{RC::Multiplier, 2}, {RC::Adder, 1}, {RC::Subtractor, 1}};
  } else if (name == "ar_lattice") {
    g = arLattice();
    alloc = {{RC::Multiplier, 4}, {RC::Adder, 2}};
  } else if (name == "ewf") { g = ewf(); alloc = {{RC::Multiplier, 2}, {RC::Adder, 2}}; }
  else if (name == "fig2") { g = paperFig2(); alloc = {{RC::Multiplier, 2}, {RC::Adder, 1}}; }
  else if (name == "fig3") { g = paperFig3(); alloc = {{RC::Multiplier, 2}, {RC::Adder, 2}}; }
  else { return false; }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tauhls;
  if (argc < 2) {
    std::cerr << "usage: verilog_export <benchmark> [output.v]\n";
    return 2;
  }
  Dfg g;
  Allocation alloc;
  if (!pick(argv[1], g, alloc)) {
    std::cerr << "unknown benchmark '" << argv[1] << "'\n";
    return 2;
  }

  core::FlowConfig cfg;
  cfg.allocation = alloc;
  cfg.synthesizeArea = false;
  const core::FlowResult r = core::runFlow(g, cfg);
  const std::string verilog = core::emitVerilog(r);

  if (argc >= 3) {
    std::ofstream out(argv[2]);
    if (!out) {
      std::cerr << "cannot open " << argv[2] << "\n";
      return 1;
    }
    out << verilog;
    std::cout << "wrote " << verilog.size() << " bytes of Verilog ("
              << r.distributed.controllers.size() << " controllers) to "
              << argv[2] << "\n";
  } else {
    std::cout << verilog;
  }
  return 0;
}
