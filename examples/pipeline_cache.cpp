// Driving the pass pipeline directly (docs/PIPELINE.md): demand-driven
// artifact requests, a P sweep through a shared content-addressed cache, and
// a chrome://tracing export of every pass that ran.
//
//   $ ./pipeline_cache [trace.json]
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/pipeline.hpp"
#include "dfg/benchmarks.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace tauhls;
  const dfg::Dfg g = dfg::diffeq();
  core::FlowConfig base;
  base.allocation = {{dfg::ResourceClass::Multiplier, 2},
                     {dfg::ResourceClass::Adder, 1},
                     {dfg::ResourceClass::Subtractor, 1}};
  base.synthesizeArea = false;

  // One cache for the whole sweep: the schedule, the controllers and the
  // static verification are computed at the first P point and shared by the
  // rest -- only the latency pass re-runs per point.
  auto cache = std::make_shared<core::ArtifactCache>();
  std::vector<core::TracedRun> traces;

  std::cout << "=== diffeq P sweep through one shared ArtifactCache ===\n\n";
  for (double p : {0.9, 0.7, 0.5, 0.3, 0.1}) {
    core::FlowConfig cfg = base;
    cfg.ps = {p};
    core::FlowPipeline pipe(g, cfg, cache);
    // Ask for exactly what we read; nothing else executes.
    pipe.require({core::Artifact::Latency, core::Artifact::Diagnostics});
    core::throwIfVerificationFailed(
        pipe.get<verify::Report>(core::Artifact::Diagnostics));
    const auto& lat =
        pipe.get<sim::LatencyComparison>(core::Artifact::Latency);
    std::cout << "P=" << std::fixed << std::setprecision(1) << p
              << "  LT_DIST=" << lat.dist.averageNs[0]
              << " ns  LT_TAU=" << lat.tau.averageNs[0] << " ns\n";
    std::ostringstream name;
    name << "diffeq@P=" << p;
    traces.push_back({name.str(), pipe.traceEvents()});
  }

  std::cout << "\n" << core::formatCacheSummary(cache->stats()) << "\n";
  std::cout << "(schedule/verify ran once; each later point paid only for "
               "its latency pass)\n";

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << core::traceToChromeJson(traces);
    std::cout << "wrote " << traces.size() << "-run pass trace to " << argv[1]
              << " (open in chrome://tracing)\n";
  }
  return 0;
}
