// Design-space exploration demo: sweep multiplier/adder allocations for a
// 12-tap FIR and print the latency/cost Pareto front.
//
//   $ ./explore_pareto
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/report.hpp"
#include "dfg/benchmarks.hpp"
#include "explore/pareto.hpp"

int main() {
  using namespace tauhls;
  const dfg::Dfg g = dfg::fir(12);

  explore::ExploreOptions opt;
  opt.maxUnitsPerClass = 4;
  opt.p = 0.7;
  const auto points = explore::explore(g, opt);

  std::cout << "=== fir12: " << points.size()
            << " allocations swept (P = 0.7) ===\n\n";
  core::TextTable t({"mult", "add", "latency (ns)", "cost", "Pareto"});
  for (const explore::DesignPoint& p : points) {
    std::ostringstream lat;
    lat << std::fixed << std::setprecision(1) << p.averageLatencyNs;
    t.addRow({std::to_string(p.allocation.at(dfg::ResourceClass::Multiplier)),
              std::to_string(p.allocation.at(dfg::ResourceClass::Adder)),
              lat.str(), std::to_string(p.cost(opt.unitWeightArea)),
              p.paretoOptimal ? "*" : ""});
  }
  std::cout << t.toString();
  std::cout << "\nPick a starred row: everything else is dominated (slower "
               "AND more expensive).\n";
  return 0;
}
