// EDA interop demo: export a generated controller to KISS2 (the SIS /
// espresso / STAMINA interchange format), re-import it, minimize its states,
// and confirm behavioural equivalence on random traces -- the round trip an
// external sequential-synthesis flow would take.
//
//   $ ./kiss_interop
#include <iostream>

#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "fsm/kiss.hpp"
#include "fsm/minimize.hpp"
#include "sim/interp.hpp"

int main() {
  using namespace tauhls;
  auto s = sched::scheduleAndBind(dfg::paperFig3(),
                                  {{dfg::ResourceClass::Multiplier, 2},
                                   {dfg::ResourceClass::Adder, 2}},
                                  tau::paperLibrary(),
                                  sched::BindingStrategy::CliqueCover);
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const fsm::Fsm& original = dcu.controllers[0].fsm;

  std::cout << "=== " << original.name() << " in KISS2 ===\n";
  const std::string kiss = fsm::toKiss2(original);
  std::cout << kiss << "\n";

  const fsm::Fsm back = fsm::fromKiss2(kiss, original.name() + "_reimport");
  const fsm::Fsm minimized = fsm::minimizeStates(back);
  std::cout << "re-imported: " << back.numStates() << " states; minimized: "
            << minimized.numStates() << " states\n";

  const int diff = sim::compareOnRandomTraces(original, minimized, 7, 20, 80);
  std::cout << (diff == -1 ? "equivalent on 20 random 80-cycle traces"
                           : "MISMATCH at cycle " + std::to_string(diff))
            << "\n";
  return diff == -1 ? 0 : 1;
}
