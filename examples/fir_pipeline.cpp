// A DSP designer's view: an 8-tap FIR filter written in the textual DFG
// frontend, swept over the SD-hit ratio P, and compared against what a
// conventional (non-telescopic) design achieves at the slower worst-case
// clock.  Shows where the telescopic design stops paying off as P drops.
//
//   $ ./fir_pipeline
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "dfg/textio.hpp"
#include "sim/stats.hpp"
#include "tau/clocking.hpp"

namespace {

std::string firSource(int taps) {
  std::ostringstream os;
  os << "in ";
  for (int i = 0; i < taps; ++i) {
    os << (i ? ", " : "") << "x" << i << ", c" << i;
  }
  os << "\n";
  for (int i = 0; i < taps; ++i) {
    os << "p" << i << " = x" << i << " * c" << i << "\n";
  }
  os << "acc1 = p0 + p1\n";
  for (int i = 2; i < taps; ++i) {
    os << "acc" << i << " = acc" << i - 1 << " + p" << i << "\n";
  }
  os << "out acc" << taps - 1 << "\n";
  return os.str();
}

}  // namespace

int main() {
  using namespace tauhls;
  const int taps = 8;
  const dfg::Dfg g = dfg::parseDfg(firSource(taps), "fir8");

  core::FlowConfig cfg;
  cfg.allocation = {{dfg::ResourceClass::Multiplier, 2},
                    {dfg::ResourceClass::Adder, 1}};
  cfg.ps = {0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1};
  cfg.synthesizeArea = false;

  const core::FlowResult r = core::runFlow(g, cfg);

  // Conventional fixed-delay design: every op takes one cycle of the slower
  // worst-case clock CC (20 ns with the paper library); the cycle count is
  // the all-single-cycle makespan.
  const double ccNs = tau::conventionalClockNs(cfg.library);
  const double conventionalNs =
      sim::distributedMakespanCycles(r.scheduled, sim::allShort(r.scheduled)) *
      ccNs;

  std::cout << "=== 8-tap FIR, " << core::formatAllocation(r.scheduled)
            << ", CC_TAU = " << r.scheduled.clockNs << " ns, CC = " << ccNs
            << " ns ===\n\n";
  std::cout << "conventional (fixed units @ CC): " << conventionalNs << " ns\n\n";

  core::TextTable t({"P", "LT_TAU (ns)", "LT_DIST (ns)", "gain vs TAU",
                     "gain vs conventional"});
  for (std::size_t i = 0; i < cfg.ps.size(); ++i) {
    const double tauNs = r.latency.tau.averageNs[i];
    const double distNs = r.latency.dist.averageNs[i];
    std::ostringstream p, c1, c2, g1, g2;
    p << std::fixed << std::setprecision(2) << cfg.ps[i];
    c1 << std::fixed << std::setprecision(1) << tauNs;
    c2 << std::fixed << std::setprecision(1) << distNs;
    g1 << std::fixed << std::setprecision(1)
       << (tauNs - distNs) / tauNs * 100.0 << "%";
    g2 << std::fixed << std::setprecision(1)
       << (conventionalNs - distNs) / conventionalNs * 100.0 << "%";
    t.addRow({p.str(), c1.str(), c2.str(), g1.str(), g2.str()});
  }
  std::cout << t.toString();
  std::cout << "\nNegative 'gain vs conventional' marks the crossover where "
               "telescopic units stop paying off.\n";
  return 0;
}
