// The paper's running evaluation subject: the HAL differential-equation
// solver under the Table 1 allocation {x:2 TAU, +:1, -:1}.  Reproduces both
// paper tables for this one benchmark and emits the distributed control
// unit's Verilog to stdout (redirect to a file to use it).
//
//   $ ./diffeq_flow            # reports only
//   $ ./diffeq_flow --verilog  # reports + RTL dump
#include <cstring>
#include <iostream>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "dfg/benchmarks.hpp"
#include "sim/gantt.hpp"
#include "sim/interp.hpp"

int main(int argc, char** argv) {
  using namespace tauhls;
  const bool wantVerilog = argc > 1 && std::strcmp(argv[1], "--verilog") == 0;

  core::FlowConfig cfg;
  cfg.allocation = {{dfg::ResourceClass::Multiplier, 2},
                    {dfg::ResourceClass::Adder, 1},
                    {dfg::ResourceClass::Subtractor, 1}};
  cfg.buildCentFsm = true;

  const core::FlowResult r = core::runFlow(dfg::diffeq(), cfg);

  std::cout << "=== Differential Equation Solver (Diff.) ===\n\n";
  std::cout << core::formatTable1(r) << "\n";
  std::cout << core::formatTable2Row("Diff.", r) << "\n";

  // Cycle-by-cycle trace of the generated controllers in the best case.
  std::cout << "--- all-SD cycle trace of the distributed controllers ---\n";
  const sim::SimTrace trace =
      sim::runDistributed(r.distributed, r.scheduled, sim::allShort(r.scheduled));
  for (std::size_t cyc = 0; cyc < trace.outputsPerCycle.size(); ++cyc) {
    std::cout << "cycle " << cyc << ":";
    for (const std::string& sig : trace.outputsPerCycle[cyc]) {
      if (sig.starts_with("RE_")) std::cout << " " << sig;
    }
    std::cout << "\n";
  }
  std::cout << "latency: " << trace.latencyCycles << " cycles = "
            << trace.latencyCycles * r.scheduled.clockNs << " ns\n\n";

  std::cout << "--- unit occupancy (all-SD vs all-LD) ---\n";
  std::cout << sim::renderGantt(r.scheduled, sim::allShort(r.scheduled)) << "\n";
  std::cout << sim::renderGantt(r.scheduled, sim::allLong(r.scheduled)) << "\n";

  if (wantVerilog) {
    std::cout << "--- Verilog ---\n" << core::emitVerilog(r);
  }
  return 0;
}
