// RTL co-simulation demo: generate the distributed control unit for the
// Diff. benchmark, emit its Verilog package, parse that Verilog back with
// the built-in vsim simulator, and run it cycle by cycle against the FSM
// interpreter's golden trace -- the full generate -> print -> parse ->
// simulate -> compare loop, with no external EDA tools.
//
//   $ ./rtl_cosim
#include <algorithm>
#include <iostream>

#include "core/flow.hpp"
#include "dfg/benchmarks.hpp"
#include "rtl/verilog.hpp"
#include "sim/interp.hpp"
#include "vsim/simulate.hpp"

int main() {
  using namespace tauhls;

  core::FlowConfig cfg;
  cfg.allocation = {{dfg::ResourceClass::Multiplier, 2},
                    {dfg::ResourceClass::Adder, 1},
                    {dfg::ResourceClass::Subtractor, 1}};
  cfg.synthesizeArea = false;
  const core::FlowResult r = core::runFlow(dfg::diffeq(), cfg);

  // Golden trace from the FSM interpreter, all-SD operands.
  const sim::SimTrace trace =
      sim::runDistributed(r.distributed, r.scheduled, sim::allShort(r.scheduled));

  // Emit, re-parse, elaborate, reset.
  const std::string pkg = rtl::emitPackage(r.distributed, "dcu_diffeq");
  std::cout << "emitted " << pkg.size() << " bytes of Verilog, "
            << r.distributed.controllers.size() << " controllers\n";
  vsim::Simulator sim(pkg, "dcu_diffeq");
  std::cout << "elaborated " << sim.elaboration().instances.size()
            << " instances, " << sim.elaboration().signalNames.size()
            << " signals\n\n";

  sim.setInput("rst", 1);
  sim.setInput("restart", 0);
  for (const std::string& in : r.distributed.externalInputs) sim.setInput(in, 0);
  sim.clockEdge();
  sim.setInput("rst", 0);

  std::vector<std::string> reSignals;
  for (const fsm::UnitController& c : r.distributed.controllers) {
    for (const std::string& o : c.fsm.outputs()) {
      if (o.starts_with("RE_")) reSignals.push_back(o);
    }
  }
  std::sort(reSignals.begin(), reSignals.end());

  int mismatches = 0;
  for (std::size_t cyc = 0; cyc < trace.outputsPerCycle.size(); ++cyc) {
    for (const std::string& in : r.distributed.externalInputs) {
      const auto& ext = trace.externalsPerCycle[cyc];
      sim.setInput(in, std::find(ext.begin(), ext.end(), in) != ext.end());
    }
    sim.settle();
    std::cout << "cycle " << cyc << ": RTL asserts ";
    for (const std::string& re : reSignals) {
      const bool rtl = sim.top(re) != 0;
      const bool golden = trace.asserted(static_cast<int>(cyc), re);
      if (rtl) std::cout << re << " ";
      if (rtl != golden) {
        ++mismatches;
        std::cout << "[MISMATCH vs golden] ";
      }
    }
    std::cout << "\n";
    sim.clockEdge();
  }
  std::cout << "\n"
            << (mismatches == 0
                    ? "PASS: emitted RTL matches the FSM interpreter on every "
                      "cycle"
                    : "FAIL: " + std::to_string(mismatches) + " mismatches")
            << "\n";
  return mismatches == 0 ? 0 : 1;
}
