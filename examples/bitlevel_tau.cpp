// From gates to system: characterize a real bit-level telescopic multiplier
// (array multiplier + leading-zero completion generator), measure its SD-hit
// ratio P under three operand distributions, and feed the *measured* unit
// into the system-level flow -- closing the loop the paper's §6 future work
// describes (a hardware resource library of VCAUs).
//
//   $ ./bitlevel_tau
#include <iomanip>
#include <iostream>

#include "bitlevel/measure.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "dfg/benchmarks.hpp"

int main() {
  using namespace tauhls;
  using bitlevel::OperandDistribution;

  const int width = 16;
  const double nsPerCell = 0.6;  // ns per array-cell delay
  const bitlevel::MultiplierCompletionGenerator gen(width, 20);

  std::cout << "=== " << width << "-bit telescopic array multiplier ===\n";
  std::cout << "completion generator: C=1 iff msb(a)+msb(b) <= "
            << gen.shortDelayBound() - 2 << " "
            << "(SD bound " << gen.shortDelayBound() << " cell delays, "
            << gen.shortDelayBound() * nsPerCell << " ns; worst case "
            << (2 * (width - 1) + 2) * nsPerCell << " ns)\n\n";

  core::TextTable t({"distribution", "measured P", "mean delay", "worst",
                     "false completions"});
  bitlevel::PMeasurement chosen;
  for (auto [name, dist] :
       {std::pair{"uniform", OperandDistribution::Uniform},
        std::pair{"low-magnitude", OperandDistribution::LowMagnitude},
        std::pair{"small-delta", OperandDistribution::SmallDelta}}) {
    const bitlevel::PMeasurement m =
        bitlevel::measureMultiplierP(gen, dist, 200000);
    std::ostringstream p, md;
    p << std::fixed << std::setprecision(3) << m.p;
    md << std::fixed << std::setprecision(1) << m.meanDelay;
    t.addRow({name, p.str(), md.str(), std::to_string(m.worstDelay),
              std::to_string(m.falseCompletions)});
    if (dist == OperandDistribution::LowMagnitude) chosen = m;
  }
  std::cout << t.toString() << "\n";

  // Build a resource library around the measured unit and run the flow.
  tau::ResourceLibrary lib;
  lib.registerType(bitlevel::telescopicMultiplierFromMeasurement(
      width, gen, chosen, nsPerCell));
  lib.registerType(tau::fixedUnit("adder", dfg::ResourceClass::Adder,
                                  lib.typeFor(dfg::ResourceClass::Multiplier)
                                      .shortDelayNs));
  lib.registerType(tau::fixedUnit("subtractor", dfg::ResourceClass::Subtractor,
                                  lib.typeFor(dfg::ResourceClass::Multiplier)
                                      .shortDelayNs));

  core::FlowConfig cfg;
  cfg.allocation = {{dfg::ResourceClass::Multiplier, 2},
                    {dfg::ResourceClass::Adder, 1},
                    {dfg::ResourceClass::Subtractor, 1}};
  cfg.library = lib;
  cfg.ps = {chosen.p};  // evaluate at the *measured* P
  cfg.synthesizeArea = false;

  const core::FlowResult r = core::runFlow(dfg::diffeq(), cfg);
  std::cout << "Diff. with the measured low-magnitude multiplier (P = "
            << std::fixed << std::setprecision(3) << chosen.p << "):\n";
  std::cout << core::formatTable2Row("Diff./measured", r);
  return 0;
}
