// Structural synthesis: lower a synthesized FSM (minimized two-level covers)
// to a gate-level netlist, with input inverters and AND-cube sharing across
// all next-state and output functions (what a real two-level implementation,
// e.g. a PLA or shared AND-plane, provides).
//
// Netlist interface of a controller with n state bits:
//   inputs : state0..state{n-1}, then the FSM's declared input signals
//   outputs: ns0..ns{n-1} (next-state bits), then the FSM's output signals
#pragma once

#include "netlist/netlist.hpp"
#include "synth/extract.hpp"

namespace tauhls::netlist {

struct ControllerNetlist {
  Netlist net;
  int stateBits = 0;

  ControllerNetlist() : net("unnamed") {}
};

/// Build the combinational network of `fsm` under the given encoding.
ControllerNetlist buildControllerNetlist(
    const fsm::Fsm& fsm, synth::EncodingStyle style = synth::EncodingStyle::Binary);

/// As above, reusing an already-synthesized `syn` of the same fsm/style.
/// Two-level minimization dominates the controller back end on large FSMs;
/// callers that already hold the covers (e.g. the equivalence chain, which
/// compares against them) must not pay for it twice.
ControllerNetlist buildControllerNetlist(const fsm::Fsm& fsm,
                                         synth::EncodingStyle style,
                                         const synth::SynthesizedFsm& syn);

/// Exhaustively verify the netlist against the FSM: for every reachable
/// state and every input assignment, the ns*/output nets must equal the
/// machine's step result.  Returns true on full equivalence.
bool verifyAgainstFsm(const ControllerNetlist& cn, const fsm::Fsm& fsm,
                      synth::EncodingStyle style = synth::EncodingStyle::Binary);

}  // namespace tauhls::netlist
