// Structural Verilog emission of a netlist (gate primitives), usable as a
// drop-in implementation of the behavioural controller's combinational block.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace tauhls::netlist {

/// Emit `module <moduleName>` with one wire per internal net and Verilog
/// gate primitives (not/and/or); n-input gates map directly (Verilog
/// primitives accept arbitrary fanin).
std::string emitStructuralVerilog(const Netlist& net,
                                  const std::string& moduleName);

}  // namespace tauhls::netlist
