// Gate-level area and delay analysis.
//
// Area: gate-equivalents -- INV = 1, n-input AND/OR = n-1 two-input
// equivalents (decomposition into a 2-input tree).  Delay comes in two
// tiers: GateStats::depth is the naive uniform-delay level count (every
// 2-input level costs the same), kept as a quick lower-bound sanity
// metric, while timing closure proper is answered by the STA engine
// (sta.hpp) with per-gate-kind delays and fanout loading.  meetsClock
// checks the paper's implicit requirement that control logic settles
// within the system clock CC_TAU.
#pragma once

#include "netlist/netlist.hpp"
#include "netlist/sta.hpp"

namespace tauhls::netlist {

struct GateStats {
  int inputs = 0;
  int inverters = 0;
  int andGates = 0;    ///< n-input AND instances
  int orGates = 0;
  int gateEquivalents = 0;  ///< 2-input-equivalent area
  /// Naive bound: uniform-delay 2-input levels on the worst path.  A lower
  /// bound on the STA arrival time; use runSta for real timing closure.
  int depth = 0;
  int maxFanin = 0;
};

GateStats analyze(const Netlist& net);

/// Naive closure check: true when the network settles within `clockNs` at a
/// uniform `nsPerLevel` per 2-input gate level, leaving `marginNs` for
/// register setup/clock skew.  Kept as the lower-bound companion to the STA
/// verdict; a design failing this check certainly fails STA.
bool meetsClockNaive(const GateStats& stats, double clockNs, double nsPerLevel,
                     double marginNs = 0.0);

/// Timing closure by static timing analysis: true when the worst slack
/// against `clockNs` (minus `marginNs`) is non-negative under `model`.
bool meetsClock(const Netlist& net, double clockNs, double marginNs = 0.0,
                const DelayModel& model = DelayModel{});

}  // namespace tauhls::netlist
