// Gate-level area and delay analysis.
//
// Area: gate-equivalents -- INV = 1, n-input AND/OR = n-1 two-input
// equivalents (decomposition into a 2-input tree).  Delay: levels of the
// same 2-input decomposition (an n-input gate contributes ceil(log2(n))
// levels), so the reported depth is what a naive technology mapping to
// 2-input cells achieves.  meetsClock checks controller timing closure:
// the control-logic depth must fit within the system clock CC_TAU -- an
// implicit requirement of the paper's scheme that the literal-count model
// cannot express.
#pragma once

#include "netlist/netlist.hpp"

namespace tauhls::netlist {

struct GateStats {
  int inputs = 0;
  int inverters = 0;
  int andGates = 0;    ///< n-input AND instances
  int orGates = 0;
  int gateEquivalents = 0;  ///< 2-input-equivalent area
  int depth = 0;            ///< 2-input-equivalent levels on the worst path
  int maxFanin = 0;
};

GateStats analyze(const Netlist& net);

/// True when the network settles within `clockNs` at `nsPerLevel` per
/// 2-input gate level, leaving `marginNs` for register setup/clock skew.
bool meetsClock(const GateStats& stats, double clockNs, double nsPerLevel,
                double marginNs = 0.0);

}  // namespace tauhls::netlist
