#include "netlist/netlist.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tauhls::netlist {

const char* gateKindName(GateKind kind) {
  switch (kind) {
    case GateKind::Input: return "input";
    case GateKind::Const0: return "const0";
    case GateKind::Const1: return "const1";
    case GateKind::Inv: return "inv";
    case GateKind::And: return "and";
    case GateKind::Or: return "or";
  }
  TAUHLS_FAIL("unknown GateKind");
}

NetId Netlist::add(Gate g) {
  for (NetId f : g.fanins) {
    TAUHLS_CHECK(f < gates_.size(), "gate fanin out of range");
  }
  gates_.push_back(std::move(g));
  return static_cast<NetId>(gates_.size() - 1);
}

NetId Netlist::addInput(const std::string& inputName) {
  TAUHLS_CHECK(!inputName.empty(), "input needs a name");
  TAUHLS_CHECK(findInput(inputName) == kNoNet,
               "duplicate input name: " + inputName);
  Gate g;
  g.kind = GateKind::Input;
  g.name = inputName;
  return add(std::move(g));
}

NetId Netlist::constant(bool value) {
  NetId& cache = value ? const1_ : const0_;
  if (cache == kNoNet) {
    Gate g;
    g.kind = value ? GateKind::Const1 : GateKind::Const0;
    cache = add(std::move(g));
  }
  return cache;
}

NetId Netlist::addInv(NetId a) {
  Gate g;
  g.kind = GateKind::Inv;
  g.fanins = {a};
  return add(std::move(g));
}

NetId Netlist::addAnd(std::vector<NetId> fanins) {
  TAUHLS_CHECK(!fanins.empty(), "AND needs at least one fanin");
  if (fanins.size() == 1) return fanins[0];
  Gate g;
  g.kind = GateKind::And;
  g.fanins = std::move(fanins);
  return add(std::move(g));
}

NetId Netlist::addOr(std::vector<NetId> fanins) {
  TAUHLS_CHECK(!fanins.empty(), "OR needs at least one fanin");
  if (fanins.size() == 1) return fanins[0];
  Gate g;
  g.kind = GateKind::Or;
  g.fanins = std::move(fanins);
  return add(std::move(g));
}

void Netlist::markOutput(const std::string& outputName, NetId net) {
  TAUHLS_CHECK(net < gates_.size(), "output net out of range");
  for (const auto& [name, existing] : outputs_) {
    TAUHLS_CHECK(name != outputName, "duplicate output name: " + outputName);
  }
  outputs_.emplace_back(outputName, net);
}

const Gate& Netlist::gate(NetId id) const {
  TAUHLS_CHECK(id < gates_.size(), "net id out of range");
  return gates_[id];
}

std::vector<NetId> Netlist::inputNets() const {
  std::vector<NetId> out;
  for (NetId i = 0; i < gates_.size(); ++i) {
    if (gates_[i].kind == GateKind::Input) out.push_back(i);
  }
  return out;
}

NetId Netlist::findInput(const std::string& inputName) const {
  for (NetId i = 0; i < gates_.size(); ++i) {
    if (gates_[i].kind == GateKind::Input && gates_[i].name == inputName) {
      return i;
    }
  }
  return kNoNet;
}

std::vector<bool> Netlist::evaluate(
    const std::unordered_set<std::string>& asserted) const {
  std::vector<bool> value(gates_.size(), false);
  // Gates are appended after their fanins, so id order is topological.
  for (NetId i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.kind) {
      case GateKind::Input: value[i] = asserted.contains(g.name); break;
      case GateKind::Const0: value[i] = false; break;
      case GateKind::Const1: value[i] = true; break;
      case GateKind::Inv: value[i] = !value[g.fanins[0]]; break;
      case GateKind::And: {
        bool v = true;
        for (NetId f : g.fanins) v = v && value[f];
        value[i] = v;
        break;
      }
      case GateKind::Or: {
        bool v = false;
        for (NetId f : g.fanins) v = v || value[f];
        value[i] = v;
        break;
      }
    }
  }
  return value;
}

bool Netlist::evaluateOutput(const std::string& outputName,
                             const std::unordered_set<std::string>& asserted) const {
  for (const auto& [name, net] : outputs_) {
    if (name == outputName) return evaluate(asserted)[net];
  }
  TAUHLS_FAIL("unknown output: " + outputName);
}

void Netlist::validate() const {
  for (NetId i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    for (NetId f : g.fanins) {
      TAUHLS_CHECK(f < i, "fanin must precede its gate (topological ids)");
    }
    switch (g.kind) {
      case GateKind::Input:
        TAUHLS_CHECK(g.fanins.empty() && !g.name.empty(), "malformed input");
        break;
      case GateKind::Const0:
      case GateKind::Const1:
        TAUHLS_CHECK(g.fanins.empty(), "constants have no fanin");
        break;
      case GateKind::Inv:
        TAUHLS_CHECK(g.fanins.size() == 1, "INV needs exactly one fanin");
        break;
      case GateKind::And:
      case GateKind::Or:
        TAUHLS_CHECK(g.fanins.size() >= 2, "AND/OR need >= 2 fanins");
        break;
    }
  }
  for (const auto& [name, net] : outputs_) {
    TAUHLS_CHECK(net < gates_.size(), "dangling output: " + name);
  }
}

}  // namespace tauhls::netlist
