#include "netlist/analyze.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace tauhls::netlist {

namespace {

/// Levels a single n-input gate adds under 2-input decomposition.
int levelsOf(std::size_t fanin) {
  if (fanin <= 1) return 0;
  return std::bit_width(fanin - 1);  // ceil(log2(fanin))
}

}  // namespace

GateStats analyze(const Netlist& net) {
  GateStats stats;
  std::vector<int> level(net.numGates(), 0);
  for (NetId i = 0; i < net.numGates(); ++i) {
    const Gate& g = net.gate(i);
    int inLevel = 0;
    for (NetId f : g.fanins) inLevel = std::max(inLevel, level[f]);
    switch (g.kind) {
      case GateKind::Input:
        ++stats.inputs;
        level[i] = 0;
        break;
      case GateKind::Const0:
      case GateKind::Const1:
        level[i] = 0;
        break;
      case GateKind::Inv:
        ++stats.inverters;
        stats.gateEquivalents += 1;
        level[i] = inLevel + 1;
        break;
      case GateKind::And:
      case GateKind::Or: {
        if (g.kind == GateKind::And) ++stats.andGates; else ++stats.orGates;
        stats.gateEquivalents += static_cast<int>(g.fanins.size()) - 1;
        stats.maxFanin = std::max(stats.maxFanin,
                                  static_cast<int>(g.fanins.size()));
        level[i] = inLevel + levelsOf(g.fanins.size());
        break;
      }
    }
  }
  for (const auto& [name, netId] : net.outputs()) {
    stats.depth = std::max(stats.depth, level[netId]);
  }
  return stats;
}

bool meetsClockNaive(const GateStats& stats, double clockNs, double nsPerLevel,
                     double marginNs) {
  TAUHLS_CHECK(clockNs > 0.0 && nsPerLevel > 0.0,
               "clock and gate delay must be positive");
  return stats.depth * nsPerLevel + marginNs <= clockNs;
}

bool meetsClock(const Netlist& net, double clockNs, double marginNs,
                const DelayModel& model) {
  return runSta(net, clockNs, marginNs, model).meetsClock();
}

}  // namespace tauhls::netlist
