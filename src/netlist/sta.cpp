#include "netlist/sta.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/error.hpp"

namespace tauhls::netlist {

namespace {

int levelsOf(std::size_t fanin) {
  if (fanin <= 1) return 0;
  return std::bit_width(fanin - 1);  // ceil(log2(fanin))
}

/// Propagation delay through a gate, excluding its own output load.
double intrinsicDelayNs(const Gate& g, const DelayModel& model) {
  switch (g.kind) {
    case GateKind::Input:
    case GateKind::Const0:
    case GateKind::Const1:
      return 0.0;
    case GateKind::Inv:
      return model.invNs;
    case GateKind::And:
      return levelsOf(g.fanins.size()) * model.andLevelNs;
    case GateKind::Or:
      return levelsOf(g.fanins.size()) * model.orLevelNs;
  }
  return 0.0;
}

std::string netLabel(const Netlist& net, NetId id) {
  const Gate& g = net.gate(id);
  if (!g.name.empty()) return g.name;
  std::string label = gateKindName(g.kind);
  label += '#';
  label += std::to_string(id);
  return label;
}

}  // namespace

StaResult runSta(const Netlist& net, double clockNs, double marginNs,
                 const DelayModel& model) {
  TAUHLS_CHECK(clockNs > 0.0, "STA clock period must be positive");
  const std::size_t n = net.numGates();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  StaResult sta;
  sta.clockNs = clockNs;
  sta.marginNs = marginNs;
  sta.arrivalNs.assign(n, 0.0);
  sta.requiredNs.assign(n, kInf);
  sta.slackNs.assign(n, kInf);

  // Fanout count per net: fanin references plus primary-output taps.
  std::vector<int> fanout(n, 0);
  for (NetId i = 0; i < n; ++i) {
    for (const NetId f : net.gate(i).fanins) ++fanout[f];
  }
  for (const auto& [name, id] : net.outputs()) ++fanout[id];

  // Total delay a gate adds to its fanins' arrival: intrinsic propagation
  // plus load for each fanout beyond the first.
  std::vector<double> gateDelay(n, 0.0);
  for (NetId i = 0; i < n; ++i) {
    gateDelay[i] = intrinsicDelayNs(net.gate(i), model) +
                   model.loadNsPerFanout * std::max(0, fanout[i] - 1);
  }

  // Forward sweep: arrival times.  gates_ is topologically ordered by
  // construction, so one pass suffices.
  for (NetId i = 0; i < n; ++i) {
    const Gate& g = net.gate(i);
    if (g.kind == GateKind::Input) {
      sta.arrivalNs[i] = model.inputArrivalNs + gateDelay[i];
      continue;
    }
    double inArrival = 0.0;
    for (const NetId f : g.fanins) {
      inArrival = std::max(inArrival, sta.arrivalNs[f]);
    }
    sta.arrivalNs[i] = inArrival + gateDelay[i];
  }

  // Backward sweep: required times from each primary output.
  const double outputRequired = clockNs - marginNs;
  for (const auto& [name, id] : net.outputs()) {
    sta.requiredNs[id] = std::min(sta.requiredNs[id], outputRequired);
  }
  for (NetId i = n; i > 0; --i) {
    const NetId id = i - 1;
    if (sta.requiredNs[id] == kInf) continue;  // outside every output cone
    const double faninRequired = sta.requiredNs[id] - gateDelay[id];
    for (const NetId f : net.gate(id).fanins) {
      sta.requiredNs[f] = std::min(sta.requiredNs[f], faninRequired);
    }
  }

  // Slack, and the worst constrained net.
  sta.worstSlackNs = kInf;
  for (NetId i = 0; i < n; ++i) {
    sta.slackNs[i] = sta.requiredNs[i] - sta.arrivalNs[i];
    if (sta.requiredNs[i] != kInf) {
      sta.worstSlackNs = std::min(sta.worstSlackNs, sta.slackNs[i]);
    }
  }
  if (sta.worstSlackNs == kInf) sta.worstSlackNs = outputRequired;

  // Critical path: the latest-arriving primary output, walked back through
  // the latest-arriving fanin at each hop.
  NetId worstNet = kNoNet;
  for (const auto& [name, id] : net.outputs()) {
    if (worstNet == kNoNet || sta.arrivalNs[id] > sta.arrivalNs[worstNet]) {
      worstNet = id;
      sta.worstOutput = name;
    }
  }
  if (worstNet != kNoNet) {
    sta.worstArrivalNs = sta.arrivalNs[worstNet];
    std::vector<TimingPathNode> reversed;
    NetId cursor = worstNet;
    while (true) {
      reversed.push_back(
          TimingPathNode{cursor, netLabel(net, cursor), sta.arrivalNs[cursor]});
      const Gate& g = net.gate(cursor);
      if (g.fanins.empty()) break;
      NetId slowest = g.fanins.front();
      for (const NetId f : g.fanins) {
        if (sta.arrivalNs[f] > sta.arrivalNs[slowest]) slowest = f;
      }
      cursor = slowest;
    }
    sta.worstPath.assign(reversed.rbegin(), reversed.rend());
  }
  return sta;
}

std::string formatWorstPath(const StaResult& sta) {
  std::string out;
  for (const TimingPathNode& node : sta.worstPath) {
    if (!out.empty()) out += " -> ";
    out += node.label;
  }
  return out;
}

}  // namespace tauhls::netlist
