// Gate-level netlist IR.
//
// A Netlist is a DAG of primitive gates (INV / AND / OR of arbitrary fanin,
// plus constants) over named primary inputs, with named primary outputs.
// It is the structural implementation target of the synthesized two-level
// controller logic (build.hpp) and the basis of the gate-level area/delay
// model (analyze.hpp) -- replacing the literal-count proxy with a countable,
// simulatable circuit.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace tauhls::netlist {

using NetId = std::uint32_t;
inline constexpr NetId kNoNet = static_cast<NetId>(-1);

enum class GateKind : std::uint8_t {
  Input,   ///< primary input (no fanin)
  Const0,
  Const1,
  Inv,     ///< 1 fanin
  And,     ///< >= 2 fanins
  Or,      ///< >= 2 fanins
};

const char* gateKindName(GateKind kind);

struct Gate {
  GateKind kind = GateKind::Input;
  std::string name;             ///< nonempty for inputs; optional elsewhere
  std::vector<NetId> fanins;
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declare a primary input (unique name); returns its net.
  NetId addInput(const std::string& inputName);
  NetId constant(bool value);
  NetId addInv(NetId a);
  /// And/Or of >= 1 fanins (a single fanin passes through without a gate).
  NetId addAnd(std::vector<NetId> fanins);
  NetId addOr(std::vector<NetId> fanins);

  /// Mark a net as a named primary output.
  void markOutput(const std::string& outputName, NetId net);

  std::size_t numGates() const { return gates_.size(); }
  const Gate& gate(NetId id) const;
  const std::vector<std::pair<std::string, NetId>>& outputs() const {
    return outputs_;
  }
  std::vector<NetId> inputNets() const;
  NetId findInput(const std::string& inputName) const;  ///< kNoNet if absent

  /// Evaluate all nets under an assignment (asserted input names = 1).
  std::vector<bool> evaluate(const std::unordered_set<std::string>& asserted) const;
  /// Evaluate one named output.
  bool evaluateOutput(const std::string& outputName,
                      const std::unordered_set<std::string>& asserted) const;

  /// Structural checks (fanin arities, acyclicity by construction, outputs
  /// resolve); throws tauhls::Error on violation.
  void validate() const;

 private:
  NetId add(Gate g);

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<std::pair<std::string, NetId>> outputs_;
  NetId const0_ = kNoNet;
  NetId const1_ = kNoNet;
};

}  // namespace tauhls::netlist
