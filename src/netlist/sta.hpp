// Static timing analysis over the gate-level netlist.
//
// Replaces the naive depth*nsPerLevel bound (analyze.hpp) with a real
// topological timing pass: per-gate-kind delays, fanout-aware output
// loading, arrival/required propagation, per-net slack, and extraction of
// the worst path as a named wire sequence.  The controller's clock budget
// is the paper's CC_TAU = max(SD, FD): every control unit's next-state and
// completion logic must settle inside it, minus the register margin.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace tauhls::netlist {

/// Per-gate-kind delay/load model.  An n-input AND/OR is costed as its
/// 2-input tree decomposition (ceil(log2 n) levels); each fanout beyond the
/// first adds wire/pin load to the driving gate.
struct DelayModel {
  double invNs = 0.30;            ///< inverter propagation
  double andLevelNs = 0.50;       ///< per 2-input AND level
  double orLevelNs = 0.55;        ///< per 2-input OR level
  double inputArrivalNs = 0.20;   ///< register clock-to-Q at the inputs
  double loadNsPerFanout = 0.05;  ///< added per fanout beyond the first
};

/// One hop of the critical path, input-to-output order.
struct TimingPathNode {
  NetId net = kNoNet;
  std::string label;     ///< input/output name when named, else kind#net
  double arrivalNs = 0.0;
};

struct StaResult {
  std::vector<double> arrivalNs;   ///< per net
  std::vector<double> requiredNs;  ///< per net (+inf outside any output cone)
  std::vector<double> slackNs;     ///< requiredNs - arrivalNs

  double clockNs = 0.0;
  double marginNs = 0.0;
  double worstArrivalNs = 0.0;     ///< critical-path delay
  double worstSlackNs = 0.0;       ///< min slack over constrained nets
  std::string worstOutput;         ///< output name owning the critical path
  std::vector<TimingPathNode> worstPath;

  bool meetsClock() const { return worstSlackNs >= 0.0; }
};

/// Run STA against a clock of `clockNs` with `marginNs` reserved for
/// register setup/clock skew.  The netlist's topological gate order makes
/// both sweeps single-pass.
StaResult runSta(const Netlist& net, double clockNs, double marginNs = 0.0,
                 const DelayModel& model = DelayModel{});

/// Render `worstPath` as "a -> b -> c" for diagnostics.
std::string formatWorstPath(const StaResult& sta);

}  // namespace tauhls::netlist
