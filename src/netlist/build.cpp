#include "netlist/build.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "synth/encoding.hpp"

namespace tauhls::netlist {

ControllerNetlist buildControllerNetlist(const fsm::Fsm& fsm,
                                         synth::EncodingStyle style) {
  return buildControllerNetlist(fsm, style, synth::synthesize(fsm, style));
}

ControllerNetlist buildControllerNetlist(const fsm::Fsm& fsm,
                                         synth::EncodingStyle /*style*/,
                                         const synth::SynthesizedFsm& syn) {
  ControllerNetlist cn;
  cn.net = Netlist(fsm.name() + "_logic");
  cn.stateBits = syn.flipFlops;

  // Primary inputs in the synth variable order: state bits, then signals.
  std::vector<NetId> var;
  for (int b = 0; b < syn.flipFlops; ++b) {
    var.push_back(cn.net.addInput("state" + std::to_string(b)));
  }
  for (const std::string& in : fsm.inputs()) {
    var.push_back(cn.net.addInput(in));
  }

  // Shared input inverters.
  std::vector<NetId> invVar(var.size(), kNoNet);
  auto literalNet = [&](int v, bool positive) {
    if (positive) return var[static_cast<std::size_t>(v)];
    NetId& cached = invVar[static_cast<std::size_t>(v)];
    if (cached == kNoNet) cached = cn.net.addInv(var[static_cast<std::size_t>(v)]);
    return cached;
  };

  // Shared AND plane: one gate per distinct cube across all functions.
  std::map<std::pair<std::uint64_t, std::uint64_t>, NetId> cubeNet;
  auto netForCube = [&](const logic::Cube& cube) {
    const std::pair<std::uint64_t, std::uint64_t> key{cube.careMask(),
                                                      cube.valueMask()};
    auto it = cubeNet.find(key);
    if (it != cubeNet.end()) return it->second;
    std::vector<NetId> fanins;
    for (int v = 0; v < cube.numVars(); ++v) {
      if (cube.hasLiteral(v)) fanins.push_back(literalNet(v, cube.literalPositive(v)));
    }
    const NetId net = fanins.empty() ? cn.net.constant(true)
                                     : cn.net.addAnd(std::move(fanins));
    cubeNet.emplace(key, net);
    return net;
  };

  auto netForCover = [&](const logic::Cover& cover) {
    if (cover.empty()) return cn.net.constant(false);
    std::vector<NetId> terms;
    terms.reserve(cover.numCubes());
    for (const logic::Cube& cube : cover.cubes()) terms.push_back(netForCube(cube));
    return cn.net.addOr(std::move(terms));
  };

  for (int b = 0; b < syn.flipFlops; ++b) {
    cn.net.markOutput("ns" + std::to_string(b),
                      netForCover(syn.nextStateLogic[static_cast<std::size_t>(b)]));
  }
  for (std::size_t o = 0; o < fsm.outputs().size(); ++o) {
    cn.net.markOutput(fsm.outputs()[o], netForCover(syn.outputLogic[o]));
  }
  cn.net.validate();
  return cn;
}

bool verifyAgainstFsm(const ControllerNetlist& cn, const fsm::Fsm& fsm,
                      synth::EncodingStyle style) {
  const synth::Encoding enc = synth::encodeStates(fsm, style);
  TAUHLS_CHECK(enc.bits == cn.stateBits, "encoding/netlist bit-count mismatch");
  const std::size_t numInputs = fsm.inputs().size();
  TAUHLS_CHECK(cn.stateBits + numInputs <= 24,
               "exhaustive verification bounded to 24 variables");

  for (int s = 0; s < static_cast<int>(fsm.numStates()); ++s) {
    const std::uint32_t code = enc.codeOf[static_cast<std::size_t>(s)];
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << numInputs); ++a) {
      std::unordered_set<std::string> asserted;
      for (int b = 0; b < cn.stateBits; ++b) {
        if ((code >> b) & 1) asserted.insert("state" + std::to_string(b));
      }
      for (std::size_t i = 0; i < numInputs; ++i) {
        if ((a >> i) & 1) asserted.insert(fsm.inputs()[i]);
      }
      const std::vector<bool> nets = cn.net.evaluate(asserted);
      const fsm::Fsm::StepResult ref = fsm.step(s, [&] {
        std::unordered_set<std::string> inputsOnly;
        for (std::size_t i = 0; i < numInputs; ++i) {
          if ((a >> i) & 1) inputsOnly.insert(fsm.inputs()[i]);
        }
        return inputsOnly;
      }());
      const std::uint32_t wantCode = enc.codeOf[static_cast<std::size_t>(ref.nextState)];
      for (const auto& [name, net] : cn.net.outputs()) {
        bool want = false;
        if (name.rfind("ns", 0) == 0 &&
            name.find_first_not_of("0123456789", 2) == std::string::npos) {
          const int bit = std::stoi(name.substr(2));
          want = (wantCode >> bit) & 1;
        } else {
          want = std::find(ref.outputs.begin(), ref.outputs.end(), name) !=
                 ref.outputs.end();
        }
        if (nets[net] != want) return false;
      }
    }
  }
  return true;
}

}  // namespace tauhls::netlist
