// Multi-level variable-computation-time arithmetic units.
//
// The paper (§2.1, §6) restricts the exposition to two-level TAUs "just for
// convenience of explanation -- the proposed method can be applied to other
// kinds of synchronous VCAUs in the same manner".  This module delivers that
// generalization: a unit with L delay levels completes after 1..L clock
// cycles; its completion generator raises C during cycle k exactly when the
// operands fall in level k's class.  Algorithm 1 generalizes per operation
// to the state chain S_i = S_i^0 -> S_i^1 -> ... -> S_i^{L-1} (the paper's
// S_i' is the L = 2 special case).
#pragma once

#include <string>
#include <vector>

#include "dfg/op.hpp"

namespace tauhls::vcau {

struct MultiLevelUnitType {
  std::string name;
  dfg::ResourceClass cls = dfg::ResourceClass::None;
  /// Level k completes within (k+1) clock cycles; levelDelaysNs must be
  /// strictly increasing and levelDelaysNs[k] must fit in k+1 cycles of the
  /// system clock (validated against the clock at controller build time).
  std::vector<double> levelDelaysNs;
  /// Probability that an operation's operands fall in level k (sums to 1).
  std::vector<double> levelProbabilities;

  int numLevels() const { return static_cast<int>(levelDelaysNs.size()); }
  double worstDelayNs() const { return levelDelaysNs.back(); }
};

/// Build and validate a multi-level unit type.
MultiLevelUnitType multiLevelUnit(std::string name, dfg::ResourceClass cls,
                                  std::vector<double> levelDelaysNs,
                                  std::vector<double> levelProbabilities);

/// Validate invariants; additionally checks the cycles-per-level contract
/// against `clockNs` when positive.
void validateMultiLevelUnit(const MultiLevelUnitType& type,
                            double clockNs = 0.0);

}  // namespace tauhls::vcau
