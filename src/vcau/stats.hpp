// Latency statistics for multi-level VCAUs: exact expectation over all
// level assignments (product of per-op level distributions) for small
// designs, Monte-Carlo beyond.
#pragma once

#include "vcau/makespan.hpp"

namespace tauhls::vcau {

enum class ControlStyle { Distributed, CentSync };

/// Exact expected makespan (cycles); enumeration bounded to 2^20 total
/// assignments (levels^numVariableOps).
double averageCyclesExact(const sched::ScheduledDfg& s,
                          const MultiLevelLibrary& overrides,
                          ControlStyle style);

/// Monte-Carlo expectation.
double averageCyclesMonteCarlo(const sched::ScheduledDfg& s,
                               const MultiLevelLibrary& overrides,
                               ControlStyle style, int samples,
                               std::uint64_t seed = 1);

/// Dispatcher: exact when the assignment space fits 2^20, else Monte-Carlo
/// with `mcSamples` samples.
double averageCycles(const sched::ScheduledDfg& s,
                     const MultiLevelLibrary& overrides, ControlStyle style,
                     int mcSamples = 20000);

}  // namespace tauhls::vcau
