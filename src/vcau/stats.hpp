// Latency statistics for multi-level VCAUs: exact expectation over all
// level assignments (product of per-op level distributions) for small
// designs, Monte-Carlo beyond.  The exact enumeration runs the mixed-radix
// odometer in parallel over a fixed chunk grid (common/parallel.hpp) with
// partials folded in chunk order, so results are bit-identical for any
// thread count; assignment weights are maintained incrementally via suffix
// products rather than recomputed per assignment.
#pragma once

#include "vcau/makespan.hpp"

namespace tauhls::vcau {

enum class ControlStyle { Distributed, CentSync };

/// Exact expected makespan (cycles); enumeration bounded to 2^20 total
/// assignments (levels^numVariableOps).
double averageCyclesExact(const sched::ScheduledDfg& s,
                          const MultiLevelLibrary& overrides,
                          ControlStyle style);

/// Monte-Carlo expectation.
double averageCyclesMonteCarlo(const sched::ScheduledDfg& s,
                               const MultiLevelLibrary& overrides,
                               ControlStyle style, int samples,
                               std::uint64_t seed = 1);

/// Dispatcher: exact when the assignment space fits 2^20, else Monte-Carlo
/// with `mcSamples` samples.
double averageCycles(const sched::ScheduledDfg& s,
                     const MultiLevelLibrary& overrides, ControlStyle style,
                     int mcSamples = 20000);

}  // namespace tauhls::vcau
