#include "vcau/unit.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace tauhls::vcau {

MultiLevelUnitType multiLevelUnit(std::string name, dfg::ResourceClass cls,
                                  std::vector<double> levelDelaysNs,
                                  std::vector<double> levelProbabilities) {
  MultiLevelUnitType t;
  t.name = std::move(name);
  t.cls = cls;
  t.levelDelaysNs = std::move(levelDelaysNs);
  t.levelProbabilities = std::move(levelProbabilities);
  validateMultiLevelUnit(t);
  return t;
}

void validateMultiLevelUnit(const MultiLevelUnitType& type, double clockNs) {
  TAUHLS_CHECK(!type.name.empty(), "multi-level unit needs a name");
  TAUHLS_CHECK(type.cls != dfg::ResourceClass::None,
               "multi-level unit needs a resource class");
  TAUHLS_CHECK(!type.levelDelaysNs.empty(), "at least one delay level");
  TAUHLS_CHECK(type.levelDelaysNs.size() == type.levelProbabilities.size(),
               "one probability per delay level");
  for (std::size_t k = 0; k < type.levelDelaysNs.size(); ++k) {
    TAUHLS_CHECK(type.levelDelaysNs[k] > 0.0, "level delays must be positive");
    if (k > 0) {
      TAUHLS_CHECK(type.levelDelaysNs[k] > type.levelDelaysNs[k - 1],
                   "level delays must be strictly increasing");
    }
    TAUHLS_CHECK(type.levelProbabilities[k] >= 0.0 &&
                     type.levelProbabilities[k] <= 1.0,
                 "level probabilities must lie in [0,1]");
  }
  const double sum = std::accumulate(type.levelProbabilities.begin(),
                                     type.levelProbabilities.end(), 0.0);
  TAUHLS_CHECK(std::abs(sum - 1.0) < 1e-9,
               "level probabilities must sum to 1");
  if (clockNs > 0.0) {
    for (std::size_t k = 0; k < type.levelDelaysNs.size(); ++k) {
      const int cycles =
          static_cast<int>(std::ceil(type.levelDelaysNs[k] / clockNs - 1e-9));
      TAUHLS_CHECK(cycles == static_cast<int>(k) + 1,
                   "level " + std::to_string(k) + " of '" + type.name +
                       "' must take exactly " + std::to_string(k + 1) +
                       " cycles at the given clock");
    }
  }
}

}  // namespace tauhls::vcau
