#include "vcau/stats.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace tauhls::vcau {

using dfg::NodeId;

namespace {

int makespan(const sched::ScheduledDfg& s, const MultiLevelLibrary& overrides,
             ControlStyle style, const LevelClasses& classes) {
  return style == ControlStyle::Distributed
             ? distributedMakespanCycles(s, overrides, classes)
             : syncMakespanCycles(s, overrides, classes);
}

/// Ops with more than one possible level, with their distributions.
struct VariableOp {
  NodeId op;
  std::vector<double> probs;
};

std::vector<VariableOp> variableOps(const sched::ScheduledDfg& s,
                                    const MultiLevelLibrary& overrides) {
  std::vector<VariableOp> out;
  for (NodeId v : s.graph.opIds()) {
    const int unitId = s.binding.unitOf(v);
    const dfg::ResourceClass cls = s.binding.unit(unitId).cls;
    auto it = overrides.find(cls);
    if (it != overrides.end()) {
      if (it->second.numLevels() > 1) out.push_back({v, it->second.levelProbabilities});
    } else if (s.unitIsTelescopic(unitId)) {
      const double p = s.library.typeFor(cls).sdProbability;
      out.push_back({v, {p, 1.0 - p}});
    }
  }
  return out;
}

}  // namespace

double averageCyclesExact(const sched::ScheduledDfg& s,
                          const MultiLevelLibrary& overrides,
                          ControlStyle style) {
  const std::vector<VariableOp> vars = variableOps(s, overrides);
  double space = 1.0;
  for (const VariableOp& v : vars) space *= static_cast<double>(v.probs.size());
  TAUHLS_CHECK(space <= (1 << 20),
               "exact enumeration space too large; use Monte-Carlo");
  const std::uint64_t total = static_cast<std::uint64_t>(space);

  // The mixed-radix odometer (digit 0 fastest) is a bijection between linear
  // indices [0, total) and level assignments, so the space splits into a
  // fixed chunk grid of contiguous index ranges whose partial expectations
  // fold in chunk order -- deterministic for any thread count.  Within a
  // chunk the assignment weight is maintained incrementally via suffix
  // products (weight = suffix[0]; an increment at digit `pos` only refreshes
  // suffix[pos..0]), amortized O(1) per step instead of a full product, and
  // the LevelClasses scratch only rewrites the digits the increment touched.
  const std::uint64_t numChunks = common::chunkCountFor(total);
  const std::uint64_t chunkSize = (total + numChunks - 1) / numChunks;
  return common::parallelReduce<double>(
      static_cast<std::size_t>(numChunks), 0.0,
      [&](std::size_t chunk) {
        const std::uint64_t begin = chunk * chunkSize;
        const std::uint64_t end =
            begin + chunkSize < total ? begin + chunkSize : total;
        if (begin >= end) return 0.0;

        LevelClasses classes;
        classes.levelOf.assign(s.graph.numNodes(), 0);
        std::vector<std::size_t> choice(vars.size(), 0);
        // Decode the chunk's first linear index into odometer digits.
        std::uint64_t rem = begin;
        for (std::size_t i = 0; i < vars.size(); ++i) {
          const std::uint64_t radix = vars[i].probs.size();
          choice[i] = static_cast<std::size_t>(rem % radix);
          rem /= radix;
          classes.levelOf[vars[i].op] = static_cast<int>(choice[i]);
        }
        // suffix[i] = product of probs[j][choice[j]] for j >= i.
        std::vector<double> suffix(vars.size() + 1, 1.0);
        for (std::size_t i = vars.size(); i-- > 0;) {
          suffix[i] = vars[i].probs[choice[i]] * suffix[i + 1];
        }

        double partial = 0.0;
        for (std::uint64_t idx = begin; idx < end; ++idx) {
          const double weight = suffix.front();
          if (weight > 0.0) {
            partial += weight * makespan(s, overrides, style, classes);
          }
          // Increment digit 0, carrying into higher digits on wrap.
          std::size_t pos = 0;
          while (pos < vars.size()) {
            if (++choice[pos] < vars[pos].probs.size()) break;
            choice[pos] = 0;
            ++pos;
          }
          if (pos == vars.size()) break;
          classes.levelOf[vars[pos].op] = static_cast<int>(choice[pos]);
          for (std::size_t i = 0; i < pos; ++i) {
            classes.levelOf[vars[i].op] = 0;
          }
          for (std::size_t i = pos + 1; i-- > 0;) {
            suffix[i] = vars[i].probs[choice[i]] * suffix[i + 1];
          }
        }
        return partial;
      },
      [](double acc, double p) { return acc + p; });
}

double averageCycles(const sched::ScheduledDfg& s,
                     const MultiLevelLibrary& overrides, ControlStyle style,
                     int mcSamples) {
  double space = 1.0;
  for (const VariableOp& v : variableOps(s, overrides)) {
    space *= static_cast<double>(v.probs.size());
  }
  if (space <= (1 << 20)) return averageCyclesExact(s, overrides, style);
  return averageCyclesMonteCarlo(s, overrides, style, mcSamples);
}

double averageCyclesMonteCarlo(const sched::ScheduledDfg& s,
                               const MultiLevelLibrary& overrides,
                               ControlStyle style, int samples,
                               std::uint64_t seed) {
  TAUHLS_CHECK(samples > 0, "need at least one sample");
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    sum += makespan(s, overrides, style,
                    randomLevels(s, overrides, seed + static_cast<std::uint64_t>(i)));
  }
  return sum / samples;
}

}  // namespace tauhls::vcau
