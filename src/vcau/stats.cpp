#include "vcau/stats.hpp"

#include "common/error.hpp"

namespace tauhls::vcau {

using dfg::NodeId;

namespace {

int makespan(const sched::ScheduledDfg& s, const MultiLevelLibrary& overrides,
             ControlStyle style, const LevelClasses& classes) {
  return style == ControlStyle::Distributed
             ? distributedMakespanCycles(s, overrides, classes)
             : syncMakespanCycles(s, overrides, classes);
}

/// Ops with more than one possible level, with their distributions.
struct VariableOp {
  NodeId op;
  std::vector<double> probs;
};

std::vector<VariableOp> variableOps(const sched::ScheduledDfg& s,
                                    const MultiLevelLibrary& overrides) {
  std::vector<VariableOp> out;
  for (NodeId v : s.graph.opIds()) {
    const int unitId = s.binding.unitOf(v);
    const dfg::ResourceClass cls = s.binding.unit(unitId).cls;
    auto it = overrides.find(cls);
    if (it != overrides.end()) {
      if (it->second.numLevels() > 1) out.push_back({v, it->second.levelProbabilities});
    } else if (s.unitIsTelescopic(unitId)) {
      const double p = s.library.typeFor(cls).sdProbability;
      out.push_back({v, {p, 1.0 - p}});
    }
  }
  return out;
}

}  // namespace

double averageCyclesExact(const sched::ScheduledDfg& s,
                          const MultiLevelLibrary& overrides,
                          ControlStyle style) {
  const std::vector<VariableOp> vars = variableOps(s, overrides);
  double total = 1.0;
  for (const VariableOp& v : vars) total *= static_cast<double>(v.probs.size());
  TAUHLS_CHECK(total <= (1 << 20),
               "exact enumeration space too large; use Monte-Carlo");

  LevelClasses classes;
  classes.levelOf.assign(s.graph.numNodes(), 0);
  double expectation = 0.0;

  // Odometer over the per-op level choices.
  std::vector<std::size_t> choice(vars.size(), 0);
  while (true) {
    double weight = 1.0;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      classes.levelOf[vars[i].op] = static_cast<int>(choice[i]);
      weight *= vars[i].probs[choice[i]];
    }
    if (weight > 0.0) {
      expectation += weight * makespan(s, overrides, style, classes);
    }
    // Increment.
    std::size_t pos = 0;
    while (pos < vars.size()) {
      if (++choice[pos] < vars[pos].probs.size()) break;
      choice[pos] = 0;
      ++pos;
    }
    if (pos == vars.size()) break;
  }
  return expectation;
}

double averageCycles(const sched::ScheduledDfg& s,
                     const MultiLevelLibrary& overrides, ControlStyle style,
                     int mcSamples) {
  double space = 1.0;
  for (const VariableOp& v : variableOps(s, overrides)) {
    space *= static_cast<double>(v.probs.size());
  }
  if (space <= (1 << 20)) return averageCyclesExact(s, overrides, style);
  return averageCyclesMonteCarlo(s, overrides, style, mcSamples);
}

double averageCyclesMonteCarlo(const sched::ScheduledDfg& s,
                               const MultiLevelLibrary& overrides,
                               ControlStyle style, int samples,
                               std::uint64_t seed) {
  TAUHLS_CHECK(samples > 0, "need at least one sample");
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    sum += makespan(s, overrides, style,
                    randomLevels(s, overrides, seed + static_cast<std::uint64_t>(i)));
  }
  return sum / samples;
}

}  // namespace tauhls::vcau
