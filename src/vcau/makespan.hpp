// Latency engines for multi-level VCAUs: per-op durations come from a level
// assignment (level k => k+1 cycles) instead of the two-level SD/LD bool.
#pragma once

#include <vector>

#include "vcau/controller.hpp"

namespace tauhls::vcau {

/// Per-op delay-level assignment (0-based level per node; fixed-unit ops
/// must carry level 0).
struct LevelClasses {
  std::vector<int> levelOf;

  int level(dfg::NodeId v) const { return levelOf[v]; }
};

/// All ops at the fastest / slowest level of their unit.
LevelClasses allFastest(const sched::ScheduledDfg& s,
                        const MultiLevelLibrary& overrides);
LevelClasses allSlowest(const sched::ScheduledDfg& s,
                        const MultiLevelLibrary& overrides);

/// Seeded sample from each overridden unit's level distribution; two-level
/// TAU classes sample Bernoulli(P) as usual.
LevelClasses randomLevels(const sched::ScheduledDfg& s,
                          const MultiLevelLibrary& overrides, std::uint64_t seed);

/// Distributed makespan (cycles) under the level assignment.
int distributedMakespanCycles(const sched::ScheduledDfg& s,
                              const MultiLevelLibrary& overrides,
                              const LevelClasses& classes);

/// Synchronized-baseline makespan: each TAUBM step costs the max level
/// duration among its variable-latency ops.
int syncMakespanCycles(const sched::ScheduledDfg& s,
                       const MultiLevelLibrary& overrides,
                       const LevelClasses& classes);

/// Cycles op `v` occupies its unit at level `level`.
int opLevelCycles(const sched::ScheduledDfg& s,
                  const MultiLevelLibrary& overrides, dfg::NodeId v, int level);

}  // namespace tauhls::vcau
