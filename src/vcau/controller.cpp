#include "vcau/controller.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "fsm/signal.hpp"

namespace tauhls::vcau {

using dfg::NodeId;

int levelsOfUnit(const sched::ScheduledDfg& s,
                 const MultiLevelLibrary& overrides, int unitId) {
  const dfg::ResourceClass cls = s.binding.unit(unitId).cls;
  auto it = overrides.find(cls);
  if (it != overrides.end()) return it->second.numLevels();
  return s.unitIsTelescopic(unitId) ? 2 : 1;
}

namespace {

std::vector<std::string> externalPredSignals(const sched::ScheduledDfg& s,
                                             NodeId op, int unitId) {
  std::vector<std::string> out;
  for (NodeId p : s.graph.dependencePredecessors(op)) {
    if (!s.graph.isOp(p)) continue;
    if (s.binding.unitOf(p) != unitId) {
      out.push_back(fsm::opCompletionSignal(s.graph.node(p).name));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

fsm::UnitController buildController(const sched::ScheduledDfg& s,
                                    const MultiLevelLibrary& overrides,
                                    int unitId) {
  const sched::UnitInstance& unit = s.binding.unit(unitId);
  const std::vector<NodeId>& seq = s.binding.sequenceOf(unitId);
  const int levels = levelsOfUnit(s, overrides, unitId);
  const int n = static_cast<int>(seq.size());

  fsm::UnitController ctl;
  ctl.unitId = unitId;
  ctl.telescopic = levels > 1;
  ctl.ops = seq;
  ctl.fsm = fsm::Fsm("D_FSM_" + unit.name);
  fsm::Fsm& machine = ctl.fsm;

  const std::string cT = fsm::unitCompletionSignal(unit);
  if (levels > 1) machine.addInput(cT);

  std::vector<std::vector<std::string>> preds(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    preds[static_cast<std::size_t>(i)] = externalPredSignals(s, seq[i], unitId);
    for (const std::string& sig : preds[static_cast<std::size_t>(i)]) {
      machine.addInput(sig);
      ctl.latchedInputs.push_back(sig);
    }
    const std::string& opName = s.graph.node(seq[i]).name;
    machine.addOutput(fsm::operandFetchSignal(opName));
    machine.addOutput(fsm::registerEnableSignal(opName));
    machine.addOutput(fsm::opCompletionSignal(opName));
  }
  std::sort(ctl.latchedInputs.begin(), ctl.latchedInputs.end());
  ctl.latchedInputs.erase(
      std::unique(ctl.latchedInputs.begin(), ctl.latchedInputs.end()),
      ctl.latchedInputs.end());

  // States: level chain per op (S<i>, S<i>p, S<i>pp, ...), R<i> when needed.
  std::vector<std::vector<int>> stateS(static_cast<std::size_t>(n));
  std::vector<int> stateR(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < levels; ++k) {
      stateS[static_cast<std::size_t>(i)].push_back(machine.addState(
          numbered("S", i) + std::string(static_cast<std::size_t>(k), 'p')));
    }
    if (!preds[static_cast<std::size_t>(i)].empty()) {
      stateR[static_cast<std::size_t>(i)] =
          machine.addState(numbered("R", i));
    }
  }
  machine.setInitial(stateR[0] != -1 ? stateR[0] : stateS[0][0]);

  for (int i = 0; i < n; ++i) {
    const int j = (i + 1) % n;
    const std::string& opName = s.graph.node(seq[i]).name;
    const std::vector<std::string> completing = {
        fsm::operandFetchSignal(opName), fsm::registerEnableSignal(opName),
        fsm::opCompletionSignal(opName)};
    const auto& predsNext = preds[static_cast<std::size_t>(j)];

    auto addCompleting = [&](int src, const fsm::Guard& base) {
      if (predsNext.empty()) {
        machine.addTransition(src, stateS[static_cast<std::size_t>(j)][0], base,
                              completing);
      } else {
        machine.addTransition(src, stateS[static_cast<std::size_t>(j)][0],
                              base.conjoin(fsm::Guard::allOf(predsNext)),
                              completing);
        machine.addTransition(src, stateR[static_cast<std::size_t>(j)],
                              base.conjoin(fsm::Guard::notAllOf(predsNext)),
                              completing);
      }
    };

    for (int k = 0; k < levels; ++k) {
      const int src = stateS[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
      if (k < levels - 1) {
        machine.addTransition(src,
                              stateS[static_cast<std::size_t>(i)]
                                    [static_cast<std::size_t>(k + 1)],
                              fsm::Guard::literal(cT, false),
                              {fsm::operandFetchSignal(opName)});
        addCompleting(src, fsm::Guard::literal(cT, true));
      } else {
        addCompleting(src, fsm::Guard::always());
      }
    }
    if (stateR[static_cast<std::size_t>(j)] != -1) {
      machine.addTransition(stateR[static_cast<std::size_t>(j)],
                            stateS[static_cast<std::size_t>(j)][0],
                            fsm::Guard::allOf(predsNext), {});
      machine.addTransition(stateR[static_cast<std::size_t>(j)],
                            stateR[static_cast<std::size_t>(j)],
                            fsm::Guard::notAllOf(predsNext), {});
    }
  }
  fsm::validateFsm(machine);
  return ctl;
}

}  // namespace

fsm::DistributedControlUnit buildMultiLevelDistributed(
    const sched::ScheduledDfg& s, const MultiLevelLibrary& overrides) {
  for (const auto& [cls, type] : overrides) {
    TAUHLS_CHECK(type.cls == cls, "override keyed under the wrong class");
    validateMultiLevelUnit(type, s.clockNs);
  }
  fsm::DistributedControlUnit dcu;
  for (int u = 0; u < static_cast<int>(s.binding.numUnits()); ++u) {
    dcu.controllers.push_back(buildController(s, overrides, u));
  }
  for (std::size_t c = 0; c < dcu.controllers.size(); ++c) {
    const fsm::UnitController& ctl = dcu.controllers[c];
    if (ctl.telescopic) {
      dcu.externalInputs.push_back(
          fsm::unitCompletionSignal(s.binding.unit(ctl.unitId)));
    }
    for (NodeId op : ctl.ops) {
      dcu.producerOf[fsm::opCompletionSignal(s.graph.node(op).name)] =
          static_cast<int>(c);
    }
  }
  for (std::size_t c = 0; c < dcu.controllers.size(); ++c) {
    for (const std::string& sig : dcu.controllers[c].latchedInputs) {
      dcu.consumersOf[sig].insert(static_cast<int>(c));
    }
  }
  return dcu;
}

}  // namespace tauhls::vcau
