#include "vcau/interp.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <unordered_set>

#include "common/error.hpp"
#include "fsm/signal.hpp"

namespace tauhls::vcau {

using dfg::NodeId;

namespace {

/// Parse "S<i>p...p" (k trailing p's = level k) / "R<i>".
struct ParsedState {
  char kind = '?';
  int index = -1;
  int level = 0;
};

ParsedState parseState(const std::string& name) {
  ParsedState p;
  if (name.size() < 2) return p;
  std::size_t end = name.size();
  while (end > 1 && name[end - 1] == 'p') {
    ++p.level;
    --end;
  }
  const std::string digits = name.substr(1, end - 1);
  if (digits.empty()) return p;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return p;
  }
  p.index = std::stoi(digits);
  if (name[0] == 'S') p.kind = 'S';
  if (name[0] == 'R' && p.level == 0) p.kind = 'R';
  return p;
}

}  // namespace

sim::SimTrace runDistributed(const fsm::DistributedControlUnit& dcu,
                             const sched::ScheduledDfg& s,
                             const MultiLevelLibrary& overrides,
                             const LevelClasses& classes, int maxCycles) {
  TAUHLS_CHECK(classes.levelOf.size() == s.graph.numNodes(),
               "level-class vector size mismatch");
  // Guard against class assignments outside the overridden units' ranges.
  for (dfg::NodeId v : s.graph.opIds()) {
    const int levels = levelsOfUnit(s, overrides, s.binding.unitOf(v));
    TAUHLS_CHECK(classes.level(v) >= 0 && classes.level(v) < levels,
                 "level out of range for op " + s.graph.node(v).name);
  }
  const std::size_t n = dcu.controllers.size();
  std::vector<int> state(n);
  std::vector<std::set<std::string>> latches(n);
  for (std::size_t c = 0; c < n; ++c) state[c] = dcu.controllers[c].fsm.initial();

  std::set<std::string> pendingRe;
  for (NodeId v : s.graph.opIds()) {
    pendingRe.insert(fsm::registerEnableSignal(s.graph.node(v).name));
  }

  sim::SimTrace trace;
  for (int cycle = 0; cycle < maxCycles && !pendingRe.empty(); ++cycle) {
    // Datapath: C during the completing level's cycle.
    std::unordered_set<std::string> external;
    for (std::size_t c = 0; c < n; ++c) {
      const fsm::UnitController& ctl = dcu.controllers[c];
      if (!ctl.telescopic) continue;
      const ParsedState p = parseState(ctl.fsm.stateName(state[c]));
      if (p.kind == 'S' && p.level == classes.level(ctl.ops[p.index])) {
        external.insert(
            fsm::unitCompletionSignal(s.binding.unit(ctl.unitId)));
      }
    }
    std::unordered_set<std::string> emitted;
    for (int iter = 0;; ++iter) {
      TAUHLS_ASSERT(iter < 4, "completion-pulse fixpoint did not converge");
      std::unordered_set<std::string> next;
      for (std::size_t c = 0; c < n; ++c) {
        std::unordered_set<std::string> asserted = external;
        asserted.insert(emitted.begin(), emitted.end());
        asserted.insert(latches[c].begin(), latches[c].end());
        const auto r = dcu.controllers[c].fsm.step(state[c], asserted);
        for (const std::string& o : r.outputs) {
          if (o.starts_with("CCO_")) next.insert(o);
        }
      }
      if (next == emitted) break;
      emitted = std::move(next);
    }
    std::vector<std::string> cycleOutputs;
    for (std::size_t c = 0; c < n; ++c) {
      std::unordered_set<std::string> asserted = external;
      asserted.insert(emitted.begin(), emitted.end());
      asserted.insert(latches[c].begin(), latches[c].end());
      const auto r = dcu.controllers[c].fsm.step(state[c], asserted);
      state[c] = r.nextState;
      for (const std::string& o : r.outputs) {
        cycleOutputs.push_back(o);
        pendingRe.erase(o);
      }
      for (const std::string& sig : dcu.controllers[c].latchedInputs) {
        if (emitted.contains(sig)) latches[c].insert(sig);
      }
    }
    std::sort(cycleOutputs.begin(), cycleOutputs.end());
    trace.outputsPerCycle.push_back(std::move(cycleOutputs));
    std::vector<std::string> ext(external.begin(), external.end());
    std::sort(ext.begin(), ext.end());
    trace.externalsPerCycle.push_back(std::move(ext));
  }
  TAUHLS_CHECK(pendingRe.empty(),
               "multi-level simulation did not finish within the cycle bound");
  trace.latencyCycles = static_cast<int>(trace.outputsPerCycle.size());
  return trace;
}

}  // namespace tauhls::vcau
