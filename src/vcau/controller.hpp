// Generalized Algorithm 1 for multi-level VCAUs.
//
// Per bound operation O_i of an L-level unit: states S_i^0 .. S_i^{L-1}
// (named "S<i>", "S<i>p", "S<i>pp", ...) plus R_i when O_i has cross-unit
// predecessors.  In S_i^k with k < L-1 the guard reads the completion
// signal C: when low, advance to S_i^{k+1}; when high (or unconditionally in
// the last level) the op completes with the usual OF/RE/CCO outputs and the
// predecessor-guarded hop to the next op's S/R state.  With L = 2 this is
// exactly the paper's construction (asserted by the tests).
#pragma once

#include <map>

#include "fsm/distributed.hpp"
#include "vcau/unit.hpp"

namespace tauhls::vcau {

/// Per-class override of the scheduled DFG's unit types.  Classes absent
/// from the map keep their (validated two-level / fixed) tau::UnitType.
using MultiLevelLibrary = std::map<dfg::ResourceClass, MultiLevelUnitType>;

/// Build the distributed control unit with multi-level controllers for the
/// overridden classes.  Level-cycle contracts are validated against
/// s.clockNs.  Controllers of non-overridden classes are the standard
/// Algorithm 1 machines.
fsm::DistributedControlUnit buildMultiLevelDistributed(
    const sched::ScheduledDfg& s, const MultiLevelLibrary& overrides);

/// Number of delay levels of the unit executing `unitId` (1 for fixed units,
/// 2 for standard TAUs, overrides.numLevels() when overridden).
int levelsOfUnit(const sched::ScheduledDfg& s, const MultiLevelLibrary& overrides,
                 int unitId);

}  // namespace tauhls::vcau
