// FSM-level interpretation of multi-level distributed control units: the
// datapath raises a unit's C during the cycle in which its current op's
// operand level completes.  Ground truth for the vcau makespan engine.
#pragma once

#include "sim/interp.hpp"
#include "vcau/makespan.hpp"

namespace tauhls::vcau {

/// Run one DFG iteration; returns the same trace shape as sim::runDistributed.
sim::SimTrace runDistributed(const fsm::DistributedControlUnit& dcu,
                             const sched::ScheduledDfg& s,
                             const MultiLevelLibrary& overrides,
                             const LevelClasses& classes, int maxCycles = 100000);

}  // namespace tauhls::vcau
