#include "vcau/makespan.hpp"

#include <algorithm>
#include <random>

#include "common/error.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::vcau {

using dfg::NodeId;

namespace {

int levelsOfOp(const sched::ScheduledDfg& s, const MultiLevelLibrary& overrides,
               NodeId v) {
  return levelsOfUnit(s, overrides, s.binding.unitOf(v));
}

}  // namespace

int opLevelCycles(const sched::ScheduledDfg& s,
                  const MultiLevelLibrary& overrides, NodeId v, int level) {
  const int levels = levelsOfOp(s, overrides, v);
  TAUHLS_CHECK(level >= 0 && level < levels,
               "level out of range for op " + s.graph.node(v).name);
  // Contract: level k takes k+1 cycles (validated at controller build).
  return level + 1;
}

LevelClasses allFastest(const sched::ScheduledDfg& s,
                        const MultiLevelLibrary& overrides) {
  (void)overrides;
  LevelClasses c;
  c.levelOf.assign(s.graph.numNodes(), 0);
  return c;
}

LevelClasses allSlowest(const sched::ScheduledDfg& s,
                        const MultiLevelLibrary& overrides) {
  LevelClasses c;
  c.levelOf.assign(s.graph.numNodes(), 0);
  for (NodeId v : s.graph.opIds()) {
    c.levelOf[v] = levelsOfOp(s, overrides, v) - 1;
  }
  return c;
}

LevelClasses randomLevels(const sched::ScheduledDfg& s,
                          const MultiLevelLibrary& overrides,
                          std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  LevelClasses c;
  c.levelOf.assign(s.graph.numNodes(), 0);
  for (NodeId v : s.graph.opIds()) {
    const int unitId = s.binding.unitOf(v);
    const dfg::ResourceClass cls = s.binding.unit(unitId).cls;
    auto it = overrides.find(cls);
    if (it != overrides.end()) {
      std::discrete_distribution<int> d(it->second.levelProbabilities.begin(),
                                        it->second.levelProbabilities.end());
      c.levelOf[v] = d(rng);
    } else if (s.unitIsTelescopic(unitId)) {
      std::bernoulli_distribution slow(
          1.0 - s.library.typeFor(cls).sdProbability);
      c.levelOf[v] = slow(rng) ? 1 : 0;
    }
  }
  return c;
}

int distributedMakespanCycles(const sched::ScheduledDfg& s,
                              const MultiLevelLibrary& overrides,
                              const LevelClasses& classes) {
  TAUHLS_CHECK(classes.levelOf.size() == s.graph.numNodes(),
               "level-class vector size mismatch");
  std::vector<NodeId> prevOnUnit(s.graph.numNodes(), dfg::kNoNode);
  for (std::size_t u = 0; u < s.binding.numUnits(); ++u) {
    const auto& seq = s.binding.sequenceOf(static_cast<int>(u));
    for (std::size_t i = 1; i < seq.size(); ++i) prevOnUnit[seq[i]] = seq[i - 1];
  }
  std::vector<int> finish(s.graph.numNodes(), -1);
  int last = -1;
  for (NodeId v : dfg::topologicalOrder(s.graph)) {
    if (!s.graph.isOp(v)) continue;
    int start = 0;
    for (NodeId p : s.graph.dependencePredecessors(v)) {
      if (s.graph.isOp(p)) start = std::max(start, finish[p] + 1);
    }
    if (prevOnUnit[v] != dfg::kNoNode) {
      start = std::max(start, finish[prevOnUnit[v]] + 1);
    }
    finish[v] = start + opLevelCycles(s, overrides, v, classes.level(v)) - 1;
    last = std::max(last, finish[v]);
  }
  return last + 1;
}

int syncMakespanCycles(const sched::ScheduledDfg& s,
                       const MultiLevelLibrary& overrides,
                       const LevelClasses& classes) {
  TAUHLS_CHECK(classes.levelOf.size() == s.graph.numNodes(),
               "level-class vector size mismatch");
  int cycles = 0;
  for (const sched::TaubmStep& step : s.taubm.steps) {
    int duration = 1;
    for (NodeId v : step.ops) {
      duration = std::max(
          duration, opLevelCycles(s, overrides, v, classes.level(v)));
    }
    cycles += duration;
  }
  return cycles;
}

}  // namespace tauhls::vcau
