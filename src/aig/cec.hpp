// Combinational equivalence checking over a shared Aig.
//
// A query "is a == b under constraint c?" becomes a miter literal
// m = c & (a ^ b) built in the AIG itself (so the rewriting layer discharges
// trivially-equal cones for free), Tseitin-encoded into CNF over the miter's
// structural cone only, and handed to the CDCL solver.  UNSAT proves
// equivalence; SAT yields a named input counterexample; a conflict-budget
// overrun reports Unknown instead of looping on an adversarial instance.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/sat.hpp"

namespace tauhls::aig {

struct CecResult {
  SatResult status = SatResult::Unknown;
  /// Input assignment violating the equivalence (names restricted to the
  /// miter's structural support); empty unless status == Sat.
  std::vector<std::pair<std::string, bool>> counterexample;
  SatStats stats;

  bool equivalent() const { return status == SatResult::Unsat; }
};

/// Prove a == b for all inputs satisfying `constraint` (use kLitTrue for an
/// unconstrained check).  Mutates `g` (the miter cone is hash-consed into
/// it).  `maxConflicts` bounds the SAT search.
CecResult proveEquivalent(Aig& g, Lit a, Lit b, Lit constraint = kLitTrue,
                          std::uint64_t maxConflicts = 200000);

/// Satisfiability of a single literal (is there an input making it true?).
/// Used for vacuity checks on state-validity constraints.
CecResult checkSatisfiable(const Aig& g, Lit root,
                           std::uint64_t maxConflicts = 200000);

/// Incremental equivalence prover: one shared CDCL solver and one Tseitin
/// encoding serve an entire stream of queries over the same (growing) Aig.
/// Each query asserts its miter behind a fresh activation literal, solves
/// under that single assumption, then retires the literal with a unit
/// clause, so the clause database -- encoded cones and learned clauses
/// alike -- carries over to the next query instead of being rebuilt.
/// Verdict-equivalent to a fresh proveEquivalent call per query.
class IncrementalCec {
 public:
  /// The Aig must outlive the prover; prove() may grow it (miter cones are
  /// hash-consed into the shared graph, exactly like proveEquivalent).
  explicit IncrementalCec(Aig& g);
  ~IncrementalCec();
  IncrementalCec(const IncrementalCec&) = delete;
  IncrementalCec& operator=(const IncrementalCec&) = delete;

  /// Prove a == b for all inputs satisfying `constraint`.  The returned
  /// stats are this query's delta of the shared solver's counters.
  CecResult prove(Lit a, Lit b, Lit constraint = kLitTrue,
                  std::uint64_t maxConflicts = 200000);

  /// Cumulative solver counters across every query so far.
  const SatStats& totalStats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tauhls::aig
