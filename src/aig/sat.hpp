// A small self-contained CDCL SAT solver for combinational equivalence
// queries (cec.hpp) and guard/cover reasoning.
//
// Standard architecture, deliberately compact: two-watched-literal
// propagation, first-UIP conflict analysis with clause learning and
// non-chronological backjumping, exponentially-decayed variable activity
// (VSIDS) for decisions, phase saving, and geometric restarts.  The learned
// clause database is size-bounded: clause activities are bumped whenever a
// learned clause participates in conflict analysis and the lowest-activity
// half is periodically dropped (binary and locked clauses are exempt), so a
// long incremental query stream cannot grow the solver without bound.
//
// `solve(assumptions)` provides real incremental solving: assumptions are
// enqueued as successive decision levels ahead of ordinary branching (the
// MiniSat scheme), so the clause set -- including everything learned by
// earlier queries -- persists across calls.  Callers scope per-query
// constraints with activation literals: add the query clauses as
// {-act, ...}, solve({act}), and retire the query with addClause({-act}).
//
// Literal convention matches DIMACS: variables are 1-based ints, a negative
// int is the negated literal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tauhls::aig {

enum class SatResult { Sat, Unsat, Unknown };

const char* satResultName(SatResult r);

struct SatStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned = 0;
  std::uint64_t restarts = 0;

  SatStats& operator+=(const SatStats& o) {
    decisions += o.decisions;
    propagations += o.propagations;
    conflicts += o.conflicts;
    learned += o.learned;
    restarts += o.restarts;
    return *this;
  }
  /// Component-wise difference (for per-query deltas of a shared solver).
  SatStats operator-(const SatStats& o) const {
    return {decisions - o.decisions, propagations - o.propagations,
            conflicts - o.conflicts, learned - o.learned,
            restarts - o.restarts};
  }
};

class SatSolver {
 public:
  /// Allocate a fresh variable; returns its (1-based) index.
  int newVar();
  int numVars() const { return static_cast<int>(assign_.size()); }

  /// Add a clause of DIMACS literals.  Out-of-range variables are allocated
  /// implicitly; an empty clause makes the instance trivially unsatisfiable.
  void addClause(std::vector<int> lits);

  /// Solve the current clause set.  `maxConflicts` bounds the search; when
  /// exceeded the result is Unknown (the caller reports an unproven check
  /// rather than looping forever on an adversarial miter).
  SatResult solve(std::uint64_t maxConflicts = ~std::uint64_t{0});

  /// Solve under `assumptions` (DIMACS literals, each held true for this
  /// call only).  Unsat means unsatisfiable *under the assumptions*; the
  /// clause set itself is untouched, so the solver -- including its learned
  /// clauses -- is reusable for the next query.
  SatResult solve(const std::vector<int>& assumptions,
                  std::uint64_t maxConflicts = ~std::uint64_t{0});

  /// Model value of a variable after a Sat result.
  bool modelValue(int var) const;

  const SatStats& stats() const { return stats_; }

  /// Learned clauses currently alive (deleted ones excluded).
  std::size_t numLearnedClauses() const { return liveLearned_; }
  /// Cap on live learned clauses before activity-based reduction kicks in
  /// (the cap grows geometrically as the instance proves hard).
  void setLearnedLimit(std::size_t limit) { learnedLimit_ = limit; }

 private:
  struct Clause {
    std::vector<int> lits;  ///< internal literals
    double activity = 0.0;
    bool learned = false;
    bool deleted = false;
  };

  // Internal literal encoding: var index v (0-based) -> 2v (positive),
  // 2v+1 (negated).
  static int toInternal(int dimacsLit);
  bool valueOf(int lit) const;         ///< current assignment of internal lit
  bool isUnassigned(int lit) const;
  void assignLit(int lit, int reasonClause);
  bool propagate(int& conflictClause);
  int analyze(int conflictClause, std::vector<int>& learnedOut);
  void backjump(int level);
  void bumpVar(int var);
  void bumpClause(int clauseId);
  void decayActivities();
  bool clauseLocked(int clauseId) const;
  void reduceLearnedDb();
  int pickBranchVar() const;
  SatResult search(const std::vector<int>& assumptions,
                   std::uint64_t maxConflicts);

  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watchers_;      ///< per internal lit: clause ids
  std::vector<signed char> assign_;             ///< per var: -1 unset, 0/1 value
  std::vector<signed char> phase_;              ///< saved phase per var
  std::vector<int> level_;                      ///< decision level per var
  std::vector<int> reason_;                     ///< antecedent clause per var (-1)
  std::vector<double> activity_;
  std::vector<int> trail_;                      ///< assigned internal lits
  std::vector<int> trailLim_;                   ///< trail size per decision level
  std::size_t propagateHead_ = 0;
  double activityInc_ = 1.0;
  double clauseActivityInc_ = 1.0;
  bool unsat_ = false;                          ///< empty clause was added
  std::size_t liveLearned_ = 0;
  std::size_t learnedLimit_ = 4096;
  SatStats stats_;
};

/// Parse a DIMACS CNF document ("c" comments, "p cnf V C" header, clauses
/// terminated by 0).  Returns the clause list; `numVars` receives the
/// header's variable count (grown to fit any larger literal seen).
std::vector<std::vector<int>> parseDimacs(const std::string& text,
                                          int& numVars);

/// Convenience: parse and solve a DIMACS document.
SatResult solveDimacs(const std::string& text,
                      std::uint64_t maxConflicts = ~std::uint64_t{0});

}  // namespace tauhls::aig
