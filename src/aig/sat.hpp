// A small self-contained CDCL SAT solver for combinational equivalence
// queries (cec.hpp) and guard/cover reasoning.
//
// Standard architecture, deliberately compact: two-watched-literal
// propagation, first-UIP conflict analysis with clause learning and
// non-chronological backjumping, exponentially-decayed variable activity
// (VSIDS) for decisions, phase saving, and geometric restarts.  Learned
// clauses are kept (the equivalence miters this repo solves are small enough
// that clause deletion would cost more than it saves).
//
// Literal convention matches DIMACS: variables are 1-based ints, a negative
// int is the negated literal.  `solve` is incremental only in the weak sense
// that clauses may be added between calls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tauhls::aig {

enum class SatResult { Sat, Unsat, Unknown };

const char* satResultName(SatResult r);

struct SatStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned = 0;
};

class SatSolver {
 public:
  /// Allocate a fresh variable; returns its (1-based) index.
  int newVar();
  int numVars() const { return static_cast<int>(assign_.size()); }

  /// Add a clause of DIMACS literals.  Out-of-range variables are allocated
  /// implicitly; an empty clause makes the instance trivially unsatisfiable.
  void addClause(std::vector<int> lits);

  /// Solve the current clause set.  `maxConflicts` bounds the search; when
  /// exceeded the result is Unknown (the caller reports an unproven check
  /// rather than looping forever on an adversarial miter).
  SatResult solve(std::uint64_t maxConflicts = ~std::uint64_t{0});

  /// Model value of a variable after a Sat result.
  bool modelValue(int var) const;

  const SatStats& stats() const { return stats_; }

 private:
  // Internal literal encoding: var index v (0-based) -> 2v (positive),
  // 2v+1 (negated).
  static int toInternal(int dimacsLit);
  bool valueOf(int lit) const;         ///< current assignment of internal lit
  bool isUnassigned(int lit) const;
  void assignLit(int lit, int reasonClause);
  bool propagate(int& conflictClause);
  int analyze(int conflictClause, std::vector<int>& learnedOut);
  void backjump(int level);
  void bumpVar(int var);
  void decayActivities();
  int pickBranchVar() const;

  std::vector<std::vector<int>> clauses_;       ///< internal lits per clause
  std::vector<std::vector<int>> watchers_;      ///< per internal lit: clause ids
  std::vector<signed char> assign_;             ///< per var: -1 unset, 0/1 value
  std::vector<signed char> phase_;              ///< saved phase per var
  std::vector<int> level_;                      ///< decision level per var
  std::vector<int> reason_;                     ///< antecedent clause per var (-1)
  std::vector<double> activity_;
  std::vector<int> trail_;                      ///< assigned internal lits
  std::vector<int> trailLim_;                   ///< trail size per decision level
  std::size_t propagateHead_ = 0;
  double activityInc_ = 1.0;
  bool unsat_ = false;                          ///< empty clause was added
  SatStats stats_;
};

/// Parse a DIMACS CNF document ("c" comments, "p cnf V C" header, clauses
/// terminated by 0).  Returns the clause list; `numVars` receives the
/// header's variable count (grown to fit any larger literal seen).
std::vector<std::vector<int>> parseDimacs(const std::string& text,
                                          int& numVars);

/// Convenience: parse and solve a DIMACS document.
SatResult solveDimacs(const std::string& text,
                      std::uint64_t maxConflicts = ~std::uint64_t{0});

}  // namespace tauhls::aig
