// Bit-parallel ternary (0/1/X) simulation through an Aig.
//
// Every signal carries two planes per 64-instance word: `one` holds the
// known-1 bits, `x` the unknown bits (a cleared bit in both planes is a
// known 0; `one & x == 0` is the canonical-form invariant every operation
// preserves).  An AND node is three bitwise ops over the fanin planes, so a
// full pass over the graph evaluates 64 ternary instances per node at word
// speed -- the same trick bitsim.hpp plays for two-valued patterns.
//
// The evaluation is *monotone in the information order* (X above 0 and 1):
// refining any X input bit to a constant can only refine the outputs, never
// flip a determinate bit.  That is what makes the reset-robustness proof
// (verify/xprop_check.hpp) sound: one all-X run that ends determinate
// subsumes every concrete power-on state and every input refinement.
#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace tauhls::aig {

/// 64 ternary instances: bit b is X when `x` bit b is set, else 0/1 per
/// `one` bit b.  Canonical form keeps `one & x == 0`.
struct XWord {
  std::uint64_t one = 0;
  std::uint64_t x = 0;

  friend bool operator==(const XWord&, const XWord&) = default;
};

/// All 64 instances X / all 0 / all 1.
inline constexpr XWord xAllX() { return {0, ~std::uint64_t{0}}; }
inline constexpr XWord xAllZero() { return {0, 0}; }
inline constexpr XWord xAllOne() { return {~std::uint64_t{0}, 0}; }
/// Concrete word: no X bits, value bits verbatim.
inline constexpr XWord xConcrete(std::uint64_t bits) { return {bits, 0}; }

/// !a: known bits invert, X stays X.
inline constexpr XWord xNot(XWord a) {
  return {~a.one & ~a.x, a.x};
}

/// a & b in Kleene logic: 0 dominates X, X & 1 = X.
inline constexpr XWord xAnd(XWord a, XWord b) {
  const std::uint64_t zero = (~a.one & ~a.x) | (~b.one & ~b.x);
  const std::uint64_t x = (a.x | b.x) & ~zero;
  return {a.one & b.one, x};
}

/// a | b in Kleene logic: 1 dominates X.
inline constexpr XWord xOr(XWord a, XWord b) {
  return xNot(xAnd(xNot(a), xNot(b)));
}

/// sel ? t : e; an X select merges the branches (agreeing determinate bits
/// survive, disagreeing or unknown bits go X).  The consensus term t & e is
/// what keeps agreeing branches determinate under an X select.
inline constexpr XWord xMux(XWord sel, XWord t, XWord e) {
  return xOr(xOr(xAnd(sel, t), xAnd(xNot(sel), e)), xAnd(t, e));
}

/// One combinational sweep of the graph per call: evaluates every node under
/// per-input ternary words.  Node order is construction order, which the Aig
/// guarantees topological, so a single forward pass suffices.
class TernaryEvaluator {
 public:
  /// The Aig must outlive the evaluator.  The graph may keep growing between
  /// run() calls; each run covers the nodes present at that moment.
  explicit TernaryEvaluator(const Aig& g) : g_(&g) {}

  /// Evaluate all nodes under `inputs` (one XWord per declared input, input
  /// order).  Inputs beyond the vector read all-X, so a partially driven
  /// evaluation stays sound.
  void run(const std::vector<XWord>& inputs);

  /// Value of a literal after run(); negation is a plane-local complement.
  XWord value(Lit l) const {
    const XWord v = node_[nodeOf(l)];
    return isNegated(l) ? xNot(v) : v;
  }

  /// AND-node evaluations performed so far (bench observability).
  std::uint64_t gateEvals() const { return gateEvals_; }

 private:
  const Aig* g_;
  std::vector<XWord> node_;
  std::uint64_t gateEvals_ = 0;
};

}  // namespace tauhls::aig
