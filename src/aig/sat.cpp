#include "aig/sat.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace tauhls::aig {

const char* satResultName(SatResult r) {
  switch (r) {
    case SatResult::Sat: return "sat";
    case SatResult::Unsat: return "unsat";
    case SatResult::Unknown: return "unknown";
  }
  return "invalid";
}

int SatSolver::toInternal(int dimacsLit) {
  TAUHLS_CHECK(dimacsLit != 0, "DIMACS literal 0 inside a clause");
  const int var = std::abs(dimacsLit) - 1;
  return var * 2 + (dimacsLit < 0 ? 1 : 0);
}

int SatSolver::newVar() {
  assign_.push_back(-1);
  phase_.push_back(0);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  watchers_.emplace_back();
  watchers_.emplace_back();
  return static_cast<int>(assign_.size());
}

bool SatSolver::valueOf(int lit) const {
  const signed char a = assign_[static_cast<std::size_t>(lit >> 1)];
  TAUHLS_ASSERT(a >= 0, "valueOf on unassigned literal");
  return (a != 0) != ((lit & 1) != 0);
}

bool SatSolver::isUnassigned(int lit) const {
  return assign_[static_cast<std::size_t>(lit >> 1)] < 0;
}

void SatSolver::assignLit(int lit, int reasonClause) {
  const std::size_t var = static_cast<std::size_t>(lit >> 1);
  TAUHLS_ASSERT(assign_[var] < 0, "double assignment");
  assign_[var] = (lit & 1) ? 0 : 1;
  phase_[var] = assign_[var];
  level_[var] = static_cast<int>(trailLim_.size());
  reason_[var] = reasonClause;
  trail_.push_back(lit);
  ++stats_.propagations;
}

void SatSolver::backjump(int targetLevel) {
  if (static_cast<int>(trailLim_.size()) <= targetLevel) return;
  const std::size_t keep =
      static_cast<std::size_t>(trailLim_[static_cast<std::size_t>(targetLevel)]);
  for (std::size_t i = trail_.size(); i > keep; --i) {
    assign_[static_cast<std::size_t>(trail_[i - 1] >> 1)] = -1;
  }
  trail_.resize(keep);
  trailLim_.resize(static_cast<std::size_t>(targetLevel));
  propagateHead_ = std::min(propagateHead_, trail_.size());
}

void SatSolver::addClause(std::vector<int> lits) {
  backjump(0);
  // Grow the variable set to cover every referenced literal.
  for (const int l : lits) {
    while (std::abs(l) > numVars()) newVar();
  }
  // Normalize against the permanent (level-0) assignment: drop false
  // literals, drop the clause when satisfied, reject duplicates/tautologies.
  std::vector<int> clause;
  for (const int dl : lits) {
    const int l = toInternal(dl);
    if (!isUnassigned(l)) {
      if (valueOf(l)) return;  // permanently satisfied
      continue;                // permanently false literal: drop it
    }
    if (std::find(clause.begin(), clause.end(), l) != clause.end()) continue;
    if (std::find(clause.begin(), clause.end(), l ^ 1) != clause.end()) {
      return;  // tautology
    }
    clause.push_back(l);
  }
  if (clause.empty()) {
    unsat_ = true;
    return;
  }
  if (clause.size() == 1) {
    assignLit(clause[0], -1);  // level-0 fact; propagated at the next solve
    return;
  }
  const int id = static_cast<int>(clauses_.size());
  watchers_[static_cast<std::size_t>(clause[0])].push_back(id);
  watchers_[static_cast<std::size_t>(clause[1])].push_back(id);
  clauses_.push_back(Clause{std::move(clause), 0.0, false, false});
}

bool SatSolver::propagate(int& conflictClause) {
  while (propagateHead_ < trail_.size()) {
    const int p = trail_[propagateHead_++];
    const int falseLit = p ^ 1;
    std::vector<int>& ws = watchers_[static_cast<std::size_t>(falseLit)];
    std::size_t keep = 0;
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
      const int ci = ws[wi];
      Clause& cl = clauses_[static_cast<std::size_t>(ci)];
      if (cl.deleted) continue;  // tombstone: drop the watcher lazily
      std::vector<int>& c = cl.lits;
      if (c[0] == falseLit) std::swap(c[0], c[1]);
      // Invariant now: c[1] == falseLit.
      if (!isUnassigned(c[0]) && valueOf(c[0])) {
        ws[keep++] = ci;  // satisfied by the other watch
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (isUnassigned(c[k]) || valueOf(c[k])) {
          std::swap(c[1], c[k]);
          watchers_[static_cast<std::size_t>(c[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      ws[keep++] = ci;  // stays watched on falseLit
      if (!isUnassigned(c[0])) {
        // c[0] false too: conflict.  Preserve the remaining watchers.
        for (std::size_t rest = wi + 1; rest < ws.size(); ++rest) {
          ws[keep++] = ws[rest];
        }
        ws.resize(keep);
        conflictClause = ci;
        return false;
      }
      assignLit(c[0], ci);
    }
    ws.resize(keep);
  }
  return true;
}

void SatSolver::bumpVar(int var) {
  double& a = activity_[static_cast<std::size_t>(var)];
  a += activityInc_;
  if (a > 1e100) {
    for (double& act : activity_) act *= 1e-100;
    activityInc_ *= 1e-100;
  }
}

void SatSolver::bumpClause(int clauseId) {
  Clause& c = clauses_[static_cast<std::size_t>(clauseId)];
  if (!c.learned) return;
  c.activity += clauseActivityInc_;
  if (c.activity > 1e100) {
    for (Clause& cl : clauses_) cl.activity *= 1e-100;
    clauseActivityInc_ *= 1e-100;
  }
}

void SatSolver::decayActivities() {
  activityInc_ /= 0.95;
  clauseActivityInc_ /= 0.999;
}

int SatSolver::pickBranchVar() const {
  int best = -1;
  double bestActivity = -1.0;
  for (std::size_t v = 0; v < assign_.size(); ++v) {
    if (assign_[v] >= 0) continue;
    if (activity_[v] > bestActivity) {
      bestActivity = activity_[v];
      best = static_cast<int>(v);
    }
  }
  return best;
}

int SatSolver::analyze(int conflictClause, std::vector<int>& learnedOut) {
  learnedOut.assign(1, 0);  // slot 0: the asserting (first-UIP) literal
  std::vector<char> seen(assign_.size(), 0);
  const int currentLevel = static_cast<int>(trailLim_.size());
  int counter = 0;
  int pVar = -1;
  std::size_t index = trail_.size();

  while (true) {
    TAUHLS_ASSERT(conflictClause >= 0, "conflict analysis hit a decision");
    bumpClause(conflictClause);
    const std::vector<int>& c =
        clauses_[static_cast<std::size_t>(conflictClause)].lits;
    // For reason clauses c[0] is the literal being resolved on; skip it.
    for (std::size_t i = (pVar < 0 ? 0 : 1); i < c.size(); ++i) {
      const int q = c[i];
      const std::size_t v = static_cast<std::size_t>(q >> 1);
      if (seen[v] || level_[v] == 0) continue;
      seen[v] = 1;
      bumpVar(static_cast<int>(v));
      if (level_[v] == currentLevel) {
        ++counter;
      } else {
        learnedOut.push_back(q);
      }
    }
    do {
      --index;
    } while (!seen[static_cast<std::size_t>(trail_[index] >> 1)]);
    const int p = trail_[index];
    pVar = p >> 1;
    seen[static_cast<std::size_t>(pVar)] = 0;
    --counter;
    if (counter == 0) {
      learnedOut[0] = p ^ 1;
      break;
    }
    conflictClause = reason_[static_cast<std::size_t>(pVar)];
  }

  // Backjump destination: the highest level among the tail literals; move
  // one literal of that level to slot 1 so it is watched after learning.
  int backLevel = 0;
  for (std::size_t i = 1; i < learnedOut.size(); ++i) {
    const int lv = level_[static_cast<std::size_t>(learnedOut[i] >> 1)];
    if (lv > backLevel) {
      backLevel = lv;
      std::swap(learnedOut[1], learnedOut[i]);
    }
  }
  return backLevel;
}

bool SatSolver::clauseLocked(int clauseId) const {
  const Clause& c = clauses_[static_cast<std::size_t>(clauseId)];
  if (c.lits.empty()) return false;
  const std::size_t var = static_cast<std::size_t>(c.lits[0] >> 1);
  return assign_[var] >= 0 && reason_[var] == clauseId;
}

void SatSolver::reduceLearnedDb() {
  // Candidates: live learned clauses that are neither binary (cheap to keep,
  // expensive to relearn) nor locked (the reason of a current assignment).
  std::vector<int> candidates;
  for (std::size_t ci = 0; ci < clauses_.size(); ++ci) {
    const Clause& c = clauses_[ci];
    if (!c.learned || c.deleted || c.lits.size() <= 2) continue;
    if (clauseLocked(static_cast<int>(ci))) continue;
    candidates.push_back(static_cast<int>(ci));
  }
  // Drop the lowest-activity half.  The sort key is (activity, id), so the
  // reduction is deterministic for a given query stream.
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const Clause& ca = clauses_[static_cast<std::size_t>(a)];
    const Clause& cb = clauses_[static_cast<std::size_t>(b)];
    if (ca.activity != cb.activity) return ca.activity < cb.activity;
    return a < b;
  });
  const std::size_t toDrop = candidates.size() / 2;
  for (std::size_t i = 0; i < toDrop; ++i) {
    Clause& c = clauses_[static_cast<std::size_t>(candidates[i])];
    c.deleted = true;
    c.lits.clear();
    c.lits.shrink_to_fit();  // tombstone: watcher lists are pruned lazily
    --liveLearned_;
  }
  // Let the database grow before the next reduction: a stream of hard
  // queries keeps more context, easy ones stay small.
  learnedLimit_ += learnedLimit_ / 2;
}

SatResult SatSolver::search(const std::vector<int>& assumptions,
                            std::uint64_t maxConflicts) {
  if (unsat_) return SatResult::Unsat;
  for (const int a : assumptions) {
    while (std::abs(a) > numVars()) newVar();
  }
  backjump(0);
  propagateHead_ = 0;

  std::uint64_t conflictsThisCall = 0;
  std::uint64_t restartLimit = 128;
  std::uint64_t conflictsSinceRestart = 0;
  std::vector<int> learned;

  while (true) {
    int conflictClause = -1;
    if (!propagate(conflictClause)) {
      ++stats_.conflicts;
      ++conflictsThisCall;
      ++conflictsSinceRestart;
      if (trailLim_.empty()) return SatResult::Unsat;
      if (conflictsThisCall > maxConflicts) {
        backjump(0);
        return SatResult::Unknown;
      }
      const int backLevel = analyze(conflictClause, learned);
      backjump(backLevel);
      if (learned.size() == 1) {
        assignLit(learned[0], -1);  // level-0 fact
      } else {
        const int id = static_cast<int>(clauses_.size());
        watchers_[static_cast<std::size_t>(learned[0])].push_back(id);
        watchers_[static_cast<std::size_t>(learned[1])].push_back(id);
        clauses_.push_back(Clause{learned, 0.0, true, false});
        ++stats_.learned;
        ++liveLearned_;
        bumpClause(id);
        assignLit(learned[0], id);
      }
      decayActivities();
      continue;
    }
    if (conflictsSinceRestart >= restartLimit) {
      ++stats_.restarts;
      conflictsSinceRestart = 0;
      restartLimit += restartLimit / 2;
      backjump(0);
      if (liveLearned_ > learnedLimit_) reduceLearnedDb();
      continue;
    }
    // Assumptions occupy the first decision levels; re-enqueue any that a
    // backjump removed before ordinary branching resumes.
    if (trailLim_.size() < assumptions.size()) {
      const int lit = toInternal(assumptions[trailLim_.size()]);
      if (!isUnassigned(lit) && !valueOf(lit)) {
        // The clause set forces this assumption false: Unsat under the
        // assumptions, with the permanent clauses untouched.
        backjump(0);
        return SatResult::Unsat;
      }
      trailLim_.push_back(static_cast<int>(trail_.size()));
      if (isUnassigned(lit)) assignLit(lit, -1);
      continue;  // dummy level when already true, keeping indices aligned
    }
    const int branchVar = pickBranchVar();
    // Full assignment: a model.  It stays in place for modelValue(); the
    // next solve/addClause call backjumps to level 0 first.
    if (branchVar < 0) return SatResult::Sat;
    ++stats_.decisions;
    trailLim_.push_back(static_cast<int>(trail_.size()));
    assignLit(branchVar * 2 + (phase_[static_cast<std::size_t>(branchVar)]
                                   ? 0
                                   : 1),
              -1);
  }
}

SatResult SatSolver::solve(std::uint64_t maxConflicts) {
  return search({}, maxConflicts);
}

SatResult SatSolver::solve(const std::vector<int>& assumptions,
                           std::uint64_t maxConflicts) {
  return search(assumptions, maxConflicts);
}

bool SatSolver::modelValue(int var) const {
  TAUHLS_CHECK(var >= 1 && var <= numVars(), "modelValue variable out of range");
  const signed char a = assign_[static_cast<std::size_t>(var - 1)];
  TAUHLS_CHECK(a >= 0, "modelValue without a satisfying assignment");
  return a != 0;
}

std::vector<std::vector<int>> parseDimacs(const std::string& text,
                                          int& numVars) {
  numVars = 0;
  std::vector<std::vector<int>> clauses;
  std::vector<int> current;
  std::istringstream in(text);
  std::string token;
  bool sawHeader = false;
  while (in >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (token == "p") {
      std::string fmt;
      int declaredClauses = 0;
      TAUHLS_CHECK(static_cast<bool>(in >> fmt >> numVars >> declaredClauses) &&
                       fmt == "cnf",
                   "malformed DIMACS header");
      sawHeader = true;
      continue;
    }
    if (token == "%") break;  // SATLIB end-of-instance marker
    int lit = 0;
    try {
      lit = std::stoi(token);
    } catch (const std::exception&) {
      TAUHLS_FAIL("malformed DIMACS token '" + token + "'");
    }
    if (lit == 0) {
      clauses.push_back(current);
      current.clear();
    } else {
      numVars = std::max(numVars, std::abs(lit));
      current.push_back(lit);
    }
  }
  TAUHLS_CHECK(sawHeader, "DIMACS document lacks a 'p cnf' header");
  TAUHLS_CHECK(current.empty(), "DIMACS clause not terminated by 0");
  return clauses;
}

SatResult solveDimacs(const std::string& text, std::uint64_t maxConflicts) {
  int numVars = 0;
  const std::vector<std::vector<int>> clauses = parseDimacs(text, numVars);
  SatSolver solver;
  while (solver.numVars() < numVars) solver.newVar();
  for (const std::vector<int>& c : clauses) solver.addClause(c);
  return solver.solve(maxConflicts);
}

}  // namespace tauhls::aig
