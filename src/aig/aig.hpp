// And-Inverter Graph IR -- the symbolic substrate of the equivalence checker.
//
// Every combinational function handled by the static-analysis layer (FSM
// next-state/output specs, minimized covers, gate netlists, reparsed RTL) is
// lowered into one shared Aig, so "are these equal?" becomes a literal
// comparison or a SAT query over a miter (cec.hpp) -- never a truth-table
// enumeration, which explodes past ~20 inputs.
//
// Literals are node ids with a complement bit (lit = node*2 + negated); node
// 0 is the constant, so kLitFalse = 0 and kLitTrue = 1.  Construction is
// hash-consed: two-level constant/identity rewriting (x&0=0, x&1=x, x&x=x,
// x&!x=0) plus structural hashing on commutatively-ordered fanins, so
// structurally equal cones share nodes and trivially-equal functions compare
// equal without touching the SAT solver.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace tauhls::aig {

using Lit = std::uint32_t;

inline constexpr Lit kLitFalse = 0;
inline constexpr Lit kLitTrue = 1;

inline constexpr Lit negate(Lit l) { return l ^ 1u; }
inline constexpr Lit withSign(std::uint32_t node, bool negated) {
  return node * 2 + (negated ? 1u : 0u);
}
inline constexpr std::uint32_t nodeOf(Lit l) { return l >> 1; }
inline constexpr bool isNegated(Lit l) { return (l & 1u) != 0; }

class Aig {
 public:
  Aig();

  /// Declare a primary input (unique name); returns its positive literal.
  Lit addInput(const std::string& name);

  /// AND with constant/identity rewriting and structural hashing.
  Lit andLit(Lit a, Lit b);
  Lit orLit(Lit a, Lit b) { return negate(andLit(negate(a), negate(b))); }
  Lit xorLit(Lit a, Lit b);
  /// sel ? t : e.
  Lit muxLit(Lit sel, Lit t, Lit e);
  /// Conjunction / disjunction of arbitrarily many literals (empty = const).
  Lit andN(const std::vector<Lit>& lits);
  Lit orN(const std::vector<Lit>& lits);
  /// a == b over equal-length vectors (empty = true).
  Lit eqVec(const std::vector<Lit>& a, const std::vector<Lit>& b);

  std::size_t numNodes() const { return nodes_.size(); }
  std::size_t numInputs() const { return inputNames_.size(); }
  const std::vector<std::string>& inputNames() const { return inputNames_; }
  /// Positive literal of a declared input; kLitFalse when unknown.
  Lit findInput(const std::string& name) const;

  bool isInput(std::uint32_t node) const;
  bool isAnd(std::uint32_t node) const;
  /// Input index of an input node (valid when isInput).
  std::size_t inputIndexOf(std::uint32_t node) const;
  /// Fanins of an AND node (valid when isAnd).
  Lit fanin0(std::uint32_t node) const { return nodes_[node].f0; }
  Lit fanin1(std::uint32_t node) const { return nodes_[node].f1; }

  /// Evaluate a literal under per-input values (index = input order).
  bool evaluate(Lit root, const std::vector<bool>& inputValues) const;

  /// Input nodes in the structural support of `root` (input indices, sorted).
  std::vector<std::size_t> support(Lit root) const;

 private:
  struct Node {
    Lit f0 = 0;  ///< kInputMark for inputs
    Lit f1 = 0;  ///< input index for inputs
  };
  static constexpr Lit kInputMark = static_cast<Lit>(-1);

  std::vector<Node> nodes_;
  std::vector<std::string> inputNames_;
  std::unordered_map<std::string, Lit> inputLit_;
  std::unordered_map<std::uint64_t, Lit> strash_;
};

}  // namespace tauhls::aig
