#include "aig/ternary.hpp"

namespace tauhls::aig {

void TernaryEvaluator::run(const std::vector<XWord>& inputs) {
  const std::size_t n = g_->numNodes();
  node_.assign(n, xAllZero());
  // Node 0 is the constant-false node; its positive literal reads all-0.
  for (std::uint32_t i = 1; i < n; ++i) {
    if (g_->isInput(i)) {
      const std::size_t idx = g_->inputIndexOf(i);
      node_[i] = idx < inputs.size() ? inputs[idx] : xAllX();
    } else {
      const Lit f0 = g_->fanin0(i);
      const Lit f1 = g_->fanin1(i);
      const XWord a = isNegated(f0) ? xNot(node_[nodeOf(f0)]) : node_[nodeOf(f0)];
      const XWord b = isNegated(f1) ? xNot(node_[nodeOf(f1)]) : node_[nodeOf(f1)];
      node_[i] = xAnd(a, b);
      ++gateEvals_;
    }
  }
}

}  // namespace tauhls::aig
