// Sequential reasoning over combinational AIGs: a reusable Tseitin CNF
// encoder plus a time-frame unroller for bounded model checking (BMC) and
// k-induction.
//
// A synchronous circuit is described as a SeqModel over a *template* Aig:
// each state element has a template input literal standing for its current
// value and a cone computing its next value; any other template input is a
// free (unconstrained per-cycle) input.  An Unroller then instantiates
// template cones at numbered time frames by literal substitution -- state
// inputs map to the previous frame's next-state cones (or to reset constants
// / fresh variables at frame 0), free inputs map to fresh per-frame inputs.
// Because instantiation goes through the hash-consing Aig constructors,
// repeated structure across frames is shared, and the CnfEncoder only ever
// encodes each shared node once, so one SatSolver accumulates the whole
// unrolling incrementally and learned clauses carry across depths and
// properties.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/sat.hpp"

namespace tauhls::aig {

/// Lazily Tseitin-encodes AIG cones into a SatSolver.  Each node gets one
/// solver variable on first use; re-encoding a literal is a lookup, so cones
/// shared between queries are encoded exactly once.
class CnfEncoder {
 public:
  CnfEncoder(const Aig& g, SatSolver& solver) : g_(&g), solver_(&solver) {}

  /// DIMACS literal for an AIG literal, encoding its cone on first use.
  int encode(Lit l) {
    const int v = varOf(nodeOf(l));
    return isNegated(l) ? -v : v;
  }

  /// Solver variable already assigned to `node`; 0 when not yet encoded.
  int varIfEncoded(std::uint32_t node) const {
    const auto it = var_.find(node);
    return it == var_.end() ? 0 : it->second;
  }

 private:
  int varOf(std::uint32_t node);

  const Aig* g_;
  SatSolver* solver_;
  std::unordered_map<std::uint32_t, int> var_;
};

/// One state element of a sequential model: `cur` is a template *input*
/// literal standing for the element's current value, `next` is the template
/// cone computing its value in the following cycle, `init` the reset value.
struct SeqVar {
  std::string name;
  Lit cur = kLitFalse;
  Lit next = kLitFalse;
  bool init = false;
};

/// A synchronous circuit over a template Aig.  Template inputs that are not
/// some SeqVar's `cur` literal are free inputs, re-instantiated per frame.
struct SeqModel {
  std::vector<SeqVar> vars;
};

/// Instantiates template cones at numbered time frames inside the same Aig
/// the template lives in.  Two frame-0 modes:
///  - init mode: frame 0's state is the reset state (constants), the root of
///    a BMC unrolling;
///  - free mode: frame 0's state bits become fresh inputs, the root of the
///    arbitrary-start unrolling k-induction steps over.
class Unroller {
 public:
  /// `tag` distinguishes several unrollings of one model in one graph; fresh
  /// per-frame inputs are named "<name>@<tag><frame>".
  Unroller(Aig& g, const SeqModel& model, std::string tag, bool initFrame0);

  /// Current-state literal of state var `v` at `frame` (frame 0 = reset
  /// constants in init mode, fresh inputs in free mode).
  Lit state(int frame, std::size_t v);

  /// Instantiates an arbitrary template cone at `frame`.
  Lit at(int frame, Lit templateLit);

  /// All state bits of `frame` as a vector (for eqVec / simple-path cones).
  std::vector<Lit> stateVector(int frame);

 private:
  Aig* g_;
  const SeqModel* model_;
  std::string tag_;
  bool initFrame0_;
  std::map<std::uint32_t, std::size_t> stateVarOfInput_;
  std::map<std::pair<std::uint32_t, int>, Lit> memo_;  ///< (node, frame)
  std::vector<Lit> frame0Free_;  ///< lazily created frame-0 state inputs
};

}  // namespace tauhls::aig
