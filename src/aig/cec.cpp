#include "aig/cec.hpp"

#include <unordered_map>

#include "common/error.hpp"

namespace tauhls::aig {

namespace {

/// Lazily Tseitin-encodes AIG cones into a SatSolver.
class Encoder {
 public:
  Encoder(const Aig& g, SatSolver& solver) : g_(g), solver_(solver) {}

  /// DIMACS literal for an AIG literal, encoding its cone on first use.
  int encode(Lit l) {
    const int v = varOf(nodeOf(l));
    return isNegated(l) ? -v : v;
  }

 private:
  int varOf(std::uint32_t node) {
    const auto it = var_.find(node);
    if (it != var_.end()) return it->second;
    // Materialize fanins first; the AIG is acyclic so recursion is bounded
    // by cone depth (shallow: covers are two-level, netlists near-balanced).
    if (g_.isAnd(node)) {
      const int a = encode(g_.fanin0(node));
      const int b = encode(g_.fanin1(node));
      const int v = solver_.newVar();
      var_.emplace(node, v);
      solver_.addClause({-v, a});
      solver_.addClause({-v, b});
      solver_.addClause({v, -a, -b});
      return v;
    }
    const int v = solver_.newVar();
    var_.emplace(node, v);
    if (node == 0) solver_.addClause({-v});  // the constant-false node
    return v;
  }

  const Aig& g_;
  SatSolver& solver_;
  std::unordered_map<std::uint32_t, int> var_;
};

CecResult solveMiter(const Aig& g, Lit miter, std::uint64_t maxConflicts) {
  CecResult result;
  if (miter == kLitFalse) {  // discharged by AIG rewriting/hashing alone
    result.status = SatResult::Unsat;
    return result;
  }
  const std::vector<std::size_t> support = g.support(miter);
  if (miter == kLitTrue) {  // every assignment is a witness
    result.status = SatResult::Sat;
    for (const std::size_t idx : support) {
      result.counterexample.emplace_back(g.inputNames()[idx], false);
    }
    return result;
  }
  SatSolver solver;
  Encoder encoder(g, solver);
  // Remember each support input's variable before asserting the miter, so a
  // model can be read back by name.
  std::vector<int> inputVar(support.size());
  for (std::size_t i = 0; i < support.size(); ++i) {
    const Lit in = g.findInput(g.inputNames()[support[i]]);
    inputVar[i] = encoder.encode(in);
  }
  solver.addClause({encoder.encode(miter)});
  result.status = solver.solve(maxConflicts);
  result.stats = solver.stats();
  if (result.status == SatResult::Sat) {
    for (std::size_t i = 0; i < support.size(); ++i) {
      result.counterexample.emplace_back(g.inputNames()[support[i]],
                                         solver.modelValue(inputVar[i]));
    }
  }
  return result;
}

}  // namespace

CecResult proveEquivalent(Aig& g, Lit a, Lit b, Lit constraint,
                          std::uint64_t maxConflicts) {
  const Lit miter = g.andLit(constraint, g.xorLit(a, b));
  return solveMiter(g, miter, maxConflicts);
}

CecResult checkSatisfiable(const Aig& g, Lit root,
                           std::uint64_t maxConflicts) {
  CecResult result = solveMiter(g, root, maxConflicts);
  return result;
}

struct IncrementalCec::Impl {
  explicit Impl(Aig& graph) : g(&graph), encoder(graph, solver) {}

  Aig* g;
  SatSolver solver;
  Encoder encoder;
};

IncrementalCec::IncrementalCec(Aig& g) : impl_(std::make_unique<Impl>(g)) {}

IncrementalCec::~IncrementalCec() = default;

const SatStats& IncrementalCec::totalStats() const {
  return impl_->solver.stats();
}

CecResult IncrementalCec::prove(Lit a, Lit b, Lit constraint,
                                std::uint64_t maxConflicts) {
  Aig& g = *impl_->g;
  CecResult result;
  const Lit miter = g.andLit(constraint, g.xorLit(a, b));
  if (miter == kLitFalse) {  // discharged by AIG rewriting/hashing alone
    result.status = SatResult::Unsat;
    return result;
  }
  const std::vector<std::size_t> support = g.support(miter);
  if (miter == kLitTrue) {  // every assignment is a witness
    result.status = SatResult::Sat;
    for (const std::size_t idx : support) {
      result.counterexample.emplace_back(g.inputNames()[idx], false);
    }
    return result;
  }
  SatSolver& solver = impl_->solver;
  const SatStats before = solver.stats();
  // Remember each support input's variable before asserting the miter, so a
  // model can be read back by name.
  std::vector<int> inputVar(support.size());
  for (std::size_t i = 0; i < support.size(); ++i) {
    const Lit in = g.findInput(g.inputNames()[support[i]]);
    inputVar[i] = impl_->encoder.encode(in);
  }
  // Scope the miter assertion behind a fresh activation literal: solving
  // assumes it, retiring it afterwards permanently satisfies the clause.
  const int act = solver.newVar();
  solver.addClause({-act, impl_->encoder.encode(miter)});
  result.status = solver.solve(std::vector<int>{act}, maxConflicts);
  result.stats = solver.stats() - before;
  if (result.status == SatResult::Sat) {
    for (std::size_t i = 0; i < support.size(); ++i) {
      result.counterexample.emplace_back(g.inputNames()[support[i]],
                                         solver.modelValue(inputVar[i]));
    }
  }
  solver.addClause({-act});  // retire the query
  return result;
}

}  // namespace tauhls::aig
