#include "aig/cec.hpp"

#include "aig/unroll.hpp"
#include "common/error.hpp"

namespace tauhls::aig {

namespace {

CecResult solveMiter(const Aig& g, Lit miter, std::uint64_t maxConflicts) {
  CecResult result;
  if (miter == kLitFalse) {  // discharged by AIG rewriting/hashing alone
    result.status = SatResult::Unsat;
    return result;
  }
  const std::vector<std::size_t> support = g.support(miter);
  if (miter == kLitTrue) {  // every assignment is a witness
    result.status = SatResult::Sat;
    for (const std::size_t idx : support) {
      result.counterexample.emplace_back(g.inputNames()[idx], false);
    }
    return result;
  }
  SatSolver solver;
  CnfEncoder encoder(g, solver);
  // Remember each support input's variable before asserting the miter, so a
  // model can be read back by name.
  std::vector<int> inputVar(support.size());
  for (std::size_t i = 0; i < support.size(); ++i) {
    const Lit in = g.findInput(g.inputNames()[support[i]]);
    inputVar[i] = encoder.encode(in);
  }
  solver.addClause({encoder.encode(miter)});
  result.status = solver.solve(maxConflicts);
  result.stats = solver.stats();
  if (result.status == SatResult::Sat) {
    for (std::size_t i = 0; i < support.size(); ++i) {
      result.counterexample.emplace_back(g.inputNames()[support[i]],
                                         solver.modelValue(inputVar[i]));
    }
  }
  return result;
}

}  // namespace

CecResult proveEquivalent(Aig& g, Lit a, Lit b, Lit constraint,
                          std::uint64_t maxConflicts) {
  const Lit miter = g.andLit(constraint, g.xorLit(a, b));
  return solveMiter(g, miter, maxConflicts);
}

CecResult checkSatisfiable(const Aig& g, Lit root,
                           std::uint64_t maxConflicts) {
  CecResult result = solveMiter(g, root, maxConflicts);
  return result;
}

struct IncrementalCec::Impl {
  explicit Impl(Aig& graph) : g(&graph), encoder(graph, solver) {}

  Aig* g;
  SatSolver solver;
  CnfEncoder encoder;
};

IncrementalCec::IncrementalCec(Aig& g) : impl_(std::make_unique<Impl>(g)) {}

IncrementalCec::~IncrementalCec() = default;

const SatStats& IncrementalCec::totalStats() const {
  return impl_->solver.stats();
}

CecResult IncrementalCec::prove(Lit a, Lit b, Lit constraint,
                                std::uint64_t maxConflicts) {
  Aig& g = *impl_->g;
  CecResult result;
  const Lit miter = g.andLit(constraint, g.xorLit(a, b));
  if (miter == kLitFalse) {  // discharged by AIG rewriting/hashing alone
    result.status = SatResult::Unsat;
    return result;
  }
  const std::vector<std::size_t> support = g.support(miter);
  if (miter == kLitTrue) {  // every assignment is a witness
    result.status = SatResult::Sat;
    for (const std::size_t idx : support) {
      result.counterexample.emplace_back(g.inputNames()[idx], false);
    }
    return result;
  }
  SatSolver& solver = impl_->solver;
  const SatStats before = solver.stats();
  // Remember each support input's variable before asserting the miter, so a
  // model can be read back by name.
  std::vector<int> inputVar(support.size());
  for (std::size_t i = 0; i < support.size(); ++i) {
    const Lit in = g.findInput(g.inputNames()[support[i]]);
    inputVar[i] = impl_->encoder.encode(in);
  }
  // Scope the miter assertion behind a fresh activation literal: solving
  // assumes it, retiring it afterwards permanently satisfies the clause.
  const int act = solver.newVar();
  solver.addClause({-act, impl_->encoder.encode(miter)});
  result.status = solver.solve(std::vector<int>{act}, maxConflicts);
  result.stats = solver.stats() - before;
  if (result.status == SatResult::Sat) {
    for (std::size_t i = 0; i < support.size(); ++i) {
      result.counterexample.emplace_back(g.inputNames()[support[i]],
                                         solver.modelValue(inputVar[i]));
    }
  }
  solver.addClause({-act});  // retire the query
  return result;
}

}  // namespace tauhls::aig
