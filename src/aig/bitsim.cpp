#include "aig/bitsim.hpp"

#include <bit>

#include "common/error.hpp"

namespace tauhls::aig {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

BitSimulator::BitSimulator(const Aig& g, std::uint64_t seed)
    : g_(g), seed_(seed) {}

std::uint64_t BitSimulator::inputWordFor(std::size_t inputIndex,
                                         std::size_t wordIndex) const {
  // A pure function of (seed, input, word): stable under graph growth.
  return splitmix64(seed_ ^ splitmix64(inputIndex * 0x100000001b3ull + 1) ^
                    splitmix64(wordIndex * 0xc2b2ae3d27d4eb4full + 2));
}

void BitSimulator::addRandomWords(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    words_.emplace_back();
  }
}

void BitSimulator::addPatternWord(
    const std::vector<std::pair<std::size_t, bool>>& assignment) {
  Word w;
  const std::size_t wordIndex = words_.size();
  w.inputWords.resize(g_.numInputs());
  for (std::size_t i = 0; i < w.inputWords.size(); ++i) {
    w.inputWords[i] = inputWordFor(i, wordIndex);
  }
  // Pin the guided pattern in bit 0; bits 1..63 explore its neighbourhood.
  for (const auto& [inputIndex, val] : assignment) {
    TAUHLS_CHECK(inputIndex < w.inputWords.size(),
                 "pattern word references an undeclared input");
    if (val) {
      w.inputWords[inputIndex] |= 1ull;
    } else {
      w.inputWords[inputIndex] &= ~1ull;
    }
  }
  words_.push_back(std::move(w));
}

void BitSimulator::ensureSimulated(std::size_t w) {
  Word& word = words_[w];
  // Inputs declared since the word was created get their stable patterns.
  const std::size_t numInputs = g_.numInputs();
  for (std::size_t i = word.inputWords.size(); i < numInputs; ++i) {
    word.inputWords.push_back(inputWordFor(i, w));
  }
  const std::size_t numNodes = g_.numNodes();
  std::size_t node = word.nodeWords.size();
  if (node >= numNodes) return;
  word.nodeWords.resize(numNodes);
  // Node indices are construction (hence topological) order: one linear
  // pass simulates every new cone.
  for (; node < numNodes; ++node) {
    if (node == 0) {
      word.nodeWords[0] = 0;  // the constant-false node
    } else if (g_.isInput(static_cast<std::uint32_t>(node))) {
      word.nodeWords[node] =
          word.inputWords[g_.inputIndexOf(static_cast<std::uint32_t>(node))];
    } else {
      const Lit f0 = g_.fanin0(static_cast<std::uint32_t>(node));
      const Lit f1 = g_.fanin1(static_cast<std::uint32_t>(node));
      word.nodeWords[node] = value(f0, w) & value(f1, w);
    }
  }
}

std::optional<BitSimulator::Mismatch> BitSimulator::findMismatch(
    Lit a, Lit b, Lit constraint) {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    ensureSimulated(w);
    const std::uint64_t diff =
        (value(a, w) ^ value(b, w)) & value(constraint, w);
    if (diff != 0) {
      return Mismatch{w, std::countr_zero(diff)};
    }
  }
  return std::nullopt;
}

bool BitSimulator::inputBit(std::size_t inputIndex, std::size_t word,
                            int bit) const {
  TAUHLS_CHECK(word < words_.size() &&
                   inputIndex < words_[word].inputWords.size(),
               "inputBit out of range");
  return (words_[word].inputWords[inputIndex] >> bit) & 1ull;
}

std::uint64_t BitSimulator::signature(Lit l, Lit constraint) {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    ensureSimulated(w);
    h = splitmix64(h ^ (value(l, w) & value(constraint, w)));
  }
  return h;
}

}  // namespace tauhls::aig
