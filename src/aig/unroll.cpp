#include "aig/unroll.hpp"

#include "common/error.hpp"

namespace tauhls::aig {

int CnfEncoder::varOf(std::uint32_t node) {
  const auto it = var_.find(node);
  if (it != var_.end()) return it->second;
  // Materialize fanins first; the AIG is acyclic so recursion is bounded by
  // cone depth.
  if (g_->isAnd(node)) {
    const int a = encode(g_->fanin0(node));
    const int b = encode(g_->fanin1(node));
    const int v = solver_->newVar();
    var_.emplace(node, v);
    solver_->addClause({-v, a});
    solver_->addClause({-v, b});
    solver_->addClause({v, -a, -b});
    return v;
  }
  const int v = solver_->newVar();
  var_.emplace(node, v);
  if (node == 0) solver_->addClause({-v});  // the constant-false node
  return v;
}

Unroller::Unroller(Aig& g, const SeqModel& model, std::string tag,
                   bool initFrame0)
    : g_(&g), model_(&model), tag_(std::move(tag)), initFrame0_(initFrame0) {
  for (std::size_t v = 0; v < model.vars.size(); ++v) {
    const Lit cur = model.vars[v].cur;
    TAUHLS_CHECK(!isNegated(cur) && g.isInput(nodeOf(cur)),
                 "SeqVar::cur must be a positive template input literal: " +
                     model.vars[v].name);
    const bool fresh = stateVarOfInput_.emplace(nodeOf(cur), v).second;
    TAUHLS_CHECK(fresh, "duplicate SeqVar::cur literal: " + model.vars[v].name);
  }
  frame0Free_.assign(model.vars.size(), kLitFalse);
}

Lit Unroller::state(int frame, std::size_t v) {
  TAUHLS_ASSERT(v < model_->vars.size(), "state var index out of range");
  if (frame == 0) {
    if (initFrame0_) return model_->vars[v].init ? kLitTrue : kLitFalse;
    if (frame0Free_[v] == kLitFalse) {
      frame0Free_[v] = g_->addInput(model_->vars[v].name + "@" + tag_ + "0");
    }
    return frame0Free_[v];
  }
  return at(frame - 1, model_->vars[v].next);
}

Lit Unroller::at(int frame, Lit templateLit) {
  const std::uint32_t node = nodeOf(templateLit);
  Lit base = kLitFalse;
  const auto key = std::make_pair(node, frame);
  const auto it = memo_.find(key);
  if (it != memo_.end()) {
    base = it->second;
  } else if (node == 0) {
    base = kLitFalse;  // constants are frame-independent
  } else if (g_->isAnd(node)) {
    const Lit a = at(frame, g_->fanin0(node));
    const Lit b = at(frame, g_->fanin1(node));
    base = g_->andLit(a, b);
    memo_.emplace(key, base);
  } else {
    const auto sv = stateVarOfInput_.find(node);
    if (sv != stateVarOfInput_.end()) {
      base = state(frame, sv->second);
    } else {  // free input: fresh instance per frame
      base = g_->addInput(g_->inputNames()[g_->inputIndexOf(node)] + "@" +
                          tag_ + std::to_string(frame));
    }
    memo_.emplace(key, base);
  }
  return isNegated(templateLit) ? negate(base) : base;
}

std::vector<Lit> Unroller::stateVector(int frame) {
  std::vector<Lit> out;
  out.reserve(model_->vars.size());
  for (std::size_t v = 0; v < model_->vars.size(); ++v) {
    out.push_back(state(frame, v));
  }
  return out;
}

}  // namespace tauhls::aig
