// Bit-parallel random/guided simulation through an Aig.
//
// Each simulation word carries 64 input patterns; an AND node is one
// bitwise-and over the fanin words and a complemented literal one bitwise
// negation, so a full pass over the graph evaluates 64 patterns per node at
// word speed.  The simulator is the cheap front end of the equivalence
// checker (verify/equiv_check): candidate function pairs whose constrained
// value vectors differ are non-equivalent -- the differing bit *is* a named
// input counterexample, so no CNF is ever built for them -- and equal
// vectors partition the candidates into simulation-equivalence classes that
// the SAT back end then separates or proves.
//
// Counterexample-directed refinement: every model found by the SAT solver is
// fed back as a guided pattern word (the model pinned in bit 0, the
// remaining 63 bits pseudo-random around it), so one discovered mismatch
// immediately discharges every other pair it distinguishes.
//
// Determinism: input words are a pure function of (seed, input index, word
// index), independent of evaluation order, node growth, or thread count --
// inputs declared after a word was added get the same stable pseudo-random
// pattern they would have received up front.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "aig/aig.hpp"

namespace tauhls::aig {

class BitSimulator {
 public:
  /// The Aig reference must outlive the simulator; the graph may keep
  /// growing (new cones are simulated lazily on first query).
  explicit BitSimulator(const Aig& g,
                        std::uint64_t seed = 0x5eedc0de1234abcdull);

  std::size_t numWords() const { return words_.size(); }

  /// Append `n` fresh pseudo-random pattern words (64 patterns each).
  void addRandomWords(std::size_t n);

  /// Append one guided word: for every (input index, value) pair the
  /// pattern in bit 0 is pinned to `value`; all other bits stay random.
  void addPatternWord(
      const std::vector<std::pair<std::size_t, bool>>& assignment);

  /// Location of one simulated pattern distinguishing `a` from `b` under
  /// `constraint`; nullopt when every simulated pattern agrees.
  struct Mismatch {
    std::size_t word = 0;
    int bit = 0;
  };
  std::optional<Mismatch> findMismatch(Lit a, Lit b, Lit constraint);

  /// Value of input `inputIndex` in the given simulated pattern.
  bool inputBit(std::size_t inputIndex, std::size_t word, int bit) const;

  /// Order-independent 64-bit key of the literal's value vector masked by
  /// `constraint` -- equal keys put two functions in the same
  /// simulation-equivalence class (collisions only cost a SAT call).
  std::uint64_t signature(Lit l, Lit constraint);

 private:
  struct Word {
    std::vector<std::uint64_t> inputWords;  ///< per input index
    std::vector<std::uint64_t> nodeWords;   ///< per node, grown lazily
  };

  std::uint64_t inputWordFor(std::size_t inputIndex,
                             std::size_t wordIndex) const;
  /// Extend word `w` to cover every node of the graph.
  void ensureSimulated(std::size_t w);
  std::uint64_t value(Lit l, std::size_t w) const {
    const std::uint64_t raw = words_[w].nodeWords[nodeOf(l)];
    return isNegated(l) ? ~raw : raw;
  }

  const Aig& g_;
  std::uint64_t seed_;
  std::vector<Word> words_;
};

}  // namespace tauhls::aig
