#include "aig/aig.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tauhls::aig {

Aig::Aig() {
  nodes_.push_back(Node{});  // node 0: the constant (lit 0 = false, 1 = true)
}

Lit Aig::addInput(const std::string& name) {
  TAUHLS_CHECK(!inputLit_.contains(name), "duplicate AIG input " + name);
  const std::uint32_t node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{kInputMark, static_cast<Lit>(inputNames_.size())});
  inputNames_.push_back(name);
  const Lit lit = withSign(node, false);
  inputLit_.emplace(name, lit);
  return lit;
}

Lit Aig::findInput(const std::string& name) const {
  const auto it = inputLit_.find(name);
  return it == inputLit_.end() ? kLitFalse : it->second;
}

bool Aig::isInput(std::uint32_t node) const {
  return node < nodes_.size() && nodes_[node].f0 == kInputMark;
}

bool Aig::isAnd(std::uint32_t node) const {
  return node != 0 && node < nodes_.size() && nodes_[node].f0 != kInputMark;
}

std::size_t Aig::inputIndexOf(std::uint32_t node) const {
  TAUHLS_ASSERT(isInput(node), "inputIndexOf on a non-input AIG node");
  return nodes_[node].f1;
}

Lit Aig::andLit(Lit a, Lit b) {
  // Constant and identity rewriting.
  if (a == kLitFalse || b == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (b == kLitTrue) return a;
  if (a == b) return a;
  if (a == negate(b)) return kLitFalse;
  // Commutative normal form, then the structural-hash table.
  if (a > b) std::swap(a, b);
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  const auto it = strash_.find(key);
  if (it != strash_.end()) return it->second;
  const std::uint32_t node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{a, b});
  const Lit lit = withSign(node, false);
  strash_.emplace(key, lit);
  return lit;
}

Lit Aig::xorLit(Lit a, Lit b) {
  // a^b = (a & !b) | (!a & b); the rewriting above folds the degenerate cases.
  return orLit(andLit(a, negate(b)), andLit(negate(a), b));
}

Lit Aig::muxLit(Lit sel, Lit t, Lit e) {
  return orLit(andLit(sel, t), andLit(negate(sel), e));
}

Lit Aig::andN(const std::vector<Lit>& lits) {
  Lit acc = kLitTrue;
  for (const Lit l : lits) acc = andLit(acc, l);
  return acc;
}

Lit Aig::orN(const std::vector<Lit>& lits) {
  Lit acc = kLitFalse;
  for (const Lit l : lits) acc = orLit(acc, l);
  return acc;
}

Lit Aig::eqVec(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  TAUHLS_CHECK(a.size() == b.size(), "eqVec width mismatch");
  Lit acc = kLitTrue;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = andLit(acc, negate(xorLit(a[i], b[i])));
  }
  return acc;
}

bool Aig::evaluate(Lit root, const std::vector<bool>& inputValues) const {
  TAUHLS_CHECK(inputValues.size() == inputNames_.size(),
               "AIG evaluation needs one value per input");
  std::vector<char> value(nodes_.size(), 0);
  for (std::uint32_t n = 1; n < nodes_.size(); ++n) {
    if (isInput(n)) {
      value[n] = inputValues[nodes_[n].f1] ? 1 : 0;
    } else {
      const Lit f0 = nodes_[n].f0;
      const Lit f1 = nodes_[n].f1;
      const bool v0 = (value[nodeOf(f0)] != 0) != isNegated(f0);
      const bool v1 = (value[nodeOf(f1)] != 0) != isNegated(f1);
      value[n] = (v0 && v1) ? 1 : 0;
    }
  }
  return (value[nodeOf(root)] != 0) != isNegated(root);
}

std::vector<std::size_t> Aig::support(Lit root) const {
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<std::uint32_t> stack = {nodeOf(root)};
  std::vector<std::size_t> inputs;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (seen[n]) continue;
    seen[n] = 1;
    if (isInput(n)) {
      inputs.push_back(nodes_[n].f1);
    } else if (isAnd(n)) {
      stack.push_back(nodeOf(nodes_[n].f0));
      stack.push_back(nodeOf(nodes_[n].f1));
    }
  }
  std::sort(inputs.begin(), inputs.end());
  return inputs;
}

}  // namespace tauhls::aig
