#include "sched/steps.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::sched {

using dfg::Dfg;
using dfg::NodeId;

std::vector<NodeId> StepSchedule::opsInStep(const Dfg& g, int s) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    if (g.isOp(i) && stepOf[i] == s) out.push_back(i);
  }
  return out;
}

StepSchedule asap(const Dfg& g) {
  StepSchedule s;
  s.stepOf.assign(g.numNodes(), -1);
  const std::vector<int> dist = dfg::longestPathTo(g, dfg::unitDurations(g));
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    if (g.isOp(i)) {
      s.stepOf[i] = dist[i] - 1;  // dist includes the op's own unit duration
      s.numSteps = std::max(s.numSteps, dist[i]);
    }
  }
  return s;
}

StepSchedule alap(const Dfg& g, int numSteps) {
  const StepSchedule fwd = asap(g);
  if (numSteps == 0) numSteps = fwd.numSteps;
  TAUHLS_CHECK(numSteps >= fwd.numSteps,
               "ALAP budget smaller than the critical path");
  StepSchedule s;
  s.stepOf.assign(g.numNodes(), -1);
  s.numSteps = numSteps;
  const std::vector<NodeId> order = dfg::topologicalOrder(g);
  // Walk in reverse topological order: each op is placed as late as its
  // earliest-scheduled successor allows.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId v = *it;
    if (!g.isOp(v)) continue;
    int latest = numSteps - 1;
    for (NodeId succ : g.combinedSuccessors(v)) {
      if (g.isOp(succ)) latest = std::min(latest, s.stepOf[succ] - 1);
    }
    TAUHLS_ASSERT(latest >= 0, "ALAP underflow despite budget check");
    s.stepOf[v] = latest;
  }
  return s;
}

StepSchedule listSchedule(const Dfg& g, const Allocation& alloc) {
  return listSchedule(g, alloc, PriorityRule::CriticalPath);
}

StepSchedule listSchedule(const Dfg& g, const Allocation& alloc,
                          PriorityRule rule) {
  StepSchedule s;
  s.stepOf.assign(g.numNodes(), -1);

  // Base priority: length of the longest path from the op to any sink (ops
  // with more downstream work go first).
  std::vector<int> priority(g.numNodes(), 0);
  const std::vector<NodeId> order = dfg::topologicalOrder(g);
  TAUHLS_CHECK(order.size() == g.numNodes(), "listSchedule requires a DAG");
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId v = *it;
    int best = 0;
    for (NodeId succ : g.combinedSuccessors(v)) best = std::max(best, priority[succ]);
    priority[v] = best + (g.isOp(v) ? 1 : 0);
  }
  if (rule == PriorityRule::Mobility) {
    // Mobility = ALAP - ASAP slack; urgent (low-slack) ops first.  Encode as
    // a composite key: -(maxSlack - slack) dominates, path length breaks ties.
    const StepSchedule early = asap(g);
    const StepSchedule late = alap(g);
    const int scale = static_cast<int>(g.numNodes()) + 1;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
      if (!g.isOp(v)) continue;
      const int slack = late.stepOf[v] - early.stepOf[v];
      priority[v] = (static_cast<int>(g.numNodes()) - slack) * scale +
                    priority[v];
    }
  }

  std::vector<int> pendingPreds(g.numNodes(), 0);
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    for (NodeId p : g.combinedPredecessors(i)) {
      if (g.isOp(p)) ++pendingPreds[i];
    }
  }

  std::size_t scheduled = 0;
  const std::size_t total = g.numOps();
  std::vector<NodeId> ready;
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    if (g.isOp(i) && pendingPreds[i] == 0) ready.push_back(i);
  }

  for (int step = 0; scheduled < total; ++step) {
    TAUHLS_ASSERT(step <= static_cast<int>(total),
                  "list scheduling failed to make progress");
    // Highest priority first; ties by id for determinism.
    std::sort(ready.begin(), ready.end(), [&](NodeId a, NodeId b) {
      return priority[a] != priority[b] ? priority[a] > priority[b] : a < b;
    });
    Allocation used;
    std::vector<NodeId> placed;
    std::vector<NodeId> deferred;
    for (NodeId v : ready) {
      const dfg::ResourceClass cls = dfg::resourceClassOf(g.node(v).kind);
      auto limit = alloc.find(cls);
      if (limit != alloc.end() && used[cls] >= limit->second) {
        deferred.push_back(v);
        continue;
      }
      ++used[cls];
      s.stepOf[v] = step;
      placed.push_back(v);
      ++scheduled;
    }
    s.numSteps = step + 1;
    ready = std::move(deferred);
    for (NodeId v : placed) {
      for (NodeId succ : g.combinedSuccessors(v)) {
        if (g.isOp(succ) && --pendingPreds[succ] == 0) ready.push_back(succ);
      }
    }
  }
  return s;
}

void validateStepSchedule(const Dfg& g, const StepSchedule& s,
                          const Allocation* alloc) {
  TAUHLS_CHECK(s.stepOf.size() == g.numNodes(), "schedule size mismatch");
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    if (!g.isOp(i)) {
      TAUHLS_CHECK(s.stepOf[i] == -1, "inputs must not carry a step");
      continue;
    }
    TAUHLS_CHECK(s.stepOf[i] >= 0 && s.stepOf[i] < s.numSteps,
                 "op step out of range: " + g.node(i).name);
    for (NodeId p : g.combinedPredecessors(i)) {
      if (g.isOp(p)) {
        TAUHLS_CHECK(s.stepOf[p] < s.stepOf[i],
                     "dependence violated between " + g.node(p).name + " and " +
                         g.node(i).name);
      }
    }
  }
  if (alloc != nullptr) {
    for (int step = 0; step < s.numSteps; ++step) {
      Allocation used;
      for (NodeId v : s.opsInStep(g, step)) {
        ++used[dfg::resourceClassOf(g.node(v).kind)];
      }
      for (const auto& [cls, count] : used) {
        auto limit = alloc->find(cls);
        if (limit != alloc->end()) {
          TAUHLS_CHECK(count <= limit->second,
                       std::string("allocation exceeded for class ") +
                           dfg::resourceClassName(cls));
        }
      }
    }
  }
}

}  // namespace tauhls::sched
