#include "sched/clique.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::sched {

using dfg::Dfg;
using dfg::NodeId;
using dfg::ResourceClass;

namespace {

/// Simple augmenting-path bipartite matching.  adj[u] lists right-side
/// vertices reachable from left vertex u; returns matchL (right partner of
/// each left vertex, or -1).
std::vector<int> maxBipartiteMatching(const std::vector<std::vector<int>>& adj,
                                      int numRight) {
  const int numLeft = static_cast<int>(adj.size());
  std::vector<int> matchL(numLeft, -1);
  std::vector<int> matchR(numRight, -1);
  std::vector<bool> visited;

  std::function<bool(int)> tryAugment = [&](int u) -> bool {
    for (int v : adj[u]) {
      if (visited[v]) continue;
      visited[v] = true;
      if (matchR[v] == -1 || tryAugment(matchR[v])) {
        matchL[u] = v;
        matchR[v] = u;
        return true;
      }
    }
    return false;
  };

  for (int u = 0; u < numLeft; ++u) {
    visited.assign(numRight, false);
    tryAugment(u);
  }
  return matchL;
}

}  // namespace

std::vector<std::vector<NodeId>> minChainCover(const Dfg& g, ResourceClass cls) {
  const std::vector<NodeId> ops = g.opsOfClass(cls);
  const int n = static_cast<int>(ops.size());
  if (n == 0) return {};

  const auto closure = dfg::reachabilityClosure(g);
  // Dilworth via König: left copy = chain predecessors, right copy = chain
  // successors; edge (i, j) when ops[i] reaches ops[j].
  std::vector<std::vector<int>> adj(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j && closure[ops[i]][ops[j]]) adj[i].push_back(j);
    }
  }
  const std::vector<int> nextOf = maxBipartiteMatching(adj, n);
  std::vector<bool> isChainHead(n, true);
  for (int i = 0; i < n; ++i) {
    if (nextOf[i] != -1) isChainHead[nextOf[i]] = false;
  }
  std::vector<std::vector<NodeId>> chains;
  for (int i = 0; i < n; ++i) {
    if (!isChainHead[i]) continue;
    std::vector<NodeId> chain;
    for (int cur = i; cur != -1; cur = nextOf[cur]) chain.push_back(ops[cur]);
    chains.push_back(std::move(chain));
  }
  return chains;
}

namespace {

/// Topologically order `members` consistently with `g`'s dependences.
std::vector<NodeId> orderMembers(const Dfg& g, std::vector<NodeId> members) {
  std::vector<int> pos(g.numNodes(), -1);
  const std::vector<NodeId> topo = dfg::topologicalOrder(g);
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = static_cast<int>(i);
  std::sort(members.begin(), members.end(),
            [&pos](NodeId a, NodeId b) { return pos[a] < pos[b]; });
  return members;
}

/// Critical path of `g` if the chain `merged` were serialized by arcs between
/// consecutive not-yet-ordered members; returns -1 when the merge would
/// create a cycle.
int mergedCriticalPath(const Dfg& g, const std::vector<NodeId>& merged,
                       const dfg::DurationFn& dur) {
  Dfg trial = g;  // graphs are HLS-sized; copying is cheap and keeps `g` clean
  for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
    if (dfg::reaches(trial, merged[i], merged[i + 1])) continue;
    if (dfg::reaches(trial, merged[i + 1], merged[i])) return -1;
    trial.addScheduleArc(merged[i], merged[i + 1]);
  }
  return dfg::criticalPathLength(trial, dur);
}

}  // namespace

Binding cliqueSchedule(Dfg& g, const Allocation& alloc,
                       const dfg::DurationFn& worstCaseDuration) {
  const Allocation norm = normalizeAllocation(g, alloc);
  Binding binding;
  for (const auto& [cls, count] : norm) {
    std::vector<std::vector<NodeId>> chains = minChainCover(g, cls);
    // Merge down to the allocation.
    while (static_cast<int>(chains.size()) > count) {
      int bestA = -1;
      int bestB = -1;
      int bestCost = -1;
      std::vector<NodeId> bestMerged;
      for (std::size_t a = 0; a < chains.size(); ++a) {
        for (std::size_t b = 0; b < chains.size(); ++b) {
          if (a == b) continue;
          std::vector<NodeId> merged = chains[a];
          merged.insert(merged.end(), chains[b].begin(), chains[b].end());
          merged = orderMembers(g, std::move(merged));
          const int cost = mergedCriticalPath(g, merged, worstCaseDuration);
          if (cost < 0) continue;
          if (bestCost < 0 || cost < bestCost) {
            bestA = static_cast<int>(a);
            bestB = static_cast<int>(b);
            bestCost = cost;
            bestMerged = std::move(merged);
          }
        }
      }
      TAUHLS_ASSERT(bestA >= 0, "no feasible chain merge found");
      // Replace chain A by the merge, drop chain B.
      chains[static_cast<std::size_t>(bestA)] = std::move(bestMerged);
      chains.erase(chains.begin() + bestB);
    }
    // Commit arcs and bind each chain to one unit.
    int index = 0;
    for (std::vector<NodeId>& chain : chains) {
      chain = orderMembers(g, std::move(chain));
      for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        if (!dfg::reaches(g, chain[i], chain[i + 1])) {
          g.addScheduleArc(chain[i], chain[i + 1]);
        }
      }
      const int unitId = binding.addUnit(cls, index++);
      for (NodeId v : chain) binding.assign(v, unitId);
    }
    // Allocation may exceed need; unused units are simply not created, which
    // matches hardware reality (they would be optimized away).
  }
  validateBinding(g, binding);
  return binding;
}

}  // namespace tauhls::sched
