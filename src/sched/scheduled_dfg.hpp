// The complete scheduling artifact consumed by controller generation and
// simulation: the (arc-augmented) graph, the binding, the step schedule used
// by the centralized baselines, and the timing context.
#pragma once

#include "dfg/analysis.hpp"
#include "dfg/graph.hpp"
#include "sched/binding.hpp"
#include "sched/steps.hpp"
#include "sched/taubm_dfg.hpp"
#include "tau/clocking.hpp"
#include "tau/library.hpp"

namespace tauhls::sched {

enum class BindingStrategy {
  LeftEdge,     ///< list schedule + left-edge binding + serialization arcs
  CliqueCover,  ///< the paper's §3 chain/clique method (schedule-arc insertion)
};

struct ScheduledDfg {
  dfg::Dfg graph;              ///< includes serialization schedule arcs
  Binding binding;
  StepSchedule steps;          ///< valid on `graph`
  TaubmSchedule taubm;         ///< step-split view of `steps`
  tau::ResourceLibrary library;
  double clockNs = 0.0;        ///< CC_TAU

  /// True when the unit executes a telescopic class.
  bool unitIsTelescopic(int unitId) const;
  /// Cycles op `v` occupies its unit given its operand class.
  int opCycles(dfg::NodeId v, bool shortClass) const;
  /// Worst-case per-op duration function (LD cycles for TAU-bound ops).
  dfg::DurationFn worstCaseDurations() const;
  /// Best-case per-op duration function (SD everywhere).
  dfg::DurationFn bestCaseDurations() const;
};

/// Full scheduling + binding pipeline; validates every intermediate artifact.
/// `priority` selects the list-scheduling ready-op ordering (LeftEdge only;
/// the clique strategy derives order from the chain cover).
ScheduledDfg scheduleAndBind(const dfg::Dfg& g, const Allocation& alloc,
                             const tau::ResourceLibrary& lib,
                             BindingStrategy strategy = BindingStrategy::LeftEdge,
                             PriorityRule priority = PriorityRule::CriticalPath);

}  // namespace tauhls::sched
