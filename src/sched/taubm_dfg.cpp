#include "sched/taubm_dfg.hpp"

#include "common/error.hpp"

namespace tauhls::sched {

int TaubmSchedule::bestCaseCycles() const {
  return static_cast<int>(steps.size());
}

int TaubmSchedule::worstCaseCycles() const {
  int cycles = 0;
  for (const TaubmStep& s : steps) cycles += s.split ? 2 : 1;
  return cycles;
}

TaubmSchedule buildTaubm(const dfg::Dfg& g, const StepSchedule& steps,
                         const tau::ResourceLibrary& lib) {
  validateStepSchedule(g, steps);
  TaubmSchedule out;
  for (int s = 0; s < steps.numSteps; ++s) {
    TaubmStep step;
    step.originalStep = s;
    step.ops = steps.opsInStep(g, s);
    TAUHLS_CHECK(!step.ops.empty(), "empty time step in schedule");
    for (dfg::NodeId v : step.ops) {
      const dfg::ResourceClass cls = dfg::resourceClassOf(g.node(v).kind);
      if (lib.has(cls) && lib.typeFor(cls).telescopic) step.tauOps.push_back(v);
    }
    step.split = !step.tauOps.empty();
    out.steps.push_back(std::move(step));
  }
  return out;
}

}  // namespace tauhls::sched
