// TAUBM DFG transform (paper §2.2, Fig. 2(b)).
//
// Starting from a step schedule on the original clock, every step containing
// operations bound to telescopic units is split into T_i and T_i'; TAU-bound
// operations span both halves (the second half is skipped when every TAU op
// of the step completes within SD), while fixed ops stay in T_i only.
#pragma once

#include <vector>

#include "dfg/graph.hpp"
#include "sched/steps.hpp"
#include "tau/library.hpp"

namespace tauhls::sched {

struct TaubmStep {
  int originalStep = 0;
  std::vector<dfg::NodeId> ops;     ///< all ops of the step
  std::vector<dfg::NodeId> tauOps;  ///< subset bound to telescopic classes
  bool split = false;               ///< true when the step has a T_i' half
};

struct TaubmSchedule {
  std::vector<TaubmStep> steps;

  /// Cycles when every TAU op hits SD (gray halves skipped).
  int bestCaseCycles() const;
  /// Cycles when every TAU op needs LD (every split step spends both halves).
  int worstCaseCycles() const;
};

/// Build the TAUBM schedule; `lib` decides which classes are telescopic.
TaubmSchedule buildTaubm(const dfg::Dfg& g, const StepSchedule& steps,
                         const tau::ResourceLibrary& lib);

}  // namespace tauhls::sched
