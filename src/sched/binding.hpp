// Resource binding: assignment of operations to concrete unit instances, and
// the per-unit execution order the distributed controllers will realize.
#pragma once

#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "sched/allocation.hpp"
#include "sched/steps.hpp"

namespace tauhls::sched {

/// One allocated arithmetic unit.
struct UnitInstance {
  dfg::ResourceClass cls = dfg::ResourceClass::None;
  int index = 0;      ///< 0-based within the class
  std::string name;   ///< e.g. "mult1", "adder2" (1-based, as in the paper)
};

class Binding {
 public:
  /// Register a unit; returns its dense id.
  int addUnit(dfg::ResourceClass cls, int index);

  /// Append `op` to unit `unitId`'s execution sequence.
  void assign(dfg::NodeId op, int unitId);

  std::size_t numUnits() const { return units_.size(); }
  const UnitInstance& unit(int unitId) const;
  const std::vector<UnitInstance>& units() const { return units_; }

  /// Unit id executing `op`; -1 when unbound (e.g. inputs).
  int unitOf(dfg::NodeId op) const;

  /// Execution order of ops on `unitId`.
  const std::vector<dfg::NodeId>& sequenceOf(int unitId) const;

  /// Unit ids of one class, ascending by index.
  std::vector<int> unitsOfClass(dfg::ResourceClass cls) const;

 private:
  std::vector<UnitInstance> units_;
  std::vector<std::vector<dfg::NodeId>> sequences_;
  std::vector<std::pair<dfg::NodeId, int>> unitOf_;
};

/// Left-edge-style binding from a step schedule: ops are assigned within each
/// step to the lowest-numbered free unit of their class, preferring a unit
/// whose previous op is a data predecessor (fewer cross-controller signals).
Binding bindFromSteps(const dfg::Dfg& g, const StepSchedule& steps,
                      const Allocation& alloc);

/// Add schedule arcs serializing consecutive same-unit ops that are not
/// already ordered by existing edges (paper §3, Fig. 3(c)).
void addSerializationArcs(dfg::Dfg& g, const Binding& binding);

/// Throws unless the binding is complete and consistent: every op bound to a
/// unit of its class, sequences are duplicate-free and respect data+schedule
/// dependences (no op may precede, in its unit's sequence, a node it depends on).
void validateBinding(const dfg::Dfg& g, const Binding& binding);

}  // namespace tauhls::sched
