// Time-step scheduling (synchronous scheduling in the paper's §3 sense):
// every operation is assigned to one control step; all operations take one
// step (the original clock CC accommodates every unit's worst-case delay).
#pragma once

#include <vector>

#include "dfg/graph.hpp"
#include "sched/allocation.hpp"

namespace tauhls::sched {

struct StepSchedule {
  /// Step index per node (data nodes only; inputs carry -1).
  std::vector<int> stepOf;
  int numSteps = 0;

  /// Ops scheduled in step `s`, ascending by id.
  std::vector<dfg::NodeId> opsInStep(const dfg::Dfg& g, int s) const;
};

/// As-soon-as-possible schedule (unconstrained).
StepSchedule asap(const dfg::Dfg& g);

/// As-late-as-possible schedule within `numSteps` (0 = use the ASAP length).
StepSchedule alap(const dfg::Dfg& g, int numSteps = 0);

/// Ready-op ordering rule for list scheduling.
enum class PriorityRule {
  CriticalPath,  ///< longest path to a sink first (the default)
  Mobility,      ///< smallest ALAP - ASAP slack first (ties: critical path)
};

/// Resource-constrained list scheduling with critical-path priority.
/// Classes absent from `alloc` are unconstrained.
StepSchedule listSchedule(const dfg::Dfg& g, const Allocation& alloc);

/// List scheduling with an explicit priority rule.
StepSchedule listSchedule(const dfg::Dfg& g, const Allocation& alloc,
                          PriorityRule rule);

/// Throws unless `s` is a valid schedule for `g`: every op has a step, data
/// predecessors are in strictly earlier steps, and (when `alloc` is given)
/// per-step class usage never exceeds the allocation.
void validateStepSchedule(const dfg::Dfg& g, const StepSchedule& s,
                          const Allocation* alloc = nullptr);

}  // namespace tauhls::sched
