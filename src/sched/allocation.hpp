// Resource allocation: how many unit instances of each class are available.
#pragma once

#include <map>

#include "dfg/graph.hpp"

namespace tauhls::sched {

/// Unit-instance counts per resource class (same shape as
/// dfg::Allocation from the benchmark library).
using Allocation = std::map<dfg::ResourceClass, int>;

/// Fill in classes the caller omitted (each gets enough units for full
/// concurrency, i.e. the size of its minimum chain cover) and validate that
/// every requested count is >= 1.  The result covers exactly the classes with
/// at least one operation in `g`.
Allocation normalizeAllocation(const dfg::Dfg& g, const Allocation& requested);

}  // namespace tauhls::sched
