#include "sched/region_schedule.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace tauhls::sched {

using dfg::NodeId;

const ScheduledDfg& RegionSchedule::leaf(const std::string& path) const {
  const auto it = leaves.find(path);
  TAUHLS_CHECK(it != leaves.end(), "no scheduled leaf at region path '" + path + "'");
  return it->second;
}

double RegionSchedule::clockNs() const {
  TAUHLS_CHECK(!leaves.empty(), "region schedule has no leaves");
  return leaves.begin()->second.clockNs;
}

RegionSchedule scheduleRegions(const dfg::RegionProgram& program,
                               const Allocation& alloc,
                               const tau::ResourceLibrary& lib,
                               BindingStrategy strategy,
                               PriorityRule priority) {
  dfg::validateRegionProgram(program);
  RegionSchedule rs;
  rs.program = program;
  rs.strategy = strategy;
  // The shared hardware must cover every leaf: normalize the request against
  // each leaf body and keep the per-class maximum.
  for (const dfg::LeafRef& leaf : dfg::collectLeaves(program)) {
    for (const auto& [cls, n] : normalizeAllocation(leaf.region->body, alloc)) {
      rs.allocation[cls] = std::max(rs.allocation[cls], n);
    }
  }
  for (const dfg::LeafRef& leaf : dfg::collectLeaves(program)) {
    rs.leaves.emplace(leaf.path, scheduleAndBind(leaf.region->body, rs.allocation,
                                                 lib, strategy, priority));
  }
  return rs;
}

namespace {

/// Operations a fresh activation can start immediately (no operation
/// predecessor through data edges, state edges or schedule arcs).
std::vector<NodeId> sourceOps(const dfg::Dfg& g) {
  std::vector<NodeId> out;
  for (NodeId v : g.opIds()) {
    bool hasOpPred = false;
    for (NodeId p : g.combinedPredecessors(v)) hasOpPred |= g.isOp(p);
    if (!hasOpPred) out.push_back(v);
  }
  return out;
}

/// Operations whose completion ends the activation (no successor at all);
/// every op reaches one of these along combined edges.
std::vector<NodeId> terminalOps(const dfg::Dfg& g) {
  std::vector<NodeId> out;
  for (NodeId v : g.opIds()) {
    if (g.combinedSuccessors(v).empty()) out.push_back(v);
  }
  return out;
}

}  // namespace

ScheduledDfg flattenScheduled(const RegionSchedule& rs,
                              const dfg::BranchChoices& choices) {
  TAUHLS_CHECK(!rs.leaves.empty(), "region schedule has no leaves");
  const std::vector<std::string> trace =
      dfg::activationTrace(rs.program, choices);
  TAUHLS_CHECK(!trace.empty(), "empty activation trace");

  ScheduledDfg flat;
  flat.graph = dfg::Dfg(rs.program.name + "_flat");
  flat.library = rs.leaves.begin()->second.library;
  flat.clockNs = rs.leaves.begin()->second.clockNs;

  // Physical units shared across activations, keyed by (class, index).
  std::map<std::pair<dfg::ResourceClass, int>, int> unitIds;
  std::vector<NodeId> prevTerminals;
  std::vector<int> stepOf;  // grows with the flat graph
  int stepOffset = 0;

  for (std::size_t k = 0; k < trace.size(); ++k) {
    const ScheduledDfg& leaf = rs.leaf(trace[k]);
    TAUHLS_CHECK(leaf.clockNs == flat.clockNs,
                 "leaf schedules disagree on the clock period");
    const std::string prefix = "a" + std::to_string(k) + "_";

    std::vector<NodeId> map(leaf.graph.numNodes(), dfg::kNoNode);
    for (NodeId id = 0; id < leaf.graph.numNodes(); ++id) {
      const dfg::Node& n = leaf.graph.node(id);
      if (n.kind == dfg::OpKind::Input) {
        map[id] = flat.graph.addInput(prefix + n.name);
        stepOf.push_back(-1);
      } else {
        std::vector<NodeId> operands;
        operands.reserve(n.operands.size());
        for (NodeId o : n.operands) operands.push_back(map[o]);
        map[id] = flat.graph.addOp(n.kind, std::span<const NodeId>(operands),
                                   prefix + n.name);
        stepOf.push_back(stepOffset + leaf.steps.stepOf[id]);
      }
    }
    for (const dfg::ScheduleArc& a : leaf.graph.scheduleArcs()) {
      flat.graph.addScheduleArc(map[a.from], map[a.to]);
    }
    for (const dfg::ScheduleArc& a : leaf.graph.stateEdges()) {
      flat.graph.addStateEdge(map[a.from], map[a.to]);
    }
    for (NodeId o : leaf.graph.outputs()) flat.graph.markOutput(map[o]);

    // Concatenate the per-unit execution sequences on the shared units.
    for (int u = 0; u < static_cast<int>(leaf.binding.numUnits()); ++u) {
      const UnitInstance& unit = leaf.binding.unit(u);
      const auto key = std::make_pair(unit.cls, unit.index);
      auto it = unitIds.find(key);
      if (it == unitIds.end()) {
        it = unitIds.emplace(key, flat.binding.addUnit(unit.cls, unit.index))
                 .first;
      }
      for (NodeId op : leaf.binding.sequenceOf(u)) {
        flat.binding.assign(map[op], it->second);
      }
    }

    // Barrier: the sequencer re-pulses the next activation's restart path
    // only once every op of this activation has completed.
    if (!prevTerminals.empty()) {
      for (NodeId s : sourceOps(leaf.graph)) {
        for (NodeId t : prevTerminals) flat.graph.addStateEdge(t, map[s]);
      }
    }
    std::vector<NodeId> terminals;
    for (NodeId t : terminalOps(leaf.graph)) terminals.push_back(map[t]);
    prevTerminals = std::move(terminals);
    stepOffset += leaf.steps.numSteps;
  }

  flat.steps.stepOf = std::move(stepOf);
  flat.steps.numSteps = stepOffset;
  flat.graph.validate();
  validateStepSchedule(flat.graph, flat.steps, &rs.allocation);
  validateBinding(flat.graph, flat.binding);
  flat.taubm = buildTaubm(flat.graph, flat.steps, flat.library);
  return flat;
}

}  // namespace tauhls::sched
