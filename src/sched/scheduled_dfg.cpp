#include "sched/scheduled_dfg.hpp"

#include "common/error.hpp"
#include "sched/clique.hpp"

namespace tauhls::sched {

bool ScheduledDfg::unitIsTelescopic(int unitId) const {
  const dfg::ResourceClass cls = binding.unit(unitId).cls;
  return library.has(cls) && library.typeFor(cls).telescopic;
}

int ScheduledDfg::opCycles(dfg::NodeId v, bool shortClass) const {
  const dfg::ResourceClass cls = dfg::resourceClassOf(graph.node(v).kind);
  return tau::cyclesFor(library.typeFor(cls), shortClass, clockNs);
}

dfg::DurationFn ScheduledDfg::worstCaseDurations() const {
  return [this](dfg::NodeId v) {
    return graph.isInput(v) ? 0 : opCycles(v, /*shortClass=*/false);
  };
}

dfg::DurationFn ScheduledDfg::bestCaseDurations() const {
  return [this](dfg::NodeId v) {
    return graph.isInput(v) ? 0 : opCycles(v, /*shortClass=*/true);
  };
}

ScheduledDfg scheduleAndBind(const dfg::Dfg& g, const Allocation& alloc,
                             const tau::ResourceLibrary& lib,
                             BindingStrategy strategy, PriorityRule priority) {
  g.validate();
  for (dfg::NodeId v : g.opIds()) {
    const dfg::ResourceClass cls = dfg::resourceClassOf(g.node(v).kind);
    TAUHLS_CHECK(lib.has(cls),
                 std::string("resource library lacks class ") +
                     dfg::resourceClassName(cls) + " required by op " +
                     g.node(v).name);
  }

  ScheduledDfg out;
  out.graph = g;
  out.library = lib;
  out.clockNs = tau::tauClockNs(lib);
  // The controller generators model two-level TAUs (paper §2.1: one or two
  // clock cycles); reject libraries whose long delay needs more cycles.
  for (dfg::ResourceClass cls : lib.classes()) {
    const tau::UnitType& type = lib.typeFor(cls);
    if (type.telescopic) {
      TAUHLS_CHECK(tau::cyclesFor(type, false, out.clockNs) <= 2,
                   "telescopic unit '" + type.name +
                       "' is not two-level: LD exceeds two clock periods");
    } else {
      TAUHLS_CHECK(tau::cyclesFor(type, true, out.clockNs) == 1,
                   "fixed unit '" + type.name +
                       "' must fit in one clock period");
    }
  }
  const Allocation norm = normalizeAllocation(g, alloc);

  if (strategy == BindingStrategy::LeftEdge) {
    out.steps = listSchedule(out.graph, norm, priority);
    out.binding = bindFromSteps(out.graph, out.steps, norm);
    addSerializationArcs(out.graph, out.binding);
  } else {
    const dfg::DurationFn worst = [&](dfg::NodeId v) {
      if (g.isInput(v)) return 0;
      const dfg::ResourceClass cls = dfg::resourceClassOf(g.node(v).kind);
      return tau::cyclesFor(lib.typeFor(cls), /*shortClass=*/false,
                            tau::tauClockNs(lib));
    };
    out.binding = cliqueSchedule(out.graph, norm, worst);
    // Steps for the centralized baselines, consistent with the inserted arcs.
    out.steps = listSchedule(out.graph, norm);
  }
  validateStepSchedule(out.graph, out.steps, &norm);
  validateBinding(out.graph, out.binding);
  out.taubm = buildTaubm(out.graph, out.steps, lib);
  return out;
}

}  // namespace tauhls::sched
