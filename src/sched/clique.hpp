// The paper's §3 scheduling method: build the dependency graph of the
// operations of one resource class, cover it with a minimum number of cliques
// (a clique of the comparability graph is a dependence *chain*, so the
// minimum clique cover equals Dilworth's minimum chain cover, computed
// exactly via bipartite matching), and -- when fewer units are allocated than
// chains exist -- insert schedule arcs that merge chains while minimizing the
// worst-case critical-path growth (paper Fig. 3(b): dotted edges).
#pragma once

#include <vector>

#include "dfg/analysis.hpp"
#include "dfg/graph.hpp"
#include "sched/allocation.hpp"
#include "sched/binding.hpp"

namespace tauhls::sched {

/// Minimum chain cover of the ops of `cls` under the reachability partial
/// order of `g` (data edges + existing schedule arcs).  Each chain is in
/// dependence order.  The number of chains is the minimum number of units of
/// `cls` executing `g` with no concurrency loss (paper: "at least three
/// TAU-multipliers are required").
std::vector<std::vector<dfg::NodeId>> minChainCover(const dfg::Dfg& g,
                                                    dfg::ResourceClass cls);

/// Schedule-arc-based scheduling: for every class, reduce the chain cover to
/// at most the allocated unit count by inserting schedule arcs into `g`
/// (choosing, among all pairwise chain merges, one minimizing the worst-case
/// critical path), then bind each resulting chain to one unit.
/// `worstCaseDuration(op)` gives the per-op cycle count used for the merge
/// cost (typically 2 for TAU-class ops, 1 otherwise).
Binding cliqueSchedule(dfg::Dfg& g, const Allocation& alloc,
                       const dfg::DurationFn& worstCaseDuration);

}  // namespace tauhls::sched
