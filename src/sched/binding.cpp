#include "sched/binding.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::sched {

using dfg::Dfg;
using dfg::NodeId;
using dfg::ResourceClass;

int Binding::addUnit(ResourceClass cls, int index) {
  UnitInstance u;
  u.cls = cls;
  u.index = index;
  u.name = std::string(dfg::resourceClassName(cls)) + std::to_string(index + 1);
  units_.push_back(u);
  sequences_.emplace_back();
  return static_cast<int>(units_.size()) - 1;
}

void Binding::assign(NodeId op, int unitId) {
  TAUHLS_CHECK(unitId >= 0 && unitId < static_cast<int>(units_.size()),
               "unit id out of range");
  TAUHLS_CHECK(unitOf(op) == -1, "op already bound");
  sequences_[unitId].push_back(op);
  unitOf_.emplace_back(op, unitId);
}

const UnitInstance& Binding::unit(int unitId) const {
  TAUHLS_CHECK(unitId >= 0 && unitId < static_cast<int>(units_.size()),
               "unit id out of range");
  return units_[unitId];
}

int Binding::unitOf(NodeId op) const {
  for (const auto& [node, unit] : unitOf_) {
    if (node == op) return unit;
  }
  return -1;
}

const std::vector<NodeId>& Binding::sequenceOf(int unitId) const {
  TAUHLS_CHECK(unitId >= 0 && unitId < static_cast<int>(units_.size()),
               "unit id out of range");
  return sequences_[unitId];
}

std::vector<int> Binding::unitsOfClass(ResourceClass cls) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (units_[i].cls == cls) out.push_back(static_cast<int>(i));
  }
  return out;
}

Binding bindFromSteps(const Dfg& g, const StepSchedule& steps,
                      const Allocation& alloc) {
  validateStepSchedule(g, steps, &alloc);
  Binding b;
  // Create every allocated unit of classes that actually occur.
  std::map<ResourceClass, std::vector<int>> unitIds;
  for (const auto& [cls, count] : alloc) {
    if (g.opsOfClass(cls).empty()) continue;
    for (int i = 0; i < count; ++i) unitIds[cls].push_back(b.addUnit(cls, i));
  }
  // Last op bound on each unit (for the predecessor-affinity heuristic).
  std::vector<NodeId> lastOn(b.numUnits(), dfg::kNoNode);

  for (int step = 0; step < steps.numSteps; ++step) {
    std::map<ResourceClass, std::vector<int>> freeUnits = unitIds;
    for (NodeId v : steps.opsInStep(g, step)) {
      const ResourceClass cls = dfg::resourceClassOf(g.node(v).kind);
      auto it = freeUnits.find(cls);
      TAUHLS_CHECK(it != freeUnits.end() && !it->second.empty(),
                   "step schedule exceeds allocation for class " +
                       std::string(dfg::resourceClassName(cls)));
      // Prefer a free unit whose last op produced one of v's operands.
      std::size_t pick = 0;
      const std::vector<NodeId> preds = g.dataPredecessors(v);
      for (std::size_t i = 0; i < it->second.size(); ++i) {
        NodeId last = lastOn[it->second[i]];
        if (last != dfg::kNoNode &&
            std::find(preds.begin(), preds.end(), last) != preds.end()) {
          pick = i;
          break;
        }
      }
      const int unitId = it->second[pick];
      it->second.erase(it->second.begin() + static_cast<long>(pick));
      b.assign(v, unitId);
      lastOn[unitId] = v;
    }
  }
  // Prune allocated units that received no operations (hardware for them
  // would be optimized away); renumber per class to keep names dense.
  Binding pruned;
  std::map<ResourceClass, int> nextIndex;
  for (std::size_t u = 0; u < b.numUnits(); ++u) {
    const auto& seq = b.sequenceOf(static_cast<int>(u));
    if (seq.empty()) continue;
    const ResourceClass cls = b.unit(static_cast<int>(u)).cls;
    const int id = pruned.addUnit(cls, nextIndex[cls]++);
    for (NodeId v : seq) pruned.assign(v, id);
  }
  validateBinding(g, pruned);
  return pruned;
}

void addSerializationArcs(Dfg& g, const Binding& binding) {
  for (std::size_t u = 0; u < binding.numUnits(); ++u) {
    const std::vector<NodeId>& seq = binding.sequenceOf(static_cast<int>(u));
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      if (!dfg::reaches(g, seq[i], seq[i + 1])) {
        g.addScheduleArc(seq[i], seq[i + 1]);
      }
    }
  }
}

void validateBinding(const Dfg& g, const Binding& binding) {
  std::vector<int> seen(g.numNodes(), 0);
  for (std::size_t u = 0; u < binding.numUnits(); ++u) {
    const UnitInstance& unit = binding.unit(static_cast<int>(u));
    for (NodeId v : binding.sequenceOf(static_cast<int>(u))) {
      TAUHLS_CHECK(g.isOp(v), "binding assigns a non-op node");
      TAUHLS_CHECK(dfg::resourceClassOf(g.node(v).kind) == unit.cls,
                   "op bound to a unit of the wrong class: " + g.node(v).name);
      TAUHLS_CHECK(++seen[v] == 1, "op bound twice: " + g.node(v).name);
    }
    // Sequence order must not contradict dependences.
    const std::vector<NodeId>& seq = binding.sequenceOf(static_cast<int>(u));
    for (std::size_t i = 0; i < seq.size(); ++i) {
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        TAUHLS_CHECK(!dfg::reaches(g, seq[j], seq[i]),
                     "unit sequence contradicts dependences between " +
                         g.node(seq[i]).name + " and " + g.node(seq[j]).name);
      }
    }
  }
  for (NodeId v : g.opIds()) {
    TAUHLS_CHECK(seen[v] == 1, "op left unbound: " + g.node(v).name);
  }
}

}  // namespace tauhls::sched
