#include "sched/allocation.hpp"

#include "common/error.hpp"
#include "sched/clique.hpp"

namespace tauhls::sched {

Allocation normalizeAllocation(const dfg::Dfg& g, const Allocation& requested) {
  Allocation out;
  for (dfg::NodeId v : g.opIds()) {
    const dfg::ResourceClass cls = dfg::resourceClassOf(g.node(v).kind);
    if (out.contains(cls)) continue;
    auto it = requested.find(cls);
    if (it != requested.end()) {
      TAUHLS_CHECK(it->second >= 1,
                   std::string("allocation must be >= 1 for class ") +
                       dfg::resourceClassName(cls));
      out[cls] = it->second;
    } else {
      // Unconstrained: enough units for full concurrency.
      out[cls] = static_cast<int>(minChainCover(g, cls).size());
    }
  }
  return out;
}

}  // namespace tauhls::sched
