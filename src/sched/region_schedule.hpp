// Per-region scheduling against one shared TAU allocation.
//
// Every leaf of a region program is scheduled and bound independently with
// the *same* allocation, library and strategy -- the hardware is one set of
// telescopic units that all regions time-share, and the region sequencer
// activates one leaf's controller network at a time.  flattenScheduled builds
// the flat-inlined unrolled reference by replicating the already-scheduled
// leaf graphs (schedule arcs included) per activation, concatenating the
// per-unit execution sequences, offsetting the step schedules, and inserting
// state-edge barriers at activation boundaries -- so the reference is the
// same schedule the composed controllers realize, expressed as one flat
// ScheduledDfg that every existing flat analysis accepts.
#pragma once

#include <map>
#include <string>

#include "dfg/region.hpp"
#include "sched/scheduled_dfg.hpp"

namespace tauhls::sched {

struct RegionSchedule {
  dfg::RegionProgram program;
  std::map<std::string, ScheduledDfg> leaves;  ///< keyed by leaf region path
  Allocation allocation;                       ///< normalized, shared
  BindingStrategy strategy = BindingStrategy::LeftEdge;

  const ScheduledDfg& leaf(const std::string& path) const;
  /// Clock period shared by every leaf (CC_TAU of the common library).
  double clockNs() const;
};

/// Schedule and bind every leaf against the shared allocation; validates the
/// program first.
RegionSchedule scheduleRegions(const dfg::RegionProgram& program,
                               const Allocation& alloc,
                               const tau::ResourceLibrary& lib,
                               BindingStrategy strategy = BindingStrategy::LeftEdge,
                               PriorityRule priority = PriorityRule::CriticalPath);

/// The flat-inlined unrolled reference schedule under `choices` (see the
/// file comment).  Unit instances are shared across activations by
/// (class, index) -- the same physical units the composed controllers drive.
ScheduledDfg flattenScheduled(const RegionSchedule& rs,
                              const dfg::BranchChoices& choices);

}  // namespace tauhls::sched
