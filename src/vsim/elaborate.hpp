// Hierarchy elaboration: flatten a parsed design under a chosen top module
// into a signal table plus a list of flat instances whose local names map to
// global signal slots (connected ports alias the outer signal).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vsim/ast.hpp"

namespace tauhls::vsim {

using SignalId = std::uint32_t;

struct FlatInstance {
  const Module* module = nullptr;
  std::string path;                           ///< "" for top, else "a.b"
  std::map<std::string, SignalId> signalOf;   ///< local name -> global slot
};

struct Elaboration {
  const Module* top = nullptr;
  std::vector<FlatInstance> instances;        ///< top first, then children
  std::vector<std::string> signalNames;       ///< hierarchical, per slot
  std::vector<int> signalWidth;               ///< bits per slot

  SignalId findSignal(const std::string& hierarchicalName) const;  ///< throws
};

/// Flatten `topModule`; throws on unknown modules/ports or name clashes.
Elaboration elaborate(const Design& design, const std::string& topModule);

}  // namespace tauhls::vsim
