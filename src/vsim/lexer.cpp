#include "vsim/lexer.hpp"

#include <cctype>

#include "common/error.hpp"

namespace tauhls::vsim {

std::vector<Token> tokenize(const std::string& source) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto peek = [&](std::size_t k) { return i + k < n ? source[i + k] : '\0'; };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '`') {  // compiler directives (`timescale ...): skip the line
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_' || source[j] == '$')) {
        ++j;
      }
      out.push_back({TokKind::Identifier, source.substr(i, j - i), 0, 0, line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // decimal, possibly a sized literal: <size>'<base><digits>
      std::size_t j = i;
      int declaredWidth = 0;
      for (std::size_t k = i; k < n &&
           std::isdigit(static_cast<unsigned char>(source[k])); ++k) {
        declaredWidth = declaredWidth * 10 + (source[k] - '0');
      }
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) ++j;
      if (j < n && source[j] == '\'') {
        TAUHLS_CHECK(j + 1 < n, "truncated sized literal at line " +
                                    std::to_string(line));
        const char base = source[j + 1];
        std::size_t k = j + 2;
        std::uint64_t value = 0;
        if (base == 'b' || base == 'B') {
          while (k < n && (source[k] == '0' || source[k] == '1')) {
            value = value * 2 + static_cast<std::uint64_t>(source[k] - '0');
            ++k;
          }
        } else if (base == 'd' || base == 'D') {
          while (k < n && std::isdigit(static_cast<unsigned char>(source[k]))) {
            value = value * 10 + static_cast<std::uint64_t>(source[k] - '0');
            ++k;
          }
        } else if (base == 'h' || base == 'H') {
          while (k < n && std::isxdigit(static_cast<unsigned char>(source[k]))) {
            const char h = static_cast<char>(
                std::tolower(static_cast<unsigned char>(source[k])));
            value = value * 16 + static_cast<std::uint64_t>(
                                     std::isdigit(static_cast<unsigned char>(h))
                                         ? h - '0'
                                         : h - 'a' + 10);
            ++k;
          }
        } else {
          TAUHLS_FAIL("unsupported literal base at line " + std::to_string(line));
        }
        TAUHLS_CHECK(k > j + 2, "empty sized literal at line " +
                                    std::to_string(line));
        out.push_back({TokKind::Number, source.substr(i, k - i), value,
                       declaredWidth, line});
        i = k;
      } else {
        std::uint64_t value = 0;
        for (std::size_t k = i; k < j; ++k) {
          value = value * 10 + static_cast<std::uint64_t>(source[k] - '0');
        }
        out.push_back({TokKind::Number, source.substr(i, j - i), value, 0,
                       line});
        i = j;
      }
      continue;
    }
    // Multi-char punctuation first.
    static const char* kMulti[] = {"<=", "==", "!==", "!=", "&&", "||", "@*"};
    bool matched = false;
    for (const char* m : kMulti) {
      const std::size_t len = std::string(m).size();
      if (source.compare(i, len, m) == 0) {
        out.push_back({TokKind::Punct, m, 0, 0, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (std::string("()[]{};,.:=!~&|^#@*<>-?").find(c) != std::string::npos) {
      out.push_back({TokKind::Punct, std::string(1, c), 0, 0, line});
      ++i;
      continue;
    }
    if (c == '"') {  // string literal (testbench $display): skip content
      std::size_t j = i + 1;
      while (j < n && source[j] != '"') ++j;
      TAUHLS_CHECK(j < n, "unterminated string at line " + std::to_string(line));
      out.push_back({TokKind::Punct, "\"...\"", 0, 0, line});
      i = j + 1;
      continue;
    }
    TAUHLS_FAIL("unexpected character '" + std::string(1, c) + "' at line " +
                std::to_string(line));
  }
  out.push_back({TokKind::End, "", 0, 0, line});
  return out;
}

}  // namespace tauhls::vsim
