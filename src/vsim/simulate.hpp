// Cycle-based simulation of an elaborated design.
//
// Model: all sequential blocks are clocked by the single clock; `settle()`
// iterates every combinational construct (wire initializers, continuous
// assigns, gate primitives, always @* blocks) to a fixpoint; `clockEdge()`
// executes the sequential blocks against the settled values, commits the
// nonblocking assignments atomically, and re-settles.  This matches the
// synthesizable subset's semantics exactly (no delta-delay races exist in
// the emitted code: the combinational signal graph is acyclic).
//
// Two value modes:
//
//   TwoValued  every signal is a plain uint64 (the historical behaviour,
//              byte-identical to before the ternary mode existed);
//   Ternary    every signal carries a second X plane (bit set = unknown)
//              and all evaluation follows Kleene logic -- an if/case whose
//              condition is X executes *both* branches and merges the
//              written signals (agreeing determinate bits survive, anything
//              else goes X), and unassigned registers hold their value.
//
// The ternary mode is the RTL half of the reset-robustness analysis
// (verify/xprop_check.hpp): start with setAllX(), drive the reset protocol,
// and watch every register's X plane drain.  It is monotone in the
// information order, so a determinate outcome covers every concrete
// power-on refinement.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "vsim/elaborate.hpp"
#include "vsim/parser.hpp"

namespace tauhls::vsim {

/// How signal values are represented and evaluated (see file comment).
enum class ValueMode : int {
  TwoValued = 0,
  Ternary = 1,
};

class Simulator {
 public:
  /// Parse + elaborate + reset all signals to 0 (no X anywhere yet).
  Simulator(const std::string& source, const std::string& topModule,
            ValueMode mode = ValueMode::TwoValued);

  ValueMode mode() const { return mode_; }

  /// Set a top-level input (by local name on the top module).  In ternary
  /// mode this also clears the input's X plane.
  void setInput(const std::string& name, std::uint64_t value);
  /// Mark a top-level input all-X (ternary mode only).
  void setInputX(const std::string& name);
  /// Mark *every* signal all-X (ternary mode only): the adversarial
  /// power-on state.  Re-drive the inputs afterwards, then settle().
  void setAllX();

  /// Read any signal by hierarchical name ("RE_m1", "u_ctrl.state", ...).
  /// In ternary mode this is the value plane (X bits read 0).
  std::uint64_t signal(const std::string& hierarchicalName) const;
  /// X plane of a signal; always 0 in TwoValued mode.
  std::uint64_t signalXMask(const std::string& hierarchicalName) const;
  /// Read a top-level signal by local name.
  std::uint64_t top(const std::string& localName) const;
  std::uint64_t topXMask(const std::string& localName) const;

  /// Propagate combinational logic to a fixpoint.
  void settle();
  /// One positive clock edge (settles before sampling and after committing).
  void clockEdge();

  const Elaboration& elaboration() const { return elab_; }

 private:
  /// Ternary signal value: value plane + X plane, canonical `v & x == 0`.
  struct TVal {
    std::uint64_t v = 0;
    std::uint64_t x = 0;
  };

  // --- two-valued engine (unchanged semantics) -----------------------------
  std::uint64_t eval(const FlatInstance& inst, const Expr& e) const;
  void execStmts(const FlatInstance& inst,
                 const std::vector<StmtPtr>& stmts, bool sequential,
                 std::vector<std::pair<SignalId, std::uint64_t>>* nba);
  void write(const FlatInstance& inst, const std::string& name,
             std::uint64_t value);
  void settleTwoValued();

  // --- ternary engine ------------------------------------------------------
  TVal evalT(const FlatInstance& inst, const Expr& e) const;
  /// Kleene truth of a (masked) value: +1 true, -1 false, 0 unknown.
  static int boolT(TVal a, std::uint64_t mask);
  /// Branch merge under an X condition (agree-or-X).
  static TVal mergeT(TVal a, TVal b);
  void writeT(const FlatInstance& inst, const std::string& name, TVal value);
  void execStmtsT(const FlatInstance& inst, const std::vector<StmtPtr>& stmts,
                  std::map<SignalId, TVal>* nba);
  void execCaseChainT(const FlatInstance& inst, const Stmt& stmt,
                      std::size_t idx, TVal subject, std::uint64_t subjectMask,
                      const CaseArm* fallback, std::map<SignalId, TVal>* nba);
  /// Execute both alternatives of an X-condition branch on copies of the
  /// simulation state and merge every signal (and pending NBA) per mergeT.
  void execBothT(const std::function<void(std::map<SignalId, TVal>*)>& thenFn,
                 const std::function<void(std::map<SignalId, TVal>*)>& elseFn,
                 std::map<SignalId, TVal>* nba);
  /// Value a register holds when one branch of a merge leaves it unassigned:
  /// the pending NBA value if any, else the current (pre-edge) signal.
  TVal heldT(const std::map<SignalId, TVal>* nba, SignalId id) const;
  void settleTernary();

  /// Bit width of an expression (needed by concat/reduction evaluation).
  int widthOfExpr(const FlatInstance& inst, const Expr& e) const;
  std::uint64_t maskOf(SignalId id) const;

  Design design_;
  Elaboration elab_;
  ValueMode mode_ = ValueMode::TwoValued;
  std::vector<std::uint64_t> values_;
  /// Per-signal X plane; sized only in ternary mode.
  std::vector<std::uint64_t> xmask_;
};

}  // namespace tauhls::vsim
