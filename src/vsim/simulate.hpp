// Cycle-based simulation of an elaborated design.
//
// Model: all sequential blocks are clocked by the single clock; `settle()`
// iterates every combinational construct (wire initializers, continuous
// assigns, gate primitives, always @* blocks) to a fixpoint; `clockEdge()`
// executes the sequential blocks against the settled values, commits the
// nonblocking assignments atomically, and re-settles.  This matches the
// synthesizable subset's semantics exactly (no delta-delay races exist in
// the emitted code: the combinational signal graph is acyclic).
#pragma once

#include <cstdint>
#include <string>

#include "vsim/elaborate.hpp"
#include "vsim/parser.hpp"

namespace tauhls::vsim {

class Simulator {
 public:
  /// Parse + elaborate + reset all signals to 0.
  Simulator(const std::string& source, const std::string& topModule);

  /// Set a top-level input (by local name on the top module).
  void setInput(const std::string& name, std::uint64_t value);

  /// Read any signal by hierarchical name ("RE_m1", "u_ctrl.state", ...).
  std::uint64_t signal(const std::string& hierarchicalName) const;
  /// Read a top-level signal by local name.
  std::uint64_t top(const std::string& localName) const;

  /// Propagate combinational logic to a fixpoint.
  void settle();
  /// One positive clock edge (settles before sampling and after committing).
  void clockEdge();

  const Elaboration& elaboration() const { return elab_; }

 private:
  std::uint64_t eval(const FlatInstance& inst, const Expr& e) const;
  /// Bit width of an expression (needed by concat/reduction evaluation).
  int widthOfExpr(const FlatInstance& inst, const Expr& e) const;
  void execStmts(const FlatInstance& inst,
                 const std::vector<StmtPtr>& stmts, bool sequential,
                 std::vector<std::pair<SignalId, std::uint64_t>>* nba);
  void write(const FlatInstance& inst, const std::string& name,
             std::uint64_t value);
  std::uint64_t maskOf(SignalId id) const;

  Design design_;
  Elaboration elab_;
  std::vector<std::uint64_t> values_;
};

}  // namespace tauhls::vsim
