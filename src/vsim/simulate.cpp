#include "vsim/simulate.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace tauhls::vsim {

Simulator::Simulator(const std::string& source, const std::string& topModule)
    : design_(parseDesign(source)) {
  elab_ = elaborate(design_, topModule);
  values_.assign(elab_.signalNames.size(), 0);
  settle();
}

std::uint64_t Simulator::maskOf(SignalId id) const {
  const int w = elab_.signalWidth[id];
  return w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
}

void Simulator::setInput(const std::string& name, std::uint64_t value) {
  const FlatInstance& top = elab_.instances.front();
  auto it = top.signalOf.find(name);
  TAUHLS_CHECK(it != top.signalOf.end(), "unknown top input: " + name);
  values_[it->second] = value & maskOf(it->second);
}

std::uint64_t Simulator::signal(const std::string& hierarchicalName) const {
  return values_[elab_.findSignal(hierarchicalName)];
}

std::uint64_t Simulator::top(const std::string& localName) const {
  const FlatInstance& topInst = elab_.instances.front();
  auto it = topInst.signalOf.find(localName);
  TAUHLS_CHECK(it != topInst.signalOf.end(),
               "unknown top signal: " + localName);
  return values_[it->second];
}

std::uint64_t Simulator::eval(const FlatInstance& inst, const Expr& e) const {
  switch (e.kind) {
    case ExprKind::Const:
      return e.value;
    case ExprKind::Ref: {
      auto lp = inst.module->localparams.find(e.name);
      if (lp != inst.module->localparams.end()) return lp->second;
      auto sig = inst.signalOf.find(e.name);
      TAUHLS_CHECK(sig != inst.signalOf.end(),
                   "undeclared signal '" + e.name + "' in " +
                       inst.module->name);
      return values_[sig->second];
    }
    case ExprKind::Not:
      return eval(inst, *e.args[0]) == 0 ? 1 : 0;
    case ExprKind::And: {
      // Bitwise on multi-bit values degenerates to logical on 1-bit nets,
      // which is all the emitted subset mixes.
      return eval(inst, *e.args[0]) & eval(inst, *e.args[1]);
    }
    case ExprKind::Or:
      return eval(inst, *e.args[0]) | eval(inst, *e.args[1]);
    case ExprKind::Xor:
      return eval(inst, *e.args[0]) ^ eval(inst, *e.args[1]);
    case ExprKind::Eq:
      return eval(inst, *e.args[0]) == eval(inst, *e.args[1]) ? 1 : 0;
    case ExprKind::NotEq:
      return eval(inst, *e.args[0]) != eval(inst, *e.args[1]) ? 1 : 0;
    case ExprKind::Cond:
      return eval(inst, *e.args[0]) != 0 ? eval(inst, *e.args[1])
                                         : eval(inst, *e.args[2]);
    case ExprKind::Concat: {
      std::uint64_t v = 0;
      for (const ExprPtr& arg : e.args) {
        const int w = widthOfExpr(inst, *arg);
        const std::uint64_t mask =
            w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
        v = (v << w) | (eval(inst, *arg) & mask);
      }
      return v;
    }
    case ExprKind::RedAnd: {
      const int w = widthOfExpr(inst, *e.args[0]);
      const std::uint64_t mask =
          w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
      return (eval(inst, *e.args[0]) & mask) == mask ? 1 : 0;
    }
    case ExprKind::RedOr:
      return eval(inst, *e.args[0]) != 0 ? 1 : 0;
    case ExprKind::RedXor: {
      const int w = widthOfExpr(inst, *e.args[0]);
      const std::uint64_t mask =
          w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
      return static_cast<std::uint64_t>(
          std::popcount(eval(inst, *e.args[0]) & mask) & 1);
    }
  }
  TAUHLS_FAIL("unknown expression kind");
}

int Simulator::widthOfExpr(const FlatInstance& inst, const Expr& e) const {
  switch (e.kind) {
    case ExprKind::Const:
      // Inside concats/reductions the emitted subset always sizes its
      // literals; an unsized constant is treated as self-determined 1-bit
      // elsewhere (guards, comparisons).
      return e.width > 0 ? e.width : 1;
    case ExprKind::Ref: {
      if (inst.module->localparams.contains(e.name)) return 1;
      auto sig = inst.signalOf.find(e.name);
      TAUHLS_CHECK(sig != inst.signalOf.end(),
                   "undeclared signal '" + e.name + "' in " +
                       inst.module->name);
      return elab_.signalWidth[sig->second];
    }
    case ExprKind::Cond:
      return std::max(widthOfExpr(inst, *e.args[1]),
                      widthOfExpr(inst, *e.args[2]));
    case ExprKind::Concat: {
      int total = 0;
      for (const ExprPtr& arg : e.args) total += widthOfExpr(inst, *arg);
      return total;
    }
    case ExprKind::Not:
    case ExprKind::And:
    case ExprKind::Or:
    case ExprKind::Xor:
    case ExprKind::Eq:
    case ExprKind::NotEq:
    case ExprKind::RedAnd:
    case ExprKind::RedOr:
    case ExprKind::RedXor:
      return 1;  // the subset's logic operators are 1-bit producers
  }
  TAUHLS_FAIL("unknown expression kind");
}

void Simulator::write(const FlatInstance& inst, const std::string& name,
                      std::uint64_t value) {
  auto sig = inst.signalOf.find(name);
  TAUHLS_CHECK(sig != inst.signalOf.end(),
               "assignment to undeclared signal '" + name + "'");
  values_[sig->second] = value & maskOf(sig->second);
}

void Simulator::execStmts(const FlatInstance& inst,
                          const std::vector<StmtPtr>& stmts, bool sequential,
                          std::vector<std::pair<SignalId, std::uint64_t>>* nba) {
  for (const StmtPtr& stmt : stmts) {
    switch (stmt->kind) {
      case StmtKind::Assign: {
        const std::uint64_t v = eval(inst, *stmt->rhs);
        if (sequential && stmt->nonblocking) {
          auto sig = inst.signalOf.find(stmt->lhs);
          TAUHLS_CHECK(sig != inst.signalOf.end(),
                       "nonblocking assignment to undeclared signal '" +
                           stmt->lhs + "'");
          nba->emplace_back(sig->second, v & maskOf(sig->second));
        } else {
          write(inst, stmt->lhs, v);
        }
        break;
      }
      case StmtKind::If:
        if (eval(inst, *stmt->condition) != 0) {
          execStmts(inst, stmt->thenBody, sequential, nba);
        } else {
          execStmts(inst, stmt->elseBody, sequential, nba);
        }
        break;
      case StmtKind::Case: {
        const std::uint64_t subject = eval(inst, *stmt->subject);
        const CaseArm* chosen = nullptr;
        const CaseArm* fallback = nullptr;
        for (const CaseArm& arm : stmt->arms) {
          if (!arm.label) {
            fallback = &arm;
          } else if (eval(inst, *arm.label) == subject && chosen == nullptr) {
            chosen = &arm;
          }
        }
        if (chosen == nullptr) chosen = fallback;
        if (chosen != nullptr) execStmts(inst, chosen->body, sequential, nba);
        break;
      }
    }
  }
}

void Simulator::settle() {
  for (int iter = 0;; ++iter) {
    TAUHLS_CHECK(iter < 200,
                 "combinational logic did not settle (possible loop)");
    const std::vector<std::uint64_t> before = values_;
    for (const FlatInstance& inst : elab_.instances) {
      for (const NetDecl& d : inst.module->nets) {
        if (d.init) write(inst, d.name, eval(inst, *d.init));
      }
      for (const ContinuousAssign& a : inst.module->assigns) {
        write(inst, a.lhs, eval(inst, *a.rhs));
      }
      for (const GateInst& g : inst.module->gates) {
        std::uint64_t v = 0;
        if (g.kind == "not") {
          TAUHLS_CHECK(g.inputs.size() == 1, "not gate needs one input");
          auto sig = inst.signalOf.find(g.inputs[0]);
          TAUHLS_CHECK(sig != inst.signalOf.end(), "undeclared gate input");
          v = values_[sig->second] == 0 ? 1 : 0;
        } else {
          const bool isAnd = g.kind == "and";
          v = isAnd ? 1 : 0;
          for (const std::string& in : g.inputs) {
            auto sig = inst.signalOf.find(in);
            TAUHLS_CHECK(sig != inst.signalOf.end(), "undeclared gate input");
            const bool bit = values_[sig->second] != 0;
            if (isAnd) {
              v = v && bit;
            } else {
              v = v || bit;
            }
          }
        }
        write(inst, g.output, v);
      }
      for (const AlwaysBlock& blk : inst.module->always) {
        if (!blk.sequential) execStmts(inst, blk.body, false, nullptr);
      }
    }
    if (values_ == before) return;
  }
}

void Simulator::clockEdge() {
  settle();
  std::vector<std::pair<SignalId, std::uint64_t>> nba;
  for (const FlatInstance& inst : elab_.instances) {
    for (const AlwaysBlock& blk : inst.module->always) {
      if (blk.sequential) execStmts(inst, blk.body, true, &nba);
    }
  }
  for (const auto& [sig, value] : nba) values_[sig] = value;
  settle();
}

}  // namespace tauhls::vsim
