#include "vsim/simulate.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace tauhls::vsim {

Simulator::Simulator(const std::string& source, const std::string& topModule,
                     ValueMode mode)
    : design_(parseDesign(source)), mode_(mode) {
  elab_ = elaborate(design_, topModule);
  values_.assign(elab_.signalNames.size(), 0);
  if (mode_ == ValueMode::Ternary) {
    xmask_.assign(elab_.signalNames.size(), 0);
  }
  settle();
}

std::uint64_t Simulator::maskOf(SignalId id) const {
  const int w = elab_.signalWidth[id];
  return w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
}

void Simulator::setInput(const std::string& name, std::uint64_t value) {
  const FlatInstance& top = elab_.instances.front();
  auto it = top.signalOf.find(name);
  TAUHLS_CHECK(it != top.signalOf.end(), "unknown top input: " + name);
  values_[it->second] = value & maskOf(it->second);
  if (mode_ == ValueMode::Ternary) xmask_[it->second] = 0;
}

void Simulator::setInputX(const std::string& name) {
  TAUHLS_CHECK(mode_ == ValueMode::Ternary,
               "setInputX requires the ternary value mode");
  const FlatInstance& top = elab_.instances.front();
  auto it = top.signalOf.find(name);
  TAUHLS_CHECK(it != top.signalOf.end(), "unknown top input: " + name);
  values_[it->second] = 0;
  xmask_[it->second] = maskOf(it->second);
}

void Simulator::setAllX() {
  TAUHLS_CHECK(mode_ == ValueMode::Ternary,
               "setAllX requires the ternary value mode");
  for (SignalId id = 0; id < values_.size(); ++id) {
    values_[id] = 0;
    xmask_[id] = maskOf(id);
  }
}

std::uint64_t Simulator::signal(const std::string& hierarchicalName) const {
  return values_[elab_.findSignal(hierarchicalName)];
}

std::uint64_t Simulator::signalXMask(
    const std::string& hierarchicalName) const {
  if (mode_ != ValueMode::Ternary) return 0;
  return xmask_[elab_.findSignal(hierarchicalName)];
}

std::uint64_t Simulator::top(const std::string& localName) const {
  const FlatInstance& topInst = elab_.instances.front();
  auto it = topInst.signalOf.find(localName);
  TAUHLS_CHECK(it != topInst.signalOf.end(),
               "unknown top signal: " + localName);
  return values_[it->second];
}

std::uint64_t Simulator::topXMask(const std::string& localName) const {
  if (mode_ != ValueMode::Ternary) return 0;
  const FlatInstance& topInst = elab_.instances.front();
  auto it = topInst.signalOf.find(localName);
  TAUHLS_CHECK(it != topInst.signalOf.end(),
               "unknown top signal: " + localName);
  return xmask_[it->second];
}

// --- two-valued engine (unchanged) -----------------------------------------

std::uint64_t Simulator::eval(const FlatInstance& inst, const Expr& e) const {
  switch (e.kind) {
    case ExprKind::Const:
      return e.value;
    case ExprKind::Ref: {
      auto lp = inst.module->localparams.find(e.name);
      if (lp != inst.module->localparams.end()) return lp->second;
      auto sig = inst.signalOf.find(e.name);
      TAUHLS_CHECK(sig != inst.signalOf.end(),
                   "undeclared signal '" + e.name + "' in " +
                       inst.module->name);
      return values_[sig->second];
    }
    case ExprKind::Not:
      return eval(inst, *e.args[0]) == 0 ? 1 : 0;
    case ExprKind::And: {
      // Bitwise on multi-bit values degenerates to logical on 1-bit nets,
      // which is all the emitted subset mixes.
      return eval(inst, *e.args[0]) & eval(inst, *e.args[1]);
    }
    case ExprKind::Or:
      return eval(inst, *e.args[0]) | eval(inst, *e.args[1]);
    case ExprKind::Xor:
      return eval(inst, *e.args[0]) ^ eval(inst, *e.args[1]);
    case ExprKind::Eq:
      return eval(inst, *e.args[0]) == eval(inst, *e.args[1]) ? 1 : 0;
    case ExprKind::NotEq:
      return eval(inst, *e.args[0]) != eval(inst, *e.args[1]) ? 1 : 0;
    case ExprKind::Cond:
      return eval(inst, *e.args[0]) != 0 ? eval(inst, *e.args[1])
                                         : eval(inst, *e.args[2]);
    case ExprKind::Concat: {
      std::uint64_t v = 0;
      for (const ExprPtr& arg : e.args) {
        const int w = widthOfExpr(inst, *arg);
        const std::uint64_t mask =
            w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
        v = (v << w) | (eval(inst, *arg) & mask);
      }
      return v;
    }
    case ExprKind::RedAnd: {
      const int w = widthOfExpr(inst, *e.args[0]);
      const std::uint64_t mask =
          w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
      return (eval(inst, *e.args[0]) & mask) == mask ? 1 : 0;
    }
    case ExprKind::RedOr:
      return eval(inst, *e.args[0]) != 0 ? 1 : 0;
    case ExprKind::RedXor: {
      const int w = widthOfExpr(inst, *e.args[0]);
      const std::uint64_t mask =
          w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
      return static_cast<std::uint64_t>(
          std::popcount(eval(inst, *e.args[0]) & mask) & 1);
    }
  }
  TAUHLS_FAIL("unknown expression kind");
}

int Simulator::widthOfExpr(const FlatInstance& inst, const Expr& e) const {
  switch (e.kind) {
    case ExprKind::Const:
      // Inside concats/reductions the emitted subset always sizes its
      // literals; an unsized constant is treated as self-determined 1-bit
      // elsewhere (guards, comparisons).
      return e.width > 0 ? e.width : 1;
    case ExprKind::Ref: {
      if (inst.module->localparams.contains(e.name)) return 1;
      auto sig = inst.signalOf.find(e.name);
      TAUHLS_CHECK(sig != inst.signalOf.end(),
                   "undeclared signal '" + e.name + "' in " +
                       inst.module->name);
      return elab_.signalWidth[sig->second];
    }
    case ExprKind::Cond:
      return std::max(widthOfExpr(inst, *e.args[1]),
                      widthOfExpr(inst, *e.args[2]));
    case ExprKind::Concat: {
      int total = 0;
      for (const ExprPtr& arg : e.args) total += widthOfExpr(inst, *arg);
      return total;
    }
    case ExprKind::Not:
    case ExprKind::And:
    case ExprKind::Or:
    case ExprKind::Xor:
    case ExprKind::Eq:
    case ExprKind::NotEq:
    case ExprKind::RedAnd:
    case ExprKind::RedOr:
    case ExprKind::RedXor:
      return 1;  // the subset's logic operators are 1-bit producers
  }
  TAUHLS_FAIL("unknown expression kind");
}

void Simulator::write(const FlatInstance& inst, const std::string& name,
                      std::uint64_t value) {
  auto sig = inst.signalOf.find(name);
  TAUHLS_CHECK(sig != inst.signalOf.end(),
               "assignment to undeclared signal '" + name + "'");
  values_[sig->second] = value & maskOf(sig->second);
}

void Simulator::execStmts(const FlatInstance& inst,
                          const std::vector<StmtPtr>& stmts, bool sequential,
                          std::vector<std::pair<SignalId, std::uint64_t>>* nba) {
  for (const StmtPtr& stmt : stmts) {
    switch (stmt->kind) {
      case StmtKind::Assign: {
        const std::uint64_t v = eval(inst, *stmt->rhs);
        if (sequential && stmt->nonblocking) {
          auto sig = inst.signalOf.find(stmt->lhs);
          TAUHLS_CHECK(sig != inst.signalOf.end(),
                       "nonblocking assignment to undeclared signal '" +
                           stmt->lhs + "'");
          nba->emplace_back(sig->second, v & maskOf(sig->second));
        } else {
          write(inst, stmt->lhs, v);
        }
        break;
      }
      case StmtKind::If:
        if (eval(inst, *stmt->condition) != 0) {
          execStmts(inst, stmt->thenBody, sequential, nba);
        } else {
          execStmts(inst, stmt->elseBody, sequential, nba);
        }
        break;
      case StmtKind::Case: {
        const std::uint64_t subject = eval(inst, *stmt->subject);
        const CaseArm* chosen = nullptr;
        const CaseArm* fallback = nullptr;
        for (const CaseArm& arm : stmt->arms) {
          if (!arm.label) {
            fallback = &arm;
          } else if (eval(inst, *arm.label) == subject && chosen == nullptr) {
            chosen = &arm;
          }
        }
        if (chosen == nullptr) chosen = fallback;
        if (chosen != nullptr) execStmts(inst, chosen->body, sequential, nba);
        break;
      }
    }
  }
}

void Simulator::settleTwoValued() {
  for (int iter = 0;; ++iter) {
    TAUHLS_CHECK(iter < 200,
                 "combinational logic did not settle (possible loop)");
    const std::vector<std::uint64_t> before = values_;
    for (const FlatInstance& inst : elab_.instances) {
      for (const NetDecl& d : inst.module->nets) {
        if (d.init) write(inst, d.name, eval(inst, *d.init));
      }
      for (const ContinuousAssign& a : inst.module->assigns) {
        write(inst, a.lhs, eval(inst, *a.rhs));
      }
      for (const GateInst& g : inst.module->gates) {
        std::uint64_t v = 0;
        if (g.kind == "not") {
          TAUHLS_CHECK(g.inputs.size() == 1, "not gate needs one input");
          auto sig = inst.signalOf.find(g.inputs[0]);
          TAUHLS_CHECK(sig != inst.signalOf.end(), "undeclared gate input");
          v = values_[sig->second] == 0 ? 1 : 0;
        } else {
          const bool isAnd = g.kind == "and";
          v = isAnd ? 1 : 0;
          for (const std::string& in : g.inputs) {
            auto sig = inst.signalOf.find(in);
            TAUHLS_CHECK(sig != inst.signalOf.end(), "undeclared gate input");
            const bool bit = values_[sig->second] != 0;
            if (isAnd) {
              v = v && bit;
            } else {
              v = v || bit;
            }
          }
        }
        write(inst, g.output, v);
      }
      for (const AlwaysBlock& blk : inst.module->always) {
        if (!blk.sequential) execStmts(inst, blk.body, false, nullptr);
      }
    }
    if (values_ == before) return;
  }
}

// --- ternary engine ---------------------------------------------------------

int Simulator::boolT(TVal a, std::uint64_t mask) {
  if ((a.v & mask) != 0) return 1;
  if ((a.x & mask) != 0) return 0;
  return -1;
}

Simulator::TVal Simulator::mergeT(TVal a, TVal b) {
  const std::uint64_t x = a.x | b.x | (a.v ^ b.v);
  return {a.v & b.v & ~x, x};
}

Simulator::TVal Simulator::evalT(const FlatInstance& inst,
                                 const Expr& e) const {
  switch (e.kind) {
    case ExprKind::Const:
      return {e.value, 0};
    case ExprKind::Ref: {
      auto lp = inst.module->localparams.find(e.name);
      if (lp != inst.module->localparams.end()) return {lp->second, 0};
      auto sig = inst.signalOf.find(e.name);
      TAUHLS_CHECK(sig != inst.signalOf.end(),
                   "undeclared signal '" + e.name + "' in " +
                       inst.module->name);
      return {values_[sig->second], xmask_[sig->second]};
    }
    case ExprKind::Not: {
      const TVal a = evalT(inst, *e.args[0]);
      switch (boolT(a, ~std::uint64_t{0})) {
        case 1:
          return {0, 0};
        case -1:
          return {1, 0};
        default:
          return {0, 1};
      }
    }
    case ExprKind::And: {
      const TVal a = evalT(inst, *e.args[0]);
      const TVal b = evalT(inst, *e.args[1]);
      const std::uint64_t zero = (~a.v & ~a.x) | (~b.v & ~b.x);
      const std::uint64_t x = (a.x | b.x) & ~zero;
      return {a.v & b.v, x};
    }
    case ExprKind::Or: {
      const TVal a = evalT(inst, *e.args[0]);
      const TVal b = evalT(inst, *e.args[1]);
      const std::uint64_t x = (a.x | b.x) & ~a.v & ~b.v;
      return {(a.v | b.v) & ~x, x};
    }
    case ExprKind::Xor: {
      const TVal a = evalT(inst, *e.args[0]);
      const TVal b = evalT(inst, *e.args[1]);
      const std::uint64_t x = a.x | b.x;
      return {(a.v ^ b.v) & ~x, x};
    }
    case ExprKind::Eq:
    case ExprKind::NotEq: {
      const TVal a = evalT(inst, *e.args[0]);
      const TVal b = evalT(inst, *e.args[1]);
      // Full-width comparison like the two-valued engine; a known differing
      // bit decides the comparison even when other bits are X.
      int truth;
      if (((a.v ^ b.v) & ~a.x & ~b.x) != 0) {
        truth = -1;
      } else if ((a.x | b.x) != 0) {
        truth = 0;
      } else {
        truth = 1;
      }
      if (e.kind == ExprKind::NotEq) truth = -truth;
      if (truth == 0) return {0, 1};
      return {truth > 0 ? std::uint64_t{1} : 0, 0};
    }
    case ExprKind::Cond: {
      const TVal c = evalT(inst, *e.args[0]);
      switch (boolT(c, ~std::uint64_t{0})) {
        case 1:
          return evalT(inst, *e.args[1]);
        case -1:
          return evalT(inst, *e.args[2]);
        default:
          return mergeT(evalT(inst, *e.args[1]), evalT(inst, *e.args[2]));
      }
    }
    case ExprKind::Concat: {
      TVal out;
      for (const ExprPtr& arg : e.args) {
        const int w = widthOfExpr(inst, *arg);
        const std::uint64_t mask =
            w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
        const TVal part = evalT(inst, *arg);
        out.v = (out.v << w) | (part.v & mask);
        out.x = (out.x << w) | (part.x & mask);
      }
      return out;
    }
    case ExprKind::RedAnd: {
      const int w = widthOfExpr(inst, *e.args[0]);
      const std::uint64_t mask =
          w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
      const TVal a = evalT(inst, *e.args[0]);
      if ((~a.v & ~a.x & mask) != 0) return {0, 0};  // a known-0 bit decides
      if ((a.x & mask) != 0) return {0, 1};
      return {1, 0};
    }
    case ExprKind::RedOr: {
      const TVal a = evalT(inst, *e.args[0]);
      switch (boolT(a, ~std::uint64_t{0})) {
        case 1:
          return {1, 0};
        case -1:
          return {0, 0};
        default:
          return {0, 1};
      }
    }
    case ExprKind::RedXor: {
      const int w = widthOfExpr(inst, *e.args[0]);
      const std::uint64_t mask =
          w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
      const TVal a = evalT(inst, *e.args[0]);
      if ((a.x & mask) != 0) return {0, 1};
      return {static_cast<std::uint64_t>(std::popcount(a.v & mask) & 1), 0};
    }
  }
  TAUHLS_FAIL("unknown expression kind");
}

void Simulator::writeT(const FlatInstance& inst, const std::string& name,
                       TVal value) {
  auto sig = inst.signalOf.find(name);
  TAUHLS_CHECK(sig != inst.signalOf.end(),
               "assignment to undeclared signal '" + name + "'");
  const std::uint64_t mask = maskOf(sig->second);
  values_[sig->second] = value.v & mask & ~value.x;
  xmask_[sig->second] = value.x & mask;
}

Simulator::TVal Simulator::heldT(const std::map<SignalId, TVal>* nba,
                                 SignalId id) const {
  if (nba != nullptr) {
    const auto it = nba->find(id);
    if (it != nba->end()) return it->second;
  }
  return {values_[id], xmask_[id]};
}

void Simulator::execBothT(
    const std::function<void(std::map<SignalId, TVal>*)>& thenFn,
    const std::function<void(std::map<SignalId, TVal>*)>& elseFn,
    std::map<SignalId, TVal>* nba) {
  const std::vector<std::uint64_t> savedV = values_;
  const std::vector<std::uint64_t> savedX = xmask_;
  // Each side starts from the pending assignments so nested merges see
  // earlier same-block writes as the held value.
  std::map<SignalId, TVal> nbaThen, nbaElse;
  if (nba != nullptr) {
    nbaThen = *nba;
    nbaElse = *nba;
  }
  thenFn(nba != nullptr ? &nbaThen : nullptr);
  const std::vector<std::uint64_t> thenV = std::move(values_);
  const std::vector<std::uint64_t> thenX = std::move(xmask_);
  values_ = savedV;
  xmask_ = savedX;
  elseFn(nba != nullptr ? &nbaElse : nullptr);
  for (SignalId id = 0; id < values_.size(); ++id) {
    const TVal m = mergeT({thenV[id], thenX[id]}, {values_[id], xmask_[id]});
    values_[id] = m.v;
    xmask_[id] = m.x;
  }
  if (nba != nullptr) {
    // A register one branch leaves unassigned holds its value on that side.
    std::map<SignalId, TVal> merged;
    for (const auto* side : {&nbaThen, &nbaElse}) {
      for (const auto& [id, unused] : *side) {
        if (merged.contains(id)) continue;
        const auto t = nbaThen.find(id);
        const auto e = nbaElse.find(id);
        const TVal tv = t != nbaThen.end() ? t->second : heldT(nba, id);
        const TVal ev = e != nbaElse.end() ? e->second : heldT(nba, id);
        merged[id] = mergeT(tv, ev);
      }
    }
    for (const auto& [id, value] : merged) (*nba)[id] = value;
  }
}

void Simulator::execCaseChainT(const FlatInstance& inst, const Stmt& stmt,
                               std::size_t idx, TVal subject,
                               std::uint64_t subjectMask,
                               const CaseArm* fallback,
                               std::map<SignalId, TVal>* nba) {
  while (idx < stmt.arms.size() && !stmt.arms[idx].label) ++idx;
  if (idx == stmt.arms.size()) {
    if (fallback != nullptr) execStmtsT(inst, fallback->body, nba);
    return;
  }
  const CaseArm& arm = stmt.arms[idx];
  const TVal label = evalT(inst, *arm.label);
  int truth;
  if ((((subject.v ^ label.v) & ~subject.x & ~label.x) & subjectMask) != 0) {
    truth = -1;
  } else if (((subject.x | label.x) & subjectMask) != 0) {
    truth = 0;
  } else {
    truth = 1;
  }
  if (truth > 0) {
    execStmtsT(inst, arm.body, nba);
  } else if (truth < 0) {
    execCaseChainT(inst, stmt, idx + 1, subject, subjectMask, fallback, nba);
  } else {
    execBothT(
        [&](std::map<SignalId, TVal>* n) { execStmtsT(inst, arm.body, n); },
        [&](std::map<SignalId, TVal>* n) {
          execCaseChainT(inst, stmt, idx + 1, subject, subjectMask, fallback,
                         n);
        },
        nba);
  }
}

void Simulator::execStmtsT(const FlatInstance& inst,
                           const std::vector<StmtPtr>& stmts,
                           std::map<SignalId, TVal>* nba) {
  for (const StmtPtr& stmt : stmts) {
    switch (stmt->kind) {
      case StmtKind::Assign: {
        const TVal v = evalT(inst, *stmt->rhs);
        if (nba != nullptr && stmt->nonblocking) {
          auto sig = inst.signalOf.find(stmt->lhs);
          TAUHLS_CHECK(sig != inst.signalOf.end(),
                       "nonblocking assignment to undeclared signal '" +
                           stmt->lhs + "'");
          const std::uint64_t mask = maskOf(sig->second);
          (*nba)[sig->second] = {v.v & mask & ~v.x, v.x & mask};
        } else {
          writeT(inst, stmt->lhs, v);
        }
        break;
      }
      case StmtKind::If: {
        const int truth = boolT(evalT(inst, *stmt->condition), ~std::uint64_t{0});
        if (truth > 0) {
          execStmtsT(inst, stmt->thenBody, nba);
        } else if (truth < 0) {
          execStmtsT(inst, stmt->elseBody, nba);
        } else {
          execBothT(
              [&](std::map<SignalId, TVal>* n) {
                execStmtsT(inst, stmt->thenBody, n);
              },
              [&](std::map<SignalId, TVal>* n) {
                execStmtsT(inst, stmt->elseBody, n);
              },
              nba);
        }
        break;
      }
      case StmtKind::Case: {
        const TVal subject = evalT(inst, *stmt->subject);
        const int w = widthOfExpr(inst, *stmt->subject);
        const std::uint64_t mask =
            w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
        const CaseArm* fallback = nullptr;
        for (const CaseArm& arm : stmt->arms) {
          if (!arm.label) fallback = &arm;
        }
        execCaseChainT(inst, *stmt, 0, subject, mask, fallback, nba);
        break;
      }
    }
  }
}

void Simulator::settleTernary() {
  for (int iter = 0;; ++iter) {
    TAUHLS_CHECK(iter < 200,
                 "combinational logic did not settle (possible loop)");
    const std::vector<std::uint64_t> beforeV = values_;
    const std::vector<std::uint64_t> beforeX = xmask_;
    for (const FlatInstance& inst : elab_.instances) {
      for (const NetDecl& d : inst.module->nets) {
        if (d.init) writeT(inst, d.name, evalT(inst, *d.init));
      }
      for (const ContinuousAssign& a : inst.module->assigns) {
        writeT(inst, a.lhs, evalT(inst, *a.rhs));
      }
      for (const GateInst& g : inst.module->gates) {
        int truth;  // fold the gate in Kleene logic
        if (g.kind == "not") {
          TAUHLS_CHECK(g.inputs.size() == 1, "not gate needs one input");
          auto sig = inst.signalOf.find(g.inputs[0]);
          TAUHLS_CHECK(sig != inst.signalOf.end(), "undeclared gate input");
          truth = -boolT({values_[sig->second], xmask_[sig->second]},
                         ~std::uint64_t{0});
        } else {
          const bool isAnd = g.kind == "and";
          truth = isAnd ? 1 : -1;
          for (const std::string& in : g.inputs) {
            auto sig = inst.signalOf.find(in);
            TAUHLS_CHECK(sig != inst.signalOf.end(), "undeclared gate input");
            const int bit = boolT({values_[sig->second], xmask_[sig->second]},
                                  ~std::uint64_t{0});
            if (isAnd) {
              if (bit < 0) {
                truth = -1;
                break;
              }
              if (bit == 0) truth = 0;
            } else {
              if (bit > 0) {
                truth = 1;
                break;
              }
              if (bit == 0) truth = 0;
            }
          }
        }
        writeT(inst, g.output,
               truth == 0 ? TVal{0, 1}
                          : TVal{truth > 0 ? std::uint64_t{1} : 0, 0});
      }
      for (const AlwaysBlock& blk : inst.module->always) {
        if (!blk.sequential) execStmtsT(inst, blk.body, nullptr);
      }
    }
    if (values_ == beforeV && xmask_ == beforeX) return;
  }
}

void Simulator::settle() {
  if (mode_ == ValueMode::Ternary) {
    settleTernary();
  } else {
    settleTwoValued();
  }
}

void Simulator::clockEdge() {
  settle();
  if (mode_ == ValueMode::Ternary) {
    std::map<SignalId, TVal> nba;
    for (const FlatInstance& inst : elab_.instances) {
      for (const AlwaysBlock& blk : inst.module->always) {
        if (blk.sequential) execStmtsT(inst, blk.body, &nba);
      }
    }
    for (const auto& [sig, value] : nba) {
      values_[sig] = value.v;
      xmask_[sig] = value.x;
    }
  } else {
    std::vector<std::pair<SignalId, std::uint64_t>> nba;
    for (const FlatInstance& inst : elab_.instances) {
      for (const AlwaysBlock& blk : inst.module->always) {
        if (blk.sequential) execStmts(inst, blk.body, true, &nba);
      }
    }
    for (const auto& [sig, value] : nba) values_[sig] = value;
  }
  settle();
}

}  // namespace tauhls::vsim
