// AST for the synthesizable Verilog subset tauhls emits (rtl/ and netlist/):
// modules with wire/reg ports, localparams, continuous assigns, gate
// primitives (not/and/or), combinational always @* blocks with if/else and
// case, sequential always @(posedge clk) blocks with nonblocking assigns,
// and module instantiations with named port connections.
//
// The vsim package parses this subset back and cycle-simulates it, so the
// emitted RTL can be checked against the FSM interpreter without an external
// Verilog simulator.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tauhls::vsim {

// ---- expressions ---------------------------------------------------------

enum class ExprKind : std::uint8_t {
  Const,     // sized constant (value)
  Ref,       // identifier (net, reg, or localparam)
  Not,       // ! / ~ (identical on 1-bit operands; we evaluate bitwise)
  And,       // & / &&
  Or,        // | / ||
  Xor,       // ^
  Eq,        // ==
  NotEq,     // != / !==
  Cond,      // c ? t : e (args: condition, then, else)
  Concat,    // {a, b, ...} (args left-to-right, MSB first)
  RedAnd,    // &a (unary reduction)
  RedOr,     // |a
  RedXor,    // ^a
};

struct Expr {
  ExprKind kind = ExprKind::Const;
  std::uint64_t value = 0;                  // Const
  int width = 0;                            // Const: declared width (0 unsized)
  std::string name;                         // Ref
  std::vector<std::unique_ptr<Expr>> args;  // operators
};

using ExprPtr = std::unique_ptr<Expr>;

// ---- statements -----------------------------------------------------------

enum class StmtKind : std::uint8_t { Assign, If, Case };

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct CaseArm {
  ExprPtr label;  // null = default arm
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind = StmtKind::Assign;
  // Assign
  std::string lhs;
  ExprPtr rhs;
  bool nonblocking = false;
  // If
  ExprPtr condition;
  std::vector<StmtPtr> thenBody;
  std::vector<StmtPtr> elseBody;
  // Case
  ExprPtr subject;
  std::vector<CaseArm> arms;
};

// ---- module structure -----------------------------------------------------

enum class PortDir : std::uint8_t { Input, Output };

struct Port {
  PortDir dir = PortDir::Input;
  bool isReg = false;
  std::string name;
};

struct NetDecl {
  bool isReg = false;
  int width = 1;
  std::string name;
  ExprPtr init;  // wire n = <expr>; (used for netlist constants)
};

struct ContinuousAssign {
  std::string lhs;
  ExprPtr rhs;
};

/// A gate primitive instance: not/and/or (output first, then inputs).
struct GateInst {
  std::string kind;
  std::string output;
  std::vector<std::string> inputs;
};

struct AlwaysBlock {
  bool sequential = false;  ///< true: @(posedge clk); false: @*
  std::vector<StmtPtr> body;
};

struct Instance {
  std::string moduleName;
  std::string instanceName;
  std::map<std::string, std::string> connections;  ///< port -> outer signal
};

struct Module {
  std::string name;
  std::vector<Port> ports;
  std::vector<NetDecl> nets;
  std::map<std::string, std::uint64_t> localparams;
  std::vector<ContinuousAssign> assigns;
  std::vector<GateInst> gates;
  std::vector<AlwaysBlock> always;
  std::vector<Instance> instances;
};

struct Design {
  std::vector<Module> modules;

  const Module* findModule(const std::string& name) const;
};

}  // namespace tauhls::vsim
