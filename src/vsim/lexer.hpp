// Tokenizer for the emitted-Verilog subset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tauhls::vsim {

enum class TokKind : std::uint8_t {
  Identifier,
  Number,       ///< plain decimal or sized (3'd5, 1'b0); value pre-decoded
  Punct,        ///< single/multi-char punctuation, text in `text`
  End,
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  std::uint64_t value = 0;
  int width = 0;  ///< declared width of a sized literal; 0 when unsized
  int line = 0;
};

/// Tokenize; strips // comments and whitespace; throws on stray characters.
std::vector<Token> tokenize(const std::string& source);

}  // namespace tauhls::vsim
