// Recursive-descent parser for the emitted-Verilog subset (see ast.hpp).
#pragma once

#include <string>

#include "vsim/ast.hpp"

namespace tauhls::vsim {

/// Parse a source file possibly containing several modules.  Throws
/// tauhls::Error with a line number on anything outside the subset.
Design parseDesign(const std::string& source);

}  // namespace tauhls::vsim
