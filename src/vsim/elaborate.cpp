#include "vsim/elaborate.hpp"

#include "common/error.hpp"

namespace tauhls::vsim {

namespace {

class Elaborator {
 public:
  Elaborator(const Design& design, Elaboration& out)
      : design_(design), out_(out) {}

  void run(const std::string& topModule) {
    const Module* top = design_.findModule(topModule);
    TAUHLS_CHECK(top != nullptr, "unknown top module: " + topModule);
    out_.top = top;
    instantiate(top, "", {});
  }

 private:
  SignalId newSignal(const std::string& hierarchicalName, int width) {
    out_.signalNames.push_back(hierarchicalName);
    out_.signalWidth.push_back(width);
    return static_cast<SignalId>(out_.signalNames.size() - 1);
  }

  void instantiate(const Module* mod, const std::string& path,
                   const std::map<std::string, SignalId>& portBindings) {
    FlatInstance flat;
    flat.module = mod;
    flat.path = path;
    const std::string prefix = path.empty() ? "" : path + ".";

    auto declare = [&](const std::string& name, int width) {
      auto bound = portBindings.find(name);
      if (bound != portBindings.end()) {
        flat.signalOf[name] = bound->second;
        return;
      }
      if (!flat.signalOf.contains(name)) {
        flat.signalOf[name] = newSignal(prefix + name, width);
      }
    };

    for (const Port& p : mod->ports) declare(p.name, 1);
    for (const NetDecl& d : mod->nets) declare(d.name, d.width);
    // Gate outputs / assign targets may reference implicit wires; our
    // emitters always declare them, so any unknown name is an error later.

    const std::size_t myIndex = out_.instances.size();
    out_.instances.push_back(std::move(flat));

    for (const Instance& inst : mod->instances) {
      const Module* child = design_.findModule(inst.moduleName);
      TAUHLS_CHECK(child != nullptr,
                   "unknown module instantiated: " + inst.moduleName);
      std::map<std::string, SignalId> childBindings;
      for (const auto& [port, outer] : inst.connections) {
        const auto& mine = out_.instances[myIndex].signalOf;
        auto it = mine.find(outer);
        TAUHLS_CHECK(it != mine.end(), "connection to undeclared signal '" +
                                           outer + "' in " + mod->name);
        bool portExists = false;
        for (const Port& p : child->ports) portExists |= (p.name == port);
        TAUHLS_CHECK(portExists, "no port '" + port + "' on module " +
                                     inst.moduleName);
        childBindings[port] = it->second;
      }
      instantiate(child, prefix + inst.instanceName, childBindings);
    }
  }

  const Design& design_;
  Elaboration& out_;
};

}  // namespace

SignalId Elaboration::findSignal(const std::string& hierarchicalName) const {
  for (SignalId i = 0; i < signalNames.size(); ++i) {
    if (signalNames[i] == hierarchicalName) return i;
  }
  TAUHLS_FAIL("unknown signal: " + hierarchicalName);
}

Elaboration elaborate(const Design& design, const std::string& topModule) {
  Elaboration out;
  Elaborator(design, out).run(topModule);
  return out;
}

}  // namespace tauhls::vsim
