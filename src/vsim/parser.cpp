#include "vsim/parser.hpp"

#include "common/error.hpp"
#include "vsim/lexer.hpp"

namespace tauhls::vsim {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Design parse() {
    Design design;
    while (!at(TokKind::End)) {
      design.modules.push_back(parseModule());
    }
    return design;
  }

 private:
  // --- token helpers ------------------------------------------------------
  const Token& cur() const { return toks_[pos_]; }
  bool at(TokKind k) const { return cur().kind == k; }
  bool atPunct(const std::string& p) const {
    return cur().kind == TokKind::Punct && cur().text == p;
  }
  bool atIdent(const std::string& word) const {
    return cur().kind == TokKind::Identifier && cur().text == word;
  }
  Token take() { return toks_[pos_++]; }
  [[noreturn]] void fail(const std::string& msg) const {
    TAUHLS_FAIL("vsim parse error at line " + std::to_string(cur().line) +
                ": " + msg + " (got '" + cur().text + "')");
  }
  Token expectIdent() {
    if (!at(TokKind::Identifier)) fail("expected identifier");
    return take();
  }
  void expectPunct(const std::string& p) {
    if (!atPunct(p)) fail("expected '" + p + "'");
    take();
  }
  void expectKeyword(const std::string& w) {
    if (!atIdent(w)) fail("expected '" + w + "'");
    take();
  }

  /// Skip a bit-range "[msb:lsb]"; returns width (msb - lsb + 1).
  int parseRange() {
    expectPunct("[");
    if (!at(TokKind::Number)) fail("expected range msb");
    const int msb = static_cast<int>(take().value);
    expectPunct(":");
    if (!at(TokKind::Number)) fail("expected range lsb");
    const int lsb = static_cast<int>(take().value);
    expectPunct("]");
    return msb - lsb + 1;
  }

  // --- expressions --------------------------------------------------------
  ExprPtr makeOp(ExprKind kind, ExprPtr a, ExprPtr b) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->args.push_back(std::move(a));
    e->args.push_back(std::move(b));
    return e;
  }

  ExprPtr parsePrimary() {
    if (atPunct("(")) {
      take();
      ExprPtr e = parseExpr();
      expectPunct(")");
      return e;
    }
    if (atPunct("!") || atPunct("~")) {
      take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Not;
      e->args.push_back(parsePrimary());
      return e;
    }
    // Unary reductions: &a, |a, ^a.  A '&'/'|'/'^' in primary position is
    // unambiguously a reduction (binary forms are consumed at their own
    // precedence levels, after a complete primary).
    if (atPunct("&") || atPunct("|") || atPunct("^")) {
      const std::string op = take().text;
      auto e = std::make_unique<Expr>();
      e->kind = op == "&"   ? ExprKind::RedAnd
                : op == "|" ? ExprKind::RedOr
                            : ExprKind::RedXor;
      e->args.push_back(parsePrimary());
      return e;
    }
    if (atPunct("{")) {  // concatenation {a, b, ...}
      take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Concat;
      e->args.push_back(parseExpr());
      while (atPunct(",")) {
        take();
        e->args.push_back(parseExpr());
      }
      expectPunct("}");
      return e;
    }
    if (at(TokKind::Number)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Const;
      e->width = cur().width;
      e->value = take().value;
      return e;
    }
    if (at(TokKind::Identifier)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Ref;
      e->name = take().text;
      return e;
    }
    fail("expected expression");
  }

  ExprPtr parseEquality() {
    ExprPtr lhs = parsePrimary();
    while (atPunct("==") || atPunct("!=") || atPunct("!==")) {
      const bool eq = cur().text == "==";
      take();
      lhs = makeOp(eq ? ExprKind::Eq : ExprKind::NotEq, std::move(lhs),
                   parsePrimary());
    }
    return lhs;
  }

  ExprPtr parseBitAnd() {
    ExprPtr lhs = parseEquality();
    while (atPunct("&")) {
      take();
      lhs = makeOp(ExprKind::And, std::move(lhs), parseEquality());
    }
    return lhs;
  }

  ExprPtr parseBitXor() {
    ExprPtr lhs = parseBitAnd();
    while (atPunct("^")) {
      take();
      lhs = makeOp(ExprKind::Xor, std::move(lhs), parseBitAnd());
    }
    return lhs;
  }

  ExprPtr parseBitOr() {
    ExprPtr lhs = parseBitXor();
    while (atPunct("|")) {
      take();
      lhs = makeOp(ExprKind::Or, std::move(lhs), parseBitXor());
    }
    return lhs;
  }

  ExprPtr parseLogicalAnd() {
    ExprPtr lhs = parseBitOr();
    while (atPunct("&&")) {
      take();
      lhs = makeOp(ExprKind::And, std::move(lhs), parseBitOr());
    }
    return lhs;
  }

  ExprPtr parseLogicalOr() {
    ExprPtr lhs = parseLogicalAnd();
    while (atPunct("||")) {
      take();
      lhs = makeOp(ExprKind::Or, std::move(lhs), parseLogicalAnd());
    }
    return lhs;
  }

  ExprPtr parseExpr() {
    ExprPtr lhs = parseLogicalOr();
    if (atPunct("?")) {  // conditional, right-associative
      take();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Cond;
      e->args.push_back(std::move(lhs));
      e->args.push_back(parseExpr());
      expectPunct(":");
      e->args.push_back(parseExpr());
      return e;
    }
    return lhs;
  }

  // --- statements ----------------------------------------------------------
  std::vector<StmtPtr> parseStmtOrBlock() {
    std::vector<StmtPtr> out;
    if (atIdent("begin")) {
      take();
      while (!atIdent("end")) out.push_back(parseStmt());
      take();
    } else {
      out.push_back(parseStmt());
    }
    return out;
  }

  StmtPtr parseStmt() {
    if (atIdent("if")) {
      take();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::If;
      expectPunct("(");
      s->condition = parseExpr();
      expectPunct(")");
      s->thenBody = parseStmtOrBlock();
      if (atIdent("else")) {
        take();
        s->elseBody = parseStmtOrBlock();
      }
      return s;
    }
    if (atIdent("case")) {
      take();
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::Case;
      expectPunct("(");
      s->subject = parseExpr();
      expectPunct(")");
      while (!atIdent("endcase")) {
        CaseArm arm;
        if (atIdent("default")) {
          take();
        } else {
          arm.label = parseExpr();
        }
        expectPunct(":");
        arm.body = parseStmtOrBlock();
        s->arms.push_back(std::move(arm));
      }
      take();  // endcase
      return s;
    }
    // assignment
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Assign;
    s->lhs = expectIdent().text;
    if (atPunct("<=")) {
      s->nonblocking = true;
      take();
    } else {
      expectPunct("=");
    }
    s->rhs = parseExpr();
    expectPunct(";");
    return s;
  }

  // --- module items --------------------------------------------------------
  Module parseModule() {
    expectKeyword("module");
    Module m;
    m.name = expectIdent().text;
    expectPunct("(");
    if (!atPunct(")")) {
      while (true) {
        Port p;
        if (atIdent("input")) {
          take();
          p.dir = PortDir::Input;
        } else if (atIdent("output")) {
          take();
          p.dir = PortDir::Output;
        } else {
          fail("expected port direction");
        }
        if (atIdent("wire")) {
          take();
        } else if (atIdent("reg")) {
          take();
          p.isReg = true;
        }
        p.name = expectIdent().text;
        m.ports.push_back(p);
        if (atPunct(",")) {
          take();
          continue;
        }
        break;
      }
    }
    expectPunct(")");
    expectPunct(";");

    while (!atIdent("endmodule")) {
      parseModuleItem(m);
    }
    take();  // endmodule
    return m;
  }

  void parseModuleItem(Module& m) {
    if (atIdent("localparam")) {
      take();
      if (atPunct("[")) parseRange();
      const std::string name = expectIdent().text;
      expectPunct("=");
      if (!at(TokKind::Number)) fail("expected localparam value");
      m.localparams[name] = take().value;
      expectPunct(";");
      return;
    }
    if (atIdent("reg") || atIdent("wire")) {
      const bool isReg = cur().text == "reg";
      take();
      int width = 1;
      if (atPunct("[")) width = parseRange();
      while (true) {
        NetDecl d;
        d.isReg = isReg;
        d.width = width;
        d.name = expectIdent().text;
        if (atPunct("=")) {  // wire n = <expr>;
          take();
          d.init = parseExpr();
        }
        m.nets.push_back(std::move(d));
        if (atPunct(",")) {
          take();
          continue;
        }
        break;
      }
      expectPunct(";");
      return;
    }
    if (atIdent("assign")) {
      take();
      ContinuousAssign a;
      a.lhs = expectIdent().text;
      expectPunct("=");
      a.rhs = parseExpr();
      expectPunct(";");
      m.assigns.push_back(std::move(a));
      return;
    }
    if (atIdent("not") || atIdent("and") || atIdent("or")) {
      GateInst g;
      g.kind = take().text;
      expectIdent();  // instance label
      expectPunct("(");
      g.output = expectIdent().text;
      while (atPunct(",")) {
        take();
        g.inputs.push_back(expectIdent().text);
      }
      expectPunct(")");
      expectPunct(";");
      m.gates.push_back(std::move(g));
      return;
    }
    if (atIdent("always")) {
      take();
      AlwaysBlock blk;
      if (atPunct("@*")) {
        take();
        blk.sequential = false;
      } else {
        expectPunct("@");
        expectPunct("(");
        expectKeyword("posedge");
        expectIdent();  // clk
        expectPunct(")");
        blk.sequential = true;
      }
      blk.body = parseStmtOrBlock();
      m.always.push_back(std::move(blk));
      return;
    }
    if (at(TokKind::Identifier)) {
      // module instantiation: Type inst ( .port(sig), ... );
      Instance inst;
      inst.moduleName = take().text;
      inst.instanceName = expectIdent().text;
      expectPunct("(");
      while (atPunct(".")) {
        take();
        const std::string port = expectIdent().text;
        expectPunct("(");
        inst.connections[port] = expectIdent().text;
        expectPunct(")");
        if (atPunct(",")) take();
      }
      expectPunct(")");
      expectPunct(";");
      m.instances.push_back(std::move(inst));
      return;
    }
    fail("unexpected module item");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

const Module* Design::findModule(const std::string& name) const {
  for (const Module& m : modules) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Design parseDesign(const std::string& source) {
  Parser parser(tokenize(source));
  return parser.parse();
}

}  // namespace tauhls::vsim
