// Array-multiplier delay model.
//
// In a carry-save array multiplier the critical path grows with the number of
// significant partial-product rows and the final carry ripple, i.e. with the
// operand magnitudes: delay ~ msb(a) + msb(b) + 2 cell delays.  Telescopic
// multipliers classify operands by magnitude (leading-zero detection), which
// is exactly the conservative completion generator implemented in
// completion.hpp (paper §2.1, ref [1]).
#pragma once

#include <cstdint>

namespace tauhls::bitlevel {

struct MultiplierResult {
  std::uint64_t product = 0;  ///< (a * b) mod 2^(2*width), width <= 32
  int settlingDelay = 0;      ///< msb(a) + msb(b) + 2, in cell delays
};

/// Position of the most significant set bit (0-based); -1 for zero.
int msbIndex(std::uint64_t v);

/// Multiply two `width`-bit operands (1..32).
MultiplierResult arrayMultiply(std::uint64_t a, std::uint64_t b, int width);

}  // namespace tauhls::bitlevel
