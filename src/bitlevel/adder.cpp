#include "bitlevel/adder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tauhls::bitlevel {

namespace {
void checkOperands(std::uint64_t a, std::uint64_t b, int width) {
  TAUHLS_CHECK(width >= 1 && width <= 64, "adder width must be 1..64");
  if (width < 64) {
    const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
    TAUHLS_CHECK((a & ~mask) == 0 && (b & ~mask) == 0,
                 "operands exceed the adder width");
  }
}
}  // namespace

int longestPropagateRun(std::uint64_t a, std::uint64_t b, int width) {
  checkOperands(a, b, width);
  const std::uint64_t p = a ^ b;
  int best = 0;
  int run = 0;
  for (int i = 0; i < width; ++i) {
    if ((p >> i) & 1) {
      ++run;
      best = std::max(best, run);
    } else {
      run = 0;
    }
  }
  return best;
}

AdderResult rippleAdd(std::uint64_t a, std::uint64_t b, int width) {
  checkOperands(a, b, width);
  AdderResult r;
  r.sum = width == 64 ? a + b : (a + b) & ((std::uint64_t{1} << width) - 1);
  r.settlingDelay = longestPropagateRun(a, b, width) + 1;
  return r;
}

}  // namespace tauhls::bitlevel
