#include "bitlevel/multiplier.hpp"

#include <bit>

#include "common/error.hpp"

namespace tauhls::bitlevel {

int msbIndex(std::uint64_t v) {
  return v == 0 ? -1 : 63 - std::countl_zero(v);
}

MultiplierResult arrayMultiply(std::uint64_t a, std::uint64_t b, int width) {
  TAUHLS_CHECK(width >= 1 && width <= 32, "multiplier width must be 1..32");
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  TAUHLS_CHECK((a & ~mask) == 0 && (b & ~mask) == 0,
               "operands exceed the multiplier width");
  MultiplierResult r;
  r.product = a * b;
  // Zero operands settle immediately through the kill path: one cell delay.
  if (a == 0 || b == 0) {
    r.settlingDelay = 1;
  } else {
    r.settlingDelay = msbIndex(a) + msbIndex(b) + 2;
  }
  return r;
}

}  // namespace tauhls::bitlevel
