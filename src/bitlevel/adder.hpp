// Bit-level ripple-carry adder with exact data-dependent delay.
//
// The stabilization time of carry bit j is 1 when position j kills or
// generates, and time(carry_{j-1}) + 1 when it propagates (p_j = a_j ^ b_j).
// The adder's settling delay is therefore (longest run of consecutive
// propagate positions) + 1, measured in per-bit carry delays -- the quantity
// a telescopic adder's completion generator classifies (paper §2.1, ref [1]).
#pragma once

#include <cstdint>

namespace tauhls::bitlevel {

struct AdderResult {
  std::uint64_t sum = 0;      ///< (a + b) mod 2^width
  int settlingDelay = 0;      ///< longest propagate run + 1, in bit delays
};

/// Add two `width`-bit operands (1..64); operands must fit in `width` bits.
AdderResult rippleAdd(std::uint64_t a, std::uint64_t b, int width);

/// Longest run of consecutive propagate positions (a_i ^ b_i == 1).
int longestPropagateRun(std::uint64_t a, std::uint64_t b, int width);

}  // namespace tauhls::bitlevel
