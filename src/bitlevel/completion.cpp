#include "bitlevel/completion.hpp"

#include "common/error.hpp"

namespace tauhls::bitlevel {

AdderCompletionGenerator::AdderCompletionGenerator(int width, int maxRun)
    : width_(width), maxRun_(maxRun) {
  TAUHLS_CHECK(width >= 1 && width <= 64, "adder width must be 1..64");
  TAUHLS_CHECK(maxRun >= 1 && maxRun <= width,
               "maxRun must lie in [1, width]");
}

bool AdderCompletionGenerator::predictShort(std::uint64_t a,
                                            std::uint64_t b) const {
  return longestPropagateRun(a, b, width_) < maxRun_;
}

MultiplierCompletionGenerator::MultiplierCompletionGenerator(int width,
                                                             int magnitudeBudget)
    : width_(width), magnitudeBudget_(magnitudeBudget) {
  TAUHLS_CHECK(width >= 1 && width <= 32, "multiplier width must be 1..32");
  TAUHLS_CHECK(magnitudeBudget >= 0 && magnitudeBudget <= 2 * (width - 1),
               "magnitude budget out of range");
}

bool MultiplierCompletionGenerator::predictShort(std::uint64_t a,
                                                 std::uint64_t b) const {
  if (a == 0 || b == 0) return true;
  return msbIndex(a) + msbIndex(b) <= magnitudeBudget_;
}

}  // namespace tauhls::bitlevel
