#include "bitlevel/measure.hpp"

#include <algorithm>
#include <random>

#include "common/error.hpp"

namespace tauhls::bitlevel {

namespace {

std::uint64_t mask(int width) {
  return width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Draw one operand pair from the distribution.
std::pair<std::uint64_t, std::uint64_t> drawPair(OperandDistribution dist,
                                                 int width,
                                                 std::mt19937_64& rng) {
  const std::uint64_t m = mask(width);
  auto uniform = [&] { return rng() & m; };
  switch (dist) {
    case OperandDistribution::Uniform:
      return {uniform(), uniform()};
    case OperandDistribution::LowMagnitude: {
      // Log-uniform magnitude: bit-length uniform over [1, width], then
      // uniform within it -- every decade equally likely, so small values
      // are far more common than under Uniform (DSP-like data).
      auto lowMag = [&] {
        const int len =
            std::uniform_int_distribution<int>(1, width)(rng);
        return rng() & mask(len);
      };
      return {lowMag(), lowMag()};
    }
    case OperandDistribution::SmallDelta: {
      const std::uint64_t a = uniform();
      std::geometric_distribution<int> g(0.3);
      const std::uint64_t delta = rng() & mask(std::min(width, 1 + g(rng)));
      return {a, (a + delta) & m};
    }
  }
  TAUHLS_FAIL("unknown operand distribution");
}

template <typename GenT, typename EvalT>
PMeasurement measure(const GenT& gen, OperandDistribution dist, long trials,
                     std::uint64_t seed, int width, EvalT evalDelay) {
  TAUHLS_CHECK(trials > 0, "need at least one trial");
  std::mt19937_64 rng(seed);
  PMeasurement m;
  m.trials = trials;
  long hits = 0;
  double delaySum = 0.0;
  for (long t = 0; t < trials; ++t) {
    const auto [a, b] = drawPair(dist, width, rng);
    const int delay = evalDelay(a, b);
    const bool predicted = gen.predictShort(a, b);
    delaySum += delay;
    m.worstDelay = std::max(m.worstDelay, delay);
    if (predicted) {
      ++hits;
      if (delay > gen.shortDelayBound()) ++m.falseCompletions;
    }
  }
  m.p = static_cast<double>(hits) / static_cast<double>(trials);
  m.meanDelay = delaySum / static_cast<double>(trials);
  return m;
}

}  // namespace

PMeasurement measureAdderP(const AdderCompletionGenerator& gen,
                           OperandDistribution dist, long trials,
                           std::uint64_t seed) {
  return measure(gen, dist, trials, seed, gen.width(),
                 [&gen](std::uint64_t a, std::uint64_t b) {
                   return rippleAdd(a, b, gen.width()).settlingDelay;
                 });
}

PMeasurement measureMultiplierP(const MultiplierCompletionGenerator& gen,
                                OperandDistribution dist, long trials,
                                std::uint64_t seed) {
  return measure(gen, dist, trials, seed, gen.width(),
                 [&gen](std::uint64_t a, std::uint64_t b) {
                   return arrayMultiply(a, b, gen.width()).settlingDelay;
                 });
}

tau::UnitType telescopicMultiplierFromMeasurement(
    int width, const MultiplierCompletionGenerator& gen,
    const PMeasurement& measurement, double nsPerCellDelay) {
  TAUHLS_CHECK(measurement.falseCompletions == 0,
               "completion generator violated conservativeness");
  const double sdNs = gen.shortDelayBound() * nsPerCellDelay;
  // Worst case of an n x n array multiplier: both MSBs at width-1.
  const double ldNs = (2 * (width - 1) + 2) * nsPerCellDelay;
  return tau::telescopicUnit("tau_mult" + std::to_string(width) + "b",
                             dfg::ResourceClass::Multiplier, sdNs,
                             std::max(ldNs, sdNs), measurement.p);
}

}  // namespace tauhls::bitlevel
