// Empirical measurement of the SD-hit ratio P (paper §5 treats P as a
// workload parameter; here it becomes a measured quantity of a concrete
// completion generator under a concrete operand distribution), plus the
// bridge from a measured unit to the tau::UnitType the scheduler consumes.
#pragma once

#include <cstdint>

#include "bitlevel/completion.hpp"
#include "tau/unit.hpp"

namespace tauhls::bitlevel {

enum class OperandDistribution {
  Uniform,       ///< i.i.d. uniform over the full width
  LowMagnitude,  ///< geometric magnitudes (audio/DSP-like small values)
  SmallDelta,    ///< b close to a (accumulator/filter-state updates)
};

struct PMeasurement {
  double p = 0.0;            ///< fraction of operand pairs with C = 1
  long trials = 0;
  long falseCompletions = 0;  ///< C = 1 but delay > SD bound; MUST be 0
  double meanDelay = 0.0;     ///< average settling delay (unit cell delays)
  int worstDelay = 0;         ///< max settling delay seen
};

PMeasurement measureAdderP(const AdderCompletionGenerator& gen,
                           OperandDistribution dist, long trials,
                           std::uint64_t seed = 1);

PMeasurement measureMultiplierP(const MultiplierCompletionGenerator& gen,
                                OperandDistribution dist, long trials,
                                std::uint64_t seed = 1);

/// Build a telescopic tau::UnitType whose SD/LD delays come from the
/// generator's certified bound and the unit's worst-case delay, scaled by
/// `nsPerCellDelay`, and whose P is the measured hit ratio.
tau::UnitType telescopicMultiplierFromMeasurement(
    int width, const MultiplierCompletionGenerator& gen,
    const PMeasurement& measurement, double nsPerCellDelay);

}  // namespace tauhls::bitlevel
