// Conservative completion-signal generators (the distinctive part of a TAU,
// paper Fig. 1).  A generator raises C = 1 only for operand pairs guaranteed
// to settle within the short delay SD; it may pessimistically answer 0 for
// some fast operands (that only lowers P), but must never answer 1 for a
// slow pair -- the conservativeness contract the controllers rely on, and
// the property tests enforce.
#pragma once

#include <cstdint>

#include "bitlevel/adder.hpp"
#include "bitlevel/multiplier.hpp"

namespace tauhls::bitlevel {

/// Adder generator: C = 1 iff no run of `maxRun` consecutive propagate
/// positions exists, guaranteeing settlingDelay <= maxRun.  In hardware this
/// is a window AND-OR over the propagate vector -- a few gate levels.
class AdderCompletionGenerator {
 public:
  AdderCompletionGenerator(int width, int maxRun);

  int width() const { return width_; }
  /// The SD bound (in bit delays) this generator certifies.
  int shortDelayBound() const { return maxRun_; }

  bool predictShort(std::uint64_t a, std::uint64_t b) const;

 private:
  int width_;
  int maxRun_;
};

/// Multiplier generator: C = 1 iff msb(a) + msb(b) <= magnitudeBudget
/// (leading-zero detection on both operands), guaranteeing
/// settlingDelay <= magnitudeBudget + 2.
class MultiplierCompletionGenerator {
 public:
  MultiplierCompletionGenerator(int width, int magnitudeBudget);

  int width() const { return width_; }
  /// The SD bound (in cell delays) this generator certifies.
  int shortDelayBound() const { return magnitudeBudget_ + 2; }

  bool predictShort(std::uint64_t a, std::uint64_t b) const;

 private:
  int width_;
  int magnitudeBudget_;
};

}  // namespace tauhls::bitlevel
