// Self-checking Verilog testbench generation.
//
// Given a simulated trace (sim::runDistributed records the per-cycle
// completion-input stimulus and the expected control outputs), emits a
// testbench that drives the generated top module cycle by cycle and checks
// every register-enable signal against the golden trace, printing PASS or a
// per-cycle FAIL report.  Lets users validate the emitted RTL in any Verilog
// simulator (iverilog/verilator) without tauhls present.
#pragma once

#include <string>

#include "fsm/distributed.hpp"
#include "sim/interp.hpp"

namespace tauhls::rtl {

/// Emit a testbench module `<topName>_tb` for the top emitted by
/// emitDistributedTop(dcu, topName).  The trace must come from
/// sim::runDistributed on the same control unit.
std::string emitTestbench(const fsm::DistributedControlUnit& dcu,
                          const sim::SimTrace& trace,
                          const std::string& topName);

}  // namespace tauhls::rtl
