// Synthesizable Verilog-2001 emission (the "new high-level synthesis tool"
// back-end the paper's §6 plans): one module per controller FSM, a shared
// completion-latch primitive, and a top module wiring the distributed
// control unit of Fig. 7.
//
// Controller modules are behavioural two-process machines (state register +
// combinational next-state/output block); guards become if/else-if chains,
// which is sound because every generated machine is deterministic and
// complete (validated before emission).
#pragma once

#include <string>

#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"

namespace tauhls::rtl {

/// Emit a single FSM (controller or centralized baseline) as a module named
/// `moduleName` with clk/rst plus its declared inputs and outputs.
std::string emitFsm(const fsm::Fsm& fsm, const std::string& moduleName);

/// The completion-latch primitive: set by a one-cycle pulse, held until the
/// iteration-restart strobe, output = latch OR live pulse (DESIGN.md §5.1).
std::string emitCompletionLatchModule();

/// Top module instantiating every unit controller and one completion latch
/// per inter-controller signal; ports: clk, rst, restart, the telescopic
/// completion inputs C_*, and all OF_*/RE_* control outputs.
std::string emitDistributedTop(const fsm::DistributedControlUnit& dcu,
                               const std::string& moduleName);

/// Full self-contained package: latch primitive + all controllers + top.
std::string emitPackage(const fsm::DistributedControlUnit& dcu,
                        const std::string& topName);

}  // namespace tauhls::rtl
