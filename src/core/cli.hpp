// Command-line front-end logic for the `tauhlsc` tool (testable separately
// from the thin main in tools/tauhlsc.cpp).
//
//   tauhlsc design.dfg --alloc mult=2,add=1,sub=1 --p 0.9,0.7,0.5
//           --table1 --table2 --verilog out.v --kiss out --dot out.dot
//   tauhlsc flow design.dfg --trace-json trace.json   (flow = the default)
//   tauhlsc lint design.dfg --alloc mult=2,add=1
//   tauhlsc lint --benchmarks --lint-json diags.json
//   tauhlsc flow design.dfg --store .tauhls-store      (persistent cache)
//   tauhlsc cache stat --store .tauhls-store --json stat.json
//   tauhlsc cache gc --store .tauhls-store --max-bytes 67108864
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "dfg/region.hpp"
#include "sched/scheduled_dfg.hpp"

namespace tauhls::core {

struct CliOptions {
  bool lint = false;          ///< `tauhlsc lint ...` subcommand
  bool lintBenchmarks = false;///< lint every built-in paper benchmark
  bool lintEquiv = false;     ///< also run SAT equivalence checking (EQV*)
  bool lintTiming = false;    ///< also run static timing analysis (TIM*)
  bool lintXprop = false;     ///< also run X-propagation + don't-care
                              ///< soundness (XPR*/DCS* rules)
  /// `lint --only RULE[,RULE...]`: keep diagnostics of these rule codes
  /// only; everything else is reported as skipped in the JSON.  Empty = all.
  std::string lintOnly;
  std::string lintJsonPath;   ///< empty = text only; else JSON diagnostics
  /// Controller model-check engine: explicit | symbolic | auto (--model-check).
  ModelCheckMode modelCheck = ModelCheckMode::Explicit;
  /// Explicit-engine state bound (--max-states); 0 = subcommand default
  /// (200000 for lint's one-shot audit, the FlowConfig default for flow).
  std::size_t maxStates = 0;
  bool cacheStat = false;     ///< `tauhlsc cache stat` subcommand
  bool cacheGc = false;       ///< `tauhlsc cache gc` subcommand
  std::string storeDir;       ///< empty = no persistent artifact store
  std::uint64_t storeMaxBytes = 0;  ///< 0 = unbounded / gc target
  std::string storeJsonPath;  ///< `cache stat|gc --json FILE` report
  std::string inputPath;
  /// Branch choices for hierarchical designs (--branches "PATH=then,...");
  /// conditionals without an entry take the then-branch.
  std::string branchesSpec;
  sched::Allocation allocation;
  std::vector<double> ps = {0.9, 0.7, 0.5};
  sched::BindingStrategy strategy = sched::BindingStrategy::LeftEdge;
  synth::EncodingStyle encoding = synth::EncodingStyle::Binary;
  bool signalOpt = true;
  bool centFsm = false;
  bool table1 = false;
  bool table2 = true;
  std::string verilogPath;    ///< empty = don't emit
  std::string testbenchPath;  ///< empty = don't emit (self-checking TB)
  std::string jsonPath;       ///< empty = don't emit (full JSON report)
  std::string kissPrefix;     ///< empty = don't emit; else PREFIX_<ctrl>.kiss2
  std::string dotPath;        ///< empty = don't emit
  std::string traceJsonPath;  ///< empty = don't emit (chrome://tracing JSON)
  int threads = 0;            ///< 0 = TAUHLS_THREADS / hardware default
  bool showHelp = false;
};

/// Usage text.
std::string cliHelp();

/// Parse an allocation spec "mult=2,add=1,sub=1,div=1,logic=1"; throws
/// tauhls::Error on malformed input.
sched::Allocation parseAllocationSpec(const std::string& spec);

/// Parse a branch spec "s2=then,s3_l_t0=else" into BranchChoices (keys are
/// conditional region paths); throws tauhls::Error on malformed input.
dfg::BranchChoices parseBranchesSpec(const std::string& spec);

/// Parse argv (without argv[0]); returns nullopt and fills `error` on bad
/// usage.  `--help` yields options with showHelp set.
std::optional<CliOptions> parseCli(const std::vector<std::string>& args,
                                   std::string& error);

/// Execute: read the DFG, run the flow, print the requested reports to
/// `out`, write any requested files.  Returns a process exit code.
int runCli(const CliOptions& options, std::ostream& out, std::ostream& err);

}  // namespace tauhls::core
