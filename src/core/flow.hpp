// The top-level synthesis flow -- the library's primary public entry point.
//
//   dfg::Dfg graph = dfg::diffeq();
//   core::FlowConfig cfg;
//   cfg.allocation = {{dfg::ResourceClass::Multiplier, 2},
//                     {dfg::ResourceClass::Adder, 1},
//                     {dfg::ResourceClass::Subtractor, 1}};
//   core::FlowResult r = core::runFlow(graph, cfg);
//   std::cout << core::formatTable2Row("Diff.", r);   // paper-style report
//   std::string v = core::emitVerilog(r);             // synthesizable RTL
//
// The flow schedules and binds the DFG, derives the distributed controllers
// (Algorithm 1), builds the centralized baselines, synthesizes everything to
// the area model, and measures latency statistics.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/product.hpp"
#include "fsm/signal_opt.hpp"
#include "sched/scheduled_dfg.hpp"
#include "sim/stats.hpp"
#include "synth/area.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::core {

/// Which engine the verify stage uses for the controller model check
/// (MDL001-MDL008).
enum class ModelCheckMode : int {
  /// Bounded explicit-state product exploration; degrades to an MDL007
  /// warning past verifyMaxStates configurations.
  Explicit = 0,
  /// BMC + k-induction over an AIG transition relation (complete verdicts,
  /// no state bound; see verify/symbolic_check.hpp).
  Symbolic = 1,
  /// Explicit first; when it degrades to MDL007, rerun symbolically and
  /// replace the MDL007 warning with the symbolic verdicts.
  Auto = 2,
};

struct FlowConfig {
  sched::Allocation allocation;                     ///< units per class
  tau::ResourceLibrary library = tau::paperLibrary();
  sched::BindingStrategy strategy = sched::BindingStrategy::LeftEdge;
  bool optimizeSignals = true;                      ///< Fig. 7 signal pruning
  std::vector<double> ps = {0.9, 0.7, 0.5};         ///< Table 2 P sweep
  bool buildCentFsm = false;                        ///< explicit product (costly)
  std::size_t centFsmMaxStates = 200000;
  synth::EncodingStyle encoding = synth::EncodingStyle::Binary;
  bool synthesizeArea = true;                       ///< run the area model
  int mcSamples = 20000;                            ///< MC fallback (>24 TAU ops)
  /// Adaptive Monte-Carlo crossover of the latency pass (sim/stats.hpp):
  /// past the exact-enumeration cap, sampling doubles from mcSamples until
  /// the 95% CI half-width (cycles) reaches mcTargetHalfWidth or
  /// mcMaxSamples is spent.  Graphs under the cap are unaffected.
  int mcMaxSamples = 1 << 20;
  double mcTargetHalfWidth = 0.05;
  /// Run the static design-rule checker + controller model check over every
  /// artifact and throw on any error-severity diagnostic (src/verify/).
  bool verify = true;
  /// Product-configuration bound for the model check; past it the check
  /// degrades to an MDL007 warning instead of blocking the flow.
  std::size_t verifyMaxStates = 50000;
  /// Controller model-check engine (see ModelCheckMode).
  ModelCheckMode modelCheck = ModelCheckMode::Explicit;
  /// BMC depth / induction-k budget of the symbolic engine; open properties
  /// degrade to UNKNOWN verdicts rather than blocking the flow.
  int symbolicMaxDepth = 30;
  /// SAT conflict budget per symbolic query; exceeding it degrades the
  /// property to an UNKNOWN verdict, never a false claim.
  std::uint64_t symbolicMaxConflicts = 200000;
  /// STA margin (register setup + completion-signal arrival) subtracted from
  /// CC_TAU by the demand-only `timing` pass (TIM rules).
  double timingMarginNs = 2.0;
  /// SAT conflict budget per miter for the demand-only `equiv` pass; an
  /// exceeded budget degrades to an EQV005 warning, never a false claim.
  std::uint64_t equivMaxConflicts = 200000;
  /// Reset-depth search budget of the demand-only `xcheck` pass (XPR rules):
  /// the largest reset window tried and the post-release watch length.
  int xpropCycles = 16;
  /// 64-lane ternary words per X-propagation run (concrete power-on
  /// instances = words*64 - 1; word 0 lane 0 is the all-X proof lane).
  int xpropWords = 4;
  /// BMC depth / induction-k budget of the don't-care-soundness proof
  /// (DCS002); open proofs degrade to UNKNOWN verdicts.
  int dcsMaxDepth = 16;
  /// SAT conflict budget per don't-care-soundness query.
  std::uint64_t dcsMaxConflicts = 100000;
};

struct FlowResult {
  sched::ScheduledDfg scheduled;
  fsm::DistributedControlUnit distributed;          ///< post signal-opt
  fsm::SignalOptStats signalStats;
  fsm::Fsm centSync{"unset"};
  std::optional<fsm::Fsm> centFsm;                  ///< when buildCentFsm
  sim::LatencyComparison latency;
  std::optional<synth::DistributedAreaReport> distArea;
  std::optional<synth::AreaRow> centSyncArea;
  std::optional<synth::AreaRow> centFsmArea;
  verify::Report diagnostics;                       ///< when config.verify
};

/// Run the complete flow.  Throws tauhls::Error on any invalid input.
FlowResult runFlow(const dfg::Dfg& graph, const FlowConfig& config);

/// Emit the full Verilog package (latch primitive, controllers, top module)
/// for the flow's distributed control unit.
std::string emitVerilog(const FlowResult& result);

}  // namespace tauhls::core
