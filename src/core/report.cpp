#include "core/report.hpp"

#include <iomanip>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace tauhls::core {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::addRow(std::vector<std::string> row) {
  TAUHLS_CHECK(row.size() == rows_[0].size(), "table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::toString() const {
  std::vector<std::size_t> width(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(width[c]))
         << rows_[r][c];
    }
    os << "\n";
    if (r == 0) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        os << (c == 0 ? "" : "  ") << std::string(width[c], '-');
      }
      os << "\n";
    }
  }
  return os.str();
}

namespace {

std::string fixed1(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << v;
  return os.str();
}

std::string areaCells(const synth::AreaRow& row) {
  std::ostringstream os;
  os << row.combArea << " / " << row.seqArea;
  return os.str();
}

}  // namespace

std::string formatLatencyCells(const sim::LatencyRow& row) {
  std::ostringstream os;
  os << "[" << fixed1(row.bestNs) << "][";
  for (std::size_t i = 0; i < row.averageNs.size(); ++i) {
    os << (i == 0 ? "" : ", ") << fixed1(row.averageNs[i]);
  }
  os << "][" << fixed1(row.worstNs) << "]";
  return os.str();
}

std::string formatAllocation(const sched::ScheduledDfg& s) {
  std::map<dfg::ResourceClass, int> counts;
  for (const sched::UnitInstance& u : s.binding.units()) ++counts[u.cls];
  std::ostringstream os;
  bool first = true;
  for (const auto& [cls, count] : counts) {
    const char* sym = cls == dfg::ResourceClass::Multiplier  ? "*"
                      : cls == dfg::ResourceClass::Adder      ? "+"
                      : cls == dfg::ResourceClass::Subtractor ? "-"
                                                               : dfg::resourceClassName(cls);
    os << (first ? "" : ", ") << sym << ":" << count;
    first = false;
  }
  return os.str();
}

std::string formatTable2Row(const std::string& name, const FlowResult& r) {
  std::ostringstream os;
  os << name << "  (" << formatAllocation(r.scheduled) << ")\n";
  os << "  LT_TAU  " << formatLatencyCells(r.latency.tau) << " ns\n";
  os << "  LT_DIST " << formatLatencyCells(r.latency.dist) << " ns\n";
  os << "  Enhancement [";
  for (std::size_t i = 0; i < r.latency.enhancementPercent.size(); ++i) {
    os << (i == 0 ? "" : ", ") << fixed1(r.latency.enhancementPercent[i]) << "%";
  }
  os << "]\n";
  return os.str();
}

std::string formatComposedTable2Row(const std::string& name,
                                    const HierFlowResult& r) {
  std::ostringstream os;
  os << name << "  (" << r.schedule.leaves.size() << " regions, "
     << r.activations.size() << " activations, "
     << r.control.sequencer.numStates() << " sequencer states, "
     << r.totalTauOps << " TAU ops on trace)\n";
  os << "  LT_TAU  " << formatLatencyCells(r.latency.tau) << " ns\n";
  os << "  LT_DIST " << formatLatencyCells(r.latency.dist) << " ns\n";
  os << "  Enhancement [";
  for (std::size_t i = 0; i < r.latency.enhancementPercent.size(); ++i) {
    os << (i == 0 ? "" : ", ") << fixed1(r.latency.enhancementPercent[i]) << "%";
  }
  os << "]\n";
  return os.str();
}

std::string formatTable1(const FlowResult& r) {
  TAUHLS_CHECK(r.distArea.has_value() && r.centSyncArea.has_value(),
               "run the flow with synthesizeArea=true for Table 1");
  TextTable t({"FSM", "I/O", "States", "FFs", "Area(Com./Seq.)"});
  auto add = [&t](const synth::AreaRow& row) {
    t.addRow({row.name, std::to_string(row.inputs) + "/" + std::to_string(row.outputs),
              std::to_string(row.states), std::to_string(row.flipFlops),
              areaCells(row)});
  };
  if (r.centFsmArea) add(*r.centFsmArea);
  add(*r.centSyncArea);
  add(r.distArea->total);
  for (const synth::AreaRow& row : r.distArea->perController) add(row);
  std::ostringstream os;
  os << t.toString();
  os << "DIST-FSM aggregates the per-unit rows plus "
     << r.distArea->completionLatches << " completion latches.\n";
  return os.str();
}

}  // namespace tauhls::core
