// Paper-style plain-text report formatting (Tables 1 and 2).
#pragma once

#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/hier_flow.hpp"

namespace tauhls::core {

/// Minimal fixed-width text table used by every bench binary.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void addRow(std::vector<std::string> row);
  std::string toString() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Format "[best][avg@P...][worst]" the way Table 2 prints latencies.
std::string formatLatencyCells(const sim::LatencyRow& row);

/// One full Table 2 row: benchmark name, resources, LT_TAU, LT_DIST,
/// enhancement percentages.
std::string formatTable2Row(const std::string& name, const FlowResult& r);

/// The composed Table 2 row of a hierarchical flow: the same latency cells
/// over the program's activation trace, plus the region summary (leaves,
/// activations, sequencer states).
std::string formatComposedTable2Row(const std::string& name,
                                    const HierFlowResult& r);

/// Table 1 (area analysis) for one flow: CENT-FSM (when built),
/// CENT-SYNC-FSM, DIST-FSM and the per-unit D-FSM rows.
std::string formatTable1(const FlowResult& r);

/// Human-readable resource summary, e.g. "*:2, +:1, -:1".
std::string formatAllocation(const sched::ScheduledDfg& s);

}  // namespace tauhls::core
