#include "core/flow.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "rtl/verilog.hpp"
#include "verify/verify.hpp"

namespace tauhls::core {

FlowResult runFlow(const dfg::Dfg& graph, const FlowConfig& config) {
  FlowResult r;
  r.scheduled =
      sched::scheduleAndBind(graph, config.allocation, config.library,
                             config.strategy);

  // The three derivations below only read the schedule and are independent
  // of each other, so a sweep's worth of flow invocations can overlap them.
  // Each branch is deterministic on its own; fanning out cannot change any
  // result.
  common::parallelFor(3, [&](std::size_t task) {
    switch (task) {
      case 0: {
        fsm::DistributedControlUnit dcu = fsm::buildDistributed(r.scheduled);
        if (config.optimizeSignals) {
          r.distributed = fsm::optimizeSignals(dcu, &r.signalStats);
        } else {
          r.distributed = std::move(dcu);
        }
        break;
      }
      case 1:
        r.centSync = fsm::buildCentSync(r.scheduled);
        break;
      case 2:
        r.latency =
            sim::compareLatencies(r.scheduled, config.ps, config.mcSamples);
        break;
    }
  });

  if (config.verify) {
    verify::VerifyOptions vo;
    vo.requestedAllocation = &config.allocation;
    vo.centSync = &r.centSync;
    vo.modelCheckMaxStates = config.verifyMaxStates;
    r.diagnostics = verify::verifyFlow(r.scheduled, r.distributed, vo);
    if (r.diagnostics.hasErrors()) {
      throw Error("static verification failed:\n" +
                  verify::renderText(r.diagnostics));
    }
  }

  if (config.buildCentFsm) {
    fsm::ProductOptions opt;
    opt.maxStates = config.centFsmMaxStates;
    r.centFsm = fsm::buildProduct(r.distributed, opt);
  }

  if (config.synthesizeArea) {
    const std::size_t rows = r.centFsm ? 3 : 2;
    common::parallelFor(rows, [&](std::size_t row) {
      switch (row) {
        case 0:
          r.distArea = synth::distributedArea(r.distributed, config.encoding);
          break;
        case 1:
          r.centSyncArea =
              synth::areaRow("CENT-SYNC-FSM", r.centSync, config.encoding);
          break;
        case 2:
          r.centFsmArea =
              synth::areaRow("CENT-FSM", *r.centFsm, config.encoding);
          break;
      }
    });
  }
  return r;
}

std::string emitVerilog(const FlowResult& result) {
  return rtl::emitPackage(result.distributed,
                          "dcu_" + result.scheduled.graph.name());
}

}  // namespace tauhls::core
