#include "core/flow.hpp"

#include "core/pipeline.hpp"
#include "rtl/verilog.hpp"

namespace tauhls::core {

// runFlow is a façade over the declarative pass pipeline (core/pipeline.hpp):
// the config is validated up front, the pipeline computes exactly the
// artifacts the config implies (ready passes run concurrently on the global
// pool), and the verification gate throws before the product/area stages
// exactly as the pre-pipeline monolithic flow did.  Results are bit-identical
// to that flow for every config (tests/test_pipeline.cpp).  Sweep callers
// that want cross-run artifact reuse construct FlowPipeline directly with a
// shared ArtifactCache.
FlowResult runFlow(const dfg::Dfg& graph, const FlowConfig& config) {
  FlowPipeline pipeline(graph, config);
  return pipeline.run();
}

std::string emitVerilog(const FlowResult& result) {
  return rtl::emitPackage(result.distributed,
                          "dcu_" + result.scheduled.graph.name());
}

}  // namespace tauhls::core
