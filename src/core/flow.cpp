#include "core/flow.hpp"

#include "common/error.hpp"
#include "rtl/verilog.hpp"

namespace tauhls::core {

FlowResult runFlow(const dfg::Dfg& graph, const FlowConfig& config) {
  FlowResult r;
  r.scheduled =
      sched::scheduleAndBind(graph, config.allocation, config.library,
                             config.strategy);

  fsm::DistributedControlUnit dcu = fsm::buildDistributed(r.scheduled);
  if (config.optimizeSignals) {
    r.distributed = fsm::optimizeSignals(dcu, &r.signalStats);
  } else {
    r.distributed = std::move(dcu);
  }
  r.centSync = fsm::buildCentSync(r.scheduled);
  if (config.buildCentFsm) {
    fsm::ProductOptions opt;
    opt.maxStates = config.centFsmMaxStates;
    r.centFsm = fsm::buildProduct(r.distributed, opt);
  }

  r.latency = sim::compareLatencies(r.scheduled, config.ps, config.mcSamples);

  if (config.synthesizeArea) {
    r.distArea = synth::distributedArea(r.distributed, config.encoding);
    r.centSyncArea = synth::areaRow("CENT-SYNC-FSM", r.centSync, config.encoding);
    if (r.centFsm) {
      r.centFsmArea = synth::areaRow("CENT-FSM", *r.centFsm, config.encoding);
    }
  }
  return r;
}

std::string emitVerilog(const FlowResult& result) {
  return rtl::emitPackage(result.distributed,
                          "dcu_" + result.scheduled.graph.name());
}

}  // namespace tauhls::core
