#include "core/fingerprint.hpp"

namespace tauhls::core {

common::Fingerprint fingerprintDfg(const dfg::Dfg& g) {
  common::Hasher h;
  h.str("dfg-v2");
  h.str(g.name());
  h.u64(g.numNodes());
  for (dfg::NodeId id = 0; id < g.numNodes(); ++id) {
    const dfg::Node& n = g.node(id);
    h.u64(static_cast<std::uint64_t>(n.kind));
    h.str(n.name);
    h.u64(n.operands.size());
    for (dfg::NodeId op : n.operands) h.u32(op);
  }
  h.u64(g.scheduleArcs().size());
  for (const dfg::ScheduleArc& arc : g.scheduleArcs()) {
    h.u32(arc.from);
    h.u32(arc.to);
  }
  h.u64(g.stateEdges().size());
  for (const dfg::ScheduleArc& edge : g.stateEdges()) {
    h.u32(edge.from);
    h.u32(edge.to);
  }
  h.u64(g.outputs().size());
  for (dfg::NodeId out : g.outputs()) h.u32(out);
  return h.digest();
}

void hashAllocation(common::Hasher& h, const sched::Allocation& alloc) {
  h.u64(alloc.size());
  for (const auto& [cls, count] : alloc) {
    h.u64(static_cast<std::uint64_t>(cls));
    h.i64(count);
  }
}

void hashLibrary(common::Hasher& h, const tau::ResourceLibrary& lib) {
  const std::vector<dfg::ResourceClass> classes = lib.classes();
  h.u64(classes.size());
  for (dfg::ResourceClass cls : classes) {
    const tau::UnitType& t = lib.typeFor(cls);
    h.u64(static_cast<std::uint64_t>(cls));
    h.str(t.name);
    h.boolean(t.telescopic);
    h.f64(t.shortDelayNs);
    h.f64(t.longDelayNs);
    h.f64(t.sdProbability);
  }
}

}  // namespace tauhls::core
