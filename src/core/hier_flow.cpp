#include "core/hier_flow.hpp"

#include <algorithm>
#include <map>

#include "sim/makespan.hpp"
#include "verify/equiv_check.hpp"
#include "verify/region_check.hpp"

namespace tauhls::core {

namespace {

/// Re-anchor a leaf pipeline's diagnostics to carry the region path.
void mergePrefixed(const verify::Report& from, const std::string& path,
                   verify::Report& into) {
  for (verify::Diagnostic d : from.diagnostics()) {
    d.artifact = "leaf " + (path.empty() ? std::string("<root>") : path) +
                 ": " + d.artifact;
    into.addDiagnostic(d);
  }
}

}  // namespace

HierFlowResult runHierFlow(const dfg::RegionProgram& program,
                           const FlowConfig& config,
                           const HierFlowOptions& options,
                           std::shared_ptr<ArtifactCache> cache) {
  HierFlowResult out;
  out.branches = dfg::completeBranchChoices(program, options.branches);

  // Structure first: a malformed tree blocks everything downstream.
  verify::Report report;
  verify::checkRegionProgram(program, report);
  throwIfVerificationFailed(report);

  // The shared hardware must cover every leaf: normalize the requested
  // allocation against each body and keep the per-class maximum (the same
  // rule sched::scheduleRegions applies).
  sched::Allocation shared;
  const std::vector<dfg::LeafRef> leaves = dfg::collectLeaves(program);
  for (const dfg::LeafRef& leaf : leaves) {
    for (const auto& [cls, n] :
         sched::normalizeAllocation(leaf.region->body, config.allocation)) {
      shared[cls] = std::max(shared[cls], n);
    }
  }

  sched::RegionSchedule rs;
  rs.program = program;
  rs.allocation = shared;
  rs.strategy = config.strategy;

  // One FlowPipeline per leaf, all sharing the cache: an edited region
  // misses, every untouched region hits.
  for (const dfg::LeafRef& leaf : leaves) {
    FlowConfig leafConfig = config;
    leafConfig.allocation = shared;
    FlowPipeline pipe(leaf.region->body, leafConfig, cache);
    rs.leaves.emplace(leaf.path,
                      pipe.get<sched::ScheduledDfg>(Artifact::Schedule));
    if (config.verify) {
      mergePrefixed(pipe.modelCheckedDiagnostics(), leaf.path, report);
    }
    if (options.equivalence) {
      mergePrefixed(
          pipe.get<verify::EquivalenceArtifact>(Artifact::Equivalence).report,
          leaf.path, report);
    }
  }

  // Cross-region checks and the composed controllers.
  verify::checkRegionSchedule(rs, report);
  out.control = fsm::buildHierarchicalControl(rs);
  verify::checkComposedControl(out.control, program, report);

  // X-safety of the composition: the sequencer + handshake latches (XPR003),
  // every leaf network re-anchored to its path (XPR001/XPR002), and
  // don't-care soundness of the sequencer FSM and every leaf controller.
  // Runs direct (uncached) like the other composed checks -- the flat
  // per-network results stay cacheable through the xcheck pipeline pass.
  if (options.xprop) {
    verify::XprOptions xo;
    xo.style = config.encoding;
    xo.maxCycles = config.xpropCycles;
    xo.words = config.xpropWords;
    verify::DcsOptions dco;
    dco.style = config.encoding;
    dco.maxDepth = config.dcsMaxDepth;
    dco.maxConflicts = config.dcsMaxConflicts;
    out.xpropStats = verify::checkXpropHierarchical(
        out.control, "hier " + out.control.sequencer.name(), report, xo);
    out.dcsStats = verify::checkDcsFsm(
        out.control.sequencer, "sequencer " + out.control.sequencer.name(),
        report, dco);
    for (const fsm::LeafControl& leaf : out.control.leaves) {
      out.dcsStats +=
          verify::checkDcs(leaf.dcu, "leaf " + leaf.path, report, dco);
    }
  }

  // Composed Table-2 statistics along the activation trace.
  if (options.latency) {
    out.latency = sim::composedLatency(rs, out.branches, config.ps);
  }
  out.activations = out.control.activationPaths;
  std::map<std::string, int> tauOpsPerLeaf;
  for (const auto& [path, scheduled] : rs.leaves) {
    tauOpsPerLeaf[path] = sim::MakespanEngine(scheduled).numTauOps();
  }
  for (const std::string& path : dfg::activationTrace(program, out.branches)) {
    out.totalTauOps += tauOpsPerLeaf.at(path);
  }

  out.schedule = std::move(rs);
  out.diagnostics = report;
  if (config.verify && options.gateErrors) throwIfVerificationFailed(report);
  return out;
}

}  // namespace tauhls::core
