#include "core/json.hpp"

#include <iomanip>
#include <sstream>

#include "core/report.hpp"

namespace tauhls::core {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream os;
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c);
          out += os.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

class JsonWriter {
 public:
  JsonWriter& key(const std::string& k) {
    comma();
    os_ << '"' << jsonEscape(k) << "\":";
    pendingValue_ = true;
    return *this;
  }
  JsonWriter& value(const std::string& v) {
    comma();
    os_ << '"' << jsonEscape(v) << '"';
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& beginObject() {
    comma();
    os_ << '{';
    needComma_.push_back(false);
    return *this;
  }
  JsonWriter& endObject() {
    needComma_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& beginArray() {
    comma();
    os_ << '[';
    needComma_.push_back(false);
    return *this;
  }
  JsonWriter& endArray() {
    needComma_.pop_back();
    os_ << ']';
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  void comma() {
    if (pendingValue_) {
      pendingValue_ = false;
      return;  // value follows its key without a comma
    }
    if (!needComma_.empty()) {
      if (needComma_.back()) os_ << ',';
      needComma_.back() = true;
    }
  }
  std::ostringstream os_;
  std::vector<bool> needComma_;
  bool pendingValue_ = false;
};

void writeLatencyRow(JsonWriter& w, const sim::LatencyRow& row,
                     const std::vector<double>& ps) {
  w.beginObject();
  w.key("best_ns").value(row.bestNs);
  w.key("worst_ns").value(row.worstNs);
  w.key("average_ns").beginArray();
  for (std::size_t i = 0; i < row.averageNs.size(); ++i) {
    w.beginObject();
    w.key("p").value(ps[i]);
    w.key("ns").value(row.averageNs[i]);
    w.endObject();
  }
  w.endArray();
  w.endObject();
}

void writeAreaRow(JsonWriter& w, const synth::AreaRow& row) {
  w.beginObject();
  w.key("name").value(row.name);
  w.key("inputs").value(row.inputs);
  w.key("outputs").value(row.outputs);
  w.key("states").value(row.states);
  w.key("flip_flops").value(row.flipFlops);
  w.key("combinational_area").value(row.combArea);
  w.key("sequential_area").value(row.seqArea);
  w.endObject();
}

}  // namespace

std::string toJson(const FlowResult& result) {
  JsonWriter w;
  w.beginObject();
  w.key("design").value(result.scheduled.graph.name());
  w.key("operations").value(static_cast<int>(result.scheduled.graph.numOps()));
  w.key("clock_ns").value(result.scheduled.clockNs);
  w.key("allocation").value(formatAllocation(result.scheduled));

  w.key("controllers").beginArray();
  for (const fsm::UnitController& c : result.distributed.controllers) {
    w.beginObject();
    w.key("name").value(c.fsm.name());
    w.key("telescopic").value(c.telescopic);
    w.key("states").value(static_cast<int>(c.fsm.numStates()));
    w.key("flip_flops").value(c.fsm.flipFlopCount());
    w.key("operations").beginArray();
    for (dfg::NodeId v : c.ops) {
      w.value(result.scheduled.graph.node(v).name);
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.key("completion_latches").value(result.distributed.completionLatchCount());

  w.key("signal_optimization").beginObject();
  w.key("removed_outputs").value(result.signalStats.removedOutputs);
  w.key("kept_outputs").value(result.signalStats.keptOutputs);
  w.endObject();

  w.key("latency").beginObject();
  w.key("tau");
  writeLatencyRow(w, result.latency.tau, result.latency.ps);
  w.key("dist");
  writeLatencyRow(w, result.latency.dist, result.latency.ps);
  w.key("enhancement_percent").beginArray();
  for (double e : result.latency.enhancementPercent) w.value(e);
  w.endArray();
  w.endObject();

  if (result.distArea && result.centSyncArea) {
    w.key("area").beginObject();
    w.key("cent_sync");
    writeAreaRow(w, *result.centSyncArea);
    if (result.centFsmArea) {
      w.key("cent_fsm");
      writeAreaRow(w, *result.centFsmArea);
    }
    w.key("dist_total");
    writeAreaRow(w, result.distArea->total);
    w.key("dist_controllers").beginArray();
    for (const synth::AreaRow& row : result.distArea->perController) {
      writeAreaRow(w, row);
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  return w.str();
}

}  // namespace tauhls::core
