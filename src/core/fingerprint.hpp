// Content fingerprints of flow inputs, for the artifact cache
// (core/pipeline.hpp).
//
// A pass's cache key is derived from (a) the fingerprint of the input DFG,
// (b) a hash of only the FlowConfig fields the pass declares it reads, and
// (c) the keys of its input artifacts.  The helpers here cover (a) and the
// structured config field types used by (b); the per-pass composition lives
// with the pass registry in pipeline.cpp.
//
// Fingerprints cover everything an evaluation can observe -- for the DFG that
// is the name (it flows into report/RTL text), every node's kind, name and
// operand list, the schedule arcs and the output set.  Two DFGs with equal
// fingerprints produce byte-identical flow artifacts.
#pragma once

#include "common/hash.hpp"
#include "dfg/graph.hpp"
#include "sched/allocation.hpp"
#include "tau/library.hpp"

namespace tauhls::core {

/// Full structural fingerprint of a DFG (nodes, edges, schedule arcs,
/// outputs, names).
common::Fingerprint fingerprintDfg(const dfg::Dfg& g);

/// Feed an allocation (class/count pairs in class order -- std::map order is
/// already canonical) into `h`.
void hashAllocation(common::Hasher& h, const sched::Allocation& alloc);

/// Feed a resource library (every registered unit type) into `h`.
void hashLibrary(common::Hasher& h, const tau::ResourceLibrary& lib);

}  // namespace tauhls::core
