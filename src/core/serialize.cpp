#include "core/serialize.hpp"

#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "verify/equiv_check.hpp"
#include "verify/symbolic_check.hpp"
#include "verify/xprop_check.hpp"

namespace tauhls::core {

namespace {

// ---------------------------------------------------------------------------
// Primitive little-endian writer/reader.  The reader bounds-checks every
// access and throws tauhls::Error on violation; nothing here can read past
// the blob or allocate an attacker-controlled amount beyond the blob size.
// ---------------------------------------------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    TAUHLS_CHECK(v <= 1, "artifact blob: invalid boolean byte");
    return v != 0;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }
  /// Element-count prefix for a container about to be decoded element-wise;
  /// bounded by the remaining bytes so a corrupted length cannot trigger a
  /// huge up-front allocation (`minBytesPerElement` >= 1).
  std::size_t count(std::size_t minBytesPerElement = 1) {
    const std::uint64_t n = u64();
    TAUHLS_CHECK(n <= remaining() / minBytesPerElement,
                 "artifact blob: container length exceeds blob size");
    return static_cast<std::size_t>(n);
  }

  std::size_t remaining() const { return size_ - pos_; }
  void expectEnd() const {
    TAUHLS_CHECK(pos_ == size_, "artifact blob: trailing bytes after payload");
  }

 private:
  void need(std::uint64_t n) {
    TAUHLS_CHECK(n <= size_ - pos_, "artifact blob: truncated");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Per-type codecs.  Encoders walk the public read API; decoders rebuild
// through the public mutation API (so every class invariant is re-validated
// on the way in) or by direct aggregate construction for plain structs.
// ---------------------------------------------------------------------------

template <typename T>
std::uint32_t checkedEnum(std::uint32_t raw, T maxInclusive, const char* what) {
  TAUHLS_CHECK(raw <= static_cast<std::uint32_t>(maxInclusive),
               std::string("artifact blob: out-of-range ") + what);
  return raw;
}

void encodeDfg(Writer& w, const dfg::Dfg& g) {
  w.str(g.name());
  w.u64(g.numNodes());
  for (dfg::NodeId id = 0; id < g.numNodes(); ++id) {
    const dfg::Node& n = g.node(id);
    w.u8(static_cast<std::uint8_t>(n.kind));
    w.str(n.name);
    w.u64(n.operands.size());
    for (dfg::NodeId op : n.operands) w.u32(op);
  }
  w.u64(g.scheduleArcs().size());
  for (const dfg::ScheduleArc& arc : g.scheduleArcs()) {
    w.u32(arc.from);
    w.u32(arc.to);
  }
  w.u64(g.stateEdges().size());
  for (const dfg::ScheduleArc& edge : g.stateEdges()) {
    w.u32(edge.from);
    w.u32(edge.to);
  }
  w.u64(g.outputs().size());
  for (dfg::NodeId out : g.outputs()) w.u32(out);
}

dfg::Dfg decodeDfg(Reader& r) {
  dfg::Dfg g(r.str());
  const std::size_t numNodes = r.count();
  for (std::size_t i = 0; i < numNodes; ++i) {
    const auto kind = static_cast<dfg::OpKind>(
        checkedEnum(r.u8(), dfg::OpKind::Neg, "OpKind"));
    const std::string name = r.str();
    const std::size_t numOperands = r.count(4);
    std::vector<dfg::NodeId> operands(numOperands);
    for (dfg::NodeId& op : operands) op = r.u32();
    const dfg::NodeId id =
        kind == dfg::OpKind::Input
            ? g.addInput(name)
            : g.addOp(kind, std::span<const dfg::NodeId>(operands), name);
    TAUHLS_CHECK(id == static_cast<dfg::NodeId>(i),
                 "artifact blob: non-dense DFG node ids");
  }
  const std::size_t numArcs = r.count(8);
  for (std::size_t i = 0; i < numArcs; ++i) {
    const dfg::NodeId from = r.u32();
    const dfg::NodeId to = r.u32();
    g.addScheduleArc(from, to);
  }
  const std::size_t numStateEdges = r.count(8);
  for (std::size_t i = 0; i < numStateEdges; ++i) {
    const dfg::NodeId from = r.u32();
    const dfg::NodeId to = r.u32();
    g.addStateEdge(from, to);
  }
  const std::size_t numOutputs = r.count(4);
  for (std::size_t i = 0; i < numOutputs; ++i) g.markOutput(r.u32());
  g.validate();
  return g;
}

void encodeBinding(Writer& w, const sched::Binding& b) {
  w.u64(b.numUnits());
  for (int u = 0; u < static_cast<int>(b.numUnits()); ++u) {
    const sched::UnitInstance& unit = b.unit(u);
    w.u8(static_cast<std::uint8_t>(unit.cls));
    w.i32(unit.index);
    w.u64(b.sequenceOf(u).size());
    for (dfg::NodeId op : b.sequenceOf(u)) w.u32(op);
  }
}

sched::Binding decodeBinding(Reader& r) {
  sched::Binding b;
  const std::size_t numUnits = r.count();
  for (std::size_t u = 0; u < numUnits; ++u) {
    const auto cls = static_cast<dfg::ResourceClass>(
        checkedEnum(r.u8(), dfg::ResourceClass::Logic, "ResourceClass"));
    const int index = r.i32();
    const int id = b.addUnit(cls, index);
    TAUHLS_CHECK(id == static_cast<int>(u),
                 "artifact blob: non-dense binding unit ids");
    const std::size_t seqLen = r.count(4);
    for (std::size_t i = 0; i < seqLen; ++i) b.assign(r.u32(), id);
  }
  return b;
}

void encodeSteps(Writer& w, const sched::StepSchedule& s) {
  w.i32(s.numSteps);
  w.u64(s.stepOf.size());
  for (int step : s.stepOf) w.i32(step);
}

sched::StepSchedule decodeSteps(Reader& r) {
  sched::StepSchedule s;
  s.numSteps = r.i32();
  const std::size_t n = r.count(4);
  s.stepOf.resize(n);
  for (int& step : s.stepOf) step = r.i32();
  return s;
}

void encodeTaubm(Writer& w, const sched::TaubmSchedule& t) {
  w.u64(t.steps.size());
  for (const sched::TaubmStep& step : t.steps) {
    w.i32(step.originalStep);
    w.boolean(step.split);
    w.u64(step.ops.size());
    for (dfg::NodeId op : step.ops) w.u32(op);
    w.u64(step.tauOps.size());
    for (dfg::NodeId op : step.tauOps) w.u32(op);
  }
}

sched::TaubmSchedule decodeTaubm(Reader& r) {
  sched::TaubmSchedule t;
  const std::size_t numSteps = r.count(5);
  t.steps.resize(numSteps);
  for (sched::TaubmStep& step : t.steps) {
    step.originalStep = r.i32();
    step.split = r.boolean();
    step.ops.resize(r.count(4));
    for (dfg::NodeId& op : step.ops) op = r.u32();
    step.tauOps.resize(r.count(4));
    for (dfg::NodeId& op : step.tauOps) op = r.u32();
  }
  return t;
}

void encodeLibrary(Writer& w, const tau::ResourceLibrary& lib) {
  const std::vector<dfg::ResourceClass> classes = lib.classes();
  w.u64(classes.size());
  for (dfg::ResourceClass cls : classes) {
    const tau::UnitType& t = lib.typeFor(cls);
    w.str(t.name);
    w.u8(static_cast<std::uint8_t>(t.cls));
    w.boolean(t.telescopic);
    w.f64(t.shortDelayNs);
    w.f64(t.longDelayNs);
    w.f64(t.sdProbability);
  }
}

tau::ResourceLibrary decodeLibrary(Reader& r) {
  tau::ResourceLibrary lib;
  const std::size_t numTypes = r.count();
  for (std::size_t i = 0; i < numTypes; ++i) {
    tau::UnitType t;
    t.name = r.str();
    t.cls = static_cast<dfg::ResourceClass>(
        checkedEnum(r.u8(), dfg::ResourceClass::Logic, "ResourceClass"));
    t.telescopic = r.boolean();
    t.shortDelayNs = r.f64();
    t.longDelayNs = r.f64();
    t.sdProbability = r.f64();
    tau::validateUnitType(t);
    lib.registerType(t);
  }
  return lib;
}

void encodeGuard(Writer& w, const fsm::Guard& g) {
  w.u64(g.terms().size());
  for (const fsm::GuardTerm& term : g.terms()) {
    w.u64(term.literals.size());
    for (const auto& [signal, positive] : term.literals) {
      w.str(signal);
      w.boolean(positive);
    }
  }
}

fsm::Guard decodeGuard(Reader& r) {
  const std::size_t numTerms = r.count();
  fsm::Guard g = fsm::Guard::never();
  for (std::size_t t = 0; t < numTerms; ++t) {
    const std::size_t numLiterals = r.count(2);
    fsm::Guard term = fsm::Guard::always();
    for (std::size_t l = 0; l < numLiterals; ++l) {
      const std::string signal = r.str();
      const bool positive = r.boolean();
      term = term.conjoin(fsm::Guard::literal(signal, positive));
    }
    g = g.disjoin(term);
  }
  return g;
}

void encodeFsm(Writer& w, const fsm::Fsm& f) {
  w.str(f.name());
  w.u64(f.numStates());
  for (int s = 0; s < static_cast<int>(f.numStates()); ++s) {
    w.str(f.stateName(s));
  }
  w.u64(f.inputs().size());
  for (const std::string& in : f.inputs()) w.str(in);
  w.u64(f.outputs().size());
  for (const std::string& out : f.outputs()) w.str(out);
  w.i32(f.initial());
  w.u64(f.transitions().size());
  for (const fsm::Transition& t : f.transitions()) {
    w.i32(t.from);
    w.i32(t.to);
    encodeGuard(w, t.guard);
    w.u64(t.outputs.size());
    for (const std::string& out : t.outputs) w.str(out);
  }
}

fsm::Fsm decodeFsm(Reader& r) {
  fsm::Fsm f(r.str());
  const std::size_t numStates = r.count();
  for (std::size_t s = 0; s < numStates; ++s) {
    const int id = f.addState(r.str());
    TAUHLS_CHECK(id == static_cast<int>(s),
                 "artifact blob: non-dense FSM state ids");
  }
  const std::size_t numInputs = r.count();
  for (std::size_t i = 0; i < numInputs; ++i) f.addInput(r.str());
  const std::size_t numOutputs = r.count();
  for (std::size_t i = 0; i < numOutputs; ++i) f.addOutput(r.str());
  const int initial = r.i32();
  if (numStates > 0) f.setInitial(initial);
  const std::size_t numTransitions = r.count(8);
  for (std::size_t t = 0; t < numTransitions; ++t) {
    const int from = r.i32();
    const int to = r.i32();
    fsm::Guard guard = decodeGuard(r);
    const std::size_t outCount = r.count(8);
    std::vector<std::string> outputs(outCount);
    for (std::string& out : outputs) out = r.str();
    f.addTransition(from, to, std::move(guard), std::move(outputs));
  }
  return f;
}

void encodeDcu(Writer& w, const fsm::DistributedControlUnit& dcu) {
  w.u64(dcu.controllers.size());
  for (const fsm::UnitController& c : dcu.controllers) {
    w.i32(c.unitId);
    w.boolean(c.telescopic);
    encodeFsm(w, c.fsm);
    w.u64(c.ops.size());
    for (dfg::NodeId op : c.ops) w.u32(op);
    w.u64(c.latchedInputs.size());
    for (const std::string& s : c.latchedInputs) w.str(s);
  }
  w.u64(dcu.externalInputs.size());
  for (const std::string& s : dcu.externalInputs) w.str(s);
  w.u64(dcu.producerOf.size());
  for (const auto& [signal, producer] : dcu.producerOf) {
    w.str(signal);
    w.i32(producer);
  }
  w.u64(dcu.consumersOf.size());
  for (const auto& [signal, consumers] : dcu.consumersOf) {
    w.str(signal);
    w.u64(consumers.size());
    for (int c : consumers) w.i32(c);
  }
}

fsm::DistributedControlUnit decodeDcu(Reader& r) {
  fsm::DistributedControlUnit dcu;
  const std::size_t numControllers = r.count();
  dcu.controllers.reserve(numControllers);
  for (std::size_t i = 0; i < numControllers; ++i) {
    fsm::UnitController c;
    c.unitId = r.i32();
    c.telescopic = r.boolean();
    c.fsm = decodeFsm(r);
    c.ops.resize(r.count(4));
    for (dfg::NodeId& op : c.ops) op = r.u32();
    c.latchedInputs.resize(r.count(8));
    for (std::string& s : c.latchedInputs) s = r.str();
    dcu.controllers.push_back(std::move(c));
  }
  dcu.externalInputs.resize(r.count(8));
  for (std::string& s : dcu.externalInputs) s = r.str();
  const std::size_t numProducers = r.count();
  for (std::size_t i = 0; i < numProducers; ++i) {
    const std::string signal = r.str();
    dcu.producerOf[signal] = r.i32();
  }
  const std::size_t numConsumed = r.count();
  for (std::size_t i = 0; i < numConsumed; ++i) {
    const std::string signal = r.str();
    std::set<int>& consumers = dcu.consumersOf[signal];
    const std::size_t numConsumers = r.count(4);
    for (std::size_t c = 0; c < numConsumers; ++c) consumers.insert(r.i32());
  }
  return dcu;
}

void encodeScheduled(Writer& w, const sched::ScheduledDfg& s) {
  encodeDfg(w, s.graph);
  encodeBinding(w, s.binding);
  encodeSteps(w, s.steps);
  encodeTaubm(w, s.taubm);
  encodeLibrary(w, s.library);
  w.f64(s.clockNs);
}

sched::ScheduledDfg decodeScheduled(Reader& r) {
  sched::ScheduledDfg s;
  s.graph = decodeDfg(r);
  s.binding = decodeBinding(r);
  s.steps = decodeSteps(r);
  s.taubm = decodeTaubm(r);
  s.library = decodeLibrary(r);
  s.clockNs = r.f64();
  return s;
}

void encodeLatencyRow(Writer& w, const sim::LatencyRow& row) {
  w.f64(row.bestNs);
  w.f64(row.worstNs);
  w.u64(row.averageNs.size());
  for (double v : row.averageNs) w.f64(v);
}

sim::LatencyRow decodeLatencyRow(Reader& r) {
  sim::LatencyRow row;
  row.bestNs = r.f64();
  row.worstNs = r.f64();
  row.averageNs.resize(r.count(8));
  for (double& v : row.averageNs) v = r.f64();
  return row;
}

void encodeLatency(Writer& w, const sim::LatencyComparison& l) {
  w.u64(l.ps.size());
  for (double p : l.ps) w.f64(p);
  encodeLatencyRow(w, l.tau);
  encodeLatencyRow(w, l.dist);
  w.u64(l.enhancementPercent.size());
  for (double e : l.enhancementPercent) w.f64(e);
}

sim::LatencyComparison decodeLatency(Reader& r) {
  sim::LatencyComparison l;
  l.ps.resize(r.count(8));
  for (double& p : l.ps) p = r.f64();
  l.tau = decodeLatencyRow(r);
  l.dist = decodeLatencyRow(r);
  l.enhancementPercent.resize(r.count(8));
  for (double& e : l.enhancementPercent) e = r.f64();
  return l;
}

void encodeReport(Writer& w, const verify::Report& report) {
  w.u64(report.diagnostics().size());
  for (const verify::Diagnostic& d : report.diagnostics()) {
    w.str(d.code);
    w.str(d.artifact);
    w.str(d.where);
    w.str(d.message);
  }
}

verify::Report decodeReport(Reader& r) {
  verify::Report report;
  const std::size_t numDiags = r.count();
  for (std::size_t i = 0; i < numDiags; ++i) {
    const std::string code = r.str();
    const std::string artifact = r.str();
    const std::string where = r.str();
    const std::string message = r.str();
    // Report::add re-resolves the severity from the rule registry, so a blob
    // can never smuggle in a severity the registry does not assign -- and it
    // throws on unknown codes, turning a corrupted code into a cache miss.
    report.add(code, artifact, where, message);
  }
  return report;
}

void encodeAreaRow(Writer& w, const synth::AreaRow& row) {
  w.str(row.name);
  w.i32(row.inputs);
  w.i32(row.outputs);
  w.i32(row.states);
  w.i32(row.flipFlops);
  w.i32(row.combArea);
  w.i32(row.seqArea);
}

synth::AreaRow decodeAreaRow(Reader& r) {
  synth::AreaRow row;
  row.name = r.str();
  row.inputs = r.i32();
  row.outputs = r.i32();
  row.states = r.i32();
  row.flipFlops = r.i32();
  row.combArea = r.i32();
  row.seqArea = r.i32();
  return row;
}

void encodeDistArea(Writer& w, const synth::DistributedAreaReport& rep) {
  w.u64(rep.perController.size());
  for (const synth::AreaRow& row : rep.perController) encodeAreaRow(w, row);
  encodeAreaRow(w, rep.total);
  w.i32(rep.completionLatches);
}

synth::DistributedAreaReport decodeDistArea(Reader& r) {
  synth::DistributedAreaReport rep;
  const std::size_t numRows = r.count();
  rep.perController.reserve(numRows);
  for (std::size_t i = 0; i < numRows; ++i) {
    rep.perController.push_back(decodeAreaRow(r));
  }
  rep.total = decodeAreaRow(r);
  rep.completionLatches = r.i32();
  return rep;
}

void encodeRuleCost(Writer& w, const verify::RuleCost& cost) {
  w.u64(cost.decisions);
  w.u64(cost.propagations);
  w.u64(cost.conflicts);
  w.u64(cost.learned);
  w.u64(cost.restarts);
  w.u64(cost.queries);
  w.u64(cost.simDischarged);
}

verify::RuleCost decodeRuleCost(Reader& r) {
  verify::RuleCost cost;
  cost.decisions = r.u64();
  cost.propagations = r.u64();
  cost.conflicts = r.u64();
  cost.learned = r.u64();
  cost.restarts = r.u64();
  cost.queries = r.u64();
  cost.simDischarged = r.u64();
  return cost;
}

void encodeEquivalence(Writer& w, const verify::EquivalenceArtifact& art) {
  encodeReport(w, art.report);
  w.i32(art.stats.controllers);
  w.i32(art.stats.functionsCompared);
  w.u64(art.stats.satConflicts);
  w.u32(static_cast<std::uint32_t>(art.stats.ruleCost.size()));
  for (const auto& [code, cost] : art.stats.ruleCost) {
    w.str(code);
    encodeRuleCost(w, cost);
  }
}

verify::EquivalenceArtifact decodeEquivalence(Reader& r) {
  verify::EquivalenceArtifact art;
  art.report = decodeReport(r);
  art.stats.controllers = r.i32();
  art.stats.functionsCompared = r.i32();
  art.stats.satConflicts = r.u64();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string code = r.str();
    art.stats.ruleCost[code] = decodeRuleCost(r);
  }
  return art;
}

void encodeSymbolic(Writer& w, const verify::SymbolicArtifact& art) {
  encodeReport(w, art.report);
  w.str(art.stats.artifact);
  w.u64(art.stats.controllers);
  w.u64(art.stats.stateBits);
  w.u64(art.stats.templateNodes);
  w.boolean(art.stats.invariantHolds);
  encodeRuleCost(w, art.stats.invariantCost);
  w.u64(art.stats.properties.size());
  for (const verify::SymbolicProperty& p : art.stats.properties) {
    w.str(p.rule);
    w.u8(static_cast<std::uint8_t>(p.verdict));
    w.i32(p.depthReached);
    w.i32(p.inductionK);
    w.i32(p.cexLength);
    encodeRuleCost(w, p.cost);
  }
}

verify::SymbolicArtifact decodeSymbolic(Reader& r) {
  verify::SymbolicArtifact art;
  art.report = decodeReport(r);
  art.stats.artifact = r.str();
  art.stats.controllers = r.u64();
  art.stats.stateBits = r.u64();
  art.stats.templateNodes = r.u64();
  art.stats.invariantHolds = r.boolean();
  art.stats.invariantCost = decodeRuleCost(r);
  const std::size_t numProps = r.count();
  art.stats.properties.reserve(numProps);
  for (std::size_t i = 0; i < numProps; ++i) {
    verify::SymbolicProperty p;
    p.rule = r.str();
    p.verdict = static_cast<verify::PropertyVerdict>(checkedEnum(
        r.u8(), verify::PropertyVerdict::Unknown, "PropertyVerdict"));
    p.depthReached = r.i32();
    p.inductionK = r.i32();
    p.cexLength = r.i32();
    p.cost = decodeRuleCost(r);
    art.stats.properties.push_back(std::move(p));
  }
  return art;
}

void encodeXpropRows(Writer& w,
                     const std::vector<verify::XpropPropertyStat>& rows) {
  w.u64(rows.size());
  for (const verify::XpropPropertyStat& p : rows) {
    w.str(p.artifact);
    w.str(p.rule);
    w.str(p.verdict);
    w.i32(p.depth);
    w.i32(p.cexCycle);
    w.u64(p.instances);
    w.u64(p.gateEvals);
    encodeRuleCost(w, p.cost);
  }
}

std::vector<verify::XpropPropertyStat> decodeXpropRows(Reader& r) {
  const std::size_t n = r.count();
  std::vector<verify::XpropPropertyStat> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    verify::XpropPropertyStat p;
    p.artifact = r.str();
    p.rule = r.str();
    p.verdict = r.str();
    p.depth = r.i32();
    p.cexCycle = r.i32();
    p.instances = r.u64();
    p.gateEvals = r.u64();
    p.cost = decodeRuleCost(r);
    rows.push_back(std::move(p));
  }
  return rows;
}

void encodeXCheck(Writer& w, const verify::XCheckArtifact& art) {
  encodeReport(w, art.report);
  w.str(art.xprop.artifact);
  w.u64(art.xprop.controllers);
  w.u64(art.xprop.stateBits);
  w.u64(art.xprop.latchBits);
  w.i32(art.xprop.resetDepth);
  w.u64(art.xprop.instances);
  w.u64(art.xprop.gateEvals);
  w.u64(art.xprop.rtlCycles);
  encodeXpropRows(w, art.xprop.properties);
  w.str(art.dcs.artifact);
  w.u64(art.dcs.controllers);
  w.u64(art.dcs.functionsChecked);
  w.u64(art.dcs.dcFunctions);
  encodeXpropRows(w, art.dcs.properties);
}

verify::XCheckArtifact decodeXCheck(Reader& r) {
  verify::XCheckArtifact art;
  art.report = decodeReport(r);
  art.xprop.artifact = r.str();
  art.xprop.controllers = static_cast<std::size_t>(r.u64());
  art.xprop.stateBits = static_cast<std::size_t>(r.u64());
  art.xprop.latchBits = static_cast<std::size_t>(r.u64());
  art.xprop.resetDepth = r.i32();
  art.xprop.instances = r.u64();
  art.xprop.gateEvals = r.u64();
  art.xprop.rtlCycles = r.u64();
  art.xprop.properties = decodeXpropRows(r);
  art.dcs.artifact = r.str();
  art.dcs.controllers = static_cast<std::size_t>(r.u64());
  art.dcs.functionsChecked = r.u64();
  art.dcs.dcFunctions = r.u64();
  art.dcs.properties = decodeXpropRows(r);
  return art;
}

void encodeSignalStats(Writer& w, const fsm::SignalOptStats& s) {
  w.i32(s.removedOutputs);
  w.i32(s.keptOutputs);
}

fsm::SignalOptStats decodeSignalStats(Reader& r) {
  fsm::SignalOptStats s;
  s.removedOutputs = r.i32();
  s.keptOutputs = r.i32();
  return s;
}

template <typename T>
const T& unbox(const std::any& value) {
  const auto* ptr = std::any_cast<std::shared_ptr<const T>>(&value);
  TAUHLS_CHECK(ptr != nullptr && *ptr != nullptr,
               "encodeArtifact: value does not hold the kind's artifact type");
  return **ptr;
}

template <typename T>
std::any box(T value) {
  return std::make_shared<const T>(std::move(value));
}

}  // namespace

std::vector<std::uint8_t> encodeArtifact(Artifact kind,
                                         const std::any& value) {
  Writer w;
  switch (kind) {
    case Artifact::Schedule:
      encodeScheduled(w, unbox<sched::ScheduledDfg>(value));
      break;
    case Artifact::RawDistributed:
    case Artifact::Distributed:
      encodeDcu(w, unbox<fsm::DistributedControlUnit>(value));
      break;
    case Artifact::SignalStats:
      encodeSignalStats(w, unbox<fsm::SignalOptStats>(value));
      break;
    case Artifact::CentSync:
    case Artifact::CentFsm:
      encodeFsm(w, unbox<fsm::Fsm>(value));
      break;
    case Artifact::Latency:
      encodeLatency(w, unbox<sim::LatencyComparison>(value));
      break;
    case Artifact::Diagnostics:
    case Artifact::Timing:
      encodeReport(w, unbox<verify::Report>(value));
      break;
    case Artifact::DistArea:
      encodeDistArea(w, unbox<synth::DistributedAreaReport>(value));
      break;
    case Artifact::CentSyncArea:
    case Artifact::CentFsmArea:
      encodeAreaRow(w, unbox<synth::AreaRow>(value));
      break;
    case Artifact::Rtl:
      w.str(unbox<std::string>(value));
      break;
    case Artifact::Equivalence:
      encodeEquivalence(w, unbox<verify::EquivalenceArtifact>(value));
      break;
    case Artifact::SymbolicCheck:
      encodeSymbolic(w, unbox<verify::SymbolicArtifact>(value));
      break;
    case Artifact::XCheck:
      encodeXCheck(w, unbox<verify::XCheckArtifact>(value));
      break;
  }
  return w.take();
}

std::any decodeArtifact(Artifact kind, const std::uint8_t* data,
                        std::size_t size) {
  Reader r(data, size);
  std::any result;
  switch (kind) {
    case Artifact::Schedule:
      result = box(decodeScheduled(r));
      break;
    case Artifact::RawDistributed:
    case Artifact::Distributed:
      result = box(decodeDcu(r));
      break;
    case Artifact::SignalStats:
      result = box(decodeSignalStats(r));
      break;
    case Artifact::CentSync:
    case Artifact::CentFsm:
      result = box(decodeFsm(r));
      break;
    case Artifact::Latency:
      result = box(decodeLatency(r));
      break;
    case Artifact::Diagnostics:
    case Artifact::Timing:
      result = box(decodeReport(r));
      break;
    case Artifact::DistArea:
      result = box(decodeDistArea(r));
      break;
    case Artifact::CentSyncArea:
    case Artifact::CentFsmArea:
      result = box(decodeAreaRow(r));
      break;
    case Artifact::Rtl:
      result = box(r.str());
      break;
    case Artifact::Equivalence:
      result = box(decodeEquivalence(r));
      break;
    case Artifact::SymbolicCheck:
      result = box(decodeSymbolic(r));
      break;
    case Artifact::XCheck:
      result = box(decodeXCheck(r));
      break;
  }
  r.expectEnd();
  TAUHLS_CHECK(result.has_value(), "decodeArtifact: unknown artifact kind");
  return result;
}

}  // namespace tauhls::core
