#include "core/cli.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "core/flow.hpp"
#include "core/hier_flow.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/store.hpp"
#include "dfg/dot.hpp"
#include "dfg/textio.hpp"
#include "core/json.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/kiss.hpp"
#include "rtl/testbench.hpp"
#include "sim/interp.hpp"
#include "verify/equiv_check.hpp"
#include "verify/symbolic_check.hpp"
#include "verify/verify.hpp"
#include "verify/xprop_check.hpp"

namespace tauhls::core {

std::string cliHelp() {
  return
      "usage: tauhlsc [flow] <design.dfg> [options]\n"
      "\n"
      "Builds a distributed synchronous control unit (DATE'03 Algorithm 1)\n"
      "for the dataflow graph in <design.dfg> (see dfg/textio.hpp grammar).\n"
      "The flow runs as a declarative pass pipeline (docs/PIPELINE.md); only\n"
      "the passes the requested outputs need actually execute.\n"
      "\n"
      "Hierarchical designs (`loop N { }` / `if name { } else { }` blocks)\n"
      "run the composed flow: one Algorithm-1 controller network per leaf\n"
      "region plus a region sequencer, with composed latency statistics.\n"
      "Outputs that have no composed form yet (--verilog, --testbench,\n"
      "--json, --kiss, --table1, --cent-fsm) are rejected with a diagnostic.\n"
      "\n"
      "options:\n"
      "  --branches SPEC   branch per conditional region path for the\n"
      "                    composed statistics, e.g. s2=then,s3_l_s0=else;\n"
      "                    unlisted conditionals take the then branch\n"
      "  --alloc SPEC      units per class, e.g. mult=2,add=1,sub=1\n"
      "                    (classes: mult add sub div logic; omitted classes\n"
      "                    get full concurrency)\n"
      "  --p LIST          SD-ratio sweep, e.g. 0.9,0.7,0.5\n"
      "  --strategy S      leftedge (default) | clique\n"
      "  --encoding E      controller state encoding: binary (default) |\n"
      "                    onehot (area model, equivalence and X checks)\n"
      "  --no-signal-opt   keep unconsumed completion outputs\n"
      "  --model-check E   controller model-check engine (MDL rules):\n"
      "                    explicit (default) = bounded product exploration,\n"
      "                    symbolic = BMC + k-induction over an AIG (complete\n"
      "                    verdicts, no state bound), auto = explicit first,\n"
      "                    symbolic rerun when it degrades to MDL007\n"
      "  --max-states N    explicit-engine product-configuration bound before\n"
      "                    the check degrades to MDL007 (default: 200000 for\n"
      "                    lint, 50000 for flow)\n"
      "  --cent-fsm        also build the explicit CENT-FSM product\n"
      "  --table1          print the area report\n"
      "  --no-table2       skip the latency report\n"
      "  --verilog FILE    write the RTL package\n"
      "  --testbench FILE  write a self-checking testbench (all-SD trace)\n"
      "  --json FILE       write the full report as JSON\n"
      "  --kiss PREFIX     write PREFIX_<controller>.kiss2 per controller\n"
      "  --dot FILE        write the scheduled DFG in Graphviz DOT\n"
      "  --trace-json FILE write a chrome://tracing-compatible JSON trace of\n"
      "                    every executed pipeline pass (wall time, cache\n"
      "                    hit tier memory/disk/miss, artifact sizes); open\n"
      "                    in Perfetto or chrome://tracing\n"
      "  --store DIR       persistent artifact store: pass results are\n"
      "                    written as content-addressed blobs under DIR and\n"
      "                    reused by later runs, even across processes\n"
      "                    (lookup order: memory, disk, recompute)\n"
      "  --store-max-bytes N  size bound for DIR; least-recently-used blobs\n"
      "                    are evicted first (default 0 = unbounded)\n"
      "  --threads N       worker threads for the latency sweeps (default:\n"
      "                    TAUHLS_THREADS env var, else all hardware threads;\n"
      "                    results are identical for every N)\n"
      "  --help            this text\n"
      "\n"
      "subcommand: tauhlsc lint (<design.dfg> | --benchmarks) [options]\n"
      "\n"
      "Runs the static design-rule checker and controller model check\n"
      "(src/verify/, rules DFG*/SCH*/FSM*/MDL*/NET*) over the flow's\n"
      "artifacts without simulating.  Exits 1 when any error-severity\n"
      "diagnostic fires, 0 otherwise.\n"
      "\n"
      "  --benchmarks      lint every built-in paper benchmark with its\n"
      "                    Table 2 allocation instead of an input file\n"
      "  --equiv           also prove each controller's synthesis chain\n"
      "                    equivalent (spec = cover = netlist = emitted RTL)\n"
      "                    with a SAT miter per function (rules EQV*)\n"
      "  --timing          also run static timing analysis over every\n"
      "                    controller netlist against CC_TAU (rules TIM*)\n"
      "  --xprop           also run the X-propagation / reset-robustness\n"
      "                    analysis (ternary power-on simulation + RTL\n"
      "                    ternary replay, rules XPR*) and the don't-care\n"
      "                    soundness proof of the minimized covers (SAT +\n"
      "                    k-induction, rules DCS*)\n"
      "  --only RULES      keep only the listed rule codes (comma list,\n"
      "                    e.g. XPR001,DCS002); filtered-out rules that\n"
      "                    fired are reported as skipped in the JSON\n"
      "  --lint-json FILE  also write all diagnostics as JSON\n"
      "                    ({\"schema\":\"tauhls-lint\",\"version\":5} with\n"
      "                    per-rule counts, SAT cost, per-property symbolic\n"
      "                    and xprop verdicts, and skipped rules)\n"
      "  (--alloc, --strategy, --encoding, --no-signal-opt, --model-check,\n"
      "  --max-states, --store and --trace-json apply as above; lint\n"
      "  evaluates only the verification passes, never the latency or area\n"
      "  model)\n"
      "\n"
      "subcommand: tauhlsc cache (stat | gc) --store DIR [options]\n"
      "\n"
      "Inspect or garbage-collect a persistent artifact store.\n"
      "\n"
      "  stat              print the store report (blob count, bytes, hit\n"
      "                    counters) as schema-versioned JSON\n"
      "  gc                evict least-recently-used blobs until the store\n"
      "                    fits --max-bytes (0 = empty the store)\n"
      "  --max-bytes N     gc target size in bytes (default 0)\n"
      "  --json FILE       also write the JSON report to FILE\n";
}

sched::Allocation parseAllocationSpec(const std::string& spec) {
  sched::Allocation alloc;
  for (const std::string& part : split(spec, ',')) {
    const std::vector<std::string> kv = split(part, '=');
    TAUHLS_CHECK(kv.size() == 2, "malformed allocation entry '" + part + "'");
    dfg::ResourceClass cls;
    const std::string key = trim(kv[0]);
    if (key == "mult") cls = dfg::ResourceClass::Multiplier;
    else if (key == "add") cls = dfg::ResourceClass::Adder;
    else if (key == "sub") cls = dfg::ResourceClass::Subtractor;
    else if (key == "div") cls = dfg::ResourceClass::Divider;
    else if (key == "logic") cls = dfg::ResourceClass::Logic;
    else TAUHLS_FAIL("unknown resource class '" + key + "'");
    int count = 0;
    try {
      count = std::stoi(trim(kv[1]));
    } catch (const std::exception&) {
      TAUHLS_FAIL("invalid unit count in '" + part + "'");
    }
    TAUHLS_CHECK(count >= 1, "unit count must be >= 1 in '" + part + "'");
    alloc[cls] = count;
  }
  return alloc;
}

dfg::BranchChoices parseBranchesSpec(const std::string& spec) {
  dfg::BranchChoices choices;
  for (const std::string& part : split(spec, ',')) {
    const std::vector<std::string> kv = split(part, '=');
    TAUHLS_CHECK(kv.size() == 2, "malformed branch entry '" + part +
                                     "' (expected PATH=then|else)");
    const std::string value = trim(kv[1]);
    if (value == "then") choices[trim(kv[0])] = true;
    else if (value == "else") choices[trim(kv[0])] = false;
    else TAUHLS_FAIL("branch must be 'then' or 'else' in '" + part + "'");
  }
  return choices;
}

std::optional<CliOptions> parseCli(const std::vector<std::string>& args,
                                   std::string& error) {
  CliOptions o;
  auto needValue = [&](std::size_t& i) -> std::optional<std::string> {
    if (i + 1 >= args.size()) {
      error = "missing value after " + args[i];
      return std::nullopt;
    }
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      o.showHelp = true;
      return o;
    } else if (i == 0 && a == "lint") {
      o.lint = true;
    } else if (i == 0 && a == "flow") {
      // The default subcommand, accepted explicitly: `tauhlsc flow x.dfg`.
    } else if (i == 0 && a == "cache") {
      if (i + 1 >= args.size()) {
        error = "cache needs an action: stat or gc";
        return std::nullopt;
      }
      const std::string& action = args[++i];
      if (action == "stat") o.cacheStat = true;
      else if (action == "gc") o.cacheGc = true;
      else {
        error = "unknown cache action '" + action + "' (expected stat or gc)";
        return std::nullopt;
      }
    } else if (a == "--store") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      o.storeDir = *v;
    } else if (a == "--store-max-bytes" || a == "--max-bytes") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      if ((a == "--max-bytes") != (o.cacheStat || o.cacheGc)) {
        error = a == "--max-bytes"
                    ? "--max-bytes is only valid with the cache subcommand"
                    : "--store-max-bytes is not valid with the cache "
                      "subcommand (use --max-bytes)";
        return std::nullopt;
      }
      try {
        o.storeMaxBytes = std::stoull(*v);
      } catch (const std::exception&) {
        error = "invalid byte count '" + *v + "'";
        return std::nullopt;
      }
    } else if (a == "--benchmarks") {
      if (!o.lint) {
        error = "--benchmarks is only valid with the lint subcommand";
        return std::nullopt;
      }
      o.lintBenchmarks = true;
    } else if (a == "--equiv") {
      if (!o.lint) {
        error = "--equiv is only valid with the lint subcommand";
        return std::nullopt;
      }
      o.lintEquiv = true;
    } else if (a == "--timing") {
      if (!o.lint) {
        error = "--timing is only valid with the lint subcommand";
        return std::nullopt;
      }
      o.lintTiming = true;
    } else if (a == "--xprop") {
      if (!o.lint) {
        error = "--xprop is only valid with the lint subcommand";
        return std::nullopt;
      }
      o.lintXprop = true;
    } else if (a == "--only") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      if (!o.lint) {
        error = "--only is only valid with the lint subcommand";
        return std::nullopt;
      }
      o.lintOnly = *v;
    } else if (a == "--lint-json") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      if (!o.lint) {
        error = "--lint-json is only valid with the lint subcommand";
        return std::nullopt;
      }
      o.lintJsonPath = *v;
    } else if (a == "--alloc") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      try {
        o.allocation = parseAllocationSpec(*v);
      } catch (const Error& e) {
        error = e.what();
        return std::nullopt;
      }
    } else if (a == "--p") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      o.ps.clear();
      for (const std::string& p : split(*v, ',')) {
        try {
          o.ps.push_back(std::stod(p));
        } catch (const std::exception&) {
          error = "invalid P value '" + p + "'";
          return std::nullopt;
        }
      }
      if (o.ps.empty()) {
        error = "empty P list";
        return std::nullopt;
      }
    } else if (a == "--branches") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      try {
        parseBranchesSpec(*v);  // validate now, resolve against the design later
      } catch (const Error& e) {
        error = e.what();
        return std::nullopt;
      }
      o.branchesSpec = *v;
    } else if (a == "--strategy") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      if (*v == "leftedge") o.strategy = sched::BindingStrategy::LeftEdge;
      else if (*v == "clique") o.strategy = sched::BindingStrategy::CliqueCover;
      else {
        error = "unknown strategy '" + *v + "'";
        return std::nullopt;
      }
    } else if (a == "--encoding") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      if (*v == "binary") o.encoding = synth::EncodingStyle::Binary;
      else if (*v == "onehot") o.encoding = synth::EncodingStyle::OneHot;
      else {
        error = "unknown encoding '" + *v + "' (expected binary or onehot)";
        return std::nullopt;
      }
    } else if (a == "--model-check" || a.rfind("--model-check=", 0) == 0) {
      std::string v;
      if (a == "--model-check") {
        auto value = needValue(i);
        if (!value) return std::nullopt;
        v = *value;
      } else {
        v = a.substr(std::string("--model-check=").size());
      }
      if (v == "explicit") o.modelCheck = ModelCheckMode::Explicit;
      else if (v == "symbolic") o.modelCheck = ModelCheckMode::Symbolic;
      else if (v == "auto") o.modelCheck = ModelCheckMode::Auto;
      else {
        error = "unknown model-check engine '" + v +
                "' (expected explicit, symbolic or auto)";
        return std::nullopt;
      }
    } else if (a == "--max-states") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      std::size_t n = 0;
      try {
        n = std::stoull(*v);
      } catch (const std::exception&) {
        n = 0;
      }
      if (n < 1) {
        error = "invalid state bound '" + *v + "'";
        return std::nullopt;
      }
      o.maxStates = n;
    } else if (a == "--no-signal-opt") {
      o.signalOpt = false;
    } else if (a == "--cent-fsm") {
      o.centFsm = true;
    } else if (a == "--table1") {
      o.table1 = true;
    } else if (a == "--no-table2") {
      o.table2 = false;
    } else if (a == "--verilog") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      o.verilogPath = *v;
    } else if (a == "--testbench") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      o.testbenchPath = *v;
    } else if (a == "--json") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      if (o.cacheStat || o.cacheGc) o.storeJsonPath = *v;
      else o.jsonPath = *v;
    } else if (a == "--kiss") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      o.kissPrefix = *v;
    } else if (a == "--dot") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      o.dotPath = *v;
    } else if (a == "--trace-json") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      o.traceJsonPath = *v;
    } else if (a == "--threads") {
      auto v = needValue(i);
      if (!v) return std::nullopt;
      int n = 0;
      try {
        n = std::stoi(*v);
      } catch (const std::exception&) {
        n = 0;
      }
      if (n < 1) {
        error = "invalid thread count '" + *v + "'";
        return std::nullopt;
      }
      o.threads = n;
    } else if (!a.empty() && a[0] == '-') {
      error = "unknown option " + a;
      return std::nullopt;
    } else if (o.inputPath.empty()) {
      o.inputPath = a;
    } else {
      error = "unexpected extra argument " + a;
      return std::nullopt;
    }
  }
  if (o.cacheStat || o.cacheGc) {
    if (o.storeDir.empty()) {
      error = "cache needs --store DIR";
      return std::nullopt;
    }
    if (!o.inputPath.empty()) {
      error = "cache takes no input file";
      return std::nullopt;
    }
    return o;
  }
  if (o.inputPath.empty() && !o.lintBenchmarks) {
    error = "no input file (try --help)";
    return std::nullopt;
  }
  if (o.lintBenchmarks && !o.inputPath.empty()) {
    error = "lint takes either an input file or --benchmarks, not both";
    return std::nullopt;
  }
  return o;
}

namespace {

/// Build the artifact cache for one CLI invocation: always an in-memory
/// tier, plus the persistent disk tier when --store was given.
std::shared_ptr<ArtifactCache> makeCache(const CliOptions& options) {
  auto cache = std::make_shared<ArtifactCache>();
  if (!options.storeDir.empty()) {
    StoreOptions so;
    so.dir = options.storeDir;
    so.maxBytes = options.storeMaxBytes;
    cache->attachStore(std::make_shared<ArtifactStore>(so));
  }
  return cache;
}

/// `tauhlsc cache stat|gc`: inspect or shrink a persistent store without
/// running any flow.
int runCacheCommand(const CliOptions& options, std::ostream& out,
                    std::ostream& err) {
  try {
    StoreOptions so;
    so.dir = options.storeDir;
    ArtifactStore store(so);
    if (options.cacheGc) {
      const std::uint64_t evicted = store.gc(options.storeMaxBytes);
      out << "evicted " << evicted << " bytes (target "
          << options.storeMaxBytes << ")\n";
    }
    const std::string json = renderStoreJson(store.stats());
    out << json << "\n";
    if (!options.storeJsonPath.empty()) {
      std::ofstream j(options.storeJsonPath);
      TAUHLS_CHECK(static_cast<bool>(j),
                   "cannot open " + options.storeJsonPath);
      j << json << "\n";
    }
    return 0;
  } catch (const Error& e) {
    err << "tauhlsc: " << e.what() << "\n";
    return 1;
  }
}

/// Read `path` and derive the design name from its basename sans extension.
std::string readDesign(const std::string& path, std::string& name) {
  std::ifstream in(path);
  TAUHLS_CHECK(static_cast<bool>(in), "cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (auto dot = name.find_last_of('.'); dot != std::string::npos) {
    name = name.substr(0, dot);
  }
  return buffer.str();
}

/// Parse and validate `lint --only RULE[,RULE...]`; unknown codes are a CLI
/// error (better a hard failure than silently filtering everything out).
std::vector<std::string> parseOnlyCodes(const std::string& spec) {
  std::vector<std::string> codes;
  if (spec.empty()) return codes;
  for (const std::string& code : split(spec, ',')) {
    TAUHLS_CHECK(verify::findRule(code) != nullptr,
                 "--only: unknown rule code '" + code + "'");
    codes.push_back(code);
  }
  return codes;
}

/// Keep only diagnostics whose rule code is listed (empty list = keep all);
/// the codes of everything dropped accumulate in `skippedCodes` so the JSON
/// can report what the filter suppressed.
verify::Report applyOnlyFilter(const verify::Report& report,
                               const std::vector<std::string>& codes,
                               std::set<std::string>& skippedCodes) {
  if (codes.empty()) return report;
  verify::Report kept;
  for (const verify::Diagnostic& d : report.diagnostics()) {
    if (std::find(codes.begin(), codes.end(), d.code) != codes.end()) {
      kept.addDiagnostic(d);
    } else {
      skippedCodes.insert(d.code);
    }
  }
  return kept;
}

/// Lint a hierarchical design through the composed flow (diagnostics only:
/// per-leaf pipelines, cross-region checks, sequencer handshake).
int runLintHierarchical(const CliOptions& options,
                        const dfg::RegionProgram& program,
                        const std::string& name, std::ostream& out,
                        std::ostream& err) {
  if (options.lintTiming) {
    err << "tauhlsc: --timing has no composed form yet; lint the leaf "
           "regions as flat designs for TIM rules\n";
    return 1;
  }
  FlowConfig cfg;
  cfg.allocation = options.allocation;
  cfg.strategy = options.strategy;
  cfg.encoding = options.encoding;
  cfg.optimizeSignals = options.signalOpt;
  cfg.verifyMaxStates = options.maxStates ? options.maxStates : 200000;
  cfg.modelCheck = options.modelCheck;
  const std::vector<std::string> onlyCodes = parseOnlyCodes(options.lintOnly);
  HierFlowOptions ho;
  ho.branches = parseBranchesSpec(options.branchesSpec);
  ho.equivalence = options.lintEquiv;
  ho.xprop = options.lintXprop;
  ho.latency = false;    // diagnostics only
  ho.gateErrors = false; // report, don't throw; the exit code is the gate
  const HierFlowResult r =
      runHierFlow(program, cfg, ho, makeCache(options));
  if (options.lintXprop) {
    out << "-- " << name << ": x-safety over " << r.xpropStats.controllers
        << " controllers, reset depth " << r.xpropStats.resetDepth << ", "
        << r.xpropStats.instances << " power-on instances; "
        << r.dcsStats.dcFunctions << "/" << r.dcsStats.functionsChecked
        << " covers exploit don't-cares --\n";
  }
  std::set<std::string> skippedCodes;
  const verify::Report filtered =
      applyOnlyFilter(r.diagnostics, onlyCodes, skippedCodes);
  out << "== " << name << " ==\n" << verify::renderText(filtered) << "\n";
  if (!options.lintJsonPath.empty()) {
    std::ofstream j(options.lintJsonPath);
    TAUHLS_CHECK(static_cast<bool>(j), "cannot open " + options.lintJsonPath);
    verify::JsonSections sections;
    for (const auto& [code, cost] : r.xpropStats.ruleCost()) {
      sections.satCost[code] += cost;
    }
    for (const auto& [code, cost] : r.dcsStats.ruleCost()) {
      sections.satCost[code] += cost;
    }
    sections.xprop = r.xpropStats.properties;
    sections.xprop.insert(sections.xprop.end(), r.dcsStats.properties.begin(),
                          r.dcsStats.properties.end());
    sections.skipped.assign(skippedCodes.begin(), skippedCodes.end());
    j << verify::renderJson(filtered, sections) << "\n";
    out << "wrote lint JSON to " << options.lintJsonPath << "\n";
  }
  return filtered.hasErrors() ? 1 : 0;
}

/// `tauhlsc lint`: run the static checker over one design or the whole
/// benchmark suite; exit 1 on any error-severity diagnostic.
///
/// Lint drives the pass pipeline demand-first: it requests only the
/// Diagnostics artifact, so the closure it evaluates is schedule ->
/// controllers -> verify -- the latency statistics and the area model never
/// run, no matter how large the design.
int runLint(const CliOptions& options, std::ostream& out, std::ostream& err) {
  try {
    std::vector<dfg::NamedBenchmark> designs;
    if (options.lintBenchmarks) {
      designs = dfg::paperTable2Suite();
    } else {
      std::string name;
      const std::string text = readDesign(options.inputPath, name);
      const dfg::RegionProgram program = dfg::parseProgram(text, name);
      if (!program.isFlat()) {
        return runLintHierarchical(options, program, name, out, err);
      }
      designs.push_back({name, program.root.body, options.allocation});
    }

    verify::Report all;
    verify::EquivStats allEquiv;
    std::map<std::string, verify::RuleCost> satCost;
    std::vector<verify::SymbolicPropertyStat> symbolicRows;
    std::vector<verify::XpropPropertyStat> xpropRows;
    const std::vector<std::string> onlyCodes = parseOnlyCodes(options.lintOnly);
    std::set<std::string> skippedCodes;
    std::vector<TracedRun> traces;
    const std::shared_ptr<ArtifactCache> cache = makeCache(options);
    for (const dfg::NamedBenchmark& b : designs) {
      FlowConfig cfg;
      cfg.allocation = b.allocation;
      cfg.strategy = options.strategy;
      cfg.encoding = options.encoding;
      cfg.optimizeSignals = options.signalOpt;
      // The CLI is a one-shot audit: use the full exploration budget rather
      // than the flow gate's fast default.
      cfg.verifyMaxStates = options.maxStates ? options.maxStates : 200000;
      cfg.modelCheck = options.modelCheck;
      FlowPipeline pipeline(b.graph, cfg, cache);
      verify::Report report = pipeline.modelCheckedDiagnostics();
      if (pipeline.has(Artifact::SymbolicCheck)) {
        const auto& sym =
            pipeline.get<verify::SymbolicArtifact>(Artifact::SymbolicCheck);
        std::size_t proved = 0;
        for (const verify::SymbolicProperty& p : sym.stats.properties) {
          if (p.verdict == verify::PropertyVerdict::Proved) ++proved;
        }
        out << "-- " << b.name << ": symbolic model check over "
            << sym.stats.controllers << " controllers, " << sym.stats.stateBits
            << " state bits, " << proved << "/" << sym.stats.properties.size()
            << " proved --\n";
        for (const auto& [code, cost] : sym.stats.ruleCost()) {
          satCost[code] += cost;
        }
        const std::vector<verify::SymbolicPropertyStat> rows =
            sym.stats.jsonStats();
        symbolicRows.insert(symbolicRows.end(), rows.begin(), rows.end());
      }
      if (options.lintEquiv) {
        const auto& eq =
            pipeline.get<verify::EquivalenceArtifact>(Artifact::Equivalence);
        report.merge(eq.report);
        allEquiv += eq.stats;
        out << "-- " << b.name << ": equivalence over " << eq.stats.controllers
            << " controllers, " << eq.stats.functionsCompared
            << " functions, " << eq.stats.satConflicts
            << " SAT conflicts --\n";
      }
      if (options.lintTiming) {
        report.merge(pipeline.get<verify::Report>(Artifact::Timing));
      }
      if (options.lintXprop) {
        const auto& xc = pipeline.get<verify::XCheckArtifact>(Artifact::XCheck);
        report.merge(xc.report);
        out << "-- " << b.name << ": x-safety over " << xc.xprop.controllers
            << " controllers, " << (xc.xprop.stateBits + xc.xprop.latchBits)
            << " registers, reset depth " << xc.xprop.resetDepth << ", "
            << xc.xprop.instances << " power-on instances; "
            << xc.dcs.dcFunctions << "/" << xc.dcs.functionsChecked
            << " covers exploit don't-cares --\n";
        for (const auto& [code, cost] : xc.xprop.ruleCost()) {
          satCost[code] += cost;
        }
        for (const auto& [code, cost] : xc.dcs.ruleCost()) {
          satCost[code] += cost;
        }
        xpropRows.insert(xpropRows.end(), xc.xprop.properties.begin(),
                         xc.xprop.properties.end());
        xpropRows.insert(xpropRows.end(), xc.dcs.properties.begin(),
                         xc.dcs.properties.end());
      }
      report = applyOnlyFilter(report, onlyCodes, skippedCodes);

      out << "== " << b.name << " ==\n" << verify::renderText(report) << "\n";
      all.merge(report);
      traces.push_back({b.name, pipeline.traceEvents()});
    }

    if (!options.lintJsonPath.empty()) {
      std::ofstream j(options.lintJsonPath);
      TAUHLS_CHECK(static_cast<bool>(j),
                   "cannot open " + options.lintJsonPath);
      for (const auto& [code, cost] : allEquiv.ruleCost) satCost[code] += cost;
      verify::JsonSections sections;
      sections.satCost = satCost;
      sections.symbolic = symbolicRows;
      sections.xprop = xpropRows;
      sections.skipped.assign(skippedCodes.begin(), skippedCodes.end());
      j << verify::renderJson(all, sections) << "\n";
      out << "wrote lint JSON to " << options.lintJsonPath << "\n";
    }
    if (!options.traceJsonPath.empty()) {
      std::ofstream t(options.traceJsonPath);
      TAUHLS_CHECK(static_cast<bool>(t),
                   "cannot open " + options.traceJsonPath);
      t << traceToChromeJson(traces);
      out << "wrote pipeline trace to " << options.traceJsonPath << "\n";
    }
    if (!options.storeDir.empty()) {
      out << "cache: " << formatCacheSummary(cache->stats()) << "\n";
    }
    return all.hasErrors() ? 1 : 0;
  } catch (const Error& e) {
    err << "tauhlsc: " << e.what() << "\n";
    return 1;
  }
}

/// `tauhlsc flow` on a hierarchical design: composed controllers + composed
/// Table 2.  Outputs with no composed form are rejected up front.
int runFlowHierarchical(const CliOptions& options,
                        const dfg::RegionProgram& program,
                        const std::string& name, std::ostream& out,
                        std::ostream& err) {
  const std::vector<std::pair<bool, const char*>> unsupported = {
      {options.centFsm, "--cent-fsm"},
      {options.table1, "--table1"},
      {!options.verilogPath.empty(), "--verilog"},
      {!options.testbenchPath.empty(), "--testbench"},
      {!options.jsonPath.empty(), "--json"},
      {!options.kissPrefix.empty(), "--kiss"},
      {!options.traceJsonPath.empty(), "--trace-json"},
  };
  for (const auto& [given, flag] : unsupported) {
    if (given) {
      err << "tauhlsc: " << flag
          << " has no composed form yet; run it on the flat leaf designs or "
             "drop the flag for hierarchical input\n";
      return 1;
    }
  }
  try {
    FlowConfig cfg;
    cfg.allocation = options.allocation;
    cfg.ps = options.ps;
    cfg.strategy = options.strategy;
    cfg.encoding = options.encoding;
    cfg.optimizeSignals = options.signalOpt;
    cfg.synthesizeArea = false;
    cfg.modelCheck = options.modelCheck;
    if (options.maxStates) cfg.verifyMaxStates = options.maxStates;
    HierFlowOptions ho;
    ho.branches = parseBranchesSpec(options.branchesSpec);
    const std::shared_ptr<ArtifactCache> cache = makeCache(options);
    const HierFlowResult r = runHierFlow(program, cfg, ho, cache);

    out << "tauhlsc: " << r.schedule.leaves.size() << " leaf regions, "
        << r.activations.size() << " activations, clock "
        << r.schedule.clockNs() << " ns\n\n";
    if (options.table2) out << formatComposedTable2Row(name, r) << "\n";

    if (!options.dotPath.empty()) {
      std::ofstream d(options.dotPath);
      TAUHLS_CHECK(static_cast<bool>(d), "cannot open " + options.dotPath);
      d << dfg::toDot(program);
      out << "wrote DOT to " << options.dotPath << "\n";
    }
    if (!options.storeDir.empty()) {
      out << "cache: " << formatCacheSummary(cache->stats()) << "\n";
    }
    return 0;
  } catch (const Error& e) {
    err << "tauhlsc: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int runCli(const CliOptions& options, std::ostream& out, std::ostream& err) {
  if (options.showHelp) {
    out << cliHelp();
    return 0;
  }
  if (options.threads > 0) common::setGlobalThreadCount(options.threads);
  if (options.cacheStat || options.cacheGc) {
    return runCacheCommand(options, out, err);
  }
  if (options.lint) return runLint(options, out, err);

  try {
    std::string name;
    const std::string text = readDesign(options.inputPath, name);
    const dfg::RegionProgram program = dfg::parseProgram(text, name);
    if (!program.isFlat()) {
      return runFlowHierarchical(options, program, name, out, err);
    }
    const dfg::Dfg& graph = program.root.body;

    FlowConfig cfg;
    cfg.allocation = options.allocation;
    cfg.ps = options.ps;
    cfg.strategy = options.strategy;
    cfg.encoding = options.encoding;
    cfg.optimizeSignals = options.signalOpt;
    cfg.buildCentFsm = options.centFsm;
    cfg.synthesizeArea = options.table1;
    cfg.modelCheck = options.modelCheck;
    if (options.maxStates) cfg.verifyMaxStates = options.maxStates;
    FlowPipeline pipeline(graph, cfg, makeCache(options));
    const FlowResult r = pipeline.run();

    out << "tauhlsc: " << graph.numOps() << " ops, "
        << r.distributed.controllers.size() << " controllers, clock "
        << r.scheduled.clockNs << " ns, allocation "
        << formatAllocation(r.scheduled) << "\n\n";
    if (options.table2) out << formatTable2Row(name, r) << "\n";
    if (options.table1) out << formatTable1(r) << "\n";

    if (!options.verilogPath.empty()) {
      std::ofstream v(options.verilogPath);
      TAUHLS_CHECK(static_cast<bool>(v), "cannot open " + options.verilogPath);
      // Through the pipeline rather than emitVerilog() so the emission is a
      // traced, cacheable pass like every other stage.
      v << pipeline.get<std::string>(Artifact::Rtl);
      out << "wrote Verilog to " << options.verilogPath << "\n";
    }
    if (!options.testbenchPath.empty()) {
      const sim::SimTrace trace = sim::runDistributed(
          r.distributed, r.scheduled, sim::allShort(r.scheduled));
      std::ofstream tb(options.testbenchPath);
      TAUHLS_CHECK(static_cast<bool>(tb),
                   "cannot open " + options.testbenchPath);
      tb << rtl::emitTestbench(r.distributed, trace,
                               "dcu_" + graph.name());
      out << "wrote testbench to " << options.testbenchPath << "\n";
    }
    if (!options.jsonPath.empty()) {
      std::ofstream j(options.jsonPath);
      TAUHLS_CHECK(static_cast<bool>(j), "cannot open " + options.jsonPath);
      j << toJson(r) << "\n";
      out << "wrote JSON report to " << options.jsonPath << "\n";
    }
    if (!options.kissPrefix.empty()) {
      for (const fsm::UnitController& c : r.distributed.controllers) {
        const std::string path = options.kissPrefix + "_" + c.fsm.name() + ".kiss2";
        std::ofstream k(path);
        TAUHLS_CHECK(static_cast<bool>(k), "cannot open " + path);
        k << fsm::toKiss2(c.fsm);
        out << "wrote " << path << "\n";
      }
    }
    if (!options.dotPath.empty()) {
      std::ofstream d(options.dotPath);
      TAUHLS_CHECK(static_cast<bool>(d), "cannot open " + options.dotPath);
      d << dfg::toDot(r.scheduled.graph);
      out << "wrote DOT to " << options.dotPath << "\n";
    }
    if (!options.traceJsonPath.empty()) {
      std::ofstream t(options.traceJsonPath);
      TAUHLS_CHECK(static_cast<bool>(t),
                   "cannot open " + options.traceJsonPath);
      t << traceToChromeJson({{graph.name(), pipeline.traceEvents()}});
      out << "wrote pipeline trace to " << options.traceJsonPath << "\n";
    }
    return 0;
  } catch (const Error& e) {
    err << "tauhlsc: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace tauhls::core
