// JSON export of flow results, for downstream tooling (dashboards, report
// diffs, CI trend tracking).  No external dependency: a minimal escaping
// writer lives in the implementation.
#pragma once

#include <string>

#include "core/flow.hpp"

namespace tauhls::core {

/// Serialize a flow result: design summary, latency comparison (best/avg per
/// P/worst + enhancement), area rows when synthesized, signal-optimization
/// stats and controller inventory.
std::string toJson(const FlowResult& result);

/// Escape a string for embedding in JSON (quotes, backslashes, control
/// characters); exposed for tests.
std::string jsonEscape(const std::string& s);

}  // namespace tauhls::core
