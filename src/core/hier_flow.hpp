// The hierarchical synthesis flow: one FlowPipeline per leaf region, a
// shared TAU allocation, and the region sequencer composing the per-leaf
// controller networks.
//
//   dfg::RegionProgram prog = dfg::parseProgram(text, "fir_iir");
//   core::FlowConfig cfg;        // same knobs as the flat flow
//   core::HierFlowResult r = core::runHierFlow(prog, cfg);
//
// Per-region incremental recompilation falls out of the artifact cache: each
// leaf is compiled by its own FlowPipeline keyed on that leaf's fingerprint,
// so when a cache (optionally store-backed) is attached, editing one loop
// body re-runs only that region's passes -- every untouched leaf's schedule,
// controllers and verification are cache hits.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "dfg/region.hpp"
#include "fsm/hierarchical.hpp"
#include "sched/region_schedule.hpp"
#include "sim/region_sim.hpp"
#include "verify/xprop_check.hpp"

namespace tauhls::core {

struct HierFlowOptions {
  /// Branch selection per conditional region path; conditionals without an
  /// entry take the then-branch (the CLI --branches default).
  dfg::BranchChoices branches;
  /// Also run the demand-only SAT equivalence pass on every leaf's
  /// controller network (spec = cover = netlist = RTL).
  bool equivalence = false;
  /// Also run the X-propagation / don't-care soundness checks: XPR003 on the
  /// composed sequencer + handshake latches, XPR001/XPR002 on every leaf
  /// network re-anchored to its path, and DCS001-003 on the sequencer FSM
  /// and every leaf controller.
  bool xprop = false;
  /// Compute the composed latency statistics (full per-leaf enumeration).
  /// Lint-style callers that only want diagnostics turn this off.
  bool latency = true;
  /// Throw the standard verification error on error-severity diagnostics
  /// (when config.verify is set).  Lint-style callers turn this off and
  /// inspect `diagnostics` themselves; the region-structure check
  /// (DFG009/DFG010) always throws -- nothing downstream is defined on a
  /// malformed tree.
  bool gateErrors = true;
};

struct HierFlowResult {
  sched::RegionSchedule schedule;            ///< per-leaf schedules, shared allocation
  fsm::HierarchicalControlUnit control;      ///< leaf networks + sequencer
  sim::LatencyComparison latency;            ///< composed Table-2 statistics
  verify::Report diagnostics;                ///< per-leaf + cross-region checks
  std::vector<std::string> activations;      ///< sequencer activation paths
  dfg::BranchChoices branches;               ///< completed choices used
  int totalTauOps = 0;                       ///< TAU ops along the activation trace
  verify::XpropStats xpropStats;             ///< filled when options.xprop
  verify::DcsStats dcsStats;                 ///< filled when options.xprop
};

/// Run the composed flow.  Validates the region program (DFG009/DFG010
/// throw), compiles every leaf through a FlowPipeline sharing `cache`,
/// assembles the shared-allocation RegionSchedule, builds the composed
/// controllers, cross-checks them (SCH012, MDL009/MDL010) and measures the
/// composed latency statistics.  When config.verify is set, any
/// error-severity diagnostic throws the flow's standard verification error.
HierFlowResult runHierFlow(const dfg::RegionProgram& program,
                           const FlowConfig& config,
                           const HierFlowOptions& options = {},
                           std::shared_ptr<ArtifactCache> cache = nullptr);

}  // namespace tauhls::core
