#include "core/store.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "common/error.hpp"
#include "core/serialize.hpp"

namespace tauhls::core {

namespace fs = std::filesystem;

namespace {

// Blob header, serialized little-endian field by field (never memcpy'd as a
// struct, so padding and host endianness cannot leak into the format).
//
//   magic            "TAUS"
//   formatVersion    kStoreFormatVersion
//   codecVersion     kArtifactCodecVersion (serialize.hpp)
//   kindTag          Artifact enum value the payload decodes as
//   payloadSize      bytes following the header
//   checksum         common::Hasher fingerprint of the payload bytes
constexpr std::uint32_t kBlobMagic = 0x53554154;  // "TAUS"
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 4 + 8 + 16;

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t getU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t getU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

common::Fingerprint payloadChecksum(const std::vector<std::uint8_t>& payload) {
  common::Hasher h;
  h.str("tauhls-store-blob");
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

std::optional<common::Fingerprint> parseHex(const std::string& hex) {
  if (hex.size() != 32) return std::nullopt;
  std::uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(w * 16 + i)];
      std::uint64_t nibble = 0;
      if (c >= '0' && c <= '9') nibble = static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') nibble = static_cast<std::uint64_t>(c - 'a' + 10);
      else return std::nullopt;
      words[w] = (words[w] << 4) | nibble;
    }
  }
  return common::Fingerprint{words[0], words[1]};
}

}  // namespace

std::string renderStoreJson(const StoreStats& s) {
  std::ostringstream os;
  os << "{\"schema\":\"tauhls-store\",\"version\":" << kStoreJsonVersion
     << ",\"formatVersion\":" << kStoreFormatVersion
     << ",\"codecVersion\":" << kArtifactCodecVersion
     << ",\"blobs\":" << s.blobs
     << ",\"bytes\":" << s.bytes
     << ",\"maxBytes\":" << s.maxBytes
     << ",\"hits\":" << s.hits
     << ",\"misses\":" << s.misses
     << ",\"corrupt\":" << s.corrupt
     << ",\"puts\":" << s.puts
     << ",\"evictedBlobs\":" << s.evictedBlobs
     << ",\"evictedBytes\":" << s.evictedBytes << "}";
  return os.str();
}

ArtifactStore::ArtifactStore(StoreOptions options)
    : dir_(std::move(options.dir)), maxBytes_(options.maxBytes) {
  std::error_code ec;
  fs::create_directories(dir_ / "blobs", ec);
  TAUHLS_CHECK(!ec, "artifact store: cannot create " +
                        (dir_ / "blobs").string() + ": " + ec.message());
  fs::create_directories(dir_ / "tmp", ec);
  TAUHLS_CHECK(!ec, "artifact store: cannot create " +
                        (dir_ / "tmp").string() + ": " + ec.message());
  std::lock_guard<std::mutex> lock(mu_);
  loadIndexLocked();
}

ArtifactStore::~ArtifactStore() {
  std::lock_guard<std::mutex> lock(mu_);
  try {
    flushIndexLocked();
  } catch (...) {
    // Destructor must not throw; a lost index is rebuilt by the next open.
  }
}

fs::path ArtifactStore::blobPath(const common::Fingerprint& key) const {
  return dir_ / "blobs" / (key.toHex() + ".blob");
}

void ArtifactStore::loadIndexLocked() {
  entries_.clear();
  totalBytes_ = 0;
  std::ifstream in(dir_ / "index.txt");
  bool usable = false;
  if (in) {
    std::string tag;
    std::uint32_t version = 0;
    if (in >> tag >> version && tag == "tauhls-store-index" &&
        version == kStoreFormatVersion) {
      usable = true;
      std::string hex;
      std::uint32_t kind = 0;
      std::uint64_t size = 0, seq = 0;
      while (in >> hex >> kind >> size >> seq) {
        const auto key = parseHex(hex);
        if (!key) {
          usable = false;
          break;
        }
        entries_[*key] = Entry{size, seq, kind};
        totalBytes_ += size;
        nextSeq_ = std::max(nextSeq_, seq + 1);
      }
    }
  }
  if (!usable) {
    rebuildIndexFromScanLocked();
    return;
  }
  // Reconcile against the blob directory: another process may have added or
  // evicted blobs since the index was written.  The index only contributes
  // the LRU sequence numbers; existence and sizes come from the filesystem.
  std::vector<common::Fingerprint> stale;
  for (const auto& [key, entry] : entries_) {
    std::error_code ec;
    const auto size = fs::file_size(blobPath(key), ec);
    if (ec) {
      stale.push_back(key);
    } else if (size != entry.size) {
      totalBytes_ += size - entry.size;
      entries_[key].size = size;
    }
  }
  for (const common::Fingerprint& key : stale) {
    totalBytes_ -= entries_[key].size;
    entries_.erase(key);
  }
  std::error_code ec;
  for (const auto& file : fs::directory_iterator(dir_ / "blobs", ec)) {
    if (!file.is_regular_file()) continue;
    const auto key = parseHex(file.path().stem().string());
    if (!key || entries_.contains(*key)) continue;
    std::error_code sec;
    const auto size = fs::file_size(file.path(), sec);
    if (sec) continue;
    entries_[*key] = Entry{size, 0, 0};  // kind recovered on first load
    totalBytes_ += size;
  }
}

void ArtifactStore::rebuildIndexFromScanLocked() {
  entries_.clear();
  totalBytes_ = 0;
  std::error_code ec;
  for (const auto& file : fs::directory_iterator(dir_ / "blobs", ec)) {
    if (!file.is_regular_file()) continue;
    const auto key = parseHex(file.path().stem().string());
    if (!key) continue;
    std::error_code sec;
    const auto size = fs::file_size(file.path(), sec);
    if (sec) continue;
    entries_[*key] = Entry{size, 0, 0};
    totalBytes_ += size;
  }
}

void ArtifactStore::flushIndexLocked() {
  // Deterministic line order (sorted by hex key) keeps the index diffable.
  std::vector<std::pair<std::string, const Entry*>> lines;
  lines.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    lines.emplace_back(key.toHex(), &entry);
  }
  std::sort(lines.begin(), lines.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::ostringstream body;
  body << "tauhls-store-index " << kStoreFormatVersion << "\n";
  for (const auto& [hex, entry] : lines) {
    body << hex << " " << entry->kind << " " << entry->size << " "
         << entry->seq << "\n";
  }

  const fs::path tmp =
      dir_ / "tmp" / ("index." + std::to_string(++tmpCounter_) + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    TAUHLS_CHECK(static_cast<bool>(out),
                 "artifact store: cannot write " + tmp.string());
    out << body.str();
    out.flush();
    TAUHLS_CHECK(static_cast<bool>(out),
                 "artifact store: short write to " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, dir_ / "index.txt", ec);
  if (ec) fs::remove(tmp, ec);
}

void ArtifactStore::flushIndex() {
  std::lock_guard<std::mutex> lock(mu_);
  flushIndexLocked();
}

bool ArtifactStore::contains(const common::Fingerprint& key) const {
  std::error_code ec;
  return fs::exists(blobPath(key), ec);
}

std::optional<std::vector<std::uint8_t>> ArtifactStore::load(
    const common::Fingerprint& key, std::uint32_t kindTag) {
  const fs::path path = blobPath(key);

  std::string raw;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    raw = buffer.str();
  }

  auto reject = [&]() -> std::optional<std::vector<std::uint8_t>> {
    // Corrupted, truncated or mismatched blob: unlink so the slot is
    // rewritten cleanly by the recompute, and report a miss.
    std::error_code ec;
    fs::remove(path, ec);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.corrupt;
    ++stats_.misses;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      totalBytes_ -= it->second.size;
      entries_.erase(it);
    }
    return std::nullopt;
  };

  if (raw.size() < kHeaderBytes) return reject();
  const auto* p = reinterpret_cast<const std::uint8_t*>(raw.data());
  if (getU32(p) != kBlobMagic) return reject();
  if (getU32(p + 4) != kStoreFormatVersion) return reject();
  if (getU32(p + 8) != kArtifactCodecVersion) return reject();
  if (getU32(p + 12) != kindTag) return reject();
  const std::uint64_t payloadSize = getU64(p + 16);
  if (payloadSize != raw.size() - kHeaderBytes) return reject();
  const common::Fingerprint expected{getU64(p + 24), getU64(p + 32)};

  std::vector<std::uint8_t> payload(p + kHeaderBytes, p + raw.size());
  if (payloadChecksum(payload) != expected) return reject();

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  Entry& entry = entries_[key];
  entry.size = raw.size();
  entry.seq = nextSeq_++;
  entry.kind = kindTag;
  return payload;
}

void ArtifactStore::put(const common::Fingerprint& key, std::uint32_t kindTag,
                        const std::vector<std::uint8_t>& payload) {
  const fs::path path = blobPath(key);
  const std::uint64_t blobSize = kHeaderBytes + payload.size();

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Content-addressed: an existing entry already holds these bytes.
      it->second.seq = nextSeq_++;
      return;
    }
    if (maxBytes_ != 0 && totalBytes_ + blobSize > maxBytes_) {
      evictUntilLocked(maxBytes_ > blobSize ? maxBytes_ - blobSize : 0);
    }
  }

  std::string blob;
  blob.reserve(blobSize);
  putU32(blob, kBlobMagic);
  putU32(blob, kStoreFormatVersion);
  putU32(blob, kArtifactCodecVersion);
  putU32(blob, kindTag);
  putU64(blob, payload.size());
  const common::Fingerprint checksum = payloadChecksum(payload);
  putU64(blob, checksum.hi);
  putU64(blob, checksum.lo);
  blob.append(reinterpret_cast<const char*>(payload.data()), payload.size());

  fs::path tmp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tmp = dir_ / "tmp" /
          (key.toHex() + "." + std::to_string(++tmpCounter_) + ".tmp");
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    TAUHLS_CHECK(static_cast<bool>(out),
                 "artifact store: cannot write " + tmp.string());
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    TAUHLS_CHECK(static_cast<bool>(out),
                 "artifact store: short write to " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    TAUHLS_FAIL("artifact store: cannot publish " + path.string());
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.puts;
  if (!entries_.contains(key)) totalBytes_ += blobSize;
  entries_[key] = Entry{blobSize, nextSeq_++, kindTag};
}

void ArtifactStore::evictUntilLocked(std::uint64_t targetBytes) {
  while (totalBytes_ > targetBytes && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.seq < victim->second.seq) victim = it;
    }
    std::error_code ec;
    fs::remove(blobPath(victim->first), ec);
    totalBytes_ -= victim->second.size;
    ++stats_.evictedBlobs;
    stats_.evictedBytes += victim->second.size;
    entries_.erase(victim);
  }
}

std::uint64_t ArtifactStore::gc(std::uint64_t targetBytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t before = stats_.evictedBytes;
  evictUntilLocked(targetBytes);
  flushIndexLocked();
  return stats_.evictedBytes - before;
}

StoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats s = stats_;
  s.blobs = entries_.size();
  s.bytes = totalBytes_;
  s.maxBytes = maxBytes_;
  return s;
}

}  // namespace tauhls::core
