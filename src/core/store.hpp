// Persistent, disk-backed content-addressed artifact store -- the second
// cache tier beneath the in-memory ArtifactCache (core/pipeline.hpp).
//
// On-disk layout (everything lives under one user-chosen directory):
//
//   DIR/blobs/<32-hex-key>.blob   one artifact per file.  Self-describing
//                                 header: magic, codec version, artifact
//                                 kind, payload length, 128-bit payload
//                                 checksum -- then the payload bytes
//                                 (core/serialize.hpp encoding).
//   DIR/index.txt                 versioned LRU index ("tauhls-store-index 1"
//                                 header line; one "<hex> <kind> <bytes>
//                                 <seq>" line per blob).  Purely advisory:
//                                 a missing, stale or corrupted index is
//                                 rebuilt by scanning blobs/, never trusted
//                                 into a crash.
//   DIR/tmp/                      staging area for atomic writes.
//
// Durability and concurrency model:
//   * Writes are write-to-temp + atomic rename, so readers in other
//     processes only ever observe complete blobs; concurrent writers of the
//     same key race benignly (content-addressing makes both bytes
//     identical).
//   * Every load re-verifies the header and the payload checksum.  A
//     truncated, corrupted, kind-mismatched or version-mismatched blob is
//     deleted-on-sight and reported as a miss -- the pipeline recomputes,
//     never crashes.
//   * The store is size-bounded: when `maxBytes` > 0, inserting past the
//     bound evicts least-recently-used blobs first (access order is the
//     in-memory sequence counter, seeded from the index file, so LRU is
//     exact within a process and approximate across processes).
//
// The index format version and the blob codec version are independent knobs:
// bump kStoreFormatVersion when the layout here changes, and
// kArtifactCodecVersion (core/serialize.hpp) when an artifact's byte
// encoding changes.  Either mismatch quietly invalidates old blobs.
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"

namespace tauhls::core {

/// On-disk layout version (blob header + index file).
inline constexpr std::uint32_t kStoreFormatVersion = 1;

/// Version of the JSON document emitted by renderStoreJson.
inline constexpr int kStoreJsonVersion = 1;

struct StoreOptions {
  std::filesystem::path dir;    ///< store root; created when absent
  std::uint64_t maxBytes = 0;   ///< payload+header bound; 0 = unbounded
};

/// Aggregate counters: persistent occupancy plus this handle's activity.
struct StoreStats {
  std::uint64_t blobs = 0;         ///< blobs currently on disk
  std::uint64_t bytes = 0;         ///< total size of those blobs
  std::uint64_t maxBytes = 0;      ///< configured bound (0 = unbounded)
  std::uint64_t hits = 0;          ///< loads served (this handle)
  std::uint64_t misses = 0;        ///< loads not on disk (this handle)
  std::uint64_t corrupt = 0;       ///< blobs rejected by validation
  std::uint64_t puts = 0;          ///< blobs written (this handle)
  std::uint64_t evictedBlobs = 0;  ///< LRU evictions (this handle)
  std::uint64_t evictedBytes = 0;
};

/// Schema-versioned JSON report ({"schema":"tauhls-store","version":1,...})
/// for `tauhlsc cache stat` and CI artifact diffing.
std::string renderStoreJson(const StoreStats& stats);

class ArtifactStore {
 public:
  /// Opens (creating if needed) the store at options.dir and loads the LRU
  /// index, falling back to a directory scan when the index is unusable.
  /// Throws tauhls::Error when the directory cannot be created.
  explicit ArtifactStore(StoreOptions options);
  ~ArtifactStore();

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Fetch the payload stored under `key`, verifying the header against
  /// `kindTag` and the payload checksum.  Any validation failure unlinks the
  /// blob and returns nullopt (a miss).
  std::optional<std::vector<std::uint8_t>> load(const common::Fingerprint& key,
                                                std::uint32_t kindTag);

  /// Store `payload` under `key` (no-op when an entry already exists --
  /// content-addressing makes rewrites redundant).  Evicts LRU blobs first
  /// when the write would exceed the configured bound.
  void put(const common::Fingerprint& key, std::uint32_t kindTag,
           const std::vector<std::uint8_t>& payload);

  /// True when a blob file exists for `key` (no validation).
  bool contains(const common::Fingerprint& key) const;

  StoreStats stats() const;

  /// Evict least-recently-used blobs until total size <= `targetBytes`;
  /// returns the number of bytes evicted.  `targetBytes` = 0 empties the
  /// store.
  std::uint64_t gc(std::uint64_t targetBytes);

  /// Persist the LRU index now (also done by the destructor).
  void flushIndex();

  const std::filesystem::path& dir() const { return dir_; }

 private:
  struct Entry {
    std::uint64_t size = 0;  ///< blob file size (header + payload)
    std::uint64_t seq = 0;   ///< last-use sequence number (higher = fresher)
    std::uint32_t kind = 0;
  };

  std::filesystem::path blobPath(const common::Fingerprint& key) const;
  void loadIndexLocked();
  void rebuildIndexFromScanLocked();
  void evictUntilLocked(std::uint64_t targetBytes);
  void flushIndexLocked();

  mutable std::mutex mu_;
  std::filesystem::path dir_;
  std::uint64_t maxBytes_ = 0;
  std::unordered_map<common::Fingerprint, Entry, common::FingerprintHash>
      entries_;
  std::uint64_t totalBytes_ = 0;
  std::uint64_t nextSeq_ = 1;
  std::uint64_t tmpCounter_ = 0;
  StoreStats stats_;
};

}  // namespace tauhls::core
