// Declarative pass pipeline over the flow's artifacts.
//
// The synthesis flow is modelled as a DAG of *passes* over immutable
// *artifacts* instead of a hand-sequenced monolith:
//
//   schedule ──┬─> distributed ─> signal-opt ─┬─> verify       ─> (gate)
//              │                              ├─> cent-fsm     ─> area-cent-fsm
//              ├─> cent-sync ─────────────────┤─> area-dist
//              ├─> latency                    ├─> rtl
//              ├────────────────> area-cent-sync (from cent-sync)
//              └─(+ signal-opt)─> equiv, timing, symbolic-check (demand-only)
//
// Each pass declares the artifacts it consumes and produces plus the
// FlowConfig fields it reads; the executor then provides
//
//   * demand-driven evaluation -- require() runs exactly the producer
//     closure of the requested artifacts, so a lint run never pays for the
//     area model or the latency statistics;
//   * safe parallelism -- every wave of ready passes is fanned out on the
//     global deterministic thread pool (common/parallel.hpp), subsuming the
//     hand-rolled parallelFor switches the monolithic flow used;
//   * content-addressed caching -- a pass's key is a fingerprint of the DFG,
//     the config fields it declares, and its inputs' keys (a Merkle
//     derivation), so flows sharing a prefix share the artifacts: a P sweep
//     re-runs only the latency pass, and static verification runs once per
//     distinct (schedule, controllers) pair no matter how many sweep points
//     reuse them;
//   * per-pass observability -- wall time, cache hit/miss and artifact sizes
//     per executed pass, exportable as a chrome://tracing JSON trace
//     (`tauhlsc flow --trace-json`).
//
// runFlow (core/flow.hpp) is a thin façade over this pipeline and its
// results are bit-identical to the former hand-sequenced flow; sweep callers
// (explore/pareto, bench/*) construct FlowPipeline directly and share an
// ArtifactCache across points.  See docs/PIPELINE.md.
#pragma once

#include <any>
#include <array>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "core/flow.hpp"

namespace tauhls::core {

class ArtifactStore;  // core/store.hpp -- the optional persistent tier

/// Every artifact the flow can produce.  Each id maps to exactly one C++
/// type (enforced by the typed accessors):
///
///   Schedule        sched::ScheduledDfg          schedule + binding
///   RawDistributed  fsm::DistributedControlUnit  Algorithm 1, pre signal-opt
///   Distributed     fsm::DistributedControlUnit  post signal-opt
///   SignalStats     fsm::SignalOptStats
///   CentSync        fsm::Fsm                     CENT-SYNC-FSM baseline
///   Latency         sim::LatencyComparison       Table 2 statistics
///   CentFsm         fsm::Fsm                     explicit product machine
///   Diagnostics     verify::Report               static verification
///   DistArea        synth::DistributedAreaReport
///   CentSyncArea    synth::AreaRow
///   CentFsmArea     synth::AreaRow
///   Rtl             std::string                  full Verilog package
///   Equivalence     verify::EquivalenceArtifact  SAT translation validation
///   Timing          verify::Report               STA against CC_TAU
///   SymbolicCheck   verify::SymbolicArtifact     BMC + k-induction verdicts
///   XCheck          verify::XCheckArtifact       X-propagation + don't-care
///                                                soundness (XPR/DCS rules)
///
/// Equivalence, Timing, SymbolicCheck and XCheck are demand-only: the
/// standard run() never requests them directly; `tauhlsc lint
/// --equiv/--timing/--xprop`, the `--model-check symbolic|auto` modes (and
/// tests) pull them explicitly.
enum class Artifact : int {
  Schedule = 0,
  RawDistributed,
  Distributed,
  SignalStats,
  CentSync,
  Latency,
  CentFsm,
  Diagnostics,
  DistArea,
  CentSyncArea,
  CentFsmArea,
  Rtl,
  Equivalence,
  Timing,
  SymbolicCheck,
  XCheck,
};

inline constexpr int kNumArtifacts = 16;

/// Stable display name ("schedule", "latency", ...).
const char* artifactName(Artifact a);

/// Validate a FlowConfig before any pass runs; throws tauhls::Error with a
/// message naming the offending field (empty or out-of-(0,1] `ps` entries,
/// non-positive `mcSamples`, zero-unit allocation entries, zero state
/// budgets).  Called by the FlowPipeline constructor, so every entry point
/// (runFlow, the CLI, the sweep drivers) fails fast with the same message.
void validateFlowConfig(const FlowConfig& config);

/// Where a pass evaluation was served from.
enum class CacheTier : int {
  Miss = 0,    ///< executed (cache miss or no cache attached)
  Memory = 1,  ///< served from the in-process ArtifactCache
  Disk = 2,    ///< served from the persistent ArtifactStore
};

/// Stable display name ("miss", "hit", "disk") used in the pass trace.
const char* cacheTierName(CacheTier tier);

/// Aggregated cache counters.  "Runs" are pass executions (cache misses or
/// uncached executions); "hits" are pass evaluations fully served from the
/// cache -- memory and disk tiers combined, with `diskHits` counting the
/// disk-served subset.  Maps are keyed by pass name and ordered, so
/// rendering them is deterministic.
struct CacheStats {
  std::uint64_t hits = 0;      ///< memory + disk
  std::uint64_t diskHits = 0;  ///< subset of `hits` served from the store
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< in-memory LRU evictions under maxEntries
  std::size_t entries = 0;  ///< artifacts currently stored in memory
  std::map<std::string, std::uint64_t> runsPerPass;
  std::map<std::string, std::uint64_t> hitsPerPass;
  std::map<std::string, std::uint64_t> diskHitsPerPass;

  double hitRate() const {
    const double total = static_cast<double>(hits + misses);
    return total == 0.0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// One-line human summary ("42 pass runs, 120 hits (74.1% hit rate), ...").
std::string formatCacheSummary(const CacheStats& stats);

/// Thread-safe content-addressed artifact cache shared across FlowPipeline
/// runs.  Keys are Merkle-style fingerprints (see pipeline.cpp); values are
/// immutable shared artifacts, so a hit is a pointer copy.  Unbounded by
/// default; pass `maxEntries` to bound the entry count with true LRU
/// eviction (a find or re-insert refreshes the entry; the least-recently
/// used entry is evicted first and counted in CacheStats.evictions).
///
/// Optionally backed by a persistent ArtifactStore (core/store.hpp): a
/// memory miss then consults the store (decoding the blob and promoting it
/// into the memory tier), and every executed pass's outputs are written
/// through to disk.  Lookup order is always memory -> disk -> recompute; a
/// corrupted or truncated blob is a miss, never an error.
class ArtifactCache {
 public:
  explicit ArtifactCache(std::size_t maxEntries = 0);

  /// Attach (or detach, with nullptr) the persistent tier.
  void attachStore(std::shared_ptr<ArtifactStore> store);
  std::shared_ptr<ArtifactStore> store() const;

  CacheStats stats() const;
  std::size_t size() const;
  void clear();  ///< empties the memory tier only; the store is untouched

 private:
  friend class FlowPipeline;

  /// Memory-then-disk lookup; `artifact` names the codec for the disk tier.
  /// On success `tier` (when non-null) reports which tier served it.
  std::optional<std::any> find(const common::Fingerprint& key,
                               Artifact artifact, CacheTier* tier);
  void insert(const common::Fingerprint& key, Artifact artifact,
              std::any value);
  void recordPass(const std::string& pass, CacheTier tier);

  std::optional<std::any> findInMemory(const common::Fingerprint& key);
  void insertInMemory(const common::Fingerprint& key, std::any value);

  struct MemoryEntry {
    std::any value;
    std::list<common::Fingerprint>::iterator lruIt;
  };

  mutable std::mutex mu_;
  std::size_t maxEntries_ = 0;
  std::unordered_map<common::Fingerprint, MemoryEntry, common::FingerprintHash>
      entries_;
  std::list<common::Fingerprint> lru_;  ///< front = most recently used
  std::shared_ptr<ArtifactStore> store_;
  CacheStats stats_;
};

/// One executed (or cache-served) pass in a pipeline run.
struct PassTraceEvent {
  std::string pass;
  double startUs = 0.0;     ///< from pipeline construction, microseconds
  double durationUs = 0.0;
  bool cacheHit = false;    ///< tier != Miss
  CacheTier tier = CacheTier::Miss;  ///< which tier served the pass
  int wave = 0;             ///< DAG wave the pass ran in
  int lane = 0;             ///< slot within the wave
  std::uint64_t artifactSize = 0;  ///< semantic size (states/nodes/bytes)
  /// Pass-specific counters, emitted verbatim as chrome-trace args (the
  /// equiv pass reports its per-rule SAT/simulation work here).
  std::vector<std::pair<std::string, std::uint64_t>> extraArgs;
};

/// A named pipeline run's events, for multi-design traces (one trace
/// "process" per run).
struct TracedRun {
  std::string name;
  std::vector<PassTraceEvent> events;
};

/// Render runs as a chrome://tracing / Perfetto-compatible JSON document
/// ({"traceEvents": [...]}; complete "X" events in microseconds, one pid per
/// run, one tid per wave lane).
std::string traceToChromeJson(const std::vector<TracedRun>& runs);

/// Demand-driven executor for one (graph, config) flow instance.
///
///   FlowPipeline pipe(graph, cfg, cache);      // cache optional
///   const auto& lat = pipe.get<sim::LatencyComparison>(Artifact::Latency);
///   FlowResult r = pipe.run();                 // the standard full flow
///
/// The graph reference must outlive the pipeline.  Artifacts are memoized in
/// the pipeline and, when a cache is attached, shared across pipelines whose
/// derivations agree.  All methods are safe to call from inside a
/// parallelFor task (nested parallel regions run inline).
class FlowPipeline {
 public:
  FlowPipeline(const dfg::Dfg& graph, FlowConfig config,
               std::shared_ptr<ArtifactCache> cache = nullptr);
  FlowPipeline(const FlowPipeline&) = delete;
  FlowPipeline& operator=(const FlowPipeline&) = delete;

  /// Compute the requested artifacts (and, transitively, everything they
  /// need that is not yet materialized).  Ready passes of each DAG wave run
  /// concurrently on the global pool.
  void require(const std::vector<Artifact>& artifacts);

  /// True when the artifact is already materialized in this pipeline.
  bool has(Artifact a) const;

  /// Typed access; computes the artifact on demand.  T must be the artifact
  /// type documented on `Artifact` (mismatches throw).
  template <typename T>
  const T& get(Artifact a) {
    if (!has(a)) require({a});
    const auto& ptr = std::any_cast<const std::shared_ptr<const T>&>(
        slots_[static_cast<std::size_t>(a)]);
    return *ptr;
  }

  /// Run the standard flow for the held config -- the same artifact set,
  /// verification gate and failure behaviour as the pre-pipeline monolithic
  /// runFlow -- and assemble the public FlowResult.
  FlowResult run();

  /// Diagnostics under the configured model-check mode
  /// (FlowConfig::modelCheck).  Explicit: the verify pass's report verbatim.
  /// Symbolic: the verify pass ran without the explicit model check; the
  /// symbolic engine's verdicts are merged in.  Auto: explicit first -- when
  /// it degraded to MDL007, the MDL007 warnings are removed and the symbolic
  /// verdicts merged in their place (exact duplicates are dropped).  Demands
  /// the SymbolicCheck artifact only when the mode needs it.
  verify::Report modelCheckedDiagnostics();

  /// Everything executed (or cache-served) by this pipeline so far, in
  /// deterministic wave order.
  const std::vector<PassTraceEvent>& traceEvents() const { return events_; }

  const FlowConfig& config() const { return config_; }
  const dfg::Dfg& graph() const { return graph_; }

  /// Content-addressed key of an artifact under this (graph, config); stable
  /// across runs, processes and thread counts.  Exposed for tests and trace
  /// tooling.
  common::Fingerprint artifactKey(Artifact a) const;

 private:
  const dfg::Dfg& graph_;
  FlowConfig config_;
  std::shared_ptr<ArtifactCache> cache_;
  common::Fingerprint dfgFingerprint_;
  std::array<common::Fingerprint, kNumArtifacts> artifactKeys_;
  std::array<std::any, kNumArtifacts> slots_;
  std::vector<PassTraceEvent> events_;
  std::chrono::steady_clock::time_point start_;
};

/// Throw the flow's standard verification-gate error when `report` contains
/// error-severity diagnostics (shared by runFlow and the sweep drivers).
void throwIfVerificationFailed(const verify::Report& report);

}  // namespace tauhls::core
