// Binary serialization of the pipeline's immutable artifacts, for the
// disk-backed artifact store (core/store.hpp).
//
// Every Artifact kind (core/pipeline.hpp) has one codec.  The encoding is a
// plain little-endian byte stream -- length-prefixed strings, fixed-width
// integers, IEEE-754 bit patterns for doubles -- so a blob written by one
// process decodes bit-identically in another, independent of platform word
// order or thread count.  Decoding is defensive throughout: every read is
// bounds-checked and every enum value range-checked, so a truncated or
// corrupted blob throws tauhls::Error (which the store layer converts into a
// cache miss) instead of crashing or fabricating an artifact.
//
// The format carries a codec version (kArtifactCodecVersion).  Bump it
// whenever any kind's byte layout changes: the store records the version in
// each blob header and treats a mismatch as a miss, so stale blobs written by
// an older binary age out instead of being misdecoded.
#pragma once

#include <cstdint>
#include <any>
#include <vector>

#include "core/pipeline.hpp"

namespace tauhls::core {

/// Byte-layout version of all artifact codecs (store blobs carry it).
/// v5 added the XCheck artifact (X-propagation / don't-care soundness).
inline constexpr std::uint32_t kArtifactCodecVersion = 5;

/// Encode the artifact held by `value` (a std::shared_ptr<const T> boxed in
/// std::any, exactly as the pipeline's slots and the ArtifactCache hold it).
/// Throws tauhls::Error when `value` does not hold the type documented for
/// `kind` on the Artifact enum.
std::vector<std::uint8_t> encodeArtifact(Artifact kind, const std::any& value);

/// Decode a blob produced by encodeArtifact for the same `kind` and codec
/// version; returns the shared_ptr<const T>-in-any form the pipeline slots
/// use.  Throws tauhls::Error on any malformed, truncated or range-violating
/// input -- never undefined behaviour.
std::any decodeArtifact(Artifact kind, const std::uint8_t* data,
                        std::size_t size);

}  // namespace tauhls::core
