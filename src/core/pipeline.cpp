#include "core/pipeline.hpp"

#include <iomanip>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/fingerprint.hpp"
#include "core/serialize.hpp"
#include "core/store.hpp"
#include "rtl/verilog.hpp"
#include "verify/equiv_check.hpp"
#include "verify/symbolic_check.hpp"
#include "verify/timing_check.hpp"
#include "verify/verify.hpp"
#include "verify/xprop_check.hpp"

namespace tauhls::core {

namespace {

constexpr std::size_t idx(Artifact a) { return static_cast<std::size_t>(a); }

/// What a pass body sees: the flow inputs plus typed slot access.  Slots of
/// concurrently-running passes are disjoint, so waves need no locking.
struct PassIo {
  const dfg::Dfg& graph;
  const FlowConfig& config;
  std::array<std::any, kNumArtifacts>& slots;

  template <typename T>
  const T& in(Artifact a) const {
    return *std::any_cast<const std::shared_ptr<const T>&>(slots[idx(a)]);
  }
  template <typename T>
  void out(Artifact a, T value) const {
    slots[idx(a)] = std::make_shared<const T>(std::move(value));
  }
};

/// One registered flow stage: consumed/produced artifacts, the config fields
/// it reads (as a hash contribution -- the *only* part of the config that can
/// invalidate its cache key), and the body.
struct PassDef {
  const char* name;
  std::vector<Artifact> inputs;
  std::vector<Artifact> outputs;
  void (*configKey)(const FlowConfig&, common::Hasher&);
  void (*run)(const PassIo&);
};

void noConfig(const FlowConfig&, common::Hasher&) {}

/// The flow's pass registry, in topological order.  Adding a stage means
/// adding one entry here (and an Artifact id); the executor, the cache and
/// the tracing need no changes.
const std::vector<PassDef>& passRegistry() {
  static const std::vector<PassDef> passes = {
      {"schedule",
       {},
       {Artifact::Schedule},
       [](const FlowConfig& c, common::Hasher& h) {
         hashAllocation(h, c.allocation);
         hashLibrary(h, c.library);
         h.u64(static_cast<std::uint64_t>(c.strategy));
       },
       [](const PassIo& io) {
         io.out(Artifact::Schedule,
                sched::scheduleAndBind(io.graph, io.config.allocation,
                                       io.config.library, io.config.strategy));
       }},
      {"distributed",
       {Artifact::Schedule},
       {Artifact::RawDistributed},
       noConfig,
       [](const PassIo& io) {
         io.out(Artifact::RawDistributed,
                fsm::buildDistributed(
                    io.in<sched::ScheduledDfg>(Artifact::Schedule)));
       }},
      {"signal-opt",
       {Artifact::RawDistributed},
       {Artifact::Distributed, Artifact::SignalStats},
       [](const FlowConfig& c, common::Hasher& h) {
         h.boolean(c.optimizeSignals);
       },
       [](const PassIo& io) {
         const auto& raw =
             io.in<fsm::DistributedControlUnit>(Artifact::RawDistributed);
         fsm::SignalOptStats stats;
         if (io.config.optimizeSignals) {
           io.out(Artifact::Distributed, fsm::optimizeSignals(raw, &stats));
         } else {
           io.out(Artifact::Distributed, raw);
         }
         io.out(Artifact::SignalStats, stats);
       }},
      {"cent-sync",
       {Artifact::Schedule},
       {Artifact::CentSync},
       noConfig,
       [](const PassIo& io) {
         io.out(Artifact::CentSync,
                fsm::buildCentSync(
                    io.in<sched::ScheduledDfg>(Artifact::Schedule)));
       }},
      {"latency",
       {Artifact::Schedule},
       {Artifact::Latency},
       [](const FlowConfig& c, common::Hasher& h) {
         h.u64(c.ps.size());
         for (double p : c.ps) h.f64(p);
         h.i64(c.mcSamples);
         h.i64(c.mcMaxSamples);
         h.f64(c.mcTargetHalfWidth);
       },
       [](const PassIo& io) {
         sim::LatencyOptions lo;
         lo.mcSamples = io.config.mcSamples;
         lo.mcMaxSamples = io.config.mcMaxSamples;
         lo.mcTargetHalfWidth = io.config.mcTargetHalfWidth;
         io.out(Artifact::Latency,
                sim::compareLatencies(
                    io.in<sched::ScheduledDfg>(Artifact::Schedule),
                    io.config.ps, lo));
       }},
      {"verify",
       {Artifact::Schedule, Artifact::Distributed, Artifact::CentSync},
       {Artifact::Diagnostics},
       [](const FlowConfig& c, common::Hasher& h) {
         hashAllocation(h, c.allocation);
         h.u64(c.verifyMaxStates);
         // Only whether the explicit model check runs matters here; the
         // symbolic engine's own budgets key the symbolic-check pass.
         h.boolean(c.modelCheck == ModelCheckMode::Symbolic);
       },
       [](const PassIo& io) {
         verify::VerifyOptions vo;
         vo.requestedAllocation = &io.config.allocation;
         vo.centSync = &io.in<fsm::Fsm>(Artifact::CentSync);
         vo.modelCheckMaxStates = io.config.verifyMaxStates;
         // In symbolic mode the explicit product exploration is skipped
         // entirely; the symbolic-check pass supplies the MDL verdicts.
         vo.modelCheck = io.config.modelCheck != ModelCheckMode::Symbolic;
         io.out(Artifact::Diagnostics,
                verify::verifyFlow(
                    io.in<sched::ScheduledDfg>(Artifact::Schedule),
                    io.in<fsm::DistributedControlUnit>(Artifact::Distributed),
                    vo));
       }},
      {"symbolic-check",
       {Artifact::Schedule, Artifact::Distributed, Artifact::CentSync},
       {Artifact::SymbolicCheck},
       [](const FlowConfig& c, common::Hasher& h) {
         h.i64(c.symbolicMaxDepth);
         h.u64(c.symbolicMaxConflicts);
       },
       [](const PassIo& io) {
         verify::SymbolicCheckOptions so;
         so.maxDepth = io.config.symbolicMaxDepth;
         so.maxConflicts = io.config.symbolicMaxConflicts;
         io.out(Artifact::SymbolicCheck,
                verify::symbolicModelCheck(
                    io.in<fsm::DistributedControlUnit>(Artifact::Distributed),
                    io.in<sched::ScheduledDfg>(Artifact::Schedule),
                    &io.in<fsm::Fsm>(Artifact::CentSync), so));
       }},
      {"cent-fsm",
       {Artifact::Distributed},
       {Artifact::CentFsm},
       [](const FlowConfig& c, common::Hasher& h) {
         h.u64(c.centFsmMaxStates);
       },
       [](const PassIo& io) {
         fsm::ProductOptions opt;
         opt.maxStates = io.config.centFsmMaxStates;
         io.out(Artifact::CentFsm,
                fsm::buildProduct(
                    io.in<fsm::DistributedControlUnit>(Artifact::Distributed),
                    opt));
       }},
      {"area-dist",
       {Artifact::Distributed},
       {Artifact::DistArea},
       [](const FlowConfig& c, common::Hasher& h) {
         h.u64(static_cast<std::uint64_t>(c.encoding));
       },
       [](const PassIo& io) {
         io.out(Artifact::DistArea,
                synth::distributedArea(
                    io.in<fsm::DistributedControlUnit>(Artifact::Distributed),
                    io.config.encoding));
       }},
      {"area-cent-sync",
       {Artifact::CentSync},
       {Artifact::CentSyncArea},
       [](const FlowConfig& c, common::Hasher& h) {
         h.u64(static_cast<std::uint64_t>(c.encoding));
       },
       [](const PassIo& io) {
         io.out(Artifact::CentSyncArea,
                synth::areaRow("CENT-SYNC-FSM",
                               io.in<fsm::Fsm>(Artifact::CentSync),
                               io.config.encoding));
       }},
      {"area-cent-fsm",
       {Artifact::CentFsm},
       {Artifact::CentFsmArea},
       [](const FlowConfig& c, common::Hasher& h) {
         h.u64(static_cast<std::uint64_t>(c.encoding));
       },
       [](const PassIo& io) {
         io.out(Artifact::CentFsmArea,
                synth::areaRow("CENT-FSM", io.in<fsm::Fsm>(Artifact::CentFsm),
                               io.config.encoding));
       }},
      {"rtl",
       {Artifact::Distributed},
       {Artifact::Rtl},
       noConfig,
       [](const PassIo& io) {
         io.out(Artifact::Rtl,
                rtl::emitPackage(
                    io.in<fsm::DistributedControlUnit>(Artifact::Distributed),
                    "dcu_" + io.graph.name()));
       }},
      {"equiv",
       {Artifact::Distributed},
       {Artifact::Equivalence},
       [](const FlowConfig& c, common::Hasher& h) {
         h.u64(static_cast<std::uint64_t>(c.encoding));
         h.u64(c.equivMaxConflicts);
       },
       [](const PassIo& io) {
         verify::EquivOptions eo;
         eo.style = io.config.encoding;
         eo.maxConflicts = io.config.equivMaxConflicts;
         verify::EquivalenceArtifact art;
         art.report = verify::checkEquivalence(
             io.in<fsm::DistributedControlUnit>(Artifact::Distributed), eo,
             &art.stats);
         io.out(Artifact::Equivalence, std::move(art));
       }},
      {"xcheck",
       {Artifact::Distributed},
       {Artifact::XCheck},
       [](const FlowConfig& c, common::Hasher& h) {
         h.u64(static_cast<std::uint64_t>(c.encoding));
         h.i64(c.xpropCycles);
         h.i64(c.xpropWords);
         h.i64(c.dcsMaxDepth);
         h.u64(c.dcsMaxConflicts);
       },
       [](const PassIo& io) {
         const auto& dcu =
             io.in<fsm::DistributedControlUnit>(Artifact::Distributed);
         const std::string artifact = "dcu " + io.graph.name();
         verify::XprOptions xo;
         xo.style = io.config.encoding;
         xo.maxCycles = io.config.xpropCycles;
         xo.words = io.config.xpropWords;
         verify::DcsOptions dco;
         dco.style = io.config.encoding;
         dco.maxDepth = io.config.dcsMaxDepth;
         dco.maxConflicts = io.config.dcsMaxConflicts;
         verify::XCheckArtifact art;
         art.xprop = verify::checkXprop(dcu, artifact, art.report, xo);
         art.dcs = verify::checkDcs(dcu, artifact, art.report, dco);
         io.out(Artifact::XCheck, std::move(art));
       }},
      {"timing",
       {Artifact::Schedule, Artifact::Distributed},
       {Artifact::Timing},
       [](const FlowConfig& c, common::Hasher& h) {
         h.u64(static_cast<std::uint64_t>(c.encoding));
         h.f64(c.timingMarginNs);
       },
       [](const PassIo& io) {
         verify::TimingOptions to;
         to.marginNs = io.config.timingMarginNs;
         to.style = io.config.encoding;
         io.out(Artifact::Timing,
                verify::checkTiming(
                    io.in<fsm::DistributedControlUnit>(Artifact::Distributed),
                    io.in<sched::ScheduledDfg>(Artifact::Schedule).clockNs,
                    to));
       }},
  };
  return passes;
}

/// Producing pass of each artifact (index into passRegistry()).
const std::array<int, kNumArtifacts>& producerIndex() {
  static const std::array<int, kNumArtifacts> producers = [] {
    std::array<int, kNumArtifacts> p{};
    p.fill(-1);
    const auto& passes = passRegistry();
    for (std::size_t i = 0; i < passes.size(); ++i) {
      for (Artifact a : passes[i].outputs) {
        TAUHLS_ASSERT(p[idx(a)] < 0, "artifact has two producing passes");
        p[idx(a)] = static_cast<int>(i);
      }
    }
    for (int producer : p) {
      TAUHLS_ASSERT(producer >= 0, "artifact has no producing pass");
    }
    return p;
  }();
  return producers;
}

/// Semantic size of a materialized artifact, for the trace (states for
/// machines, nodes for schedules, bytes for text, entries otherwise).
std::uint64_t artifactSizeOf(Artifact a, const std::any& slot) {
  switch (a) {
    case Artifact::Schedule:
      return std::any_cast<const std::shared_ptr<const sched::ScheduledDfg>&>(
                 slot)
          ->graph.numNodes();
    case Artifact::RawDistributed:
    case Artifact::Distributed:
      return std::any_cast<
                 const std::shared_ptr<const fsm::DistributedControlUnit>&>(
                 slot)
          ->totalStates();
    case Artifact::SignalStats: {
      const auto& s =
          *std::any_cast<const std::shared_ptr<const fsm::SignalOptStats>&>(
              slot);
      return static_cast<std::uint64_t>(s.removedOutputs + s.keptOutputs);
    }
    case Artifact::CentSync:
    case Artifact::CentFsm:
      return std::any_cast<const std::shared_ptr<const fsm::Fsm>&>(slot)
          ->numStates();
    case Artifact::Latency:
      return std::any_cast<
                 const std::shared_ptr<const sim::LatencyComparison>&>(slot)
          ->ps.size();
    case Artifact::Diagnostics:
      return std::any_cast<const std::shared_ptr<const verify::Report>&>(slot)
          ->diagnostics()
          .size();
    case Artifact::DistArea:
      return static_cast<std::uint64_t>(
          std::any_cast<
              const std::shared_ptr<const synth::DistributedAreaReport>&>(slot)
              ->total.totalArea());
    case Artifact::CentSyncArea:
    case Artifact::CentFsmArea:
      return static_cast<std::uint64_t>(
          std::any_cast<const std::shared_ptr<const synth::AreaRow>&>(slot)
              ->totalArea());
    case Artifact::Rtl:
      return std::any_cast<const std::shared_ptr<const std::string>&>(slot)
          ->size();
    case Artifact::Equivalence:
      // Functions proven, not diagnostics: the semantic work of the pass.
      return static_cast<std::uint64_t>(
          std::any_cast<
              const std::shared_ptr<const verify::EquivalenceArtifact>&>(slot)
              ->stats.functionsCompared);
    case Artifact::Timing:
      return std::any_cast<const std::shared_ptr<const verify::Report>&>(slot)
          ->diagnostics()
          .size();
    case Artifact::SymbolicCheck:
      // Properties checked, not diagnostics: the semantic work of the pass.
      return std::any_cast<
                 const std::shared_ptr<const verify::SymbolicArtifact>&>(slot)
          ->stats.properties.size();
    case Artifact::XCheck: {
      const auto& art = *std::any_cast<
          const std::shared_ptr<const verify::XCheckArtifact>&>(slot);
      return art.xprop.properties.size() + art.dcs.properties.size();
    }
  }
  return 0;
}

double microsSince(std::chrono::steady_clock::time_point origin,
                   std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t - origin).count();
}

std::string percent(double ratio) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << ratio * 100.0 << "%";
  return os.str();
}

}  // namespace

const char* artifactName(Artifact a) {
  switch (a) {
    case Artifact::Schedule: return "schedule";
    case Artifact::RawDistributed: return "raw-distributed";
    case Artifact::Distributed: return "distributed";
    case Artifact::SignalStats: return "signal-stats";
    case Artifact::CentSync: return "cent-sync";
    case Artifact::Latency: return "latency";
    case Artifact::CentFsm: return "cent-fsm";
    case Artifact::Diagnostics: return "diagnostics";
    case Artifact::DistArea: return "area-dist";
    case Artifact::CentSyncArea: return "area-cent-sync";
    case Artifact::CentFsmArea: return "area-cent-fsm";
    case Artifact::Rtl: return "rtl";
    case Artifact::Equivalence: return "equivalence";
    case Artifact::Timing: return "timing";
    case Artifact::SymbolicCheck: return "symbolic-check";
    case Artifact::XCheck: return "xcheck";
  }
  return "unknown";
}

const char* cacheTierName(CacheTier tier) {
  switch (tier) {
    case CacheTier::Miss: return "miss";
    case CacheTier::Memory: return "hit";
    case CacheTier::Disk: return "disk";
  }
  return "unknown";
}

void validateFlowConfig(const FlowConfig& config) {
  TAUHLS_CHECK(!config.ps.empty(),
               "FlowConfig.ps is empty: the latency sweep needs at least one "
               "SD-probability value");
  for (std::size_t i = 0; i < config.ps.size(); ++i) {
    const double p = config.ps[i];
    TAUHLS_CHECK(p > 0.0 && p <= 1.0,
                 "FlowConfig.ps[" + std::to_string(i) + "] = " +
                     std::to_string(p) +
                     " is outside (0, 1]: P is the probability that a TAU "
                     "operand hits the short-delay class");
  }
  TAUHLS_CHECK(config.mcSamples > 0,
               "FlowConfig.mcSamples = " + std::to_string(config.mcSamples) +
                   " must be positive (Monte-Carlo fallback sample count)");
  for (const auto& [cls, count] : config.allocation) {
    TAUHLS_CHECK(count >= 1,
                 std::string("FlowConfig.allocation[") +
                     dfg::resourceClassName(cls) + "] = " +
                     std::to_string(count) +
                     ": every allocated class needs at least one unit "
                     "(omit the class for full concurrency)");
  }
  if (config.buildCentFsm) {
    TAUHLS_CHECK(config.centFsmMaxStates > 0,
                 "FlowConfig.centFsmMaxStates must be positive when "
                 "buildCentFsm is set");
  }
  if (config.verify) {
    TAUHLS_CHECK(config.verifyMaxStates > 0,
                 "FlowConfig.verifyMaxStates must be positive when verify is "
                 "set");
  }
}

std::string formatCacheSummary(const CacheStats& stats) {
  std::ostringstream os;
  os << stats.misses << " pass runs, " << stats.hits << " cache hits ("
     << percent(stats.hitRate()) << " hit rate), " << stats.entries
     << " artifacts cached";
  if (stats.diskHits > 0) os << ", " << stats.diskHits << " served from disk";
  if (stats.evictions > 0) os << ", " << stats.evictions << " evictions";
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> merged;
  for (const auto& [pass, runs] : stats.runsPerPass) merged[pass].first = runs;
  for (const auto& [pass, hits] : stats.hitsPerPass) merged[pass].second = hits;
  const char* sep = "; runs/hits per pass: ";
  for (const auto& [pass, counts] : merged) {
    os << sep << pass << " " << counts.first << "/" << counts.second;
    sep = ", ";
  }
  return os.str();
}

ArtifactCache::ArtifactCache(std::size_t maxEntries)
    : maxEntries_(maxEntries) {}

void ArtifactCache::attachStore(std::shared_ptr<ArtifactStore> store) {
  std::lock_guard<std::mutex> lock(mu_);
  store_ = std::move(store);
}

std::shared_ptr<ArtifactStore> ArtifactCache::store() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.entries = entries_.size();
  return s;
}

std::size_t ArtifactCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

std::optional<std::any> ArtifactCache::findInMemory(
    const common::Fingerprint& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  // Refresh recency: a hit moves the entry to the front of the LRU list.
  lru_.splice(lru_.begin(), lru_, it->second.lruIt);
  return it->second.value;
}

void ArtifactCache::insertInMemory(const common::Fingerprint& key,
                                   std::any value) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Content-addressed: equal keys mean equal artifacts, so keep the
    // existing value and just refresh its recency.
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    return;
  }
  if (maxEntries_ != 0 && entries_.size() >= maxEntries_) {
    // True LRU: evict exactly the least-recently-used entry (list back).
    const common::Fingerprint victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, MemoryEntry{std::move(value), lru_.begin()});
}

std::optional<std::any> ArtifactCache::find(const common::Fingerprint& key,
                                            Artifact artifact,
                                            CacheTier* tier) {
  if (auto value = findInMemory(key)) {
    if (tier) *tier = CacheTier::Memory;
    return value;
  }
  std::shared_ptr<ArtifactStore> disk = store();
  if (disk) {
    // Disk tier: fetch + decode outside the cache lock (the store has its
    // own), then promote into the memory tier so reuse within this process
    // is a pointer copy.
    const auto blob = disk->load(key, static_cast<std::uint32_t>(artifact));
    if (blob) {
      try {
        std::any value = decodeArtifact(artifact, blob->data(), blob->size());
        insertInMemory(key, value);
        if (tier) *tier = CacheTier::Disk;
        return value;
      } catch (const Error&) {
        // A blob that passed the checksum but fails the codec's validation
        // (e.g. written by a build with different semantics) is a miss.
      }
    }
  }
  if (tier) *tier = CacheTier::Miss;
  return std::nullopt;
}

void ArtifactCache::insert(const common::Fingerprint& key, Artifact artifact,
                           std::any value) {
  std::shared_ptr<ArtifactStore> disk = store();
  if (disk && !disk->contains(key)) {
    try {
      disk->put(key, static_cast<std::uint32_t>(artifact),
                encodeArtifact(artifact, value));
    } catch (const Error&) {
      // Persistence is best-effort: a full or read-only disk must never fail
      // the flow itself -- the artifact simply stays memory-only.
    }
  }
  insertInMemory(key, std::move(value));
}

void ArtifactCache::recordPass(const std::string& pass, CacheTier tier) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tier == CacheTier::Miss) {
    ++stats_.misses;
    ++stats_.runsPerPass[pass];
    return;
  }
  ++stats_.hits;
  ++stats_.hitsPerPass[pass];
  if (tier == CacheTier::Disk) {
    ++stats_.diskHits;
    ++stats_.diskHitsPerPass[pass];
  }
}

std::string traceToChromeJson(const std::vector<TracedRun>& runs) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  os << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (std::size_t r = 0; r < runs.size(); ++r) {
    const std::size_t pid = r + 1;
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << runs[r].name << "\"}}";
    for (const PassTraceEvent& ev : runs[r].events) {
      comma();
      os << "{\"name\":\"" << ev.pass << "\",\"cat\":\"pass\",\"ph\":\"X\""
         << ",\"pid\":" << pid << ",\"tid\":" << ev.lane
         << ",\"ts\":" << ev.startUs << ",\"dur\":" << ev.durationUs
         << ",\"args\":{\"cache\":\"" << cacheTierName(ev.tier)
         << "\",\"wave\":" << ev.wave << ",\"size\":" << ev.artifactSize;
      for (const auto& [key, value] : ev.extraArgs) {
        os << ",\"" << key << "\":" << value;
      }
      os << "}}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

FlowPipeline::FlowPipeline(const dfg::Dfg& graph, FlowConfig config,
                           std::shared_ptr<ArtifactCache> cache)
    : graph_(graph),
      config_(std::move(config)),
      cache_(std::move(cache)),
      start_(std::chrono::steady_clock::now()) {
  validateFlowConfig(config_);
  dfgFingerprint_ = fingerprintDfg(graph_);

  // Merkle derivation of every artifact key: a pass key folds the DFG
  // fingerprint, the pass's declared config fields, and its inputs' keys;
  // output keys salt the pass key with the artifact id.  Keys therefore
  // change exactly when something the artifact can depend on changes.
  const auto& passes = passRegistry();
  for (const PassDef& pass : passes) {
    common::Hasher h;
    h.str("tauhls-pass-v1");
    h.str(pass.name);
    h.fingerprint(dfgFingerprint_);
    pass.configKey(config_, h);
    for (Artifact input : pass.inputs) {
      h.fingerprint(artifactKeys_[idx(input)]);
    }
    const common::Fingerprint passKey = h.digest();
    for (Artifact output : pass.outputs) {
      common::Hasher ho(passKey);
      ho.str(artifactName(output));
      artifactKeys_[idx(output)] = ho.digest();
    }
  }
}

bool FlowPipeline::has(Artifact a) const {
  return slots_[idx(a)].has_value();
}

common::Fingerprint FlowPipeline::artifactKey(Artifact a) const {
  return artifactKeys_[idx(a)];
}

void FlowPipeline::require(const std::vector<Artifact>& artifacts) {
  const auto& passes = passRegistry();
  const auto& producers = producerIndex();

  // Demand closure: every pass producing a missing requested artifact, plus
  // transitively the producers of its missing inputs.
  std::vector<char> needed(passes.size(), 0);
  std::vector<Artifact> stack;
  for (Artifact a : artifacts) {
    if (!has(a)) stack.push_back(a);
  }
  while (!stack.empty()) {
    const Artifact a = stack.back();
    stack.pop_back();
    const int pi = producers[idx(a)];
    if (needed[static_cast<std::size_t>(pi)]) continue;
    needed[static_cast<std::size_t>(pi)] = 1;
    for (Artifact input : passes[static_cast<std::size_t>(pi)].inputs) {
      if (!has(input)) stack.push_back(input);
    }
  }

  // Wave execution: every pass whose inputs are materialized runs in the
  // current wave, concurrently on the global pool.  The wave decomposition
  // depends only on the pass DAG and the demand set -- never on the thread
  // count -- so execution (and the trace's wave numbering) is deterministic.
  std::vector<char> done(passes.size(), 0);
  int wave = static_cast<int>(events_.empty()
                                  ? 0
                                  : events_.back().wave + 1);
  while (true) {
    std::vector<std::size_t> ready;
    bool pending = false;
    for (std::size_t i = 0; i < passes.size(); ++i) {
      if (!needed[i] || done[i]) continue;
      pending = true;
      bool inputsReady = true;
      for (Artifact input : passes[i].inputs) {
        if (!has(input)) inputsReady = false;
      }
      if (inputsReady) ready.push_back(i);
    }
    if (!pending) break;
    TAUHLS_ASSERT(!ready.empty(),
                  "pass pipeline stalled: unsatisfiable dependencies");

    std::vector<PassTraceEvent> waveEvents(ready.size());
    common::parallelFor(ready.size(), [&](std::size_t lane) {
      const PassDef& pass = passes[ready[lane]];
      const auto t0 = std::chrono::steady_clock::now();
      PassTraceEvent& ev = waveEvents[lane];
      ev.pass = pass.name;
      ev.wave = wave;
      ev.lane = static_cast<int>(lane);
      ev.startUs = microsSince(start_, t0);

      bool hit = false;
      CacheTier tier = CacheTier::Miss;
      if (cache_) {
        std::vector<std::any> cached;
        cached.reserve(pass.outputs.size());
        hit = true;
        // The pass's tier is the slowest tier any of its outputs came from:
        // one disk-served output makes the whole evaluation a disk hit.
        // Probe every output even after the first miss: a probe is what
        // validates (and unlinks) a corrupted blob, and the recompute's
        // write-through below skips keys whose blob file still exists.
        CacheTier passTier = CacheTier::Memory;
        for (Artifact output : pass.outputs) {
          CacheTier outputTier = CacheTier::Miss;
          auto value =
              cache_->find(artifactKeys_[idx(output)], output, &outputTier);
          if (!value) {
            hit = false;
            continue;
          }
          if (outputTier == CacheTier::Disk) passTier = CacheTier::Disk;
          if (hit) cached.push_back(std::move(*value));
        }
        if (hit) {
          tier = passTier;
          for (std::size_t o = 0; o < pass.outputs.size(); ++o) {
            slots_[idx(pass.outputs[o])] = std::move(cached[o]);
          }
        }
      }
      if (!hit) {
        const PassIo io{graph_, config_, slots_};
        pass.run(io);
        if (cache_) {
          for (Artifact output : pass.outputs) {
            cache_->insert(artifactKeys_[idx(output)], output,
                           slots_[idx(output)]);
          }
        }
      }
      if (cache_) cache_->recordPass(pass.name, tier);

      ev.cacheHit = hit;
      ev.tier = tier;
      ev.durationUs =
          microsSince(start_, std::chrono::steady_clock::now()) - ev.startUs;
      for (Artifact output : pass.outputs) {
        ev.artifactSize += artifactSizeOf(output, slots_[idx(output)]);
        if (output == Artifact::Equivalence) {
          const auto& art = *std::any_cast<
              const std::shared_ptr<const verify::EquivalenceArtifact>&>(
              slots_[idx(output)]);
          for (const auto& [code, cost] : art.stats.ruleCost) {
            ev.extraArgs.emplace_back(code + ".queries", cost.queries);
            ev.extraArgs.emplace_back(code + ".simDischarged",
                                      cost.simDischarged);
            ev.extraArgs.emplace_back(code + ".conflicts", cost.conflicts);
          }
        }
        if (output == Artifact::SymbolicCheck) {
          const auto& art = *std::any_cast<
              const std::shared_ptr<const verify::SymbolicArtifact>&>(
              slots_[idx(output)]);
          for (const verify::SymbolicProperty& p : art.stats.properties) {
            ev.extraArgs.emplace_back(
                p.rule + ".depth",
                static_cast<std::uint64_t>(
                    p.depthReached < 0 ? 0 : p.depthReached));
            ev.extraArgs.emplace_back(
                p.rule + ".k", static_cast<std::uint64_t>(p.inductionK));
            ev.extraArgs.emplace_back(p.rule + ".conflicts",
                                      p.cost.conflicts);
            ev.extraArgs.emplace_back(p.rule + ".queries", p.cost.queries);
          }
        }
        if (output == Artifact::XCheck) {
          const auto& art = *std::any_cast<
              const std::shared_ptr<const verify::XCheckArtifact>&>(
              slots_[idx(output)]);
          ev.extraArgs.emplace_back("xprop.gateEvals", art.xprop.gateEvals);
          ev.extraArgs.emplace_back("xprop.instances", art.xprop.instances);
          ev.extraArgs.emplace_back(
              "xprop.resetDepth",
              static_cast<std::uint64_t>(
                  art.xprop.resetDepth < 0 ? 0 : art.xprop.resetDepth));
          for (const auto& [code, cost] : art.dcs.ruleCost()) {
            ev.extraArgs.emplace_back(code + ".conflicts", cost.conflicts);
            ev.extraArgs.emplace_back(code + ".queries", cost.queries);
          }
        }
      }
    });
    for (std::size_t i : ready) done[i] = 1;
    for (PassTraceEvent& ev : waveEvents) events_.push_back(std::move(ev));
    ++wave;
  }
}

verify::Report FlowPipeline::modelCheckedDiagnostics() {
  verify::Report report = get<verify::Report>(Artifact::Diagnostics);
  if (config_.modelCheck == ModelCheckMode::Explicit) return report;
  const bool wantSymbolic =
      config_.modelCheck == ModelCheckMode::Symbolic || report.has("MDL007");
  if (!wantSymbolic) return report;
  const auto& sym = get<verify::SymbolicArtifact>(Artifact::SymbolicCheck);
  if (report.has("MDL007")) {
    // The symbolic verdicts supersede the explicit engine's capitulation.
    verify::Report filtered;
    for (const verify::Diagnostic& d : report.diagnostics()) {
      if (d.code != "MDL007") filtered.add(d.code, d.artifact, d.where,
                                           d.message);
    }
    report = std::move(filtered);
  }
  // Dedup on merge: in auto mode the explicit engine already swept the
  // CENT-SYNC baseline, which the symbolic engine repeats verbatim.
  for (const verify::Diagnostic& d : sym.report.diagnostics()) {
    bool duplicate = false;
    for (const verify::Diagnostic& existing : report.diagnostics()) {
      if (existing == d) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) report.add(d.code, d.artifact, d.where, d.message);
  }
  return report;
}

FlowResult FlowPipeline::run() {
  // Stage 1 mirrors the monolithic flow up to its verification gate: the
  // schedule derivations and (when enabled) the static checks.  Latency runs
  // in the same stage, exactly as the monolith overlapped it.
  std::vector<Artifact> first = {Artifact::Schedule, Artifact::Distributed,
                                 Artifact::SignalStats, Artifact::CentSync,
                                 Artifact::Latency};
  if (config_.verify) first.push_back(Artifact::Diagnostics);
  require(first);

  FlowResult r;
  r.scheduled = get<sched::ScheduledDfg>(Artifact::Schedule);
  r.distributed = get<fsm::DistributedControlUnit>(Artifact::Distributed);
  r.signalStats = get<fsm::SignalOptStats>(Artifact::SignalStats);
  r.centSync = get<fsm::Fsm>(Artifact::CentSync);
  r.latency = get<sim::LatencyComparison>(Artifact::Latency);
  if (config_.verify) {
    r.diagnostics = modelCheckedDiagnostics();
    throwIfVerificationFailed(r.diagnostics);
  }

  // Stage 2, behind the gate: the explicit product and the area model, in
  // the monolith's order (a product-size failure precedes area synthesis).
  if (config_.buildCentFsm) {
    require({Artifact::CentFsm});
    r.centFsm = get<fsm::Fsm>(Artifact::CentFsm);
  }
  if (config_.synthesizeArea) {
    std::vector<Artifact> areas = {Artifact::DistArea, Artifact::CentSyncArea};
    if (config_.buildCentFsm) areas.push_back(Artifact::CentFsmArea);
    require(areas);
    r.distArea = get<synth::DistributedAreaReport>(Artifact::DistArea);
    r.centSyncArea = get<synth::AreaRow>(Artifact::CentSyncArea);
    if (config_.buildCentFsm) {
      r.centFsmArea = get<synth::AreaRow>(Artifact::CentFsmArea);
    }
  }
  return r;
}

void throwIfVerificationFailed(const verify::Report& report) {
  if (report.hasErrors()) {
    throw Error("static verification failed:\n" + verify::renderText(report));
  }
}

}  // namespace tauhls::core
