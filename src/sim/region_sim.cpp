#include "sim/region_sim.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "sim/makespan.hpp"

namespace tauhls::sim {

MakespanHistogram MakespanHistogram::unit() {
  MakespanHistogram h;
  h.buckets[{0, 0}] = 1;
  return h;
}

MakespanHistogram makespanHistogram(const sched::ScheduledDfg& s,
                                    ControlStyle style) {
  const MakespanEngine engine(s);
  const int n = engine.numTauOps();
  TAUHLS_CHECK(n <= kMaxExactTauOps,
               "exact histogram needs <= " + std::to_string(kMaxExactTauOps) +
                   " TAU ops, got " + std::to_string(n));
  const std::uint64_t total = std::uint64_t{1} << n;
  const std::uint64_t numChunks = common::chunkCountFor(total);
  const std::uint64_t perChunk = (total + numChunks - 1) / numChunks;

  using Buckets = std::map<std::pair<int, int>, std::uint64_t>;
  Buckets buckets = common::parallelReduce<Buckets>(
      static_cast<std::size_t>(numChunks), Buckets{},
      [&](std::size_t chunk) {
        // One zero-allocation sweep per chunk; the buckets are integer
        // counts, so the merge below is exact for any thread count.
        MakespanEngine::DistributedSweep sweep(engine);
        Buckets local;
        const std::uint64_t lo = chunk * perChunk;
        const std::uint64_t hi = std::min(total, lo + perChunk);
        for (std::uint64_t mask = lo; mask < hi; ++mask) {
          const int cycles = style == ControlStyle::Distributed
                                 ? sweep.evalFull(mask)
                                 : engine.syncCycles(mask);
          ++local[{cycles, std::popcount(mask)}];
        }
        return local;
      },
      [](Buckets acc, Buckets part) {
        for (const auto& [key, count] : part) acc[key] += count;
        return acc;
      });

  MakespanHistogram h;
  h.tauCount = n;
  h.buckets = std::move(buckets);
  return h;
}

MakespanHistogram convolveHistograms(const MakespanHistogram& a,
                                     const MakespanHistogram& b) {
  MakespanHistogram out;
  out.tauCount = a.tauCount + b.tauCount;
  for (const auto& [ka, ca] : a.buckets) {
    for (const auto& [kb, cb] : b.buckets) {
      out.buckets[{ka.first + kb.first, ka.second + kb.second}] += ca * cb;
    }
  }
  return out;
}

double histogramAverageCycles(const MakespanHistogram& h, double p) {
  // Walked in the map's sorted bucket order: equal histograms accumulate in
  // the same order, so the result is bit-identical between the composed and
  // flat-reference paths.
  double sum = 0.0;
  for (const auto& [key, count] : h.buckets) {
    const auto& [cycles, sdCount] = key;
    sum += static_cast<double>(count) * static_cast<double>(cycles) *
           std::pow(p, sdCount) * std::pow(1.0 - p, h.tauCount - sdCount);
  }
  return sum;
}

int histogramBestCycles(const MakespanHistogram& h) {
  TAUHLS_CHECK(!h.buckets.empty(), "empty makespan histogram");
  int best = h.buckets.begin()->first.first;
  for (const auto& [key, count] : h.buckets) {
    best = std::min(best, key.first);
  }
  return best;
}

int histogramWorstCycles(const MakespanHistogram& h) {
  TAUHLS_CHECK(!h.buckets.empty(), "empty makespan histogram");
  int worst = h.buckets.begin()->first.first;
  for (const auto& [key, count] : h.buckets) {
    worst = std::max(worst, key.first);
  }
  return worst;
}

MakespanHistogram composedHistogram(const sched::RegionSchedule& rs,
                                    ControlStyle style,
                                    const dfg::BranchChoices& choices) {
  std::map<std::string, MakespanHistogram> perLeaf;
  MakespanHistogram out = MakespanHistogram::unit();
  for (const std::string& path : dfg::activationTrace(rs.program, choices)) {
    auto it = perLeaf.find(path);
    if (it == perLeaf.end()) {
      it = perLeaf.emplace(path, makespanHistogram(rs.leaf(path), style)).first;
    }
    out = convolveHistograms(out, it->second);
  }
  return out;
}

LatencyComparison composedLatency(const sched::RegionSchedule& rs,
                                  const dfg::BranchChoices& choices,
                                  const std::vector<double>& ps) {
  const double clockNs = rs.clockNs();
  const MakespanHistogram tau =
      composedHistogram(rs, ControlStyle::CentSync, choices);
  const MakespanHistogram dist =
      composedHistogram(rs, ControlStyle::Distributed, choices);
  LatencyComparison out;
  out.ps = ps;
  out.tau.bestNs = histogramBestCycles(tau) * clockNs;
  out.tau.worstNs = histogramWorstCycles(tau) * clockNs;
  out.dist.bestNs = histogramBestCycles(dist) * clockNs;
  out.dist.worstNs = histogramWorstCycles(dist) * clockNs;
  for (double p : ps) {
    const double tauNs = histogramAverageCycles(tau, p) * clockNs;
    const double distNs = histogramAverageCycles(dist, p) * clockNs;
    out.tau.averageNs.push_back(tauNs);
    out.dist.averageNs.push_back(distNs);
    out.enhancementPercent.push_back(
        tauNs > 0.0 ? (tauNs - distNs) / tauNs * 100.0 : 0.0);
  }
  return out;
}

}  // namespace tauhls::sim
