// Latency statistics over the Bernoulli(P) operand-class model (Table 2).
//
// Three estimators:
//  * CentSync averages are closed-form: each TAUBM step costs 2 cycles unless
//    all of its k TAU ops hit SD, so E[cycles] = sum over steps of (2 - p^k).
//    O(steps) regardless of the TAU count -- the sync column of every sweep
//    is always exact, with no enumeration cap.
//  * Distributed averages enumerate all 2^n SD/LD assignments of the n
//    TAU-bound ops whenever n <= 24.  The enumeration walks each chunk in
//    Gray-code order so consecutive masks differ in a single TAU op, which a
//    MakespanEngine::DistributedSweep re-evaluates incrementally (worklist
//    delta propagation over a CSR successor index); per-mask weights come
//    from a precomputed popcount table and per-worker scratch buffers are
//    reused across all masks, so the hot loop performs no allocation.
//  * Seeded Monte-Carlo sampling for larger designs (samples are drawn as
//    masks and evaluated through the same scratch engine).
//
// All estimators are parallel (common/parallel.hpp; TAUHLS_THREADS lanes)
// and deterministic: the enumeration/sample space is cut into a fixed chunk
// grid that depends only on the problem size, per-chunk partial sums are
// folded in chunk-index order (the Gray-code walk only reorders *evaluation*;
// the weighted accumulation stays in ascending mask order), and Monte-Carlo
// sample i always draws from counter seed `seed + i` -- so every statistic is
// bit-identical for any thread count, and the enumeration result is
// bit-identical to the brute-force reference implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/makespan.hpp"

namespace tauhls::sim {

enum class ControlStyle {
  Distributed,  ///< the paper's proposal (LT_DIST)
  CentSync,     ///< synchronized TAUBM expansion (LT_TAU)
};

/// Exact-enumeration cap for the Distributed style (CentSync is closed-form
/// and uncapped).
inline constexpr int kMaxExactTauOps = 24;

/// Makespan in cycles under `style` for a specific class assignment.
int makespanCycles(const sched::ScheduledDfg& s, ControlStyle style,
                   const OperandClasses& classes);

/// Best case: every TAU op in the SD class.
int bestCaseCycles(const sched::ScheduledDfg& s, ControlStyle style);
/// Worst case: every TAU op in the LD class.
int worstCaseCycles(const sched::ScheduledDfg& s, ControlStyle style);
/// As above, reusing a prebuilt engine (no schedule bookkeeping rebuild).
int bestCaseCycles(const MakespanEngine& engine, ControlStyle style);
int worstCaseCycles(const MakespanEngine& engine, ControlStyle style);

/// Expected makespan (cycles): closed form for CentSync (any TAU count),
/// exact enumeration for Distributed (requires <= 24 TAU ops).
double averageCyclesExact(const sched::ScheduledDfg& s, ControlStyle style,
                          double p);

/// As above, reusing a prebuilt engine (sweeps evaluate many P values per
/// schedule; building the engine once is the memoized fast path).
double averageCyclesExact(const sched::ScheduledDfg& s,
                          const MakespanEngine& engine, ControlStyle style,
                          double p);

/// Expected makespan for every P in `ps` at once.  The Distributed makespan
/// of a mask does not depend on P, so the 2^n assignments are enumerated a
/// single time and reweighted per P -- each entry is bit-identical to the
/// corresponding averageCyclesExact(s, engine, style, ps[i]) call.  This is
/// the Table 2 fast path: one Gray-code sweep serves the whole P column.
std::vector<double> averageCyclesExactSweep(const sched::ScheduledDfg& s,
                                            const MakespanEngine& engine,
                                            ControlStyle style,
                                            const std::vector<double>& ps);

/// Brute-force reference enumerator (the pre-Gray-code algorithm: one full
/// makespan sweep and two pow() calls per mask).  Kept for cross-validation
/// and benchmarking; averageCyclesExact is bit-identical to it for the
/// Distributed style and agrees to rounding for CentSync.
double averageCyclesExactReference(const sched::ScheduledDfg& s,
                                   const MakespanEngine& engine,
                                   ControlStyle style, double p);

/// Expected makespan (cycles) by Monte-Carlo sampling.
double averageCyclesMonteCarlo(const sched::ScheduledDfg& s, ControlStyle style,
                               double p, int samples, std::uint64_t seed = 1);

/// As above, reusing a prebuilt engine.
double averageCyclesMonteCarlo(const sched::ScheduledDfg& s,
                               const MakespanEngine& engine, ControlStyle style,
                               double p, int samples, std::uint64_t seed = 1);

/// One Table 2 row for one control style.
struct LatencyRow {
  double bestNs = 0.0;
  std::vector<double> averageNs;  ///< one entry per requested P
  double worstNs = 0.0;
};

/// Full Table 2 entry: LT_TAU (CentSync), LT_DIST (Distributed) and the
/// paper's enhancement percentages per P value.
struct LatencyComparison {
  std::vector<double> ps;
  LatencyRow tau;
  LatencyRow dist;
  std::vector<double> enhancementPercent;  ///< (tau - dist) / tau * 100, per P
};

/// Compute the comparison.  The CentSync row is always closed-form exact;
/// the Distributed row uses exact enumeration up to 24 TAU ops and falls
/// back to Monte-Carlo with `mcSamples` samples beyond.
LatencyComparison compareLatencies(const sched::ScheduledDfg& s,
                                   const std::vector<double>& ps,
                                   int mcSamples = 20000);

/// A seeded confidence-interval Monte-Carlo estimate: mean cycles, the 95%
/// CI half-width around it, and how many samples were spent to get there.
struct McEstimate {
  double mean = 0.0;
  double halfWidth = 0.0;
  std::uint64_t samples = 0;
};

/// Crossover policy of the adaptive compareLatencies overload.
struct LatencyOptions {
  /// TAU-op count up to which the Distributed column is enumerated exactly;
  /// beyond it the adaptive Monte-Carlo estimator takes over.
  int exactCap = kMaxExactTauOps;
  /// First Monte-Carlo batch; rounds double from here.
  int mcSamples = 20000;
  /// Hard per-P sample ceiling (the estimator stops doubling here even if
  /// the target half-width is not reached).
  int mcMaxSamples = 1 << 20;
  /// Stop once the 95% CI half-width (in cycles) is at or below this.
  double mcTargetHalfWidth = 0.05;
  std::uint64_t mcSeed = 1;
};

/// Adaptive seeded Monte-Carlo: sample counts double (each round recomputed
/// from scratch over counter seeds, so the estimate is bit-identical for any
/// thread count) until the 95% CI half-width reaches
/// `options.mcTargetHalfWidth` or `options.mcMaxSamples` is hit.
McEstimate averageCyclesMonteCarloAdaptive(const sched::ScheduledDfg& s,
                                           const MakespanEngine& engine,
                                           ControlStyle style, double p,
                                           const LatencyOptions& options = {});

/// Adaptive exact<->MC crossover: exact Gray-code enumeration up to
/// `options.exactCap` TAU ops, the confidence-interval Monte-Carlo estimator
/// beyond it.  With default options and <= 24 TAU ops this is bit-identical
/// to the legacy compareLatencies above.  When `mcInfo` is non-null it
/// receives one entry per P (empty estimates when the exact path ran).
LatencyComparison compareLatencies(const sched::ScheduledDfg& s,
                                   const std::vector<double>& ps,
                                   const LatencyOptions& options,
                                   std::vector<McEstimate>* mcInfo = nullptr);

}  // namespace tauhls::sim
