// Latency statistics over the Bernoulli(P) operand-class model (Table 2).
//
// Two estimators: exact enumeration of all 2^n SD/LD assignments of the n
// TAU-bound ops (noise-free; used whenever n <= 20 -- every paper benchmark
// qualifies), and seeded Monte-Carlo sampling for larger designs.  Both are
// available for both control styles; tests cross-validate them.
//
// Both estimators are parallel (common/parallel.hpp; TAUHLS_THREADS lanes)
// and deterministic: the enumeration/sample space is cut into a fixed chunk
// grid that depends only on the problem size, per-chunk partial sums are
// folded in chunk-index order, and Monte-Carlo sample i always draws from
// counter seed `seed + i` -- so every statistic is bit-identical for any
// thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/makespan.hpp"

namespace tauhls::sim {

enum class ControlStyle {
  Distributed,  ///< the paper's proposal (LT_DIST)
  CentSync,     ///< synchronized TAUBM expansion (LT_TAU)
};

/// Makespan in cycles under `style` for a specific class assignment.
int makespanCycles(const sched::ScheduledDfg& s, ControlStyle style,
                   const OperandClasses& classes);

/// Best case: every TAU op in the SD class.
int bestCaseCycles(const sched::ScheduledDfg& s, ControlStyle style);
/// Worst case: every TAU op in the LD class.
int worstCaseCycles(const sched::ScheduledDfg& s, ControlStyle style);

/// Expected makespan (cycles) by exact enumeration; requires <= 20 TAU ops.
double averageCyclesExact(const sched::ScheduledDfg& s, ControlStyle style,
                          double p);

/// As above, reusing a prebuilt engine (sweeps evaluate many P values per
/// schedule; building the engine once is the memoized fast path).
double averageCyclesExact(const sched::ScheduledDfg& s,
                          const MakespanEngine& engine, ControlStyle style,
                          double p);

/// Expected makespan (cycles) by Monte-Carlo sampling.
double averageCyclesMonteCarlo(const sched::ScheduledDfg& s, ControlStyle style,
                               double p, int samples, std::uint64_t seed = 1);

/// As above, reusing a prebuilt engine.
double averageCyclesMonteCarlo(const sched::ScheduledDfg& s,
                               const MakespanEngine& engine, ControlStyle style,
                               double p, int samples, std::uint64_t seed = 1);

/// One Table 2 row for one control style.
struct LatencyRow {
  double bestNs = 0.0;
  std::vector<double> averageNs;  ///< one entry per requested P
  double worstNs = 0.0;
};

/// Full Table 2 entry: LT_TAU (CentSync), LT_DIST (Distributed) and the
/// paper's enhancement percentages per P value.
struct LatencyComparison {
  std::vector<double> ps;
  LatencyRow tau;
  LatencyRow dist;
  std::vector<double> enhancementPercent;  ///< (tau - dist) / tau * 100, per P
};

/// Compute the comparison with exact averages (Monte-Carlo fallback with
/// `mcSamples` samples when the design has more than 20 TAU ops).
LatencyComparison compareLatencies(const sched::ScheduledDfg& s,
                                   const std::vector<double>& ps,
                                   int mcSamples = 20000);

}  // namespace tauhls::sim
