// Text Gantt rendering of a distributed execution: one row per arithmetic
// unit, one column per clock cycle, showing which operation occupies the
// unit (LD second cycles marked with '+').  Used by examples and docs.
#pragma once

#include <string>

#include "sim/makespan.hpp"

namespace tauhls::sim {

/// Render the distributed schedule of one iteration under `classes`.
std::string renderGantt(const sched::ScheduledDfg& s,
                        const OperandClasses& classes);

}  // namespace tauhls::sim
