#include "sim/distribution.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace tauhls::sim {

double LatencyDistribution::mean() const {
  double m = 0.0;
  for (const auto& [cycles, prob] : pmf) m += cycles * prob;
  return m;
}

int LatencyDistribution::quantile(double q) const {
  TAUHLS_CHECK(q >= 0.0 && q <= 1.0, "quantile must lie in [0,1]");
  TAUHLS_CHECK(!pmf.empty(), "empty distribution");
  double cumulative = 0.0;
  for (const auto& [cycles, prob] : pmf) {
    cumulative += prob;
    if (cumulative >= q - 1e-12) return cycles;
  }
  return pmf.rbegin()->first;
}

int LatencyDistribution::minCycles() const {
  TAUHLS_CHECK(!pmf.empty(), "empty distribution");
  return pmf.begin()->first;
}

int LatencyDistribution::maxCycles() const {
  TAUHLS_CHECK(!pmf.empty(), "empty distribution");
  return pmf.rbegin()->first;
}

LatencyDistribution latencyDistribution(const sched::ScheduledDfg& s,
                                        ControlStyle style, double p) {
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  const MakespanEngine engine(s);
  const int n = engine.numTauOps();
  TAUHLS_CHECK(n <= kMaxExactTauOps,
               "exact distribution limited to 24 TAU ops");
  std::vector<double> weights(static_cast<std::size_t>(n) + 1);
  for (int c = 0; c <= n; ++c) {
    weights[static_cast<std::size_t>(c)] =
        std::pow(p, c) * std::pow(1.0 - p, n - c);
  }
  const std::uint64_t total = std::uint64_t{1} << n;
  // The mass accumulation stays serial and in ascending mask order (the pmf
  // buckets are tiny; evaluation dominates).  Only the Distributed makespans
  // are produced by the Gray-code sweep, one chunk buffer at a time.
  LatencyDistribution dist;
  const std::uint64_t chunkSize = total / common::chunkCountFor(total);
  std::vector<int> cycles(static_cast<std::size_t>(chunkSize));
  MakespanEngine::DistributedSweep sweep(engine);
  for (std::uint64_t base = 0; base < total; base += chunkSize) {
    if (style == ControlStyle::Distributed) {
      sweep.evalChunk(base, chunkSize, cycles.data());
    }
    for (std::uint64_t off = 0; off < chunkSize; ++off) {
      const std::uint64_t mask = base + off;
      const double weight =
          weights[static_cast<std::size_t>(std::popcount(mask))];
      if (weight == 0.0) continue;
      const int c = style == ControlStyle::Distributed
                        ? cycles[off]
                        : engine.syncCycles(mask);
      dist.pmf[c] += weight;
    }
  }
  return dist;
}

}  // namespace tauhls::sim
