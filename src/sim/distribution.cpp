#include "sim/distribution.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace tauhls::sim {

double LatencyDistribution::mean() const {
  double m = 0.0;
  for (const auto& [cycles, prob] : pmf) m += cycles * prob;
  return m;
}

int LatencyDistribution::quantile(double q) const {
  TAUHLS_CHECK(q >= 0.0 && q <= 1.0, "quantile must lie in [0,1]");
  TAUHLS_CHECK(!pmf.empty(), "empty distribution");
  double cumulative = 0.0;
  for (const auto& [cycles, prob] : pmf) {
    cumulative += prob;
    if (cumulative >= q - 1e-12) return cycles;
  }
  return pmf.rbegin()->first;
}

int LatencyDistribution::minCycles() const {
  TAUHLS_CHECK(!pmf.empty(), "empty distribution");
  return pmf.begin()->first;
}

int LatencyDistribution::maxCycles() const {
  TAUHLS_CHECK(!pmf.empty(), "empty distribution");
  return pmf.rbegin()->first;
}

LatencyDistribution latencyDistribution(const sched::ScheduledDfg& s,
                                        ControlStyle style, double p) {
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  const int n = static_cast<int>(tauOps(s).size());
  TAUHLS_CHECK(n <= 20, "exact distribution limited to 20 TAU ops");
  const MakespanEngine engine(s);
  LatencyDistribution dist;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    const int shortCount = std::popcount(mask);
    const double weight =
        std::pow(p, shortCount) * std::pow(1.0 - p, n - shortCount);
    if (weight == 0.0) continue;
    const OperandClasses classes = fromMask(s, mask);
    const int cycles = style == ControlStyle::Distributed
                           ? engine.distributedCycles(classes)
                           : engine.syncCycles(classes);
    dist.pmf[cycles] += weight;
  }
  return dist;
}

}  // namespace tauhls::sim
