#include "sim/stats.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace tauhls::sim {

int makespanCycles(const sched::ScheduledDfg& s, ControlStyle style,
                   const OperandClasses& classes) {
  return style == ControlStyle::Distributed
             ? distributedMakespanCycles(s, classes)
             : syncMakespanCycles(s, classes);
}

int bestCaseCycles(const sched::ScheduledDfg& s, ControlStyle style) {
  return makespanCycles(s, style, allShort(s));
}

int worstCaseCycles(const sched::ScheduledDfg& s, ControlStyle style) {
  return makespanCycles(s, style, allLong(s));
}

double averageCyclesExact(const sched::ScheduledDfg& s, ControlStyle style,
                          double p) {
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  const std::vector<dfg::NodeId> taus = tauOps(s);
  const int n = static_cast<int>(taus.size());
  TAUHLS_CHECK(n <= 20, "exact enumeration limited to 20 TAU ops; use "
                        "averageCyclesMonteCarlo");
  const MakespanEngine engine(s);
  double expectation = 0.0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    const int shortCount = std::popcount(mask);
    const double weight = std::pow(p, shortCount) *
                          std::pow(1.0 - p, n - shortCount);
    if (weight == 0.0) continue;
    const OperandClasses classes = fromMask(s, mask);
    const int cycles = style == ControlStyle::Distributed
                           ? engine.distributedCycles(classes)
                           : engine.syncCycles(classes);
    expectation += weight * cycles;
  }
  return expectation;
}

double averageCyclesMonteCarlo(const sched::ScheduledDfg& s, ControlStyle style,
                               double p, int samples, std::uint64_t seed) {
  TAUHLS_CHECK(samples > 0, "need at least one sample");
  const MakespanEngine engine(s);
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const OperandClasses classes =
        randomClasses(s, p, seed + static_cast<std::uint64_t>(i));
    sum += style == ControlStyle::Distributed ? engine.distributedCycles(classes)
                                              : engine.syncCycles(classes);
  }
  return sum / samples;
}

LatencyComparison compareLatencies(const sched::ScheduledDfg& s,
                                   const std::vector<double>& ps,
                                   int mcSamples) {
  const bool exact = tauOps(s).size() <= 20;
  LatencyComparison out;
  out.ps = ps;
  auto row = [&](ControlStyle style) {
    LatencyRow r;
    r.bestNs = bestCaseCycles(s, style) * s.clockNs;
    r.worstNs = worstCaseCycles(s, style) * s.clockNs;
    for (double p : ps) {
      const double cycles =
          exact ? averageCyclesExact(s, style, p)
                : averageCyclesMonteCarlo(s, style, p, mcSamples);
      r.averageNs.push_back(cycles * s.clockNs);
    }
    return r;
  };
  out.tau = row(ControlStyle::CentSync);
  out.dist = row(ControlStyle::Distributed);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double tau = out.tau.averageNs[i];
    const double dist = out.dist.averageNs[i];
    out.enhancementPercent.push_back(tau > 0.0 ? (tau - dist) / tau * 100.0
                                               : 0.0);
  }
  return out;
}

}  // namespace tauhls::sim
