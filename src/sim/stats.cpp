#include "sim/stats.hpp"

#include <bit>
#include <cmath>
#include <memory>
#include <mutex>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace tauhls::sim {

namespace {

// std::pow with the IEEE-exact trivial exponents short-circuited: pow(x,0)
// is exactly 1 and pow(x,1) is exactly x, so the result is bit-identical to
// the library call while skipping it for the two most common exponents.
double powInt(double base, int exponent) {
  if (exponent == 0) return 1.0;
  if (exponent == 1) return base;
  return std::pow(base, exponent);
}

// weights[c] is the probability of any specific mask with popcount c:
// p^c * (1-p)^(n-c).  Computed once per sweep (the brute-force predecessor
// paid two pow() calls per mask); the values match it bit-for-bit so
// weighted sums stay bit-identical.
void popcountWeights(int n, double p, std::vector<double>& weights) {
  weights.resize(static_cast<std::size_t>(n) + 1);
  for (int c = 0; c <= n; ++c) {
    weights[static_cast<std::size_t>(c)] =
        powInt(p, c) * powInt(1.0 - p, n - c);
  }
}

// Per-worker scratch, handed out through a small freelist so buffers are
// reused across chunks (and across masks / Monte-Carlo samples within a
// chunk) instead of being reallocated: the enumeration hot loop never
// allocates after warm-up.
struct SweepScratch {
  explicit SweepScratch(const MakespanEngine& engine) : sweep(engine) {}
  MakespanEngine::DistributedSweep sweep;
  std::vector<int> cycles;
};

class ScratchPool {
 public:
  explicit ScratchPool(const MakespanEngine& engine) : engine_(engine) {}

  std::unique_ptr<SweepScratch> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<SweepScratch> scratch = std::move(free_.back());
        free_.pop_back();
        return scratch;
      }
    }
    return std::make_unique<SweepScratch>(engine_);
  }

  void release(std::unique_ptr<SweepScratch> scratch) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(scratch));
  }

 private:
  const MakespanEngine& engine_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<SweepScratch>> free_;
};

// Weighted partial sum of one contiguous mask range, accumulated in
// ascending mask order (the fold order every estimator in this file commits
// to; see the header's determinism contract).
double weightedRangeSum(const int* cycles, std::uint64_t base,
                        std::uint64_t count, const std::vector<double>& weights) {
  double partial = 0.0;
  for (std::uint64_t off = 0; off < count; ++off) {
    const double weight =
        weights[static_cast<std::size_t>(std::popcount(base + off))];
    if (weight == 0.0) continue;
    partial += weight * cycles[off];
  }
  return partial;
}

double distributedAverageExact(const MakespanEngine& engine, double p) {
  const int n = engine.numTauOps();
  TAUHLS_CHECK(n <= kMaxExactTauOps,
               "exact enumeration limited to 24 TAU ops; use "
               "averageCyclesMonteCarlo");
  // Degenerate P: a single mask carries all the weight.
  if (p == 1.0) return engine.bestDistributedCycles();
  if (p == 0.0) return engine.worstDistributedCycles();

  const std::uint64_t total = std::uint64_t{1} << n;
  std::vector<double> weights;
  popcountWeights(n, p, weights);
  if (total <= 256) {
    // Small designs fit one Gray-code walk; ascending-order accumulation of
    // single-mask terms matches the reference's one-mask-per-chunk fold
    // exactly (every term is a single rounded product).
    MakespanEngine::DistributedSweep sweep(engine);
    int cycles[256];
    sweep.evalChunk(0, total, cycles);
    return weightedRangeSum(cycles, 0, total, weights);
  }
  // Fixed chunk grid (function of n only): contiguous mask ranges whose
  // partial expectations are folded in index order, so the result is
  // bit-identical for every thread count.
  const std::uint64_t numChunks = common::chunkCountFor(total);
  const std::uint64_t chunkSize = total / numChunks;  // both are powers of 2
  ScratchPool pool(engine);
  return common::parallelReduce<double>(
      static_cast<std::size_t>(numChunks), 0.0,
      [&](std::size_t chunk) {
        std::unique_ptr<SweepScratch> scratch = pool.acquire();
        scratch->cycles.resize(chunkSize);
        const std::uint64_t begin = chunk * chunkSize;
        scratch->sweep.evalChunk(begin, chunkSize, scratch->cycles.data());
        const double partial =
            weightedRangeSum(scratch->cycles.data(), begin, chunkSize, weights);
        pool.release(std::move(scratch));
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

}  // namespace

int makespanCycles(const sched::ScheduledDfg& s, ControlStyle style,
                   const OperandClasses& classes) {
  return style == ControlStyle::Distributed
             ? distributedMakespanCycles(s, classes)
             : syncMakespanCycles(s, classes);
}

int bestCaseCycles(const MakespanEngine& engine, ControlStyle style) {
  return style == ControlStyle::Distributed ? engine.bestDistributedCycles()
                                            : engine.bestSyncCycles();
}

int worstCaseCycles(const MakespanEngine& engine, ControlStyle style) {
  return style == ControlStyle::Distributed ? engine.worstDistributedCycles()
                                            : engine.worstSyncCycles();
}

int bestCaseCycles(const sched::ScheduledDfg& s, ControlStyle style) {
  return bestCaseCycles(MakespanEngine(s), style);
}

int worstCaseCycles(const sched::ScheduledDfg& s, ControlStyle style) {
  return worstCaseCycles(MakespanEngine(s), style);
}

double averageCyclesExact(const sched::ScheduledDfg& s, ControlStyle style,
                          double p) {
  return averageCyclesExact(s, MakespanEngine(s), style, p);
}

double averageCyclesExact(const sched::ScheduledDfg& s,
                          const MakespanEngine& engine, ControlStyle style,
                          double p) {
  (void)s;
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  if (style == ControlStyle::CentSync) return engine.syncExpectedCycles(p);
  return distributedAverageExact(engine, p);
}

std::vector<double> averageCyclesExactSweep(const sched::ScheduledDfg& s,
                                            const MakespanEngine& engine,
                                            ControlStyle style,
                                            const std::vector<double>& ps) {
  std::vector<double> out(ps.size());
  if (style == ControlStyle::CentSync) {
    for (std::size_t i = 0; i < ps.size(); ++i) {
      out[i] = engine.syncExpectedCycles(ps[i]);
    }
    return out;
  }
  const int n = engine.numTauOps();
  TAUHLS_CHECK(n <= kMaxExactTauOps,
               "exact enumeration limited to 24 TAU ops; use "
               "averageCyclesMonteCarlo");
  const std::uint64_t total = std::uint64_t{1} << n;
  if (total > (std::uint64_t{1} << 20)) {
    // Buffering 2^n makespans would cost tens of MB; enumerate per P.
    for (std::size_t i = 0; i < ps.size(); ++i) {
      out[i] = averageCyclesExact(s, engine, style, ps[i]);
    }
    return out;
  }
  // Distributed makespans do not depend on P: enumerate them once, then
  // reweight the same buffer for every requested P.  Accumulation reuses the
  // per-P chunk grid and fold order, so each entry is bit-identical to a
  // standalone averageCyclesExact call.
  std::vector<int> cycles(static_cast<std::size_t>(total));
  const std::uint64_t numChunks = common::chunkCountFor(total);
  const std::uint64_t chunkSize = total / numChunks;
  if (total <= 256) {
    MakespanEngine::DistributedSweep sweep(engine);
    sweep.evalChunk(0, total, cycles.data());
  } else {
    ScratchPool pool(engine);
    common::parallelFor(static_cast<std::size_t>(numChunks),
                        [&](std::size_t chunk) {
                          std::unique_ptr<SweepScratch> scratch = pool.acquire();
                          const std::uint64_t begin = chunk * chunkSize;
                          scratch->sweep.evalChunk(begin, chunkSize,
                                                   cycles.data() + begin);
                          pool.release(std::move(scratch));
                        });
  }
  std::vector<double> weights;  // reused across the P entries
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double p = ps[i];
    TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
    if (p == 1.0) {
      out[i] = engine.bestDistributedCycles();
      continue;
    }
    if (p == 0.0) {
      out[i] = engine.worstDistributedCycles();
      continue;
    }
    popcountWeights(n, p, weights);
    if (total <= 256) {
      out[i] = weightedRangeSum(cycles.data(), 0, total, weights);
    } else {
      out[i] = common::parallelReduce<double>(
          static_cast<std::size_t>(numChunks), 0.0,
          [&](std::size_t chunk) {
            const std::uint64_t begin = chunk * chunkSize;
            return weightedRangeSum(cycles.data() + begin, begin, chunkSize,
                                    weights);
          },
          [](double acc, double partial) { return acc + partial; });
    }
  }
  return out;
}

double averageCyclesExactReference(const sched::ScheduledDfg& s,
                                   const MakespanEngine& engine,
                                   ControlStyle style, double p) {
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  const std::vector<dfg::NodeId> taus = tauOps(s);
  const int n = static_cast<int>(taus.size());
  TAUHLS_CHECK(n <= kMaxExactTauOps,
               "exact enumeration limited to 24 TAU ops; use "
               "averageCyclesMonteCarlo");
  const std::uint64_t total = std::uint64_t{1} << n;
  const std::uint64_t numChunks = common::chunkCountFor(total);
  const std::uint64_t chunkSize = total / numChunks;
  return common::parallelReduce<double>(
      static_cast<std::size_t>(numChunks), 0.0,
      [&](std::size_t chunk) {
        const std::uint64_t begin = chunk * chunkSize;
        const std::uint64_t end = begin + chunkSize;
        double partial = 0.0;
        for (std::uint64_t mask = begin; mask < end; ++mask) {
          const int shortCount = std::popcount(mask);
          const double weight = std::pow(p, shortCount) *
                                std::pow(1.0 - p, n - shortCount);
          if (weight == 0.0) continue;
          OperandClasses classes = allShort(s);
          for (std::size_t i = 0; i < taus.size(); ++i) {
            classes.shortClass[taus[i]] = (mask >> i) & 1;
          }
          const int cycles = style == ControlStyle::Distributed
                                 ? engine.distributedCycles(classes)
                                 : engine.syncCycles(classes);
          partial += weight * cycles;
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

double averageCyclesMonteCarlo(const sched::ScheduledDfg& s, ControlStyle style,
                               double p, int samples, std::uint64_t seed) {
  return averageCyclesMonteCarlo(s, MakespanEngine(s), style, p, samples, seed);
}

double averageCyclesMonteCarlo(const sched::ScheduledDfg& s,
                               const MakespanEngine& engine, ControlStyle style,
                               double p, int samples, std::uint64_t seed) {
  TAUHLS_CHECK(samples > 0, "need at least one sample");
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  const int n = engine.numTauOps();
  const bool maskable = engine.supportsMasks();
  const std::vector<dfg::NodeId> taus = maskable ? std::vector<dfg::NodeId>{}
                                                 : tauOps(s);
  // Sample i always draws from counter seed `seed + i` and the sample range
  // is cut into a fixed chunk grid, so the estimate does not depend on how
  // many threads computed it.
  const std::uint64_t total = static_cast<std::uint64_t>(samples);
  const std::uint64_t numChunks = common::chunkCountFor(total);
  const std::uint64_t chunkSize = (total + numChunks - 1) / numChunks;
  ScratchPool pool(engine);
  const double sum = common::parallelReduce<double>(
      static_cast<std::size_t>(numChunks), 0.0,
      [&](std::size_t chunk) {
        const std::uint64_t begin = chunk * chunkSize;
        const std::uint64_t end =
            begin + chunkSize < total ? begin + chunkSize : total;
        double partial = 0.0;
        if (maskable) {
          // Mask-native sampling: no OperandClasses vector, one reused sweep.
          std::unique_ptr<SweepScratch> scratch =
              style == ControlStyle::Distributed ? pool.acquire() : nullptr;
          for (std::uint64_t i = begin; i < end; ++i) {
            const std::uint64_t mask = randomClassMask(n, p, seed + i);
            partial += style == ControlStyle::Distributed
                           ? scratch->sweep.evalFull(mask)
                           : engine.syncCycles(mask);
          }
          if (scratch) pool.release(std::move(scratch));
        } else {
          OperandClasses classes;
          for (std::uint64_t i = begin; i < end; ++i) {
            randomClasses(s, taus, p, seed + i, classes);
            partial += style == ControlStyle::Distributed
                           ? engine.distributedCycles(classes)
                           : engine.syncCycles(classes);
          }
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
  return sum / samples;
}

namespace {

/// Deterministic first and second moments of the makespan over `total`
/// counter-seeded samples (sample i is always seed + i; partials fold in
/// ascending chunk order).
std::pair<double, double> mcMoments(const sched::ScheduledDfg& s,
                                    const MakespanEngine& engine,
                                    ControlStyle style, double p,
                                    std::uint64_t total, std::uint64_t seed) {
  const int n = engine.numTauOps();
  const bool maskable = engine.supportsMasks();
  const std::vector<dfg::NodeId> taus = maskable ? std::vector<dfg::NodeId>{}
                                                 : tauOps(s);
  const std::uint64_t numChunks = common::chunkCountFor(total);
  const std::uint64_t chunkSize = (total + numChunks - 1) / numChunks;
  ScratchPool pool(engine);
  using Moments = std::pair<double, double>;
  return common::parallelReduce<Moments>(
      static_cast<std::size_t>(numChunks), {0.0, 0.0},
      [&](std::size_t chunk) {
        const std::uint64_t begin = chunk * chunkSize;
        const std::uint64_t end =
            begin + chunkSize < total ? begin + chunkSize : total;
        Moments partial{0.0, 0.0};
        if (maskable) {
          std::unique_ptr<SweepScratch> scratch =
              style == ControlStyle::Distributed ? pool.acquire() : nullptr;
          for (std::uint64_t i = begin; i < end; ++i) {
            const std::uint64_t mask = randomClassMask(n, p, seed + i);
            const double cycles = style == ControlStyle::Distributed
                                      ? scratch->sweep.evalFull(mask)
                                      : engine.syncCycles(mask);
            partial.first += cycles;
            partial.second += cycles * cycles;
          }
          if (scratch) pool.release(std::move(scratch));
        } else {
          OperandClasses classes;
          for (std::uint64_t i = begin; i < end; ++i) {
            randomClasses(s, taus, p, seed + i, classes);
            const double cycles = style == ControlStyle::Distributed
                                      ? engine.distributedCycles(classes)
                                      : engine.syncCycles(classes);
            partial.first += cycles;
            partial.second += cycles * cycles;
          }
        }
        return partial;
      },
      [](Moments acc, Moments partial) {
        return Moments{acc.first + partial.first, acc.second + partial.second};
      });
}

}  // namespace

McEstimate averageCyclesMonteCarloAdaptive(const sched::ScheduledDfg& s,
                                           const MakespanEngine& engine,
                                           ControlStyle style, double p,
                                           const LatencyOptions& options) {
  TAUHLS_CHECK(options.mcSamples > 0, "need at least one sample");
  TAUHLS_CHECK(options.mcMaxSamples >= options.mcSamples,
               "mcMaxSamples below the initial batch");
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  const std::uint64_t ceiling =
      static_cast<std::uint64_t>(options.mcMaxSamples);
  std::uint64_t n = static_cast<std::uint64_t>(options.mcSamples);
  McEstimate est;
  for (;;) {
    // Each round recomputes its moments from scratch over samples [0, n):
    // the doubling costs at most one extra pass in total, and the result
    // for a given n never depends on the rounds that preceded it.
    const auto [sum, sumSq] =
        mcMoments(s, engine, style, p, n, options.mcSeed);
    est.mean = sum / static_cast<double>(n);
    est.samples = n;
    const double variance =
        n > 1 ? std::max(0.0, (sumSq - sum * est.mean) /
                                  static_cast<double>(n - 1))
              : 0.0;
    est.halfWidth = 1.96 * std::sqrt(variance / static_cast<double>(n));
    if (est.halfWidth <= options.mcTargetHalfWidth || n >= ceiling) break;
    n = std::min(n * 2, ceiling);
  }
  return est;
}

LatencyComparison compareLatencies(const sched::ScheduledDfg& s,
                                   const std::vector<double>& ps,
                                   const LatencyOptions& options,
                                   std::vector<McEstimate>* mcInfo) {
  const MakespanEngine engine(s);
  const bool exactDist = engine.numTauOps() <= options.exactCap &&
                         engine.numTauOps() <= kMaxExactTauOps;
  LatencyComparison out;
  out.ps = ps;
  out.tau.bestNs = engine.bestSyncCycles() * s.clockNs;
  out.tau.worstNs = engine.worstSyncCycles() * s.clockNs;
  out.dist.bestNs = engine.bestDistributedCycles() * s.clockNs;
  out.dist.worstNs = engine.worstDistributedCycles() * s.clockNs;
  out.tau.averageNs.resize(ps.size());
  out.dist.averageNs.resize(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out.tau.averageNs[i] = engine.syncExpectedCycles(ps[i]) * s.clockNs;
  }
  if (mcInfo != nullptr) mcInfo->assign(ps.size(), McEstimate{});
  if (exactDist) {
    const std::vector<double> cycles =
        averageCyclesExactSweep(s, engine, ControlStyle::Distributed, ps);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      out.dist.averageNs[i] = cycles[i] * s.clockNs;
    }
  } else {
    // Each P runs its own doubling loop; the loops already parallelize
    // internally over the sample range, so the fan-out here stays serial
    // per P to keep the scratch footprint bounded.
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const McEstimate est = averageCyclesMonteCarloAdaptive(
          s, engine, ControlStyle::Distributed, ps[i], options);
      out.dist.averageNs[i] = est.mean * s.clockNs;
      if (mcInfo != nullptr) (*mcInfo)[i] = est;
    }
  }
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double tau = out.tau.averageNs[i];
    const double dist = out.dist.averageNs[i];
    out.enhancementPercent.push_back(tau > 0.0 ? (tau - dist) / tau * 100.0
                                               : 0.0);
  }
  return out;
}

LatencyComparison compareLatencies(const sched::ScheduledDfg& s,
                                   const std::vector<double>& ps,
                                   int mcSamples) {
  // One engine serves every (style, P) cell of the sweep -- the schedule,
  // binding and topological bookkeeping are built once, not per point.
  const MakespanEngine engine(s);
  // Exact-vs-MC is picked per style: CentSync is closed-form (always exact);
  // Distributed enumerates up to the 24-TAU-op cap.
  const bool exactDist = engine.numTauOps() <= kMaxExactTauOps;
  LatencyComparison out;
  out.ps = ps;
  out.tau.bestNs = engine.bestSyncCycles() * s.clockNs;
  out.tau.worstNs = engine.worstSyncCycles() * s.clockNs;
  out.dist.bestNs = engine.bestDistributedCycles() * s.clockNs;
  out.dist.worstNs = engine.worstDistributedCycles() * s.clockNs;
  out.tau.averageNs.resize(ps.size());
  out.dist.averageNs.resize(ps.size());
  // LT_TAU column: closed form, O(steps) per P.
  for (std::size_t i = 0; i < ps.size(); ++i) {
    out.tau.averageNs[i] = engine.syncExpectedCycles(ps[i]) * s.clockNs;
  }
  // LT_DIST column: one shared enumeration reweighted per P when exact;
  // independent Monte-Carlo cells fanned out otherwise.
  if (exactDist) {
    const std::vector<double> cycles =
        averageCyclesExactSweep(s, engine, ControlStyle::Distributed, ps);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      out.dist.averageNs[i] = cycles[i] * s.clockNs;
    }
  } else {
    common::parallelFor(ps.size(), [&](std::size_t i) {
      out.dist.averageNs[i] =
          averageCyclesMonteCarlo(s, engine, ControlStyle::Distributed, ps[i],
                                  mcSamples) *
          s.clockNs;
    });
  }
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double tau = out.tau.averageNs[i];
    const double dist = out.dist.averageNs[i];
    out.enhancementPercent.push_back(tau > 0.0 ? (tau - dist) / tau * 100.0
                                               : 0.0);
  }
  return out;
}

}  // namespace tauhls::sim
