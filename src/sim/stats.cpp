#include "sim/stats.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace tauhls::sim {

namespace {

// fromMask() re-derives the TAU list on every call; the enumeration loops
// below evaluate up to 2^20 masks, so they expand masks against a TAU list
// computed once per sweep instead.
OperandClasses classesFromMask(const sched::ScheduledDfg& s,
                               const std::vector<dfg::NodeId>& taus,
                               std::uint64_t mask) {
  OperandClasses c = allShort(s);
  for (std::size_t i = 0; i < taus.size(); ++i) {
    c.shortClass[taus[i]] = (mask >> i) & 1;
  }
  return c;
}

int engineCycles(const MakespanEngine& engine, ControlStyle style,
                 const OperandClasses& classes) {
  return style == ControlStyle::Distributed ? engine.distributedCycles(classes)
                                            : engine.syncCycles(classes);
}

}  // namespace

int makespanCycles(const sched::ScheduledDfg& s, ControlStyle style,
                   const OperandClasses& classes) {
  return style == ControlStyle::Distributed
             ? distributedMakespanCycles(s, classes)
             : syncMakespanCycles(s, classes);
}

int bestCaseCycles(const sched::ScheduledDfg& s, ControlStyle style) {
  return makespanCycles(s, style, allShort(s));
}

int worstCaseCycles(const sched::ScheduledDfg& s, ControlStyle style) {
  return makespanCycles(s, style, allLong(s));
}

double averageCyclesExact(const sched::ScheduledDfg& s, ControlStyle style,
                          double p) {
  return averageCyclesExact(s, MakespanEngine(s), style, p);
}

double averageCyclesExact(const sched::ScheduledDfg& s,
                          const MakespanEngine& engine, ControlStyle style,
                          double p) {
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  const std::vector<dfg::NodeId> taus = tauOps(s);
  const int n = static_cast<int>(taus.size());
  TAUHLS_CHECK(n <= 20, "exact enumeration limited to 20 TAU ops; use "
                        "averageCyclesMonteCarlo");
  const std::uint64_t total = std::uint64_t{1} << n;
  // Fixed chunk grid (function of n only): contiguous mask ranges whose
  // partial expectations are folded in index order, so the result is
  // bit-identical for every thread count.
  const std::uint64_t numChunks = common::chunkCountFor(total);
  const std::uint64_t chunkSize = total / numChunks;  // both are powers of 2
  return common::parallelReduce<double>(
      static_cast<std::size_t>(numChunks), 0.0,
      [&](std::size_t chunk) {
        const std::uint64_t begin = chunk * chunkSize;
        const std::uint64_t end = begin + chunkSize;
        double partial = 0.0;
        for (std::uint64_t mask = begin; mask < end; ++mask) {
          const int shortCount = std::popcount(mask);
          const double weight = std::pow(p, shortCount) *
                                std::pow(1.0 - p, n - shortCount);
          if (weight == 0.0) continue;
          const OperandClasses classes = classesFromMask(s, taus, mask);
          partial += weight * engineCycles(engine, style, classes);
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
}

double averageCyclesMonteCarlo(const sched::ScheduledDfg& s, ControlStyle style,
                               double p, int samples, std::uint64_t seed) {
  return averageCyclesMonteCarlo(s, MakespanEngine(s), style, p, samples, seed);
}

double averageCyclesMonteCarlo(const sched::ScheduledDfg& s,
                               const MakespanEngine& engine, ControlStyle style,
                               double p, int samples, std::uint64_t seed) {
  TAUHLS_CHECK(samples > 0, "need at least one sample");
  // Sample i always draws from counter seed `seed + i` and the sample range
  // is cut into a fixed chunk grid, so the estimate does not depend on how
  // many threads computed it.
  const std::uint64_t total = static_cast<std::uint64_t>(samples);
  const std::uint64_t numChunks = common::chunkCountFor(total);
  const std::uint64_t chunkSize = (total + numChunks - 1) / numChunks;
  const double sum = common::parallelReduce<double>(
      static_cast<std::size_t>(numChunks), 0.0,
      [&](std::size_t chunk) {
        const std::uint64_t begin = chunk * chunkSize;
        const std::uint64_t end =
            begin + chunkSize < total ? begin + chunkSize : total;
        double partial = 0.0;
        for (std::uint64_t i = begin; i < end; ++i) {
          const OperandClasses classes = randomClasses(s, p, seed + i);
          partial += engineCycles(engine, style, classes);
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
  return sum / samples;
}

LatencyComparison compareLatencies(const sched::ScheduledDfg& s,
                                   const std::vector<double>& ps,
                                   int mcSamples) {
  const bool exact = tauOps(s).size() <= 20;
  // One engine serves every (style, P) cell of the sweep -- the schedule,
  // binding and topological bookkeeping are built once, not per point.
  const MakespanEngine engine(s);
  LatencyComparison out;
  out.ps = ps;
  out.tau.bestNs = engine.syncCycles(allShort(s)) * s.clockNs;
  out.tau.worstNs = engine.syncCycles(allLong(s)) * s.clockNs;
  out.dist.bestNs = engine.distributedCycles(allShort(s)) * s.clockNs;
  out.dist.worstNs = engine.distributedCycles(allLong(s)) * s.clockNs;
  out.tau.averageNs.resize(ps.size());
  out.dist.averageNs.resize(ps.size());
  // The P-grid x {LT_TAU, LT_DIST} cells are independent; fan them out.
  // (Inside a cell the estimators' own parallel regions run inline.)
  common::parallelFor(ps.size() * 2, [&](std::size_t cell) {
    const ControlStyle style =
        cell < ps.size() ? ControlStyle::CentSync : ControlStyle::Distributed;
    const std::size_t pi = cell % ps.size();
    const double cycles =
        exact ? averageCyclesExact(s, engine, style, ps[pi])
              : averageCyclesMonteCarlo(s, engine, style, ps[pi], mcSamples);
    LatencyRow& row = style == ControlStyle::CentSync ? out.tau : out.dist;
    row.averageNs[pi] = cycles * s.clockNs;
  });
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double tau = out.tau.averageNs[i];
    const double dist = out.dist.averageNs[i];
    out.enhancementPercent.push_back(tau > 0.0 ? (tau - dist) / tau * 100.0
                                               : 0.0);
  }
  return out;
}

}  // namespace tauhls::sim
