// FSM-level interpretation: execute the *generated controllers themselves*
// cycle by cycle, with completion-signal exchange and sticky completion
// latches, against a datapath model that raises each telescopic unit's C
// exactly when the op it is executing has SD-class operands.
//
// This is the ground truth the abstract makespan engines are validated
// against (integration property: FSM latency == abstract makespan for every
// operand-class assignment).
#pragma once

#include <string>
#include <vector>

#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "sim/classes.hpp"

namespace tauhls::sim {

struct SimTrace {
  /// Outputs asserted in each simulated cycle (sorted within a cycle).
  std::vector<std::vector<std::string>> outputsPerCycle;
  /// External completion inputs (C_*) asserted in each cycle (sorted);
  /// filled by runDistributed -- the stimulus for RTL testbench generation.
  std::vector<std::vector<std::string>> externalsPerCycle;
  /// Cycles until every operation's RE fired once (one DFG iteration).
  int latencyCycles = 0;

  /// True when `signal` was asserted in `cycle`.
  bool asserted(int cycle, const std::string& signal) const;
  /// First cycle asserting `signal`; -1 when never.
  int firstCycle(const std::string& signal) const;
};

/// Run the distributed control unit for one DFG iteration.
SimTrace runDistributed(const fsm::DistributedControlUnit& dcu,
                        const sched::ScheduledDfg& s,
                        const OperandClasses& classes, int maxCycles = 100000);

/// Run the CENT-SYNC FSM for one DFG iteration.
SimTrace runCentSync(const fsm::Fsm& centSync, const sched::ScheduledDfg& s,
                     const OperandClasses& classes, int maxCycles = 100000);

/// Drive two machines with the same random input traces and compare their
/// output sequences cycle by cycle; returns the first differing cycle or -1
/// when equivalent on all tried traces.
int compareOnRandomTraces(const fsm::Fsm& a, const fsm::Fsm& b,
                          std::uint64_t seed, int numTraces, int traceLength);

/// Drive the distributed controllers (with latch semantics) and the product
/// machine with the same random external C traces; compare the *visible*
/// (non-CCO) outputs each cycle.  Returns the first differing cycle or -1.
/// This is the behavioural-equivalence check CENT-FSM == DIST (paper §5).
int compareProductToDistributed(const fsm::DistributedControlUnit& dcu,
                                const fsm::Fsm& product, std::uint64_t seed,
                                int numTraces, int traceLength);

}  // namespace tauhls::sim
