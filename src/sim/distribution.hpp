// Exact latency distributions.
//
// Table 2 reports only expected latencies; for real-time budgeting the full
// probability mass function matters.  With <= 24 TAU ops the pmf over
// makespan cycles is computed exactly by enumerating the 2^n operand-class
// assignments with their Bernoulli(P) weights (Gray-code incremental sweep
// for the Distributed style; per-step masks for CentSync).
#pragma once

#include <map>

#include "sim/stats.hpp"

namespace tauhls::sim {

struct LatencyDistribution {
  /// cycles -> probability (sums to 1).
  std::map<int, double> pmf;

  double mean() const;
  /// Smallest cycle count c with P(latency <= c) >= q.
  int quantile(double q) const;
  int minCycles() const;
  int maxCycles() const;
};

/// Exact pmf under `style` at SD-ratio `p`; requires <= 24 TAU ops.
LatencyDistribution latencyDistribution(const sched::ScheduledDfg& s,
                                        ControlStyle style, double p);

}  // namespace tauhls::sim
