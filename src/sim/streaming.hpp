// Streaming (multi-iteration) analysis.
//
// Algorithm 1 wraps every controller's last operation back to its first
// (S_{n+1} = S_0), so the distributed control unit naturally pipelines
// consecutive DFG iterations: a unit may start iteration k+1's first op
// while other units still finish iteration k.  This engine computes the
// overlapped makespan of R iterations:
//
//   start(v, k) >= finish(pred(v), k) + 1          (intra-iteration data)
//   start(v, k) >= finish(prev-on-unit(v, k)) + 1  (unit order; the first op
//                                                   of iteration k chains
//                                                   behind the unit's last op
//                                                   of iteration k-1)
//
// NOTE: this is a best-case bound for hardware -- sustaining it requires a
// per-iteration completion-latch renewal protocol (e.g. phase toggling)
// beyond the single restart strobe of DESIGN.md §5.1; the single-iteration
// numbers elsewhere do not rely on it.  bench/ablation_streaming quantifies
// the throughput headroom this overlap offers.
#pragma once

#include "sim/classes.hpp"

namespace tauhls::sim {

struct StreamingResult {
  int totalCycles = 0;                 ///< finish of the last iteration
  std::vector<int> iterationFinish;    ///< finish cycle of each iteration
  /// Average initiation interval over iterations 2..R (equals the
  /// single-iteration makespan when R == 1).
  double avgInitiationInterval = 0.0;
};

/// Overlapped makespan of `perIteration.size()` iterations; element k gives
/// the operand classes of iteration k.
StreamingResult streamingMakespan(const sched::ScheduledDfg& s,
                                  const std::vector<OperandClasses>& perIteration);

/// Convenience: R iterations with seeded Bernoulli(p) classes each.
StreamingResult streamingMakespanRandom(const sched::ScheduledDfg& s, int R,
                                        double p, std::uint64_t seed = 1);

}  // namespace tauhls::sim
