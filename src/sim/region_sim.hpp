// Composed makespan statistics for region programs.
//
// The key identity: under the sequencer's start/done handshake an activation
// begins only when the previous one has fully completed, so the composed
// makespan of an activation trace is the *sum* of per-activation makespans,
// and the operand classes of distinct activations are independent
// Bernoulli(P) draws.  We therefore represent each leaf's exact makespan law
// as an integer 2-D histogram
//
//     (cycles, #SD-ops) -> number of class assignments
//
// built by full 2^n enumeration, and compose activations by convolution
// (cycles add, SD counts add, counts multiply).  The flat-inlined unrolled
// reference graph (sched::flattenScheduled) enumerates *its* assignment
// space into the same histogram domain; because the barrier state edges make
// its makespan exactly the per-activation sum, the two integer histograms
// are equal bucket-for-bucket -- and every statistic derived through the one
// shared weighting function (P-averages, best, worst) is bit-identical, the
// cross-check the tests and the regions bench enforce.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sched/region_schedule.hpp"
#include "sim/stats.hpp"

namespace tauhls::sim {

/// Exact makespan law of a schedule (or composition of schedules) over the
/// independent SD/LD class assignments of its TAU-bound ops.
struct MakespanHistogram {
  int tauCount = 0;
  /// (makespan cycles, SD-class op count) -> number of assignments.
  std::map<std::pair<int, int>, std::uint64_t> buckets;

  /// The neutral element of convolution: zero TAU ops, zero cycles.
  static MakespanHistogram unit();
};

/// Full-enumeration histogram of one schedule under `style`; requires at
/// most kMaxExactTauOps TAU ops.  Parallel over the fixed chunk grid and --
/// the buckets being integers -- bit-identical for every thread count.
MakespanHistogram makespanHistogram(const sched::ScheduledDfg& s,
                                    ControlStyle style);

/// Law of the sum of two independent makespans.
MakespanHistogram convolveHistograms(const MakespanHistogram& a,
                                     const MakespanHistogram& b);

/// Expected cycles under i.i.d. Bernoulli(p) SD classes.  The shared
/// weighting function: equal histograms give bit-identical doubles.
double histogramAverageCycles(const MakespanHistogram& h, double p);

int histogramBestCycles(const MakespanHistogram& h);
int histogramWorstCycles(const MakespanHistogram& h);

/// Composed law of the whole program under `choices`: per-leaf histograms
/// convolved along the activation trace.
MakespanHistogram composedHistogram(const sched::RegionSchedule& rs,
                                    ControlStyle style,
                                    const dfg::BranchChoices& choices);

/// Composed Table-2 comparison (LT_TAU vs LT_DIST, in ns) for the program
/// under `choices`, exact at every requested P.
LatencyComparison composedLatency(const sched::RegionSchedule& rs,
                                  const dfg::BranchChoices& choices,
                                  const std::vector<double>& ps);

}  // namespace tauhls::sim
