#include "sim/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace tauhls::sim {

std::string renderGantt(const sched::ScheduledDfg& s,
                        const OperandClasses& classes) {
  const std::vector<int> finish = distributedFinishCycles(s, classes);
  const int total = distributedMakespanCycles(s, classes);

  // Column width: longest op name + 1.
  std::size_t cell = 2;
  for (dfg::NodeId v : s.graph.opIds()) {
    cell = std::max(cell, s.graph.node(v).name.size() + 1);
  }
  std::size_t label = 4;
  for (const sched::UnitInstance& u : s.binding.units()) {
    label = std::max(label, u.name.size());
  }

  std::ostringstream os;
  os << std::string(label, ' ') << " |";
  for (int c = 0; c < total; ++c) {
    std::string h = std::to_string(c);
    h.resize(cell, ' ');
    os << h;
  }
  os << "\n";

  for (std::size_t u = 0; u < s.binding.numUnits(); ++u) {
    std::string row(static_cast<std::size_t>(total) * cell, '.');
    for (dfg::NodeId v : s.binding.sequenceOf(static_cast<int>(u))) {
      const int dur = s.opCycles(v, classes.isShort(v));
      const int start = finish[v] - dur + 1;
      for (int c = start; c <= finish[v]; ++c) {
        std::string tag = c == start ? s.graph.node(v).name
                                     : "+" + s.graph.node(v).name;
        tag.resize(cell, ' ');
        TAUHLS_ASSERT(c >= 0 && c < total, "op outside the makespan window");
        std::copy(tag.begin(), tag.end(),
                  row.begin() + static_cast<long>(c) * static_cast<long>(cell));
      }
    }
    std::string name = s.binding.unit(static_cast<int>(u)).name;
    name.resize(label, ' ');
    os << name << " |" << row << "\n";
  }
  return os.str();
}

}  // namespace tauhls::sim
