#include "sim/streaming.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::sim {

using dfg::NodeId;

StreamingResult streamingMakespan(
    const sched::ScheduledDfg& s,
    const std::vector<OperandClasses>& perIteration) {
  TAUHLS_CHECK(!perIteration.empty(), "need at least one iteration");
  const int R = static_cast<int>(perIteration.size());

  const std::vector<NodeId> order = dfg::topologicalOrder(s.graph);
  TAUHLS_CHECK(order.size() == s.graph.numNodes(), "scheduled graph not a DAG");

  std::vector<NodeId> prevOnUnit(s.graph.numNodes(), dfg::kNoNode);
  std::vector<NodeId> firstOnUnit;
  std::vector<NodeId> lastOnUnit;
  for (std::size_t u = 0; u < s.binding.numUnits(); ++u) {
    const auto& seq = s.binding.sequenceOf(static_cast<int>(u));
    TAUHLS_ASSERT(!seq.empty(), "unit without ops in streaming analysis");
    firstOnUnit.push_back(seq.front());
    lastOnUnit.push_back(seq.back());
    for (std::size_t i = 1; i < seq.size(); ++i) prevOnUnit[seq[i]] = seq[i - 1];
  }

  StreamingResult result;
  // finish[v] of the previous iteration's ops, carried across iterations.
  std::vector<int> prevFinish(s.graph.numNodes(), -1);
  std::vector<int> finish(s.graph.numNodes(), -1);
  for (int k = 0; k < R; ++k) {
    const OperandClasses& classes = perIteration[static_cast<std::size_t>(k)];
    TAUHLS_CHECK(classes.shortClass.size() == s.graph.numNodes(),
                 "operand-class vector size mismatch");
    for (NodeId v : order) {
      if (!s.graph.isOp(v)) continue;
      int start = 0;
      for (NodeId p : s.graph.dependencePredecessors(v)) {
        if (s.graph.isOp(p)) start = std::max(start, finish[p] + 1);
      }
      if (prevOnUnit[v] != dfg::kNoNode) {
        start = std::max(start, finish[prevOnUnit[v]] + 1);
      } else if (k > 0) {
        // First op of the unit: wraps behind the unit's last op of k-1.
        const int u = s.binding.unitOf(v);
        start = std::max(start, prevFinish[lastOnUnit[static_cast<std::size_t>(u)]] + 1);
      }
      finish[v] = start + s.opCycles(v, classes.isShort(v)) - 1;
    }
    int last = -1;
    for (NodeId v : s.graph.opIds()) last = std::max(last, finish[v]);
    result.iterationFinish.push_back(last + 1);
    prevFinish = finish;
  }
  result.totalCycles = result.iterationFinish.back();
  if (R == 1) {
    result.avgInitiationInterval = result.totalCycles;
  } else {
    result.avgInitiationInterval =
        static_cast<double>(result.iterationFinish.back() -
                            result.iterationFinish.front()) /
        (R - 1);
  }
  return result;
}

StreamingResult streamingMakespanRandom(const sched::ScheduledDfg& s, int R,
                                        double p, std::uint64_t seed) {
  TAUHLS_CHECK(R >= 1, "need at least one iteration");
  const std::vector<NodeId> taus = tauOps(s);
  std::vector<OperandClasses> perIteration(static_cast<std::size_t>(R));
  for (int k = 0; k < R; ++k) {
    randomClasses(s, taus, p, seed + static_cast<std::uint64_t>(k),
                  perIteration[static_cast<std::size_t>(k)]);
  }
  return streamingMakespan(s, perIteration);
}

}  // namespace tauhls::sim
