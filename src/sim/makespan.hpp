// Abstract cycle-accurate latency engines (DESIGN.md §3 semantics).
//
//  * distributedMakespanCycles: the distributed control unit preserves all
//    concurrency -- op start = max(finish of data predecessors, finish of the
//    previous op on the same unit) + 1; TAU ops take 1 cycle (SD) or 2 (LD).
//  * syncMakespanCycles: the CENT-SYNC baseline synchronizes each TAUBM time
//    step -- a split step costs 2 cycles as soon as *any* of its TAU ops is
//    in the LD class (paper §2.3 problem 1), 1 otherwise.
//
// Both engines are cross-checked against FSM-level interpretation in
// tests/test_sim.cpp.
#pragma once

#include "sim/classes.hpp"

namespace tauhls::sim {

/// Makespan (clock cycles) of one iteration under the distributed controllers.
int distributedMakespanCycles(const sched::ScheduledDfg& s,
                              const OperandClasses& classes);

/// Makespan (clock cycles) under the synchronized centralized baseline.
int syncMakespanCycles(const sched::ScheduledDfg& s,
                       const OperandClasses& classes);

/// Per-op finish cycles of the distributed schedule (diagnostics/Gantt).
std::vector<int> distributedFinishCycles(const sched::ScheduledDfg& s,
                                         const OperandClasses& classes);

/// Precomputed evaluation context: topological order, per-op predecessor
/// lists, same-unit chaining and cycle counts are derived once, making a
/// single makespan evaluation O(V + E) with no allocation beyond the finish
/// vector.  Used by the exact-enumeration statistics (65k+ evaluations).
class MakespanEngine {
 public:
  explicit MakespanEngine(const sched::ScheduledDfg& s);

  int distributedCycles(const OperandClasses& classes) const;
  int syncCycles(const OperandClasses& classes) const;

 private:
  struct OpInfo {
    dfg::NodeId id = 0;
    int shortCycles = 1;
    int longCycles = 1;
    std::vector<std::uint32_t> predSlots;  ///< indices into ops_ (data preds)
    int prevOnUnitSlot = -1;               ///< index into ops_, -1 if first
  };
  std::vector<OpInfo> ops_;                 ///< topological order
  std::vector<std::uint32_t> slotOf_;       ///< NodeId -> slot
  struct StepInfo {
    std::vector<dfg::NodeId> tauOps;
  };
  std::vector<StepInfo> steps_;
  std::size_t numNodes_ = 0;
};

}  // namespace tauhls::sim
