// Abstract cycle-accurate latency engines (DESIGN.md §3 semantics).
//
//  * distributedMakespanCycles: the distributed control unit preserves all
//    concurrency -- op start = max(finish of data predecessors, finish of the
//    previous op on the same unit) + 1; TAU ops take 1 cycle (SD) or 2 (LD).
//  * syncMakespanCycles: the CENT-SYNC baseline synchronizes each TAUBM time
//    step -- a split step costs 2 cycles as soon as *any* of its TAU ops is
//    in the LD class (paper §2.3 problem 1), 1 otherwise.
//
// Both engines are cross-checked against FSM-level interpretation in
// tests/test_sim.cpp.
#pragma once

#include "sim/classes.hpp"

namespace tauhls::sim {

/// Makespan (clock cycles) of one iteration under the distributed controllers.
int distributedMakespanCycles(const sched::ScheduledDfg& s,
                              const OperandClasses& classes);

/// Makespan (clock cycles) under the synchronized centralized baseline.
int syncMakespanCycles(const sched::ScheduledDfg& s,
                       const OperandClasses& classes);

/// Per-op finish cycles of the distributed schedule (diagnostics/Gantt).
std::vector<int> distributedFinishCycles(const sched::ScheduledDfg& s,
                                         const OperandClasses& classes);

/// Precomputed evaluation context for the latency-statistics kernels.
///
/// The schedule, binding and topological bookkeeping are flattened once into
/// struct-of-arrays CSR form: per-slot short/long cycle counts, a combined
/// predecessor index (data predecessors + same-unit chaining), the reverse
/// successor index used for incremental re-evaluation, and the terminal slots
/// whose finish times define the makespan.  On top of that sit three
/// evaluation tiers:
///
///  * one-shot evaluation from an OperandClasses vector or directly from a
///    TAU-assignment bitmask (bit i of the mask <=> tauIds()[i] is SD) --
///    O(V + E) per call, a single transient finish buffer;
///  * closed-form CentSync statistics: each TAUBM step costs 2 cycles unless
///    all of its k TAU ops hit SD, so E[cycles] = sum over steps of
///    (2 - p^k) -- O(steps) regardless of the TAU count;
///  * DistributedSweep, a reusable zero-allocation scratch evaluator whose
///    flipTau() toggles a single TAU op and worklist-propagates the duration
///    delta through the successor index, recomputing only affected slots.
///    Enumerating masks in Gray-code order makes every step a single flip,
///    which is what drops the exact-enumeration sweeps from O(2^n * (V+E))
///    to roughly O(2^n) on the paper benchmarks.
class MakespanEngine {
 public:
  explicit MakespanEngine(const sched::ScheduledDfg& s);

  /// Number of operation slots (non-input nodes).
  std::size_t numOps() const { return idOfSlot_.size(); }
  /// Number of TAU-bound ops == the enumeration-mask width.
  int numTauOps() const { return static_cast<int>(tauIds_.size()); }
  /// TAU-bound ops in ascending NodeId order (== tauOps(s); the bit order of
  /// every mask-native interface below).
  const std::vector<dfg::NodeId>& tauIds() const { return tauIds_; }
  /// Mask-native interfaces hold one bit per TAU op in a 64-bit word.
  bool supportsMasks() const { return tauIds_.size() <= 64; }

  // --- one-shot evaluation ----------------------------------------------
  int distributedCycles(const OperandClasses& classes) const;
  int syncCycles(const OperandClasses& classes) const;

  /// The enumeration mask encoding `classes` (bit i set <=> tauIds()[i] SD).
  std::uint64_t maskOf(const OperandClasses& classes) const;
  /// Mask-native evaluation; never materializes an OperandClasses vector.
  int distributedCycles(std::uint64_t mask) const;
  int syncCycles(std::uint64_t mask) const;

  // --- extremes (all-SD / all-LD), no class vector needed ---------------
  int bestDistributedCycles() const;
  int worstDistributedCycles() const;
  int bestSyncCycles() const;
  int worstSyncCycles() const;

  /// Closed-form expected CentSync makespan under i.i.d. Bernoulli(p) SD
  /// classes: sum over TAUBM steps of (2 - p^|tauOps(step)|).  O(steps),
  /// independent of the TAU count -- no enumeration, no cap.
  double syncExpectedCycles(double p) const;

  /// Reusable scratch context for enumeration/sampling hot loops: all
  /// buffers are allocated once and reused across masks, so a full
  /// re-evaluation is allocation-free and a single-TAU flip only recomputes
  /// the slots reachable from the flipped op.  Not thread-safe; use one
  /// sweep per worker.
  class DistributedSweep {
   public:
    explicit DistributedSweep(const MakespanEngine& engine);

    /// Full O(V + E) re-evaluation at `mask`; returns the makespan.
    int evalFull(std::uint64_t mask);
    /// Toggle TAU op `tauIndex` and delta-propagate; returns the makespan.
    int flipTau(int tauIndex);
    /// Fill cycles[offset] with the makespan at mask `base + offset` for all
    /// offsets in [0, count) by Gray-code single-flip enumeration.  `count`
    /// must be a power of two and `base` a multiple of it.
    void evalChunk(std::uint64_t base, std::uint64_t count, int* cycles);

    std::uint64_t mask() const { return mask_; }

   private:
    int makespan() const;

    const MakespanEngine* e_;
    std::uint64_t mask_ = 0;
    std::vector<int> dur_;     ///< current per-slot durations
    std::vector<int> finish_;  ///< current per-slot finish cycles
    /// Dirty slots as a packed bitmask (bit slot%64 of word slot/64).  Slots
    /// are topologically numbered, so scanning set bits in ascending order
    /// visits every affected slot after all of its predecessors -- a
    /// branch-light replacement for a priority queue.
    std::vector<std::uint64_t> dirtyWords_;
  };

 private:
  friend class DistributedSweep;

  template <typename DurFn>
  int evaluate(DurFn&& dur) const;
  template <typename IsShortFn>
  int syncCyclesWith(IsShortFn&& isShort) const;

  std::size_t numNodes_ = 0;

  // Operation slots in topological order (struct-of-arrays).
  std::vector<dfg::NodeId> idOfSlot_;
  std::vector<int> shortCycles_;
  std::vector<int> longCycles_;
  std::vector<int> tauIndexOfSlot_;      ///< -1 for fixed-unit slots
  // CSR predecessor index: data predecessors + previous op on the same unit
  // (both constrain the start cycle identically).
  std::vector<std::uint32_t> predOffsets_;
  std::vector<std::uint32_t> preds_;
  // CSR successor index (reverse of preds_), for delta propagation.
  std::vector<std::uint32_t> succOffsets_;
  std::vector<std::uint32_t> succs_;
  std::vector<std::uint32_t> terminals_;  ///< slots with no successors

  // TAU ops, ascending NodeId (mask bit order).
  std::vector<dfg::NodeId> tauIds_;
  std::vector<std::uint32_t> tauSlots_;
  /// Slots reachable from each TAU op (its own slot included): the cost of
  /// one flipTau.  evalChunk flips low-cone ops most often.
  std::vector<int> tauConeSize_;

  // TAUBM steps: CSR of per-step TAU NodeIds plus, when the design fits a
  // 64-bit mask, the per-step TAU-index masks for O(steps) sync evaluation.
  std::vector<std::uint32_t> stepTauOffsets_;
  std::vector<dfg::NodeId> stepTauIds_;
  std::vector<std::uint64_t> stepMasks_;
};

}  // namespace tauhls::sim
