#include "sim/classes.hpp"

#include <random>

#include "common/error.hpp"

namespace tauhls::sim {

OperandClasses allShort(const sched::ScheduledDfg& s) {
  OperandClasses c;
  c.shortClass.assign(s.graph.numNodes(), true);
  return c;
}

OperandClasses allLong(const sched::ScheduledDfg& s) {
  OperandClasses c;
  c.shortClass.assign(s.graph.numNodes(), false);
  return c;
}

std::vector<dfg::NodeId> tauOps(const sched::ScheduledDfg& s) {
  std::vector<dfg::NodeId> out;
  for (dfg::NodeId v : s.graph.opIds()) {
    const int u = s.binding.unitOf(v);
    TAUHLS_ASSERT(u >= 0, "unbound op in scheduled DFG");
    if (s.unitIsTelescopic(u)) out.push_back(v);
  }
  return out;
}

OperandClasses fromMask(const sched::ScheduledDfg& s, std::uint64_t mask) {
  const std::vector<dfg::NodeId> taus = tauOps(s);
  TAUHLS_CHECK(taus.size() <= 64, "mask enumeration limited to 64 TAU ops");
  OperandClasses c = allShort(s);
  for (std::size_t i = 0; i < taus.size(); ++i) {
    c.shortClass[taus[i]] = (mask >> i) & 1;
  }
  return c;
}

OperandClasses randomClasses(const sched::ScheduledDfg& s, double p,
                             std::uint64_t seed) {
  OperandClasses c;
  randomClasses(s, tauOps(s), p, seed, c);
  return c;
}

void randomClasses(const sched::ScheduledDfg& s,
                   const std::vector<dfg::NodeId>& taus, double p,
                   std::uint64_t seed, OperandClasses& out) {
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution sd(p);
  // Reset to all-SD in place; assign() only reallocates on a size change.
  out.shortClass.assign(s.graph.numNodes(), true);
  for (dfg::NodeId v : taus) out.shortClass[v] = sd(rng);
}

std::uint64_t randomClassMask(int n, double p, std::uint64_t seed) {
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  TAUHLS_CHECK(n >= 0 && n <= 64, "mask sampling limited to 64 TAU ops");
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution sd(p);
  std::uint64_t mask = 0;
  for (int i = 0; i < n; ++i) {
    if (sd(rng)) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

}  // namespace tauhls::sim
