// Operand-class assignment: for every TAU-bound operation, whether its input
// operands fall in the short-delay (SD) class.  This is the paper's workload
// abstraction -- each TAU op is SD with probability P, i.i.d. (§2.3, §5).
#pragma once

#include <cstdint>
#include <vector>

#include "sched/scheduled_dfg.hpp"

namespace tauhls::sim {

struct OperandClasses {
  /// Per-node flag (indexed by NodeId); meaningful only for TAU-bound ops.
  std::vector<bool> shortClass;

  bool isShort(dfg::NodeId v) const { return shortClass[v]; }
};

/// All ops in the SD class (the best case).
OperandClasses allShort(const sched::ScheduledDfg& s);

/// All ops in the LD class (the worst case).
OperandClasses allLong(const sched::ScheduledDfg& s);

/// The TAU-bound ops of `s` in ascending NodeId order (the enumeration basis
/// for exact latency statistics).
std::vector<dfg::NodeId> tauOps(const sched::ScheduledDfg& s);

/// Classes from a bitmask over tauOps(s): bit i set => tauOps[i] is SD.
OperandClasses fromMask(const sched::ScheduledDfg& s, std::uint64_t mask);

/// Seeded Bernoulli(p) sample.
OperandClasses randomClasses(const sched::ScheduledDfg& s, double p,
                             std::uint64_t seed);

/// As above, writing into a caller-provided buffer so sampling loops reuse
/// one allocation.  `taus` must be tauOps(s) (precomputed once by the caller);
/// the draw sequence is identical to the allocating overload bit-for-bit.
void randomClasses(const sched::ScheduledDfg& s,
                   const std::vector<dfg::NodeId>& taus, double p,
                   std::uint64_t seed, OperandClasses& out);

/// Seeded Bernoulli(p) sample as a bitmask over n TAU ops (bit i set => TAU
/// op i is SD).  Draws the same mt19937_64(seed) Bernoulli sequence as
/// randomClasses, so mask-native Monte-Carlo estimates match it bit-for-bit.
std::uint64_t randomClassMask(int n, double p, std::uint64_t seed);

}  // namespace tauhls::sim
