#include "sim/interp.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <unordered_set>

#include "common/error.hpp"
#include "fsm/signal.hpp"

namespace tauhls::sim {

using dfg::NodeId;

bool SimTrace::asserted(int cycle, const std::string& signal) const {
  if (cycle < 0 || cycle >= static_cast<int>(outputsPerCycle.size())) return false;
  const auto& v = outputsPerCycle[cycle];
  return std::find(v.begin(), v.end(), signal) != v.end();
}

int SimTrace::firstCycle(const std::string& signal) const {
  for (std::size_t c = 0; c < outputsPerCycle.size(); ++c) {
    if (asserted(static_cast<int>(c), signal)) return static_cast<int>(c);
  }
  return -1;
}

namespace {

/// Parse "S<i>", "S<i>p", "R<i>" into (kind, index); kind 'S' means the op's
/// first execution cycle, 'P' the LD second cycle, 'R' a ready-wait state.
struct ParsedState {
  char kind = '?';
  int index = -1;
};

ParsedState parseState(const std::string& name) {
  ParsedState p;
  if (name.size() < 2) return p;
  const bool primed = name.back() == 'p';
  const std::string digits = name.substr(1, name.size() - 1 - (primed ? 1 : 0));
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return p;
  }
  p.index = std::stoi(digits);
  if (name[0] == 'S') p.kind = primed ? 'P' : 'S';
  if (name[0] == 'R' && !primed) p.kind = 'R';
  return p;
}

}  // namespace

SimTrace runDistributed(const fsm::DistributedControlUnit& dcu,
                        const sched::ScheduledDfg& s,
                        const OperandClasses& classes, int maxCycles) {
  TAUHLS_CHECK(classes.shortClass.size() == s.graph.numNodes(),
               "operand-class vector size mismatch");
  const std::size_t n = dcu.controllers.size();
  std::vector<int> state(n);
  std::vector<std::set<std::string>> latches(n);
  for (std::size_t c = 0; c < n; ++c) state[c] = dcu.controllers[c].fsm.initial();

  std::set<std::string> pendingRe;
  for (NodeId v : s.graph.opIds()) {
    pendingRe.insert(fsm::registerEnableSignal(s.graph.node(v).name));
  }

  SimTrace trace;
  for (int cycle = 0; cycle < maxCycles && !pendingRe.empty(); ++cycle) {
    // Datapath model: C_<unit> is raised during the first execution cycle of
    // an SD-class op on that telescopic unit.
    std::unordered_set<std::string> external;
    for (std::size_t c = 0; c < n; ++c) {
      const fsm::UnitController& ctl = dcu.controllers[c];
      if (!ctl.telescopic) continue;
      const ParsedState p = parseState(ctl.fsm.stateName(state[c]));
      if (p.kind == 'S' && classes.isShort(ctl.ops[p.index])) {
        external.insert(
            fsm::unitCompletionSignal(s.binding.unit(ctl.unitId)));
      }
    }
    // Completion-pulse fixpoint (emission is independent of CCO inputs in the
    // generated machines; iterate defensively).
    std::unordered_set<std::string> emitted;
    for (int iter = 0;; ++iter) {
      TAUHLS_ASSERT(iter < 4, "completion-pulse fixpoint did not converge");
      std::unordered_set<std::string> next;
      for (std::size_t c = 0; c < n; ++c) {
        std::unordered_set<std::string> asserted = external;
        asserted.insert(emitted.begin(), emitted.end());
        asserted.insert(latches[c].begin(), latches[c].end());
        const auto r = dcu.controllers[c].fsm.step(state[c], asserted);
        for (const std::string& o : r.outputs) {
          if (o.starts_with("CCO_")) next.insert(o);
        }
      }
      if (next == emitted) break;
      emitted = std::move(next);
    }
    // Commit: advance every controller, collect outputs, update latches.
    std::vector<std::string> cycleOutputs;
    for (std::size_t c = 0; c < n; ++c) {
      std::unordered_set<std::string> asserted = external;
      asserted.insert(emitted.begin(), emitted.end());
      asserted.insert(latches[c].begin(), latches[c].end());
      const fsm::Transition* fired = nullptr;
      for (const fsm::Transition* t :
           dcu.controllers[c].fsm.transitionsFrom(state[c])) {
        if (t->guard.evaluate(asserted)) {
          fired = t;
          break;
        }
      }
      TAUHLS_ASSERT(fired != nullptr, "controller stuck during simulation");
      state[c] = fired->to;
      for (const std::string& o : fired->outputs) {
        cycleOutputs.push_back(o);
        pendingRe.erase(o);
      }
      // Level-sensitive completion latches: set by the pulse, held for the
      // rest of the iteration (cleared by the restart strobe in hardware).
      for (const std::string& sig : dcu.controllers[c].latchedInputs) {
        if (emitted.contains(sig)) latches[c].insert(sig);
      }
    }
    std::sort(cycleOutputs.begin(), cycleOutputs.end());
    trace.outputsPerCycle.push_back(std::move(cycleOutputs));
    std::vector<std::string> externalsSorted(external.begin(), external.end());
    std::sort(externalsSorted.begin(), externalsSorted.end());
    trace.externalsPerCycle.push_back(std::move(externalsSorted));
  }
  TAUHLS_CHECK(pendingRe.empty(),
               "distributed simulation did not finish within the cycle bound");
  trace.latencyCycles = static_cast<int>(trace.outputsPerCycle.size());
  return trace;
}

SimTrace runCentSync(const fsm::Fsm& centSync, const sched::ScheduledDfg& s,
                     const OperandClasses& classes, int maxCycles) {
  TAUHLS_CHECK(classes.shortClass.size() == s.graph.numNodes(),
               "operand-class vector size mismatch");
  std::set<std::string> pendingRe;
  for (NodeId v : s.graph.opIds()) {
    pendingRe.insert(fsm::registerEnableSignal(s.graph.node(v).name));
  }

  SimTrace trace;
  int state = centSync.initial();
  for (int cycle = 0; cycle < maxCycles && !pendingRe.empty(); ++cycle) {
    // Datapath model: in state S_k (first half of step k), the unit executing
    // a TAU op of that step raises C when the op is SD-class.
    const ParsedState p = parseState(centSync.stateName(state));
    TAUHLS_ASSERT(p.kind != '?', "unexpected state name in CENT-SYNC FSM");
    std::unordered_set<std::string> asserted;
    if (p.kind == 'S') {
      const sched::TaubmStep& step = s.taubm.steps[p.index];
      for (NodeId v : step.tauOps) {
        if (classes.isShort(v)) {
          asserted.insert(
              fsm::unitCompletionSignal(s.binding.unit(s.binding.unitOf(v))));
        }
      }
    }
    const auto r = centSync.step(state, asserted);
    state = r.nextState;
    std::vector<std::string> outs = r.outputs;
    for (const std::string& o : outs) pendingRe.erase(o);
    std::sort(outs.begin(), outs.end());
    trace.outputsPerCycle.push_back(std::move(outs));
  }
  TAUHLS_CHECK(pendingRe.empty(),
               "CENT-SYNC simulation did not finish within the cycle bound");
  trace.latencyCycles = static_cast<int>(trace.outputsPerCycle.size());
  return trace;
}

int compareProductToDistributed(const fsm::DistributedControlUnit& dcu,
                                const fsm::Fsm& product, std::uint64_t seed,
                                int numTraces, int traceLength) {
  std::mt19937_64 rng(seed);
  const std::size_t n = dcu.controllers.size();
  for (int t = 0; t < numTraces; ++t) {
    std::vector<int> state(n);
    std::vector<std::set<std::string>> latches(n);
    for (std::size_t c = 0; c < n; ++c) {
      state[c] = dcu.controllers[c].fsm.initial();
    }
    int productState = product.initial();

    for (int cycle = 0; cycle < traceLength; ++cycle) {
      std::unordered_set<std::string> external;
      for (const std::string& in : dcu.externalInputs) {
        if (std::uniform_int_distribution<int>(0, 1)(rng)) external.insert(in);
      }
      // Distributed side: pulse fixpoint, then commit.
      std::unordered_set<std::string> emitted;
      for (int iter = 0;; ++iter) {
        TAUHLS_ASSERT(iter < 4, "completion-pulse fixpoint did not converge");
        std::unordered_set<std::string> next;
        for (std::size_t c = 0; c < n; ++c) {
          std::unordered_set<std::string> asserted = external;
          asserted.insert(emitted.begin(), emitted.end());
          asserted.insert(latches[c].begin(), latches[c].end());
          const auto r = dcu.controllers[c].fsm.step(state[c], asserted);
          for (const std::string& o : r.outputs) {
            if (o.starts_with("CCO_")) next.insert(o);
          }
        }
        if (next == emitted) break;
        emitted = std::move(next);
      }
      std::vector<std::string> visible;
      for (std::size_t c = 0; c < n; ++c) {
        std::unordered_set<std::string> asserted = external;
        asserted.insert(emitted.begin(), emitted.end());
        asserted.insert(latches[c].begin(), latches[c].end());
        const fsm::Transition* fired = nullptr;
        for (const fsm::Transition* tr :
             dcu.controllers[c].fsm.transitionsFrom(state[c])) {
          if (tr->guard.evaluate(asserted)) {
            fired = tr;
            break;
          }
        }
        TAUHLS_ASSERT(fired != nullptr, "controller stuck in trace comparison");
        state[c] = fired->to;
        for (const std::string& o : fired->outputs) {
          if (!o.starts_with("CCO_")) visible.push_back(o);
        }
        for (const std::string& sig : dcu.controllers[c].latchedInputs) {
          if (emitted.contains(sig)) latches[c].insert(sig);
        }
      }
      // Product side.
      auto rp = product.step(productState, external);
      productState = rp.nextState;
      std::vector<std::string> productOut = rp.outputs;
      std::sort(visible.begin(), visible.end());
      std::sort(productOut.begin(), productOut.end());
      if (visible != productOut) return cycle;
    }
  }
  return -1;
}

int compareOnRandomTraces(const fsm::Fsm& a, const fsm::Fsm& b,
                          std::uint64_t seed, int numTraces, int traceLength) {
  TAUHLS_CHECK(a.inputs() == b.inputs(),
               "machines must share an input alphabet for trace comparison");
  std::mt19937_64 rng(seed);
  for (int t = 0; t < numTraces; ++t) {
    int stateA = a.initial();
    int stateB = b.initial();
    for (int cycle = 0; cycle < traceLength; ++cycle) {
      std::unordered_set<std::string> asserted;
      for (const std::string& in : a.inputs()) {
        if (std::uniform_int_distribution<int>(0, 1)(rng)) asserted.insert(in);
      }
      auto ra = a.step(stateA, asserted);
      auto rb = b.step(stateB, asserted);
      std::vector<std::string> oa = ra.outputs;
      std::vector<std::string> ob = rb.outputs;
      std::sort(oa.begin(), oa.end());
      std::sort(ob.begin(), ob.end());
      if (oa != ob) return cycle;
      stateA = ra.nextState;
      stateB = rb.nextState;
    }
  }
  return -1;
}

}  // namespace tauhls::sim
