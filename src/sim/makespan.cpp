#include "sim/makespan.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::sim {

using dfg::NodeId;

std::vector<int> distributedFinishCycles(const sched::ScheduledDfg& s,
                                         const OperandClasses& classes) {
  TAUHLS_CHECK(classes.shortClass.size() == s.graph.numNodes(),
               "operand-class vector size mismatch");
  std::vector<int> finish(s.graph.numNodes(), -1);

  // Previous op on the same unit.
  std::vector<NodeId> prevOnUnit(s.graph.numNodes(), dfg::kNoNode);
  for (std::size_t u = 0; u < s.binding.numUnits(); ++u) {
    const auto& seq = s.binding.sequenceOf(static_cast<int>(u));
    for (std::size_t i = 1; i < seq.size(); ++i) prevOnUnit[seq[i]] = seq[i - 1];
  }

  const std::vector<NodeId> order = dfg::topologicalOrder(s.graph);
  TAUHLS_ASSERT(order.size() == s.graph.numNodes(), "scheduled graph not a DAG");
  for (NodeId v : order) {
    if (!s.graph.isOp(v)) continue;
    int start = 0;
    for (NodeId p : s.graph.dataPredecessors(v)) {
      if (s.graph.isOp(p)) start = std::max(start, finish[p] + 1);
    }
    if (prevOnUnit[v] != dfg::kNoNode) {
      TAUHLS_ASSERT(finish[prevOnUnit[v]] >= 0,
                    "unit sequence out of topological order");
      start = std::max(start, finish[prevOnUnit[v]] + 1);
    }
    finish[v] = start + s.opCycles(v, classes.isShort(v)) - 1;
  }
  return finish;
}

int distributedMakespanCycles(const sched::ScheduledDfg& s,
                              const OperandClasses& classes) {
  const std::vector<int> finish = distributedFinishCycles(s, classes);
  int last = -1;
  for (NodeId v : s.graph.opIds()) last = std::max(last, finish[v]);
  return last + 1;
}

int syncMakespanCycles(const sched::ScheduledDfg& s,
                       const OperandClasses& classes) {
  TAUHLS_CHECK(classes.shortClass.size() == s.graph.numNodes(),
               "operand-class vector size mismatch");
  int cycles = 0;
  for (const sched::TaubmStep& step : s.taubm.steps) {
    bool anyLong = false;
    for (NodeId v : step.tauOps) anyLong |= !classes.isShort(v);
    cycles += anyLong ? 2 : 1;
  }
  return cycles;
}

MakespanEngine::MakespanEngine(const sched::ScheduledDfg& s) {
  numNodes_ = s.graph.numNodes();
  const std::vector<NodeId> order = dfg::topologicalOrder(s.graph);
  TAUHLS_CHECK(order.size() == numNodes_, "scheduled graph not a DAG");

  std::vector<NodeId> prevOnUnit(numNodes_, dfg::kNoNode);
  for (std::size_t u = 0; u < s.binding.numUnits(); ++u) {
    const auto& seq = s.binding.sequenceOf(static_cast<int>(u));
    for (std::size_t i = 1; i < seq.size(); ++i) prevOnUnit[seq[i]] = seq[i - 1];
  }

  slotOf_.assign(numNodes_, 0);
  for (NodeId v : order) {
    if (!s.graph.isOp(v)) continue;
    OpInfo info;
    info.id = v;
    info.shortCycles = s.opCycles(v, true);
    info.longCycles = s.opCycles(v, false);
    for (NodeId p : s.graph.dataPredecessors(v)) {
      if (s.graph.isOp(p)) info.predSlots.push_back(slotOf_[p]);
    }
    if (prevOnUnit[v] != dfg::kNoNode) {
      info.prevOnUnitSlot = static_cast<int>(slotOf_[prevOnUnit[v]]);
    }
    slotOf_[v] = static_cast<std::uint32_t>(ops_.size());
    ops_.push_back(std::move(info));
  }
  for (const sched::TaubmStep& step : s.taubm.steps) {
    steps_.push_back(StepInfo{step.tauOps});
  }
}

int MakespanEngine::distributedCycles(const OperandClasses& classes) const {
  TAUHLS_CHECK(classes.shortClass.size() == numNodes_,
               "operand-class vector size mismatch");
  int last = 0;
  // finish[slot]; stack-friendly local buffer.
  std::vector<int> finish(ops_.size(), 0);
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const OpInfo& op = ops_[i];
    int start = 0;
    for (std::uint32_t p : op.predSlots) start = std::max(start, finish[p] + 1);
    if (op.prevOnUnitSlot >= 0) {
      start = std::max(start, finish[op.prevOnUnitSlot] + 1);
    }
    const int dur = classes.isShort(op.id) ? op.shortCycles : op.longCycles;
    finish[i] = start + dur - 1;
    last = std::max(last, finish[i]);
  }
  return ops_.empty() ? 0 : last + 1;
}

int MakespanEngine::syncCycles(const OperandClasses& classes) const {
  TAUHLS_CHECK(classes.shortClass.size() == numNodes_,
               "operand-class vector size mismatch");
  int cycles = 0;
  for (const StepInfo& step : steps_) {
    bool anyLong = false;
    for (NodeId v : step.tauOps) anyLong |= !classes.isShort(v);
    cycles += anyLong ? 2 : 1;
  }
  return cycles;
}

}  // namespace tauhls::sim
