#include "sim/makespan.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::sim {

using dfg::NodeId;

std::vector<int> distributedFinishCycles(const sched::ScheduledDfg& s,
                                         const OperandClasses& classes) {
  TAUHLS_CHECK(classes.shortClass.size() == s.graph.numNodes(),
               "operand-class vector size mismatch");
  std::vector<int> finish(s.graph.numNodes(), -1);

  // Previous op on the same unit.
  std::vector<NodeId> prevOnUnit(s.graph.numNodes(), dfg::kNoNode);
  for (std::size_t u = 0; u < s.binding.numUnits(); ++u) {
    const auto& seq = s.binding.sequenceOf(static_cast<int>(u));
    for (std::size_t i = 1; i < seq.size(); ++i) prevOnUnit[seq[i]] = seq[i - 1];
  }

  const std::vector<NodeId> order = dfg::topologicalOrder(s.graph);
  TAUHLS_ASSERT(order.size() == s.graph.numNodes(), "scheduled graph not a DAG");
  for (NodeId v : order) {
    if (!s.graph.isOp(v)) continue;
    int start = 0;
    for (NodeId p : s.graph.dependencePredecessors(v)) {
      if (s.graph.isOp(p)) start = std::max(start, finish[p] + 1);
    }
    if (prevOnUnit[v] != dfg::kNoNode) {
      TAUHLS_ASSERT(finish[prevOnUnit[v]] >= 0,
                    "unit sequence out of topological order");
      start = std::max(start, finish[prevOnUnit[v]] + 1);
    }
    finish[v] = start + s.opCycles(v, classes.isShort(v)) - 1;
  }
  return finish;
}

int distributedMakespanCycles(const sched::ScheduledDfg& s,
                              const OperandClasses& classes) {
  const std::vector<int> finish = distributedFinishCycles(s, classes);
  int last = -1;
  for (NodeId v : s.graph.opIds()) last = std::max(last, finish[v]);
  return last + 1;
}

int syncMakespanCycles(const sched::ScheduledDfg& s,
                       const OperandClasses& classes) {
  TAUHLS_CHECK(classes.shortClass.size() == s.graph.numNodes(),
               "operand-class vector size mismatch");
  int cycles = 0;
  for (const sched::TaubmStep& step : s.taubm.steps) {
    bool anyLong = false;
    for (NodeId v : step.tauOps) anyLong |= !classes.isShort(v);
    cycles += anyLong ? 2 : 1;
  }
  return cycles;
}

MakespanEngine::MakespanEngine(const sched::ScheduledDfg& s) {
  numNodes_ = s.graph.numNodes();
  const std::vector<NodeId> order = dfg::topologicalOrder(s.graph);
  TAUHLS_CHECK(order.size() == numNodes_, "scheduled graph not a DAG");

  std::vector<NodeId> prevOnUnit(numNodes_, dfg::kNoNode);
  for (std::size_t u = 0; u < s.binding.numUnits(); ++u) {
    const auto& seq = s.binding.sequenceOf(static_cast<int>(u));
    for (std::size_t i = 1; i < seq.size(); ++i) prevOnUnit[seq[i]] = seq[i - 1];
  }

  std::vector<std::uint32_t> slotOf(numNodes_, 0);
  predOffsets_.push_back(0);
  for (NodeId v : order) {
    if (!s.graph.isOp(v)) continue;
    const auto slot = static_cast<std::uint32_t>(idOfSlot_.size());
    slotOf[v] = slot;
    idOfSlot_.push_back(v);
    shortCycles_.push_back(s.opCycles(v, true));
    longCycles_.push_back(s.opCycles(v, false));
    for (NodeId p : s.graph.dependencePredecessors(v)) {
      if (s.graph.isOp(p)) preds_.push_back(slotOf[p]);
    }
    if (prevOnUnit[v] != dfg::kNoNode) preds_.push_back(slotOf[prevOnUnit[v]]);
    predOffsets_.push_back(static_cast<std::uint32_t>(preds_.size()));
  }

  // Reverse the predecessor index into the CSR successor index.
  const std::size_t numOps = idOfSlot_.size();
  std::vector<std::uint32_t> succCount(numOps, 0);
  for (std::uint32_t p : preds_) ++succCount[p];
  succOffsets_.assign(numOps + 1, 0);
  for (std::size_t i = 0; i < numOps; ++i) {
    succOffsets_[i + 1] = succOffsets_[i] + succCount[i];
  }
  succs_.resize(preds_.size());
  std::vector<std::uint32_t> cursor(succOffsets_.begin(),
                                    succOffsets_.end() - 1);
  for (std::size_t i = 0; i < numOps; ++i) {
    for (std::uint32_t k = predOffsets_[i]; k < predOffsets_[i + 1]; ++k) {
      succs_[cursor[preds_[k]]++] = static_cast<std::uint32_t>(i);
    }
  }
  for (std::size_t i = 0; i < numOps; ++i) {
    if (succOffsets_[i] == succOffsets_[i + 1]) {
      terminals_.push_back(static_cast<std::uint32_t>(i));
    }
  }

  // TAU-bound ops in ascending NodeId order (== tauOps(s)).
  tauIndexOfSlot_.assign(numOps, -1);
  for (NodeId v : s.graph.opIds()) {
    const int u = s.binding.unitOf(v);
    TAUHLS_ASSERT(u >= 0, "unbound op in scheduled DFG");
    if (s.unitIsTelescopic(u)) {
      tauIndexOfSlot_[slotOf[v]] = static_cast<int>(tauIds_.size());
      tauIds_.push_back(v);
      tauSlots_.push_back(slotOf[v]);
    }
  }

  // Successor-cone size per TAU op (the slots one flipTau can touch).
  tauConeSize_.reserve(tauSlots_.size());
  std::vector<int> stamp(numOps, -1);
  std::vector<std::uint32_t> stack;
  for (std::size_t t = 0; t < tauSlots_.size(); ++t) {
    int cone = 0;
    stamp[tauSlots_[t]] = static_cast<int>(t);
    stack.push_back(tauSlots_[t]);
    while (!stack.empty()) {
      const std::uint32_t slot = stack.back();
      stack.pop_back();
      ++cone;
      for (std::uint32_t k = succOffsets_[slot]; k < succOffsets_[slot + 1];
           ++k) {
        const std::uint32_t succ = succs_[k];
        if (stamp[succ] != static_cast<int>(t)) {
          stamp[succ] = static_cast<int>(t);
          stack.push_back(succ);
        }
      }
    }
    tauConeSize_.push_back(cone);
  }

  stepTauOffsets_.push_back(0);
  for (const sched::TaubmStep& step : s.taubm.steps) {
    for (NodeId v : step.tauOps) stepTauIds_.push_back(v);
    stepTauOffsets_.push_back(static_cast<std::uint32_t>(stepTauIds_.size()));
  }
  if (supportsMasks()) {
    stepMasks_.reserve(s.taubm.steps.size());
    for (const sched::TaubmStep& step : s.taubm.steps) {
      std::uint64_t m = 0;
      for (NodeId v : step.tauOps) {
        const int ti = tauIndexOfSlot_[slotOf[v]];
        TAUHLS_ASSERT(ti >= 0, "TAUBM step lists a non-TAU op");
        m |= std::uint64_t{1} << ti;
      }
      stepMasks_.push_back(m);
    }
  }
}

template <typename DurFn>
int MakespanEngine::evaluate(DurFn&& dur) const {
  const std::size_t numOps = idOfSlot_.size();
  if (numOps == 0) return 0;
  int last = 0;
  std::vector<int> finish(numOps, 0);
  for (std::size_t i = 0; i < numOps; ++i) {
    int start = 0;
    for (std::uint32_t k = predOffsets_[i]; k < predOffsets_[i + 1]; ++k) {
      start = std::max(start, finish[preds_[k]] + 1);
    }
    finish[i] = start + dur(i) - 1;
    last = std::max(last, finish[i]);
  }
  return last + 1;
}

template <typename IsShortFn>
int MakespanEngine::syncCyclesWith(IsShortFn&& isShort) const {
  int cycles = 0;
  const std::size_t numSteps = stepTauOffsets_.size() - 1;
  for (std::size_t i = 0; i < numSteps; ++i) {
    bool anyLong = false;
    for (std::uint32_t k = stepTauOffsets_[i]; k < stepTauOffsets_[i + 1]; ++k) {
      anyLong |= !isShort(stepTauIds_[k]);
    }
    cycles += anyLong ? 2 : 1;
  }
  return cycles;
}

int MakespanEngine::distributedCycles(const OperandClasses& classes) const {
  TAUHLS_CHECK(classes.shortClass.size() == numNodes_,
               "operand-class vector size mismatch");
  return evaluate([&](std::size_t i) {
    return classes.isShort(idOfSlot_[i]) ? shortCycles_[i] : longCycles_[i];
  });
}

int MakespanEngine::syncCycles(const OperandClasses& classes) const {
  TAUHLS_CHECK(classes.shortClass.size() == numNodes_,
               "operand-class vector size mismatch");
  return syncCyclesWith([&](NodeId v) { return classes.isShort(v); });
}

std::uint64_t MakespanEngine::maskOf(const OperandClasses& classes) const {
  TAUHLS_CHECK(supportsMasks(), "mask interface limited to 64 TAU ops");
  TAUHLS_CHECK(classes.shortClass.size() == numNodes_,
               "operand-class vector size mismatch");
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < tauIds_.size(); ++i) {
    mask |= std::uint64_t{classes.isShort(tauIds_[i])} << i;
  }
  return mask;
}

int MakespanEngine::distributedCycles(std::uint64_t mask) const {
  TAUHLS_CHECK(supportsMasks(), "mask interface limited to 64 TAU ops");
  return evaluate([&](std::size_t i) {
    const int ti = tauIndexOfSlot_[i];
    return ti >= 0 && !((mask >> ti) & 1) ? longCycles_[i] : shortCycles_[i];
  });
}

int MakespanEngine::syncCycles(std::uint64_t mask) const {
  TAUHLS_CHECK(supportsMasks(), "mask interface limited to 64 TAU ops");
  int cycles = 0;
  for (std::uint64_t stepMask : stepMasks_) {
    cycles += (stepMask & ~mask) != 0 ? 2 : 1;
  }
  return cycles;
}

int MakespanEngine::bestDistributedCycles() const {
  return evaluate([&](std::size_t i) { return shortCycles_[i]; });
}

int MakespanEngine::worstDistributedCycles() const {
  return evaluate([&](std::size_t i) { return longCycles_[i]; });
}

int MakespanEngine::bestSyncCycles() const {
  // All-SD: every step costs one cycle.
  return static_cast<int>(stepTauOffsets_.size()) - 1;
}

int MakespanEngine::worstSyncCycles() const {
  // All-LD: every step with at least one TAU op spends its second half.
  int cycles = 0;
  const std::size_t numSteps = stepTauOffsets_.size() - 1;
  for (std::size_t i = 0; i < numSteps; ++i) {
    cycles += stepTauOffsets_[i + 1] > stepTauOffsets_[i] ? 2 : 1;
  }
  return cycles;
}

double MakespanEngine::syncExpectedCycles(double p) const {
  TAUHLS_CHECK(p >= 0.0 && p <= 1.0, "P must lie in [0,1]");
  // A step with k TAU ops costs 1 cycle iff all k hit SD (probability p^k),
  // 2 otherwise: E[step] = p^k + 2 (1 - p^k) = 2 - p^k.
  double expectation = 0.0;
  const std::size_t numSteps = stepTauOffsets_.size() - 1;
  for (std::size_t i = 0; i < numSteps; ++i) {
    const int k = static_cast<int>(stepTauOffsets_[i + 1] - stepTauOffsets_[i]);
    expectation += 2.0 - std::pow(p, k);
  }
  return expectation;
}

MakespanEngine::DistributedSweep::DistributedSweep(const MakespanEngine& engine)
    : e_(&engine),
      dur_(engine.shortCycles_),
      finish_(engine.idOfSlot_.size(), 0),
      dirtyWords_((engine.idOfSlot_.size() + 63) / 64, 0) {
  TAUHLS_CHECK(engine.supportsMasks(), "mask interface limited to 64 TAU ops");
  mask_ = engine.tauIds_.empty()
              ? 0
              : ~std::uint64_t{0} >> (64 - engine.tauIds_.size());
  if (!engine.idOfSlot_.empty()) evalFull(mask_);
}

int MakespanEngine::DistributedSweep::makespan() const {
  if (e_->idOfSlot_.empty()) return 0;
  int last = 0;
  for (std::uint32_t t : e_->terminals_) last = std::max(last, finish_[t]);
  return last + 1;
}

int MakespanEngine::DistributedSweep::evalFull(std::uint64_t mask) {
  mask_ = mask;
  for (std::size_t i = 0; i < e_->tauSlots_.size(); ++i) {
    const std::uint32_t slot = e_->tauSlots_[i];
    dur_[slot] = (mask >> i) & 1 ? e_->shortCycles_[slot]
                                 : e_->longCycles_[slot];
  }
  const std::size_t numOps = e_->idOfSlot_.size();
  for (std::size_t i = 0; i < numOps; ++i) {
    // start = max over preds of (finish + 1), folded as gatherMax + 1; the
    // empty sentinel -1 keeps source slots at start 0.
    const std::uint32_t off = e_->predOffsets_[i];
    const int start =
        common::simd::gatherMax(finish_.data(), e_->preds_.data() + off,
                                e_->predOffsets_[i + 1] - off, -1) +
        1;
    finish_[i] = start + dur_[i] - 1;
  }
  return makespan();
}

int MakespanEngine::DistributedSweep::flipTau(int tauIndex) {
  mask_ ^= std::uint64_t{1} << tauIndex;
  const std::uint32_t flipped = e_->tauSlots_[static_cast<std::size_t>(tauIndex)];
  dur_[flipped] = (mask_ >> tauIndex) & 1 ? e_->shortCycles_[flipped]
                                          : e_->longCycles_[flipped];
  dirtyWords_[flipped >> 6] |= std::uint64_t{1} << (flipped & 63);
  // Consume dirty slots in ascending order: every successor has a higher
  // slot number, so a marked successor's bit is always still ahead of the
  // scan and each affected slot is recomputed exactly once per flip.
  for (std::size_t wi = flipped >> 6; wi < dirtyWords_.size(); ++wi) {
    while (dirtyWords_[wi] != 0) {
      const std::uint32_t slot =
          static_cast<std::uint32_t>((wi << 6) |
                                     std::countr_zero(dirtyWords_[wi]));
      dirtyWords_[wi] &= dirtyWords_[wi] - 1;  // clear lowest set bit
      const std::uint32_t off = e_->predOffsets_[slot];
      const int start =
          common::simd::gatherMax(finish_.data(), e_->preds_.data() + off,
                                  e_->predOffsets_[slot + 1] - off, -1) +
          1;
      const int newFinish = start + dur_[slot] - 1;
      if (newFinish == finish_[slot]) continue;
      finish_[slot] = newFinish;
      for (std::uint32_t k = e_->succOffsets_[slot];
           k < e_->succOffsets_[slot + 1]; ++k) {
        const std::uint32_t succ = e_->succs_[k];
        dirtyWords_[succ >> 6] |= std::uint64_t{1} << (succ & 63);
      }
    }
  }
  return makespan();
}

void MakespanEngine::DistributedSweep::evalChunk(std::uint64_t base,
                                                 std::uint64_t count,
                                                 int* cycles) {
  TAUHLS_ASSERT(std::has_single_bit(count) && base % count == 0,
                "chunk must be an aligned power-of-two mask range");
  cycles[0] = evalFull(base);
  if (count <= 1) return;
  // Gray-code enumeration: step o flips exactly one TAU op, so every mask of
  // the chunk is reached by a single delta propagation.  Gray position j is
  // flipped 2^(width-1-j) times; any bijection of positions onto the chunk's
  // TAU ops still visits each mask exactly once (at offset = xor of the
  // flipped bits), so positions are assigned to ops by ascending successor-
  // cone size: the op whose flip recomputes the fewest slots flips the most
  // often.  The permutation depends only on the engine and `count`, and the
  // output buffer is indexed by mask offset, so downstream accumulation
  // order -- and with it bit-level determinism -- is unaffected.
  const int width = std::countr_zero(count);
  std::array<int, 64> order;
  for (int j = 0; j < width; ++j) order[static_cast<std::size_t>(j)] = j;
  // Stable insertion sort by cone size (width <= 64, no temp allocation).
  for (int j = 1; j < width; ++j) {
    const int key = order[static_cast<std::size_t>(j)];
    const int cone = e_->tauConeSize_[static_cast<std::size_t>(key)];
    int k = j;
    while (k > 0 &&
           e_->tauConeSize_[static_cast<std::size_t>(
               order[static_cast<std::size_t>(k - 1)])] > cone) {
      order[static_cast<std::size_t>(k)] = order[static_cast<std::size_t>(k - 1)];
      --k;
    }
    order[static_cast<std::size_t>(k)] = key;
  }
  std::uint64_t offset = 0;
  for (std::uint64_t o = 1; o < count; ++o) {
    const int tau = order[static_cast<std::size_t>(std::countr_zero(o))];
    offset ^= std::uint64_t{1} << tau;
    cycles[offset] = flipTau(tau);
  }
}

}  // namespace tauhls::sim
