// Seeded random-DAG generator used by the parameterized property tests and
// the scaling ablations.  Deterministic for a given RandomDfgSpec.
#pragma once

#include <cstdint>

#include "dfg/graph.hpp"

namespace tauhls::dfg {

struct RandomDfgSpec {
  std::uint64_t seed = 1;
  int numOps = 12;
  int numInputs = 4;
  /// Per-mille probability that an op is a multiplication (TAU class);
  /// remaining ops are split between Add and Sub.
  int mulPermille = 500;
  /// Maximum number of op-to-op data edges per new op (1..2); operands beyond
  /// this come from primary inputs, keeping the graph wide.
  int maxOpFanin = 2;
};

/// Generate a valid, acyclic DFG; all sinks are marked as outputs.
Dfg randomDfg(const RandomDfgSpec& spec);

}  // namespace tauhls::dfg
