// Seeded random-DAG generator used by the parameterized property tests and
// the scaling ablations.  Deterministic for a given RandomDfgSpec.
#pragma once

#include <cstdint>

#include "dfg/graph.hpp"
#include "dfg/region.hpp"

namespace tauhls::dfg {

struct RandomDfgSpec {
  std::uint64_t seed = 1;
  int numOps = 12;
  int numInputs = 4;
  /// Per-mille probability that an op is a multiplication (TAU class);
  /// remaining ops are split between Add and Sub.
  int mulPermille = 500;
  /// Per-mille share of the non-multiplication ops that are Add (the rest
  /// are Sub).  500 keeps the historical even coin flip bit-for-bit.
  int addVsSubPermille = 500;
  /// Maximum number of op-to-op data edges per new op (1..2); operands beyond
  /// this come from primary inputs, keeping the graph wide.
  int maxOpFanin = 2;
  /// Layered mode (> 0): ops are organized into `numLayers` ranks of
  /// `layerWidth` ops each (numOps is ignored), every op drawing its op
  /// operands from the immediately preceding rank -- width and depth are
  /// then controlled directly instead of emerging from the recency bias.
  int numLayers = 0;
  int layerWidth = 4;
};

/// Generate a valid, acyclic DFG; all sinks are marked as outputs.
Dfg randomDfg(const RandomDfgSpec& spec);

/// Region-nesting knob over randomDfg: a Seq of `numBlocks` blocks, each a
/// leaf, a loop (probability loopPermille, trip count 2..maxTripCount) or a
/// conditional (probability condPermille), nested up to `maxDepth`.  Values
/// thread by name: each leaf reads names defined by earlier regions (or the
/// program inputs) and defines fresh ones; conditional branches define a
/// common name so the post-join set stays useful.  The result validates.
struct RandomRegionSpec {
  std::uint64_t seed = 1;
  RandomDfgSpec leaf;       ///< shape of each leaf body (seed ignored)
  int numBlocks = 3;
  int loopPermille = 250;
  int condPermille = 250;
  int maxTripCount = 3;
  int maxDepth = 2;
};

RegionProgram randomRegionProgram(const RandomRegionSpec& spec);

}  // namespace tauhls::dfg
