// Dataflow-graph IR.
//
// A Dfg is a DAG of operation nodes connected by data edges (operand lists),
// optionally augmented with two kinds of sequencing-only edges:
//
//  * *schedule arcs*: inserted by resource-constrained scheduling (paper §3);
//    they carry no value, constrain execution order like a data dependence,
//    and are cleared and re-derived whenever the graph is rescheduled;
//  * *state edges*: user-level ordering constraints between operations with
//    side effects on shared state (R-HLS-style ordered side effects).  They
//    are part of the design, survive rescheduling, and the distributed
//    controllers enforce them exactly like data dependences (the consumer
//    waits on the producer's completion signal).
//
// Node identity is a dense index (NodeId), so per-node side tables are plain
// vectors throughout the code base.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "dfg/op.hpp"

namespace tauhls::dfg {

/// Dense node index within one Dfg.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// One node of the graph: a primary input or an operation.
struct Node {
  OpKind kind = OpKind::Input;
  std::string name;               ///< unique, auto-generated when empty at insert
  std::vector<NodeId> operands;   ///< data predecessors, size == opKindArity(kind)
};

/// A sequencing-only edge inserted by scheduling (no value flows).
struct ScheduleArc {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  friend bool operator==(const ScheduleArc&, const ScheduleArc&) = default;
};

/// Dataflow graph with schedule arcs.  All mutators validate locally;
/// `validate()` re-checks the global invariants (acyclicity, unique names).
class Dfg {
 public:
  Dfg() = default;
  explicit Dfg(std::string name) : name_(std::move(name)) {}

  /// Graph name used in reports and emitted RTL.
  const std::string& name() const { return name_; }
  void setName(std::string n) { name_ = std::move(n); }

  /// Add a primary input; returns its id.
  NodeId addInput(const std::string& name = "");

  /// Add an operation consuming existing nodes; returns its id.
  NodeId addOp(OpKind kind, std::span<const NodeId> operands,
               const std::string& name = "");
  NodeId addOp(OpKind kind, std::initializer_list<NodeId> operands,
               const std::string& name = "");

  /// Mark a node as a primary output (idempotent).
  void markOutput(NodeId id);

  /// Insert a sequencing-only arc; rejects self-arcs, duplicates, and arcs that
  /// would close a cycle.
  void addScheduleArc(NodeId from, NodeId to);

  /// Insert a state edge (ordered side effect `from` before `to`); same local
  /// validation as addScheduleArc but the edge is a *semantic* dependence:
  /// controllers wait on it and rescheduling keeps it.
  void addStateEdge(NodeId from, NodeId to);

  // --- read access -------------------------------------------------------
  std::size_t numNodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const;
  const std::vector<ScheduleArc>& scheduleArcs() const { return scheduleArcs_; }
  const std::vector<ScheduleArc>& stateEdges() const { return stateEdges_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  bool isInput(NodeId id) const { return node(id).kind == OpKind::Input; }
  bool isOp(NodeId id) const { return !isInput(id); }

  /// Ids of all operation nodes (non-inputs), ascending.
  std::vector<NodeId> opIds() const;
  /// Ids of all primary inputs, ascending.
  std::vector<NodeId> inputIds() const;
  /// Operation nodes of one resource class, ascending.
  std::vector<NodeId> opsOfClass(ResourceClass cls) const;
  /// Count of operation nodes.
  std::size_t numOps() const;

  /// Data successors of a node (consumers of its value), ascending, deduped.
  std::vector<NodeId> dataSuccessors(NodeId id) const;
  /// Data predecessors (the operand list, deduped, inputs included).
  std::vector<NodeId> dataPredecessors(NodeId id) const;
  /// Semantic dependence predecessors the controllers must wait on: data
  /// predecessors plus state-edge predecessors (deduped).  Identical to
  /// dataPredecessors on graphs without state edges.
  std::vector<NodeId> dependencePredecessors(NodeId id) const;
  /// Predecessors through data edges, state edges *and* schedule arcs.
  std::vector<NodeId> combinedPredecessors(NodeId id) const;
  /// Successors through data edges, state edges *and* schedule arcs.
  std::vector<NodeId> combinedSuccessors(NodeId id) const;

  /// Find a node by name; kNoNode when absent.
  NodeId findByName(const std::string& name) const;

  /// Full structural validation; throws tauhls::Error on violation.
  void validate() const;

  /// True when the graph (data edges + schedule arcs) is acyclic.
  bool isAcyclic() const;

  /// Remove all schedule arcs (used when re-scheduling).  State edges are
  /// part of the design and stay.
  void clearScheduleArcs() { scheduleArcs_.clear(); }

 private:
  NodeId addNode(Node n);
  void addSequencingEdge(std::vector<ScheduleArc>& edges, NodeId from,
                         NodeId to, const char* what);
  std::string freshName(const char* stem) const;

  std::string name_ = "dfg";
  std::vector<Node> nodes_;
  std::vector<ScheduleArc> scheduleArcs_;
  std::vector<ScheduleArc> stateEdges_;
  std::vector<NodeId> outputs_;
};

}  // namespace tauhls::dfg
