// A minimal textual frontend for dataflow graphs.
//
// Grammar (one statement per line or ';'-separated; '#' starts a comment):
//
//   in  a, b, c            declare primary inputs
//   t1 = a * b             binary operation (+ - * / < & | ^ <<)
//   t2 = - t1              unary negation
//   out t2, t1             declare primary outputs
//
// Names must be unique identifiers.  Every right-hand operand must already be
// defined.  This is sufficient for all the paper's benchmarks and keeps user
// examples self-describing.
#pragma once

#include <string>

#include "dfg/graph.hpp"

namespace tauhls::dfg {

/// Parse a DFG from the textual form above; throws tauhls::Error with a
/// line-numbered message on malformed input.
Dfg parseDfg(const std::string& text, const std::string& name = "dfg");

/// Serialize to the same textual form (round-trips through parseDfg).
std::string printDfg(const Dfg& g);

}  // namespace tauhls::dfg
