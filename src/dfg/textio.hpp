// A minimal textual frontend for dataflow graphs and region programs.
//
// Flat grammar (one statement per line or ';'-separated; '#' starts a
// comment):
//
//   in  a, b, c            declare primary inputs
//   t1 = a * b             binary operation (+ - * / < & | ^ <<)
//   t2 = - t1              unary negation
//   order t1, t2           state edges t1 -> t2 (ordered side effects)
//   out t2, t1             declare primary outputs
//
// Names must be unique identifiers.  Every right-hand operand must already be
// defined.  This is sufficient for all the paper's benchmarks and keeps user
// examples self-describing.
//
// The region grammar adds two block constructs (parseProgram):
//
//   loop 4 {               run the body 4 times (static trip count)
//     acc = acc + x
//   }
//   if c {                 run one branch, selected by the value `c`
//     y = acc * k
//   } else {
//     y = acc + k
//   }
//
// Blocks nest freely; consecutive plain statements between blocks form one
// leaf region.  Values thread between blocks by name (see dfg/region.hpp);
// `in`/`out` stay at the top level.  Input without any block parses to a
// single-leaf (flat) program whose body is bit-identical to parseDfg's.
#pragma once

#include <string>

#include "dfg/region.hpp"

namespace tauhls::dfg {

/// Parse a flat DFG from the textual form above; throws tauhls::Error with a
/// line-numbered message on malformed input.
Dfg parseDfg(const std::string& text, const std::string& name = "dfg");

/// Serialize to the same textual form (round-trips through parseDfg).
std::string printDfg(const Dfg& g);

/// Parse a region program.  Block-free input yields a flat single-leaf
/// program wrapping exactly parseDfg's graph.  Leaf bodies are named
/// `<name>_<path>` and every leaf definition is exported as a leaf output;
/// structural validation is the caller's job (checkRegionProgram).
RegionProgram parseProgram(const std::string& text,
                           const std::string& name = "program");

/// Serialize a region program to the block syntax (round-trips through
/// parseProgram up to leaf body names).  Flat programs print as printDfg.
std::string printProgram(const RegionProgram& program);

}  // namespace tauhls::dfg
