// Operation kinds of the dataflow-graph IR.
//
// The paper's datapaths use multiplications (bound to telescopic units in the
// experiments), additions, subtractions and comparisons; the IR supports the
// usual wider set so user frontends are not artificially restricted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace tauhls::dfg {

/// Kind of a DFG node.  `Input` nodes are primary inputs (no operands,
/// consume no arithmetic unit); every other kind is an operation executed on
/// an allocated arithmetic unit of the matching resource class.
enum class OpKind : std::uint8_t {
  Input,
  Add,
  Sub,
  Mul,
  Div,
  Compare,  // relational; executes on the subtractor class (a compare is a subtract)
  Shift,
  And,
  Or,
  Xor,
  Neg,
};

/// Resource class an operation executes on.  Binding allocates unit instances
/// per class; Compare shares the Subtractor class (DESIGN.md §5.4).
enum class ResourceClass : std::uint8_t {
  None,        // Input nodes
  Adder,       // Add
  Subtractor,  // Sub, Compare, Neg
  Multiplier,  // Mul
  Divider,     // Div
  Logic,       // Shift/And/Or/Xor
};

/// Stable lower-case mnemonic ("mul", "add", ...).
const char* opKindName(OpKind kind);

/// Parse a mnemonic produced by opKindName; empty optional when unknown.
std::optional<OpKind> parseOpKind(const std::string& name);

/// Number of operands the kind requires (Input -> 0, Neg -> 1, others -> 2).
int opKindArity(OpKind kind);

/// Resource class the kind executes on.
ResourceClass resourceClassOf(OpKind kind);

/// Stable name of a resource class ("mult", "adder", ...).
const char* resourceClassName(ResourceClass cls);

/// Infix symbol for pretty-printing ("*", "+", ...); mnemonic if none.
const char* opKindSymbol(OpKind kind);

}  // namespace tauhls::dfg
