#include "dfg/op.hpp"

#include "common/error.hpp"

namespace tauhls::dfg {

const char* opKindName(OpKind kind) {
  switch (kind) {
    case OpKind::Input: return "in";
    case OpKind::Add: return "add";
    case OpKind::Sub: return "sub";
    case OpKind::Mul: return "mul";
    case OpKind::Div: return "div";
    case OpKind::Compare: return "cmp";
    case OpKind::Shift: return "shl";
    case OpKind::And: return "and";
    case OpKind::Or: return "or";
    case OpKind::Xor: return "xor";
    case OpKind::Neg: return "neg";
  }
  TAUHLS_FAIL("unknown OpKind");
}

std::optional<OpKind> parseOpKind(const std::string& name) {
  static const std::pair<const char*, OpKind> table[] = {
      {"in", OpKind::Input}, {"add", OpKind::Add},   {"sub", OpKind::Sub},
      {"mul", OpKind::Mul},  {"div", OpKind::Div},   {"cmp", OpKind::Compare},
      {"shl", OpKind::Shift}, {"and", OpKind::And},  {"or", OpKind::Or},
      {"xor", OpKind::Xor},  {"neg", OpKind::Neg},
  };
  for (const auto& [n, k] : table) {
    if (name == n) return k;
  }
  return std::nullopt;
}

int opKindArity(OpKind kind) {
  switch (kind) {
    case OpKind::Input: return 0;
    case OpKind::Neg: return 1;
    default: return 2;
  }
}

ResourceClass resourceClassOf(OpKind kind) {
  switch (kind) {
    case OpKind::Input: return ResourceClass::None;
    case OpKind::Add: return ResourceClass::Adder;
    case OpKind::Sub:
    case OpKind::Compare:
    case OpKind::Neg: return ResourceClass::Subtractor;
    case OpKind::Mul: return ResourceClass::Multiplier;
    case OpKind::Div: return ResourceClass::Divider;
    case OpKind::Shift:
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor: return ResourceClass::Logic;
  }
  TAUHLS_FAIL("unknown OpKind");
}

const char* resourceClassName(ResourceClass cls) {
  switch (cls) {
    case ResourceClass::None: return "none";
    case ResourceClass::Adder: return "adder";
    case ResourceClass::Subtractor: return "subtractor";
    case ResourceClass::Multiplier: return "mult";
    case ResourceClass::Divider: return "divider";
    case ResourceClass::Logic: return "logic";
  }
  TAUHLS_FAIL("unknown ResourceClass");
}

const char* opKindSymbol(OpKind kind) {
  switch (kind) {
    case OpKind::Add: return "+";
    case OpKind::Sub: return "-";
    case OpKind::Mul: return "*";
    case OpKind::Div: return "/";
    case OpKind::Compare: return "<";
    case OpKind::And: return "&";
    case OpKind::Or: return "|";
    case OpKind::Xor: return "^";
    case OpKind::Shift: return "<<";
    default: return opKindName(kind);
  }
}

}  // namespace tauhls::dfg
