// Hierarchical region tree over flat dataflow graphs.
//
// A RegionProgram composes leaf Dfgs with three structured constructs:
//
//   Seq   run the children one after another;
//   Loop  run the single child tripCount times (static trip count);
//   Cond  run exactly one of the two children (then / else), selected by a
//         named value computed before the conditional.
//
// Values thread between regions by *name*: every operation a leaf defines is
// visible to later regions (last writer wins), a leaf that reads a name it
// does not define gets an input port for it, and loop-carried names fall out
// of that threading during unrolling (iteration 1 reads the pre-loop
// definition, iteration k reads iteration k-1's).  Ordered side effects
// inside a leaf are expressed with state edges (Dfg::addStateEdge).
//
// Region paths identify tree positions: child i of a Seq appends "s<i>",
// a loop body appends "l", the conditional branches append "t"/"e", with
// '_' joining segments (e.g. "s1_l_s0" = first block of the loop body that
// is the second top-level region).  Leaf paths key every per-region artifact
// downstream (schedules, controllers, cache entries).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace tauhls::dfg {

enum class RegionKind { Leaf, Seq, Loop, Cond };

const char* regionKindName(RegionKind kind);

struct Region {
  RegionKind kind = RegionKind::Leaf;
  Dfg body;                      ///< Leaf only: the operations of this block
  int tripCount = 1;             ///< Loop only: static iteration count (>= 1)
  std::string condName;          ///< Cond only: name of the selecting value
  std::vector<Region> children;  ///< Seq >= 1, Loop == 1, Cond == 2 (then, else)

  static Region leaf(Dfg body);
  static Region seq(std::vector<Region> children);
  static Region loop(int tripCount, Region child);
  static Region cond(std::string condName, Region thenChild, Region elseChild);
};

struct RegionProgram {
  std::string name = "program";
  std::vector<std::string> inputs;   ///< program-level input names
  std::vector<std::string> outputs;  ///< names that must be defined at the end
  Region root;

  /// A single-leaf program: every existing flat pass applies to root.body
  /// unchanged.
  bool isFlat() const { return root.kind == RegionKind::Leaf; }
};

/// Append one path segment ("s0", "l", "t", "e") to a region path.
std::string childRegionPath(const std::string& base, const std::string& segment);

/// The program-level name a leaf input port reads.  Ports are named after the
/// value they import; when the leaf also (re)defines that name the port gets
/// an "__ext" suffix to keep node names unique -- this strips it back off.
std::string portBaseName(const std::string& inputName);

/// Suffix appended to a leaf input port whose name the leaf itself redefines.
inline constexpr const char* kExternalPortSuffix = "__ext";

/// A leaf with its tree path, in program (pre-)order.
struct LeafRef {
  std::string path;
  const Region* region = nullptr;
};

std::vector<LeafRef> collectLeaves(const RegionProgram& program);

/// Rename every leaf body to `<program>_<path>` so downstream artifacts
/// (controllers, RTL modules, cache keys) carry their region identity.
void nameLeaves(RegionProgram& program);

/// Branch selection for every Cond, keyed by the conditional's region path;
/// true takes the then-branch.  Dynamic queries (activation traces,
/// flattening, composed simulation) fail loudly on a missing key.
using BranchChoices = std::map<std::string, bool>;

/// Region paths of every conditional, in program (pre-)order.
std::vector<std::string> condRegionPaths(const RegionProgram& program);

/// `partial` with every missing conditional defaulted to the then-branch --
/// the documented default of the CLI's --branches option.
BranchChoices completeBranchChoices(const RegionProgram& program,
                                    const BranchChoices& partial);

/// One structural defect of a region program.  `code` is the verify-rule it
/// maps to: "DFG009" (malformed tree / name threading) or "DFG010" (bad trip
/// count); the verify layer re-reports these through its registry.
struct RegionIssue {
  std::string code;
  std::string where;  ///< region path ("" = program level)
  std::string message;
};

/// All structural defects, empty when the program is well-formed.
std::vector<RegionIssue> checkRegionProgram(const RegionProgram& program);

/// Throws tauhls::Error on the first defect checkRegionProgram would report.
void validateRegionProgram(const RegionProgram& program);

/// The leaf-path sequence executed under `choices`, loops unrolled
/// (the composed schedule's activation order).  Requires a valid program.
std::vector<std::string> activationTrace(const RegionProgram& program,
                                         const BranchChoices& choices);

/// Sum of per-leaf unit-duration critical paths along the activation trace:
/// the composed dependence-level lower bound on the makespan.
int composedCriticalPathLength(const RegionProgram& program,
                               const BranchChoices& choices);

/// Inline-and-unroll reference: one flat Dfg with every activation's leaf
/// body copied under an "a<k>_" prefix and state-edge barriers from each
/// activation's terminal operations to the next activation's source
/// operations -- exactly the ordering the region sequencer's start/done
/// handshake enforces, so flat analyses of this graph cross-check the
/// composed path.
Dfg flattenProgram(const RegionProgram& program, const BranchChoices& choices);

}  // namespace tauhls::dfg
