// Dataflow-graph cleanup passes applied before scheduling.
//
// The HLS literature's benchmark DFGs often carry redundancy (the HAL Diff.
// graph famously computes u*dx twice); these passes let the flow quantify
// and remove it:
//   * commonSubexpressionElimination: merge ops with identical (kind,
//     operands) -- commutative kinds match either operand order;
//   * eliminateDeadOps: drop ops whose value reaches no output;
//   * tidy: run both to a fixpoint.
// All passes return a fresh graph plus a report of what changed; schedule
// arcs are not preserved (run the passes before scheduling).
#pragma once

#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace tauhls::dfg {

struct TransformReport {
  int mergedOps = 0;    ///< removed by CSE
  int removedDead = 0;  ///< removed by dead-op elimination
  std::vector<std::string> notes;  ///< human-readable per-change log
};

/// Merge structurally identical operations.  Commutative kinds (Add, Mul,
/// And, Or, Xor) match with swapped operands.
Dfg commonSubexpressionElimination(const Dfg& g, TransformReport* report = nullptr);

/// Remove operations that reach no primary output.  Graphs without any
/// marked output are returned unchanged (everything is presumed live).
Dfg eliminateDeadOps(const Dfg& g, TransformReport* report = nullptr);

/// CSE + dead-op elimination to a fixpoint.
Dfg tidy(const Dfg& g, TransformReport* report = nullptr);

}  // namespace tauhls::dfg
