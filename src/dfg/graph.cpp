#include "dfg/graph.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::dfg {

namespace {
void sortUnique(std::vector<NodeId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}
}  // namespace

NodeId Dfg::addInput(const std::string& name) {
  Node n;
  n.kind = OpKind::Input;
  n.name = name.empty() ? freshName("in") : name;
  return addNode(std::move(n));
}

NodeId Dfg::addOp(OpKind kind, std::span<const NodeId> operands,
                  const std::string& name) {
  TAUHLS_CHECK(kind != OpKind::Input, "use addInput for primary inputs");
  TAUHLS_CHECK(static_cast<int>(operands.size()) == opKindArity(kind),
               std::string("operand count mismatch for ") + opKindName(kind));
  Node n;
  n.kind = kind;
  n.name = name.empty() ? freshName(opKindName(kind)) : name;
  n.operands.assign(operands.begin(), operands.end());
  for (NodeId o : n.operands) {
    TAUHLS_CHECK(o < nodes_.size(), "operand refers to a nonexistent node");
  }
  return addNode(std::move(n));
}

NodeId Dfg::addOp(OpKind kind, std::initializer_list<NodeId> operands,
                  const std::string& name) {
  return addOp(kind, std::span<const NodeId>(operands.begin(), operands.size()),
               name);
}

NodeId Dfg::addNode(Node n) {
  TAUHLS_CHECK(findByName(n.name) == kNoNode,
               "duplicate node name: " + n.name);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Dfg::markOutput(NodeId id) {
  TAUHLS_CHECK(id < nodes_.size(), "output id out of range");
  if (std::find(outputs_.begin(), outputs_.end(), id) == outputs_.end()) {
    outputs_.push_back(id);
  }
}

void Dfg::addSequencingEdge(std::vector<ScheduleArc>& edges, NodeId from,
                            NodeId to, const char* what) {
  TAUHLS_CHECK(from < nodes_.size() && to < nodes_.size(),
               std::string(what) + " endpoint out of range");
  TAUHLS_CHECK(from != to, std::string(what) + " must not be a self-loop");
  TAUHLS_CHECK(isOp(from) && isOp(to),
               std::string(what) + "s connect operations, not inputs");
  ScheduleArc arc{from, to};
  if (std::find(edges.begin(), edges.end(), arc) != edges.end()) {
    return;  // idempotent
  }
  edges.push_back(arc);
  if (!isAcyclic()) {
    edges.pop_back();
    TAUHLS_FAIL(std::string(what) + " " + nodes_[from].name + " -> " +
                nodes_[to].name + " would create a cycle");
  }
}

void Dfg::addScheduleArc(NodeId from, NodeId to) {
  addSequencingEdge(scheduleArcs_, from, to, "schedule arc");
}

void Dfg::addStateEdge(NodeId from, NodeId to) {
  addSequencingEdge(stateEdges_, from, to, "state edge");
}

const Node& Dfg::node(NodeId id) const {
  TAUHLS_CHECK(id < nodes_.size(), "node id out of range");
  return nodes_[id];
}

std::vector<NodeId> Dfg::opIds() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind != OpKind::Input) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> Dfg::inputIds() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == OpKind::Input) out.push_back(i);
  }
  return out;
}

std::vector<NodeId> Dfg::opsOfClass(ResourceClass cls) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind != OpKind::Input && resourceClassOf(nodes_[i].kind) == cls) {
      out.push_back(i);
    }
  }
  return out;
}

std::size_t Dfg::numOps() const {
  std::size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.kind != OpKind::Input) ++n;
  }
  return n;
}

std::vector<NodeId> Dfg::dataSuccessors(NodeId id) const {
  TAUHLS_CHECK(id < nodes_.size(), "node id out of range");
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    for (NodeId o : nodes_[i].operands) {
      if (o == id) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

std::vector<NodeId> Dfg::dataPredecessors(NodeId id) const {
  std::vector<NodeId> out = node(id).operands;
  sortUnique(out);
  return out;
}

std::vector<NodeId> Dfg::dependencePredecessors(NodeId id) const {
  std::vector<NodeId> out = node(id).operands;
  for (const ScheduleArc& a : stateEdges_) {
    if (a.to == id) out.push_back(a.from);
  }
  sortUnique(out);
  return out;
}

std::vector<NodeId> Dfg::combinedPredecessors(NodeId id) const {
  std::vector<NodeId> out = node(id).operands;
  for (const ScheduleArc& a : scheduleArcs_) {
    if (a.to == id) out.push_back(a.from);
  }
  for (const ScheduleArc& a : stateEdges_) {
    if (a.to == id) out.push_back(a.from);
  }
  sortUnique(out);
  return out;
}

std::vector<NodeId> Dfg::combinedSuccessors(NodeId id) const {
  std::vector<NodeId> out = dataSuccessors(id);
  for (const ScheduleArc& a : scheduleArcs_) {
    if (a.from == id) out.push_back(a.to);
  }
  for (const ScheduleArc& a : stateEdges_) {
    if (a.from == id) out.push_back(a.to);
  }
  sortUnique(out);
  return out;
}

NodeId Dfg::findByName(const std::string& name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return kNoNode;
}

bool Dfg::isAcyclic() const {
  return topologicalOrder(*this).size() == nodes_.size();
}

void Dfg::validate() const {
  std::unordered_set<std::string> names;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    TAUHLS_CHECK(names.insert(n.name).second, "duplicate node name: " + n.name);
    TAUHLS_CHECK(static_cast<int>(n.operands.size()) == opKindArity(n.kind),
                 "operand arity mismatch on node " + n.name);
    for (NodeId o : n.operands) {
      TAUHLS_CHECK(o < nodes_.size(), "dangling operand on node " + n.name);
    }
  }
  for (const ScheduleArc& a : scheduleArcs_) {
    TAUHLS_CHECK(a.from < nodes_.size() && a.to < nodes_.size(),
                 "dangling schedule arc");
  }
  for (const ScheduleArc& a : stateEdges_) {
    TAUHLS_CHECK(a.from < nodes_.size() && a.to < nodes_.size(),
                 "dangling state edge");
  }
  for (NodeId o : outputs_) {
    TAUHLS_CHECK(o < nodes_.size(), "dangling output marker");
  }
  TAUHLS_CHECK(isAcyclic(), "graph contains a cycle");
}

std::string Dfg::freshName(const char* stem) const {
  for (std::size_t k = nodes_.size();; ++k) {
    std::string candidate = std::string(stem) + std::to_string(k);
    if (findByName(candidate) == kNoNode) return candidate;
  }
}

}  // namespace tauhls::dfg
