// Structural analyses over Dfg: topological order, longest paths, depths.
#pragma once

#include <functional>
#include <vector>

#include "dfg/graph.hpp"

namespace tauhls::dfg {

/// Per-node integer duration (in clock cycles) used by path analyses.
/// Input nodes must map to 0.
using DurationFn = std::function<int(NodeId)>;

/// Duration function assigning 1 cycle to every operation, 0 to inputs.
DurationFn unitDurations(const Dfg& g);

/// Kahn topological order over data edges + schedule arcs.  When the graph is
/// cyclic the returned order is truncated (size < numNodes) -- callers that
/// require a DAG should check or call Dfg::validate() first.
std::vector<NodeId> topologicalOrder(const Dfg& g);

/// Longest path (sum of durations) from any source to each node, inclusive of
/// the node's own duration.  Follows data edges and schedule arcs.
std::vector<int> longestPathTo(const Dfg& g, const DurationFn& dur);

/// Critical-path length of the whole graph under `dur`.
int criticalPathLength(const Dfg& g, const DurationFn& dur);

/// True when `from` reaches `to` through data edges + schedule arcs.
bool reaches(const Dfg& g, NodeId from, NodeId to);

/// All-pairs reachability closure (data + schedule arcs); entry [a][b] is true
/// when a reaches b (a != b).  O(V*E/64) bitset-free implementation, fine for
/// HLS-sized graphs.
std::vector<std::vector<bool>> reachabilityClosure(const Dfg& g);

}  // namespace tauhls::dfg
