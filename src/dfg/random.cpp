#include "dfg/random.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <random>
#include <set>

#include "common/error.hpp"

namespace tauhls::dfg {

namespace {

OpKind pickKind(std::mt19937_64& rng, const RandomDfgSpec& spec) {
  if (std::uniform_int_distribution<int>(0, 999)(rng) < spec.mulPermille) {
    return OpKind::Mul;
  }
  if (spec.addVsSubPermille == 500) {
    // The historical even coin, kept bit-for-bit so seeded graphs and the
    // artifacts derived from them are unchanged.
    return std::uniform_int_distribution<int>(0, 1)(rng) ? OpKind::Add
                                                         : OpKind::Sub;
  }
  return std::uniform_int_distribution<int>(0, 999)(rng) <
                 spec.addVsSubPermille
             ? OpKind::Add
             : OpKind::Sub;
}

/// Layered construction: rank r ops draw op operands only from rank r-1.
void buildLayered(Dfg& g, std::mt19937_64& rng, const RandomDfgSpec& spec,
                  const std::vector<NodeId>& inputs, std::vector<NodeId>& ops) {
  std::vector<NodeId> prev;  // rank r-1
  for (int layer = 0; layer < spec.numLayers; ++layer) {
    std::vector<NodeId> rank;
    for (int i = 0; i < spec.layerWidth; ++i) {
      const OpKind kind = pickKind(rng, spec);
      const int opFanin = prev.empty() ? 0
                                       : std::uniform_int_distribution<int>(
                                             0, spec.maxOpFanin)(rng);
      auto pick = [&](bool fromOps) -> NodeId {
        if (fromOps) {
          std::uniform_int_distribution<std::size_t> d(0, prev.size() - 1);
          return prev[d(rng)];
        }
        std::uniform_int_distribution<std::size_t> d(0, inputs.size() - 1);
        return inputs[d(rng)];
      };
      const NodeId a = pick(opFanin >= 1);
      const NodeId b = pick(opFanin >= 2);
      rank.push_back(g.addOp(kind, {a, b}));
    }
    ops.insert(ops.end(), rank.begin(), rank.end());
    prev = std::move(rank);
  }
}

}  // namespace

Dfg randomDfg(const RandomDfgSpec& spec) {
  TAUHLS_CHECK(spec.numLayers > 0 || spec.numOps >= 1,
               "randomDfg needs at least one op");
  TAUHLS_CHECK(spec.numInputs >= 1, "randomDfg needs at least one input");
  TAUHLS_CHECK(spec.maxOpFanin >= 0 && spec.maxOpFanin <= 2,
               "maxOpFanin must be 0..2");
  TAUHLS_CHECK(spec.numLayers == 0 || spec.layerWidth >= 1,
               "layered randomDfg needs layerWidth >= 1");
  std::mt19937_64 rng(spec.seed);
  Dfg g("random_s" + std::to_string(spec.seed));
  std::vector<NodeId> inputs;
  for (int i = 0; i < spec.numInputs; ++i) inputs.push_back(g.addInput());

  std::vector<NodeId> ops;
  if (spec.numLayers > 0) {
    buildLayered(g, rng, spec, inputs, ops);
  } else {
    auto pickOperand = [&](bool allowOp) -> NodeId {
      const bool useOp = allowOp && !ops.empty() &&
                         std::uniform_int_distribution<int>(0, 99)(rng) < 70;
      if (useOp) {
        // Bias toward recent ops so depth grows with size.
        std::size_t lo = ops.size() > 6 ? ops.size() - 6 : 0;
        std::uniform_int_distribution<std::size_t> d(lo, ops.size() - 1);
        return ops[d(rng)];
      }
      std::uniform_int_distribution<std::size_t> d(0, inputs.size() - 1);
      return inputs[d(rng)];
    };

    for (int i = 0; i < spec.numOps; ++i) {
      const OpKind kind = pickKind(rng, spec);
      int opFanin = std::uniform_int_distribution<int>(0, spec.maxOpFanin)(rng);
      NodeId a = pickOperand(opFanin >= 1);
      NodeId b = pickOperand(opFanin >= 2);
      ops.push_back(g.addOp(kind, {a, b}));
    }
  }
  // Mark every value-producing sink as an output.
  for (NodeId op : ops) {
    if (g.dataSuccessors(op).empty()) g.markOutput(op);
  }
  g.validate();
  return g;
}

namespace {

class RegionGenerator {
 public:
  explicit RegionGenerator(const RandomRegionSpec& spec)
      : spec_(spec), rng_(spec.seed) {}

  RegionProgram run() {
    RegionProgram prog;
    prog.name = "random_region_s" + std::to_string(spec_.seed);
    std::set<std::string> defined;
    for (int i = 0; i < spec_.leaf.numInputs; ++i) {
      prog.inputs.push_back("x" + std::to_string(i));
      defined.insert(prog.inputs.back());
    }
    std::vector<Region> blocks;
    for (int b = 0; b < spec_.numBlocks; ++b) {
      blocks.push_back(makeRegion(0, defined));
    }
    prog.root = Region::seq(std::move(blocks));
    // Every program output must be defined on every path; the surviving
    // `defined` set already reflects conditional joins.
    prog.outputs.push_back(*defined.rbegin());
    nameLeaves(prog);
    validateRegionProgram(prog);
    return prog;
  }

 private:
  std::string sample(const std::set<std::string>& defined) {
    std::uniform_int_distribution<std::size_t> d(0, defined.size() - 1);
    auto it = defined.begin();
    std::advance(it, d(rng_));
    return *it;
  }

  Region makeLeaf(std::set<std::string>& defined) {
    Dfg g;
    std::map<std::string, NodeId> ports;
    auto port = [&](const std::string& name) {
      auto it = ports.find(name);
      if (it == ports.end()) it = ports.emplace(name, g.addInput(name)).first;
      return it->second;
    };
    std::vector<NodeId> ops;
    std::vector<std::string> opNames;
    const int numOps = spec_.leaf.numLayers > 0
                           ? spec_.leaf.numLayers * spec_.leaf.layerWidth
                           : spec_.leaf.numOps;
    for (int i = 0; i < numOps; ++i) {
      const OpKind kind = pickKind(rng_, spec_.leaf);
      const int opFanin = std::uniform_int_distribution<int>(
          0, spec_.leaf.maxOpFanin)(rng_);
      auto operand = [&](bool fromOps) -> NodeId {
        if (fromOps && !ops.empty()) {
          std::uniform_int_distribution<std::size_t> d(0, ops.size() - 1);
          return ops[d(rng_)];
        }
        return port(sample(defined));
      };
      const NodeId a = operand(opFanin >= 1);
      const NodeId b = operand(opFanin >= 2);
      const std::string name = "v" + std::to_string(nameCounter_++);
      ops.push_back(g.addOp(kind, {a, b}, name));
      opNames.push_back(name);
    }
    for (NodeId op : ops) g.markOutput(op);
    g.validate();
    for (const std::string& n : opNames) defined.insert(n);
    return Region::leaf(std::move(g));
  }

  Region makeRegion(int depth, std::set<std::string>& defined) {
    const int roll = std::uniform_int_distribution<int>(0, 999)(rng_);
    if (depth < spec_.maxDepth && roll < spec_.loopPermille) {
      const int trips = std::uniform_int_distribution<int>(
          2, std::max(2, spec_.maxTripCount))(rng_);
      return Region::loop(trips, makeRegion(depth + 1, defined));
    }
    if (depth < spec_.maxDepth &&
        roll < spec_.loopPermille + spec_.condPermille) {
      const std::string selector = sample(defined);
      std::set<std::string> thenDefined = defined;
      std::set<std::string> elseDefined = defined;
      Region thenChild = makeRegion(depth + 1, thenDefined);
      Region elseChild = makeRegion(depth + 1, elseDefined);
      // Only names both branches define survive the join.
      std::set<std::string> joined;
      std::set_intersection(thenDefined.begin(), thenDefined.end(),
                            elseDefined.begin(), elseDefined.end(),
                            std::inserter(joined, joined.begin()));
      defined = std::move(joined);
      return Region::cond(selector, std::move(thenChild),
                          std::move(elseChild));
    }
    return makeLeaf(defined);
  }

  const RandomRegionSpec& spec_;
  std::mt19937_64 rng_;
  int nameCounter_ = 0;
};

}  // namespace

RegionProgram randomRegionProgram(const RandomRegionSpec& spec) {
  TAUHLS_CHECK(spec.numBlocks >= 1, "randomRegionProgram needs >= 1 block");
  TAUHLS_CHECK(spec.maxDepth >= 0, "maxDepth must be >= 0");
  return RegionGenerator(spec).run();
}

}  // namespace tauhls::dfg
