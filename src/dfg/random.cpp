#include "dfg/random.hpp"

#include <random>

#include "common/error.hpp"

namespace tauhls::dfg {

Dfg randomDfg(const RandomDfgSpec& spec) {
  TAUHLS_CHECK(spec.numOps >= 1, "randomDfg needs at least one op");
  TAUHLS_CHECK(spec.numInputs >= 1, "randomDfg needs at least one input");
  TAUHLS_CHECK(spec.maxOpFanin >= 0 && spec.maxOpFanin <= 2,
               "maxOpFanin must be 0..2");
  std::mt19937_64 rng(spec.seed);
  Dfg g("random_s" + std::to_string(spec.seed));
  std::vector<NodeId> inputs;
  for (int i = 0; i < spec.numInputs; ++i) inputs.push_back(g.addInput());

  std::vector<NodeId> ops;
  auto pickOperand = [&](bool allowOp) -> NodeId {
    const bool useOp = allowOp && !ops.empty() &&
                       std::uniform_int_distribution<int>(0, 99)(rng) < 70;
    if (useOp) {
      // Bias toward recent ops so depth grows with size.
      std::size_t lo = ops.size() > 6 ? ops.size() - 6 : 0;
      std::uniform_int_distribution<std::size_t> d(lo, ops.size() - 1);
      return ops[d(rng)];
    }
    std::uniform_int_distribution<std::size_t> d(0, inputs.size() - 1);
    return inputs[d(rng)];
  };

  for (int i = 0; i < spec.numOps; ++i) {
    OpKind kind;
    if (std::uniform_int_distribution<int>(0, 999)(rng) < spec.mulPermille) {
      kind = OpKind::Mul;
    } else {
      kind = std::uniform_int_distribution<int>(0, 1)(rng) ? OpKind::Add
                                                           : OpKind::Sub;
    }
    int opFanin = std::uniform_int_distribution<int>(0, spec.maxOpFanin)(rng);
    NodeId a = pickOperand(opFanin >= 1);
    NodeId b = pickOperand(opFanin >= 2);
    ops.push_back(g.addOp(kind, {a, b}));
  }
  // Mark every value-producing sink as an output.
  for (NodeId op : ops) {
    if (g.dataSuccessors(op).empty()) g.markOutput(op);
  }
  g.validate();
  return g;
}

}  // namespace tauhls::dfg
