#include "dfg/textio.hpp"

#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace tauhls::dfg {

namespace {

std::optional<OpKind> kindForSymbol(const std::string& sym) {
  if (sym == "+") return OpKind::Add;
  if (sym == "-") return OpKind::Sub;
  if (sym == "*") return OpKind::Mul;
  if (sym == "/") return OpKind::Div;
  if (sym == "<") return OpKind::Compare;
  if (sym == "&") return OpKind::And;
  if (sym == "|") return OpKind::Or;
  if (sym == "^") return OpKind::Xor;
  if (sym == "<<") return OpKind::Shift;
  return std::nullopt;
}

[[noreturn]] void parseError(int line, const std::string& msg) {
  TAUHLS_FAIL("dfg parse error at line " + std::to_string(line) + ": " + msg);
}

NodeId lookup(const Dfg& g, const std::string& name, int line) {
  NodeId id = g.findByName(name);
  if (id == kNoNode) parseError(line, "undefined name '" + name + "'");
  return id;
}

// Tokenize one statement into identifiers/operators.
std::vector<std::string> tokenize(const std::string& stmt, int line) {
  std::vector<std::string> toks;
  std::size_t i = 0;
  while (i < stmt.size()) {
    char c = stmt[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < stmt.size() &&
             (std::isalnum(static_cast<unsigned char>(stmt[j])) || stmt[j] == '_')) {
        ++j;
      }
      toks.push_back(stmt.substr(i, j - i));
      i = j;
    } else if (c == '<' && i + 1 < stmt.size() && stmt[i + 1] == '<') {
      toks.push_back("<<");
      i += 2;
    } else if (std::string("+-*/<&|^=,").find(c) != std::string::npos) {
      toks.push_back(std::string(1, c));
      ++i;
    } else {
      parseError(line, std::string("unexpected character '") + c + "'");
    }
  }
  return toks;
}

}  // namespace

Dfg parseDfg(const std::string& text, const std::string& name) {
  Dfg g(name);
  std::vector<std::string> pendingOutputs;
  int lineNo = 0;
  std::istringstream in(text);
  std::string line;
  std::vector<std::pair<int, std::string>> stmts;
  while (std::getline(in, line)) {
    ++lineNo;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    for (const std::string& stmt : split(line, ';')) {
      if (!trim(stmt).empty()) stmts.emplace_back(lineNo, trim(stmt));
    }
  }

  for (const auto& [ln, stmt] : stmts) {
    std::vector<std::string> toks = tokenize(stmt, ln);
    TAUHLS_ASSERT(!toks.empty(), "empty statement survived filtering");
    if (toks[0] == "in" || toks[0] == "out") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        if (toks[i] == ",") continue;
        if (!isIdentifier(toks[i])) parseError(ln, "expected identifier, got '" + toks[i] + "'");
        if (toks[0] == "in") {
          g.addInput(toks[i]);
        } else {
          pendingOutputs.push_back(toks[i]);
        }
      }
      continue;
    }
    // assignment: name = a OP b  |  name = - a
    if (toks.size() < 3 || toks[1] != "=" || !isIdentifier(toks[0])) {
      parseError(ln, "expected 'name = expr'");
    }
    const std::string& dst = toks[0];
    if (toks.size() == 4 && toks[2] == "-") {
      NodeId a = lookup(g, toks[3], ln);
      g.addOp(OpKind::Neg, {a}, dst);
    } else if (toks.size() == 5) {
      auto kind = kindForSymbol(toks[3]);
      if (!kind) parseError(ln, "unknown operator '" + toks[3] + "'");
      NodeId a = lookup(g, toks[2], ln);
      NodeId b = lookup(g, toks[4], ln);
      g.addOp(*kind, {a, b}, dst);
    } else {
      parseError(ln, "malformed expression in '" + stmt + "'");
    }
  }
  for (const std::string& o : pendingOutputs) {
    NodeId id = g.findByName(o);
    if (id == kNoNode) TAUHLS_FAIL("dfg parse error: output '" + o + "' is undefined");
    g.markOutput(id);
  }
  g.validate();
  return g;
}

std::string printDfg(const Dfg& g) {
  std::ostringstream os;
  std::vector<std::string> ins;
  for (NodeId i : g.inputIds()) ins.push_back(g.node(i).name);
  if (!ins.empty()) os << "in " << join(ins, ", ") << "\n";
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    const Node& n = g.node(i);
    if (n.kind == OpKind::Input) continue;
    if (n.kind == OpKind::Neg) {
      os << n.name << " = - " << g.node(n.operands[0]).name << "\n";
    } else {
      os << n.name << " = " << g.node(n.operands[0]).name << " "
         << opKindSymbol(n.kind) << " " << g.node(n.operands[1]).name << "\n";
    }
  }
  std::vector<std::string> outs;
  for (NodeId o : g.outputs()) outs.push_back(g.node(o).name);
  if (!outs.empty()) os << "out " << join(outs, ", ") << "\n";
  return os.str();
}

}  // namespace tauhls::dfg
