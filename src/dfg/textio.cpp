#include "dfg/textio.hpp"

#include <functional>
#include <optional>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace tauhls::dfg {

namespace {

std::optional<OpKind> kindForSymbol(const std::string& sym) {
  if (sym == "+") return OpKind::Add;
  if (sym == "-") return OpKind::Sub;
  if (sym == "*") return OpKind::Mul;
  if (sym == "/") return OpKind::Div;
  if (sym == "<") return OpKind::Compare;
  if (sym == "&") return OpKind::And;
  if (sym == "|") return OpKind::Or;
  if (sym == "^") return OpKind::Xor;
  if (sym == "<<") return OpKind::Shift;
  return std::nullopt;
}

[[noreturn]] void parseError(int line, const std::string& msg) {
  TAUHLS_FAIL("dfg parse error at line " + std::to_string(line) + ": " + msg);
}

NodeId lookup(const Dfg& g, const std::string& name, int line) {
  NodeId id = g.findByName(name);
  if (id == kNoNode) parseError(line, "undefined name '" + name + "'");
  return id;
}

// Tokenize one statement into identifiers/operators.
std::vector<std::string> tokenize(const std::string& stmt, int line) {
  std::vector<std::string> toks;
  std::size_t i = 0;
  while (i < stmt.size()) {
    char c = stmt[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < stmt.size() &&
             (std::isalnum(static_cast<unsigned char>(stmt[j])) || stmt[j] == '_')) {
        ++j;
      }
      toks.push_back(stmt.substr(i, j - i));
      i = j;
    } else if (c == '<' && i + 1 < stmt.size() && stmt[i + 1] == '<') {
      toks.push_back("<<");
      i += 2;
    } else if (std::string("+-*/<&|^=,").find(c) != std::string::npos) {
      toks.push_back(std::string(1, c));
      ++i;
    } else {
      parseError(line, std::string("unexpected character '") + c + "'");
    }
  }
  return toks;
}

/// One `name = expr` statement, with operand resolution supplied by the
/// caller (flat parse requires operands to exist; leaf parse auto-creates
/// input ports for external reads).
void parseAssignment(Dfg& g, const std::vector<std::string>& toks, int ln,
                     const std::string& stmt,
                     const std::function<NodeId(const std::string&, int)>&
                         resolve) {
  const std::string& dst = toks[0];
  if (toks.size() == 4 && toks[2] == "-") {
    NodeId a = resolve(toks[3], ln);
    g.addOp(OpKind::Neg, {a}, dst);
  } else if (toks.size() == 5) {
    auto kind = kindForSymbol(toks[3]);
    if (!kind) parseError(ln, "unknown operator '" + toks[3] + "'");
    NodeId a = resolve(toks[2], ln);
    NodeId b = resolve(toks[4], ln);
    g.addOp(*kind, {a, b}, dst);
  } else {
    parseError(ln, "malformed expression in '" + stmt + "'");
  }
}

/// `order a, b, c`: state edges a -> b -> c between already-defined ops.
void parseOrder(Dfg& g, const std::vector<std::string>& toks, int ln) {
  std::vector<NodeId> chain;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    if (toks[i] == ",") continue;
    if (!isIdentifier(toks[i])) {
      parseError(ln, "expected identifier, got '" + toks[i] + "'");
    }
    NodeId id = lookup(g, toks[i], ln);
    if (!g.isOp(id)) {
      parseError(ln, "'" + toks[i] +
                         "' is an input; order connects operations defined in "
                         "the same block");
    }
    chain.push_back(id);
  }
  if (chain.size() < 2) parseError(ln, "order needs at least two operations");
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    g.addStateEdge(chain[i], chain[i + 1]);
  }
}

/// Comment-stripped, ';'-split, trimmed statements with their line numbers.
std::vector<std::pair<int, std::string>> splitStatements(
    const std::string& text) {
  std::vector<std::pair<int, std::string>> stmts;
  int lineNo = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++lineNo;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    for (const std::string& stmt : split(line, ';')) {
      if (!trim(stmt).empty()) stmts.emplace_back(lineNo, trim(stmt));
    }
  }
  return stmts;
}

}  // namespace

Dfg parseDfg(const std::string& text, const std::string& name) {
  Dfg g(name);
  std::vector<std::string> pendingOutputs;
  const auto resolve = [&g](const std::string& n, int ln) {
    return lookup(g, n, ln);
  };
  for (const auto& [ln, stmt] : splitStatements(text)) {
    std::vector<std::string> toks = tokenize(stmt, ln);
    TAUHLS_ASSERT(!toks.empty(), "empty statement survived filtering");
    if (toks[0] == "in" || toks[0] == "out") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        if (toks[i] == ",") continue;
        if (!isIdentifier(toks[i])) parseError(ln, "expected identifier, got '" + toks[i] + "'");
        if (toks[0] == "in") {
          g.addInput(toks[i]);
        } else {
          pendingOutputs.push_back(toks[i]);
        }
      }
      continue;
    }
    if (toks[0] == "order") {
      parseOrder(g, toks, ln);
      continue;
    }
    // assignment: name = a OP b  |  name = - a
    if (toks.size() < 3 || toks[1] != "=" || !isIdentifier(toks[0])) {
      parseError(ln, "expected 'name = expr'");
    }
    parseAssignment(g, toks, ln, stmt, resolve);
  }
  for (const std::string& o : pendingOutputs) {
    NodeId id = g.findByName(o);
    if (id == kNoNode) TAUHLS_FAIL("dfg parse error: output '" + o + "' is undefined");
    g.markOutput(id);
  }
  g.validate();
  return g;
}

std::string printDfg(const Dfg& g) {
  std::ostringstream os;
  std::vector<std::string> ins;
  for (NodeId i : g.inputIds()) ins.push_back(g.node(i).name);
  if (!ins.empty()) os << "in " << join(ins, ", ") << "\n";
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    const Node& n = g.node(i);
    if (n.kind == OpKind::Input) continue;
    if (n.kind == OpKind::Neg) {
      os << n.name << " = - " << g.node(n.operands[0]).name << "\n";
    } else {
      os << n.name << " = " << g.node(n.operands[0]).name << " "
         << opKindSymbol(n.kind) << " " << g.node(n.operands[1]).name << "\n";
    }
  }
  for (const ScheduleArc& e : g.stateEdges()) {
    os << "order " << g.node(e.from).name << ", " << g.node(e.to).name << "\n";
  }
  std::vector<std::string> outs;
  for (NodeId o : g.outputs()) outs.push_back(g.node(o).name);
  if (!outs.empty()) os << "out " << join(outs, ", ") << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Region-program parsing.
// ---------------------------------------------------------------------------

namespace {

enum class StmtKind { Plain, LoopOpen, IfOpen, Else, Close };

struct BlockStmt {
  int line = 0;
  StmtKind kind = StmtKind::Plain;
  std::string text;  ///< Plain: the statement body
  int tripCount = 0; ///< LoopOpen
  std::string selector;  ///< IfOpen
};

BlockStmt classify(int ln, const std::string& stmt) {
  BlockStmt out;
  out.line = ln;
  if (stmt == "}") {
    out.kind = StmtKind::Close;
    return out;
  }
  if (!stmt.empty() && stmt.front() == '}') {
    // Only "} else {" may follow a closing brace on one line.
    const std::string rest = trim(stmt.substr(1));
    if (rest.size() >= 2 && rest.back() == '{' &&
        trim(rest.substr(0, rest.size() - 1)) == "else") {
      out.kind = StmtKind::Else;
      return out;
    }
    parseError(ln, "expected '}' or '} else {', got '" + stmt + "'");
  }
  if (!stmt.empty() && stmt.back() == '{') {
    const std::string header = trim(stmt.substr(0, stmt.size() - 1));
    const std::vector<std::string> toks = tokenize(header, ln);
    if (!toks.empty() && toks[0] == "loop") {
      if (toks.size() != 2) parseError(ln, "expected 'loop <count> {'");
      for (char c : toks[1]) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          parseError(ln, "loop trip count '" + toks[1] + "' is not a number");
        }
      }
      out.kind = StmtKind::LoopOpen;
      out.tripCount = std::stoi(toks[1]);
      return out;
    }
    if (!toks.empty() && toks[0] == "if") {
      if (toks.size() != 2 || !isIdentifier(toks[1])) {
        parseError(ln, "expected 'if <name> {'");
      }
      out.kind = StmtKind::IfOpen;
      out.selector = toks[1];
      return out;
    }
    parseError(ln, "expected 'loop <count> {' or 'if <name> {'");
  }
  out.kind = StmtKind::Plain;
  out.text = stmt;
  return out;
}

/// Build one leaf body from its plain statements.  External reads become
/// input ports (suffixed when the leaf redefines the name); every definition
/// is exported as a leaf output.
Dfg buildLeaf(const std::vector<BlockStmt>& stmts) {
  std::set<std::string> defs;
  for (const BlockStmt& s : stmts) {
    const std::vector<std::string> toks = tokenize(s.text, s.line);
    if (toks.empty() || toks[0] == "order") continue;
    if (toks.size() < 3 || toks[1] != "=" || !isIdentifier(toks[0])) {
      parseError(s.line, "expected 'name = expr'");
    }
    if (!defs.insert(toks[0]).second) {
      parseError(s.line, "redefinition of '" + toks[0] + "' in the same block");
    }
  }
  Dfg g("leaf");
  const auto resolve = [&g, &defs](const std::string& name, int ln) -> NodeId {
    if (!isIdentifier(name)) {
      parseError(ln, "expected identifier, got '" + name + "'");
    }
    NodeId id = g.findByName(name);
    if (id != kNoNode && g.isOp(id)) return id;  // locally defined above
    const std::string port =
        defs.count(name) != 0 ? name + kExternalPortSuffix : name;
    NodeId pid = g.findByName(port);
    return pid != kNoNode ? pid : g.addInput(port);
  };
  for (const BlockStmt& s : stmts) {
    const std::vector<std::string> toks = tokenize(s.text, s.line);
    if (!toks.empty() && toks[0] == "order") {
      parseOrder(g, toks, s.line);
      continue;
    }
    parseAssignment(g, toks, s.line, s.text, resolve);
  }
  for (NodeId v : g.opIds()) g.markOutput(v);
  g.validate();
  return g;
}

class ProgramParser {
 public:
  ProgramParser(std::vector<BlockStmt> stmts, const std::string& name)
      : stmts_(std::move(stmts)) {
    program_.name = name;
  }

  RegionProgram run() {
    program_.root = parseBlock(/*topLevel=*/true, 0);
    TAUHLS_ASSERT(pos_ == stmts_.size(), "program parser left statements");
    nameLeaves(program_);
    return std::move(program_);
  }

 private:
  bool done() const { return pos_ >= stmts_.size(); }
  const BlockStmt& cur() const { return stmts_[pos_]; }

  Region parseBlock(bool topLevel, int openLine) {
    std::vector<Region> children;
    std::vector<BlockStmt> leafBuf;
    const auto flushLeaf = [&] {
      if (!leafBuf.empty()) {
        children.push_back(Region::leaf(buildLeaf(leafBuf)));
        leafBuf.clear();
      }
    };
    while (!done()) {
      const BlockStmt& s = cur();
      switch (s.kind) {
        case StmtKind::Close:
        case StmtKind::Else:
          if (topLevel) parseError(s.line, "unmatched '}'");
          flushLeaf();
          return Region::seq(std::move(children));
        case StmtKind::LoopOpen: {
          flushLeaf();
          const int trip = s.tripCount;
          const int line = s.line;
          ++pos_;
          Region body = parseBlock(false, line);
          expectClose(StmtKind::Close, line);
          children.push_back(Region::loop(trip, std::move(body)));
          break;
        }
        case StmtKind::IfOpen: {
          flushLeaf();
          const std::string sel = s.selector;
          const int line = s.line;
          ++pos_;
          Region thenBody = parseBlock(false, line);
          expectClose(StmtKind::Else, line);
          Region elseBody = parseBlock(false, line);
          expectClose(StmtKind::Close, line);
          children.push_back(
              Region::cond(sel, std::move(thenBody), std::move(elseBody)));
          break;
        }
        case StmtKind::Plain: {
          const std::vector<std::string> toks = tokenize(s.text, s.line);
          if (!toks.empty() && (toks[0] == "in" || toks[0] == "out")) {
            if (!topLevel) {
              parseError(s.line, "'" + toks[0] +
                                     "' declarations belong at the top level");
            }
            collectNames(toks, s.line,
                         toks[0] == "in" ? program_.inputs : program_.outputs);
          } else {
            leafBuf.push_back(s);
          }
          ++pos_;
          break;
        }
      }
    }
    if (!topLevel) {
      parseError(openLine, "block opened here is never closed with '}'");
    }
    flushLeaf();
    return Region::seq(std::move(children));
  }

  void expectClose(StmtKind kind, int openLine) {
    const char* what = kind == StmtKind::Else ? "'} else {'" : "'}'";
    if (done()) {
      parseError(openLine, std::string("block opened here is never closed "
                                       "with ") +
                               what);
    }
    if (cur().kind != kind) {
      parseError(cur().line, std::string("expected ") + what);
    }
    ++pos_;
  }

  void collectNames(const std::vector<std::string>& toks, int ln,
                    std::vector<std::string>& into) {
    for (std::size_t i = 1; i < toks.size(); ++i) {
      if (toks[i] == ",") continue;
      if (!isIdentifier(toks[i])) {
        parseError(ln, "expected identifier, got '" + toks[i] + "'");
      }
      for (const std::string& existing : into) {
        if (existing == toks[i]) {
          parseError(ln, "duplicate declaration of '" + toks[i] + "'");
        }
      }
      into.push_back(toks[i]);
    }
  }

  std::vector<BlockStmt> stmts_;
  std::size_t pos_ = 0;
  RegionProgram program_;
};

void printRegion(std::ostringstream& os, const Region& r, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  switch (r.kind) {
    case RegionKind::Leaf: {
      const Dfg& g = r.body;
      const auto display = [&g](NodeId id) {
        const Node& n = g.node(id);
        return n.kind == OpKind::Input ? portBaseName(n.name) : n.name;
      };
      for (NodeId i = 0; i < g.numNodes(); ++i) {
        const Node& n = g.node(i);
        if (n.kind == OpKind::Input) continue;
        if (n.kind == OpKind::Neg) {
          os << pad << n.name << " = - " << display(n.operands[0]) << "\n";
        } else {
          os << pad << n.name << " = " << display(n.operands[0]) << " "
             << opKindSymbol(n.kind) << " " << display(n.operands[1]) << "\n";
        }
      }
      for (const ScheduleArc& e : g.stateEdges()) {
        os << pad << "order " << g.node(e.from).name << ", "
           << g.node(e.to).name << "\n";
      }
      break;
    }
    case RegionKind::Seq:
      for (const Region& c : r.children) printRegion(os, c, depth);
      break;
    case RegionKind::Loop:
      os << pad << "loop " << r.tripCount << " {\n";
      if (!r.children.empty()) printRegion(os, r.children.front(), depth + 1);
      os << pad << "}\n";
      break;
    case RegionKind::Cond:
      os << pad << "if " << r.condName << " {\n";
      if (r.children.size() == 2) {
        printRegion(os, r.children[0], depth + 1);
        os << pad << "} else {\n";
        printRegion(os, r.children[1], depth + 1);
      }
      os << pad << "}\n";
      break;
  }
}

}  // namespace

RegionProgram parseProgram(const std::string& text, const std::string& name) {
  std::vector<BlockStmt> stmts;
  bool hierarchical = false;
  for (const auto& [ln, stmt] : splitStatements(text)) {
    stmts.push_back(classify(ln, stmt));
    hierarchical |= stmts.back().kind != StmtKind::Plain;
  }
  if (!hierarchical) {
    // Block-free input stays on the flat front end bit-for-bit.
    RegionProgram p;
    p.name = name;
    p.root = Region::leaf(parseDfg(text, name));
    const Dfg& body = p.root.body;
    for (NodeId i : body.inputIds()) p.inputs.push_back(body.node(i).name);
    for (NodeId o : body.outputs()) p.outputs.push_back(body.node(o).name);
    return p;
  }
  return ProgramParser(std::move(stmts), name).run();
}

std::string printProgram(const RegionProgram& program) {
  if (program.isFlat()) return printDfg(program.root.body);
  std::ostringstream os;
  if (!program.inputs.empty()) {
    os << "in " << join(program.inputs, ", ") << "\n";
  }
  printRegion(os, program.root, 0);
  if (!program.outputs.empty()) {
    os << "out " << join(program.outputs, ", ") << "\n";
  }
  return os.str();
}

}  // namespace tauhls::dfg
