#include "dfg/region.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::dfg {

std::string portBaseName(const std::string& inputName) {
  const std::string suffix = kExternalPortSuffix;
  if (inputName.size() > suffix.size() &&
      inputName.compare(inputName.size() - suffix.size(), suffix.size(),
                        suffix) == 0) {
    return inputName.substr(0, inputName.size() - suffix.size());
  }
  return inputName;
}

namespace {

void collectLeavesInto(const Region& r, const std::string& path,
                       std::vector<LeafRef>& out) {
  switch (r.kind) {
    case RegionKind::Leaf:
      out.push_back({path, &r});
      break;
    case RegionKind::Seq:
      for (std::size_t i = 0; i < r.children.size(); ++i) {
        collectLeavesInto(r.children[i],
                          childRegionPath(path, "s" + std::to_string(i)), out);
      }
      break;
    case RegionKind::Loop:
      if (!r.children.empty()) {
        collectLeavesInto(r.children.front(), childRegionPath(path, "l"), out);
      }
      break;
    case RegionKind::Cond:
      if (r.children.size() == 2) {
        collectLeavesInto(r.children[0], childRegionPath(path, "t"), out);
        collectLeavesInto(r.children[1], childRegionPath(path, "e"), out);
      }
      break;
  }
}

class ProgramChecker {
 public:
  explicit ProgramChecker(const RegionProgram& program) : program_(program) {}

  std::vector<RegionIssue> run() {
    std::set<std::string> defined(program_.inputs.begin(),
                                  program_.inputs.end());
    for (const std::string& in : program_.inputs) {
      if (!isIdentifier(in)) {
        add("DFG009", "", "program input '" + in + "' is not an identifier");
      }
    }
    leafCount_ = 0;
    walk(program_.root, "", defined);
    if (leafCount_ == 0) {
      add("DFG009", "", "program contains no leaf region");
    }
    for (const std::string& out : program_.outputs) {
      if (defined.find(out) == defined.end()) {
        add("DFG009", "",
            "program output '" + out + "' is not defined on every path");
      }
    }
    return std::move(issues_);
  }

 private:
  void add(const char* code, const std::string& where,
           const std::string& message) {
    issues_.push_back({code, where, message});
  }

  /// Check `r` with the names defined on entry; `defined` holds the names
  /// guaranteed defined after the region on exit (Cond keeps only names both
  /// branches define).
  void walk(const Region& r, const std::string& path,
            std::set<std::string>& defined) {
    switch (r.kind) {
      case RegionKind::Leaf:
        checkLeaf(r, path, defined);
        break;
      case RegionKind::Seq:
        if (r.children.empty()) {
          add("DFG009", path, "Seq region has no children");
        }
        for (std::size_t i = 0; i < r.children.size(); ++i) {
          walk(r.children[i], childRegionPath(path, "s" + std::to_string(i)),
               defined);
        }
        break;
      case RegionKind::Loop: {
        if (r.tripCount < 1) {
          add("DFG010", path,
              "loop trip count " + std::to_string(r.tripCount) +
                  " (must be >= 1)");
        }
        if (r.children.size() != 1) {
          add("DFG009", path,
              "Loop region has " + std::to_string(r.children.size()) +
                  " children (expected exactly 1 body)");
          break;
        }
        // Iteration 1 has no previous iteration, so every free read of the
        // body must be defined before the loop; names the body defines are
        // then loop-carried.
        walk(r.children.front(), childRegionPath(path, "l"), defined);
        break;
      }
      case RegionKind::Cond: {
        if (r.condName.empty() || !isIdentifier(r.condName)) {
          add("DFG009", path,
              "conditional selector '" + r.condName +
                  "' is not an identifier");
        } else if (defined.find(r.condName) == defined.end()) {
          add("DFG009", path,
              "conditional selector '" + r.condName +
                  "' is not defined before the conditional");
        }
        if (r.children.size() != 2) {
          add("DFG009", path,
              "Cond region has " + std::to_string(r.children.size()) +
                  " children (expected then and else)");
          break;
        }
        std::set<std::string> thenDefined = defined;
        std::set<std::string> elseDefined = defined;
        walk(r.children[0], childRegionPath(path, "t"), thenDefined);
        walk(r.children[1], childRegionPath(path, "e"), elseDefined);
        // Only names both branches define are defined after the conditional.
        defined.clear();
        std::set_intersection(thenDefined.begin(), thenDefined.end(),
                              elseDefined.begin(), elseDefined.end(),
                              std::inserter(defined, defined.begin()));
        break;
      }
    }
  }

  void checkLeaf(const Region& r, const std::string& path,
                 std::set<std::string>& defined) {
    ++leafCount_;
    if (!r.children.empty()) {
      add("DFG009", path, "Leaf region has children");
      return;
    }
    try {
      r.body.validate();
    } catch (const tauhls::Error& e) {
      add("DFG009", path, std::string("leaf body invalid: ") + e.what());
      return;
    }
    if (r.body.numOps() == 0) {
      add("DFG009", path, "leaf body has no operations");
      return;
    }
    for (NodeId in : r.body.inputIds()) {
      const std::string base = portBaseName(r.body.node(in).name);
      if (defined.find(base) == defined.end()) {
        add("DFG009", path,
            "leaf reads '" + base + "' which no earlier region defines");
      }
    }
    for (NodeId op : r.body.opIds()) {
      defined.insert(r.body.node(op).name);
    }
  }

  const RegionProgram& program_;
  std::vector<RegionIssue> issues_;
  int leafCount_ = 0;
};

void traceRegion(const Region& r, const std::string& path,
                 const BranchChoices& choices, std::vector<std::string>& out) {
  switch (r.kind) {
    case RegionKind::Leaf:
      out.push_back(path);
      break;
    case RegionKind::Seq:
      for (std::size_t i = 0; i < r.children.size(); ++i) {
        traceRegion(r.children[i],
                    childRegionPath(path, "s" + std::to_string(i)), choices,
                    out);
      }
      break;
    case RegionKind::Loop:
      for (int k = 0; k < r.tripCount; ++k) {
        traceRegion(r.children.front(), childRegionPath(path, "l"), choices,
                    out);
      }
      break;
    case RegionKind::Cond: {
      const auto it = choices.find(path);
      TAUHLS_CHECK(it != choices.end(),
                   "no branch choice for conditional at region path '" + path +
                       "'");
      if (it->second) {
        traceRegion(r.children[0], childRegionPath(path, "t"), choices, out);
      } else {
        traceRegion(r.children[1], childRegionPath(path, "e"), choices, out);
      }
      break;
    }
  }
}

/// Operations with no operation predecessor (through data edges, state edges
/// or schedule arcs): the ops a fresh activation can start immediately.
std::vector<NodeId> sourceOps(const Dfg& g) {
  std::vector<NodeId> out;
  for (NodeId v : g.opIds()) {
    bool hasOpPred = false;
    for (NodeId p : g.combinedPredecessors(v)) hasOpPred |= g.isOp(p);
    if (!hasOpPred) out.push_back(v);
  }
  return out;
}

/// Operations with no successor at all: the ops whose completion ends the
/// activation (every op reaches one of these along combined edges).
std::vector<NodeId> terminalOps(const Dfg& g) {
  std::vector<NodeId> out;
  for (NodeId v : g.opIds()) {
    if (g.combinedSuccessors(v).empty()) out.push_back(v);
  }
  return out;
}

}  // namespace

const char* regionKindName(RegionKind kind) {
  switch (kind) {
    case RegionKind::Leaf: return "Leaf";
    case RegionKind::Seq: return "Seq";
    case RegionKind::Loop: return "Loop";
    case RegionKind::Cond: return "Cond";
  }
  return "?";
}

Region Region::leaf(Dfg body) {
  Region r;
  r.kind = RegionKind::Leaf;
  r.body = std::move(body);
  return r;
}

Region Region::seq(std::vector<Region> children) {
  Region r;
  r.kind = RegionKind::Seq;
  r.children = std::move(children);
  return r;
}

Region Region::loop(int tripCount, Region child) {
  Region r;
  r.kind = RegionKind::Loop;
  r.tripCount = tripCount;
  r.children.push_back(std::move(child));
  return r;
}

Region Region::cond(std::string condName, Region thenChild, Region elseChild) {
  Region r;
  r.kind = RegionKind::Cond;
  r.condName = std::move(condName);
  r.children.push_back(std::move(thenChild));
  r.children.push_back(std::move(elseChild));
  return r;
}

std::string childRegionPath(const std::string& base,
                            const std::string& segment) {
  return base.empty() ? segment : base + "_" + segment;
}

std::vector<LeafRef> collectLeaves(const RegionProgram& program) {
  std::vector<LeafRef> out;
  collectLeavesInto(program.root, "", out);
  return out;
}

void nameLeaves(RegionProgram& program) {
  // Walk mutably along the same paths collectLeaves produces.
  struct Namer {
    const std::string& programName;
    void walk(Region& r, const std::string& path) {
      switch (r.kind) {
        case RegionKind::Leaf:
          r.body.setName(path.empty() ? programName : programName + "_" + path);
          break;
        case RegionKind::Seq:
          for (std::size_t i = 0; i < r.children.size(); ++i) {
            walk(r.children[i],
                 childRegionPath(path, "s" + std::to_string(i)));
          }
          break;
        case RegionKind::Loop:
          if (!r.children.empty()) {
            walk(r.children.front(), childRegionPath(path, "l"));
          }
          break;
        case RegionKind::Cond:
          if (r.children.size() == 2) {
            walk(r.children[0], childRegionPath(path, "t"));
            walk(r.children[1], childRegionPath(path, "e"));
          }
          break;
      }
    }
  };
  Namer{program.name}.walk(program.root, "");
}

namespace {

void collectCondPaths(const Region& r, const std::string& path,
                      std::vector<std::string>& out) {
  switch (r.kind) {
    case RegionKind::Leaf:
      break;
    case RegionKind::Seq:
      for (std::size_t i = 0; i < r.children.size(); ++i) {
        collectCondPaths(r.children[i],
                         childRegionPath(path, "s" + std::to_string(i)), out);
      }
      break;
    case RegionKind::Loop:
      if (!r.children.empty()) {
        collectCondPaths(r.children.front(), childRegionPath(path, "l"), out);
      }
      break;
    case RegionKind::Cond:
      out.push_back(path);
      if (r.children.size() == 2) {
        collectCondPaths(r.children[0], childRegionPath(path, "t"), out);
        collectCondPaths(r.children[1], childRegionPath(path, "e"), out);
      }
      break;
  }
}

}  // namespace

std::vector<std::string> condRegionPaths(const RegionProgram& program) {
  std::vector<std::string> out;
  collectCondPaths(program.root, "", out);
  return out;
}

BranchChoices completeBranchChoices(const RegionProgram& program,
                                    const BranchChoices& partial) {
  BranchChoices out = partial;
  for (const std::string& path : condRegionPaths(program)) {
    out.emplace(path, true);
  }
  return out;
}

std::vector<RegionIssue> checkRegionProgram(const RegionProgram& program) {
  return ProgramChecker(program).run();
}

void validateRegionProgram(const RegionProgram& program) {
  const std::vector<RegionIssue> issues = checkRegionProgram(program);
  if (!issues.empty()) {
    const RegionIssue& first = issues.front();
    TAUHLS_FAIL("invalid region program '" + program.name + "' [" +
                first.code +
                (first.where.empty() ? "" : " at " + first.where) + "]: " +
                first.message);
  }
}

std::vector<std::string> activationTrace(const RegionProgram& program,
                                         const BranchChoices& choices) {
  std::vector<std::string> out;
  traceRegion(program.root, "", choices, out);
  return out;
}

int composedCriticalPathLength(const RegionProgram& program,
                               const BranchChoices& choices) {
  std::map<std::string, const Dfg*> bodies;
  for (const LeafRef& leaf : collectLeaves(program)) {
    bodies[leaf.path] = &leaf.region->body;
  }
  int total = 0;
  for (const std::string& path : activationTrace(program, choices)) {
    const Dfg& body = *bodies.at(path);
    total += criticalPathLength(body, unitDurations(body));
  }
  return total;
}

Dfg flattenProgram(const RegionProgram& program, const BranchChoices& choices) {
  validateRegionProgram(program);
  std::map<std::string, const Dfg*> bodies;
  for (const LeafRef& leaf : collectLeaves(program)) {
    bodies[leaf.path] = &leaf.region->body;
  }
  Dfg flat(program.name + "_flat");
  std::vector<NodeId> prevTerminals;
  const std::vector<std::string> trace = activationTrace(program, choices);
  for (std::size_t k = 0; k < trace.size(); ++k) {
    const Dfg& leaf = *bodies.at(trace[k]);
    const std::string prefix = "a" + std::to_string(k) + "_";
    // Node ids are insertion-ordered, so copying in id order keeps every
    // operand ahead of its consumer.
    std::vector<NodeId> map(leaf.numNodes(), kNoNode);
    for (NodeId id = 0; id < leaf.numNodes(); ++id) {
      const Node& n = leaf.node(id);
      if (n.kind == OpKind::Input) {
        map[id] = flat.addInput(prefix + n.name);
      } else {
        std::vector<NodeId> operands;
        operands.reserve(n.operands.size());
        for (NodeId o : n.operands) operands.push_back(map[o]);
        map[id] = flat.addOp(n.kind, std::span<const NodeId>(operands),
                             prefix + n.name);
      }
    }
    for (const ScheduleArc& a : leaf.scheduleArcs()) {
      flat.addScheduleArc(map[a.from], map[a.to]);
    }
    for (const ScheduleArc& a : leaf.stateEdges()) {
      flat.addStateEdge(map[a.from], map[a.to]);
    }
    for (NodeId o : leaf.outputs()) flat.markOutput(map[o]);
    // Barrier: activation k starts only once activation k-1 is fully done,
    // which is exactly the sequencer's done -> start handshake.
    if (!prevTerminals.empty()) {
      for (NodeId s : sourceOps(leaf)) {
        for (NodeId t : prevTerminals) flat.addStateEdge(t, map[s]);
      }
    }
    std::vector<NodeId> terminals;
    for (NodeId t : terminalOps(leaf)) terminals.push_back(map[t]);
    prevTerminals = std::move(terminals);
  }
  flat.validate();
  return flat;
}

}  // namespace tauhls::dfg
