#include "dfg/benchmarks.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "dfg/textio.hpp"

namespace tauhls::dfg {

Dfg fir(int taps) {
  TAUHLS_CHECK(taps >= 1, "fir needs at least one tap");
  Dfg g(numbered("fir", taps));
  std::vector<NodeId> prods;
  for (int i = 0; i < taps; ++i) {
    NodeId x = g.addInput(numbered("x", i));
    NodeId c = g.addInput(numbered("c", i));
    prods.push_back(g.addOp(OpKind::Mul, {x, c}, numbered("m", i)));
  }
  NodeId acc = prods[0];
  for (int i = 1; i < taps; ++i) {
    acc = g.addOp(OpKind::Add, {acc, prods[i]}, numbered("a", i - 1));
  }
  g.markOutput(acc);
  g.validate();
  return g;
}

Dfg iir(int order) {
  TAUHLS_CHECK(order >= 1, "iir needs order >= 1");
  Dfg g(numbered("iir", order));
  std::vector<NodeId> prods;
  // Feedforward taps b0..b_order on current/delayed inputs.
  for (int i = 0; i <= order; ++i) {
    NodeId x = g.addInput(numbered("x", i));
    NodeId b = g.addInput(numbered("b", i));
    prods.push_back(g.addOp(OpKind::Mul, {x, b}, numbered("mf", i)));
  }
  // Feedback taps a1..a_order on delayed outputs (signs folded into coeffs).
  for (int i = 1; i <= order; ++i) {
    NodeId y = g.addInput(numbered("y", i));
    NodeId a = g.addInput(numbered("a", i));
    prods.push_back(g.addOp(OpKind::Mul, {y, a}, numbered("mb", i)));
  }
  NodeId acc = prods[0];
  for (std::size_t i = 1; i < prods.size(); ++i) {
    acc = g.addOp(OpKind::Add, {acc, prods[i]}, numbered("s", i - 1));
  }
  g.markOutput(acc);
  g.validate();
  return g;
}

Dfg diffeq() {
  // The HAL benchmark (Paulin & Knight): one iteration of the Euler method for
  //   y'' + 3xy' + 3y = 0
  //   x1 = x + dx;  u1 = u - 3*x*u*dx - 3*y*dx;  y1 = y + u*dx;  c = x1 < a
  Dfg g("diffeq");
  NodeId x = g.addInput("x");
  NodeId y = g.addInput("y");
  NodeId u = g.addInput("u");
  NodeId dx = g.addInput("dx");
  NodeId a = g.addInput("a");
  NodeId three = g.addInput("three");

  NodeId m1 = g.addOp(OpKind::Mul, {three, x}, "m1");   // 3*x
  NodeId m2 = g.addOp(OpKind::Mul, {u, dx}, "m2");      // u*dx
  NodeId m3 = g.addOp(OpKind::Mul, {m1, m2}, "m3");     // 3*x*u*dx
  NodeId m4 = g.addOp(OpKind::Mul, {three, y}, "m4");   // 3*y
  NodeId m5 = g.addOp(OpKind::Mul, {m4, dx}, "m5");     // 3*y*dx
  NodeId m6 = g.addOp(OpKind::Mul, {u, dx}, "m6");      // u*dx (no CSE in HAL)

  NodeId s1 = g.addOp(OpKind::Sub, {u, m3}, "s1");      // u - 3*x*u*dx
  NodeId u1 = g.addOp(OpKind::Sub, {s1, m5}, "u1");     // ... - 3*y*dx
  NodeId x1 = g.addOp(OpKind::Add, {x, dx}, "x1");
  NodeId y1 = g.addOp(OpKind::Add, {y, m6}, "y1");
  NodeId c = g.addOp(OpKind::Compare, {x1, a}, "c");

  g.markOutput(u1);
  g.markOutput(y1);
  g.markOutput(c);
  g.validate();
  return g;
}

Dfg arLattice() {
  // Four lattice stages; stage i maps (p, q) to
  //   p' = p*k4i   + q*k4i+1
  //   q' = p*k4i+2 + q*k4i+3
  Dfg g("ar_lattice");
  NodeId p = g.addInput("p0");
  NodeId q = g.addInput("q0");
  for (int s = 0; s < 4; ++s) {
    const std::string ss = std::to_string(s);
    NodeId k0 = g.addInput("k" + ss + "_0");
    NodeId k1 = g.addInput("k" + ss + "_1");
    NodeId k2 = g.addInput("k" + ss + "_2");
    NodeId k3 = g.addInput("k" + ss + "_3");
    NodeId m0 = g.addOp(OpKind::Mul, {p, k0}, "m" + ss + "_0");
    NodeId m1 = g.addOp(OpKind::Mul, {q, k1}, "m" + ss + "_1");
    NodeId m2 = g.addOp(OpKind::Mul, {p, k2}, "m" + ss + "_2");
    NodeId m3 = g.addOp(OpKind::Mul, {q, k3}, "m" + ss + "_3");
    p = g.addOp(OpKind::Add, {m0, m1}, "ap" + ss);
    q = g.addOp(OpKind::Add, {m2, m3}, "aq" + ss);
  }
  g.markOutput(p);
  g.markOutput(q);
  g.validate();
  return g;
}

Dfg ewf() {
  // Elliptic-wave-filter-like benchmark: two interleaved add-dominated waves
  // with 8 multiplications, 26 additions (34 ops), mirroring the op mix and
  // depth of the classic EWF used in HLS literature.
  Dfg g("ewf");
  std::vector<NodeId> s;
  for (int i = 0; i < 8; ++i) s.push_back(g.addInput(numbered("s", i)));
  NodeId in = g.addInput("x");
  std::vector<NodeId> k;
  for (int i = 0; i < 8; ++i) k.push_back(g.addInput(numbered("k", i)));

  int addIdx = 0;
  auto add = [&](NodeId a, NodeId b) {
    return g.addOp(OpKind::Add, {a, b}, numbered("t", addIdx++));
  };

  // Front ladder: fold the input with four states.
  NodeId a0 = add(in, s[0]);
  NodeId a1 = add(a0, s[1]);
  NodeId a2 = add(a1, s[2]);
  NodeId a3 = add(a2, s[3]);
  // Four scaled branches.
  NodeId m0 = g.addOp(OpKind::Mul, {a1, k[0]}, "m0");
  NodeId m1 = g.addOp(OpKind::Mul, {a2, k[1]}, "m1");
  NodeId m2 = g.addOp(OpKind::Mul, {a3, k[2]}, "m2");
  NodeId m3 = g.addOp(OpKind::Mul, {a3, k[3]}, "m3");
  // Middle wave.
  NodeId b0 = add(m0, s[4]);
  NodeId b1 = add(m1, s[5]);
  NodeId b2 = add(m2, b0);
  NodeId b3 = add(m3, b1);
  NodeId b4 = add(b2, b3);
  NodeId b5 = add(b4, s[6]);
  NodeId b6 = add(b4, s[7]);
  // Back scaled branches.
  NodeId m4 = g.addOp(OpKind::Mul, {b5, k[4]}, "m4");
  NodeId m5 = g.addOp(OpKind::Mul, {b6, k[5]}, "m5");
  NodeId m6 = g.addOp(OpKind::Mul, {b2, k[6]}, "m6");
  NodeId m7 = g.addOp(OpKind::Mul, {b3, k[7]}, "m7");
  // Back ladder producing next states and the output.
  NodeId c0 = add(m4, b0);
  NodeId c1 = add(m5, b1);
  NodeId c2 = add(m6, c0);
  NodeId c3 = add(m7, c1);
  NodeId c4 = add(c2, c3);
  NodeId c5 = add(c4, a0);
  NodeId c6 = add(c5, b4);
  NodeId c7 = add(c6, c2);
  NodeId c8 = add(c7, c3);
  NodeId c9 = add(c8, c4);
  NodeId c10 = add(c9, c5);
  NodeId c11 = add(c10, c6);
  NodeId out = add(c11, c9);
  // Next-state updates.
  NodeId ns0 = add(c10, b5);
  NodeId ns1 = add(c11, b6);
  g.markOutput(out);
  g.markOutput(ns0);
  g.markOutput(ns1);
  g.validate();
  TAUHLS_ASSERT(g.opsOfClass(ResourceClass::Multiplier).size() == 8,
                "ewf must have 8 multiplications");
  TAUHLS_ASSERT(g.opsOfClass(ResourceClass::Adder).size() == 26,
                "ewf must have 26 additions");
  return g;
}

Dfg fft(int stages) {
  TAUHLS_CHECK(stages >= 1 && stages <= 5, "fft supports 1..5 stages");
  const int n = 1 << stages;
  Dfg g(numbered("fft", n));
  std::vector<NodeId> line;
  for (int i = 0; i < n; ++i) line.push_back(g.addInput(numbered("x", i)));

  int twiddle = 0;
  for (int stage = 0; stage < stages; ++stage) {
    const int span = 1 << stage;
    std::vector<NodeId> next = line;
    for (int group = 0; group < n; group += 2 * span) {
      for (int k = 0; k < span; ++k) {
        const int i = group + k;
        const int j = i + span;
        std::string tag = numbered("s", stage);
        tag += "_";
        tag += std::to_string(i);
        NodeId w = g.addInput(numbered("w", twiddle++));
        NodeId m = g.addOp(OpKind::Mul, {line[static_cast<std::size_t>(j)], w},
                           "m" + tag);
        next[static_cast<std::size_t>(i)] = g.addOp(
            OpKind::Add, {line[static_cast<std::size_t>(i)], m}, "a" + tag);
        next[static_cast<std::size_t>(j)] = g.addOp(
            OpKind::Sub, {line[static_cast<std::size_t>(i)], m}, "b" + tag);
      }
    }
    line = std::move(next);
  }
  for (NodeId v : line) g.markOutput(v);
  g.validate();
  return g;
}

Dfg dct8() {
  // Loeffler-style 8-point DCT structure (real-valued; rotation pairs
  // modelled as two multiplications and two additions each).
  Dfg g("dct8");
  std::vector<NodeId> x;
  for (int i = 0; i < 8; ++i) x.push_back(g.addInput(numbered("x", i)));
  std::vector<NodeId> c;
  for (int i = 0; i < 11; ++i) c.push_back(g.addInput(numbered("c", i)));

  // Stage 1: butterflies.
  NodeId s10 = g.addOp(OpKind::Add, {x[0], x[7]}, "s1_0");
  NodeId s11 = g.addOp(OpKind::Add, {x[1], x[6]}, "s1_1");
  NodeId s12 = g.addOp(OpKind::Add, {x[2], x[5]}, "s1_2");
  NodeId s13 = g.addOp(OpKind::Add, {x[3], x[4]}, "s1_3");
  NodeId d10 = g.addOp(OpKind::Sub, {x[0], x[7]}, "d1_0");
  NodeId d11 = g.addOp(OpKind::Sub, {x[1], x[6]}, "d1_1");
  NodeId d12 = g.addOp(OpKind::Sub, {x[2], x[5]}, "d1_2");
  NodeId d13 = g.addOp(OpKind::Sub, {x[3], x[4]}, "d1_3");

  // Even part, stage 2.
  NodeId s20 = g.addOp(OpKind::Add, {s10, s13}, "s2_0");
  NodeId s21 = g.addOp(OpKind::Add, {s11, s12}, "s2_1");
  NodeId d20 = g.addOp(OpKind::Sub, {s10, s13}, "d2_0");
  NodeId d21 = g.addOp(OpKind::Sub, {s11, s12}, "d2_1");
  // y0/y4.
  NodeId y0 = g.addOp(OpKind::Add, {s20, s21}, "y0");
  NodeId y4 = g.addOp(OpKind::Sub, {s20, s21}, "y4");
  // y2/y6 rotation: two muls + two combining ops per output.
  NodeId m20 = g.addOp(OpKind::Mul, {d20, c[0]}, "m2_0");
  NodeId m21 = g.addOp(OpKind::Mul, {d21, c[1]}, "m2_1");
  NodeId m22 = g.addOp(OpKind::Mul, {d20, c[2]}, "m2_2");
  NodeId m23 = g.addOp(OpKind::Mul, {d21, c[3]}, "m2_3");
  NodeId y2 = g.addOp(OpKind::Add, {m20, m21}, "y2");
  NodeId y6 = g.addOp(OpKind::Sub, {m22, m23}, "y6");

  // Odd part: two rotations, then butterflies.
  NodeId m30 = g.addOp(OpKind::Mul, {d11, c[4]}, "m3_0");
  NodeId m31 = g.addOp(OpKind::Mul, {d12, c[5]}, "m3_1");
  NodeId r0 = g.addOp(OpKind::Add, {m30, m31}, "r0");
  NodeId r1 = g.addOp(OpKind::Sub, {m30, m31}, "r1");
  NodeId s30 = g.addOp(OpKind::Add, {d10, r0}, "s3_0");
  NodeId s31 = g.addOp(OpKind::Sub, {d10, r0}, "s3_1");
  NodeId s32 = g.addOp(OpKind::Add, {d13, r1}, "s3_2");
  NodeId s33 = g.addOp(OpKind::Sub, {d13, r1}, "s3_3");
  NodeId m40 = g.addOp(OpKind::Mul, {s30, c[6]}, "m4_0");
  NodeId m41 = g.addOp(OpKind::Mul, {s32, c[7]}, "m4_1");
  NodeId m42 = g.addOp(OpKind::Mul, {s31, c[8]}, "m4_2");
  NodeId m43 = g.addOp(OpKind::Mul, {s33, c[9]}, "m4_3");
  NodeId m44 = g.addOp(OpKind::Mul, {d12, c[10]}, "m4_4");
  NodeId y1 = g.addOp(OpKind::Add, {m40, m41}, "y1");
  NodeId y7 = g.addOp(OpKind::Sub, {m40, m41}, "y7");
  NodeId y3 = g.addOp(OpKind::Add, {m42, m44}, "y3");
  NodeId y5 = g.addOp(OpKind::Sub, {m43, m44}, "y5");

  for (NodeId y : {y0, y1, y2, y3, y4, y5, y6, y7}) g.markOutput(y);
  g.validate();
  TAUHLS_ASSERT(g.opsOfClass(ResourceClass::Multiplier).size() == 11,
                "dct8 must have 11 multiplications");
  return g;
}

Dfg paperFig2() {
  // Fig. 2(a): steps T0{O0,O3 (x)}, T1{O1 (+)}, T2{O2,O4 (x)}, T3{O5 (+)}.
  Dfg g("paper_fig2");
  NodeId a = g.addInput("a");
  NodeId b = g.addInput("b");
  NodeId c = g.addInput("c");
  NodeId d = g.addInput("d");
  NodeId e = g.addInput("e");
  NodeId f = g.addInput("f");

  NodeId o0 = g.addOp(OpKind::Mul, {a, b}, "O0");
  NodeId o3 = g.addOp(OpKind::Mul, {c, d}, "O3");
  NodeId o1 = g.addOp(OpKind::Add, {o0, e}, "O1");
  NodeId o2 = g.addOp(OpKind::Mul, {o1, f}, "O2");
  NodeId o4 = g.addOp(OpKind::Mul, {o3, o1}, "O4");
  NodeId o5 = g.addOp(OpKind::Add, {o2, o4}, "O5");
  g.markOutput(o5);
  g.validate();
  return g;
}

Dfg paperFig3() {
  // Fig. 3(a): mult dependency cliques (O0-O1), (O4), (O6-O8); adds
  // O3 -> O4, O6 -> O7 -> O8, combiners O2 and O5.
  Dfg g("paper_fig3");
  std::vector<NodeId> in;
  for (char ch = 'a'; ch <= 'i'; ++ch) in.push_back(g.addInput(std::string(1, ch)));

  NodeId o0 = g.addOp(OpKind::Mul, {in[0], in[1]}, "O0");
  NodeId o6 = g.addOp(OpKind::Mul, {in[2], in[3]}, "O6");
  NodeId o3 = g.addOp(OpKind::Add, {in[4], in[5]}, "O3");
  NodeId o1 = g.addOp(OpKind::Mul, {o0, o3}, "O1");  // Fig. 6: O1 waits for C_PO(3)
  NodeId o4 = g.addOp(OpKind::Mul, {o3, in[6]}, "O4");
  NodeId o7 = g.addOp(OpKind::Add, {o6, in[7]}, "O7");
  NodeId o8 = g.addOp(OpKind::Mul, {o7, in[8]}, "O8");
  NodeId o2 = g.addOp(OpKind::Add, {o1, o4}, "O2");
  NodeId o5 = g.addOp(OpKind::Add, {o2, o8}, "O5");
  g.markOutput(o5);
  g.validate();
  return g;
}

const char* firIirLoopText() {
  return R"(# Iterated FIR accumulation feeding an IIR corrector, with a conditional
# output-scaling stage -- the hierarchical benchmark of the regions flow.
in x0, x1, c0, c1, sel, b0, b1, a1, g0
acc = x0 * c0
loop 4 {
  p0 = x0 * c1
  p1 = x1 * c0
  p2 = acc * c0
  t0 = p0 + p1
  acc = t0 + p2
}
f0 = acc * b0
f1 = x1 * b1
f2 = f0 + f1
r0 = f2 * a1
r1 = r0 + f2
if sel {
  y = r1 * g0
} else {
  y = r1 + g0
}
out y
)";
}

RegionProgram firIirLoop() {
  RegionProgram prog = parseProgram(firIirLoopText(), "fir_iir_loop");
  validateRegionProgram(prog);
  return prog;
}

Allocation firIirLoopAllocation() {
  return {{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}};
}

std::vector<NamedBenchmark> paperTable2Suite() {
  using RC = ResourceClass;
  std::vector<NamedBenchmark> out;
  out.push_back({"3rd FIR", fir(3), {{RC::Multiplier, 2}, {RC::Adder, 1}}});
  out.push_back({"5th FIR", fir(5), {{RC::Multiplier, 2}, {RC::Adder, 1}}});
  out.push_back({"2nd IIR", iir(2), {{RC::Multiplier, 2}, {RC::Adder, 1}}});
  out.push_back({"3rd IIR", iir(3), {{RC::Multiplier, 3}, {RC::Adder, 2}}});
  out.push_back({"Diff.", diffeq(),
                 {{RC::Multiplier, 2}, {RC::Adder, 1}, {RC::Subtractor, 1}}});
  out.push_back({"AR-lattice", arLattice(), {{RC::Multiplier, 4}, {RC::Adder, 2}}});
  return out;
}

}  // namespace tauhls::dfg
