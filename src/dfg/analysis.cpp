#include "dfg/analysis.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace tauhls::dfg {

DurationFn unitDurations(const Dfg& g) {
  return [&g](NodeId id) { return g.isInput(id) ? 0 : 1; };
}

std::vector<NodeId> topologicalOrder(const Dfg& g) {
  const std::size_t n = g.numNodes();
  std::vector<int> indeg(n, 0);
  for (NodeId i = 0; i < n; ++i) {
    indeg[i] = static_cast<int>(g.combinedPredecessors(i).size());
  }
  std::queue<NodeId> ready;
  for (NodeId i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push(i);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    NodeId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (NodeId s : g.combinedSuccessors(v)) {
      if (--indeg[s] == 0) ready.push(s);
    }
  }
  return order;
}

std::vector<int> longestPathTo(const Dfg& g, const DurationFn& dur) {
  const std::vector<NodeId> order = topologicalOrder(g);
  TAUHLS_CHECK(order.size() == g.numNodes(), "longestPathTo requires a DAG");
  std::vector<int> dist(g.numNodes(), 0);
  for (NodeId v : order) {
    int best = 0;
    for (NodeId p : g.combinedPredecessors(v)) {
      best = std::max(best, dist[p]);
    }
    dist[v] = best + dur(v);
  }
  return dist;
}

int criticalPathLength(const Dfg& g, const DurationFn& dur) {
  if (g.numNodes() == 0) return 0;
  const std::vector<int> dist = longestPathTo(g, dur);
  return *std::max_element(dist.begin(), dist.end());
}

bool reaches(const Dfg& g, NodeId from, NodeId to) {
  if (from == to) return false;
  std::vector<bool> seen(g.numNodes(), false);
  std::queue<NodeId> q;
  q.push(from);
  seen[from] = true;
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (NodeId s : g.combinedSuccessors(v)) {
      if (s == to) return true;
      if (!seen[s]) {
        seen[s] = true;
        q.push(s);
      }
    }
  }
  return false;
}

std::vector<std::vector<bool>> reachabilityClosure(const Dfg& g) {
  const std::size_t n = g.numNodes();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  const std::vector<NodeId> order = topologicalOrder(g);
  TAUHLS_CHECK(order.size() == n, "reachabilityClosure requires a DAG");
  // Process in reverse topological order so successor closures are complete.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId v = *it;
    for (NodeId s : g.combinedSuccessors(v)) {
      reach[v][s] = true;
      for (std::size_t t = 0; t < n; ++t) {
        if (reach[s][t]) reach[v][t] = true;
      }
    }
  }
  return reach;
}

}  // namespace tauhls::dfg
