// The HLS benchmark DFGs the paper evaluates on (§5, Tables 1 & 2), plus the
// running examples of Figs. 2 and 3, reconstructed as described in
// DESIGN.md §4 ("Substitutions").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "dfg/region.hpp"

namespace tauhls::dfg {

/// Requested number of unit instances per resource class.
using Allocation = std::map<ResourceClass, int>;

/// A benchmark together with the allocation the paper uses for it.
struct NamedBenchmark {
  std::string name;
  Dfg graph;
  Allocation allocation;
};

/// Direct-form FIR filter with `taps` multiplications and a serial adder
/// chain (taps-1 additions).  The paper's "3rd FIR" is fir(3), "5th FIR" is
/// fir(5): the 45 ns / 75 ns all-SD best cases in Table 2 are only consistent
/// with 3 resp. 5 multiplications under {x:2, +:1}.
Dfg fir(int taps);

/// IIR filter of the given order: 2*order+1 multiplications feeding a serial
/// adder chain (feedforward + feedback taps, signs folded into coefficients so
/// only the adder class is used, matching the paper's {x, +} allocations).
Dfg iir(int order);

/// The classic HAL differential-equation solver ("Diff."): 6 multiplications,
/// 2 additions, 2 subtractions and 1 comparison (11 operations).
Dfg diffeq();

/// AR-lattice filter: 4 stages x (4 multiplications + 2 additions) = 24 ops.
/// Best case 8 cycles under {x:4, +:2}, matching Table 2's 120 ns.
Dfg arLattice();

/// Elliptic-wave-filter-like extra benchmark (8 multiplications, 26 additions,
/// 34 operations) -- not in the paper's tables; used for scaling studies.
Dfg ewf();

/// Radix-2 decimation-in-time FFT dataflow on 2^stages points (real-valued
/// model): each butterfly contributes one multiplication (twiddle), one
/// addition and one subtraction.  stages >= 1; fft(3) has 36 operations.
Dfg fft(int stages);

/// 8-point one-dimensional DCT flowgraph (Loeffler-style structure,
/// real-valued model): 11 multiplications, 29 additions/subtractions.
Dfg dct8();

/// The 6-operation running example of Fig. 2(a): two multiplications in the
/// first step, two in the third, two additions between.
Dfg paperFig2();

/// The 9-operation example of Fig. 3(a): multiplications {O0,O1,O4,O6,O8},
/// additions {O2,O3,O5,O7}, with the dependency structure that yields mult
/// cliques (0-1), (4), (6-8).
Dfg paperFig3();

/// The hierarchical benchmark: an iterated FIR accumulation stage (loop x4,
/// three taps per iteration) feeding an IIR corrector, with a conditional
/// output-scaling stage.  17 TAU multiplications along the then-trace, five
/// leaf regions, eight activations; use {x:2, +:1}
/// (firIirLoopAllocation()).  Built from the canonical region-syntax text
/// (the same text committed as examples/fir_iir_loop.dfg).
RegionProgram firIirLoop();

/// The canonical region-syntax source of firIirLoop().
const char* firIirLoopText();

/// The allocation the regions bench and CI jobs run firIirLoop() with.
Allocation firIirLoopAllocation();

/// The six Table 2 rows with the paper's allocations:
/// FIR3/FIR5/IIR2 {x:2,+:1}, IIR3 {x:3,+:2}, Diff {x:2,+:1,-:1},
/// AR-lattice {x:4,+:2}.
std::vector<NamedBenchmark> paperTable2Suite();

}  // namespace tauhls::dfg
