#include "dfg/transform.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::dfg {

namespace {

bool isCommutative(OpKind kind) {
  switch (kind) {
    case OpKind::Add:
    case OpKind::Mul:
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor: return true;
    default: return false;
  }
}

/// Rebuild `g` keeping nodes for which keep[] holds, remapping operands via
/// replacement[] (applied transitively before the rebuild).
Dfg rebuild(const Dfg& g, const std::vector<bool>& keep,
            const std::vector<NodeId>& replacement) {
  auto resolve = [&replacement](NodeId v) {
    while (replacement[v] != v) v = replacement[v];
    return v;
  };
  Dfg out(g.name());
  std::vector<NodeId> newId(g.numNodes(), kNoNode);
  for (NodeId v : topologicalOrder(g)) {
    if (!keep[v]) continue;
    const Node& n = g.node(v);
    if (n.kind == OpKind::Input) {
      newId[v] = out.addInput(n.name);
    } else {
      std::vector<NodeId> operands;
      for (NodeId o : n.operands) {
        const NodeId src = newId[resolve(o)];
        TAUHLS_ASSERT(src != kNoNode, "operand dropped while still in use");
        operands.push_back(src);
      }
      newId[v] = out.addOp(n.kind, operands, n.name);
    }
  }
  for (NodeId o : g.outputs()) {
    const NodeId mapped = newId[resolve(o)];
    TAUHLS_ASSERT(mapped != kNoNode, "output dropped by transform");
    out.markOutput(mapped);
  }
  out.validate();
  return out;
}

}  // namespace

Dfg commonSubexpressionElimination(const Dfg& g, TransformReport* report) {
  std::vector<bool> keep(g.numNodes(), true);
  std::vector<NodeId> replacement(g.numNodes());
  for (NodeId v = 0; v < g.numNodes(); ++v) replacement[v] = v;

  auto resolve = [&replacement](NodeId v) {
    while (replacement[v] != v) v = replacement[v];
    return v;
  };

  std::map<std::tuple<OpKind, NodeId, NodeId>, NodeId> seen;
  for (NodeId v : topologicalOrder(g)) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Input) continue;
    NodeId a = resolve(n.operands[0]);
    NodeId b = n.operands.size() > 1 ? resolve(n.operands[1]) : kNoNode;
    if (isCommutative(n.kind) && b != kNoNode && b < a) std::swap(a, b);
    const auto key = std::make_tuple(n.kind, a, b);
    auto [it, inserted] = seen.try_emplace(key, v);
    if (!inserted) {
      keep[v] = false;
      replacement[v] = it->second;
      if (report != nullptr) {
        ++report->mergedOps;
        report->notes.push_back("cse: " + n.name + " -> " +
                                g.node(it->second).name);
      }
    }
  }
  return rebuild(g, keep, replacement);
}

Dfg eliminateDeadOps(const Dfg& g, TransformReport* report) {
  if (g.outputs().empty()) return g;
  std::vector<bool> live(g.numNodes(), false);
  // Inputs are always kept (they are the design's interface).
  for (NodeId v : g.inputIds()) live[v] = true;
  // Walk backward from the outputs.
  const std::vector<NodeId> order = topologicalOrder(g);
  for (NodeId o : g.outputs()) live[o] = true;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (!live[*it]) continue;
    for (NodeId p : g.node(*it).operands) live[p] = true;
  }
  std::vector<NodeId> replacement(g.numNodes());
  for (NodeId v = 0; v < g.numNodes(); ++v) replacement[v] = v;
  if (report != nullptr) {
    for (NodeId v : g.opIds()) {
      if (!live[v]) {
        ++report->removedDead;
        report->notes.push_back("dead: " + g.node(v).name);
      }
    }
  }
  return rebuild(g, live, replacement);
}

Dfg tidy(const Dfg& g, TransformReport* report) {
  Dfg current = g;
  for (int iter = 0; iter < 16; ++iter) {
    TransformReport local;
    Dfg next = eliminateDeadOps(commonSubexpressionElimination(current, &local),
                                &local);
    if (report != nullptr) {
      report->mergedOps += local.mergedOps;
      report->removedDead += local.removedDead;
      report->notes.insert(report->notes.end(), local.notes.begin(),
                           local.notes.end());
    }
    if (local.mergedOps == 0 && local.removedDead == 0) return next;
    current = std::move(next);
  }
  TAUHLS_FAIL("tidy did not converge");
}

}  // namespace tauhls::dfg
