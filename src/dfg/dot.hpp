// Graphviz (DOT) export of dataflow graphs, for documentation and debugging.
#pragma once

#include <string>

#include "dfg/graph.hpp"

namespace tauhls::dfg {

struct DotOptions {
  bool showScheduleArcs = true;  ///< dashed edges for sequencing arcs
  bool showInputs = true;        ///< include primary-input nodes
};

/// Render `g` as a DOT digraph.
std::string toDot(const Dfg& g, const DotOptions& options = {});

}  // namespace tauhls::dfg
