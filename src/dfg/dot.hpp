// Graphviz (DOT) export of dataflow graphs, for documentation and debugging.
#pragma once

#include <string>

#include "dfg/graph.hpp"

namespace tauhls::dfg {

struct RegionProgram;  // dfg/region.hpp

struct DotOptions {
  bool showScheduleArcs = true;  ///< dashed edges for sequencing arcs
  bool showInputs = true;        ///< include primary-input nodes
};

/// Render `g` as a DOT digraph.  State edges render bold ("order"); graphs
/// without them render exactly as before.
std::string toDot(const Dfg& g, const DotOptions& options = {});

/// Render a region program with one `subgraph cluster_<path>` per leaf and
/// dashed wrapper clusters for loops ("loop xN") and conditionals
/// ("if <name>" with then/else sub-clusters).  Flat programs render through
/// the Dfg overload unchanged.
std::string toDot(const RegionProgram& program, const DotOptions& options = {});

}  // namespace tauhls::dfg
