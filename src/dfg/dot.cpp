#include "dfg/dot.hpp"

#include <sstream>

#include "dfg/region.hpp"

namespace tauhls::dfg {

namespace {

/// Nodes and edges of one graph, with node ids offset so several leaf bodies
/// can share one DOT document.
void emitBody(std::ostringstream& os, const Dfg& g, const DotOptions& options,
              NodeId offset, const std::string& indent) {
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    const Node& n = g.node(i);
    if (n.kind == OpKind::Input) {
      if (!options.showInputs) continue;
      os << indent << "n" << offset + i << " [shape=plaintext,label=\""
         << portBaseName(n.name) << "\"];\n";
    } else {
      os << indent << "n" << offset + i << " [shape=circle,label=\""
         << opKindSymbol(n.kind) << "\\n" << n.name << "\"];\n";
    }
  }
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    const Node& n = g.node(i);
    for (NodeId o : n.operands) {
      if (!options.showInputs && g.isInput(o)) continue;
      os << indent << "n" << offset + o << " -> n" << offset + i << ";\n";
    }
  }
  if (options.showScheduleArcs) {
    for (const ScheduleArc& a : g.scheduleArcs()) {
      os << indent << "n" << offset + a.from << " -> n" << offset + a.to
         << " [style=dashed,color=gray];\n";
    }
  }
  for (const ScheduleArc& a : g.stateEdges()) {
    os << indent << "n" << offset + a.from << " -> n" << offset + a.to
       << " [style=bold,color=firebrick,label=\"order\"];\n";
  }
}

/// Cluster label, e.g. "loop x4" or "if c / then".
void emitRegion(std::ostringstream& os, const Region& r,
                const std::string& path, const std::string& label,
                const DotOptions& options, NodeId& offset, int depth) {
  const std::string indent(static_cast<std::size_t>(2 * (depth + 1)), ' ');
  switch (r.kind) {
    case RegionKind::Leaf:
      os << indent << "subgraph \"cluster_" << path << "\" {\n";
      os << indent << "  label=\"" << (label.empty() ? r.body.name() : label)
         << "\";\n";
      os << indent << "  style=rounded;\n";
      emitBody(os, r.body, options, offset, indent + "  ");
      offset += r.body.numNodes();
      os << indent << "}\n";
      break;
    case RegionKind::Seq:
      for (std::size_t i = 0; i < r.children.size(); ++i) {
        emitRegion(os, r.children[i],
                   childRegionPath(path, "s" + std::to_string(i)), "", options,
                   offset, depth);
      }
      break;
    case RegionKind::Loop:
      os << indent << "subgraph \"cluster_" << path << "_loop\" {\n";
      os << indent << "  label=\"loop x" << r.tripCount << "\";\n";
      os << indent << "  style=dashed;\n";
      emitRegion(os, r.children.front(), childRegionPath(path, "l"), "",
                 options, offset, depth + 1);
      os << indent << "}\n";
      break;
    case RegionKind::Cond:
      os << indent << "subgraph \"cluster_" << path << "_cond\" {\n";
      os << indent << "  label=\"if " << r.condName << "\";\n";
      os << indent << "  style=dashed;\n";
      emitRegion(os, r.children[0], childRegionPath(path, "t"), "then",
                 options, offset, depth + 1);
      emitRegion(os, r.children[1], childRegionPath(path, "e"), "else",
                 options, offset, depth + 1);
      os << indent << "}\n";
      break;
  }
}

}  // namespace

std::string toDot(const Dfg& g, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n";
  os << "  rankdir=TB;\n";
  emitBody(os, g, options, 0, "  ");
  os << "}\n";
  return os.str();
}

std::string toDot(const RegionProgram& program, const DotOptions& options) {
  // A flat program renders exactly like its leaf body always has.
  if (program.isFlat()) return toDot(program.root.body, options);
  std::ostringstream os;
  os << "digraph \"" << program.name << "\" {\n";
  os << "  rankdir=TB;\n";
  os << "  compound=true;\n";
  NodeId offset = 0;
  emitRegion(os, program.root, "", "", options, offset, 0);
  os << "}\n";
  return os.str();
}

}  // namespace tauhls::dfg
