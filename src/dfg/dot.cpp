#include "dfg/dot.hpp"

#include <sstream>

namespace tauhls::dfg {

std::string toDot(const Dfg& g, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n";
  os << "  rankdir=TB;\n";
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    const Node& n = g.node(i);
    if (n.kind == OpKind::Input) {
      if (!options.showInputs) continue;
      os << "  n" << i << " [shape=plaintext,label=\"" << n.name << "\"];\n";
    } else {
      os << "  n" << i << " [shape=circle,label=\"" << opKindSymbol(n.kind)
         << "\\n" << n.name << "\"];\n";
    }
  }
  for (NodeId i = 0; i < g.numNodes(); ++i) {
    const Node& n = g.node(i);
    for (NodeId o : n.operands) {
      if (!options.showInputs && g.isInput(o)) continue;
      os << "  n" << o << " -> n" << i << ";\n";
    }
  }
  if (options.showScheduleArcs) {
    for (const ScheduleArc& a : g.scheduleArcs()) {
      os << "  n" << a.from << " -> n" << a.to << " [style=dashed,color=gray];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace tauhls::dfg
