#include "common/simd.hpp"

#include <algorithm>

#if defined(TAUHLS_SIMD_AVX2_BUILD) && defined(__x86_64__)
#include <immintrin.h>
#elif defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace tauhls::common::simd {

namespace {

int gatherMaxScalar(const int* values, const std::uint32_t* indices,
                    std::size_t n, int empty) {
  int acc = empty;
  for (std::size_t i = 0; i < n; ++i) {
    acc = std::max(acc, values[indices[i]]);
  }
  return acc;
}

#if defined(TAUHLS_SIMD_AVX2_BUILD) && defined(__x86_64__)

bool avx2Supported() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}

int gatherMaxAvx2(const int* values, const std::uint32_t* indices,
                  std::size_t n, int empty) {
  __m256i acc = _mm256_set1_epi32(empty);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(indices + i));
    acc = _mm256_max_epi32(acc, _mm256_i32gather_epi32(values, idx, 4));
  }
  alignas(32) int lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  int result = empty;
  for (int lane : lanes) result = std::max(result, lane);
  return gatherMaxScalar(values, indices + i, n - i, result);
}

#elif defined(__aarch64__)

int gatherMaxNeon(const int* values, const std::uint32_t* indices,
                  std::size_t n, int empty) {
  // NEON has no gather; load four gathered lanes at a time and keep the
  // reduction vectorized.
  int32x4_t acc = vdupq_n_s32(empty);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    int32x4_t v = vdupq_n_s32(values[indices[i]]);
    v = vsetq_lane_s32(values[indices[i + 1]], v, 1);
    v = vsetq_lane_s32(values[indices[i + 2]], v, 2);
    v = vsetq_lane_s32(values[indices[i + 3]], v, 3);
    acc = vmaxq_s32(acc, v);
  }
  return gatherMaxScalar(values, indices + i, n - i, vmaxvq_s32(acc));
}

#endif

}  // namespace

const char* backendName() {
#if defined(TAUHLS_SIMD_AVX2_BUILD) && defined(__x86_64__)
  if (avx2Supported()) return "avx2";
  return "scalar";
#elif defined(__aarch64__)
  return "neon";
#else
  return "scalar";
#endif
}

int gatherMaxVector(const int* values, const std::uint32_t* indices,
                    std::size_t n, int empty) {
#if defined(TAUHLS_SIMD_AVX2_BUILD) && defined(__x86_64__)
  if (avx2Supported()) return gatherMaxAvx2(values, indices, n, empty);
  return gatherMaxScalar(values, indices, n, empty);
#elif defined(__aarch64__)
  return gatherMaxNeon(values, indices, n, empty);
#else
  return gatherMaxScalar(values, indices, n, empty);
#endif
}

}  // namespace tauhls::common::simd
