// Deterministic parallel-execution primitives for the sweep layers.
//
// A small process-wide worker pool distributes task indices through an atomic
// cursor (chunked work sharing).  Two invariants make every parallel result
// reproducible bit-for-bit regardless of the thread count:
//
//   1. The decomposition of work into tasks/chunks depends only on the
//      problem size -- never on the number of threads.
//   2. parallelReduce folds the per-chunk partial results serially in
//      ascending chunk-index order, so floating-point sums associate the
//      same way whether one thread or sixteen computed the partials.
//
// The thread count comes from the TAUHLS_THREADS environment variable
// (clamped to >= 1) and defaults to std::thread::hardware_concurrency();
// the tauhlsc `--threads` flag overrides both via setGlobalThreadCount.
// Nested parallel regions (a parallelFor issued from inside a worker) run
// inline on the calling worker, so composed sweeps neither deadlock nor
// oversubscribe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace tauhls::common {

/// Threads the global pool starts with: TAUHLS_THREADS if set and valid
/// (clamped to [1, 256]), else hardware_concurrency(), else 1.
int configuredThreadCount();

class ThreadPool {
 public:
  /// A pool of `threadCount` execution lanes: the calling thread of forEach
  /// participates, so threadCount == 1 spawns no workers and runs inline.
  explicit ThreadPool(int threadCount);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threadCount() const { return threadCount_; }

  /// Invoke fn(i) for every i in [0, numTasks), each index exactly once.
  /// Blocks until all tasks finish.  The first exception thrown by a task is
  /// rethrown here after the region drains (remaining tasks are skipped).
  /// Calls issued from inside a worker run the whole region inline.
  void forEach(std::size_t numTasks,
               const std::function<void(std::size_t)>& fn);

  /// True while the calling thread is executing a task of any ThreadPool.
  static bool insideWorker();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int threadCount_ = 1;
};

/// The process-wide pool, lazily created with configuredThreadCount().
ThreadPool& globalThreadPool();

/// Replace the global pool with one of `threadCount` lanes (the `--threads`
/// CLI flag).  Must not race with in-flight parallel regions.
void setGlobalThreadCount(int threadCount);

/// fn(i) for every i in [0, numTasks) on the global pool.
void parallelFor(std::size_t numTasks,
                 const std::function<void(std::size_t)>& fn);

/// Deterministic map-reduce: computes partial(chunk) for every chunk in
/// [0, numChunks) in parallel, then folds the partials serially in ascending
/// chunk order -- identical association for every thread count.
template <typename T, typename Partial, typename Combine>
T parallelReduce(std::size_t numChunks, T init, Partial&& partial,
                 Combine&& combine) {
  std::vector<T> results(numChunks);
  parallelFor(numChunks,
              [&](std::size_t chunk) { results[chunk] = partial(chunk); });
  T acc = std::move(init);
  for (std::size_t chunk = 0; chunk < numChunks; ++chunk) {
    acc = combine(std::move(acc), std::move(results[chunk]));
  }
  return acc;
}

/// The fixed chunk grid for `totalItems` items: number of contiguous chunks,
/// a function of the problem size only (never of the thread count), so that
/// chunked reductions are reproducible.  At most `targetChunks` chunks; every
/// chunk except possibly the last holds ceil(total/chunks) items.
std::uint64_t chunkCountFor(std::uint64_t totalItems,
                            std::uint64_t targetChunks = 256);

}  // namespace tauhls::common
