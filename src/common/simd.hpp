// Portable SIMD shim for the hot integer kernels (src/sim/makespan.cpp).
//
// One primitive is enough for the sweep: gatherMax, the maximum of
// values[indices[i]] over a CSR adjacency slice -- the predecessor-finish
// reduction that dominates both evalFull and flipTau.  Integer max is exact,
// so the vector path is bit-identical to the scalar loop by construction;
// tests/test_simd.cpp asserts it on random adjacency anyway.
//
// Backend selection: the AVX2 body lives in simd.cpp, the only translation
// unit compiled with -mavx2 (set per-file in src/common/CMakeLists.txt when
// the compiler supports the flag on x86-64), behind a runtime
// __builtin_cpu_supports("avx2") check so the binary still runs on older
// cores.  aarch64 uses NEON, everything else the scalar loop.  backendName()
// reports which path is live, for logs and the bench JSON.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tauhls::common::simd {

/// The SIMD path selected at load time: "avx2", "neon" or "scalar".
const char* backendName();

/// Vector body of gatherMax (implemented in simd.cpp); call gatherMax.
int gatherMaxVector(const int* values, const std::uint32_t* indices,
                    std::size_t n, int empty);

/// Maximum of values[indices[i]] for i in [0, n); `empty` when n == 0.
/// Short slices stay on the inline scalar loop -- vector setup costs more
/// than it saves below one vector width.
inline int gatherMax(const int* values, const std::uint32_t* indices,
                     std::size_t n, int empty) {
  if (n < 8) {
    int acc = empty;
    for (std::size_t i = 0; i < n; ++i) {
      const int v = values[indices[i]];
      if (v > acc) acc = v;
    }
    return acc;
  }
  return gatherMaxVector(values, indices, n, empty);
}

}  // namespace tauhls::common::simd
