// Error handling helpers shared by every tauhls module.
//
// The library reports contract violations and malformed inputs by throwing
// tauhls::Error (a std::runtime_error).  TAUHLS_CHECK is used for user-input
// validation (always on); TAUHLS_ASSERT guards internal invariants and is also
// always on -- this is a synthesis tool, not an inner-loop kernel, so the cost
// of checking is negligible next to the cost of a silent wrong netlist.
#pragma once

#include <stdexcept>
#include <string>

namespace tauhls {

/// Exception type thrown on any contract or input violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void raiseError(const char* kind, const char* cond, const char* file,
                             int line, const std::string& message);
}  // namespace detail

/// Validate a condition on user-supplied data; throws tauhls::Error on failure.
#define TAUHLS_CHECK(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::tauhls::detail::raiseError("check", #cond, __FILE__, __LINE__, msg); \
    }                                                                        \
  } while (0)

/// Internal invariant; failure indicates a bug in tauhls itself.
#define TAUHLS_ASSERT(cond, msg)                                              \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::tauhls::detail::raiseError("assert", #cond, __FILE__, __LINE__, msg); \
    }                                                                         \
  } while (0)

/// Unconditional failure with message.
#define TAUHLS_FAIL(msg) \
  ::tauhls::detail::raiseError("fail", "unreachable", __FILE__, __LINE__, msg)

}  // namespace tauhls
