#include "common/error.hpp"

#include <sstream>

namespace tauhls::detail {

void raiseError(const char* kind, const char* cond, const char* file, int line,
                const std::string& message) {
  std::ostringstream os;
  os << "tauhls " << kind << " failed: " << message << " [" << cond << " at "
     << file << ":" << line << "]";
  throw Error(os.str());
}

}  // namespace tauhls::detail
