#include "common/strings.hpp"

#include <cctype>
#include <sstream>

namespace tauhls {

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep, bool keepEmpty) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      if (keepEmpty || !cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (keepEmpty || !cur.empty()) out.push_back(cur);
  return out;
}

bool isIdentifier(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

std::string zeroPad(unsigned value, int width) {
  std::ostringstream os;
  std::string digits = std::to_string(value);
  for (int i = static_cast<int>(digits.size()); i < width; ++i) os << '0';
  os << digits;
  return os.str();
}

}  // namespace tauhls
