// Small string utilities used across modules (no dependency beyond <string>).
#pragma once

#include <string>
#include <vector>

namespace tauhls {

/// Join the elements of `parts` with `sep` ("a", "b" -> "a,b").
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Split on a single character, dropping empty fragments when `keepEmpty` is false.
std::vector<std::string> split(const std::string& s, char sep, bool keepEmpty = false);

/// True when `s` is a valid C-style identifier (letter/underscore start).
bool isIdentifier(const std::string& s);

/// printf-style "%d"-free integer-to-string with fixed-width zero padding.
std::string zeroPad(unsigned value, int width);

/// `stem` followed by the decimal rendering of `n` ("S", 3 -> "S3").
/// Equivalent to `stem + std::to_string(n)` but built by append: the rvalue
/// operator+ form trips a gcc-12 -Wrestrict false positive under -O3
/// (GCC PR105651), and library targets compile with warnings as errors.
template <class Int>
std::string numbered(const char* stem, Int n) {
  std::string s = stem;
  s += std::to_string(n);
  return s;
}

}  // namespace tauhls
