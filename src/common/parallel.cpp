#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace tauhls::common {

namespace {
thread_local bool tInsideWorker = false;

struct WorkerScope {
  bool previous;
  WorkerScope() : previous(tInsideWorker) { tInsideWorker = true; }
  ~WorkerScope() { tInsideWorker = previous; }
};
}  // namespace

int configuredThreadCount() {
  if (const char* env = std::getenv("TAUHLS_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<int>(v > 256 ? 256 : v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable available;
  std::deque<std::function<void()>> tasks;
  std::vector<std::thread> workers;
  bool stopping = false;

  void workerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        available.wait(lock, [&] { return stopping || !tasks.empty(); });
        if (tasks.empty()) return;  // stopping and drained
        task = std::move(tasks.front());
        tasks.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(int threadCount)
    : impl_(std::make_unique<Impl>()),
      threadCount_(threadCount < 1 ? 1 : threadCount) {
  // The forEach caller is one lane; spawn the rest.
  for (int i = 1; i < threadCount_; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->available.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

bool ThreadPool::insideWorker() { return tInsideWorker; }

namespace {
// Shared state of one forEach region.  Helpers and the caller pull indices
// from `next` until the range is exhausted or a task failed.
struct Region {
  std::size_t numTasks = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mutex;
  std::condition_variable done;
  int helpersOutstanding = 0;

  void drain() {
    WorkerScope scope;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= numTasks) return;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  }
};
}  // namespace

void ThreadPool::forEach(std::size_t numTasks,
                         const std::function<void(std::size_t)>& fn) {
  if (numTasks == 0) return;
  if (threadCount_ <= 1 || numTasks == 1 || insideWorker()) {
    WorkerScope scope;  // nested regions inside this one also run inline
    for (std::size_t i = 0; i < numTasks; ++i) fn(i);
    return;
  }

  auto region = std::make_shared<Region>();
  region->numTasks = numTasks;
  region->fn = &fn;
  const std::size_t maxHelpers = static_cast<std::size_t>(threadCount_) - 1;
  const int helpers = static_cast<int>(
      numTasks - 1 < maxHelpers ? numTasks - 1 : maxHelpers);
  region->helpersOutstanding = helpers;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (int i = 0; i < helpers; ++i) {
      impl_->tasks.emplace_back([region] {
        region->drain();
        std::lock_guard<std::mutex> regionLock(region->mutex);
        if (--region->helpersOutstanding == 0) region->done.notify_all();
      });
    }
  }
  impl_->available.notify_all();

  region->drain();  // the calling thread is a lane too
  {
    std::unique_lock<std::mutex> lock(region->mutex);
    region->done.wait(lock, [&] { return region->helpersOutstanding == 0; });
  }
  if (region->error) std::rethrow_exception(region->error);
}

namespace {
std::mutex gPoolMutex;
std::unique_ptr<ThreadPool> gPool;
}  // namespace

ThreadPool& globalThreadPool() {
  std::lock_guard<std::mutex> lock(gPoolMutex);
  if (!gPool) gPool = std::make_unique<ThreadPool>(configuredThreadCount());
  return *gPool;
}

void setGlobalThreadCount(int threadCount) {
  TAUHLS_CHECK(threadCount >= 1, "thread count must be >= 1");
  std::lock_guard<std::mutex> lock(gPoolMutex);
  gPool = std::make_unique<ThreadPool>(threadCount);
}

void parallelFor(std::size_t numTasks,
                 const std::function<void(std::size_t)>& fn) {
  globalThreadPool().forEach(numTasks, fn);
}

std::uint64_t chunkCountFor(std::uint64_t totalItems,
                            std::uint64_t targetChunks) {
  if (totalItems == 0) return 0;
  return totalItems < targetChunks ? totalItems : targetChunks;
}

}  // namespace tauhls::common
