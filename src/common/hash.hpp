// Stable streaming hashing for content-addressed artifact keys.
//
// The pipeline layer (core/pipeline.hpp) keys cached artifacts by a
// fingerprint of everything a pass can observe: the input DFG, the config
// fields the pass declares it reads, and the fingerprints of its input
// artifacts.  Two properties matter and both are provided here:
//
//   1. Stability.  The digest is a pure function of the byte stream fed in --
//      independent of platform, thread count, process or run.  (It is *not*
//      stable across code changes that alter what gets hashed; cached
//      artifacts never outlive the process, so that is enough.)
//   2. Collision resistance adequate for caching.  Keys are 128 bits wide,
//      built from two independently-seeded 64-bit lanes, so accidental
//      collisions within a sweep's worth of keys (thousands) are vanishingly
//      unlikely.  This is not a cryptographic hash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tauhls::common {

/// 128-bit digest used as a cache key.  Comparable and hashable.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex digits, for traces and logs.
  std::string toHex() const;
};

/// std::unordered_map hasher for Fingerprint keys.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Order-sensitive streaming hasher.  Every primitive feed is framed with a
/// type tag, so adjacent fields cannot alias (e.g. "ab" + "c" vs "a" + "bc",
/// or a bool followed by a byte vs a 16-bit value).
class Hasher {
 public:
  Hasher();
  /// Seeded construction, for deriving independent key spaces.
  explicit Hasher(const Fingerprint& seed);

  Hasher& bytes(const void* data, std::size_t n);
  Hasher& u64(std::uint64_t v);
  Hasher& i64(std::int64_t v);
  Hasher& u32(std::uint32_t v) { return u64(v); }
  Hasher& boolean(bool v);
  /// Hashes the IEEE-754 bit pattern (distinguishes -0.0 from 0.0; any NaN
  /// hashes as its payload bits).
  Hasher& f64(double v);
  /// Length-prefixed, so consecutive strings cannot alias.
  Hasher& str(std::string_view s);
  /// Mix a finished fingerprint in (e.g. an input artifact's key).
  Hasher& fingerprint(const Fingerprint& fp);

  /// Finalize (the hasher may keep being fed afterwards; digest() is a pure
  /// observation of the state so far).
  Fingerprint digest() const;

 private:
  Hasher& raw(const void* data, std::size_t n);

  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};

}  // namespace tauhls::common
