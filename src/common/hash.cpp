#include "common/hash.hpp"

#include <array>
#include <cstring>

namespace tauhls::common {

namespace {

// Two independent FNV-1a lanes with distinct offset bases; each lane is
// passed through a splitmix64 finalizer in digest() to spread the low-entropy
// FNV state over all 64 bits.
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kOffsetA = 0xcbf29ce484222325ull;
constexpr std::uint64_t kOffsetB = 0x9ae16a3b2f90404full;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

enum class Tag : unsigned char {
  Bytes = 1,
  U64 = 2,
  I64 = 3,
  Bool = 4,
  F64 = 5,
  Str = 6,
  Fp = 7,
};

}  // namespace

std::string Fingerprint::toHex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 56 - 8 * (i % 8);
    const unsigned byte = static_cast<unsigned>((word >> shift) & 0xff);
    out[2 * static_cast<std::size_t>(i)] = digits[byte >> 4];
    out[2 * static_cast<std::size_t>(i) + 1] = digits[byte & 0xf];
  }
  return out;
}

Hasher::Hasher() : a_(kOffsetA), b_(kOffsetB) {}

Hasher::Hasher(const Fingerprint& seed)
    : a_(kOffsetA ^ seed.hi), b_(kOffsetB ^ seed.lo) {}

Hasher& Hasher::raw(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    a_ = (a_ ^ p[i]) * kFnvPrime;
    b_ = (b_ ^ p[i]) * kFnvPrime;
    // Decorrelate the lanes: lane B additionally mixes the position.
    b_ ^= b_ >> 29;
  }
  return *this;
}

Hasher& Hasher::bytes(const void* data, std::size_t n) {
  const auto tag = static_cast<unsigned char>(Tag::Bytes);
  raw(&tag, 1);
  u64(n);
  return raw(data, n);
}

Hasher& Hasher::u64(std::uint64_t v) {
  std::array<unsigned char, 9> buf;
  buf[0] = static_cast<unsigned char>(Tag::U64);
  for (int i = 0; i < 8; ++i) {
    buf[static_cast<std::size_t>(i) + 1] =
        static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
  return raw(buf.data(), buf.size());
}

Hasher& Hasher::i64(std::int64_t v) {
  const auto tag = static_cast<unsigned char>(Tag::I64);
  raw(&tag, 1);
  return u64(static_cast<std::uint64_t>(v));
}

Hasher& Hasher::boolean(bool v) {
  const std::array<unsigned char, 2> buf = {
      static_cast<unsigned char>(Tag::Bool),
      static_cast<unsigned char>(v ? 1 : 0)};
  return raw(buf.data(), buf.size());
}

Hasher& Hasher::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  const auto tag = static_cast<unsigned char>(Tag::F64);
  raw(&tag, 1);
  return u64(bits);
}

Hasher& Hasher::str(std::string_view s) {
  const auto tag = static_cast<unsigned char>(Tag::Str);
  raw(&tag, 1);
  u64(s.size());
  return raw(s.data(), s.size());
}

Hasher& Hasher::fingerprint(const Fingerprint& fp) {
  const auto tag = static_cast<unsigned char>(Tag::Fp);
  raw(&tag, 1);
  u64(fp.hi);
  return u64(fp.lo);
}

Fingerprint Hasher::digest() const {
  Fingerprint fp;
  fp.hi = splitmix64(a_);
  fp.lo = splitmix64(b_ ^ (fp.hi * kFnvPrime));
  return fp;
}

}  // namespace tauhls::common
