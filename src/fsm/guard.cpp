#include "fsm/guard.hpp"

#include <algorithm>

namespace tauhls::fsm {

bool GuardTerm::evaluate(const std::unordered_set<std::string>& asserted) const {
  for (const auto& [signal, positive] : literals) {
    if (asserted.contains(signal) != positive) return false;
  }
  return true;
}

Guard Guard::always() {
  Guard g;
  g.terms_.push_back(GuardTerm{});
  return g;
}

Guard Guard::never() { return Guard{}; }

Guard Guard::literal(const std::string& signal, bool positive) {
  Guard g;
  GuardTerm t;
  t.literals[signal] = positive;
  g.terms_.push_back(std::move(t));
  return g;
}

Guard Guard::allOf(const std::vector<std::string>& signals) {
  Guard g;
  GuardTerm t;
  for (const std::string& s : signals) t.literals[s] = true;
  g.terms_.push_back(std::move(t));
  return g;
}

Guard Guard::notAllOf(const std::vector<std::string>& signals) {
  Guard g;
  for (const std::string& s : signals) {
    GuardTerm t;
    t.literals[s] = false;
    g.terms_.push_back(std::move(t));
  }
  return g;
}

Guard Guard::conjoin(const Guard& other) const {
  Guard out;
  for (const GuardTerm& a : terms_) {
    for (const GuardTerm& b : other.terms_) {
      GuardTerm merged = a;
      bool contradiction = false;
      for (const auto& [signal, positive] : b.literals) {
        auto [it, inserted] = merged.literals.emplace(signal, positive);
        if (!inserted && it->second != positive) {
          contradiction = true;
          break;
        }
      }
      if (!contradiction) out.terms_.push_back(std::move(merged));
    }
  }
  return out;
}

Guard Guard::disjoin(const Guard& other) const {
  Guard out = *this;
  for (const GuardTerm& t : other.terms_) out.terms_.push_back(t);
  return out;
}

bool Guard::evaluate(const std::unordered_set<std::string>& asserted) const {
  for (const GuardTerm& t : terms_) {
    if (t.evaluate(asserted)) return true;
  }
  return false;
}

std::vector<std::string> Guard::signals() const {
  std::vector<std::string> out;
  for (const GuardTerm& t : terms_) {
    for (const auto& [signal, positive] : t.literals) out.push_back(signal);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Guard::isAlways() const {
  for (const GuardTerm& t : terms_) {
    if (t.literals.empty()) return true;
  }
  return false;
}

std::string Guard::toString() const {
  if (terms_.empty()) return "0";
  std::string s;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (i != 0) s += " | ";
    if (terms_[i].literals.empty()) {
      s += "1";
      continue;
    }
    bool first = true;
    for (const auto& [signal, positive] : terms_[i].literals) {
      if (!first) s += "&";
      first = false;
      if (!positive) s += "!";
      s += signal;
    }
  }
  return s;
}

}  // namespace tauhls::fsm
