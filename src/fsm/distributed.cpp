#include "fsm/distributed.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "fsm/signal.hpp"

namespace tauhls::fsm {

using dfg::NodeId;

std::size_t DistributedControlUnit::totalStates() const {
  std::size_t n = 0;
  for (const UnitController& c : controllers) n += c.fsm.numStates();
  return n;
}

int DistributedControlUnit::totalFlipFlops() const {
  int n = 0;
  for (const UnitController& c : controllers) n += c.fsm.flipFlopCount();
  return n;
}

int DistributedControlUnit::completionLatchCount() const {
  int n = 0;
  for (const UnitController& c : controllers) {
    n += static_cast<int>(c.latchedInputs.size());
  }
  return n;
}

namespace {

/// CCO_* signals of `op`'s dependence predecessors (data + state edges) bound
/// to a *different* unit (the paper restricts the predecessor relation to
/// cross-unit pairs, §4.2).
std::vector<std::string> externalPredSignals(const sched::ScheduledDfg& s,
                                             NodeId op, int unitId) {
  std::vector<std::string> out;
  for (NodeId p : s.graph.dependencePredecessors(op)) {
    if (!s.graph.isOp(p)) continue;
    const int pu = s.binding.unitOf(p);
    TAUHLS_ASSERT(pu >= 0, "predecessor op is unbound");
    if (pu != unitId) out.push_back(opCompletionSignal(s.graph.node(p).name));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

UnitController buildController(const sched::ScheduledDfg& s, int unitId) {
  const sched::UnitInstance& unit = s.binding.unit(unitId);
  const std::vector<NodeId>& seq = s.binding.sequenceOf(unitId);
  TAUHLS_CHECK(!seq.empty(), "unit has no bound operations: " + unit.name);
  const bool telescopic = s.unitIsTelescopic(unitId);
  const int n = static_cast<int>(seq.size());

  UnitController ctl;
  ctl.unitId = unitId;
  ctl.telescopic = telescopic;
  ctl.ops = seq;
  ctl.fsm = Fsm("D_FSM_" + unit.name);
  Fsm& fsm = ctl.fsm;

  const std::string cT = unitCompletionSignal(unit);
  if (telescopic) fsm.addInput(cT);

  // Per-op predecessor signals and declarations.
  std::vector<std::vector<std::string>> preds(n);
  for (int i = 0; i < n; ++i) {
    preds[i] = externalPredSignals(s, seq[i], unitId);
    for (const std::string& sig : preds[i]) {
      fsm.addInput(sig);
      ctl.latchedInputs.push_back(sig);
    }
    const std::string& opName = s.graph.node(seq[i]).name;
    fsm.addOutput(operandFetchSignal(opName));
    fsm.addOutput(registerEnableSignal(opName));
    fsm.addOutput(opCompletionSignal(opName));
  }
  std::sort(ctl.latchedInputs.begin(), ctl.latchedInputs.end());
  ctl.latchedInputs.erase(
      std::unique(ctl.latchedInputs.begin(), ctl.latchedInputs.end()),
      ctl.latchedInputs.end());

  // States (paper step 2): S_i, S_i' for telescopic, R_i when preds exist.
  std::vector<int> stateS(n), stateSp(n, -1), stateR(n, -1);
  for (int i = 0; i < n; ++i) {
    stateS[i] = fsm.addState(numbered("S", i));
    if (telescopic) stateSp[i] = fsm.addState(numbered("S", i) + "p");
    if (!preds[i].empty()) stateR[i] = fsm.addState(numbered("R", i));
  }
  fsm.setInitial(stateR[0] != -1 ? stateR[0] : stateS[0]);

  // Transitions (paper steps 3 & 4).  S_{n} wraps to S_0 / R_0.
  for (int i = 0; i < n; ++i) {
    const int j = (i + 1) % n;
    const std::string& opName = s.graph.node(seq[i]).name;
    const std::vector<std::string> completing = {operandFetchSignal(opName),
                                                 registerEnableSignal(opName),
                                                 opCompletionSignal(opName)};
    // Sources that complete O_i: S_i guarded by C_T (telescopic) or
    // unconditionally (fixed); S_i' unconditionally.
    std::vector<std::pair<int, Guard>> completingSources;
    if (telescopic) {
      fsm.addTransition(stateS[i], stateSp[i], Guard::literal(cT, false),
                        {operandFetchSignal(opName)});
      completingSources.emplace_back(stateS[i], Guard::literal(cT, true));
      completingSources.emplace_back(stateSp[i], Guard::always());
    } else {
      completingSources.emplace_back(stateS[i], Guard::always());
    }
    for (const auto& [src, base] : completingSources) {
      if (preds[j].empty()) {
        fsm.addTransition(src, stateS[j], base, completing);
      } else {
        fsm.addTransition(src, stateS[j], base.conjoin(Guard::allOf(preds[j])),
                          completing);
        fsm.addTransition(src, stateR[j],
                          base.conjoin(Guard::notAllOf(preds[j])), completing);
      }
    }
    if (stateR[j] != -1) {
      fsm.addTransition(stateR[j], stateS[j], Guard::allOf(preds[j]), {});
      fsm.addTransition(stateR[j], stateR[j], Guard::notAllOf(preds[j]), {});
    }
  }
  validateFsm(fsm);
  return ctl;
}

}  // namespace

DistributedControlUnit buildDistributed(const sched::ScheduledDfg& s) {
  DistributedControlUnit dcu;
  for (int u = 0; u < static_cast<int>(s.binding.numUnits()); ++u) {
    dcu.controllers.push_back(buildController(s, u));
  }
  // Global wiring.
  for (std::size_t c = 0; c < dcu.controllers.size(); ++c) {
    const UnitController& ctl = dcu.controllers[c];
    if (ctl.telescopic) {
      dcu.externalInputs.push_back(
          unitCompletionSignal(s.binding.unit(ctl.unitId)));
    }
    for (NodeId op : ctl.ops) {
      dcu.producerOf[opCompletionSignal(s.graph.node(op).name)] =
          static_cast<int>(c);
    }
  }
  for (std::size_t c = 0; c < dcu.controllers.size(); ++c) {
    for (const std::string& sig : dcu.controllers[c].latchedInputs) {
      TAUHLS_ASSERT(dcu.producerOf.contains(sig),
                    "consumed completion signal has no producer: " + sig);
      TAUHLS_ASSERT(dcu.producerOf.at(sig) != static_cast<int>(c),
                    "controller consumes its own completion signal: " + sig);
      dcu.consumersOf[sig].insert(static_cast<int>(c));
    }
  }
  return dcu;
}

}  // namespace tauhls::fsm
