// Canonical control-signal naming shared by FSM generation, simulation and
// RTL emission (paper Figs. 5-7):
//   C_<unit>    completion signal of a telescopic unit's generator
//   CCO_<op>    operation-completion signal (C_CO at the producer,
//               C_PO at consumers -- same wire)
//   OF_<op>     operand-fetch signal driving the unit's input muxes
//   RE_<op>     register-enable latching the op's result
#pragma once

#include <string>

#include "sched/binding.hpp"

namespace tauhls::fsm {

std::string unitCompletionSignal(const sched::UnitInstance& unit);
std::string opCompletionSignal(const std::string& opName);
std::string operandFetchSignal(const std::string& opName);
std::string registerEnableSignal(const std::string& opName);

}  // namespace tauhls::fsm
