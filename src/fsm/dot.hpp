// Graphviz export of FSMs (controllers render like the paper's Figs. 2(c)
// and 6: states as circles, transitions labelled "guard / outputs").
#pragma once

#include <string>

#include "fsm/machine.hpp"

namespace tauhls::fsm {

/// Render `fsm` as a DOT digraph; the initial state is double-circled.
std::string toDot(const Fsm& fsm);

}  // namespace tauhls::fsm
