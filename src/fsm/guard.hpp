// Transition guards: sums of products over named boolean signals.
//
// The guard shapes Algorithm 1 needs are conjunctions (C_T AND all C_POs) and
// their negations (NOT(all C_POs) = OR of negated literals), so a small SOP
// representation covers everything, including the synchronized-product guards
// of the centralized baselines.
#pragma once

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

namespace tauhls::fsm {

/// One product term: signal name -> required polarity.
struct GuardTerm {
  std::map<std::string, bool> literals;

  /// True when every literal matches (`asserted` holds the signals at 1).
  bool evaluate(const std::unordered_set<std::string>& asserted) const;

  friend bool operator==(const GuardTerm&, const GuardTerm&) = default;
};

/// Disjunction of product terms.  An empty term list is the constant false;
/// a list containing an empty term is the constant true.
class Guard {
 public:
  /// Constant true.
  static Guard always();
  /// Constant false.
  static Guard never();
  /// Single literal.
  static Guard literal(const std::string& signal, bool positive);
  /// Conjunction of positive literals; empty list -> always().
  static Guard allOf(const std::vector<std::string>& signals);
  /// NOT(allOf(signals)): one negated-literal term per signal; empty -> never().
  static Guard notAllOf(const std::vector<std::string>& signals);

  const std::vector<GuardTerm>& terms() const { return terms_; }

  /// Logical AND (product of sums of products; contradictory terms dropped).
  Guard conjoin(const Guard& other) const;
  /// Logical OR (term concatenation).
  Guard disjoin(const Guard& other) const;

  bool evaluate(const std::unordered_set<std::string>& asserted) const;

  /// All signal names referenced, sorted, deduped.
  std::vector<std::string> signals() const;

  bool isAlways() const;
  bool isNever() const { return terms_.empty(); }

  /// Human-readable form, e.g. "C_mult1&!CCO_O3 | !C_mult1".
  std::string toString() const;

  friend bool operator==(const Guard&, const Guard&) = default;

 private:
  std::vector<GuardTerm> terms_;
};

}  // namespace tauhls::fsm
