#include "fsm/signal_opt.hpp"

#include <algorithm>
#include <set>

namespace tauhls::fsm {

namespace {

/// Rebuild `fsm` keeping only outputs for which `keep` holds.
Fsm filterOutputs(const Fsm& fsm, const std::set<std::string>& removed) {
  Fsm out(fsm.name());
  for (std::size_t i = 0; i < fsm.numStates(); ++i) {
    out.addState(fsm.stateName(static_cast<int>(i)));
  }
  for (const std::string& in : fsm.inputs()) out.addInput(in);
  for (const std::string& o : fsm.outputs()) {
    if (!removed.contains(o)) out.addOutput(o);
  }
  for (const Transition& t : fsm.transitions()) {
    std::vector<std::string> outputs;
    for (const std::string& o : t.outputs) {
      if (!removed.contains(o)) outputs.push_back(o);
    }
    out.addTransition(t.from, t.to, t.guard, std::move(outputs));
  }
  out.setInitial(fsm.initial());
  return out;
}

}  // namespace

DistributedControlUnit optimizeSignals(const DistributedControlUnit& dcu,
                                       SignalOptStats* stats) {
  SignalOptStats local;
  DistributedControlUnit out = dcu;
  for (std::size_t c = 0; c < out.controllers.size(); ++c) {
    UnitController& ctl = out.controllers[c];
    std::set<std::string> removed;
    for (const std::string& o : ctl.fsm.outputs()) {
      if (!o.starts_with("CCO_")) continue;
      auto consumers = dcu.consumersOf.find(o);
      if (consumers == dcu.consumersOf.end() || consumers->second.empty()) {
        removed.insert(o);
        ++local.removedOutputs;
      } else {
        ++local.keptOutputs;
      }
    }
    if (!removed.empty()) {
      ctl.fsm = filterOutputs(ctl.fsm, removed);
      for (const std::string& o : removed) out.producerOf.erase(o);
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace tauhls::fsm
