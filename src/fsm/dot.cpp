#include "fsm/dot.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace tauhls::fsm {

std::string toDot(const Fsm& fsm) {
  std::ostringstream os;
  os << "digraph \"" << fsm.name() << "\" {\n";
  os << "  rankdir=TB;\n";
  for (int s = 0; s < static_cast<int>(fsm.numStates()); ++s) {
    os << "  s" << s << " [shape=" << (s == fsm.initial() ? "doublecircle" : "circle")
       << ",label=\"" << fsm.stateName(s) << "\"];\n";
  }
  for (const Transition& t : fsm.transitions()) {
    os << "  s" << t.from << " -> s" << t.to << " [label=\""
       << t.guard.toString() << " / " << join(t.outputs, " ") << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace tauhls::fsm
