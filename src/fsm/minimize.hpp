// Mealy-machine state minimization by partition refinement.
//
// Two states are equivalent when, for every assignment of the machine's
// inputs, they emit the same output set and step into equivalent states.
// The minimized machine keeps one representative per class and re-targets /
// merges its transitions (guards of merged duplicates are OR-ed).
//
// Used to post-process the explicit CENT-FSM product, whose raw reachable
// state space includes distinctions (e.g. latch contents that no future
// output depends on) a logic synthesizer would collapse -- this makes the
// Table 1 comparison against the paper's hand-derived CENT-FSM fairer.
#pragma once

#include "fsm/machine.hpp"

namespace tauhls::fsm {

/// Minimize `fsm` (must be valid).  Requires <= 16 declared inputs (the
/// refinement enumerates the input alphabet).  The result is validated and
/// behaviourally equivalent (property-tested via compareOnRandomTraces).
Fsm minimizeStates(const Fsm& fsm);

}  // namespace tauhls::fsm
