#include "fsm/signal.hpp"

namespace tauhls::fsm {

std::string unitCompletionSignal(const sched::UnitInstance& unit) {
  return "C_" + unit.name;
}

std::string opCompletionSignal(const std::string& opName) {
  return "CCO_" + opName;
}

std::string operandFetchSignal(const std::string& opName) {
  return "OF_" + opName;
}

std::string registerEnableSignal(const std::string& opName) {
  return "RE_" + opName;
}

}  // namespace tauhls::fsm
