// Algorithm 1 (paper §4.2): derive one synchronous controller per arithmetic
// unit and aggregate them into a distributed global control unit.
//
// Controller shape for a telescopic unit with bound ops O_0..O_n:
//   states  S_i (first execution cycle), S_i' (LD second cycle),
//           R_i (ready-wait, only when O_i has predecessors on other units)
//   guards  over the unit's completion signal C_T and the predecessor
//           completion signals C_PO (= the producers' CCO_* wires)
//   outputs OF_i while executing; RE_i and CCO_i on the completing cycle.
// Non-telescopic units drop C_T and every S_i' (paper §4.2).
//
// Completion signals are single-cycle pulses; consumers latch them (sticky
// completion latches, DESIGN.md §5.1).  The latches live *outside* the FSMs:
// the FSM guard reads the OR of the latch and the live pulse.  The product
// construction (product.hpp) and the FSM interpreter (sim/) both implement
// this latch semantics; the RTL back-end emits one latch per consumed wire.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fsm/machine.hpp"
#include "sched/scheduled_dfg.hpp"

namespace tauhls::fsm {

/// One arithmetic-unit controller plus its wiring metadata.
struct UnitController {
  int unitId = 0;                       ///< binding unit id
  bool telescopic = false;
  Fsm fsm;                              ///< the Algorithm-1 machine
  std::vector<dfg::NodeId> ops;         ///< bound execution sequence
  /// Completion-latch inputs: CCO_* signals read by this controller's guards.
  std::vector<std::string> latchedInputs;

  UnitController() : fsm("unnamed") {}
};

/// The distributed global control unit (paper Fig. 7).
struct DistributedControlUnit {
  std::vector<UnitController> controllers;
  /// External inputs: the telescopic units' completion signals C_<unit>.
  std::vector<std::string> externalInputs;
  /// Controller index producing each inter-controller completion signal.
  std::map<std::string, int> producerOf;
  /// Controller indices consuming each inter-controller completion signal.
  std::map<std::string, std::set<int>> consumersOf;

  /// Total states / flip-flops across controllers (Table 1 reporting).
  std::size_t totalStates() const;
  int totalFlipFlops() const;
  /// Number of completion latches (one per (consumer, signal) pair).
  int completionLatchCount() const;
};

/// Run Algorithm 1 on every unit of the scheduled DFG.  All controllers are
/// validated (deterministic + complete) before returning.
DistributedControlUnit buildDistributed(const sched::ScheduledDfg& s);

}  // namespace tauhls::fsm
