#include "fsm/minimize.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace tauhls::fsm {

namespace {

/// Step result under one input assignment: sorted outputs + target state.
struct Edge {
  std::vector<std::string> outputs;
  int target = 0;
};

}  // namespace

Fsm minimizeStates(const Fsm& fsm) {
  validateFsm(fsm);
  const int numStates = static_cast<int>(fsm.numStates());
  const std::size_t numInputs = fsm.inputs().size();
  TAUHLS_CHECK(numInputs <= 16,
               "state minimization enumerates the input alphabet; too many "
               "inputs in " + fsm.name());

  // Precompute the complete transition table.
  const std::uint64_t alphabet = std::uint64_t{1} << numInputs;
  std::vector<std::vector<Edge>> table(numStates);
  for (int s = 0; s < numStates; ++s) {
    table[s].reserve(alphabet);
    for (std::uint64_t a = 0; a < alphabet; ++a) {
      std::unordered_set<std::string> asserted;
      for (std::size_t i = 0; i < numInputs; ++i) {
        if ((a >> i) & 1) asserted.insert(fsm.inputs()[i]);
      }
      Fsm::StepResult r = fsm.step(s, asserted);
      Edge e;
      e.outputs = std::move(r.outputs);
      std::sort(e.outputs.begin(), e.outputs.end());
      e.target = r.nextState;
      table[s].push_back(std::move(e));
    }
  }

  // Initial partition: by the per-assignment output vectors.
  std::vector<int> classOf(numStates, 0);
  {
    std::map<std::vector<std::vector<std::string>>, int> sig;
    for (int s = 0; s < numStates; ++s) {
      std::vector<std::vector<std::string>> outs;
      outs.reserve(alphabet);
      for (const Edge& e : table[s]) outs.push_back(e.outputs);
      classOf[s] = sig.try_emplace(std::move(outs),
                                   static_cast<int>(sig.size())).first->second;
    }
  }

  // Refine: split classes whose members disagree on target classes.
  for (bool changed = true; changed;) {
    changed = false;
    std::map<std::pair<int, std::vector<int>>, int> sig;
    std::vector<int> next(numStates, 0);
    for (int s = 0; s < numStates; ++s) {
      std::vector<int> targets;
      targets.reserve(alphabet);
      for (const Edge& e : table[s]) targets.push_back(classOf[e.target]);
      next[s] = sig.try_emplace({classOf[s], std::move(targets)},
                                static_cast<int>(sig.size()))
                    .first->second;
    }
    if (static_cast<int>(sig.size()) !=
        *std::max_element(classOf.begin(), classOf.end()) + 1) {
      changed = true;
    }
    classOf = std::move(next);
  }

  const int numClasses =
      *std::max_element(classOf.begin(), classOf.end()) + 1;
  if (numClasses == numStates) return fsm;  // already minimal

  // Representative = lowest-id member; keeps the initial state's class first.
  std::vector<int> repOf(numClasses, -1);
  for (int s = 0; s < numStates; ++s) {
    if (repOf[classOf[s]] == -1) repOf[classOf[s]] = s;
  }

  Fsm out(fsm.name());
  for (int c = 0; c < numClasses; ++c) {
    out.addState(fsm.stateName(repOf[c]));
  }
  for (const std::string& in : fsm.inputs()) out.addInput(in);
  for (const std::string& o : fsm.outputs()) out.addOutput(o);

  // Re-emit the representatives' transitions with retargeted states; merge
  // duplicates (same source/target/outputs) by OR-ing guards.
  for (int c = 0; c < numClasses; ++c) {
    std::map<std::pair<int, std::vector<std::string>>, Guard> merged;
    for (const Transition* t : fsm.transitionsFrom(repOf[c])) {
      std::vector<std::string> outs = t->outputs;
      std::sort(outs.begin(), outs.end());
      auto [it, inserted] =
          merged.try_emplace({classOf[t->to], std::move(outs)}, Guard::never());
      it->second = it->second.disjoin(t->guard);
    }
    for (auto& [key, guard] : merged) {
      out.addTransition(c, key.first, std::move(guard), key.second);
    }
  }
  out.setInitial(classOf[fsm.initial()]);
  validateFsm(out);
  return out;
}

}  // namespace tauhls::fsm
