// Communication-signal optimization (paper Fig. 7: "several communication
// signals are optimized; for example C_CO(0) is removed since any other
// controllers do not receive it").
//
// A controller emits CCO_<op> for every bound op; only the signals some other
// controller actually reads need to leave the chip area.  This pass removes
// unconsumed completion outputs from every controller and reports what it
// dropped (studied by bench/ablation_signal_opt).
#pragma once

#include "fsm/distributed.hpp"

namespace tauhls::fsm {

struct SignalOptStats {
  int removedOutputs = 0;   ///< CCO_* outputs dropped across all controllers
  int keptOutputs = 0;      ///< CCO_* outputs still consumed
};

/// Return a copy of `dcu` with unconsumed completion outputs removed.
DistributedControlUnit optimizeSignals(const DistributedControlUnit& dcu,
                                       SignalOptStats* stats = nullptr);

}  // namespace tauhls::fsm
