// Centralized synchronized baseline (paper §2.2/§4.1, Fig. 4(b)):
// the TAUBM FSM expanded to several TAUs by synchronizing all telescopic
// operations of a time step -- one state S_k per TAUBM step, one extra state
// S_k' entered when *any* TAU op of the step misses SD (guard: NOT of the
// conjunction of the step's unit-completion signals).
#pragma once

#include "fsm/machine.hpp"
#include "sched/scheduled_dfg.hpp"

namespace tauhls::fsm {

/// Build the CENT-SYNC-FSM for a scheduled DFG.
Fsm buildCentSync(const sched::ScheduledDfg& s);

/// The original TAUBM FSM of [1,2] handles a single TAU; with one telescopic
/// unit the synchronized expansion coincides with it (Fig. 2(c)).  This
/// wrapper checks the single-TAU precondition and returns that machine.
Fsm buildTaubmFsm(const sched::ScheduledDfg& s);

}  // namespace tauhls::fsm
