// Composed distributed control for region programs.
//
// Each leaf region keeps the paper's Algorithm-1 controller network exactly
// as in the flat flow (one Mealy FSM per arithmetic unit).  A thin *region
// sequencer* composes them across region boundaries with a start/done
// handshake in the same latency-insensitive style:
//
//   * the sequencer pulses ST_<path> to (re)arm leaf <path>'s network --
//     a loop iteration is literally a re-pulse of the body's restart path;
//   * it waits in a per-activation state until the leaf's DN_<path>
//     completion pulse (the AND of the network's final CCO_* signals,
//     latched like every completion signal);
//   * a conditional forks the successor edges on a SEL_<cond-path> input
//     (guarded activation of exactly one branch);
//   * loops are statically unrolled into distinct wait states (static trip
//     counts), so the sequencer stays a counter-free FSM that validateFsm
//     can prove deterministic and complete.
//
// The sequencer asserts DONE when the last activation completes and wraps
// back to INIT, mirroring the flat controllers' wrap-around restart.
#pragma once

#include <string>
#include <vector>

#include "fsm/distributed.hpp"
#include "sched/region_schedule.hpp"

namespace tauhls::fsm {

/// Start pulse arming leaf <path>'s controller network.
std::string regionStartSignal(const std::string& path);
/// Completion pulse of leaf <path>'s controller network.
std::string regionDoneSignal(const std::string& path);
/// Branch-select input of the conditional at <condPath>; asserted = then.
std::string branchSelectSignal(const std::string& condPath);
/// Whole-program completion pulse of the sequencer.
inline constexpr const char* kSequencerDoneSignal = "DONE";

/// Build the region sequencer for a (validated) program.  Depends only on
/// the program structure, never on schedules.  The returned machine is
/// validated deterministic and complete.
Fsm buildRegionSequencer(const dfg::RegionProgram& program);

/// The static activation list the sequencer's wait states enumerate: leaf
/// paths in traversal order with loops unrolled and *both* conditional
/// branches included (activation k <=> state "W<k>_<path>").
std::vector<std::string> sequencerActivations(const dfg::RegionProgram& program);

/// One leaf's controller network.
struct LeafControl {
  std::string path;
  DistributedControlUnit dcu;
};

/// The composed control structure: per-leaf Algorithm-1 networks plus the
/// sequencer that chains their start/done handshakes.
struct HierarchicalControlUnit {
  std::vector<LeafControl> leaves;  ///< program order
  Fsm sequencer;
  std::vector<std::string> activationPaths;  ///< == sequencerActivations

  const DistributedControlUnit& leaf(const std::string& path) const;
  std::size_t totalStates() const;  ///< leaf controllers + sequencer
  int totalFlipFlops() const;
  int completionLatchCount() const;

  HierarchicalControlUnit() : sequencer("seq") {}
};

/// Algorithm 1 per leaf + the region sequencer.
HierarchicalControlUnit buildHierarchicalControl(const sched::RegionSchedule& rs);

}  // namespace tauhls::fsm
