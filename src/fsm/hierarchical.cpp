#include "fsm/hierarchical.hpp"

#include <utility>

#include "common/error.hpp"

namespace tauhls::fsm {

using dfg::Region;
using dfg::RegionKind;

std::string regionStartSignal(const std::string& path) { return "ST_" + path; }
std::string regionDoneSignal(const std::string& path) { return "DN_" + path; }
std::string branchSelectSignal(const std::string& condPath) {
  return "SEL_" + condPath;
}

namespace {

/// Collect the leaf and conditional paths of the tree (signal declarations).
void collectPaths(const Region& r, const std::string& path,
                  std::vector<std::string>& leafPaths,
                  std::vector<std::string>& condPaths) {
  switch (r.kind) {
    case RegionKind::Leaf:
      leafPaths.push_back(path);
      break;
    case RegionKind::Seq:
      for (std::size_t i = 0; i < r.children.size(); ++i) {
        collectPaths(r.children[i],
                     dfg::childRegionPath(path, "s" + std::to_string(i)),
                     leafPaths, condPaths);
      }
      break;
    case RegionKind::Loop:
      collectPaths(r.children.front(), dfg::childRegionPath(path, "l"),
                   leafPaths, condPaths);
      break;
    case RegionKind::Cond:
      condPaths.push_back(path);
      collectPaths(r.children[0], dfg::childRegionPath(path, "t"), leafPaths,
                   condPaths);
      collectPaths(r.children[1], dfg::childRegionPath(path, "e"), leafPaths,
                   condPaths);
      break;
  }
}

/// A transition waiting for its target state: it leaves `from` under `guard`
/// and will additionally pulse the target leaf's start signal.
struct Pending {
  int from = 0;
  Guard guard;
};

class SequencerBuilder {
 public:
  explicit SequencerBuilder(const dfg::RegionProgram& program)
      : program_(program), fsm_(program.name + "_seq") {}

  Fsm build(std::vector<std::string>* activationsOut) {
    std::vector<std::string> leafPaths, condPaths;
    collectPaths(program_.root, "", leafPaths, condPaths);
    TAUHLS_CHECK(!leafPaths.empty(), "region program has no leaves");
    for (const std::string& p : leafPaths) {
      fsm_.addInput(regionDoneSignal(p));
      fsm_.addOutput(regionStartSignal(p));
    }
    for (const std::string& p : condPaths) {
      fsm_.addInput(branchSelectSignal(p));
    }
    fsm_.addOutput(kSequencerDoneSignal);

    const int init = fsm_.addState("INIT");
    fsm_.setInitial(init);
    std::vector<Pending> entries{{init, Guard::always()}};
    const std::vector<Pending> exits = lower(program_.root, "", entries);
    // Wrap around: the composed machine restarts like the flat controllers.
    for (const Pending& e : exits) {
      fsm_.addTransition(e.from, init, e.guard, {kSequencerDoneSignal});
    }
    validateFsm(fsm_);
    if (activationsOut != nullptr) *activationsOut = activations_;
    return std::move(fsm_);
  }

 private:
  std::vector<Pending> lower(const Region& r, const std::string& path,
                             std::vector<Pending> entries) {
    switch (r.kind) {
      case RegionKind::Leaf: {
        const int k = static_cast<int>(activations_.size());
        activations_.push_back(path);
        const int wait =
            fsm_.addState("W" + std::to_string(k) + "_" + path);
        const std::string start = regionStartSignal(path);
        const std::string done = regionDoneSignal(path);
        for (const Pending& e : entries) {
          fsm_.addTransition(e.from, wait, e.guard, {start});
        }
        fsm_.addTransition(wait, wait, Guard::literal(done, false), {});
        return {{wait, Guard::literal(done, true)}};
      }
      case RegionKind::Seq:
        for (std::size_t i = 0; i < r.children.size(); ++i) {
          entries = lower(r.children[i],
                          dfg::childRegionPath(path, "s" + std::to_string(i)),
                          std::move(entries));
        }
        return entries;
      case RegionKind::Loop:
        // Static unroll: each iteration re-pulses the same leaf networks
        // through fresh wait states.
        for (int k = 0; k < r.tripCount; ++k) {
          entries = lower(r.children.front(), dfg::childRegionPath(path, "l"),
                          std::move(entries));
        }
        return entries;
      case RegionKind::Cond: {
        const Guard sel =
            Guard::literal(branchSelectSignal(path), true);
        const Guard notSel =
            Guard::literal(branchSelectSignal(path), false);
        std::vector<Pending> thenEntries, elseEntries;
        for (const Pending& e : entries) {
          thenEntries.push_back({e.from, e.guard.conjoin(sel)});
          elseEntries.push_back({e.from, e.guard.conjoin(notSel)});
        }
        std::vector<Pending> exits =
            lower(r.children[0], dfg::childRegionPath(path, "t"),
                  std::move(thenEntries));
        std::vector<Pending> elseExits =
            lower(r.children[1], dfg::childRegionPath(path, "e"),
                  std::move(elseEntries));
        exits.insert(exits.end(), elseExits.begin(), elseExits.end());
        return exits;
      }
    }
    TAUHLS_FAIL("unreachable region kind");
  }

  const dfg::RegionProgram& program_;
  Fsm fsm_;
  std::vector<std::string> activations_;
};

}  // namespace

Fsm buildRegionSequencer(const dfg::RegionProgram& program) {
  return SequencerBuilder(program).build(nullptr);
}

std::vector<std::string> sequencerActivations(
    const dfg::RegionProgram& program) {
  std::vector<std::string> activations;
  SequencerBuilder(program).build(&activations);
  return activations;
}

const DistributedControlUnit& HierarchicalControlUnit::leaf(
    const std::string& path) const {
  for (const LeafControl& lc : leaves) {
    if (lc.path == path) return lc.dcu;
  }
  TAUHLS_FAIL("no leaf controller network at region path '" + path + "'");
}

std::size_t HierarchicalControlUnit::totalStates() const {
  std::size_t n = sequencer.numStates();
  for (const LeafControl& lc : leaves) n += lc.dcu.totalStates();
  return n;
}

int HierarchicalControlUnit::totalFlipFlops() const {
  int n = sequencer.flipFlopCount();
  for (const LeafControl& lc : leaves) n += lc.dcu.totalFlipFlops();
  return n;
}

int HierarchicalControlUnit::completionLatchCount() const {
  // Leaf-network latches plus one sticky latch per sequencer DN_* input.
  int n = 0;
  for (const LeafControl& lc : leaves) {
    n += lc.dcu.completionLatchCount() + 1;
  }
  return n;
}

HierarchicalControlUnit buildHierarchicalControl(
    const sched::RegionSchedule& rs) {
  HierarchicalControlUnit hcu;
  std::vector<std::string> activations;
  hcu.sequencer = SequencerBuilder(rs.program).build(&activations);
  hcu.activationPaths = std::move(activations);
  for (const dfg::LeafRef& leaf : dfg::collectLeaves(rs.program)) {
    hcu.leaves.push_back({leaf.path, buildDistributed(rs.leaf(leaf.path))});
  }
  return hcu;
}

}  // namespace tauhls::fsm
