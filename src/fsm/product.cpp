#include "fsm/product.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace tauhls::fsm {

namespace {

/// Composite configuration: one state per controller plus the sticky
/// completion latches, keyed per (controller, signal).
struct Config {
  std::vector<int> states;
  std::set<std::pair<int, std::string>> latches;

  auto operator<=>(const Config&) const = default;

  std::string name(const DistributedControlUnit& dcu) const {
    std::ostringstream os;
    for (std::size_t c = 0; c < states.size(); ++c) {
      if (c != 0) os << "_";
      os << dcu.controllers[c].fsm.stateName(states[c]);
    }
    for (const auto& [c, sig] : latches) os << "+" << c << ":" << sig;
    return os.str();
  }
};

}  // namespace

Fsm buildProduct(const DistributedControlUnit& dcu,
                 const ProductOptions& options, ProductInfo* info) {
  TAUHLS_CHECK(!dcu.controllers.empty(), "product of zero controllers");
  if (info != nullptr) info->controllerStates.clear();
  Fsm product("CENT_FSM");
  for (const std::string& in : dcu.externalInputs) product.addInput(in);

  std::set<std::string> internal;
  for (const auto& [sig, producer] : dcu.producerOf) internal.insert(sig);
  for (const UnitController& c : dcu.controllers) {
    for (const std::string& out : c.fsm.outputs()) {
      if (options.hideInternalSignals && internal.contains(out)) continue;
      product.addOutput(out);
    }
  }

  Config init;
  for (const UnitController& c : dcu.controllers) {
    init.states.push_back(c.fsm.initial());
  }

  std::map<Config, int> stateIds;
  std::queue<Config> frontier;
  auto intern = [&](const Config& cfg) {
    auto it = stateIds.find(cfg);
    if (it != stateIds.end()) return it->second;
    TAUHLS_CHECK(stateIds.size() < options.maxStates,
                 "product state bound exceeded (" +
                     std::to_string(options.maxStates) + ")");
    const int id = product.addState(cfg.name(dcu));
    if (info != nullptr) info->controllerStates.push_back(cfg.states);
    stateIds.emplace(cfg, id);
    frontier.push(cfg);
    return id;
  };
  intern(init);
  product.setInitial(0);

  const std::size_t numExt = dcu.externalInputs.size();
  while (!frontier.empty()) {
    const Config cfg = frontier.front();
    frontier.pop();
    const int fromId = stateIds.at(cfg);

    // Group external assignments by (target, outputs) to merge guards.
    std::map<std::pair<int, std::vector<std::string>>, Guard> merged;

    for (std::uint64_t a = 0; a < (std::uint64_t{1} << numExt); ++a) {
      std::unordered_set<std::string> external;
      for (std::size_t i = 0; i < numExt; ++i) {
        if ((a >> i) & 1) external.insert(dcu.externalInputs[i]);
      }
      // Phase 1: fixpoint of emitted completion pulses.  In the generated
      // controllers output emission does not depend on CCO inputs, so this
      // converges in <= 2 iterations; we iterate defensively.
      std::unordered_set<std::string> emitted;
      for (int iter = 0;; ++iter) {
        TAUHLS_ASSERT(iter < 4, "completion-pulse fixpoint did not converge");
        std::unordered_set<std::string> nextEmitted;
        for (std::size_t c = 0; c < dcu.controllers.size(); ++c) {
          std::unordered_set<std::string> asserted = external;
          for (const std::string& e : emitted) asserted.insert(e);
          for (const auto& [lc, sig] : cfg.latches) {
            if (lc == static_cast<int>(c)) asserted.insert(sig);
          }
          const Fsm::StepResult r =
              dcu.controllers[c].fsm.step(cfg.states[c], asserted);
          for (const std::string& out : r.outputs) {
            if (internal.contains(out)) nextEmitted.insert(out);
          }
        }
        if (nextEmitted == emitted) break;
        emitted = std::move(nextEmitted);
      }
      // Phase 2: final step of every controller; collect next config/outputs.
      Config next;
      next.latches = cfg.latches;
      std::vector<std::string> outputs;
      for (std::size_t c = 0; c < dcu.controllers.size(); ++c) {
        std::unordered_set<std::string> asserted = external;
        for (const std::string& e : emitted) asserted.insert(e);
        for (const auto& [lc, sig] : cfg.latches) {
          if (lc == static_cast<int>(c)) asserted.insert(sig);
        }
        const Transition* fired = nullptr;
        for (const Transition* t :
             dcu.controllers[c].fsm.transitionsFrom(cfg.states[c])) {
          if (t->guard.evaluate(asserted)) {
            fired = t;
            break;
          }
        }
        TAUHLS_ASSERT(fired != nullptr, "controller stuck in product step");
        next.states.push_back(fired->to);
        for (const std::string& out : fired->outputs) {
          if (!(options.hideInternalSignals && internal.contains(out))) {
            outputs.push_back(out);
          }
        }
        // Phase 3: completion latches are level-sensitive -- set by the pulse
        // and held until the iteration-restart strobe (DESIGN.md §5.1), so a
        // later op of the same unit depending on the same producer still sees
        // the completion.
        for (const std::string& sig : dcu.controllers[c].latchedInputs) {
          if (emitted.contains(sig)) {
            next.latches.insert({static_cast<int>(c), sig});
          }
        }
      }
      std::sort(outputs.begin(), outputs.end());
      const int toId = intern(next);

      Guard minterm = Guard::always();
      for (std::size_t i = 0; i < numExt; ++i) {
        minterm =
            minterm.conjoin(Guard::literal(dcu.externalInputs[i], (a >> i) & 1));
      }
      auto [it, inserted] =
          merged.try_emplace({toId, outputs}, Guard::never());
      it->second = it->second.disjoin(minterm);
    }
    for (auto& [key, guard] : merged) {
      product.addTransition(fromId, key.first, std::move(guard), key.second);
    }
  }
  validateFsm(product);
  return product;
}

}  // namespace tauhls::fsm
