#include "fsm/machine.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace tauhls::fsm {

int Fsm::addState(const std::string& stateName) {
  TAUHLS_CHECK(findState(stateName) == -1,
               "duplicate state name: " + stateName);
  states_.push_back(stateName);
  return static_cast<int>(states_.size()) - 1;
}

void Fsm::addInput(const std::string& signal) {
  if (std::find(inputs_.begin(), inputs_.end(), signal) == inputs_.end()) {
    inputs_.push_back(signal);
  }
}

void Fsm::addOutput(const std::string& signal) {
  if (std::find(outputs_.begin(), outputs_.end(), signal) == outputs_.end()) {
    outputs_.push_back(signal);
  }
}

void Fsm::setInitial(int state) {
  TAUHLS_CHECK(state >= 0 && state < static_cast<int>(states_.size()),
               "initial state out of range");
  initial_ = state;
}

void Fsm::addTransition(int from, int to, Guard guard,
                        std::vector<std::string> outputs) {
  TAUHLS_CHECK(from >= 0 && from < static_cast<int>(states_.size()),
               "transition source out of range");
  TAUHLS_CHECK(to >= 0 && to < static_cast<int>(states_.size()),
               "transition target out of range");
  for (const std::string& s : guard.signals()) {
    TAUHLS_CHECK(std::find(inputs_.begin(), inputs_.end(), s) != inputs_.end(),
                 "guard reads undeclared input: " + s);
  }
  for (const std::string& s : outputs) {
    TAUHLS_CHECK(std::find(outputs_.begin(), outputs_.end(), s) != outputs_.end(),
                 "transition asserts undeclared output: " + s);
  }
  transitions_.push_back(Transition{from, to, std::move(guard), std::move(outputs)});
}

const std::string& Fsm::stateName(int state) const {
  TAUHLS_CHECK(state >= 0 && state < static_cast<int>(states_.size()),
               "state id out of range");
  return states_[state];
}

int Fsm::findState(const std::string& stateName) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == stateName) return static_cast<int>(i);
  }
  return -1;
}

std::vector<const Transition*> Fsm::transitionsFrom(int state) const {
  std::vector<const Transition*> out;
  for (const Transition& t : transitions_) {
    if (t.from == state) out.push_back(&t);
  }
  return out;
}

std::vector<std::string> Fsm::inputsUsedBy(int state) const {
  std::vector<std::string> out;
  for (const Transition* t : transitionsFrom(state)) {
    for (const std::string& s : t->guard.signals()) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int Fsm::flipFlopCount() const {
  if (states_.size() <= 1) return states_.empty() ? 0 : 1;
  return std::bit_width(states_.size() - 1);
}

Fsm::StepResult Fsm::step(int state,
                          const std::unordered_set<std::string>& asserted) const {
  const Transition* fired = nullptr;
  for (const Transition* t : transitionsFrom(state)) {
    if (t->guard.evaluate(asserted)) {
      TAUHLS_CHECK(fired == nullptr,
                   "nondeterministic step from state " + stateName(state));
      fired = t;
    }
  }
  TAUHLS_CHECK(fired != nullptr, "no transition fires from state " +
                                     stateName(state) + " in " + name_);
  return StepResult{fired->to, fired->outputs};
}

void validateFsm(const Fsm& fsm) {
  TAUHLS_CHECK(fsm.numStates() > 0, "FSM has no states: " + fsm.name());
  for (int s = 0; s < static_cast<int>(fsm.numStates()); ++s) {
    const std::vector<std::string> used = fsm.inputsUsedBy(s);
    TAUHLS_CHECK(used.size() <= 20,
                 "state reads too many inputs to validate: " + fsm.stateName(s));
    const auto transitions = fsm.transitionsFrom(s);
    TAUHLS_CHECK(!transitions.empty(),
                 "state has no outgoing transitions: " + fsm.stateName(s) +
                     " in " + fsm.name());
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << used.size()); ++a) {
      std::unordered_set<std::string> asserted;
      for (std::size_t i = 0; i < used.size(); ++i) {
        if ((a >> i) & 1) asserted.insert(used[i]);
      }
      int firing = 0;
      for (const Transition* t : transitions) {
        if (t->guard.evaluate(asserted)) ++firing;
      }
      TAUHLS_CHECK(firing == 1,
                   "state " + fsm.stateName(s) + " of " + fsm.name() + " has " +
                       std::to_string(firing) +
                       " firing transitions for some input assignment");
    }
  }
}

std::string describe(const Fsm& fsm) {
  std::ostringstream os;
  os << "fsm " << fsm.name() << "\n";
  os << "  inputs:  " << join(fsm.inputs(), ", ") << "\n";
  os << "  outputs: " << join(fsm.outputs(), ", ") << "\n";
  os << "  initial: " << fsm.stateName(fsm.initial()) << "\n";
  for (const Transition& t : fsm.transitions()) {
    os << "  " << fsm.stateName(t.from) << " -> " << fsm.stateName(t.to) << "  ["
       << t.guard.toString() << "] / " << join(t.outputs, " ") << "\n";
  }
  return os.str();
}

}  // namespace tauhls::fsm
