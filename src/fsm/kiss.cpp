#include "fsm/kiss.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace tauhls::fsm {

std::string toKiss2(const Fsm& fsm) {
  validateFsm(fsm);
  std::ostringstream os;
  os << "# tauhls FSM '" << fsm.name() << "'\n";
  os << "#i " << join(fsm.inputs(), " ") << "\n";
  os << "#o " << join(fsm.outputs(), " ") << "\n";

  // Count product-term rows first (.p header).
  std::size_t rows = 0;
  for (const Transition& t : fsm.transitions()) {
    rows += std::max<std::size_t>(1, t.guard.terms().size());
  }
  os << ".i " << fsm.inputs().size() << "\n";
  os << ".o " << fsm.outputs().size() << "\n";
  os << ".p " << rows << "\n";
  os << ".s " << fsm.numStates() << "\n";
  os << ".r " << fsm.stateName(fsm.initial()) << "\n";

  for (const Transition& t : fsm.transitions()) {
    TAUHLS_CHECK(!t.guard.isNever(),
                 "KISS2 cannot express an unsatisfiable transition");
    std::string outBits(fsm.outputs().size(), '0');
    for (const std::string& o : t.outputs) {
      auto it = std::find(fsm.outputs().begin(), fsm.outputs().end(), o);
      outBits[static_cast<std::size_t>(it - fsm.outputs().begin())] = '1';
    }
    for (const GuardTerm& term : t.guard.terms()) {
      std::string inBits(fsm.inputs().size(), '-');
      for (const auto& [sig, positive] : term.literals) {
        auto it = std::find(fsm.inputs().begin(), fsm.inputs().end(), sig);
        TAUHLS_ASSERT(it != fsm.inputs().end(), "guard signal undeclared");
        inBits[static_cast<std::size_t>(it - fsm.inputs().begin())] =
            positive ? '1' : '0';
      }
      if (inBits.empty()) inBits = "";  // zero-input machines: empty field
      os << inBits << (inBits.empty() ? "" : " ") << fsm.stateName(t.from)
         << " " << fsm.stateName(t.to) << " " << outBits << "\n";
    }
  }
  return os.str();
}

Fsm fromKiss2(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  int numIn = -1;
  int numOut = -1;
  std::string resetState;
  std::vector<std::string> inputNames;
  std::vector<std::string> outputNames;
  struct Row {
    std::string inBits, from, to, outBits;
  };
  std::vector<Row> rowList;

  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    std::string t = trim(line);
    if (t.empty()) continue;
    if (t.rfind("#i ", 0) == 0) {
      inputNames = split(t.substr(3), ' ');
      continue;
    }
    if (t.rfind("#o ", 0) == 0) {
      outputNames = split(t.substr(3), ' ');
      continue;
    }
    if (t[0] == '#') continue;
    if (t[0] == '.') {
      std::istringstream ls(t);
      std::string key;
      ls >> key;
      if (key == ".i") ls >> numIn;
      else if (key == ".o") ls >> numOut;
      else if (key == ".r") ls >> resetState;
      // .p/.s/.e are informational
      continue;
    }
    std::vector<std::string> fields = split(t, ' ');
    Row row;
    if (numIn == 0) {
      TAUHLS_CHECK(fields.size() == 3, "malformed KISS2 row at line " +
                                           std::to_string(lineNo));
      row.inBits = "";
      row.from = fields[0];
      row.to = fields[1];
      row.outBits = fields[2];
    } else {
      TAUHLS_CHECK(fields.size() == 4, "malformed KISS2 row at line " +
                                           std::to_string(lineNo));
      row = Row{fields[0], fields[1], fields[2], fields[3]};
    }
    rowList.push_back(std::move(row));
  }
  TAUHLS_CHECK(numIn >= 0 && numOut >= 0, "KISS2 header (.i/.o) missing");
  TAUHLS_CHECK(!rowList.empty(), "KISS2 description has no product terms");

  if (static_cast<int>(inputNames.size()) != numIn) {
    inputNames.clear();
    for (int i = 0; i < numIn; ++i) inputNames.push_back("in" + std::to_string(i));
  }
  if (static_cast<int>(outputNames.size()) != numOut) {
    outputNames.clear();
    for (int i = 0; i < numOut; ++i) {
      outputNames.push_back("out" + std::to_string(i));
    }
  }

  Fsm fsm(name);
  for (const std::string& i : inputNames) fsm.addInput(i);
  for (const std::string& o : outputNames) fsm.addOutput(o);
  auto stateId = [&fsm](const std::string& s) {
    const int existing = fsm.findState(s);
    return existing >= 0 ? existing : fsm.addState(s);
  };
  // Register the reset state first so it gets id 0 by convention.
  if (!resetState.empty()) stateId(resetState);

  // Merge rows that share (from, to, outputs) back into one transition.
  std::map<std::tuple<int, int, std::string>, Guard> merged;
  for (const Row& row : rowList) {
    TAUHLS_CHECK(static_cast<int>(row.inBits.size()) == numIn,
                 "input cube width mismatch");
    TAUHLS_CHECK(static_cast<int>(row.outBits.size()) == numOut,
                 "output cube width mismatch");
    Guard g = Guard::always();
    for (int i = 0; i < numIn; ++i) {
      const char c = row.inBits[static_cast<std::size_t>(i)];
      if (c == '1' || c == '0') {
        g = g.conjoin(Guard::literal(inputNames[static_cast<std::size_t>(i)],
                                     c == '1'));
      } else {
        TAUHLS_CHECK(c == '-', "invalid input cube character");
      }
    }
    const int from = stateId(row.from);
    const int to = stateId(row.to);
    auto [it, inserted] =
        merged.try_emplace({from, to, row.outBits}, Guard::never());
    it->second = it->second.disjoin(g);
  }
  for (const auto& [key, guard] : merged) {
    const auto& [from, to, outBits] = key;
    std::vector<std::string> outs;
    for (int o = 0; o < numOut; ++o) {
      if (outBits[static_cast<std::size_t>(o)] == '1') {
        outs.push_back(outputNames[static_cast<std::size_t>(o)]);
      }
    }
    fsm.addTransition(from, to, guard, std::move(outs));
  }
  if (!resetState.empty()) fsm.setInitial(fsm.findState(resetState));
  return fsm;
}

}  // namespace tauhls::fsm
