#include "fsm/cent_sync.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "fsm/signal.hpp"

namespace tauhls::fsm {

using dfg::NodeId;

Fsm buildCentSync(const sched::ScheduledDfg& s) {
  Fsm fsm("CENT_SYNC_FSM_" + s.graph.name());
  const auto& steps = s.taubm.steps;
  TAUHLS_CHECK(!steps.empty(), "cannot build an FSM for an empty schedule");

  // Declarations.
  for (int u = 0; u < static_cast<int>(s.binding.numUnits()); ++u) {
    if (s.unitIsTelescopic(u)) {
      fsm.addInput(unitCompletionSignal(s.binding.unit(u)));
    }
  }
  for (NodeId v : s.graph.opIds()) {
    fsm.addOutput(operandFetchSignal(s.graph.node(v).name));
    fsm.addOutput(registerEnableSignal(s.graph.node(v).name));
  }

  // States: S_k per step, S_k' for split steps.
  const int numSteps = static_cast<int>(steps.size());
  std::vector<int> stateS(numSteps), stateSp(numSteps, -1);
  for (int k = 0; k < numSteps; ++k) {
    stateS[k] = fsm.addState(numbered("S", k));
    if (steps[k].split) {
      stateSp[k] = fsm.addState(numbered("S", k) + "p");
    }
  }
  fsm.setInitial(stateS[0]);

  for (int k = 0; k < numSteps; ++k) {
    const sched::TaubmStep& step = steps[k];
    const int next = stateS[(k + 1) % numSteps];

    std::vector<std::string> ofAll;
    std::vector<std::string> reAll;
    std::vector<std::string> ofTau;
    std::vector<std::string> reTau;
    std::vector<std::string> reFixed;
    for (NodeId v : step.ops) {
      const std::string& name = s.graph.node(v).name;
      ofAll.push_back(operandFetchSignal(name));
      reAll.push_back(registerEnableSignal(name));
      const bool isTau = std::find(step.tauOps.begin(), step.tauOps.end(), v) !=
                         step.tauOps.end();
      (isTau ? ofTau : reFixed)
          .push_back(isTau ? operandFetchSignal(name)
                           : registerEnableSignal(name));
      if (isTau) reTau.push_back(registerEnableSignal(name));
    }

    if (!step.split) {
      std::vector<std::string> out = ofAll;
      out.insert(out.end(), reAll.begin(), reAll.end());
      fsm.addTransition(stateS[k], next, Guard::always(), std::move(out));
      continue;
    }
    // Completion signals of the units executing the step's TAU ops.
    std::vector<std::string> cs;
    for (NodeId v : step.tauOps) {
      cs.push_back(unitCompletionSignal(s.binding.unit(s.binding.unitOf(v))));
    }
    std::sort(cs.begin(), cs.end());
    cs.erase(std::unique(cs.begin(), cs.end()), cs.end());

    // All TAU ops hit SD: the whole step retires in one cycle.
    std::vector<std::string> fastOut = ofAll;
    fastOut.insert(fastOut.end(), reAll.begin(), reAll.end());
    fsm.addTransition(stateS[k], next, Guard::allOf(cs), std::move(fastOut));
    // Some TAU op missed SD: fixed ops retire now, TAU ops spend T_k'.
    std::vector<std::string> slowOut = ofAll;
    slowOut.insert(slowOut.end(), reFixed.begin(), reFixed.end());
    fsm.addTransition(stateS[k], stateSp[k], Guard::notAllOf(cs),
                      std::move(slowOut));
    std::vector<std::string> secondOut = ofTau;
    secondOut.insert(secondOut.end(), reTau.begin(), reTau.end());
    fsm.addTransition(stateSp[k], next, Guard::always(), std::move(secondOut));
  }
  validateFsm(fsm);
  return fsm;
}

Fsm buildTaubmFsm(const sched::ScheduledDfg& s) {
  int telescopicUnits = 0;
  for (int u = 0; u < static_cast<int>(s.binding.numUnits()); ++u) {
    if (s.unitIsTelescopic(u)) ++telescopicUnits;
  }
  TAUHLS_CHECK(telescopicUnits <= 1,
               "the original TAUBM FSM is defined for a single TAU; use "
               "buildCentSync or buildDistributed for more");
  Fsm fsm = buildCentSync(s);
  // Rename to reflect the construction it reproduces (Fig. 2(c)).
  Fsm renamed("TAUBM_FSM_" + s.graph.name());
  for (std::size_t i = 0; i < fsm.numStates(); ++i) {
    renamed.addState(fsm.stateName(static_cast<int>(i)));
  }
  for (const std::string& in : fsm.inputs()) renamed.addInput(in);
  for (const std::string& out : fsm.outputs()) renamed.addOutput(out);
  for (const Transition& t : fsm.transitions()) {
    renamed.addTransition(t.from, t.to, t.guard, t.outputs);
  }
  renamed.setInitial(fsm.initial());
  return renamed;
}

}  // namespace tauhls::fsm
