// KISS2 import/export -- the standard academic FSM interchange format
// (SIS / espresso / STAMINA toolchains), so the generated controllers can be
// fed to external sequential-synthesis tools and external machines can be
// pulled into this library.
//
// Emission: one KISS2 product-term row per guard term,
//   <input cube> <current state> <next state> <output bits>
// with '-' for inputs absent from the term.  Because tauhls guards are sums
// of products, a transition with k terms becomes k rows.
#pragma once

#include <string>

#include "fsm/machine.hpp"

namespace tauhls::fsm {

/// Serialize to KISS2.  Signal order in the cubes follows fsm.inputs() /
/// fsm.outputs(); a header comment records the signal names.
std::string toKiss2(const Fsm& fsm);

/// Parse a KISS2 description produced by toKiss2 (or a compatible tool).
/// Input/output signal names are taken from the tauhls header comments when
/// present, else synthesized as in0..  Throws tauhls::Error on malformed text.
Fsm fromKiss2(const std::string& text, const std::string& name = "kiss");

}  // namespace tauhls::fsm
