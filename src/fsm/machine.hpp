// Mealy finite-state machine IR for the synthesized controllers.
//
// States, declared input/output signals, and guarded transitions carrying an
// output-signal set.  Well-formedness = for every state and every assignment
// of the inputs its guards read, *exactly one* outgoing transition fires
// (deterministic and complete) -- verified explicitly by validateFsm.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "fsm/guard.hpp"

namespace tauhls::fsm {

struct Transition {
  int from = 0;
  int to = 0;
  Guard guard;
  std::vector<std::string> outputs;  ///< signals asserted during the cycle
};

class Fsm {
 public:
  explicit Fsm(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declare a state; returns its id.  Names must be unique.
  int addState(const std::string& stateName);
  /// Declare an input/output signal (idempotent).
  void addInput(const std::string& signal);
  void addOutput(const std::string& signal);

  void setInitial(int state);
  int initial() const { return initial_; }

  /// Add a transition; guard signals must be declared inputs, output signals
  /// declared outputs, endpoints valid states.
  void addTransition(int from, int to, Guard guard,
                     std::vector<std::string> outputs);

  std::size_t numStates() const { return states_.size(); }
  const std::string& stateName(int state) const;
  int findState(const std::string& stateName) const;  ///< -1 when absent

  const std::vector<std::string>& inputs() const { return inputs_; }
  const std::vector<std::string>& outputs() const { return outputs_; }
  const std::vector<Transition>& transitions() const { return transitions_; }
  std::vector<const Transition*> transitionsFrom(int state) const;

  /// Input signals read by some guard leaving `state`, sorted, deduped.
  std::vector<std::string> inputsUsedBy(int state) const;

  /// Flip-flops of a binary-encoded implementation: ceil(log2(numStates)).
  int flipFlopCount() const;

  struct StepResult {
    int nextState = 0;
    std::vector<std::string> outputs;
  };

  /// Execute one clock cycle from `state` with the given asserted inputs.
  /// Throws when zero or multiple transitions fire (ill-formed machine).
  StepResult step(int state, const std::unordered_set<std::string>& asserted) const;

 private:
  std::string name_;
  std::vector<std::string> states_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<Transition> transitions_;
  int initial_ = 0;
};

/// Throw unless every state is deterministic and complete over every
/// assignment of the inputs its guards read.
void validateFsm(const Fsm& fsm);

/// Multi-line dump (states, transitions with guards/outputs) for docs/tests.
std::string describe(const Fsm& fsm);

}  // namespace tauhls::fsm
