// CENT-FSM (paper §4.1, Fig. 4(a)): the fully-concurrent centralized FSM,
// built as the reachable synchronous product of the distributed unit
// controllers with the inter-controller completion signals (and their sticky
// latches) internalized.  Its state count grows exponentially with the number
// of concurrently-active TAUs -- the effect the paper argues motivates the
// distributed structure.
#pragma once

#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"

namespace tauhls::fsm {

struct ProductOptions {
  /// Drop internalized CCO_* wires from the product's output alphabet.
  bool hideInternalSignals = true;
  /// Abort (throw) when the reachable state count exceeds this bound.
  std::size_t maxStates = 200000;
};

/// Per-product-state decomposition, for clients that need to map composite
/// states back to controller configurations (the static model checker keys
/// its restart analysis on "every controller at its initial state").
struct ProductInfo {
  /// [product state] -> per-controller FSM state ids.
  std::vector<std::vector<int>> controllerStates;
};

/// Build the explicit product machine.  The composite state includes every
/// controller's state and the contents of all completion latches, so the
/// product is behaviourally equivalent to the distributed implementation
/// (property-tested in tests/test_fsm_product.cpp).  `info`, when non-null,
/// receives the state decomposition.
Fsm buildProduct(const DistributedControlUnit& dcu,
                 const ProductOptions& options = {},
                 ProductInfo* info = nullptr);

}  // namespace tauhls::fsm
