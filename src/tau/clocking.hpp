// Clock-cycle derivation (paper Fig. 2 caption: CC is set by worst-case fixed
// delays, CC_TAU by the telescopic units' short delays).
#pragma once

#include "tau/library.hpp"

namespace tauhls::tau {

/// The telescopic system clock CC_TAU: the maximum over all registered
/// classes of SD (telescopic) / FD (fixed).  Every operation then takes an
/// integral number of CC_TAU cycles.
double tauClockNs(const ResourceLibrary& lib);

/// The conventional clock CC a non-telescopic design would use: max over
/// worst-case delays (LD / FD).
double conventionalClockNs(const ResourceLibrary& lib);

/// Cycles an operation of `type` takes at clock `clockNs` when its operands
/// fall in the short-delay class (`shortClass`) or not.  ceil(delay/clock).
int cyclesFor(const UnitType& type, bool shortClass, double clockNs);

}  // namespace tauhls::tau
