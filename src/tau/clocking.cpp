#include "tau/clocking.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tauhls::tau {

double tauClockNs(const ResourceLibrary& lib) {
  double clock = 0.0;
  for (dfg::ResourceClass cls : lib.classes()) {
    clock = std::max(clock, lib.typeFor(cls).shortDelayNs);
  }
  TAUHLS_CHECK(clock > 0.0, "resource library is empty");
  return clock;
}

double conventionalClockNs(const ResourceLibrary& lib) {
  double clock = 0.0;
  for (dfg::ResourceClass cls : lib.classes()) {
    clock = std::max(clock, lib.typeFor(cls).worstDelayNs());
  }
  TAUHLS_CHECK(clock > 0.0, "resource library is empty");
  return clock;
}

int cyclesFor(const UnitType& type, bool shortClass, double clockNs) {
  TAUHLS_CHECK(clockNs > 0.0, "clock period must be positive");
  const double delay = shortClass ? type.shortDelayNs : type.longDelayNs;
  // Tolerate exact multiples despite floating-point representation.
  return static_cast<int>(std::ceil(delay / clockNs - 1e-9));
}

}  // namespace tauhls::tau
