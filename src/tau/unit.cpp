#include "tau/unit.hpp"

#include "common/error.hpp"

namespace tauhls::tau {

UnitType fixedUnit(std::string name, dfg::ResourceClass cls, double delayNs) {
  UnitType t;
  t.name = std::move(name);
  t.cls = cls;
  t.telescopic = false;
  t.shortDelayNs = delayNs;
  t.longDelayNs = delayNs;
  t.sdProbability = 1.0;
  validateUnitType(t);
  return t;
}

UnitType telescopicUnit(std::string name, dfg::ResourceClass cls, double sdNs,
                        double ldNs, double p) {
  UnitType t;
  t.name = std::move(name);
  t.cls = cls;
  t.telescopic = true;
  t.shortDelayNs = sdNs;
  t.longDelayNs = ldNs;
  t.sdProbability = p;
  validateUnitType(t);
  return t;
}

void validateUnitType(const UnitType& type) {
  TAUHLS_CHECK(!type.name.empty(), "unit type needs a name");
  TAUHLS_CHECK(type.cls != dfg::ResourceClass::None,
               "unit type needs a resource class");
  TAUHLS_CHECK(type.shortDelayNs > 0.0, "unit delay must be positive");
  TAUHLS_CHECK(type.longDelayNs >= type.shortDelayNs,
               "long delay must be >= short delay");
  TAUHLS_CHECK(type.sdProbability >= 0.0 && type.sdProbability <= 1.0,
               "SD probability must be within [0,1]");
  if (!type.telescopic) {
    TAUHLS_CHECK(type.longDelayNs == type.shortDelayNs,
                 "fixed units have a single delay");
  }
}

}  // namespace tauhls::tau
