#include "tau/library.hpp"

#include "common/error.hpp"

namespace tauhls::tau {

void ResourceLibrary::registerType(const UnitType& type) {
  validateUnitType(type);
  types_[type.cls] = type;
}

const UnitType& ResourceLibrary::typeFor(dfg::ResourceClass cls) const {
  auto it = types_.find(cls);
  TAUHLS_CHECK(it != types_.end(),
               std::string("no unit type registered for class ") +
                   dfg::resourceClassName(cls));
  return it->second;
}

std::vector<dfg::ResourceClass> ResourceLibrary::classes() const {
  std::vector<dfg::ResourceClass> out;
  out.reserve(types_.size());
  for (const auto& [cls, type] : types_) out.push_back(cls);
  return out;
}

bool ResourceLibrary::hasTelescopicTypes() const {
  for (const auto& [cls, type] : types_) {
    if (type.telescopic) return true;
  }
  return false;
}

ResourceLibrary paperLibrary(double p) {
  ResourceLibrary lib;
  lib.registerType(
      telescopicUnit("tau_mult", dfg::ResourceClass::Multiplier, 15.0, 20.0, p));
  lib.registerType(fixedUnit("adder", dfg::ResourceClass::Adder, 15.0));
  lib.registerType(fixedUnit("subtractor", dfg::ResourceClass::Subtractor, 15.0));
  return lib;
}

}  // namespace tauhls::tau
