// Arithmetic-unit delay models (paper §2.1, Fig. 1).
//
// A *telescopic* arithmetic unit (TAU) completes in SD (short delay) for a
// conservative subset of input operands and LD (long delay, the worst case)
// otherwise; its completion-signal generator raises C within the first clock
// cycle exactly for the SD class.  A *fixed* unit always takes its fixed
// delay FD.  The fraction of operands falling in the SD class is the unit's
// `sdProbability` P -- the paper's key workload parameter.
#pragma once

#include <string>

#include "dfg/op.hpp"

namespace tauhls::tau {

struct UnitType {
  std::string name;                                     ///< e.g. "tau_mult"
  dfg::ResourceClass cls = dfg::ResourceClass::None;    ///< ops it executes
  bool telescopic = false;                              ///< has SD/LD behaviour
  double shortDelayNs = 0.0;                            ///< SD (or FD when fixed)
  double longDelayNs = 0.0;                             ///< LD (== SD when fixed)
  double sdProbability = 1.0;                           ///< P; 1.0 for fixed units

  /// Worst-case delay (LD for TAUs, FD for fixed units).
  double worstDelayNs() const { return longDelayNs; }
};

/// Build a fixed-delay unit type (FD = `delayNs`).
UnitType fixedUnit(std::string name, dfg::ResourceClass cls, double delayNs);

/// Build a telescopic unit type.  Requires 0 < sdNs <= ldNs and 0 <= p <= 1.
UnitType telescopicUnit(std::string name, dfg::ResourceClass cls, double sdNs,
                        double ldNs, double p);

/// Validate invariants (positive delays, SD <= LD, P in [0,1], class set);
/// throws tauhls::Error on violation.
void validateUnitType(const UnitType& type);

}  // namespace tauhls::tau
