// Resource library: one UnitType per resource class (paper §6 lists such a
// library as the substrate of the envisioned HLS tool).
#pragma once

#include <map>
#include <vector>

#include "tau/unit.hpp"

namespace tauhls::tau {

class ResourceLibrary {
 public:
  /// Register (or replace) the unit type implementing a resource class.
  void registerType(const UnitType& type);

  bool has(dfg::ResourceClass cls) const { return types_.contains(cls); }
  const UnitType& typeFor(dfg::ResourceClass cls) const;
  std::vector<dfg::ResourceClass> classes() const;

  /// True when at least one registered type is telescopic.
  bool hasTelescopicTypes() const;

 private:
  std::map<dfg::ResourceClass, UnitType> types_;
};

/// The library used throughout the paper's evaluation (§5, Table 2 footnote):
/// telescopic multiplier with SD = 15 ns, LD = 20 ns and SD-ratio `p`;
/// fixed adder and subtractor with FD = 15 ns.
ResourceLibrary paperLibrary(double p = 0.5);

}  // namespace tauhls::tau
