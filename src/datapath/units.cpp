#include "datapath/units.hpp"

#include "common/error.hpp"

namespace tauhls::datapath {

BitLevelLibrary::BitLevelLibrary(int width, int mulMagnitudeBudget)
    : width_(width), mulGen_(width, mulMagnitudeBudget) {
  TAUHLS_CHECK(width >= 1 && width <= 32,
               "bit-level library word width must be 1..32");
}

Value BitLevelLibrary::compute(dfg::OpKind kind, Value a, Value b) const {
  return applyOp(kind, a, b, width_);
}

bool BitLevelLibrary::multiplierShortClass(Value a, Value b) const {
  return mulGen_.predictShort(a, b);
}

}  // namespace tauhls::datapath
