// Bit-level functional unit models for the controller-driven datapath: every
// telescopic multiplier carries the leading-zero completion generator of
// bitlevel/, so the SD/LD class of each multiplication is decided by the
// *actual operand values* flowing through the datapath rather than a
// Bernoulli(P) coin -- the full Fig. 1 contract.
#pragma once

#include "bitlevel/completion.hpp"
#include "datapath/value.hpp"

namespace tauhls::datapath {

class BitLevelLibrary {
 public:
  /// `width` <= 32 (array-multiplier model limit); `mulMagnitudeBudget`
  /// parameterizes the multiplier's completion generator.
  BitLevelLibrary(int width, int mulMagnitudeBudget);

  int width() const { return width_; }

  /// Functional result of an op on this library's word width.
  Value compute(dfg::OpKind kind, Value a, Value b) const;

  /// The telescopic multiplier's completion verdict for these operands
  /// (true => the op finishes within SD, one clock cycle).
  bool multiplierShortClass(Value a, Value b) const;

  const bitlevel::MultiplierCompletionGenerator& multiplierGenerator() const {
    return mulGen_;
  }

 private:
  int width_;
  bitlevel::MultiplierCompletionGenerator mulGen_;
};

}  // namespace tauhls::datapath
