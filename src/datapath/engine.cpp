#include "datapath/engine.hpp"

#include <cctype>
#include <set>
#include <unordered_set>

#include "common/error.hpp"
#include "fsm/signal.hpp"

namespace tauhls::datapath {

using dfg::NodeId;

namespace {

/// Parse "S<i>" / "S<i>p" / "R<i>"; kind 'S' = first execution cycle.
struct ParsedState {
  char kind = '?';
  int index = -1;
};

ParsedState parseState(const std::string& name) {
  ParsedState p;
  if (name.size() < 2) return p;
  const bool primed = name.back() == 'p';
  const std::string digits = name.substr(1, name.size() - 1 - (primed ? 1 : 0));
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return p;
  }
  p.index = std::stoi(digits);
  if (name[0] == 'S') p.kind = primed ? 'P' : 'S';
  if (name[0] == 'R' && !primed) p.kind = 'R';
  return p;
}

}  // namespace

ExecutionResult execute(const fsm::DistributedControlUnit& dcu,
                        const sched::ScheduledDfg& s,
                        const std::vector<Value>& inputValues,
                        const BitLevelLibrary& lib, int maxCycles) {
  TAUHLS_CHECK(inputValues.size() == s.graph.numNodes(),
               "inputValues must be indexed by NodeId");
  const std::size_t n = dcu.controllers.size();

  ExecutionResult result;
  result.values.assign(s.graph.numNodes(), 0);
  result.realizedClasses.shortClass.assign(s.graph.numNodes(), true);

  const Value mask =
      lib.width() == 64 ? ~Value{0} : ((Value{1} << lib.width()) - 1);
  std::vector<bool> valueReady(s.graph.numNodes(), false);
  for (NodeId v : s.graph.inputIds()) {
    result.values[v] = inputValues[v] & mask;
    valueReady[v] = true;
  }

  // Fetch the operands of `op`; enforces the datapath safety property.
  auto fetch = [&](NodeId op) {
    const dfg::Node& node = s.graph.node(op);
    std::pair<Value, Value> operands{0, 0};
    TAUHLS_CHECK(valueReady[node.operands[0]],
                 "operand fetched before its producer completed: " +
                     s.graph.node(node.operands[0]).name + " -> " + node.name);
    operands.first = result.values[node.operands[0]];
    if (node.operands.size() > 1) {
      TAUHLS_CHECK(valueReady[node.operands[1]],
                   "operand fetched before its producer completed: " +
                       s.graph.node(node.operands[1]).name + " -> " + node.name);
      operands.second = result.values[node.operands[1]];
    }
    return operands;
  };

  std::vector<int> state(n);
  std::vector<std::set<std::string>> latches(n);
  for (std::size_t c = 0; c < n; ++c) state[c] = dcu.controllers[c].fsm.initial();

  std::set<std::string> pendingRe;
  for (NodeId v : s.graph.opIds()) {
    pendingRe.insert(fsm::registerEnableSignal(s.graph.node(v).name));
  }

  for (int cycle = 0; cycle < maxCycles && !pendingRe.empty(); ++cycle) {
    // Datapath: each telescopic unit in a first execution cycle consults its
    // completion generator on the live operand values.
    std::unordered_set<std::string> external;
    for (std::size_t c = 0; c < n; ++c) {
      const fsm::UnitController& ctl = dcu.controllers[c];
      if (!ctl.telescopic) continue;
      const ParsedState p = parseState(ctl.fsm.stateName(state[c]));
      if (p.kind != 'S') continue;
      const NodeId op = ctl.ops[p.index];
      if (pendingRe.contains(fsm::registerEnableSignal(s.graph.node(op).name)) ==
          false) {
        continue;  // wrapped into iteration 2; no fresh operands to certify
      }
      const auto [a, b] = fetch(op);
      const bool sd = lib.multiplierShortClass(a, b);
      result.realizedClasses.shortClass[op] = sd;
      if (sd) {
        external.insert(fsm::unitCompletionSignal(s.binding.unit(ctl.unitId)));
      }
    }
    // Completion-pulse fixpoint (as in sim::runDistributed).
    std::unordered_set<std::string> emitted;
    for (int iter = 0;; ++iter) {
      TAUHLS_ASSERT(iter < 4, "completion-pulse fixpoint did not converge");
      std::unordered_set<std::string> next;
      for (std::size_t c = 0; c < n; ++c) {
        std::unordered_set<std::string> asserted = external;
        asserted.insert(emitted.begin(), emitted.end());
        asserted.insert(latches[c].begin(), latches[c].end());
        const auto r = dcu.controllers[c].fsm.step(state[c], asserted);
        for (const std::string& o : r.outputs) {
          if (o.starts_with("CCO_")) next.insert(o);
        }
      }
      if (next == emitted) break;
      emitted = std::move(next);
    }
    // Commit: advance controllers; on RE_i latch the computed value.
    for (std::size_t c = 0; c < n; ++c) {
      std::unordered_set<std::string> asserted = external;
      asserted.insert(emitted.begin(), emitted.end());
      asserted.insert(latches[c].begin(), latches[c].end());
      const auto r = dcu.controllers[c].fsm.step(state[c], asserted);
      state[c] = r.nextState;
      for (const std::string& o : r.outputs) {
        if (!o.starts_with("RE_")) continue;
        if (!pendingRe.erase(o)) continue;  // iteration-2 wrap: ignore
        const NodeId op = s.graph.findByName(o.substr(3));
        TAUHLS_ASSERT(op != dfg::kNoNode, "RE for unknown op");
        const auto [a, b] = fetch(op);
        result.values[op] = lib.compute(s.graph.node(op).kind, a, b);
        valueReady[op] = true;
      }
      for (const std::string& sig : dcu.controllers[c].latchedInputs) {
        if (emitted.contains(sig)) latches[c].insert(sig);
      }
    }
    result.latencyCycles = cycle + 1;
  }
  TAUHLS_CHECK(pendingRe.empty(),
               "datapath execution did not finish within the cycle bound");
  return result;
}

}  // namespace tauhls::datapath
