#include "datapath/value.hpp"

#include "common/error.hpp"
#include "dfg/analysis.hpp"

namespace tauhls::datapath {

namespace {
Value maskOf(int width) {
  TAUHLS_CHECK(width >= 1 && width <= 64, "word width must be 1..64");
  return width == 64 ? ~Value{0} : ((Value{1} << width) - 1);
}
}  // namespace

Value applyOp(dfg::OpKind kind, Value a, Value b, int width) {
  const Value mask = maskOf(width);
  TAUHLS_CHECK((a & ~mask) == 0 && (b & ~mask) == 0,
               "operand exceeds the word width");
  switch (kind) {
    case dfg::OpKind::Add: return (a + b) & mask;
    case dfg::OpKind::Sub: return (a - b) & mask;
    case dfg::OpKind::Mul: return (a * b) & mask;
    case dfg::OpKind::Div: return b == 0 ? mask : (a / b);  // saturate on /0
    case dfg::OpKind::Compare: return a < b ? 1 : 0;
    case dfg::OpKind::Shift: return (a << (b & 63)) & mask;
    case dfg::OpKind::And: return a & b;
    case dfg::OpKind::Or: return a | b;
    case dfg::OpKind::Xor: return a ^ b;
    case dfg::OpKind::Neg: return (~a + 1) & mask;
    case dfg::OpKind::Input: break;
  }
  TAUHLS_FAIL("applyOp on a non-operation node");
}

std::vector<Value> evaluateDfg(const dfg::Dfg& g,
                               const std::vector<Value>& inputValues,
                               int width) {
  TAUHLS_CHECK(inputValues.size() == g.numNodes(),
               "inputValues must be indexed by NodeId");
  std::vector<Value> values(g.numNodes(), 0);
  for (dfg::NodeId v : dfg::topologicalOrder(g)) {
    const dfg::Node& n = g.node(v);
    if (n.kind == dfg::OpKind::Input) {
      values[v] = inputValues[v] & maskOf(width);
      continue;
    }
    const Value a = values[n.operands[0]];
    const Value b = n.operands.size() > 1 ? values[n.operands[1]] : 0;
    values[v] = applyOp(n.kind, a, b, width);
  }
  return values;
}

}  // namespace tauhls::datapath
