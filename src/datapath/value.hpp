// Functional (golden) evaluation of dataflow graphs over fixed-width
// unsigned words -- the reference the controller-driven datapath execution
// (engine.hpp) is checked against.
#pragma once

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"

namespace tauhls::datapath {

using Value = std::uint64_t;

/// Apply one operation on `width`-bit words (result reduced mod 2^width;
/// Compare yields 0/1; Neg uses only `a`).
Value applyOp(dfg::OpKind kind, Value a, Value b, int width);

/// Evaluate the whole graph.  `inputValues` is indexed by NodeId and must
/// supply a value (< 2^width) for every Input node; returns per-node values.
std::vector<Value> evaluateDfg(const dfg::Dfg& g,
                               const std::vector<Value>& inputValues,
                               int width);

}  // namespace tauhls::datapath
