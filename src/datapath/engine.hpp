// Controller-driven, value-accurate datapath execution.
//
// Runs the generated distributed control unit cycle by cycle (same latch and
// pulse semantics as sim::runDistributed) while a register-transfer datapath
// executes underneath: while a controller sits in S_i, its unit computes
// O_i's value from the producer registers; a telescopic unit raises C_<unit>
// exactly when the completion generator certifies the current operands; on
// the completing transition (RE_i) the result is latched into O_i's register.
//
// Integration properties (tests/test_datapath.cpp):
//   * every register ends up equal to the golden evaluateDfg value;
//   * the realized SD/LD classes match the completion generator's verdicts;
//   * the measured latency equals the abstract makespan under exactly those
//     realized classes.
#pragma once

#include <vector>

#include "datapath/units.hpp"
#include "fsm/distributed.hpp"
#include "sim/classes.hpp"

namespace tauhls::datapath {

struct ExecutionResult {
  std::vector<Value> values;            ///< per node, after one iteration
  sim::OperandClasses realizedClasses;  ///< SD verdicts actually observed
  int latencyCycles = 0;
};

/// Execute one DFG iteration.  `inputValues` is indexed by NodeId (Input
/// nodes only are read).  Throws if the control unit deadlocks or an op
/// fetches an operand whose producer has not completed (would indicate a
/// controller bug -- this is the datapath-level safety property).
ExecutionResult execute(const fsm::DistributedControlUnit& dcu,
                        const sched::ScheduledDfg& s,
                        const std::vector<Value>& inputValues,
                        const BitLevelLibrary& lib, int maxCycles = 100000);

}  // namespace tauhls::datapath
