#include "regalloc/lifetime.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tauhls::regalloc {

using dfg::NodeId;

namespace {

std::vector<Lifetime> lifetimesFrom(const sched::ScheduledDfg& s,
                                    const std::vector<int>& earliestFinish,
                                    const std::vector<int>& latestFinish) {
  std::vector<Lifetime> out;
  for (NodeId v = 0; v < s.graph.numNodes(); ++v) {
    Lifetime lt;
    lt.value = v;
    lt.writeCycle = s.graph.isInput(v) ? -1 : earliestFinish[v];
    int lastRead = lt.writeCycle;
    for (NodeId consumer : s.graph.dataSuccessors(v)) {
      lastRead = std::max(lastRead, latestFinish[consumer]);
    }
    // Primary outputs (and any unconsumed value) stay valid one extra cycle
    // so the environment can sample them.
    if (s.graph.dataSuccessors(v).empty()) lastRead = lt.writeCycle + 1;
    lt.lastReadCycle = lastRead;
    TAUHLS_ASSERT(lt.lastReadCycle >= lt.writeCycle, "inverted lifetime");
    out.push_back(lt);
  }
  return out;
}

}  // namespace

std::vector<Lifetime> distributedLifetimes(const sched::ScheduledDfg& s) {
  const std::vector<int> earliest =
      sim::distributedFinishCycles(s, sim::allShort(s));
  const std::vector<int> latest =
      sim::distributedFinishCycles(s, sim::allLong(s));
  return lifetimesFrom(s, earliest, latest);
}

std::vector<Lifetime> syncLifetimes(const sched::ScheduledDfg& s) {
  // Deterministic worst-case step timing: cumulative cycle at which each
  // TAUBM step ends when every split step spends both halves.
  std::vector<int> stepEnd(s.taubm.steps.size(), 0);
  int cycle = 0;
  for (std::size_t k = 0; k < s.taubm.steps.size(); ++k) {
    cycle += s.taubm.steps[k].split ? 2 : 1;
    stepEnd[k] = cycle - 1;
  }
  std::vector<int> finish(s.graph.numNodes(), 0);
  for (NodeId v = 0; v < s.graph.numNodes(); ++v) {
    if (s.graph.isOp(v)) {
      finish[v] = stepEnd[static_cast<std::size_t>(s.steps.stepOf[v])];
    }
  }
  return lifetimesFrom(s, finish, finish);
}

}  // namespace tauhls::regalloc
