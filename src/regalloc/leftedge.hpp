// Left-edge register allocation (Hashimoto-Stevens / Kurdahi-Parker): sort
// values by write time and greedily pack each into the first register whose
// last occupant has retired.  On interval conflict graphs this is optimal:
// the register count equals the maximum number of simultaneously-live
// values (asserted by the tests).
#pragma once

#include "regalloc/lifetime.hpp"

namespace tauhls::regalloc {

struct RegisterAllocation {
  int numRegisters = 0;
  /// Register index per node id; -1 for nodes without a lifetime entry.
  std::vector<int> registerOf;
};

/// Allocate registers for the given lifetimes (`numNodes` sizes the map).
RegisterAllocation leftEdgeRegisters(const std::vector<Lifetime>& lifetimes,
                                     std::size_t numNodes);

/// Maximum number of simultaneously-live values -- the lower bound any
/// allocation must meet.
int maxLiveValues(const std::vector<Lifetime>& lifetimes);

/// Throws unless no two values sharing a register have overlapping
/// occupancy intervals (write, lastRead].
void validateAllocation(const std::vector<Lifetime>& lifetimes,
                        const RegisterAllocation& alloc);

}  // namespace tauhls::regalloc
