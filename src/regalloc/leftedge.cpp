#include "regalloc/leftedge.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace tauhls::regalloc {

RegisterAllocation leftEdgeRegisters(const std::vector<Lifetime>& lifetimes,
                                     std::size_t numNodes) {
  RegisterAllocation alloc;
  alloc.registerOf.assign(numNodes, -1);

  std::vector<const Lifetime*> order;
  order.reserve(lifetimes.size());
  for (const Lifetime& lt : lifetimes) {
    TAUHLS_CHECK(lt.value < numNodes, "lifetime value id out of range");
    order.push_back(&lt);
  }
  std::sort(order.begin(), order.end(),
            [](const Lifetime* a, const Lifetime* b) {
              if (a->writeCycle != b->writeCycle) {
                return a->writeCycle < b->writeCycle;
              }
              return a->value < b->value;
            });

  std::vector<int> retireOf;  // per register: lastReadCycle of its occupant
  for (const Lifetime* lt : order) {
    int chosen = -1;
    for (std::size_t r = 0; r < retireOf.size(); ++r) {
      // (write, lastRead] intervals: reuse allowed when the previous value's
      // last read is no later than this value's write edge.
      if (retireOf[r] <= lt->writeCycle) {
        chosen = static_cast<int>(r);
        break;
      }
    }
    if (chosen == -1) {
      chosen = static_cast<int>(retireOf.size());
      retireOf.push_back(0);
    }
    retireOf[static_cast<std::size_t>(chosen)] = lt->lastReadCycle;
    alloc.registerOf[lt->value] = chosen;
  }
  alloc.numRegisters = static_cast<int>(retireOf.size());
  validateAllocation(lifetimes, alloc);
  return alloc;
}

int maxLiveValues(const std::vector<Lifetime>& lifetimes) {
  // Sweep the (write, lastRead] intervals: +1 just after write, -1 after
  // lastRead.
  std::map<int, int> delta;
  for (const Lifetime& lt : lifetimes) {
    delta[lt.writeCycle + 1] += 1;
    delta[lt.lastReadCycle + 1] -= 1;
  }
  int live = 0;
  int best = 0;
  for (const auto& [cycle, d] : delta) {
    live += d;
    best = std::max(best, live);
  }
  return best;
}

void validateAllocation(const std::vector<Lifetime>& lifetimes,
                        const RegisterAllocation& alloc) {
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    const Lifetime& a = lifetimes[i];
    TAUHLS_CHECK(alloc.registerOf[a.value] >= 0, "value left unallocated");
    TAUHLS_CHECK(alloc.registerOf[a.value] < alloc.numRegisters,
                 "register index out of range");
    for (std::size_t j = i + 1; j < lifetimes.size(); ++j) {
      const Lifetime& b = lifetimes[j];
      if (alloc.registerOf[a.value] != alloc.registerOf[b.value]) continue;
      const bool disjoint =
          a.lastReadCycle <= b.writeCycle || b.lastReadCycle <= a.writeCycle;
      TAUHLS_CHECK(disjoint, "overlapping lifetimes share a register");
    }
  }
}

}  // namespace tauhls::regalloc
