// Value-lifetime analysis for datapath register allocation.
//
// Under the distributed control unit, operation start times vary with the
// operand classes, so a register-sharing decision must hold for *every*
// execution.  We use the sound conservative interval per value:
//   write    = earliest possible production  (all-SD finish cycle)
//   lastRead = latest possible consumption   (all-LD consumer finish cycle;
//              operands must stay stable through an LD second cycle)
// A value occupies its register over (write, lastRead]: the write happens on
// the clock edge ending `write`, reads complete by the edge ending
// `lastRead`, so intervals that merely touch may share.
//
// Primary inputs are written at cycle -1 (available from reset) and read
// like any operand; unconsumed values (primary outputs) are held one cycle
// past their production.
#pragma once

#include <vector>

#include "sim/makespan.hpp"

namespace tauhls::regalloc {

struct Lifetime {
  dfg::NodeId value = 0;
  int writeCycle = 0;     ///< cycle whose ending edge writes the register
  int lastReadCycle = 0;  ///< last cycle during which the value is consumed
};

/// Conservative lifetimes under the distributed controllers (see above).
std::vector<Lifetime> distributedLifetimes(const sched::ScheduledDfg& s);

/// Lifetimes under the CENT-SYNC schedule (deterministic per the worst-case
/// TAUBM step timing: every split step charged both halves).
std::vector<Lifetime> syncLifetimes(const sched::ScheduledDfg& s);

}  // namespace tauhls::regalloc
