#include "synth/encoding.hpp"

#include "common/error.hpp"

namespace tauhls::synth {

int Encoding::stateOf(std::uint32_t code) const {
  for (std::size_t s = 0; s < codeOf.size(); ++s) {
    if (codeOf[s] == code) return static_cast<int>(s);
  }
  return -1;
}

Encoding encodeStates(const fsm::Fsm& fsm, EncodingStyle style) {
  TAUHLS_CHECK(fsm.numStates() > 0, "cannot encode an empty FSM");
  Encoding e;
  e.style = style;
  if (style == EncodingStyle::Binary) {
    e.bits = fsm.flipFlopCount();
    for (std::uint32_t s = 0; s < fsm.numStates(); ++s) e.codeOf.push_back(s);
  } else {
    e.bits = static_cast<int>(fsm.numStates());
    for (std::uint32_t s = 0; s < fsm.numStates(); ++s) {
      e.codeOf.push_back(std::uint32_t{1} << s);
    }
  }
  return e;
}

}  // namespace tauhls::synth
