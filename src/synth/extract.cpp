#include "synth/extract.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "logic/minimize.hpp"
#include "logic/truth_table.hpp"

namespace tauhls::synth {

namespace {

/// States reachable from the initial state through any transition.
std::vector<bool> reachableStates(const fsm::Fsm& fsm) {
  std::vector<bool> seen(fsm.numStates(), false);
  std::queue<int> q;
  q.push(fsm.initial());
  seen[fsm.initial()] = true;
  while (!q.empty()) {
    int s = q.front();
    q.pop();
    for (const fsm::Transition* t : fsm.transitionsFrom(s)) {
      if (!seen[t->to]) {
        seen[t->to] = true;
        q.push(t->to);
      }
    }
  }
  return seen;
}

}  // namespace

int SynthesizedFsm::totalLiterals() const {
  int n = 0;
  for (const logic::Cover& c : nextStateLogic) n += c.literalCount();
  for (const logic::Cover& c : outputLogic) n += c.literalCount();
  return n;
}

SynthesizedFsm synthesize(const fsm::Fsm& fsm, EncodingStyle style) {
  fsm::validateFsm(fsm);
  const Encoding enc = encodeStates(fsm, style);
  const int numInputs = static_cast<int>(fsm.inputs().size());
  const int numVars = enc.bits + numInputs;
  TAUHLS_CHECK(numVars <= 22,
               "FSM too large for explicit logic extraction: " + fsm.name());

  const std::vector<bool> reachable = reachableStates(fsm);

  SynthesizedFsm out;
  out.name = fsm.name();
  out.numInputs = numInputs;
  out.numOutputs = static_cast<int>(fsm.outputs().size());
  out.numStates = static_cast<int>(fsm.numStates());
  out.flipFlops = enc.bits;

  // One truth table per next-state bit and per output.
  std::vector<logic::TruthTable> nextBits(enc.bits, logic::TruthTable(numVars));
  std::vector<logic::TruthTable> outBits(fsm.outputs().size(),
                                         logic::TruthTable(numVars));

  const std::uint64_t rows = std::uint64_t{1} << numVars;
  for (std::uint64_t row = 0; row < rows; ++row) {
    const std::uint32_t code =
        static_cast<std::uint32_t>(row & ((std::uint64_t{1} << enc.bits) - 1));
    const int state = enc.stateOf(code);
    const bool careRow = state >= 0 && reachable[state];
    if (!careRow) {
      for (auto& tt : nextBits) tt.set(row, logic::Ternary::DontCare);
      for (auto& tt : outBits) tt.set(row, logic::Ternary::DontCare);
      continue;
    }
    std::unordered_set<std::string> asserted;
    for (int i = 0; i < numInputs; ++i) {
      if ((row >> (enc.bits + i)) & 1) asserted.insert(fsm.inputs()[i]);
    }
    const fsm::Fsm::StepResult r = fsm.step(state, asserted);
    const std::uint32_t nextCode = enc.codeOf[r.nextState];
    for (int b = 0; b < enc.bits; ++b) {
      nextBits[b].set(row, ((nextCode >> b) & 1) ? logic::Ternary::One
                                                 : logic::Ternary::Zero);
    }
    for (std::size_t o = 0; o < fsm.outputs().size(); ++o) {
      const bool on = std::find(r.outputs.begin(), r.outputs.end(),
                                fsm.outputs()[o]) != r.outputs.end();
      outBits[o].set(row, on ? logic::Ternary::One : logic::Ternary::Zero);
    }
  }

  for (const logic::TruthTable& tt : nextBits) {
    out.nextStateLogic.push_back(logic::minimize(tt));
  }
  for (const logic::TruthTable& tt : outBits) {
    out.outputLogic.push_back(logic::minimize(tt));
  }
  return out;
}

}  // namespace tauhls::synth
