#include "synth/extract.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "logic/minimize.hpp"
#include "logic/truth_table.hpp"

namespace tauhls::synth {

std::vector<bool> reachableStates(const fsm::Fsm& fsm) {
  std::vector<bool> seen(fsm.numStates(), false);
  std::queue<int> q;
  q.push(fsm.initial());
  seen[fsm.initial()] = true;
  while (!q.empty()) {
    int s = q.front();
    q.pop();
    for (const fsm::Transition* t : fsm.transitionsFrom(s)) {
      if (!seen[t->to]) {
        seen[t->to] = true;
        q.push(t->to);
      }
    }
  }
  return seen;
}

int SynthesizedFsm::totalLiterals() const {
  int n = 0;
  for (const logic::Cover& c : nextStateLogic) n += c.literalCount();
  for (const logic::Cover& c : outputLogic) n += c.literalCount();
  return n;
}

SynthesizedFsm synthesize(const fsm::Fsm& fsm, EncodingStyle style) {
  fsm::validateFsm(fsm);
  const Encoding enc = encodeStates(fsm, style);
  const int numInputs = static_cast<int>(fsm.inputs().size());
  const int numVars = enc.bits + numInputs;
  TAUHLS_CHECK(numVars <= 22,
               "FSM too large for explicit logic extraction: " + fsm.name());

  const std::vector<bool> reachable = reachableStates(fsm);

  SynthesizedFsm out;
  out.name = fsm.name();
  out.numInputs = numInputs;
  out.numOutputs = static_cast<int>(fsm.outputs().size());
  out.numStates = static_cast<int>(fsm.numStates());
  out.flipFlops = enc.bits;

  // One truth table per next-state bit and per output.
  std::vector<logic::TruthTable> nextBits(enc.bits, logic::TruthTable(numVars));
  std::vector<logic::TruthTable> outBits(fsm.outputs().size(),
                                         logic::TruthTable(numVars));

  // Compile every guard to (care, value) bitmask terms over the input
  // variables and every output list to per-index flags, so the 2^numVars
  // row sweep below is integer compares instead of per-row string-set
  // construction and Fsm::step guard evaluation.  validateFsm has already
  // proven exactly one transition fires per assignment, so first-match is
  // the unique match and the rows are identical to stepping the machine.
  // Gated with the minimizer on the MinimizerImpl hook so the kernel
  // benchmark's naive regime measures the original per-row stepping.
  const bool fastSweep = logic::minimizerImpl() == logic::MinimizerImpl::Fast;
  std::unordered_map<std::string, int> inputIndex;
  for (int i = 0; i < numInputs; ++i) inputIndex.emplace(fsm.inputs()[i], i);
  std::unordered_map<std::string, std::size_t> outputIndex;
  for (std::size_t o = 0; o < fsm.outputs().size(); ++o) {
    outputIndex.emplace(fsm.outputs()[o], o);
  }
  struct CompiledTransition {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> terms;  // care, value
    std::uint32_t nextCode = 0;
    std::vector<char> outputOn;
  };
  std::vector<std::vector<CompiledTransition>> compiled(
      fastSweep ? fsm.numStates() : 0);
  for (std::size_t s = 0; s < compiled.size(); ++s) {
    for (const fsm::Transition* t : fsm.transitionsFrom(static_cast<int>(s))) {
      CompiledTransition ct;
      for (const fsm::GuardTerm& term : t->guard.terms()) {
        std::uint64_t care = 0;
        std::uint64_t value = 0;
        for (const auto& [sig, positive] : term.literals) {
          const std::uint64_t bit = std::uint64_t{1} << inputIndex.at(sig);
          care |= bit;
          if (positive) value |= bit;
        }
        ct.terms.emplace_back(care, value);
      }
      ct.nextCode = enc.codeOf[t->to];
      ct.outputOn.assign(fsm.outputs().size(), 0);
      for (const std::string& sig : t->outputs) {
        ct.outputOn[outputIndex.at(sig)] = 1;
      }
      compiled[s].push_back(std::move(ct));
    }
  }

  const std::uint64_t rows = std::uint64_t{1} << numVars;
  for (std::uint64_t row = 0; row < rows; ++row) {
    const std::uint32_t code =
        static_cast<std::uint32_t>(row & ((std::uint64_t{1} << enc.bits) - 1));
    const int state = enc.stateOf(code);
    const bool careRow = state >= 0 && reachable[state];
    if (!careRow) {
      for (auto& tt : nextBits) tt.set(row, logic::Ternary::DontCare);
      for (auto& tt : outBits) tt.set(row, logic::Ternary::DontCare);
      continue;
    }
    std::uint32_t nextCode = 0;
    if (fastSweep) {
      const std::uint64_t inputBits = row >> enc.bits;
      const CompiledTransition* fired = nullptr;
      for (const CompiledTransition& ct :
           compiled[static_cast<std::size_t>(state)]) {
        for (const auto& [care, value] : ct.terms) {
          if ((inputBits & care) == value) {
            fired = &ct;
            break;
          }
        }
        if (fired != nullptr) break;
      }
      TAUHLS_CHECK(fired != nullptr, "no transition fires from state " +
                                         fsm.stateName(state) + " in " +
                                         fsm.name());
      nextCode = fired->nextCode;
      for (std::size_t o = 0; o < fsm.outputs().size(); ++o) {
        outBits[o].set(row, fired->outputOn[o] ? logic::Ternary::One
                                               : logic::Ternary::Zero);
      }
    } else {
      std::unordered_set<std::string> asserted;
      for (int i = 0; i < numInputs; ++i) {
        if ((row >> (enc.bits + i)) & 1) asserted.insert(fsm.inputs()[i]);
      }
      const fsm::Fsm::StepResult r = fsm.step(state, asserted);
      nextCode = enc.codeOf[r.nextState];
      for (std::size_t o = 0; o < fsm.outputs().size(); ++o) {
        const bool on = std::find(r.outputs.begin(), r.outputs.end(),
                                  fsm.outputs()[o]) != r.outputs.end();
        outBits[o].set(row, on ? logic::Ternary::One : logic::Ternary::Zero);
      }
    }
    for (int b = 0; b < enc.bits; ++b) {
      nextBits[b].set(row, ((nextCode >> b) & 1) ? logic::Ternary::One
                                                 : logic::Ternary::Zero);
    }
  }

  for (const logic::TruthTable& tt : nextBits) {
    out.nextStateLogic.push_back(logic::minimize(tt));
  }
  for (const logic::TruthTable& tt : outBits) {
    out.outputLogic.push_back(logic::minimize(tt));
  }
  return out;
}

}  // namespace tauhls::synth
