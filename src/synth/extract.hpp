// Next-state / output logic extraction and two-level minimization.
//
// Variables of every extracted function, LSB first: the encoded state bits,
// then the declared input signals.  Rows whose state-bit pattern decodes to
// no state (or to an unreachable one) are don't-cares, which is where binary
// encoding recovers area.  Each function is minimized with the logic module
// (exact QM up to 14 variables, heuristic expansion beyond) and re-verified
// against its specification.
#pragma once

#include <string>
#include <vector>

#include "logic/cover.hpp"
#include "synth/encoding.hpp"

namespace tauhls::synth {

struct SynthesizedFsm {
  std::string name;
  int numInputs = 0;
  int numOutputs = 0;
  int numStates = 0;
  int flipFlops = 0;
  std::vector<logic::Cover> nextStateLogic;  ///< one cover per state bit
  std::vector<logic::Cover> outputLogic;     ///< one cover per output signal

  /// Total literals of the minimized next-state + output network.
  int totalLiterals() const;
};

/// States reachable from the initial state through any transition.  This is
/// exactly the care-set predicate of the minimizer's don't-care rows, so the
/// don't-care-soundness checker (verify/dcs_check.hpp) can re-derive the
/// care set the covers were minimized against.
std::vector<bool> reachableStates(const fsm::Fsm& fsm);

/// Synthesize `fsm` (which must be valid: deterministic and complete).
SynthesizedFsm synthesize(const fsm::Fsm& fsm,
                          EncodingStyle style = EncodingStyle::Binary);

}  // namespace tauhls::synth
