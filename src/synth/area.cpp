#include "synth/area.hpp"

namespace tauhls::synth {

AreaRow areaRow(const std::string& name, const fsm::Fsm& fsm,
                EncodingStyle style) {
  const SynthesizedFsm s = synthesize(fsm, style);
  AreaRow row;
  row.name = name;
  row.inputs = s.numInputs;
  row.outputs = s.numOutputs;
  row.states = s.numStates;
  row.flipFlops = s.flipFlops;
  row.combArea = s.totalLiterals() * kAreaPerLiteral;
  row.seqArea = s.flipFlops * kAreaPerFlipFlop;
  return row;
}

DistributedAreaReport distributedArea(const fsm::DistributedControlUnit& dcu,
                                      EncodingStyle style) {
  DistributedAreaReport report;
  report.completionLatches = dcu.completionLatchCount();
  AreaRow total;
  total.name = "DIST-FSM";
  for (const fsm::UnitController& c : dcu.controllers) {
    AreaRow row = areaRow("D-FSM-" + c.fsm.name().substr(6), c.fsm, style);
    total.inputs += row.inputs;
    total.outputs += row.outputs;
    total.states += row.states;
    total.flipFlops += row.flipFlops;
    total.combArea += row.combArea;
    total.seqArea += row.seqArea;
    report.perController.push_back(std::move(row));
  }
  // Completion latches: one FF each, charged to the aggregate.
  total.flipFlops += report.completionLatches;
  total.seqArea += report.completionLatches * kAreaPerFlipFlop;
  report.total = total;
  return report;
}

}  // namespace tauhls::synth
