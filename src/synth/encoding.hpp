// State encoding for FSM synthesis.
#pragma once

#include <cstdint>
#include <vector>

#include "fsm/machine.hpp"

namespace tauhls::synth {

enum class EncodingStyle {
  Binary,  ///< minimal-length binary, codes assigned in state-id order
  OneHot,  ///< one flip-flop per state
};

struct Encoding {
  EncodingStyle style = EncodingStyle::Binary;
  int bits = 0;                        ///< flip-flop count
  std::vector<std::uint32_t> codeOf;   ///< per state id

  /// State id for `code`; -1 when the code is unused (a don't-care row).
  int stateOf(std::uint32_t code) const;
};

Encoding encodeStates(const fsm::Fsm& fsm, EncodingStyle style);

}  // namespace tauhls::synth
