// Technology-independent area model (Table 1).
//
// Combinational area = minimized literal count x kAreaPerLiteral.
// Sequential area   = flip-flop count x kAreaPerFlipFlop.
// kAreaPerFlipFlop = 22 is recovered exactly from the paper's own Table 1
// sequential numbers (5 FF -> 110, 3 FF -> 66, 2 FF -> 44); the literal
// weight is the standard 2-transistor-pair gate-equivalent proxy.
#pragma once

#include <string>
#include <vector>

#include "fsm/distributed.hpp"
#include "synth/extract.hpp"

namespace tauhls::synth {

inline constexpr int kAreaPerLiteral = 2;
inline constexpr int kAreaPerFlipFlop = 22;

/// One row of the Table 1 report.
struct AreaRow {
  std::string name;
  int inputs = 0;
  int outputs = 0;
  int states = 0;
  int flipFlops = 0;
  int combArea = 0;
  int seqArea = 0;

  int totalArea() const { return combArea + seqArea; }
};

/// Synthesize one FSM and summarize it.
AreaRow areaRow(const std::string& name, const fsm::Fsm& fsm,
                EncodingStyle style = EncodingStyle::Binary);

/// Aggregate report for a distributed control unit: one row per unit
/// controller plus a summary row ("DIST-FSM") that also charges the
/// completion latches (one FF each) to the sequential area.
struct DistributedAreaReport {
  std::vector<AreaRow> perController;
  AreaRow total;           ///< includes completion-latch FFs
  int completionLatches = 0;
};

DistributedAreaReport distributedArea(const fsm::DistributedControlUnit& dcu,
                                      EncodingStyle style = EncodingStyle::Binary);

}  // namespace tauhls::synth
