#include "logic/cube.hpp"

#include <bit>
#include <vector>

#include "common/error.hpp"

namespace tauhls::logic {

namespace {
std::uint64_t varsMask(int numVars) {
  return numVars == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << numVars) - 1);
}
}  // namespace

Cube::Cube(int numVars, std::uint64_t care, std::uint64_t value)
    : numVars_(numVars), care_(care), value_(value & care) {}

Cube Cube::full(int numVars) {
  TAUHLS_CHECK(numVars >= 0 && numVars <= 64, "cube supports 0..64 variables");
  return Cube(numVars, 0, 0);
}

Cube Cube::minterm(int numVars, std::uint64_t assignment) {
  TAUHLS_CHECK(numVars >= 0 && numVars <= 64, "cube supports 0..64 variables");
  const std::uint64_t mask = varsMask(numVars);
  TAUHLS_CHECK((assignment & ~mask) == 0, "assignment uses unknown variables");
  return Cube(numVars, mask, assignment);
}

void Cube::setLiteral(int var, bool positive) {
  TAUHLS_CHECK(var >= 0 && var < numVars_, "literal index out of range");
  const std::uint64_t bit = std::uint64_t{1} << var;
  care_ |= bit;
  if (positive) {
    value_ |= bit;
  } else {
    value_ &= ~bit;
  }
}

void Cube::dropLiteral(int var) {
  TAUHLS_CHECK(var >= 0 && var < numVars_, "literal index out of range");
  const std::uint64_t bit = std::uint64_t{1} << var;
  care_ &= ~bit;
  value_ &= ~bit;
}

bool Cube::hasLiteral(int var) const {
  TAUHLS_CHECK(var >= 0 && var < numVars_, "literal index out of range");
  return (care_ >> var) & 1;
}

bool Cube::literalPositive(int var) const {
  TAUHLS_CHECK(hasLiteral(var), "variable is not a literal of this cube");
  return (value_ >> var) & 1;
}

int Cube::numLiterals() const { return std::popcount(care_); }

bool Cube::covers(std::uint64_t assignment) const {
  return (assignment & care_) == value_;
}

bool Cube::contains(const Cube& other) const {
  TAUHLS_ASSERT(numVars_ == other.numVars_, "cube arity mismatch");
  // Every literal of this cube must be a literal of `other` with equal polarity.
  if ((care_ & other.care_) != care_) return false;
  return (other.value_ & care_) == value_;
}

bool Cube::intersects(const Cube& other) const {
  TAUHLS_ASSERT(numVars_ == other.numVars_, "cube arity mismatch");
  const std::uint64_t common = care_ & other.care_;
  return (value_ & common) == (other.value_ & common);
}

std::optional<Cube> Cube::merge(const Cube& other) const {
  TAUHLS_ASSERT(numVars_ == other.numVars_, "cube arity mismatch");
  if (care_ != other.care_) return std::nullopt;
  const std::uint64_t diff = value_ ^ other.value_;
  if (std::popcount(diff) != 1) return std::nullopt;
  Cube merged = *this;
  merged.care_ &= ~diff;
  merged.value_ &= ~diff;
  return merged;
}

std::uint64_t Cube::size() const {
  return std::uint64_t{1} << (numVars_ - numLiterals());
}

std::vector<std::uint64_t> Cube::minterms() const {
  // Enumerate assignments of the free (non-care) variables.
  std::vector<int> freeVars;
  for (int v = 0; v < numVars_; ++v) {
    if (!((care_ >> v) & 1)) freeVars.push_back(v);
  }
  std::vector<std::uint64_t> out;
  out.reserve(std::size_t{1} << freeVars.size());
  for (std::uint64_t k = 0; k < (std::uint64_t{1} << freeVars.size()); ++k) {
    std::uint64_t m = value_;
    for (std::size_t i = 0; i < freeVars.size(); ++i) {
      if ((k >> i) & 1) m |= std::uint64_t{1} << freeVars[i];
    }
    out.push_back(m);
  }
  return out;
}

std::string Cube::toString() const {
  std::string s;
  s.reserve(static_cast<std::size_t>(numVars_));
  for (int v = 0; v < numVars_; ++v) {
    if (!hasLiteral(v)) {
      s += '-';
    } else {
      s += literalPositive(v) ? '1' : '0';
    }
  }
  return s;
}

}  // namespace tauhls::logic
