// Explicit truth table with don't-cares, for single-output functions of up to
// 24 variables (16M rows).  FSM logic extraction produces one of these per
// next-state bit / output signal.
#pragma once

#include <cstdint>
#include <vector>

namespace tauhls::logic {

enum class Ternary : std::uint8_t { Zero = 0, One = 1, DontCare = 2 };

class TruthTable {
 public:
  /// All-zero table (offset everywhere).
  explicit TruthTable(int numVars);

  int numVars() const { return numVars_; }
  std::uint64_t numRows() const { return std::uint64_t{1} << numVars_; }

  Ternary get(std::uint64_t row) const;
  void set(std::uint64_t row, Ternary v);

  std::vector<std::uint64_t> onset() const;
  std::vector<std::uint64_t> offset() const;
  std::vector<std::uint64_t> dcset() const;

  /// True when the function is constant 0/1 over the care set.
  bool constantOverCareSet(bool& valueOut) const;

 private:
  int numVars_;
  std::vector<std::uint8_t> rows_;
};

}  // namespace tauhls::logic
