// A cube (product term) over up to 64 boolean variables.
//
// Represented as a pair of bitmasks: `care` marks variables that appear as
// literals; for those, the matching bit of `value` selects the positive (1)
// or negative (0) literal.  A cube with empty care set is the constant 1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tauhls::logic {

class Cube {
 public:
  /// The tautology cube over `numVars` variables (no literals).
  static Cube full(int numVars);

  /// The minterm cube matching exactly `assignment` (all variables care).
  static Cube minterm(int numVars, std::uint64_t assignment);

  int numVars() const { return numVars_; }
  std::uint64_t careMask() const { return care_; }
  std::uint64_t valueMask() const { return value_; }

  /// Add/replace the literal of `var` (0-based).
  void setLiteral(int var, bool positive);
  /// Remove the literal of `var` (variable becomes don't-care in the cube).
  void dropLiteral(int var);
  /// True when `var` appears as a literal.
  bool hasLiteral(int var) const;
  /// True when `var` appears as a *positive* literal (requires hasLiteral).
  bool literalPositive(int var) const;

  /// Number of literals in the product term.
  int numLiterals() const;

  /// True when the cube evaluates to 1 under the given variable assignment.
  bool covers(std::uint64_t assignment) const;

  /// True when every minterm of `other` is also a minterm of this cube.
  bool contains(const Cube& other) const;

  /// True when the two cubes share at least one minterm.
  bool intersects(const Cube& other) const;

  /// Quine-McCluskey adjacency merge: succeeds when both cubes have the same
  /// care set and differ in exactly one care bit; the result drops that bit.
  std::optional<Cube> merge(const Cube& other) const;

  /// Number of minterms covered (2^(numVars - numLiterals)).
  std::uint64_t size() const;

  /// Enumerate covered minterms in ascending order.
  std::vector<std::uint64_t> minterms() const;

  /// "1-0" positional string (index 0 leftmost; '-' = absent).
  std::string toString() const;

  friend bool operator==(const Cube&, const Cube&) = default;

 private:
  Cube(int numVars, std::uint64_t care, std::uint64_t value);

  int numVars_ = 0;
  std::uint64_t care_ = 0;
  std::uint64_t value_ = 0;
};

}  // namespace tauhls::logic
