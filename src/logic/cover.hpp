// A cover (sum of products) over up to 64 variables.
#pragma once

#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace tauhls::logic {

class Cover {
 public:
  explicit Cover(int numVars) : numVars_(numVars) {}

  int numVars() const { return numVars_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  bool empty() const { return cubes_.empty(); }
  std::size_t numCubes() const { return cubes_.size(); }

  /// Append a product term (arity-checked).
  void add(const Cube& cube);

  /// OR-evaluate under a full variable assignment.
  bool evaluate(std::uint64_t assignment) const;

  /// Total literal count -- the technology-independent combinational-area
  /// proxy used throughout the synth module.
  int literalCount() const;

  /// Remove cubes contained in another cube of the cover (single-cube
  /// containment; keeps the first of equal cubes).
  void removeContained();

  /// Multi-line "1-0-" representation, one cube per line.
  std::string toString() const;

 private:
  int numVars_;
  std::vector<Cube> cubes_;
};

}  // namespace tauhls::logic
