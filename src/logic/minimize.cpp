#include "logic/minimize.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <mutex>
#include <numeric>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/error.hpp"

namespace tauhls::logic {

namespace {

struct CubeKey {
  std::uint64_t care;
  std::uint64_t value;
  auto operator<=>(const CubeKey&) const = default;
};

}  // namespace

std::vector<Cube> primeImplicants(const TruthTable& tt) {
  TAUHLS_CHECK(tt.numVars() <= 14, "primeImplicants limited to 14 variables");
  // Level 0: all onset + dc minterms as cubes.
  std::vector<Cube> current;
  for (std::uint64_t r = 0; r < tt.numRows(); ++r) {
    if (tt.get(r) != Ternary::Zero) {
      current.push_back(Cube::minterm(tt.numVars(), r));
    }
  }
  const int vars = tt.numVars();
  const std::size_t space = std::size_t{1} << vars;

  // Scratch reused across levels.
  //  * upperPos/upperEpoch: direct-index (valueMask -> sorted position) map
  //    for the current upper bucket; epoch stamps avoid clearing.
  //  * dedup: one bit per (care, value) pair.  A level-k cube has exactly
  //    vars-k care bits, so keys never repeat across levels and the bitmap
  //    is never cleared; with vars <= 14 it is at most 2^28 bits (32 MiB),
  //    and at the <= 14-variable sizes minimizeExact admits it replaces one
  //    hash insert per generated cube with a test-and-set.
  std::vector<std::uint32_t> upperPos(space, 0);
  std::vector<std::uint32_t> upperEpoch(space, 0);
  std::uint32_t epoch = 0;
  std::vector<std::uint64_t> dedup((space * space + 63) / 64, 0);

  std::vector<Cube> primes;
  while (!current.empty()) {
    const std::size_t n = current.size();
    // Recover the reference bucket order -- (care mask, value popcount)
    // ascending, original index ascending within a bucket -- with one sort
    // of precomputed packed keys instead of a node-based map of vectors.
    // pc(value) <= 14 fits in 4 bits; index tie-break keeps it stable.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> order(n);
    for (std::size_t i = 0; i < n; ++i) {
      order[i] = {(current[i].careMask() << 4) |
                      static_cast<std::uint64_t>(
                          std::popcount(current[i].valueMask())),
                  static_cast<std::uint32_t>(i)};
    }
    std::sort(order.begin(), order.end());
    std::vector<std::size_t> groupStart;
    for (std::size_t k = 0; k < n; ++k) {
      if (k == 0 || order[k].first != order[k - 1].first) {
        groupStart.push_back(k);
      }
    }
    groupStart.push_back(n);

    std::vector<bool> merged(n, false);
    std::vector<Cube> next;
    for (std::size_t g = 0; g + 2 < groupStart.size() + 1; ++g) {
      const std::size_t lo = groupStart[g];
      const std::size_t hi = groupStart[g + 1];
      // The adjacent bucket (same care, popcount + 1), if it exists, is the
      // very next group in the sorted order.
      if (hi == n) continue;
      if (order[hi].first != order[lo].first + 1) continue;
      const std::uint64_t care = order[lo].first >> 4;
      const std::size_t upperHi = groupStart[g + 2];

      // Each upper cube is identified by its value mask (unique within a
      // bucket), so i's merge partners are direct lookups: flip one clear
      // care bit of i's value.
      ++epoch;
      for (std::size_t k = hi; k < upperHi; ++k) {
        const std::uint64_t value = current[order[k].second].valueMask();
        upperPos[value] = static_cast<std::uint32_t>(k);
        upperEpoch[value] = epoch;
      }
      std::vector<std::pair<std::size_t, int>> partners;  // (sorted pos, var)
      for (std::size_t k = lo; k < hi; ++k) {
        const std::size_t i = order[k].second;
        const std::uint64_t value = current[i].valueMask();
        partners.clear();
        std::uint64_t clear = care & ~value;
        while (clear != 0) {
          const int v = std::countr_zero(clear);
          clear &= clear - 1;
          const std::uint64_t partner = value | (std::uint64_t{1} << v);
          if (upperEpoch[partner] == epoch) {
            partners.emplace_back(upperPos[partner], v);
          }
        }
        // Reference order: upper cubes in ascending original index, which is
        // ascending position within the sorted bucket.
        std::sort(partners.begin(), partners.end());
        for (const auto& [pos, v] : partners) {
          merged[i] = merged[order[pos].second] = true;
          Cube m = current[i];
          m.dropLiteral(v);
          const std::size_t key =
              (static_cast<std::size_t>(m.careMask()) << vars) | m.valueMask();
          const std::uint64_t bit = std::uint64_t{1} << (key & 63);
          if (!(dedup[key >> 6] & bit)) {
            dedup[key >> 6] |= bit;
            next.push_back(m);
          }
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!merged[i]) primes.push_back(current[i]);
    }
    current = std::move(next);
  }
  return primes;
}

std::vector<Cube> primeImplicantsReference(const TruthTable& tt) {
  TAUHLS_CHECK(tt.numVars() <= 14, "primeImplicants limited to 14 variables");
  // Level 0: all onset + dc minterms as cubes.
  std::vector<Cube> current;
  for (std::uint64_t r = 0; r < tt.numRows(); ++r) {
    if (tt.get(r) != Ternary::Zero) {
      current.push_back(Cube::minterm(tt.numVars(), r));
    }
  }
  std::vector<Cube> primes;
  while (!current.empty()) {
    // Group by care mask and by popcount of the value so only adjacent groups
    // are compared (classic QM bucketing).
    std::map<std::pair<std::uint64_t, int>, std::vector<std::size_t>> buckets;
    for (std::size_t i = 0; i < current.size(); ++i) {
      buckets[{current[i].careMask(),
               std::popcount(current[i].valueMask())}].push_back(i);
    }
    std::vector<bool> merged(current.size(), false);
    std::set<CubeKey> nextKeys;
    std::vector<Cube> next;
    for (const auto& [key, indices] : buckets) {
      auto upper = buckets.find({key.first, key.second + 1});
      if (upper == buckets.end()) continue;
      for (std::size_t i : indices) {
        for (std::size_t j : upper->second) {
          if (auto m = current[i].merge(current[j])) {
            merged[i] = merged[j] = true;
            if (nextKeys.insert({m->careMask(), m->valueMask()}).second) {
              next.push_back(*m);
            }
          }
        }
      }
    }
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (!merged[i]) primes.push_back(current[i]);
    }
    current = std::move(next);
  }
  return primes;
}

namespace {

MinimizerImpl gMinimizerImpl = MinimizerImpl::Fast;

/// Select a small subset of primes covering all onset rows: essential primes
/// first, then greedy by remaining coverage (ties: fewer literals).  The
/// greedy scoring runs on 64-rows-per-word onset bitsets; counts (and hence
/// selections) are identical to a per-row scan.
Cover coverFromPrimes(const TruthTable& tt, const std::vector<Cube>& primes) {
  const std::vector<std::uint64_t> onset = tt.onset();
  Cover result(tt.numVars());
  if (onset.empty()) return result;

  // cover matrix: for each onset row, the primes covering it; for each
  // prime, the onset rows it covers as a bitset.
  const std::size_t words = (onset.size() + 63) / 64;
  std::vector<std::vector<std::size_t>> coveredBy(onset.size());
  std::vector<std::vector<std::uint64_t>> rowsOf(
      primes.size(), std::vector<std::uint64_t>(words, 0));
  for (std::size_t p = 0; p < primes.size(); ++p) {
    for (std::size_t r = 0; r < onset.size(); ++r) {
      if (primes[p].covers(onset[r])) {
        coveredBy[r].push_back(p);
        rowsOf[p][r >> 6] |= std::uint64_t{1} << (r & 63);
      }
    }
  }
  std::vector<bool> selected(primes.size(), false);
  std::vector<std::uint64_t> rowDone(words, 0);

  auto selectPrime = [&](std::size_t p) {
    selected[p] = true;
    for (std::size_t w = 0; w < words; ++w) rowDone[w] |= rowsOf[p][w];
  };

  // Essential primes.
  for (std::size_t r = 0; r < onset.size(); ++r) {
    TAUHLS_ASSERT(!coveredBy[r].empty(), "onset row not covered by any prime");
    if (coveredBy[r].size() == 1 && !selected[coveredBy[r][0]]) {
      selectPrime(coveredBy[r][0]);
    }
  }
  // Greedy remainder.
  while (true) {
    std::size_t bestPrime = primes.size();
    std::size_t bestCount = 0;
    int bestLits = 0;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (selected[p]) continue;
      std::size_t count = 0;
      for (std::size_t w = 0; w < words; ++w) {
        count += static_cast<std::size_t>(
            std::popcount(rowsOf[p][w] & ~rowDone[w]));
      }
      if (count == 0) continue;
      const int lits = primes[p].numLiterals();
      if (count > bestCount || (count == bestCount && lits < bestLits)) {
        bestPrime = p;
        bestCount = count;
        bestLits = lits;
      }
    }
    if (bestPrime == primes.size()) break;
    selectPrime(bestPrime);
  }
  for (std::size_t p = 0; p < primes.size(); ++p) {
    if (selected[p]) result.add(primes[p]);
  }
  result.removeContained();
  return result;
}

}  // namespace

Cover minimizeExact(const TruthTable& tt) {
  Cover cover = coverFromPrimes(tt, gMinimizerImpl == MinimizerImpl::Reference
                                        ? primeImplicantsReference(tt)
                                        : primeImplicants(tt));
  TAUHLS_ASSERT(implements(cover, tt), "QM produced a non-implementing cover");
  return cover;
}

namespace {

// --- bit-parallel expand -----------------------------------------------------
//
// Row sets are bitsets over the 2^numVars truth-table rows, 64 rows per word.
// Flipping variable v in every row index is a word-level butterfly (bit
// strides below 64) or a word swap at distance 2^(v-6), so "the rows of this
// cube with literal v dropped" and "does that set touch the offset" are both
// O(rows/64) word operations instead of per-row Cube::covers calls.

/// kStrideMask[v]: bits whose row index has bit v clear, for v < 6.
constexpr std::uint64_t kStrideMask[6] = {
    0x5555555555555555ull, 0x3333333333333333ull, 0x0F0F0F0F0F0F0F0Full,
    0x00FF00FF00FF00FFull, 0x0000FFFF0000FFFFull, 0x00000000FFFFFFFFull};

/// dst = src with row-index bit v flipped in every element.
void flipVar(const std::vector<std::uint64_t>& src, int v,
             std::vector<std::uint64_t>& dst) {
  const std::size_t n = src.size();
  if (v < 6) {
    const int s = 1 << v;
    const std::uint64_t m = kStrideMask[v];
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] = ((src[i] & m) << s) | ((src[i] >> s) & m);
    }
  } else {
    const std::size_t d = std::size_t{1} << (v - 6);
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i ^ d];
  }
}

bool anyIntersect(const std::vector<std::uint64_t>& a,
                  const std::vector<std::uint64_t>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

}  // namespace

Cover minimizeExpand(const TruthTable& tt) {
  const int vars = tt.numVars();
  const std::uint64_t rows = tt.numRows();
  const std::size_t words = static_cast<std::size_t>((rows + 63) / 64);

  std::vector<std::uint64_t> offsetMask(words, 0);
  std::vector<std::uint64_t> onsetRows;
  for (std::uint64_t r = 0; r < rows; ++r) {
    const Ternary t = tt.get(r);
    if (t == Ternary::Zero) {
      offsetMask[r >> 6] |= std::uint64_t{1} << (r & 63);
    } else if (t == Ternary::One) {
      onsetRows.push_back(r);
    }
  }

  // flippedOffset[v]: rows whose v-flipped partner is in the offset.  A cube
  // currently off the offset gains an offset row by dropping literal v
  // exactly when its minterm set intersects this -- the same boolean the
  // reference implementation computes by scanning the offset per trial, so
  // the expansion decisions (and the resulting cover) are identical.
  std::vector<std::vector<std::uint64_t>> flippedOffset(
      static_cast<std::size_t>(vars), std::vector<std::uint64_t>(words));
  for (int v = 0; v < vars; ++v) flipVar(offsetMask, v, flippedOffset[v]);

  Cover result(vars);
  std::vector<std::uint64_t> covered(words, 0);
  std::vector<std::uint64_t> cur(words);
  std::vector<std::uint64_t> flipped(words);
  for (const std::uint64_t row : onsetRows) {
    if ((covered[row >> 6] >> (row & 63)) & 1) continue;
    Cube cube = Cube::minterm(vars, row);
    std::fill(cur.begin(), cur.end(), 0);
    cur[row >> 6] = std::uint64_t{1} << (row & 63);
    // Expand: drop literals one by one while staying off the offset.
    for (int v = 0; v < vars; ++v) {
      if (anyIntersect(cur, flippedOffset[v])) continue;
      cube.dropLiteral(v);
      flipVar(cur, v, flipped);
      for (std::size_t i = 0; i < words; ++i) cur[i] |= flipped[i];
    }
    result.add(cube);
    for (std::size_t i = 0; i < words; ++i) covered[i] |= cur[i];
  }
  result.removeContained();
  TAUHLS_ASSERT(implements(result, tt),
                "expand produced a non-implementing cover");
  return result;
}

Cover minimizeExpandReference(const TruthTable& tt) {
  const std::vector<std::uint64_t> offset = tt.offset();
  const std::vector<std::uint64_t> onset = tt.onset();
  Cover result(tt.numVars());

  auto hitsOffset = [&offset](const Cube& c) {
    for (std::uint64_t r : offset) {
      if (c.covers(r)) return true;
    }
    return false;
  };

  std::unordered_set<std::uint64_t> covered;
  for (std::uint64_t row : onset) {
    if (covered.contains(row)) continue;
    Cube cube = Cube::minterm(tt.numVars(), row);
    // Expand: drop literals one by one while staying off the offset.
    for (int v = 0; v < tt.numVars(); ++v) {
      Cube trial = cube;
      trial.dropLiteral(v);
      if (!hitsOffset(trial)) cube = trial;
    }
    result.add(cube);
    for (std::uint64_t m : onset) {
      if (cube.covers(m)) covered.insert(m);
    }
  }
  result.removeContained();
  TAUHLS_ASSERT(implements(result, tt), "expand produced a non-implementing cover");
  return result;
}

void setMinimizerImpl(MinimizerImpl impl) { gMinimizerImpl = impl; }

MinimizerImpl minimizerImpl() { return gMinimizerImpl; }

namespace {

/// Fast-mode memo: FSM logic extraction hands minimize() the same truth
/// table many times (controllers bound to identical unit shapes synthesize
/// identical next-state and output functions), so covers are cached by full
/// table content.  Both engines are deterministic, so replaying a cached
/// cover is indistinguishable from recomputing it.  Reference mode bypasses
/// the cache entirely -- the kernel benchmark's naive regime must pay the
/// original per-call cost.
std::mutex gMemoMutex;
std::unordered_map<std::string, Cover> gMemo;
constexpr std::size_t kMemoMaxEntries = 1 << 14;

std::string memoKey(const TruthTable& tt) {
  std::string key;
  key.reserve(static_cast<std::size_t>(tt.numRows()) + 1);
  key.push_back(static_cast<char>(tt.numVars()));
  for (std::uint64_t r = 0; r < tt.numRows(); ++r) {
    key.push_back(static_cast<char>(tt.get(r)));
  }
  return key;
}

Cover minimizeUncached(const TruthTable& tt) {
  const auto expand = [&tt] {
    return gMinimizerImpl == MinimizerImpl::Reference
               ? minimizeExpandReference(tt)
               : minimizeExpand(tt);
  };
  if (tt.numVars() > 14) return expand();
  // QM's cost is driven by the onset+dc minterm count; when don't-cares
  // dominate (e.g. sparse one-hot encodings) the heuristic is far cheaper
  // and loses almost nothing.
  const std::uint64_t careOnPlusDc = tt.numRows() - tt.offset().size();
  return careOnPlusDc <= 4096 ? minimizeExact(tt) : expand();
}

}  // namespace

Cover minimize(const TruthTable& tt) {
  if (gMinimizerImpl == MinimizerImpl::Reference) return minimizeUncached(tt);
  std::string key = memoKey(tt);
  {
    const std::lock_guard<std::mutex> lock(gMemoMutex);
    const auto it = gMemo.find(key);
    if (it != gMemo.end()) return it->second;
  }
  Cover cover = minimizeUncached(tt);
  {
    const std::lock_guard<std::mutex> lock(gMemoMutex);
    if (gMemo.size() >= kMemoMaxEntries) gMemo.clear();
    gMemo.emplace(std::move(key), cover);
  }
  return cover;
}

bool implements(const Cover& cover, const TruthTable& spec) {
  TAUHLS_CHECK(cover.numVars() == spec.numVars(),
               "cover/spec variable count mismatch");
  for (std::uint64_t r = 0; r < spec.numRows(); ++r) {
    const Ternary want = spec.get(r);
    if (want == Ternary::DontCare) continue;
    if (cover.evaluate(r) != (want == Ternary::One)) return false;
  }
  return true;
}

}  // namespace tauhls::logic
