#include "logic/minimize.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <unordered_set>

#include "common/error.hpp"

namespace tauhls::logic {

namespace {

struct CubeKey {
  std::uint64_t care;
  std::uint64_t value;
  auto operator<=>(const CubeKey&) const = default;
};

}  // namespace

std::vector<Cube> primeImplicants(const TruthTable& tt) {
  TAUHLS_CHECK(tt.numVars() <= 14, "primeImplicants limited to 14 variables");
  // Level 0: all onset + dc minterms as cubes.
  std::vector<Cube> current;
  for (std::uint64_t r = 0; r < tt.numRows(); ++r) {
    if (tt.get(r) != Ternary::Zero) {
      current.push_back(Cube::minterm(tt.numVars(), r));
    }
  }
  std::vector<Cube> primes;
  while (!current.empty()) {
    // Group by care mask and by popcount of the value so only adjacent groups
    // are compared (classic QM bucketing).
    std::map<std::pair<std::uint64_t, int>, std::vector<std::size_t>> buckets;
    for (std::size_t i = 0; i < current.size(); ++i) {
      buckets[{current[i].careMask(),
               std::popcount(current[i].valueMask())}].push_back(i);
    }
    std::vector<bool> merged(current.size(), false);
    std::set<CubeKey> nextKeys;
    std::vector<Cube> next;
    for (const auto& [key, indices] : buckets) {
      auto upper = buckets.find({key.first, key.second + 1});
      if (upper == buckets.end()) continue;
      for (std::size_t i : indices) {
        for (std::size_t j : upper->second) {
          if (auto m = current[i].merge(current[j])) {
            merged[i] = merged[j] = true;
            if (nextKeys.insert({m->careMask(), m->valueMask()}).second) {
              next.push_back(*m);
            }
          }
        }
      }
    }
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (!merged[i]) primes.push_back(current[i]);
    }
    current = std::move(next);
  }
  return primes;
}

namespace {

/// Select a small subset of primes covering all onset rows: essential primes
/// first, then greedy by remaining coverage (ties: fewer literals).
Cover coverFromPrimes(const TruthTable& tt, const std::vector<Cube>& primes) {
  const std::vector<std::uint64_t> onset = tt.onset();
  Cover result(tt.numVars());
  if (onset.empty()) return result;

  // cover matrix: for each onset row, the primes covering it.
  std::vector<std::vector<std::size_t>> coveredBy(onset.size());
  for (std::size_t p = 0; p < primes.size(); ++p) {
    for (std::size_t r = 0; r < onset.size(); ++r) {
      if (primes[p].covers(onset[r])) coveredBy[r].push_back(p);
    }
  }
  std::vector<bool> selected(primes.size(), false);
  std::vector<bool> rowDone(onset.size(), false);

  auto selectPrime = [&](std::size_t p) {
    selected[p] = true;
    for (std::size_t r = 0; r < onset.size(); ++r) {
      if (!rowDone[r] && primes[p].covers(onset[r])) rowDone[r] = true;
    }
  };

  // Essential primes.
  for (std::size_t r = 0; r < onset.size(); ++r) {
    TAUHLS_ASSERT(!coveredBy[r].empty(), "onset row not covered by any prime");
    if (coveredBy[r].size() == 1 && !selected[coveredBy[r][0]]) {
      selectPrime(coveredBy[r][0]);
    }
  }
  // Greedy remainder.
  while (true) {
    std::size_t bestPrime = primes.size();
    std::size_t bestCount = 0;
    int bestLits = 0;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (selected[p]) continue;
      std::size_t count = 0;
      for (std::size_t r = 0; r < onset.size(); ++r) {
        if (!rowDone[r] && primes[p].covers(onset[r])) ++count;
      }
      if (count == 0) continue;
      const int lits = primes[p].numLiterals();
      if (count > bestCount || (count == bestCount && lits < bestLits)) {
        bestPrime = p;
        bestCount = count;
        bestLits = lits;
      }
    }
    if (bestPrime == primes.size()) break;
    selectPrime(bestPrime);
  }
  for (std::size_t p = 0; p < primes.size(); ++p) {
    if (selected[p]) result.add(primes[p]);
  }
  result.removeContained();
  return result;
}

}  // namespace

Cover minimizeExact(const TruthTable& tt) {
  Cover cover = coverFromPrimes(tt, primeImplicants(tt));
  TAUHLS_ASSERT(implements(cover, tt), "QM produced a non-implementing cover");
  return cover;
}

Cover minimizeExpand(const TruthTable& tt) {
  const std::vector<std::uint64_t> offset = tt.offset();
  const std::vector<std::uint64_t> onset = tt.onset();
  Cover result(tt.numVars());

  auto hitsOffset = [&offset](const Cube& c) {
    for (std::uint64_t r : offset) {
      if (c.covers(r)) return true;
    }
    return false;
  };

  std::unordered_set<std::uint64_t> covered;
  for (std::uint64_t row : onset) {
    if (covered.contains(row)) continue;
    Cube cube = Cube::minterm(tt.numVars(), row);
    // Expand: drop literals one by one while staying off the offset.
    for (int v = 0; v < tt.numVars(); ++v) {
      Cube trial = cube;
      trial.dropLiteral(v);
      if (!hitsOffset(trial)) cube = trial;
    }
    result.add(cube);
    for (std::uint64_t m : onset) {
      if (cube.covers(m)) covered.insert(m);
    }
  }
  result.removeContained();
  TAUHLS_ASSERT(implements(result, tt), "expand produced a non-implementing cover");
  return result;
}

Cover minimize(const TruthTable& tt) {
  if (tt.numVars() > 14) return minimizeExpand(tt);
  // QM's cost is driven by the onset+dc minterm count; when don't-cares
  // dominate (e.g. sparse one-hot encodings) the heuristic is far cheaper
  // and loses almost nothing.
  const std::uint64_t careOnPlusDc = tt.numRows() - tt.offset().size();
  return careOnPlusDc <= 4096 ? minimizeExact(tt) : minimizeExpand(tt);
}

bool implements(const Cover& cover, const TruthTable& spec) {
  TAUHLS_CHECK(cover.numVars() == spec.numVars(),
               "cover/spec variable count mismatch");
  for (std::uint64_t r = 0; r < spec.numRows(); ++r) {
    const Ternary want = spec.get(r);
    if (want == Ternary::DontCare) continue;
    if (cover.evaluate(r) != (want == Ternary::One)) return false;
  }
  return true;
}

}  // namespace tauhls::logic
