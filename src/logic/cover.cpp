#include "logic/cover.hpp"

#include "common/error.hpp"

namespace tauhls::logic {

void Cover::add(const Cube& cube) {
  TAUHLS_CHECK(cube.numVars() == numVars_, "cube arity mismatch with cover");
  cubes_.push_back(cube);
}

bool Cover::evaluate(std::uint64_t assignment) const {
  for (const Cube& c : cubes_) {
    if (c.covers(assignment)) return true;
  }
  return false;
}

int Cover::literalCount() const {
  int n = 0;
  for (const Cube& c : cubes_) n += c.numLiterals();
  return n;
}

void Cover::removeContained() {
  std::vector<Cube> kept;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool contained = false;
    for (std::size_t j = 0; j < cubes_.size() && !contained; ++j) {
      if (i == j) continue;
      if (cubes_[j].contains(cubes_[i])) {
        // Break ties between equal cubes by keeping the earlier one.
        contained = !(cubes_[i] == cubes_[j]) || j < i;
      }
    }
    if (!contained) kept.push_back(cubes_[i]);
  }
  cubes_ = std::move(kept);
}

std::string Cover::toString() const {
  std::string s;
  for (const Cube& c : cubes_) {
    s += c.toString();
    s += '\n';
  }
  return s;
}

}  // namespace tauhls::logic
