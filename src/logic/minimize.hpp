// Two-level minimization.
//
// Two engines:
//  * minimizeExact: Quine-McCluskey prime generation + essential extraction +
//    greedy cover of the remainder.  Exact primes; near-minimal covers.
//    Practical up to ~14 variables.
//  * minimizeExpand: ESPRESSO-style single-cube expansion against the offset;
//    heuristic but fast, handles larger variable counts.
//
// minimize() dispatches on variable count.  All results are verified
// implementable against the spec by `implements`.
#pragma once

#include "logic/cover.hpp"
#include "logic/truth_table.hpp"

namespace tauhls::logic {

/// Quine-McCluskey prime implicants of (onset + dcset).  Fast path: one
/// stable sort recovers the bucket order and merge partners are hash
/// lookups (flip one clear care bit), replacing the reference's per-level
/// map-of-buckets and all-pairs merge scans.  Emits the same primes in the
/// same order as primeImplicantsReference.
std::vector<Cube> primeImplicants(const TruthTable& tt);

/// The original map-and-scan QM prime generation.  Kept callable for
/// cross-checking and for the kernel benchmark's naive regime.
std::vector<Cube> primeImplicantsReference(const TruthTable& tt);

/// Exact-prime minimization (QM); requires numVars <= 14.
Cover minimizeExact(const TruthTable& tt);

/// Heuristic expand-based minimization; any supported variable count.
/// Bit-parallel: row sets are 64-rows-per-word bitsets, so each trial
/// literal drop is tested against the offset in O(rows/64) word operations.
/// Produces the same cover as minimizeExpandReference (same expansion
/// decisions in the same order).
Cover minimizeExpand(const TruthTable& tt);

/// The scalar reference expand (one Cube::covers call per offset row per
/// trial).  Kept callable for cross-checking and for the kernel benchmark's
/// naive regime; bit-identical covers to minimizeExpand.
Cover minimizeExpandReference(const TruthTable& tt);

/// Which implementations minimize()/minimizeExact() dispatch to: Fast (the
/// bit-parallel expand and sort+hash QM above) or Reference (the original
/// scalar scans).  synth::synthesize keys its truth-table row sweep off the
/// same hook (compiled bitmask guards vs per-row Fsm::step).  Results are
/// identical either way; a bench/test hook (bench/kernel_speed.cpp times
/// the equivalence suite under both regimes).
enum class MinimizerImpl { Fast, Reference };
void setMinimizerImpl(MinimizerImpl impl);
MinimizerImpl minimizerImpl();

/// Dispatch: exact up to 14 variables, expand beyond.
Cover minimize(const TruthTable& tt);

/// True when `cover` is 1 on every onset row and 0 on every offset row of
/// `spec` (don't-cares unconstrained).
bool implements(const Cover& cover, const TruthTable& spec);

}  // namespace tauhls::logic
