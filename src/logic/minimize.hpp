// Two-level minimization.
//
// Two engines:
//  * minimizeExact: Quine-McCluskey prime generation + essential extraction +
//    greedy cover of the remainder.  Exact primes; near-minimal covers.
//    Practical up to ~14 variables.
//  * minimizeExpand: ESPRESSO-style single-cube expansion against the offset;
//    heuristic but fast, handles larger variable counts.
//
// minimize() dispatches on variable count.  All results are verified
// implementable against the spec by `implements`.
#pragma once

#include "logic/cover.hpp"
#include "logic/truth_table.hpp"

namespace tauhls::logic {

/// Quine-McCluskey prime implicants of (onset + dcset).
std::vector<Cube> primeImplicants(const TruthTable& tt);

/// Exact-prime minimization (QM); requires numVars <= 14.
Cover minimizeExact(const TruthTable& tt);

/// Heuristic expand-based minimization; any supported variable count.
Cover minimizeExpand(const TruthTable& tt);

/// Dispatch: exact up to 14 variables, expand beyond.
Cover minimize(const TruthTable& tt);

/// True when `cover` is 1 on every onset row and 0 on every offset row of
/// `spec` (don't-cares unconstrained).
bool implements(const Cover& cover, const TruthTable& spec);

}  // namespace tauhls::logic
