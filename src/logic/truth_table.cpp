#include "logic/truth_table.hpp"

#include "common/error.hpp"

namespace tauhls::logic {

TruthTable::TruthTable(int numVars) : numVars_(numVars) {
  TAUHLS_CHECK(numVars >= 0 && numVars <= 24,
               "truth table supports 0..24 variables");
  rows_.assign(std::size_t{1} << numVars, static_cast<std::uint8_t>(Ternary::Zero));
}

Ternary TruthTable::get(std::uint64_t row) const {
  TAUHLS_CHECK(row < numRows(), "truth-table row out of range");
  return static_cast<Ternary>(rows_[row]);
}

void TruthTable::set(std::uint64_t row, Ternary v) {
  TAUHLS_CHECK(row < numRows(), "truth-table row out of range");
  rows_[row] = static_cast<std::uint8_t>(v);
}

std::vector<std::uint64_t> TruthTable::onset() const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t r = 0; r < numRows(); ++r) {
    if (rows_[r] == static_cast<std::uint8_t>(Ternary::One)) out.push_back(r);
  }
  return out;
}

std::vector<std::uint64_t> TruthTable::offset() const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t r = 0; r < numRows(); ++r) {
    if (rows_[r] == static_cast<std::uint8_t>(Ternary::Zero)) out.push_back(r);
  }
  return out;
}

std::vector<std::uint64_t> TruthTable::dcset() const {
  std::vector<std::uint64_t> out;
  for (std::uint64_t r = 0; r < numRows(); ++r) {
    if (rows_[r] == static_cast<std::uint8_t>(Ternary::DontCare)) out.push_back(r);
  }
  return out;
}

bool TruthTable::constantOverCareSet(bool& valueOut) const {
  bool sawOne = false;
  bool sawZero = false;
  for (std::uint64_t r = 0; r < numRows(); ++r) {
    if (rows_[r] == static_cast<std::uint8_t>(Ternary::One)) sawOne = true;
    if (rows_[r] == static_cast<std::uint8_t>(Ternary::Zero)) sawZero = true;
    if (sawOne && sawZero) return false;
  }
  valueOut = sawOne;  // all-DC counts as constant 0
  return true;
}

}  // namespace tauhls::logic
