#include "explore/pareto.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "regalloc/leftedge.hpp"
#include "sched/clique.hpp"

namespace tauhls::explore {

int DesignPoint::cost(int unitWeight) const {
  return controllerArea + datapathRegisters * synth::kAreaPerFlipFlop +
         unitCount * unitWeight;
}

std::vector<DesignPoint> explore(const dfg::Dfg& g,
                                 const ExploreOptions& options) {
  TAUHLS_CHECK(options.maxUnitsPerClass >= 1, "need at least one unit");
  // Classes present and their sweep ranges (capped at full concurrency:
  // beyond the minimum chain cover, extra units are never used).
  std::vector<dfg::ResourceClass> classes;
  std::vector<int> maxOf;
  for (dfg::ResourceClass cls :
       {dfg::ResourceClass::Multiplier, dfg::ResourceClass::Adder,
        dfg::ResourceClass::Subtractor, dfg::ResourceClass::Divider,
        dfg::ResourceClass::Logic}) {
    const std::size_t ops = g.opsOfClass(cls).size();
    if (ops == 0) continue;
    classes.push_back(cls);
    const int needed = static_cast<int>(sched::minChainCover(g, cls).size());
    maxOf.push_back(std::min(options.maxUnitsPerClass, needed));
  }
  TAUHLS_CHECK(!classes.empty(), "graph has no operations to allocate for");

  // Enumerate the allocation grid first (odometer order), then fan the
  // independent design points out over the pool; each slot is written by
  // exactly one task, so the resulting order matches the serial sweep.
  std::vector<sched::Allocation> grid;
  std::vector<int> counts(classes.size(), 1);
  while (true) {
    sched::Allocation alloc;
    for (std::size_t i = 0; i < classes.size(); ++i) {
      alloc[classes[i]] = counts[i];
    }
    grid.push_back(std::move(alloc));

    // Odometer.
    std::size_t pos = 0;
    while (pos < counts.size()) {
      if (++counts[pos] <= maxOf[pos]) break;
      counts[pos] = 1;
      ++pos;
    }
    if (pos == counts.size()) break;
  }

  // Each point drives the pipeline directly, requesting only what the
  // objectives read: the latency comparison, the distributed area report and
  // the verification gate.  Demand-driven evaluation skips the baseline area
  // row the full flow would also synthesize, and the shared cache makes any
  // repeated evaluation of a point (across explore() calls, or between a
  // sweep and a follow-up report) a pointer copy.
  std::shared_ptr<core::ArtifactCache> cache =
      options.cache ? options.cache
                    : std::make_shared<core::ArtifactCache>();
  std::vector<DesignPoint> points(grid.size());
  common::parallelFor(grid.size(), [&](std::size_t i) {
    DesignPoint point;
    point.allocation = grid[i];

    core::FlowConfig cfg;
    cfg.allocation = point.allocation;
    cfg.ps = {options.p};
    core::FlowPipeline pipeline(g, cfg, cache);
    pipeline.require({core::Artifact::Latency, core::Artifact::DistArea,
                      core::Artifact::Diagnostics});
    core::throwIfVerificationFailed(
        pipeline.get<verify::Report>(core::Artifact::Diagnostics));
    const auto& latency =
        pipeline.get<sim::LatencyComparison>(core::Artifact::Latency);
    const auto& scheduled =
        pipeline.get<sched::ScheduledDfg>(core::Artifact::Schedule);
    point.averageLatencyNs = latency.dist.averageNs[0];
    point.controllerArea =
        pipeline.get<synth::DistributedAreaReport>(core::Artifact::DistArea)
            .total.totalArea();
    point.unitCount = static_cast<int>(scheduled.binding.numUnits());
    point.datapathRegisters =
        regalloc::leftEdgeRegisters(regalloc::distributedLifetimes(scheduled),
                                    scheduled.graph.numNodes())
            .numRegisters;
    points[i] = std::move(point);
  });
  const std::vector<DesignPoint> front =
      paretoFront(points, options.unitWeightArea);
  for (DesignPoint& p : points) {
    p.paretoOptimal = false;
    for (const DesignPoint& f : front) {
      if (f.allocation == p.allocation) p.paretoOptimal = true;
    }
  }
  return points;
}

std::vector<DesignPoint> paretoFront(const std::vector<DesignPoint>& points,
                                     int unitWeight) {
  std::vector<DesignPoint> front;
  for (const DesignPoint& candidate : points) {
    bool dominated = false;
    for (const DesignPoint& other : points) {
      const bool betterOrEqual =
          other.averageLatencyNs <= candidate.averageLatencyNs + 1e-9 &&
          other.cost(unitWeight) <= candidate.cost(unitWeight);
      const bool strictlyBetter =
          other.averageLatencyNs < candidate.averageLatencyNs - 1e-9 ||
          other.cost(unitWeight) < candidate.cost(unitWeight);
      if (betterOrEqual && strictlyBetter) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(candidate);
  }
  return front;
}

}  // namespace tauhls::explore
