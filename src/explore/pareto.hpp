// Allocation design-space exploration.
//
// Sweeps unit allocations over a bounded grid, runs the full flow for each
// point, and reports the Pareto-optimal set under (average latency, total
// implementation cost), where cost = controller area (combinational +
// sequential incl. completion latches) + datapath registers (left-edge count
// x one FF-equivalent each) + unit count weights.  The §6 "resource
// allocation" piece of the envisioned HLS tool.
//
// Design points are evaluated concurrently on the global thread pool
// (TAUHLS_THREADS); the returned vector keeps the serial odometer order and
// every value is independent of the thread count.
//
// Each point drives the flow's pass pipeline directly (core/pipeline.hpp)
// and requests only the artifacts the objectives read -- latency, the
// distributed area report and the verification diagnostics -- so baseline
// area rows and RTL are never synthesized.  Points share an ArtifactCache:
// pass `ExploreOptions::cache` to extend the sharing across explore() calls
// (repeated sweeps, or a front refinement re-evaluating the same points,
// become pure cache hits).
#pragma once

#include <memory>
#include <vector>

#include "core/flow.hpp"
#include "core/pipeline.hpp"

namespace tauhls::explore {

struct DesignPoint {
  sched::Allocation allocation;
  double averageLatencyNs = 0.0;  ///< at the sweep's P
  int controllerArea = 0;         ///< DIST total (Com. + Seq. incl. latches)
  int datapathRegisters = 0;      ///< left-edge register count
  int unitCount = 0;
  bool paretoOptimal = false;

  /// Total cost used for dominance, with `unitWeight` area units per unit.
  int cost(int unitWeight) const;
};

struct ExploreOptions {
  double p = 0.7;                ///< SD ratio for the latency objective
  int maxUnitsPerClass = 4;
  int unitWeightArea = 200;      ///< area charged per allocated unit
  /// Artifact cache shared by every design point; null = one private cache
  /// per explore() call.  Reuse the same cache across calls to make repeated
  /// evaluations of a point free.
  std::shared_ptr<core::ArtifactCache> cache;
};

/// Sweep every combination of 1..maxUnitsPerClass units for each class
/// present in `g` (capped at the op count of that class) and mark the
/// Pareto front under (latency, cost).
std::vector<DesignPoint> explore(const dfg::Dfg& g, const ExploreOptions& options = {});

/// The Pareto-optimal subset of `points` (minimizing latency and cost).
std::vector<DesignPoint> paretoFront(const std::vector<DesignPoint>& points,
                                     int unitWeight);

}  // namespace tauhls::explore
