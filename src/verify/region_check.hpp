// Static checks for region programs and composed distributed control.
//
// Three rule groups extend the flat families to hierarchy:
//
//   * DFG009/DFG010 -- region-tree structure (re-reported from
//     dfg::checkRegionProgram through the shared diagnostics engine);
//   * SCH012 -- the leaves of a RegionSchedule must agree on the shared
//     hardware: one allocation, one clock period, one unit library.  The
//     sequencer time-shares a single set of telescopic units across regions,
//     so any disagreement means the composed schedule describes hardware
//     that cannot exist;
//   * MDL009/MDL010 -- the sequencer's start/done handshake.  Every
//     activation's wait state must be armed by transitions asserting its
//     leaf's ST_* pulse, hold itself under !DN_*, and leave only under
//     DN_*; the final activations must pulse DONE on wrap-around.  MDL010
//     is the info summary (leaves, activations, sequencer states).
#pragma once

#include "dfg/region.hpp"
#include "fsm/hierarchical.hpp"
#include "sched/region_schedule.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

/// DFG009/DFG010 over the region tree, plus the flat DFG lint family on
/// every leaf body (artifact "region leaf <path>").
void checkRegionProgram(const dfg::RegionProgram& program, Report& report);

/// SCH012 cross-leaf consistency, plus the flat schedule/binding legality
/// family (SCH001..SCH011) on every leaf schedule.
void checkRegionSchedule(const sched::RegionSchedule& rs, Report& report);

/// MDL009 handshake structure + FSM001..FSM007 on the sequencer machine, and
/// the MDL010 composed summary.  Leaf controller networks are expected to be
/// model-checked individually by the flat passes.
void checkComposedControl(const fsm::HierarchicalControlUnit& hcu,
                          const dfg::RegionProgram& program, Report& report);

}  // namespace tauhls::verify
