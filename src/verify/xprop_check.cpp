#include "verify/xprop_check.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/ternary.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "rtl/verilog.hpp"
#include "synth/encoding.hpp"
#include "verify/symbolic_check.hpp"
#include "vsim/simulate.hpp"

namespace tauhls::verify {

namespace {

using aig::Aig;
using aig::kLitFalse;
using aig::kLitTrue;
using aig::Lit;
using aig::TernaryEvaluator;
using aig::XWord;

/// The module name the XPR002 replay drives (and rtlOverride must define).
constexpr const char* kXpropTopName = "tauhls_xprop_top";

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic per-(input, word, cycle) pattern word, bitsim-style keying.
std::uint64_t inputWordFor(std::uint64_t seed, std::size_t input,
                           std::size_t word, int cycle) {
  return splitmix64(seed ^ splitmix64(input * 0x100000001b3ull + 1) ^
                    splitmix64(word * 0xc2b2ae3d27d4eb4full + 2) ^
                    splitmix64(static_cast<std::uint64_t>(cycle) *
                                   0x9e3779b97f4a7c15ull +
                               3));
}

// --- the sequential network model ------------------------------------------

/// One register of the model: an AIG input standing for the current value
/// plus the cone computing the next one.
struct ModelReg {
  std::string artifact;   ///< diagnostic anchor ("fsm <n>" / "latch <sig>")
  std::string name;       ///< "state<b>" / "held"
  std::size_t input = 0;  ///< AIG input index of `cur`
  Lit cur = kLitFalse;
  Lit next = kLitFalse;
};

/// A combinational observable (pulse, level, controller output).
struct ModelProbe {
  std::string artifact;
  std::string name;
  Lit lit = kLitFalse;
};

/// Per-controller grouping of the encoded state registers (XPR002 packs
/// them against the RTL's multi-bit state register).
struct StateGroup {
  std::string fsmName;
  std::vector<std::size_t> regIdx;  ///< LSB first
};

struct NetModel {
  Aig g;
  Lit rst = kLitFalse;
  Lit restart = kLitFalse;
  std::size_t rstIdx = 0;
  std::size_t restartIdx = 0;
  /// Free per-cycle inputs (C_* completions; DN_*_pulse / SEL_* for the
  /// sequencer model), with their AIG input indices.
  std::vector<std::pair<std::string, std::size_t>> freeIns;
  std::vector<ModelReg> regs;
  std::vector<ModelProbe> probes;
  std::vector<StateGroup> stateGroups;
  std::map<std::string, std::size_t> heldRegOf;   ///< signal -> reg index
  std::map<std::string, std::size_t> probeIdxOf;  ///< probe name -> index
};

void addFree(NetModel& m, const std::string& name) {
  const Lit l = m.g.addInput(name);
  m.freeIns.emplace_back(name, m.g.inputIndexOf(aig::nodeOf(l)));
}

std::size_t addReg(NetModel& m, const std::string& artifact,
                   const std::string& name, const std::string& inputName) {
  ModelReg r;
  r.artifact = artifact;
  r.name = name;
  r.cur = m.g.addInput(inputName);
  r.input = m.g.inputIndexOf(aig::nodeOf(r.cur));
  m.regs.push_back(std::move(r));
  return m.regs.size() - 1;
}

void addProbe(NetModel& m, const std::string& artifact, const std::string& name,
              Lit lit) {
  m.probeIdxOf.emplace(name, m.probes.size());
  m.probes.push_back({artifact, name, lit});
}

/// Lowers one FSM's next-state and output cones into the model's graph,
/// resolving input signals through a caller-supplied cone map.  Mirrors the
/// emitted RTL exactly: undecodable state codes take the default arm back to
/// the initial state, outputs default to 0.
class FsmCones {
 public:
  FsmCones(Aig& g, const fsm::Fsm& f, synth::EncodingStyle style,
           std::vector<Lit> stateCur)
      : g_(g),
        fsm_(f),
        enc_(synth::encodeStates(f, style)),
        state_(std::move(stateCur)) {}

  const synth::Encoding& enc() const { return enc_; }

  Lit stateMatch(int s) {
    Lit acc = kLitTrue;
    for (int b = 0; b < enc_.bits; ++b) {
      const bool bit = (enc_.codeOf[static_cast<std::size_t>(s)] >> b) & 1u;
      acc = g_.andLit(acc,
                      bit ? state_[static_cast<std::size_t>(b)]
                          : aig::negate(state_[static_cast<std::size_t>(b)]));
    }
    return acc;
  }

  /// Build every next-state bit and output cone; `inputOf` maps the FSM's
  /// input names to already-built cones.
  void build(const std::map<std::string, Lit>& inputOf) {
    Lit valid = kLitFalse;
    for (std::size_t s = 0; s < fsm_.numStates(); ++s) {
      valid = g_.orLit(valid, stateMatch(static_cast<int>(s)));
    }
    ns_.assign(static_cast<std::size_t>(enc_.bits), kLitFalse);
    for (const std::string& o : fsm_.outputs()) out_[o] = kLitFalse;
    for (const fsm::Transition& t : fsm_.transitions()) {
      Lit guard = kLitFalse;
      for (const fsm::GuardTerm& term : t.guard.terms()) {
        Lit g = kLitTrue;
        for (const auto& [sig, positive] : term.literals) {
          const Lit in = inputOf.at(sig);
          g = g_.andLit(g, positive ? in : aig::negate(in));
        }
        guard = g_.orLit(guard, g);
      }
      const Lit fire = g_.andLit(stateMatch(t.from), guard);
      const std::uint32_t code = enc_.codeOf[static_cast<std::size_t>(t.to)];
      for (int b = 0; b < enc_.bits; ++b) {
        if ((code >> b) & 1u) {
          ns_[static_cast<std::size_t>(b)] =
              g_.orLit(ns_[static_cast<std::size_t>(b)], fire);
        }
      }
      for (const std::string& o : t.outputs) out_[o] = g_.orLit(out_[o], fire);
    }
    // The RTL's default case arm: an undecodable code steps to the initial
    // state, so the model tracks the emitted machine on *every* power-on
    // pattern, not just the encoded ones.
    const std::uint32_t init =
        enc_.codeOf[static_cast<std::size_t>(fsm_.initial())];
    for (int b = 0; b < enc_.bits; ++b) {
      if ((init >> b) & 1u) {
        ns_[static_cast<std::size_t>(b)] =
            g_.orLit(ns_[static_cast<std::size_t>(b)], aig::negate(valid));
      }
    }
  }

  Lit ns(int b) const { return ns_[static_cast<std::size_t>(b)]; }
  Lit output(const std::string& o) const { return out_.at(o); }

 private:
  Aig& g_;
  const fsm::Fsm& fsm_;
  synth::Encoding enc_;
  std::vector<Lit> state_;
  std::vector<Lit> ns_;
  std::map<std::string, Lit> out_;
};

/// Flat network model: every controller plus one completion latch per
/// consumed signal, wired exactly as rtl::emitDistributedTop wires them.
/// Consumer cones read `held | producer pulse`; the producer pulse cones are
/// built on demand following the (acyclic) signal dependency order.
NetModel buildFlatModel(const fsm::DistributedControlUnit& dcu,
                        synth::EncodingStyle style, const XprOptions& opt) {
  NetModel m;
  m.rst = m.g.addInput("rst");
  m.rstIdx = m.g.inputIndexOf(aig::nodeOf(m.rst));
  m.restart = m.g.addInput("restart");
  m.restartIdx = m.g.inputIndexOf(aig::nodeOf(m.restart));
  std::map<std::string, Lit> freeLit;
  for (const std::string& in : dcu.externalInputs) {
    addFree(m, in);
    freeLit[in] = m.g.findInput(in);
  }

  // Registers first (they are the template inputs): encoded state bits per
  // controller, one held bit per consumed signal.
  std::vector<std::vector<Lit>> stateCur(dcu.controllers.size());
  for (std::size_t i = 0; i < dcu.controllers.size(); ++i) {
    const fsm::Fsm& f = dcu.controllers[i].fsm;
    const synth::Encoding enc = synth::encodeStates(f, style);
    StateGroup group;
    group.fsmName = f.name();
    for (int b = 0; b < enc.bits; ++b) {
      const std::size_t r =
          addReg(m, "fsm " + f.name(), "state" + std::to_string(b),
                 f.name() + ".state" + std::to_string(b));
      stateCur[i].push_back(m.regs[r].cur);
      group.regIdx.push_back(r);
    }
    m.stateGroups.push_back(std::move(group));
  }
  std::vector<std::string> consumed;
  for (const auto& [sig, users] : dcu.consumersOf) consumed.push_back(sig);
  for (const std::string& sig : consumed) {
    m.heldRegOf[sig] = addReg(m, "latch " + sig, "held", sig + ".held");
  }

  // Completion pulses can cascade within one clock: `<sig>_level = held |
  // pulse` feeds the next controller's guard combinationally, and the signal
  // graph may even be structurally cyclic (AR-lattice).  The emitted RTL
  // settles this net to a monotone fixpoint (vsim settle(); fsm/product.cpp
  // phase 1, asserted to converge within 2 rounds for generated controllers).
  // An AIG is a DAG, so unroll that fixpoint: three rounds, each rebuilding
  // every pulse cone against the previous round's pulses, with round 0
  // seeing the held latches only.  Hash-consing collapses rounds that have
  // already stabilized, so acyclic networks cost nothing extra.
  std::vector<std::unique_ptr<FsmCones>> cones(dcu.controllers.size());
  std::map<std::string, Lit> pulseOf;
  for (int round = 0; round < 3; ++round) {
    std::map<std::string, Lit> nextPulse;
    for (std::size_t i = 0; i < dcu.controllers.size(); ++i) {
      const fsm::Fsm& f = dcu.controllers[i].fsm;
      std::map<std::string, Lit> inputOf;
      for (const std::string& in : f.inputs()) {
        if (dcu.producerOf.contains(in)) {
          const auto prev = pulseOf.find(in);
          const Lit pulse = prev != pulseOf.end() ? prev->second : kLitFalse;
          inputOf[in] = m.g.orLit(m.regs[m.heldRegOf.at(in)].cur, pulse);
        } else {
          auto it = freeLit.find(in);
          if (it == freeLit.end()) {
            addFree(m, in);
            it = freeLit.emplace(in, m.g.findInput(in)).first;
          }
          inputOf[in] = it->second;
        }
      }
      cones[i] = std::make_unique<FsmCones>(m.g, f, style, stateCur[i]);
      cones[i]->build(inputOf);
      for (const std::string& o : f.outputs()) {
        if (dcu.consumersOf.contains(o)) nextPulse[o] = cones[i]->output(o);
      }
    }
    pulseOf = std::move(nextPulse);
  }

  // Register next-state cones and probes.
  std::size_t reg = 0;
  for (std::size_t i = 0; i < dcu.controllers.size(); ++i) {
    const fsm::Fsm& f = dcu.controllers[i].fsm;
    const synth::Encoding& enc = cones[i]->enc();
    const std::uint32_t init =
        enc.codeOf[static_cast<std::size_t>(f.initial())];
    const bool noReset = opt.controllersWithoutStateReset.contains(f.name());
    for (int b = 0; b < enc.bits; ++b, ++reg) {
      const Lit initBit = (init >> b) & 1u ? kLitTrue : kLitFalse;
      m.regs[reg].next = noReset ? cones[i]->ns(b)
                                 : m.g.muxLit(m.rst, initBit, cones[i]->ns(b));
    }
    for (const std::string& o : f.outputs()) {
      addProbe(m, "fsm " + f.name(), o, cones[i]->output(o));
    }
  }
  for (const std::string& sig : consumed) {
    const std::size_t r = m.heldRegOf.at(sig);
    const Lit pulse = pulseOf.at(sig);
    const Lit clear = opt.latchesWithoutReset.contains(sig)
                          ? m.restart
                          : m.g.orLit(m.rst, m.restart);
    m.regs[r].next =
        m.g.andLit(aig::negate(clear), m.g.orLit(pulse, m.regs[r].cur));
    addProbe(m, "latch " + sig, sig + "_pulse", pulse);
    addProbe(m, "latch " + sig, sig + "_level",
             m.g.orLit(m.regs[r].cur, pulse));
  }
  return m;
}

/// Region-sequencer model: the sequencer FSM plus one handshake latch per
/// DN_<path> input.  Leaf completion pulses and branch selects are free
/// inputs (the leaves are proven separately); a DN latch clears on rst and
/// on its own re-arm pulse ST_<path>.
NetModel buildSequencerModel(const fsm::HierarchicalControlUnit& hcu,
                             synth::EncodingStyle style,
                             const XprOptions& opt) {
  NetModel m;
  const fsm::Fsm& seq = hcu.sequencer;
  m.rst = m.g.addInput("rst");
  m.rstIdx = m.g.inputIndexOf(aig::nodeOf(m.rst));
  m.restart = m.g.addInput("restart");
  m.restartIdx = m.g.inputIndexOf(aig::nodeOf(m.restart));

  const synth::Encoding enc = synth::encodeStates(seq, style);
  std::vector<Lit> stateCur;
  StateGroup group;
  group.fsmName = seq.name();
  for (int b = 0; b < enc.bits; ++b) {
    const std::size_t r =
        addReg(m, "sequencer " + seq.name(), "state" + std::to_string(b),
               seq.name() + ".state" + std::to_string(b));
    stateCur.push_back(m.regs[r].cur);
    group.regIdx.push_back(r);
  }
  m.stateGroups.push_back(std::move(group));

  std::vector<std::string> doneInputs;
  for (const std::string& in : seq.inputs()) {
    if (in.starts_with("DN_")) {
      doneInputs.push_back(in);
      m.heldRegOf[in] = addReg(m, "latch " + in, "held", in + ".held");
      addFree(m, in + "_pulse");
    } else {
      addFree(m, in);
    }
  }
  std::map<std::string, Lit> inputOf;
  for (const std::string& in : seq.inputs()) {
    inputOf[in] = in.starts_with("DN_")
                      ? m.g.orLit(m.regs[m.heldRegOf.at(in)].cur,
                                  m.g.findInput(in + "_pulse"))
                      : m.g.findInput(in);
  }

  FsmCones cones(m.g, seq, style, stateCur);
  cones.build(inputOf);
  const std::uint32_t init =
      enc.codeOf[static_cast<std::size_t>(seq.initial())];
  for (int b = 0; b < enc.bits; ++b) {
    const Lit initBit = (init >> b) & 1u ? kLitTrue : kLitFalse;
    m.regs[static_cast<std::size_t>(b)].next =
        m.g.muxLit(m.rst, initBit, cones.ns(b));
  }
  for (const std::string& o : seq.outputs()) {
    addProbe(m, "sequencer " + seq.name(), o, cones.output(o));
  }
  for (const std::string& in : doneInputs) {
    const std::size_t r = m.heldRegOf.at(in);
    const Lit pulse = m.g.findInput(in + "_pulse");
    // Re-arming a leaf clears its stale completion; the mutation seam drops
    // the rst arc, so the latch keeps its power-on X until the (X-guarded)
    // re-arm -- exactly the wait-state init bug XPR003 exists to catch.
    const std::string st = "ST_" + in.substr(3);
    const bool hasSt = std::find(seq.outputs().begin(), seq.outputs().end(),
                                 st) != seq.outputs().end();
    const Lit rearm = hasSt ? cones.output(st) : kLitFalse;
    const Lit clear = opt.doneLatchesWithoutInit.contains(in)
                          ? rearm
                          : m.g.orLit(m.rst, rearm);
    m.regs[r].next =
        m.g.andLit(aig::negate(clear), m.g.orLit(pulse, m.regs[r].cur));
    addProbe(m, "latch " + in, in + "_level",
             m.g.orLit(m.regs[r].cur, pulse));
  }
  return m;
}

// --- the bit-parallel ternary run ------------------------------------------

/// Cycle the restart strobe fires after the reset window.
int restartCycleFor(int r) { return r + 2; }

struct RunFailure {
  bool isReg = false;
  std::size_t idx = 0;  ///< reg or probe index
  int cycle = 0;

  friend bool operator<(const RunFailure& a, const RunFailure& b) {
    return std::tie(a.cycle, a.isReg, a.idx) <
           std::tie(b.cycle, b.isReg, b.idx);
  }
};

struct RunResult {
  std::vector<RunFailure> failures;  ///< merged in word order, then sorted
  std::uint64_t gateEvals = 0;
  /// Word-0 traces for counterexample rendering, one XWord per cycle.
  std::vector<std::vector<XWord>> regTrace;    ///< [reg][cycle]
  std::vector<std::vector<XWord>> probeTrace;  ///< [probe][cycle]
  std::vector<XWord> rstTrace, restartTrace;
  std::vector<std::vector<XWord>> freeTrace;  ///< [free input][cycle]
};

/// Simulate `totalCycles` cycles under the reset protocol with r reset
/// cycles.  All registers start all-X in every lane; lane 0 of word 0 also
/// drives every free input X (the subsuming proof lane).  Words run
/// concurrently and merge in index order, so the result is identical for
/// every thread count.
RunResult runTernary(const NetModel& m, int r, int totalCycles,
                     const XprOptions& opt) {
  const std::size_t words = static_cast<std::size_t>(std::max(1, opt.words));
  const int restartAt = restartCycleFor(r);
  std::vector<std::vector<RunFailure>> perWord(words);
  std::vector<std::uint64_t> evals(words, 0);
  RunResult out;
  out.regTrace.assign(m.regs.size(), {});
  out.probeTrace.assign(m.probes.size(), {});
  out.freeTrace.assign(m.freeIns.size(), {});

  common::parallelFor(words, [&](std::size_t w) {
    TernaryEvaluator eval(m.g);
    std::vector<XWord> cur(m.regs.size(), aig::xAllX());
    std::vector<XWord> inputs(m.g.numInputs(), aig::xAllZero());
    // Lane 0 of word 0 is the all-X proof lane: its inputs stay X and it is
    // exempt from the obligations that assume concrete inputs.
    const std::uint64_t concreteLanes =
        w == 0 ? ~std::uint64_t{1} : ~std::uint64_t{0};
    for (int c = 0; c < totalCycles; ++c) {
      inputs[m.rstIdx] = aig::xConcrete(c < r ? ~std::uint64_t{0} : 0);
      inputs[m.restartIdx] =
          aig::xConcrete(c == restartAt ? ~std::uint64_t{0} : 0);
      for (std::size_t f = 0; f < m.freeIns.size(); ++f) {
        XWord v = aig::xConcrete(inputWordFor(opt.seed, f, w, c));
        if (w == 0) {
          v.one &= ~std::uint64_t{1};
          v.x = 1;
        }
        inputs[m.freeIns[f].second] = v;
      }
      for (std::size_t i = 0; i < m.regs.size(); ++i) {
        inputs[m.regs[i].input] = cur[i];
      }
      eval.run(inputs);

      if (w == 0) {
        out.rstTrace.push_back(inputs[m.rstIdx]);
        out.restartTrace.push_back(inputs[m.restartIdx]);
        for (std::size_t f = 0; f < m.freeIns.size(); ++f) {
          out.freeTrace[f].push_back(inputs[m.freeIns[f].second]);
        }
        for (std::size_t i = 0; i < m.regs.size(); ++i) {
          out.regTrace[i].push_back(cur[i]);
        }
        for (std::size_t p = 0; p < m.probes.size(); ++p) {
          out.probeTrace[p].push_back(eval.value(m.probes[p].lit));
        }
      }

      if (c == r) {
        // The reset window has closed: every register must be determinate
        // in *every* lane, the all-X proof lane included.
        for (std::size_t i = 0; i < m.regs.size(); ++i) {
          if (cur[i].x != 0) perWord[w].push_back({true, i, c});
        }
      } else if (c > r) {
        for (std::size_t i = 0; i < m.regs.size(); ++i) {
          if ((cur[i].x & concreteLanes) != 0) {
            perWord[w].push_back({true, i, c});
          }
        }
      }
      if (c >= r) {
        for (std::size_t p = 0; p < m.probes.size(); ++p) {
          if ((eval.value(m.probes[p].lit).x & concreteLanes) != 0) {
            perWord[w].push_back({false, p, c});
          }
        }
      }

      for (std::size_t i = 0; i < m.regs.size(); ++i) {
        cur[i] = eval.value(m.regs[i].next);
      }
    }
    evals[w] = eval.gateEvals();
  });

  for (std::size_t w = 0; w < words; ++w) {
    out.gateEvals += evals[w];
    out.failures.insert(out.failures.end(), perWord[w].begin(),
                        perWord[w].end());
  }
  std::sort(out.failures.begin(), out.failures.end());
  return out;
}

// --- waveform rendering -----------------------------------------------------

char laneChar(XWord v) { return (v.x & 1) ? 'X' : ((v.one & 1) ? '1' : '0'); }

std::string laneString(const std::vector<XWord>& trace) {
  std::string s;
  for (const XWord v : trace) s += laneChar(v);
  return s;
}

/// "\n  <name padded> 1100XX10" rows under a cycle ruler.
std::string renderWave(
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::size_t width = 5;  // "cycle"
  std::size_t cycles = 0;
  for (const auto& [name, vals] : rows) {
    width = std::max(width, name.size());
    cycles = std::max(cycles, vals.size());
  }
  std::ostringstream os;
  os << "\n  " << std::string(width - 5, ' ') << "cycle ";
  for (std::size_t c = 0; c < cycles; ++c) os << (c % 10);
  for (const auto& [name, vals] : rows) {
    os << "\n  " << std::string(width - name.size(), ' ') << name << " "
       << vals;
  }
  return os.str();
}

/// Waveform of the proof lane around one failing register/probe: the reset
/// strobes, the free inputs, and every signal of the failing artifact.
std::string failureWave(const NetModel& m, const RunResult& run,
                        const std::string& failArtifact) {
  std::vector<std::pair<std::string, std::string>> rows;
  rows.emplace_back("rst", laneString(run.rstTrace));
  rows.emplace_back("restart", laneString(run.restartTrace));
  for (std::size_t f = 0; f < m.freeIns.size() && f < 6; ++f) {
    rows.emplace_back(m.freeIns[f].first, laneString(run.freeTrace[f]));
  }
  for (std::size_t i = 0; i < m.regs.size(); ++i) {
    if (m.regs[i].artifact == failArtifact) {
      rows.emplace_back(m.regs[i].name, laneString(run.regTrace[i]));
    }
  }
  for (std::size_t p = 0; p < m.probes.size(); ++p) {
    if (m.probes[p].artifact == failArtifact) {
      rows.emplace_back(m.probes[p].name, laneString(run.probeTrace[p]));
    }
  }
  return renderWave(rows);
}

/// XPR001/XPR003 over one model: search the reset depth, report per-artifact
/// counterexamples, append the verdict row.  Returns the proven depth or -1.
int checkModel(const NetModel& m, const std::string& artifact,
               const char* rule, Report& report, const XprOptions& opt,
               XpropStats& stats) {
  const int budget = std::max(1, opt.maxCycles);
  const int total = budget + std::max(4, opt.maxCycles);
  const std::uint64_t lanes =
      static_cast<std::uint64_t>(std::max(1, opt.words)) * 64 - 1;

  XpropPropertyStat row;
  row.artifact = artifact;
  row.rule = rule;
  row.instances = lanes;

  RunResult firstFail;
  bool haveFail = false;
  for (int r = 1; r <= budget; ++r) {
    RunResult run = runTernary(m, r, total, opt);
    stats.instances += lanes;
    stats.gateEvals += run.gateEvals;
    row.gateEvals += run.gateEvals;
    if (run.failures.empty()) {
      stats.resetDepth = std::max(stats.resetDepth, r);
      row.verdict = propertyVerdictName(PropertyVerdict::Proved);
      row.depth = r;
      stats.properties.push_back(std::move(row));
      return r;
    }
    if (!haveFail) {
      firstFail = std::move(run);
      haveFail = true;
    }
  }

  // No reset depth within the budget drains every X: report the r=1 run's
  // proof-lane waveform, one diagnostic per offending artifact.
  row.verdict = propertyVerdictName(PropertyVerdict::Counterexample);
  row.cexCycle = firstFail.failures.front().cycle;
  std::set<std::string> reported;
  for (const RunFailure& f : firstFail.failures) {
    const std::string& fa =
        f.isReg ? m.regs[f.idx].artifact : m.probes[f.idx].artifact;
    const std::string& name =
        f.isReg ? m.regs[f.idx].name : m.probes[f.idx].name;
    if (!reported.insert(fa).second) continue;
    report.add(rule, fa, name,
               "still X " + std::to_string(f.cycle) +
                   " cycle(s) after power-on despite the reset window "
                   "(searched up to " +
                   std::to_string(budget) +
                   " reset cycles; lane shown is the all-X power-on under "
                   "all-X inputs):" +
                   failureWave(m, firstFail, fa));
  }
  stats.properties.push_back(std::move(row));
  return -1;
}

// --- XPR002: ternary agreement of the emitted RTL ---------------------------

/// One model<->RTL compare point: a packed group of model register bits (or
/// one probe) against one vsim signal.
struct ComparePoint {
  std::string rtlName;              ///< hierarchical vsim name
  std::vector<std::size_t> regIdx;  ///< model regs, LSB first (empty: probe)
  std::size_t probeIdx = 0;         ///< model probe when regIdx is empty
};

struct PackedVal {
  std::uint64_t v = 0;
  std::uint64_t x = 0;
};

PackedVal packModel(const ComparePoint& p, const std::vector<XWord>& regs,
                    const TernaryEvaluator& eval, const NetModel& m) {
  PackedVal out;
  if (p.regIdx.empty()) {
    const XWord w = eval.value(m.probes[p.probeIdx].lit);
    return {w.one & 1, w.x & 1};
  }
  for (std::size_t b = 0; b < p.regIdx.size(); ++b) {
    out.v |= (regs[p.regIdx[b]].one & 1) << b;
    out.x |= (regs[p.regIdx[b]].x & 1) << b;
  }
  return out;
}

char pointChar(std::uint64_t v, std::uint64_t x, bool multiBit) {
  if (x != 0) return 'X';
  if (!multiBit) return v ? '1' : '0';
  return static_cast<char>('0' + (v % 10));  // state code, mod-10 digits
}

/// Replay the emitted RTL under ternary vsim against the binary network
/// model: the all-X proof instance plus rtlInstances concrete power-ons.
/// Mutually-determinate bits must agree every cycle, and after the reset
/// window the RTL may not hold X anywhere the model is determinate.
void checkRtlAgreement(const fsm::DistributedControlUnit& dcu,
                       const NetModel& m, const std::string& artifact,
                       Report& report, const XprOptions& opt, int resetDepth,
                       XpropStats& stats) {
  const std::string source = opt.rtlOverride.empty()
                                 ? rtl::emitPackage(dcu, kXpropTopName)
                                 : opt.rtlOverride;
  const int r = resetDepth > 0 ? resetDepth : 1;
  const int total = r + std::max(8, opt.maxCycles);
  const int restartAt = restartCycleFor(r);
  const int instances = std::max(0, opt.rtlInstances) + 1;

  XpropPropertyStat row;
  row.artifact = artifact;
  row.rule = "XPR002";
  row.instances = static_cast<std::uint64_t>(instances);
  row.verdict = propertyVerdictName(PropertyVerdict::Proved);
  row.depth = r;

  std::vector<ComparePoint> points;
  for (const StateGroup& gr : m.stateGroups) {
    points.push_back({"u_" + gr.fsmName + ".state", gr.regIdx, 0});
  }
  std::set<std::string> internal;
  for (const auto& [sig, producer] : dcu.producerOf) internal.insert(sig);
  for (const auto& [sig, reg] : m.heldRegOf) {
    points.push_back({"u_latch_" + sig + ".held", {reg}, 0});
    points.push_back({sig + "_pulse", {}, m.probeIdxOf.at(sig + "_pulse")});
    points.push_back({sig + "_level", {}, m.probeIdxOf.at(sig + "_level")});
  }
  for (const fsm::UnitController& c : dcu.controllers) {
    for (const std::string& o : c.fsm.outputs()) {
      if (!internal.contains(o) && !o.starts_with("CCO_")) {
        points.push_back({o, {}, m.probeIdxOf.at(o)});
      }
    }
  }

  try {
    for (int inst = 0; inst < instances && row.cexCycle < 0; ++inst) {
      vsim::Simulator sim(source, kXpropTopName, vsim::ValueMode::Ternary);
      sim.setAllX();
      TernaryEvaluator eval(m.g);
      std::vector<XWord> regs(m.regs.size(), aig::xAllX());
      std::vector<XWord> inputs(m.g.numInputs(), aig::xAllZero());
      std::vector<std::string> modelWave(points.size()),
          rtlWave(points.size());
      std::string rstWave, restartWave;

      for (int c = 0; c < total && row.cexCycle < 0; ++c) {
        const bool rstNow = c < r;
        const bool restartNow = c == restartAt;
        sim.setInput("rst", rstNow ? 1 : 0);
        sim.setInput("restart", restartNow ? 1 : 0);
        inputs[m.rstIdx] = aig::xConcrete(rstNow ? ~std::uint64_t{0} : 0);
        inputs[m.restartIdx] =
            aig::xConcrete(restartNow ? ~std::uint64_t{0} : 0);
        for (std::size_t f = 0; f < m.freeIns.size(); ++f) {
          if (inst == 0) {
            sim.setInputX(m.freeIns[f].first);
            inputs[m.freeIns[f].second] = aig::xAllX();
          } else {
            const bool bit = inputWordFor(opt.seed ^ 0x52544cull, f,
                                          static_cast<std::size_t>(inst), c) &
                             1;
            sim.setInput(m.freeIns[f].first, bit ? 1 : 0);
            inputs[m.freeIns[f].second] =
                bit ? aig::xAllOne() : aig::xAllZero();
          }
        }
        for (std::size_t i = 0; i < m.regs.size(); ++i) {
          inputs[m.regs[i].input] = regs[i];
        }
        sim.settle();
        eval.run(inputs);
        ++stats.rtlCycles;
        rstWave += rstNow ? '1' : '0';
        restartWave += restartNow ? '1' : '0';

        for (std::size_t p = 0; p < points.size(); ++p) {
          const ComparePoint& pt = points[p];
          const std::uint64_t mask =
              pt.regIdx.size() > 1
                  ? (std::uint64_t{1} << pt.regIdx.size()) - 1
                  : 1;
          const PackedVal mv = packModel(pt, regs, eval, m);
          const std::uint64_t rv = sim.signal(pt.rtlName) & mask;
          const std::uint64_t rx = sim.signalXMask(pt.rtlName) & mask;
          modelWave[p] += pointChar(mv.v, mv.x, pt.regIdx.size() > 1);
          rtlWave[p] += pointChar(rv, rx, pt.regIdx.size() > 1);

          // The model is the reference: X it has proven away (XPR001) must
          // not survive in the RTL, and bits both sides know must agree.
          std::string why;
          if (((mv.v ^ rv) & ~mv.x & ~rx) != 0) {
            why = "determinate bits disagree";
          } else if (c >= r && inst > 0 && (rx & ~mv.x) != 0) {
            why = "RTL still X after the reset window";
          } else if (c == r && inst == 0 && !pt.regIdx.empty() &&
                     (rx & ~mv.x) != 0) {
            why = "RTL register still X after the reset window "
                  "(all-X inputs)";
          }
          if (!why.empty()) {
            row.verdict =
                propertyVerdictName(PropertyVerdict::Counterexample);
            row.cexCycle = c;
            report.add(
                "XPR002", artifact, pt.rtlName,
                "RTL ternary replay diverges from the network model at "
                "cycle " +
                    std::to_string(c) + " (instance " + std::to_string(inst) +
                    (inst == 0 ? ", all-X inputs" : ", concrete inputs") +
                    "): " + why + ":" +
                    renderWave({{"rst", rstWave},
                                {"restart", restartWave},
                                {"model " + pt.rtlName, modelWave[p]},
                                {"rtl " + pt.rtlName, rtlWave[p]}}));
            break;
          }
        }
        if (row.cexCycle >= 0) break;

        for (std::size_t i = 0; i < m.regs.size(); ++i) {
          regs[i] = eval.value(m.regs[i].next);
        }
        sim.clockEdge();
      }
      row.gateEvals += eval.gateEvals();
      stats.gateEvals += eval.gateEvals();
    }
  } catch (const Error& e) {
    row.verdict = propertyVerdictName(PropertyVerdict::Counterexample);
    report.add("XPR002", artifact, "",
               std::string("ternary RTL replay failed: ") + e.what());
  }
  stats.properties.push_back(std::move(row));
}

}  // namespace

std::map<std::string, RuleCost> XpropStats::ruleCost() const {
  std::map<std::string, RuleCost> out;
  for (const XpropPropertyStat& p : properties) {
    out[p.rule].queries += p.instances;
    out[p.rule] += p.cost;
  }
  return out;
}

XpropStats& XpropStats::operator+=(const XpropStats& o) {
  controllers += o.controllers;
  stateBits += o.stateBits;
  latchBits += o.latchBits;
  resetDepth = std::max(resetDepth, o.resetDepth);
  instances += o.instances;
  gateEvals += o.gateEvals;
  rtlCycles += o.rtlCycles;
  properties.insert(properties.end(), o.properties.begin(),
                    o.properties.end());
  return *this;
}

XpropStats checkXprop(const fsm::DistributedControlUnit& dcu,
                      const std::string& artifact, Report& report,
                      const XprOptions& options) {
  XpropStats stats;
  stats.artifact = artifact;
  stats.controllers = dcu.controllers.size();

  const std::size_t errorsBefore = report.errorCount();
  NetModel model = buildFlatModel(dcu, options.style, options);
  for (const ModelReg& r : model.regs) {
    (r.name == "held" ? stats.latchBits : stats.stateBits) += 1;
  }
  const int depth =
      checkModel(model, artifact, "XPR001", report, options, stats);

  // The RTL replay always compares against the *binary* model, because the
  // emitted controllers always encode binary.
  if (options.style == synth::EncodingStyle::Binary) {
    checkRtlAgreement(dcu, model, artifact, report, options, depth, stats);
  } else {
    const NetModel binary =
        buildFlatModel(dcu, synth::EncodingStyle::Binary, options);
    checkRtlAgreement(dcu, binary, artifact, report, options, depth, stats);
  }

  if (report.errorCount() == errorsBefore) {
    XpropPropertyStat row;
    row.artifact = artifact;
    row.rule = "XPR004";
    row.verdict = propertyVerdictName(PropertyVerdict::Proved);
    row.depth = depth;
    row.instances = stats.instances;
    row.gateEvals = stats.gateEvals;
    report.add("XPR004", artifact, "",
               "reset robustness proven: every register determinate within " +
                   std::to_string(depth) +
                   " reset cycle(s) from any power-on state (" +
                   std::to_string(stats.instances) + " instances, " +
                   std::to_string(stats.gateEvals) +
                   " ternary gate evaluations; RTL ternary replay agrees)");
    stats.properties.push_back(std::move(row));
  }
  return stats;
}

XpropStats checkXpropHierarchical(const fsm::HierarchicalControlUnit& hcu,
                                  const std::string& artifact, Report& report,
                                  const XprOptions& options) {
  XpropStats stats;
  stats.artifact = artifact;
  stats.controllers = 1;  // the sequencer; leaves add their own below

  const std::size_t errorsBefore = report.errorCount();
  NetModel model = buildSequencerModel(hcu, options.style, options);
  for (const ModelReg& r : model.regs) {
    (r.name == "held" ? stats.latchBits : stats.stateBits) += 1;
  }
  const int depth =
      checkModel(model, artifact, "XPR003", report, options, stats);
  if (report.errorCount() == errorsBefore) {
    report.add("XPR004", artifact, "",
               "sequencer and ST_/DN_ handshake latches X-safe within " +
                   std::to_string(depth) +
                   " reset cycle(s) under free DN_/SEL inputs");
  }

  for (const fsm::LeafControl& leaf : hcu.leaves) {
    stats += checkXprop(leaf.dcu, "leaf " + leaf.path + " of " + artifact,
                        report, options);
  }
  return stats;
}

}  // namespace tauhls::verify
