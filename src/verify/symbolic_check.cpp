#include "verify/symbolic_check.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/sat.hpp"
#include "aig/unroll.hpp"
#include "common/error.hpp"
#include "fsm/signal.hpp"
#include "verify/model_check.hpp"

namespace tauhls::verify {

using aig::Lit;
using detail::OpTable;

const char* propertyVerdictName(PropertyVerdict v) {
  switch (v) {
    case PropertyVerdict::Proved: return "PROVED";
    case PropertyVerdict::Counterexample: return "CEX";
    case PropertyVerdict::Unknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

std::map<std::string, RuleCost> SymbolicStats::ruleCost() const {
  std::map<std::string, RuleCost> out;
  for (const SymbolicProperty& p : properties) out[p.rule] += p.cost;
  out["MDL008"] += invariantCost;
  return out;
}

std::vector<SymbolicPropertyStat> SymbolicStats::jsonStats() const {
  std::vector<SymbolicPropertyStat> out;
  out.reserve(properties.size());
  for (const SymbolicProperty& p : properties) {
    out.push_back(SymbolicPropertyStat{artifact, p.rule,
                                       propertyVerdictName(p.verdict),
                                       p.depthReached, p.inductionK, p.cost});
  }
  return out;
}

namespace {

constexpr int kNumProperties = 5;  // MDL001..MDL005

RuleCost costOf(const aig::SatStats& d) {
  RuleCost c;
  c.decisions = d.decisions;
  c.propagations = d.propagations;
  c.conflicts = d.conflicts;
  c.learned = d.learned;
  c.restarts = d.restarts;
  return c;
}

/// A witness cone: evaluated on the counterexample's final cycle to name the
/// specific violation inside a property's disjunction.
struct Witness {
  std::string where;
  std::string detail;
  Lit cone = aig::kLitFalse;
};

/// One unit controller's symbolic image: the one-shot machine, its one-hot
/// state inputs, sticky latch inputs, and the op-position decoration the
/// strengthening invariant is built from.
struct ControllerModel {
  fsm::Fsm fsm{"unnamed"};  ///< one-shot rewrite (wraps redirected to DONE)
  int doneState = -1;
  std::vector<Lit> st;              ///< per state: template input
  std::map<std::string, Lit> lat;   ///< latched input -> template input
  std::vector<int> completesOp;     ///< per state: global op index or -1
  std::vector<int> statePos;        ///< per state: unit position (n = DONE)
  std::vector<int> opAtPos;         ///< unit position -> global op index
};

/// One instantiation of the three-phase product step as template cones.
struct StepCones {
  std::map<std::string, Lit> pulse;  ///< final emitted set (4th iterate)
  Lit nonConv = aig::kLitFalse;      ///< 4th iterate != 3rd (fixpoint failed)
  std::vector<std::vector<Lit>> nextSt;
  std::map<std::pair<int, std::string>, Lit> nextLat;
  std::vector<Lit> rePulse;  ///< per op: RE fires this cycle
};

struct Network {
  aig::Aig g;
  std::vector<ControllerModel> ctls;
  std::map<std::string, Lit> ext;  ///< external input -> template input
  std::set<std::string> internal;  ///< pulse (CCO) signal names
  std::vector<Lit> fired;          ///< per op: monitor template input
  Lit allDone = aig::kLitFalse;
  StepCones step;        ///< free completion inputs
  StepCones stepAllTrue; ///< completion inputs forced to 1 (progress check)
  aig::SeqModel seq;
  std::vector<std::vector<std::size_t>> stVar;  ///< [c][state] -> seq var
  Lit bad[kNumProperties] = {};
  std::vector<Witness> witnesses[kNumProperties];
  Lit inv = aig::kLitFalse;  ///< strengthening invariant (k-induction only)
};

/// Value of `sig` as controller `c` observes it during a product step:
/// external inputs read the (possibly forced) free variable, internal pulse
/// signals read the emission iterate plus the controller's own sticky latch.
Lit signalValue(Network& net, const ControllerModel& cm, const std::string& sig,
                const std::map<std::string, Lit>& emitted, bool extTrue) {
  const auto e = net.ext.find(sig);
  if (e != net.ext.end()) return extTrue ? aig::kLitTrue : e->second;
  Lit v = aig::kLitFalse;
  if (net.internal.contains(sig)) {
    const auto p = emitted.find(sig);
    if (p != emitted.end()) v = p->second;
    const auto l = cm.lat.find(sig);
    if (l != cm.lat.end()) v = net.g.orLit(v, l->second);
  }
  return v;
}

Lit evalGuard(Network& net, const ControllerModel& cm, const fsm::Guard& guard,
              const std::map<std::string, Lit>& emitted, bool extTrue) {
  std::vector<Lit> terms;
  terms.reserve(guard.terms().size());
  for (const fsm::GuardTerm& t : guard.terms()) {
    std::vector<Lit> lits;
    lits.reserve(t.literals.size());
    for (const auto& [sig, positive] : t.literals) {
      const Lit v = signalValue(net, cm, sig, emitted, extTrue);
      lits.push_back(positive ? v : aig::negate(v));
    }
    terms.push_back(net.g.andN(lits));
  }
  return net.g.orN(terms);
}

/// One iterate of the phase-1 emission function: which internal pulses the
/// controllers emit given the previous iterate's pulses.
std::map<std::string, Lit> emitIterate(Network& net,
                                       const std::map<std::string, Lit>& prev,
                                       bool extTrue) {
  std::map<std::string, Lit> out;
  for (const std::string& sig : net.internal) out[sig] = aig::kLitFalse;
  for (const ControllerModel& cm : net.ctls) {
    for (const fsm::Transition& t : cm.fsm.transitions()) {
      bool emits = false;
      for (const std::string& sig : t.outputs) {
        if (net.internal.contains(sig)) {
          emits = true;
          break;
        }
      }
      if (!emits) continue;
      const Lit en = net.g.andLit(cm.st[static_cast<std::size_t>(t.from)],
                                  evalGuard(net, cm, t.guard, prev, extTrue));
      for (const std::string& sig : t.outputs) {
        if (net.internal.contains(sig)) out[sig] = net.g.orLit(out[sig], en);
      }
    }
  }
  return out;
}

/// Builds the three product phases as template cones, mirroring
/// fsm::buildProduct: four emission iterates (the product's convergence
/// budget), priority-encoded transition firing under the final iterate, and
/// sticky latch updates.
StepCones buildStep(Network& net, const OpTable& table, bool extTrue) {
  StepCones out;
  std::map<std::string, Lit> e;
  for (const std::string& sig : net.internal) e[sig] = aig::kLitFalse;
  std::map<std::string, Lit> prev;
  for (int iter = 0; iter < 4; ++iter) {
    prev = e;
    e = emitIterate(net, e, extTrue);
  }
  out.pulse = e;
  std::vector<Lit> diffs;
  for (const auto& [sig, lit] : e) {
    diffs.push_back(net.g.xorLit(lit, prev.at(sig)));
  }
  out.nonConv = net.g.orN(diffs);

  out.nextSt.resize(net.ctls.size());
  out.rePulse.assign(table.names.size(), aig::kLitFalse);
  for (std::size_t c = 0; c < net.ctls.size(); ++c) {
    const ControllerModel& cm = net.ctls[c];
    out.nextSt[c].assign(cm.fsm.numStates(), aig::kLitFalse);
    for (int s = 0; s < static_cast<int>(cm.fsm.numStates()); ++s) {
      Lit notPrev = aig::kLitTrue;  // phase 2 fires the first enabled guard
      for (const fsm::Transition* t : cm.fsm.transitionsFrom(s)) {
        const Lit gl = evalGuard(net, cm, t->guard, e, extTrue);
        const Lit fire =
            net.g.andN({cm.st[static_cast<std::size_t>(s)], gl, notPrev});
        notPrev = net.g.andLit(notPrev, aig::negate(gl));
        out.nextSt[c][static_cast<std::size_t>(t->to)] =
            net.g.orLit(out.nextSt[c][static_cast<std::size_t>(t->to)], fire);
        for (const std::string& sig : t->outputs) {
          const auto re = table.indexOfRe.find(sig);
          if (re != table.indexOfRe.end()) {
            const auto op = static_cast<std::size_t>(re->second);
            out.rePulse[op] = net.g.orLit(out.rePulse[op], fire);
          }
        }
      }
    }
    for (const auto& [sig, lit] : cm.lat) {
      out.nextLat[{static_cast<int>(c), sig}] =
          net.g.orLit(lit, e.at(sig));
    }
  }
  return out;
}

/// Decorate each one-shot controller with op positions: a state's position is
/// the unit-sequence index of the op it completes (RE in some outgoing
/// transition's outputs); wait states inherit the position of a resolved
/// successor; DONE sits past the last op.  The decoration only feeds the
/// strengthening invariant, whose base case is checked from the initial
/// state, so a mis-derivation on a mutated controller disables induction
/// instead of causing an unsound proof.
void derivePositions(ControllerModel& cm, const OpTable& table,
                     const std::map<std::string, int>& opIndexOfName) {
  const std::size_t numStates = cm.fsm.numStates();
  cm.completesOp.assign(numStates, -1);
  cm.statePos.assign(numStates, -1);
  std::map<int, int> posOfOp;  // global op index -> unit position
  for (std::size_t j = 0; j < cm.opAtPos.size(); ++j) {
    posOfOp[cm.opAtPos[j]] = static_cast<int>(j);
  }
  for (int s = 0; s < static_cast<int>(numStates); ++s) {
    for (const fsm::Transition* t : cm.fsm.transitionsFrom(s)) {
      for (const std::string& sig : t->outputs) {
        const auto re = table.indexOfRe.find(sig);
        if (re != table.indexOfRe.end()) {
          cm.completesOp[static_cast<std::size_t>(s)] = re->second;
        }
      }
    }
    const int op = cm.completesOp[static_cast<std::size_t>(s)];
    if (op >= 0 && posOfOp.contains(op)) {
      cm.statePos[static_cast<std::size_t>(s)] = posOfOp.at(op);
    }
  }
  cm.statePos[static_cast<std::size_t>(cm.doneState)] =
      static_cast<int>(cm.opAtPos.size());
  // Wait states: inherit a resolved non-self successor's position.
  for (std::size_t round = 0; round < numStates; ++round) {
    bool changed = false;
    for (int s = 0; s < static_cast<int>(numStates); ++s) {
      if (cm.statePos[static_cast<std::size_t>(s)] >= 0) continue;
      for (const fsm::Transition* t : cm.fsm.transitionsFrom(s)) {
        if (t->to == s) continue;
        const int p = cm.statePos[static_cast<std::size_t>(t->to)];
        if (p >= 0) {
          cm.statePos[static_cast<std::size_t>(s)] = p;
          changed = true;
          break;
        }
      }
    }
    if (!changed) break;
  }
  for (int& p : cm.statePos) {
    if (p < 0) p = 0;  // unreachable with generated controllers
  }
  (void)opIndexOfName;
}

/// Exactly-one-of over `lits` violated: none set, or at least two set.
Lit notExactlyOne(aig::Aig& g, const std::vector<Lit>& lits) {
  std::vector<Lit> pairs;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    for (std::size_t j = i + 1; j < lits.size(); ++j) {
      pairs.push_back(g.andLit(lits[i], lits[j]));
    }
  }
  return g.orLit(aig::negate(g.orN(lits)), g.orN(pairs));
}

Network buildNetwork(const fsm::DistributedControlUnit& dcu,
                     const sched::ScheduledDfg& s, const OpTable& table) {
  Network net;
  std::map<std::string, int> opIndexOfName;
  for (std::size_t i = 0; i < table.names.size(); ++i) {
    opIndexOfName[table.names[i]] = static_cast<int>(i);
  }
  std::map<std::string, int> opOfCco;
  for (std::size_t i = 0; i < table.names.size(); ++i) {
    opOfCco[fsm::opCompletionSignal(table.names[i])] = static_cast<int>(i);
  }
  for (const auto& [sig, producer] : dcu.producerOf) net.internal.insert(sig);
  for (const std::string& sig : dcu.externalInputs) {
    net.ext[sig] = net.g.addInput(sig);
  }

  // One-shot controllers and their template inputs.
  for (const fsm::UnitController& src : dcu.controllers) {
    TAUHLS_CHECK(!src.ops.empty(), "controller binds no operations");
    ControllerModel cm;
    cm.fsm = detail::oneShotController(
        src.fsm,
        fsm::registerEnableSignal(s.graph.node(src.ops.back()).name));
    cm.doneState = cm.fsm.findState("DONE");
    TAUHLS_ASSERT(cm.doneState >= 0, "one-shot controller lost its DONE state");
    for (dfg::NodeId op : src.ops) {
      cm.opAtPos.push_back(opIndexOfName.at(s.graph.node(op).name));
    }
    for (int st = 0; st < static_cast<int>(cm.fsm.numStates()); ++st) {
      cm.st.push_back(
          net.g.addInput("st:" + cm.fsm.name() + ":" + cm.fsm.stateName(st)));
    }
    for (const std::string& sig : src.latchedInputs) {
      cm.lat[sig] = net.g.addInput("lat:" + cm.fsm.name() + ":" + sig);
    }
    derivePositions(cm, table, opIndexOfName);
    net.ctls.push_back(std::move(cm));
  }
  for (const std::string& name : table.names) {
    net.fired.push_back(net.g.addInput("fired:" + name));
  }

  std::vector<Lit> doneBits;
  for (const ControllerModel& cm : net.ctls) {
    doneBits.push_back(cm.st[static_cast<std::size_t>(cm.doneState)]);
  }
  net.allDone = net.g.andN(doneBits);

  net.step = buildStep(net, table, /*extTrue=*/false);
  net.stepAllTrue = buildStep(net, table, /*extTrue=*/true);

  // --- Sequential model: states, latches, fired monitors ------------------
  net.stVar.resize(net.ctls.size());
  for (std::size_t c = 0; c < net.ctls.size(); ++c) {
    const ControllerModel& cm = net.ctls[c];
    for (int st = 0; st < static_cast<int>(cm.fsm.numStates()); ++st) {
      net.stVar[c].push_back(net.seq.vars.size());
      net.seq.vars.push_back(aig::SeqVar{
          "st:" + cm.fsm.name() + ":" + cm.fsm.stateName(st),
          cm.st[static_cast<std::size_t>(st)],
          net.step.nextSt[c][static_cast<std::size_t>(st)],
          st == cm.fsm.initial()});
    }
  }
  for (std::size_t c = 0; c < net.ctls.size(); ++c) {
    for (const auto& [sig, lit] : net.ctls[c].lat) {
      net.seq.vars.push_back(
          aig::SeqVar{"lat:" + net.ctls[c].fsm.name() + ":" + sig, lit,
                      net.step.nextLat.at({static_cast<int>(c), sig}), false});
    }
  }
  for (std::size_t i = 0; i < table.names.size(); ++i) {
    net.seq.vars.push_back(
        aig::SeqVar{"fired:" + table.names[i], net.fired[i],
                    net.g.orLit(net.fired[i], net.step.rePulse[i]), false});
  }

  // --- MDL001: a controller has zero or several enabled transitions, or the
  // emission fixpoint fails to converge.  Checked under both the empty and
  // the final pulse iterate -- the explicit engine steps every controller
  // under each iterate and throws on either defect.
  {
    std::map<std::string, Lit> empty;
    for (const std::string& sig : net.internal) empty[sig] = aig::kLitFalse;
    std::vector<Lit> parts;
    for (const ControllerModel& cm : net.ctls) {
      std::vector<Lit> perState;
      for (int st = 0; st < static_cast<int>(cm.fsm.numStates()); ++st) {
        std::vector<Lit> gEmpty;
        std::vector<Lit> gFinal;
        for (const fsm::Transition* t : cm.fsm.transitionsFrom(st)) {
          gEmpty.push_back(evalGuard(net, cm, t->guard, empty, false));
          gFinal.push_back(evalGuard(net, cm, t->guard, net.step.pulse, false));
        }
        const Lit viol = net.g.orLit(notExactlyOne(net.g, gEmpty),
                                     notExactlyOne(net.g, gFinal));
        perState.push_back(
            net.g.andLit(cm.st[static_cast<std::size_t>(st)], viol));
      }
      const Lit cone = net.g.orN(perState);
      parts.push_back(cone);
      net.witnesses[0].push_back(
          Witness{cm.fsm.name(),
                  "has zero or several enabled transitions", cone});
    }
    parts.push_back(net.step.nonConv);
    net.witnesses[0].push_back(Witness{
        "", "completion-pulse fixpoint did not converge", net.step.nonConv});
    net.bad[0] = net.g.orN(parts);
  }

  // --- MDL002: a non-done configuration repeats itself even under all-true
  // completion inputs -- no controller can ever make progress again.
  {
    std::vector<Lit> same;
    for (std::size_t c = 0; c < net.ctls.size(); ++c) {
      const ControllerModel& cm = net.ctls[c];
      for (int st = 0; st < static_cast<int>(cm.fsm.numStates()); ++st) {
        same.push_back(aig::negate(net.g.xorLit(
            cm.st[static_cast<std::size_t>(st)],
            net.stepAllTrue.nextSt[c][static_cast<std::size_t>(st)])));
      }
      for (const auto& [sig, lit] : cm.lat) {
        same.push_back(aig::negate(net.g.xorLit(
            lit, net.stepAllTrue.nextLat.at({static_cast<int>(c), sig}))));
      }
    }
    net.bad[1] = net.g.andN({aig::negate(net.allDone), net.g.andN(same)});
    for (const ControllerModel& cm : net.ctls) {
      net.witnesses[1].push_back(Witness{
          cm.fsm.name(), "is stuck waiting for a completion that never comes",
          net.g.andLit(net.bad[1],
                       aig::negate(cm.st[static_cast<std::size_t>(
                           cm.doneState)]))});
    }
  }

  // --- MDL003: lock-step -- an op's RE fires twice in one iteration, or the
  // all-DONE configuration is reached with some op never fired.
  {
    std::vector<Lit> parts;
    for (std::size_t i = 0; i < table.names.size(); ++i) {
      const Lit refire = net.g.andLit(net.step.rePulse[i], net.fired[i]);
      parts.push_back(refire);
      net.witnesses[2].push_back(
          Witness{table.names[i], "completes twice in one iteration", refire});
    }
    for (std::size_t i = 0; i < table.names.size(); ++i) {
      const Lit unfired =
          net.g.andLit(net.allDone, aig::negate(net.fired[i]));
      parts.push_back(unfired);
      net.witnesses[2].push_back(Witness{
          table.names[i], "never completes in a finished iteration", unfired});
    }
    net.bad[2] = net.g.orN(parts);
  }

  // --- MDL004: causality -- RE fires although a data predecessor has not.
  {
    std::vector<Lit> parts;
    for (std::size_t i = 0; i < table.names.size(); ++i) {
      for (const int p : table.dataPreds[i]) {
        const Lit cone = net.g.andLit(
            net.step.rePulse[i],
            aig::negate(net.fired[static_cast<std::size_t>(p)]));
        parts.push_back(cone);
        net.witnesses[3].push_back(
            Witness{table.names[i],
                    "completes although data predecessor " +
                        table.names[static_cast<std::size_t>(p)] +
                        " has not completed",
                    cone});
      }
    }
    net.bad[3] = net.g.orN(parts);
  }

  // --- MDL005: per-unit order -- RE fires before the unit's previous op.
  {
    std::vector<Lit> parts;
    for (std::size_t i = 0; i < table.names.size(); ++i) {
      const int q = table.unitPred[i];
      if (q < 0) continue;
      const Lit cone = net.g.andLit(
          net.step.rePulse[i],
          aig::negate(net.fired[static_cast<std::size_t>(q)]));
      parts.push_back(cone);
      net.witnesses[4].push_back(
          Witness{table.names[i],
                  "completes before its unit's previous operation " +
                      table.names[static_cast<std::size_t>(q)],
                  cone});
    }
    net.bad[4] = net.g.orN(parts);
  }

  // --- Strengthening invariant (k-induction only; never assumed by BMC):
  // one-hot states, fired == "state is past the op", latch == producer
  // fired, executing states imply their predecessors' latches.
  {
    std::vector<Lit> parts;
    for (const ControllerModel& cm : net.ctls) {
      parts.push_back(aig::negate(notExactlyOne(net.g, cm.st)));
      for (std::size_t j = 0; j < cm.opAtPos.size(); ++j) {
        std::vector<Lit> past;
        for (int st = 0; st < static_cast<int>(cm.fsm.numStates()); ++st) {
          if (cm.statePos[static_cast<std::size_t>(st)] >
              static_cast<int>(j)) {
            past.push_back(cm.st[static_cast<std::size_t>(st)]);
          }
        }
        parts.push_back(aig::negate(net.g.xorLit(
            net.fired[static_cast<std::size_t>(cm.opAtPos[j])],
            net.g.orN(past))));
      }
      for (const auto& [sig, lit] : cm.lat) {
        const auto producer = opOfCco.find(sig);
        if (producer == opOfCco.end()) continue;
        parts.push_back(aig::negate(net.g.xorLit(
            lit, net.fired[static_cast<std::size_t>(producer->second)])));
      }
      for (int st = 0; st < static_cast<int>(cm.fsm.numStates()); ++st) {
        const int op = cm.completesOp[static_cast<std::size_t>(st)];
        if (op < 0) continue;
        for (const int p : table.dataPreds[static_cast<std::size_t>(op)]) {
          const auto l = cm.lat.find(
              fsm::opCompletionSignal(table.names[static_cast<std::size_t>(p)]));
          if (l == cm.lat.end()) continue;
          parts.push_back(net.g.orLit(
              aig::negate(cm.st[static_cast<std::size_t>(st)]), l->second));
        }
      }
    }
    net.inv = net.g.andN(parts);
  }
  return net;
}

/// Replays a satisfying assignment deterministically: model values of the
/// frame inputs drive Aig::evaluate, so every state/latch/pulse cone of every
/// cycle -- encoded or not -- gets a consistent concrete value.
class TraceDecoder {
 public:
  TraceDecoder(Network& net, aig::Unroller& unroller,
               const aig::CnfEncoder& enc, const aig::SatSolver& solver)
      : net_(net), unroller_(unroller) {
    vals_.assign(net.g.numInputs(), false);
    for (std::size_t i = 0; i < net.g.numInputs(); ++i) {
      const std::uint32_t node =
          aig::nodeOf(net.g.findInput(net.g.inputNames()[i]));
      const int var = enc.varIfEncoded(node);
      if (var != 0) vals_[i] = solver.modelValue(var);
    }
  }

  bool eval(int frame, Lit templateLit) {
    const Lit l = unroller_.at(frame, templateLit);
    if (net_.g.numInputs() > vals_.size()) {
      vals_.resize(net_.g.numInputs(), false);  // unconstrained: pick 0
    }
    return net_.g.evaluate(l, vals_);
  }

  /// Multi-line per-cycle waveform of frames 0..depth.
  std::string waveform(int depth) {
    std::ostringstream os;
    for (int f = 0; f <= depth; ++f) {
      os << "\n  cycle " << f << ":";
      for (const auto& [sig, lit] : net_.ext) {
        os << " " << sig << "=" << (eval(f, lit) ? "1" : "0");
      }
      if (!net_.ext.empty()) os << " |";
      for (const ControllerModel& cm : net_.ctls) {
        os << " " << cm.fsm.name() << "@" << stateName(f, cm);
      }
      std::string pulses;
      for (const auto& [sig, lit] : net_.step.pulse) {
        if (eval(f, lit)) pulses += " " + sig;
      }
      if (!pulses.empty()) os << " | pulses" << pulses;
      std::string latched;
      for (const ControllerModel& cm : net_.ctls) {
        for (const auto& [sig, lit] : cm.lat) {
          if (eval(f, lit)) latched += " " + cm.fsm.name() + ":" + sig;
        }
      }
      if (!latched.empty()) os << " | latched" << latched;
    }
    return os.str();
  }

 private:
  std::string stateName(int frame, const ControllerModel& cm) {
    std::string found;
    int count = 0;
    for (int st = 0; st < static_cast<int>(cm.fsm.numStates()); ++st) {
      if (eval(frame, cm.st[static_cast<std::size_t>(st)])) {
        found = cm.fsm.stateName(st);
        ++count;
      }
    }
    if (count == 1) return found;
    return count == 0 ? "?" : "multi";  // one-hot broken (MDL001 traces)
  }

  Network& net_;
  aig::Unroller& unroller_;
  std::vector<bool> vals_;
};

struct PropertyState {
  const char* rule;
  SymbolicProperty result;
  bool open = true;
};

}  // namespace

SymbolicArtifact symbolicModelCheck(const fsm::DistributedControlUnit& dcu,
                                    const sched::ScheduledDfg& s,
                                    const fsm::Fsm* centSync,
                                    const SymbolicCheckOptions& options) {
  const OpTable table = detail::buildOpTable(s);
  const std::string artifact = "product " + s.graph.name();

  SymbolicArtifact out;
  out.stats.artifact = artifact;
  out.stats.controllers = dcu.controllers.size();

  Network net = buildNetwork(dcu, s, table);
  out.stats.stateBits = net.seq.vars.size();
  out.stats.templateNodes = net.g.numNodes();

  aig::SatSolver solver;
  aig::CnfEncoder enc(net.g, solver);
  aig::Unroller bmc(net.g, net.seq, "b", /*initFrame0=*/true);
  aig::Unroller ind(net.g, net.seq, "i", /*initFrame0=*/false);

  static const char* kRules[kNumProperties] = {"MDL001", "MDL002", "MDL003",
                                               "MDL004", "MDL005"};
  PropertyState props[kNumProperties];
  Lit conj[kNumProperties];
  for (int p = 0; p < kNumProperties; ++p) {
    props[p].rule = kRules[p];
    props[p].result.rule = kRules[p];
    conj[p] = net.g.andLit(net.inv, aig::negate(net.bad[p]));
  }

  // Simple-path difference literals over the free unrolling, built on demand.
  std::map<std::pair<int, int>, int> diffLit;
  auto pathDiff = [&](int i, int j) {
    const auto it = diffLit.find({i, j});
    if (it != diffLit.end()) return it->second;
    const Lit eq = net.g.eqVec(ind.stateVector(i), ind.stateVector(j));
    const int lit = enc.encode(aig::negate(eq));
    diffLit.emplace(std::make_pair(i, j), lit);
    return lit;
  };

  enum class InvState { Ok, Broken, Unknown };
  InvState invState = InvState::Ok;
  bool anyOpen = true;

  for (int depth = 0; depth <= options.maxDepth && anyOpen; ++depth) {
    // BMC: is the property violated exactly `depth` steps from reset?
    for (int p = 0; p < kNumProperties; ++p) {
      if (!props[p].open) continue;
      const aig::SatStats before = solver.stats();
      const int badLit = enc.encode(bmc.at(depth, net.bad[p]));
      const aig::SatResult res =
          solver.solve(std::vector<int>{badLit}, options.maxConflicts);
      props[p].result.cost += costOf(solver.stats() - before);
      props[p].result.cost.queries += 1;
      if (res == aig::SatResult::Unsat) {
        props[p].result.depthReached = depth;
        solver.addClause({-badLit});  // implied; helps later frames
      } else if (res == aig::SatResult::Sat) {
        props[p].open = false;
        props[p].result.verdict = PropertyVerdict::Counterexample;
        props[p].result.cexLength = depth + 1;
        TraceDecoder decoder(net, bmc, enc, solver);
        std::string where;
        std::string detail = "safety property violated";
        for (const Witness& w : net.witnesses[p]) {
          if (decoder.eval(depth, w.cone)) {
            where = w.where;
            detail = (w.where.empty() ? "" : w.where + " ") + w.detail;
            break;
          }
        }
        out.report.add(props[p].rule, artifact, where,
                       "BMC counterexample after " +
                           std::to_string(depth + 1) + " cycle(s): " + detail +
                           decoder.waveform(depth));
      }
      // Unknown: leave open; the verdict degrades to UNKNOWN at the end.
    }

    // Invariant base: does the strengthening invariant hold `depth` steps
    // from reset?  Broken or unproven disables induction (BMC is unaffected).
    if (invState == InvState::Ok) {
      const aig::SatStats before = solver.stats();
      const int invLit = enc.encode(aig::negate(bmc.at(depth, net.inv)));
      const aig::SatResult res =
          solver.solve(std::vector<int>{invLit}, options.maxConflicts);
      out.stats.invariantCost += costOf(solver.stats() - before);
      out.stats.invariantCost.queries += 1;
      if (res == aig::SatResult::Unsat) {
        solver.addClause({-invLit});
      } else {
        invState = res == aig::SatResult::Sat ? InvState::Broken
                                              : InvState::Unknown;
        out.stats.invariantHolds = false;
      }
    }

    // k-induction step at k = depth + 1: assume inv & !bad on k consecutive
    // arbitrary states forming a simple path, refute it on the successor.
    if (invState == InvState::Ok) {
      const int k = depth + 1;
      for (int p = 0; p < kNumProperties; ++p) {
        if (!props[p].open || props[p].result.depthReached != depth) continue;
        std::vector<int> assumptions;
        for (int i = 0; i < k; ++i) {
          assumptions.push_back(enc.encode(ind.at(i, conj[p])));
        }
        assumptions.push_back(-enc.encode(ind.at(k, conj[p])));
        for (int i = 0; i < k; ++i) {
          for (int j = i + 1; j <= k; ++j) {
            assumptions.push_back(pathDiff(i, j));
          }
        }
        const aig::SatStats before = solver.stats();
        const aig::SatResult res =
            solver.solve(assumptions, options.maxConflicts);
        props[p].result.cost += costOf(solver.stats() - before);
        props[p].result.cost.queries += 1;
        if (res == aig::SatResult::Unsat) {
          props[p].open = false;
          props[p].result.verdict = PropertyVerdict::Proved;
          props[p].result.inductionK = k;
        }
      }
    }

    anyOpen = false;
    for (const PropertyState& p : props) anyOpen = anyOpen || p.open;
  }

  for (PropertyState& p : props) out.stats.properties.push_back(p.result);

  // MDL008: one summary per network so the verdicts are visible in the
  // rendered report, not only in the JSON stats.
  {
    std::ostringstream os;
    int proved = 0;
    for (const PropertyState& p : props) {
      if (p.result.verdict == PropertyVerdict::Proved) ++proved;
    }
    os << "BMC + k-induction over " << net.seq.vars.size()
       << " state bits: " << proved << "/" << kNumProperties << " proved (";
    for (int p = 0; p < kNumProperties; ++p) {
      if (p != 0) os << ", ";
      os << props[p].rule << " " << propertyVerdictName(props[p].result.verdict);
      if (props[p].result.verdict == PropertyVerdict::Proved) {
        os << " k=" << props[p].result.inductionK;
      }
    }
    os << "); invariant base "
       << (out.stats.invariantHolds ? "holds" : "not established");
    out.report.add("MDL008", artifact, "", os.str());
  }

  // MDL006: with lock-step and progress PROVED, the distributed product's
  // per-iteration RE alphabet is exactly the full op set; compare it against
  // the CENT-SYNC baseline's alphabet like the explicit engine does.
  if (centSync != nullptr) {
    const detail::EventAnalysis cent = detail::analyzeEvents(
        *centSync, table, "fsm " + centSync->name(), out.report);
    const bool alphabetKnown =
        props[1].result.verdict == PropertyVerdict::Proved &&
        props[2].result.verdict == PropertyVerdict::Proved;
    if (alphabetKnown) {
      std::set<int> all;
      for (int i = 0; i < static_cast<int>(table.names.size()); ++i) {
        all.insert(i);
      }
      std::set<int> onlyDistributed;
      std::set<int> onlyCentral;
      std::set_difference(all.begin(), all.end(), cent.alphabet.begin(),
                          cent.alphabet.end(),
                          std::inserter(onlyDistributed, onlyDistributed.end()));
      std::set_difference(cent.alphabet.begin(), cent.alphabet.end(),
                          all.begin(), all.end(),
                          std::inserter(onlyCentral, onlyCentral.end()));
      if (!onlyDistributed.empty() || !onlyCentral.empty()) {
        std::string msg = "per-iteration register-enable sets differ:";
        if (!onlyDistributed.empty()) {
          msg += " only distributed: " +
                 detail::joinNames(table, onlyDistributed) + ";";
        }
        if (!onlyCentral.empty()) {
          msg += " only cent_sync: " + detail::joinNames(table, onlyCentral) +
                 ";";
        }
        msg.pop_back();
        out.report.add("MDL006", artifact, "", msg);
      }
    }
  }
  return out;
}

}  // namespace tauhls::verify
