// Orchestrator: run every static pass over a completed flow's artifacts and
// collect one Report.
//
// Pass order mirrors the flow itself -- graph, schedule/binding, registers,
// per-machine FSM checks, the distributed-vs-centralized model check, then
// the structural netlist/RTL layer.  Each pass appends diagnostics
// independently; an early-layer error does not suppress later passes (the
// caller sees the whole picture at once).
#pragma once

#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"
#include "sched/scheduled_dfg.hpp"
#include "verify/diagnostic.hpp"
#include "verify/model_check.hpp"

namespace tauhls::verify {

struct VerifyOptions {
  /// The *requested* (pre-normalization) allocation; enables SCH005/SCH007.
  const sched::Allocation* requestedAllocation = nullptr;
  /// The CENT-SYNC baseline, when the flow built one; enables the
  /// cross-style model check (MDL006) and the baseline's own FSM/phi checks.
  const fsm::Fsm* centSync = nullptr;
  /// Run the bounded product model check (MDL001-MDL007).
  bool modelCheck = true;
  /// Bound on product configurations before degrading to MDL007.
  std::size_t modelCheckMaxStates = 200000;
  /// Synthesize controller netlists and lint them + the functional
  /// cross-controller loop check (NET*).
  bool checkNetlists = true;
  /// Emit the RTL package and lint the parsed result (NET*).
  bool checkRtl = true;
};

/// Run all passes over a scheduled design and its distributed controllers.
Report verifyFlow(const sched::ScheduledDfg& s,
                  const fsm::DistributedControlUnit& dcu,
                  const VerifyOptions& options = {});

}  // namespace tauhls::verify
