// Don't-care soundness of the two-level minimization (rules DCS001-DCS003).
//
// synth::synthesize marks every truth-table row whose state-bit pattern
// decodes to no state -- or to a state unreachable from the initial state --
// as a don't-care, and the minimizer is free to fill those rows however it
// shrinks the cover.  That is only sound if the machine can never *occupy*
// such a row.  This pass proves it, per controller and per function:
//
//   DCS001  the minimized cover differs from the FSM specification on a
//           *care* row (reachable state x any input) -- the minimizer
//           changed observable behaviour, not just don't-cares.  Checked by
//           SAT equivalence under the care-set constraint (aig/cec.hpp),
//           with the differing row decoded back to state/input names.
//   DCS002  a don't-care row is reachable in the state space induced by the
//           *implemented* next-state covers: BMC from the encoded initial
//           state finds a concrete input sequence driving the registers
//           onto a row the minimizer assumed impossible, or k-induction
//           proves no such sequence exists (the symbolic-reachability
//           engine of aig/unroll.hpp).  When DCS001 holds, the care set is
//           inductive and the proof closes at k = 1.
//   DCS003  info summary counting the functions whose cover actually
//           exploits don't-cares (differ globally, agree on the care set).
//
// The care predicate here is *textually* the one synthesize() minimized
// against (synth::reachableStates), so a PROVED verdict certifies exactly
// the assumption the area numbers rest on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"
#include "synth/encoding.hpp"
#include "synth/extract.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

struct DcsOptions {
  synth::EncodingStyle style = synth::EncodingStyle::Binary;
  /// BMC depth / induction-k budget for DCS002.
  int maxDepth = 16;
  /// Conflict budget per SAT query; exceeding it degrades to UNKNOWN.
  std::uint64_t maxConflicts = 100000;
  /// Fault-injection seam: replacement minimized covers per FSM name (the
  /// don't-care-abusing-minimizer mutation); empty in production runs.
  std::map<std::string, synth::SynthesizedFsm> coverOverrides;
};

/// Everything one network's DCS check measured (cacheable, serializable).
struct DcsStats {
  std::string artifact;
  std::size_t controllers = 0;
  std::uint64_t functionsChecked = 0;  ///< next-state bits + outputs
  std::uint64_t dcFunctions = 0;  ///< covers that exploit a don't-care row
  std::vector<XpropPropertyStat> properties;  ///< DCS001..DCS003 rows

  /// Per-rule SAT cost rows for the pipeline trace.
  std::map<std::string, RuleCost> ruleCost() const;

  DcsStats& operator+=(const DcsStats& o);

  friend bool operator==(const DcsStats&, const DcsStats&) = default;
};

/// Don't-care soundness of one FSM's minimized covers (the building block;
/// also used on the hierarchical region sequencer).
DcsStats checkDcsFsm(const fsm::Fsm& fsm, const std::string& artifact,
                     Report& report, const DcsOptions& options = {});

/// Don't-care soundness of every controller of one network; controllers run
/// concurrently and merge in index order, so reports are thread-count
/// independent.
DcsStats checkDcs(const fsm::DistributedControlUnit& dcu,
                  const std::string& artifact, Report& report,
                  const DcsOptions& options = {});

}  // namespace tauhls::verify
