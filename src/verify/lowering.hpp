// Shared AIG lowerings of one controller's four representations (FSM spec,
// minimized covers, gate netlist, reparsed emitted RTL), factored out of the
// equivalence checker so the X-propagation and don't-care-soundness passes
// reason over the *same* cones the equivalence proofs certify.
//
// All functions share a ControllerContext: inputs are the encoded state bits
// (state0..state{n-1}) followed by the FSM's declared input signals, and
// every function family is returned ns0..ns{n-1} first, then the declared
// outputs (FnMap order).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/cec.hpp"
#include "fsm/machine.hpp"
#include "logic/cover.hpp"
#include "netlist/netlist.hpp"
#include "synth/encoding.hpp"
#include "synth/extract.hpp"
#include "vsim/ast.hpp"

namespace tauhls::verify::lowering {

/// Ordered function family of one representation: ns0..ns{n-1} first, then
/// the FSM's declared outputs.
using FnMap = std::vector<std::pair<std::string, aig::Lit>>;

/// Shared AIG context of one controller: inputs are the encoded state bits
/// (state0.. state{n-1}) followed by the FSM's declared input signals.
struct ControllerContext {
  aig::Aig g;
  const fsm::Fsm* fsm = nullptr;
  synth::Encoding enc;
  std::vector<aig::Lit> stateBits;
  std::map<std::string, aig::Lit> inputOf;
  aig::Lit valid = aig::kLitFalse;  ///< OR of all encoded-state matches

  ControllerContext(const fsm::Fsm& f, synth::EncodingStyle style);

  /// state == the encoding of state id `s`.
  aig::Lit stateMatch(int s);
  /// The guard's sum-of-products over the declared input literals.
  aig::Lit guardLit(const fsm::Guard& guard);
  /// ns0..ns{n-1} then the declared outputs (the FnMap name order).
  std::vector<std::string> functionNames() const;
};

/// Representation 1: the FSM specification itself.
FnMap specFunctions(ControllerContext& ctx);

/// One minimized cover as a literal (cover variable order: state bits LSB
/// first, then the declared input signals -- synth/extract.hpp).
aig::Lit coverLit(ControllerContext& ctx, const logic::Cover& cover);

/// Representation 2: the minimized two-level covers of `syn`.
FnMap coverFunctions(ControllerContext& ctx, const synth::SynthesizedFsm& syn);

/// Representation 3: the gate netlist.  Netlist inputs unknown to the
/// context become fresh free variables, so any dependence on them surfaces
/// as a counterexample.
FnMap netlistFunctions(ControllerContext& ctx, const netlist::Netlist& net);

/// Symbolic evaluation of a vsim module's combinational behaviour: signals
/// are LSB-first literal vectors; if/else and case merge per-branch
/// environments through muxes.
class SymbolicEval {
 public:
  using Env = std::map<std::string, std::vector<aig::Lit>>;

  SymbolicEval(aig::Aig& g, const vsim::Module& m);

  int widthOf(const std::string& name) const;

  /// Execute every combinational construct (wire inits, continuous assigns,
  /// always @* blocks) once, in order, over `env`.
  void runCombinational(Env& env);

  /// Execute the sequential blocks as a next-state function: the returned
  /// env maps each register to its post-edge value (hold when unassigned).
  void runSequential(Env& env);

  aig::Lit nonzero(const std::vector<aig::Lit>& bits);

  std::vector<aig::Lit> eval(const vsim::Expr& e, const Env& env);

 private:
  std::vector<aig::Lit> resize(std::vector<aig::Lit> bits, int width);
  void exec(const std::vector<vsim::StmtPtr>& stmts, Env& env);
  void execArms(const std::vector<vsim::CaseArm>& arms, std::size_t idx,
                const std::vector<aig::Lit>& subject,
                const vsim::CaseArm* defaultArm, Env& env);
  void mergeEnv(aig::Lit cond, const Env& thenEnv, const Env& elseEnv,
                Env& out);

  aig::Aig& g_;
  const vsim::Module& module_;
  std::map<std::string, int> width_;
};

/// Representation 4: the reparsed emitted Verilog of the controller module.
FnMap rtlFunctions(ControllerContext& ctx, const vsim::Module& m);

/// Decode a CEC counterexample back to "state=<name>, in1=0, ..." text.
std::string describeCounterexample(const ControllerContext& ctx,
                                   const aig::CecResult& r);

}  // namespace tauhls::verify::lowering
