#include "verify/sched_lint.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "dfg/analysis.hpp"
#include "regalloc/leftedge.hpp"
#include "regalloc/lifetime.hpp"

namespace tauhls::verify {

using dfg::NodeId;

void lintSchedule(const sched::ScheduledDfg& s, const sched::Allocation* alloc,
                  Report& report) {
  const dfg::Dfg& g = s.graph;
  const std::string artifact = "schedule " + g.name();

  auto stepAt = [&](NodeId v) -> int {
    if (v >= s.steps.stepOf.size()) return -1;
    return s.steps.stepOf[v];
  };

  // SCH001/SCH011: every op bound and stepped.
  for (NodeId v : g.opIds()) {
    if (s.binding.unitOf(v) == -1) {
      report.add("SCH001", artifact, g.node(v).name, "no unit executes it");
    }
    if (stepAt(v) < 0) {
      report.add("SCH011", artifact, g.node(v).name,
                 "step schedule assigns it no control step");
    }
  }

  // SCH002/SCH003/SCH006/SCH008: per-unit sequence legality.
  for (int u = 0; u < static_cast<int>(s.binding.numUnits()); ++u) {
    const sched::UnitInstance& unit = s.binding.unit(u);
    const std::vector<NodeId>& seq = s.binding.sequenceOf(u);
    std::map<int, std::vector<NodeId>> opsPerStep;
    for (NodeId v : seq) {
      if (dfg::resourceClassOf(g.node(v).kind) != unit.cls) {
        report.add("SCH002", artifact, g.node(v).name,
                   std::string("a ") + dfg::opKindName(g.node(v).kind) +
                       " is bound to " + unit.name + " of class " +
                       dfg::resourceClassName(unit.cls));
      }
      if (stepAt(v) >= 0) opsPerStep[stepAt(v)].push_back(v);
    }
    for (const auto& [step, ops] : opsPerStep) {
      if (ops.size() > 1) {
        std::string names;
        for (NodeId v : ops) {
          if (!names.empty()) names += ", ";
          names += g.node(v).name;
        }
        report.add("SCH003", artifact, unit.name,
                   "step " + std::to_string(step) + " schedules " + names +
                       " on the same unit");
      }
    }
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      const int a = stepAt(seq[i]);
      const int b = stepAt(seq[i + 1]);
      if (a >= 0 && b >= 0 && b < a) {
        report.add("SCH006", artifact, unit.name,
                   g.node(seq[i + 1]).name + " (step " + std::to_string(b) +
                       ") follows " + g.node(seq[i]).name + " (step " +
                       std::to_string(a) + ") in the execution sequence");
      }
      // The distributed controllers execute seq back-to-back; without a
      // dependence (data edge or serialization arc) the order is a fiction
      // nothing in the graph enforces.
      if (!dfg::reaches(g, seq[i], seq[i + 1])) {
        report.add("SCH008", artifact, unit.name,
                   "no dependence orders " + g.node(seq[i]).name + " before " +
                       g.node(seq[i + 1]).name);
      }
    }
  }

  // SCH004: dependence predecessors (data + state edges) strictly earlier.
  for (NodeId v : g.opIds()) {
    for (NodeId p : g.dependencePredecessors(v)) {
      if (!g.isOp(p)) continue;
      if (stepAt(v) >= 0 && stepAt(p) >= 0 && stepAt(p) >= stepAt(v)) {
        report.add("SCH004", artifact, g.node(v).name,
                   "operand " + g.node(p).name + " is in step " +
                       std::to_string(stepAt(p)) + ", consumer in step " +
                       std::to_string(stepAt(v)));
      }
    }
  }

  if (alloc != nullptr) {
    // SCH005: per-step class usage within the allocation.
    std::map<int, std::map<dfg::ResourceClass, int>> usage;
    for (NodeId v : g.opIds()) {
      if (stepAt(v) >= 0) {
        ++usage[stepAt(v)][dfg::resourceClassOf(g.node(v).kind)];
      }
    }
    for (const auto& [step, perClass] : usage) {
      for (const auto& [cls, used] : perClass) {
        const auto it = alloc->find(cls);
        if (it != alloc->end() && used > it->second) {
          report.add("SCH005", artifact, dfg::resourceClassName(cls),
                     "step " + std::to_string(step) + " uses " +
                         std::to_string(used) + " units, " +
                         std::to_string(it->second) + " allocated");
        }
      }
    }
    // SCH007: binding instantiates within the allocation.
    for (const auto& [cls, count] : *alloc) {
      const int bound = static_cast<int>(s.binding.unitsOfClass(cls).size());
      if (bound > count) {
        report.add("SCH007", artifact, dfg::resourceClassName(cls),
                   "binding uses " + std::to_string(bound) + " units, " +
                       std::to_string(count) + " allocated");
      }
    }
  }
}

void lintRegisterAllocation(const sched::ScheduledDfg& s, Report& report) {
  const std::string artifact = "regalloc " + s.graph.name();
  const std::vector<regalloc::Lifetime> lifetimes =
      regalloc::distributedLifetimes(s);
  const regalloc::RegisterAllocation ra =
      regalloc::leftEdgeRegisters(lifetimes, s.graph.numNodes());

  // SCH009: no overlapping lifetimes in one register.  Occupancy is the
  // half-open interval (write, lastRead]; touching intervals may share.
  std::map<int, std::vector<const regalloc::Lifetime*>> perRegister;
  for (const regalloc::Lifetime& lt : lifetimes) {
    const int reg = ra.registerOf[lt.value];
    if (reg >= 0) perRegister[reg].push_back(&lt);
  }
  for (const auto& [reg, values] : perRegister) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      for (std::size_t j = i + 1; j < values.size(); ++j) {
        const regalloc::Lifetime& a = *values[i];
        const regalloc::Lifetime& b = *values[j];
        if (std::max(a.writeCycle, b.writeCycle) <
            std::min(a.lastReadCycle, b.lastReadCycle)) {
          std::string regLabel = "r";
          regLabel += std::to_string(reg);
          report.add("SCH009", artifact, regLabel,
                     s.graph.node(a.value).name + " and " +
                         s.graph.node(b.value).name +
                         " are live simultaneously");
        }
      }
    }
  }

  // SCH010: left-edge on interval graphs should match the max-live bound.
  const int bound = regalloc::maxLiveValues(lifetimes);
  if (ra.numRegisters > bound) {
    report.add("SCH010", artifact, "",
               std::to_string(ra.numRegisters) + " registers allocated, " +
                   std::to_string(bound) + " simultaneously-live values");
  }
}

}  // namespace tauhls::verify
