#include "verify/dfg_lint.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "dfg/analysis.hpp"

namespace tauhls::verify {

using dfg::Dfg;
using dfg::NodeId;

namespace {

bool validId(const Dfg& g, NodeId id) {
  return id != dfg::kNoNode && id < g.numNodes();
}

/// BFS reachability from -> to over data edges plus all schedule arcs except
/// the one at index `skipArc` (-1 = keep all).  Used both for redundancy
/// (would the ordering survive without this arc?) and generic reach queries
/// on graphs that may carry invalid ids (which are simply skipped).
bool reachesWithout(const Dfg& g, NodeId from, NodeId to, int skipArc) {
  std::vector<std::vector<NodeId>> succ(g.numNodes());
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    for (NodeId p : g.node(v).operands) {
      if (validId(g, p)) succ[p].push_back(v);
    }
  }
  const auto& arcs = g.scheduleArcs();
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (static_cast<int>(i) == skipArc) continue;
    if (validId(g, arcs[i].from) && validId(g, arcs[i].to)) {
      succ[arcs[i].from].push_back(arcs[i].to);
    }
  }
  std::vector<bool> seen(g.numNodes(), false);
  std::queue<NodeId> frontier;
  frontier.push(from);
  seen[from] = true;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    if (v == to) return true;
    for (NodeId s : succ[v]) {
      if (!seen[s]) {
        seen[s] = true;
        frontier.push(s);
      }
    }
  }
  return false;
}

}  // namespace

void lintDfg(const Dfg& g, Report& report) {
  const std::string artifact = "dfg " + g.name();

  // DFG001/DFG002: operand arity and dangling references.
  bool danglingRefs = false;
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    const dfg::Node& n = g.node(v);
    const int arity = dfg::opKindArity(n.kind);
    if (static_cast<int>(n.operands.size()) != arity) {
      report.add("DFG001", artifact, n.name,
                 "has " + std::to_string(n.operands.size()) + " operands, " +
                     dfg::opKindName(n.kind) + " requires " +
                     std::to_string(arity));
    }
    for (NodeId p : n.operands) {
      if (!validId(g, p)) {
        danglingRefs = true;
        report.add("DFG002", artifact, n.name,
                   "operand refers to missing node id " + std::to_string(p));
      }
    }
  }

  // DFG006: duplicate node names.
  std::map<std::string, int> nameCount;
  for (NodeId v = 0; v < g.numNodes(); ++v) ++nameCount[g.node(v).name];
  for (const auto& [name, cnt] : nameCount) {
    if (cnt > 1) {
      report.add("DFG006", artifact, name,
                 "used by " + std::to_string(cnt) + " nodes");
    }
  }

  // DFG008: malformed schedule arcs.
  std::map<std::pair<NodeId, NodeId>, int> arcCount;
  for (const dfg::ScheduleArc& a : g.scheduleArcs()) {
    if (!validId(g, a.from) || !validId(g, a.to)) {
      report.add("DFG008", artifact, "",
                 "schedule arc endpoint out of range (" +
                     std::to_string(a.from) + " -> " + std::to_string(a.to) +
                     ")");
      continue;
    }
    if (a.from == a.to) {
      report.add("DFG008", artifact, g.node(a.from).name,
                 "self-referential schedule arc");
      continue;
    }
    ++arcCount[{a.from, a.to}];
  }
  for (const auto& [arc, cnt] : arcCount) {
    if (cnt > 1) {
      report.add("DFG008", artifact, g.node(arc.first).name,
                 "schedule arc to " + g.node(arc.second).name + " appears " +
                     std::to_string(cnt) + " times");
    }
  }

  // DFG003: dependence cycles.  The remaining rules walk reachability, which
  // is only meaningful on a DAG, so stop here when cyclic or dangling.
  if (!g.isAcyclic()) {
    report.add("DFG003", artifact, "",
               "data edges and schedule arcs form a dependence cycle");
    return;
  }
  if (danglingRefs) return;

  // DFG007: inputs nothing consumes.
  for (NodeId v : g.inputIds()) {
    const bool isOutput =
        std::find(g.outputs().begin(), g.outputs().end(), v) !=
        g.outputs().end();
    if (g.dataSuccessors(v).empty() && !isOutput) {
      report.add("DFG007", artifact, g.node(v).name, "no operation reads it");
    }
  }

  // DFG004: ops whose value reaches no primary output (data edges only; a
  // graph without declared outputs is presumed fully live).
  if (!g.outputs().empty()) {
    std::vector<bool> live(g.numNodes(), false);
    std::queue<NodeId> frontier;
    for (NodeId v : g.outputs()) {
      if (!live[v]) {
        live[v] = true;
        frontier.push(v);
      }
    }
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId p : g.node(v).operands) {
        if (!live[p]) {
          live[p] = true;
          frontier.push(p);
        }
      }
    }
    for (NodeId v : g.opIds()) {
      if (!live[v]) {
        report.add("DFG004", artifact, g.node(v).name,
                   "result reaches no primary output");
      }
    }
  }

  // DFG005: redundant schedule arcs.  An arc is redundant when the ordering
  // it imposes survives its removal: a direct data edge, or a transitive
  // path through the remaining edges and arcs.
  const auto& arcs = g.scheduleArcs();
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (!validId(g, arcs[i].from) || !validId(g, arcs[i].to) ||
        arcs[i].from == arcs[i].to) {
      continue;  // already reported as DFG008
    }
    if (reachesWithout(g, arcs[i].from, arcs[i].to, static_cast<int>(i))) {
      report.add("DFG005", artifact, g.node(arcs[i].from).name,
                 "schedule arc to " + g.node(arcs[i].to).name +
                     " is implied by the remaining edges");
    }
  }
}

}  // namespace tauhls::verify
