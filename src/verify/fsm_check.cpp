#include "verify/fsm_check.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

namespace tauhls::verify {

using fsm::Guard;
using fsm::GuardTerm;

namespace {

bool termsConflict(const GuardTerm& a, const GuardTerm& b) {
  // Iterate the smaller map for the common ordered-map merge.
  const GuardTerm& small = a.literals.size() <= b.literals.size() ? a : b;
  const GuardTerm& large = &small == &a ? b : a;
  for (const auto& [sig, pol] : small.literals) {
    const auto it = large.literals.find(sig);
    if (it != large.literals.end() && it->second != pol) return true;
  }
  return false;
}

std::string assignmentToString(const std::map<std::string, bool>& assignment) {
  std::string out;
  for (const auto& [sig, val] : assignment) {
    if (!out.empty()) out += " ";
    out += (val ? "" : "!") + sig;
  }
  return out.empty() ? "(any input)" : out;
}

}  // namespace

bool guardsOverlap(const Guard& g1, const Guard& g2) {
  for (const GuardTerm& t1 : g1.terms()) {
    for (const GuardTerm& t2 : g2.terms()) {
      if (!termsConflict(t1, t2)) return true;
    }
  }
  return false;
}

bool termsAreTautology(const std::vector<GuardTerm>& terms,
                       std::map<std::string, bool>* witness) {
  for (const GuardTerm& t : terms) {
    if (t.literals.empty()) return true;  // constant-true term covers all
  }
  if (terms.empty()) return false;  // empty SOP is constant false

  // Shannon expansion on the first literal of the first term; each recursion
  // eliminates one signal, so depth is bounded by the support size.
  const std::string signal = terms.front().literals.begin()->first;
  for (const bool value : {false, true}) {
    std::vector<GuardTerm> cofactor;
    for (const GuardTerm& t : terms) {
      const auto it = t.literals.find(signal);
      if (it != t.literals.end() && it->second != value) continue;  // falsified
      GuardTerm reduced = t;
      reduced.literals.erase(signal);
      cofactor.push_back(std::move(reduced));
    }
    if (!termsAreTautology(cofactor, witness)) {
      if (witness != nullptr) (*witness)[signal] = value;
      return false;
    }
  }
  return true;
}

void checkFsm(const fsm::Fsm& fsm, Report& report) {
  const std::string artifact = "fsm " + fsm.name();
  if (fsm.numStates() == 0) {
    report.add("FSM002", artifact, "", "machine has no states");
    return;
  }

  // FSM001: reachability from the initial state over satisfiable guards.
  std::vector<bool> reachable(fsm.numStates(), false);
  std::queue<int> frontier;
  reachable[static_cast<std::size_t>(fsm.initial())] = true;
  frontier.push(fsm.initial());
  while (!frontier.empty()) {
    const int s = frontier.front();
    frontier.pop();
    for (const fsm::Transition* t : fsm.transitionsFrom(s)) {
      if (t->guard.isNever()) continue;
      if (!reachable[static_cast<std::size_t>(t->to)]) {
        reachable[static_cast<std::size_t>(t->to)] = true;
        frontier.push(t->to);
      }
    }
  }
  for (int s = 0; s < static_cast<int>(fsm.numStates()); ++s) {
    if (!reachable[static_cast<std::size_t>(s)]) {
      report.add("FSM001", artifact, fsm.stateName(s),
                 "no satisfiable transition path from " +
                     fsm.stateName(fsm.initial()));
    }
  }

  for (int s = 0; s < static_cast<int>(fsm.numStates()); ++s) {
    const std::vector<const fsm::Transition*> transitions =
        fsm.transitionsFrom(s);

    // FSM002: dead-end states.
    if (transitions.empty()) {
      report.add("FSM002", artifact, fsm.stateName(s),
                 "no outgoing transitions");
      continue;
    }

    // FSM005: transitions that can never fire.
    for (const fsm::Transition* t : transitions) {
      if (t->guard.isNever()) {
        report.add("FSM005", artifact, fsm.stateName(s),
                   "transition to " + fsm.stateName(t->to) +
                       " has an unsatisfiable guard");
      }
    }

    // FSM003: completeness -- the union of outgoing guard terms must cover
    // the whole cube of the signals they read.
    std::vector<GuardTerm> united;
    for (const fsm::Transition* t : transitions) {
      united.insert(united.end(), t->guard.terms().begin(),
                    t->guard.terms().end());
    }
    std::map<std::string, bool> witness;
    if (!termsAreTautology(united, &witness)) {
      report.add("FSM003", artifact, fsm.stateName(s),
                 "no transition fires under " + assignmentToString(witness) +
                     " (potential deadlock)");
    }

    // FSM004: determinism -- no two outgoing guards may overlap.
    for (std::size_t i = 0; i < transitions.size(); ++i) {
      for (std::size_t j = i + 1; j < transitions.size(); ++j) {
        if (guardsOverlap(transitions[i]->guard, transitions[j]->guard)) {
          report.add("FSM004", artifact, fsm.stateName(s),
                     "transitions to " + fsm.stateName(transitions[i]->to) +
                         " and " + fsm.stateName(transitions[j]->to) +
                         " can fire together (race)");
        }
      }
    }
  }

  // FSM006/FSM007: unused declarations.
  std::set<std::string> readSignals;
  std::set<std::string> assertedSignals;
  for (const fsm::Transition& t : fsm.transitions()) {
    for (const std::string& sig : t.guard.signals()) readSignals.insert(sig);
    assertedSignals.insert(t.outputs.begin(), t.outputs.end());
  }
  for (const std::string& in : fsm.inputs()) {
    if (!readSignals.contains(in)) {
      report.add("FSM006", artifact, in, "declared input is read by no guard");
    }
  }
  for (const std::string& out : fsm.outputs()) {
    if (!assertedSignals.contains(out)) {
      report.add("FSM007", artifact, out,
                 "declared output is asserted by no transition");
    }
  }
}

}  // namespace tauhls::verify
