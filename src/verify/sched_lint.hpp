// Schedule / binding / register-allocation legality (rules SCH001-SCH010).
//
// Checks the complete scheduling artifact: every op bound to a unit of its
// class, no unit double-booked within a control step, data predecessors in
// strictly earlier steps, per-step and per-binding unit counts within the
// allocation, consecutive same-unit ops serialized by a dependence (the
// paper's schedule-arc discipline, required for the distributed controllers
// to be order-safe), and the left-edge register allocation free of lifetime
// overlaps and no larger than the max-live lower bound.
#pragma once

#include "sched/scheduled_dfg.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

/// Run SCH001-SCH008 over the scheduling artifact.  `alloc` is the *requested*
/// allocation (pre-normalization); pass nullptr to skip the count checks that
/// need it (SCH005/SCH007 then use the binding's own unit counts).
void lintSchedule(const sched::ScheduledDfg& s, const sched::Allocation* alloc,
                  Report& report);

/// Run SCH009/SCH010 over the distributed-lifetime left-edge allocation.
void lintRegisterAllocation(const sched::ScheduledDfg& s, Report& report);

}  // namespace tauhls::verify
