#include "verify/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace tauhls::verify {

const char* severityName(Severity severity) {
  switch (severity) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

const std::vector<RuleInfo>& allRules() {
  static const std::vector<RuleInfo> rules = {
      // --- DFG lint -------------------------------------------------------
      {"DFG001", Severity::Error,
       "operand count does not match the operation's arity"},
      {"DFG002", Severity::Error, "operand references a missing node"},
      {"DFG003", Severity::Error, "graph contains a dependence cycle"},
      {"DFG004", Severity::Warning,
       "operation value reaches no primary output (dead op)"},
      {"DFG005", Severity::Warning,
       "redundant schedule arc (already implied by data edges or other arcs)"},
      {"DFG006", Severity::Error, "duplicate node name"},
      {"DFG007", Severity::Warning, "primary input has no consumers"},
      {"DFG008", Severity::Error,
       "invalid schedule arc (missing endpoint, self-arc, or duplicate)"},
      {"DFG009", Severity::Error,
       "region tree is structurally invalid (bad arity, undefined name, or "
       "outputs not defined on every path)"},
      {"DFG010", Severity::Error, "loop region has a trip count below one"},
      // --- schedule / binding legality -----------------------------------
      {"SCH001", Severity::Error, "operation is not bound to any unit"},
      {"SCH002", Severity::Error,
       "operation bound to a unit of an incompatible resource class"},
      {"SCH003", Severity::Error,
       "two operations occupy one unit in the same control step"},
      {"SCH004", Severity::Error,
       "data predecessor is not scheduled strictly earlier"},
      {"SCH005", Severity::Error,
       "control step uses more units of a class than allocated"},
      {"SCH006", Severity::Error,
       "unit execution order contradicts the step schedule"},
      {"SCH007", Severity::Error,
       "binding instantiates more units of a class than allocated"},
      {"SCH008", Severity::Error,
       "consecutive same-unit operations lack a serializing dependence"},
      {"SCH009", Severity::Error,
       "values with overlapping lifetimes share a register"},
      {"SCH010", Severity::Warning,
       "register allocation exceeds the maximum-live lower bound"},
      {"SCH011", Severity::Error, "operation is missing a control step"},
      {"SCH012", Severity::Error,
       "leaf schedules disagree on the shared allocation, clock, or library"},
      // --- FSM static checks ---------------------------------------------
      {"FSM001", Severity::Error, "state is unreachable from the initial state"},
      {"FSM002", Severity::Error, "state has no outgoing transitions"},
      {"FSM003", Severity::Error,
       "incomplete guards: some input assignment enables no transition"},
      {"FSM004", Severity::Error,
       "nondeterministic guards: two transitions can fire at once"},
      {"FSM005", Severity::Warning,
       "transition guard is unsatisfiable and can never fire"},
      {"FSM006", Severity::Warning, "declared input is read by no guard"},
      {"FSM007", Severity::Warning, "declared output is never asserted"},
      // --- distributed-controller model check ----------------------------
      {"MDL001", Severity::Error,
       "product deadlock: a controller has no enabled transition"},
      {"MDL002", Severity::Error,
       "livelock: an iteration restart is unreachable from a reachable "
       "configuration"},
      {"MDL003", Severity::Error,
       "lock-step violation: a reachable cycle executes operations unequally "
       "often"},
      {"MDL004", Severity::Error,
       "causality violation: an operation completes before a data predecessor"},
      {"MDL005", Severity::Error,
       "order violation: an operation completes before its unit's previous "
       "operation"},
      {"MDL006", Severity::Error,
       "distributed and centralized controllers disagree on the per-iteration "
       "event set"},
      {"MDL007", Severity::Warning,
       "model check incomplete: reachable-state bound exceeded"},
      {"MDL008", Severity::Info,
       "symbolic model check summary (BMC + k-induction verdicts)"},
      {"MDL009", Severity::Error,
       "region sequencer handshake defect (start/done protocol violated)"},
      {"MDL010", Severity::Info, "composed-controller summary"},
      // --- netlist / RTL structural checks -------------------------------
      {"NET001", Severity::Error, "combinational cycle"},
      {"NET002", Severity::Error, "undriven net or signal"},
      {"NET003", Severity::Error, "multiply-driven net or signal"},
      {"NET004", Severity::Error, "width mismatch"},
      {"NET005", Severity::Error,
       "instance references an unknown module or port"},
      {"NET006", Severity::Warning, "input is never read"},
      {"NET007", Severity::Warning, "gate or net drives nothing"},
      {"NET008", Severity::Error, "malformed gate arity"},
      // --- symbolic equivalence (translation validation) ------------------
      {"EQV001", Severity::Error,
       "minimized cover is not equivalent to the FSM specification"},
      {"EQV002", Severity::Error,
       "gate netlist is not equivalent to the minimized cover"},
      {"EQV003", Severity::Error,
       "reparsed emitted Verilog is not equivalent to the gate netlist"},
      {"EQV004", Severity::Error,
       "completion-latch module deviates from the held|pulse specification"},
      {"EQV005", Severity::Warning,
       "equivalence unproven: SAT conflict budget exhausted"},
      {"EQV006", Severity::Info,
       "controller proven equivalent end to end (spec = cover = netlist = "
       "RTL)"},
      // --- X-propagation / reset robustness --------------------------------
      {"XPR001", Severity::Error,
       "register can still be X after the reset window (ternary power-on "
       "analysis of the controller network)"},
      {"XPR002", Severity::Error,
       "emitted RTL disagrees with the network model under ternary replay"},
      {"XPR003", Severity::Error,
       "region sequencer or ST_/DN_ handshake latch stays X across a region "
       "boundary"},
      {"XPR004", Severity::Info,
       "reset robustness summary (proven reset depth and instance count)"},
      // --- don't-care soundness of the minimized covers --------------------
      {"DCS001", Severity::Error,
       "minimized cover differs from the FSM specification on a care row"},
      {"DCS002", Severity::Error,
       "a don't-care row is reachable in the implemented state space"},
      {"DCS003", Severity::Info,
       "don't-care soundness summary (covers exploiting unreachable rows)"},
      // --- static timing analysis -----------------------------------------
      {"TIM001", Severity::Error,
       "negative slack: controller logic misses the clock period CC_TAU"},
      {"TIM002", Severity::Warning,
       "tight slack: worst path within 10% of the clock period"},
      {"TIM003", Severity::Info, "controller timing summary"},
  };
  return rules;
}

const RuleInfo* findRule(const std::string& code) {
  for (const RuleInfo& r : allRules()) {
    if (code == r.code) return &r;
  }
  return nullptr;
}

std::string Diagnostic::toString() const {
  std::ostringstream os;
  os << severityName(severity) << " " << code << " [" << artifact << "]";
  if (!where.empty()) os << " " << where;
  os << ": " << message;
  return os.str();
}

void Report::add(const std::string& code, const std::string& artifact,
                 const std::string& where, const std::string& message) {
  const RuleInfo* rule = findRule(code);
  TAUHLS_ASSERT(rule != nullptr, "diagnostic uses unregistered rule " + code);
  diags_.push_back(Diagnostic{code, rule->severity, artifact, where, message});
}

void Report::addDiagnostic(const Diagnostic& d) {
  TAUHLS_ASSERT(findRule(d.code) != nullptr,
                "diagnostic uses unregistered rule " + d.code);
  diags_.push_back(d);
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == severity) ++n;
  }
  return n;
}

bool Report::has(const std::string& code) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

std::vector<Diagnostic> Report::withCode(const std::string& code) const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags_) {
    if (d.code == code) out.push_back(d);
  }
  return out;
}

void Report::merge(const Report& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::string renderText(const Report& report) {
  std::ostringstream os;
  // Errors first, then warnings and infos, preserving pass order within a
  // severity so related diagnostics stay adjacent.
  for (const Severity sev :
       {Severity::Error, Severity::Warning, Severity::Info}) {
    for (const Diagnostic& d : report.diagnostics()) {
      if (d.severity == sev) os << d.toString() << "\n";
    }
  }
  const std::size_t errors = report.errorCount();
  const std::size_t warnings = report.count(Severity::Warning);
  if (errors == 0 && warnings == 0) {
    os << "clean\n";
  } else {
    os << errors << (errors == 1 ? " error, " : " errors, ") << warnings
       << (warnings == 1 ? " warning" : " warnings") << "\n";
  }
  return os.str();
}

namespace {

std::string jsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string renderJson(const Report& report) {
  return renderJson(report, JsonSections{});
}

std::string renderJson(const Report& report,
                       const std::map<std::string, RuleCost>& satCost) {
  return renderJson(report, satCost, {});
}

std::string renderJson(const Report& report,
                       const std::map<std::string, RuleCost>& satCost,
                       const std::vector<SymbolicPropertyStat>& symbolic) {
  JsonSections sections;
  sections.satCost = satCost;
  sections.symbolic = symbolic;
  return renderJson(report, sections);
}

std::string renderJson(const Report& report, const JsonSections& sections) {
  const std::map<std::string, RuleCost>& satCost = sections.satCost;
  const std::vector<SymbolicPropertyStat>& symbolic = sections.symbolic;
  std::ostringstream os;
  os << "{\"schema\":\"tauhls-lint\",\"version\":" << kLintJsonVersion
     << ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics()) {
    if (!first) os << ",";
    first = false;
    os << "{\"code\":" << jsonQuote(d.code) << ",\"severity\":"
       << jsonQuote(severityName(d.severity)) << ",\"artifact\":"
       << jsonQuote(d.artifact) << ",\"where\":" << jsonQuote(d.where)
       << ",\"message\":" << jsonQuote(d.message) << "}";
  }
  // Per-rule counts keyed by code, sorted, so CI artifacts diff cleanly
  // across runs and PRs.
  std::map<std::string, std::size_t> byRule;
  for (const Diagnostic& d : report.diagnostics()) ++byRule[d.code];
  os << "],\"byRule\":{";
  first = true;
  for (const auto& [code, n] : byRule) {
    if (!first) os << ",";
    first = false;
    os << jsonQuote(code) << ":" << n;
  }
  os << "},\"satCost\":{";
  first = true;
  for (const auto& [code, cost] : satCost) {
    if (!first) os << ",";
    first = false;
    os << jsonQuote(code) << ":{\"queries\":" << cost.queries
       << ",\"simDischarged\":" << cost.simDischarged
       << ",\"decisions\":" << cost.decisions
       << ",\"propagations\":" << cost.propagations
       << ",\"conflicts\":" << cost.conflicts
       << ",\"learned\":" << cost.learned
       << ",\"restarts\":" << cost.restarts << "}";
  }
  // Per-property symbolic model-check verdicts (schema v4), in engine order
  // (per network, then per rule) so CI artifacts diff cleanly.
  os << "},\"symbolic\":[";
  first = true;
  for (const SymbolicPropertyStat& p : symbolic) {
    if (!first) os << ",";
    first = false;
    os << "{\"artifact\":" << jsonQuote(p.artifact)
       << ",\"rule\":" << jsonQuote(p.rule)
       << ",\"verdict\":" << jsonQuote(p.verdict)
       << ",\"depthReached\":" << p.depthReached
       << ",\"inductionK\":" << p.inductionK
       << ",\"conflicts\":" << p.cost.conflicts
       << ",\"propagations\":" << p.cost.propagations
       << ",\"decisions\":" << p.cost.decisions
       << ",\"queries\":" << p.cost.queries << "}";
  }
  // Per-property X-propagation / don't-care-soundness verdicts (schema v5),
  // in engine order so CI artifacts diff cleanly.
  os << "],\"xprop\":[";
  first = true;
  for (const XpropPropertyStat& p : sections.xprop) {
    if (!first) os << ",";
    first = false;
    os << "{\"artifact\":" << jsonQuote(p.artifact)
       << ",\"rule\":" << jsonQuote(p.rule)
       << ",\"verdict\":" << jsonQuote(p.verdict) << ",\"depth\":" << p.depth
       << ",\"cexCycle\":" << p.cexCycle << ",\"instances\":" << p.instances
       << ",\"gateEvals\":" << p.gateEvals
       << ",\"conflicts\":" << p.cost.conflicts
       << ",\"queries\":" << p.cost.queries << "}";
  }
  // Rules the user filtered out with `lint --only`, sorted for stable diffs.
  std::vector<std::string> skipped = sections.skipped;
  std::sort(skipped.begin(), skipped.end());
  os << "],\"skipped\":[";
  first = true;
  for (const std::string& code : skipped) {
    if (!first) os << ",";
    first = false;
    os << jsonQuote(code);
  }
  os << "],\"errors\":" << report.errorCount()
     << ",\"warnings\":" << report.count(Severity::Warning) << "}";
  return os.str();
}

}  // namespace tauhls::verify
