// Structural checks over the gate-level netlist IR and the emitted RTL
// (rules NET001-NET008), plus the cross-controller combinational-loop check.
//
// Three layers, three levels of abstraction:
//
//   lintNetlist      gate IR (netlist::Netlist): fanin arities, dangling
//                    gates, unused inputs.  The IR is acyclic by construction,
//                    so the cycle/driver rules act as defensive checks.
//
//   lintRtl          parsed emitted Verilog (vsim::Design): per-module driver
//                    maps (undriven / multiply-driven), intra-module
//                    combinational cycles (instances treated as opaque --
//                    cross-instance paths are checked functionally, see
//                    below), width/constant-fit mismatches, unknown
//                    module/port references, unread inputs.
//
//   checkControlLoops  the cross-controller feedback structure.  A consumer's
//                    guard reads the OR of the sticky latch and the *live*
//                    CCO pulse, so there is a combinational path through every
//                    completion latch; a structural scan of the emitted top
//                    would flag a false loop through every CCO wire.  The true
//                    criterion is functional: CCO_b may not functionally
//                    depend on CCO_a around a cycle.  Each controller is
//                    synthesized (netlist::buildControllerNetlist) and the
//                    functional support of every CCO output is computed by
//                    cofactor comparison over the structural support; only a
//                    cycle in that dependence graph is a real oscillation
//                    hazard (NET001).
#pragma once

#include <string>

#include "fsm/distributed.hpp"
#include "netlist/netlist.hpp"
#include "verify/diagnostic.hpp"
#include "vsim/ast.hpp"

namespace tauhls::verify {

/// Gate-IR structural checks (NET006/NET007/NET008 + defensive NET001).
void lintNetlist(const netlist::Netlist& net, Report& report);

/// Parse-level checks over every module of an emitted design (NET001-NET008).
void lintRtl(const vsim::Design& design, Report& report);

/// Functional cross-controller combinational-loop check (NET001).  `name`
/// labels the diagnostics (typically the graph name).
void checkControlLoops(const fsm::DistributedControlUnit& dcu,
                       const std::string& name, Report& report);

}  // namespace tauhls::verify
