#include "verify/region_check.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "verify/dfg_lint.hpp"
#include "verify/fsm_check.hpp"
#include "verify/sched_lint.hpp"

namespace tauhls::verify {

namespace {

std::string regionArtifact(const dfg::RegionProgram& program) {
  return "region " + program.name;
}

std::string leafArtifact(const std::string& path) {
  return "region leaf " + (path.empty() ? std::string("<root>") : path);
}

/// True when the two unit types describe the same physical unit.
bool sameUnitType(const tau::UnitType& a, const tau::UnitType& b) {
  return a.name == b.name && a.cls == b.cls && a.telescopic == b.telescopic &&
         a.shortDelayNs == b.shortDelayNs && a.longDelayNs == b.longDelayNs &&
         a.sdProbability == b.sdProbability;
}

}  // namespace

void checkRegionProgram(const dfg::RegionProgram& program, Report& report) {
  const std::string artifact = regionArtifact(program);
  for (const dfg::RegionIssue& issue : dfg::checkRegionProgram(program)) {
    report.add(issue.code, artifact, issue.where, issue.message);
  }
  if (report.has("DFG009") || report.has("DFG010")) return;
  // Structure is sound: run the flat lint family over every leaf body.
  for (const dfg::LeafRef& leaf : dfg::collectLeaves(program)) {
    Report leafReport;
    lintDfg(leaf.region->body, leafReport);
    for (Diagnostic d : leafReport.diagnostics()) {
      d.artifact = leafArtifact(leaf.path);
      report.addDiagnostic(d);
    }
  }
}

void checkRegionSchedule(const sched::RegionSchedule& rs, Report& report) {
  const std::string artifact = regionArtifact(rs.program);
  const std::vector<dfg::LeafRef> leaves = dfg::collectLeaves(rs.program);
  if (leaves.empty()) return;

  const sched::ScheduledDfg& first = rs.leaf(leaves.front().path);
  for (const dfg::LeafRef& leaf : leaves) {
    const sched::ScheduledDfg& s = rs.leaf(leaf.path);
    const std::string where = leaf.path.empty() ? "<root>" : leaf.path;

    // One clock: every leaf controller network runs off the same CC_TAU.
    if (s.clockNs != first.clockNs) {
      report.add("SCH012", artifact, where,
                 "clock period " + std::to_string(s.clockNs) +
                     " ns differs from the program's " +
                     std::to_string(first.clockNs) + " ns");
    }

    // One allocation: no leaf may instantiate more units of a class than the
    // shared hardware provides.
    std::set<dfg::ResourceClass> classes;
    for (const sched::UnitInstance& u : s.binding.units()) classes.insert(u.cls);
    for (const dfg::ResourceClass cls : classes) {
      const auto it = rs.allocation.find(cls);
      const int allowed = it == rs.allocation.end() ? 0 : it->second;
      const int used =
          static_cast<int>(s.binding.unitsOfClass(cls).size());
      if (used > allowed) {
        report.add("SCH012", artifact, where,
                   std::string("binding instantiates ") + std::to_string(used) +
                       " " + dfg::resourceClassName(cls) +
                       " units but the shared allocation provides " +
                       std::to_string(allowed));
      }
      // One library: the shared units must have identical delay models in
      // every leaf that drives them.
      if (!s.library.has(cls) || !first.library.has(cls)) {
        report.add("SCH012", artifact, where,
                   std::string("library lacks a unit type for class ") +
                       dfg::resourceClassName(cls));
      } else if (!sameUnitType(s.library.typeFor(cls),
                               first.library.typeFor(cls))) {
        report.add("SCH012", artifact, where,
                   std::string("unit type for class ") +
                       dfg::resourceClassName(cls) +
                       " differs from the first leaf's library");
      }
    }

    // Flat legality family per leaf, re-anchored to the leaf artifact.
    Report leafReport;
    lintSchedule(s, &rs.allocation, leafReport);
    for (Diagnostic d : leafReport.diagnostics()) {
      d.artifact = leafArtifact(leaf.path);
      report.addDiagnostic(d);
    }
  }
}

void checkComposedControl(const fsm::HierarchicalControlUnit& hcu,
                          const dfg::RegionProgram& program, Report& report) {
  const std::string artifact = "seq " + hcu.sequencer.name();
  const fsm::Fsm& seq = hcu.sequencer;

  // The sequencer is an ordinary machine first: run the FSM family.
  checkFsm(seq, report);

  const std::vector<std::string>& activations = hcu.activationPaths;
  for (std::size_t k = 0; k < activations.size(); ++k) {
    const std::string& path = activations[k];
    const std::string waitName = "W" + std::to_string(k) + "_" + path;
    const int wait = seq.findState(waitName);
    if (wait < 0) {
      report.add("MDL009", artifact, waitName,
                 "activation " + std::to_string(k) + " of leaf '" + path +
                     "' has no wait state");
      continue;
    }
    const std::string start = fsm::regionStartSignal(path);
    const std::string done = fsm::regionDoneSignal(path);

    bool hasHold = false;
    for (std::size_t s = 0; s < seq.numStates(); ++s) {
      for (const fsm::Transition* t :
           seq.transitionsFrom(static_cast<int>(s))) {
        const bool entry = t->to == wait && t->from != wait;
        const bool hold = t->to == wait && t->from == wait;
        const bool exit = t->from == wait && t->to != wait;
        const bool asserts =
            std::find(t->outputs.begin(), t->outputs.end(), start) !=
            t->outputs.end();
        if (entry && !asserts) {
          report.add("MDL009", artifact, waitName,
                     "entry from " + seq.stateName(t->from) +
                         " does not pulse " + start);
        }
        // A hold or exit must be decided by the leaf's completion pulse:
        // every guard term carries the DN_* literal with the right polarity.
        if (hold || exit) {
          const bool want = exit;
          for (const fsm::GuardTerm& term : t->guard.terms()) {
            const auto it = term.literals.find(done);
            if (it == term.literals.end() || it->second != want) {
              report.add("MDL009", artifact, waitName,
                         std::string(exit ? "exit" : "self-loop") +
                             " guard '" + t->guard.toString() +
                             "' is not gated on " + (want ? "" : "!") + done);
              break;
            }
          }
        }
        if (hold) hasHold = true;
      }
    }
    if (!hasHold) {
      report.add("MDL009", artifact, waitName,
                 "wait state cannot hold: no !" + done + " self-loop");
    }
  }

  // The wrap-around edges (back to the initial state) must pulse DONE.
  const int init = seq.initial();
  for (std::size_t s = 0; s < seq.numStates(); ++s) {
    for (const fsm::Transition* t : seq.transitionsFrom(static_cast<int>(s))) {
      if (t->to != init || t->from == init) continue;
      if (std::find(t->outputs.begin(), t->outputs.end(),
                    fsm::kSequencerDoneSignal) == t->outputs.end()) {
        report.add("MDL009", artifact, seq.stateName(t->from),
                   std::string("wrap-around to ") + seq.stateName(init) +
                       " does not pulse " + fsm::kSequencerDoneSignal);
      }
    }
  }

  report.add("MDL010", artifact, "",
             std::to_string(hcu.leaves.size()) + " leaf networks, " +
                 std::to_string(activations.size()) + " activations, " +
                 std::to_string(seq.numStates()) + " sequencer states, " +
                 std::to_string(hcu.totalFlipFlops()) + " flip-flops, " +
                 std::to_string(hcu.completionLatchCount()) +
                 " completion latches (program " + program.name + ")");
}

}  // namespace tauhls::verify
