#include "verify/netlist_check.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "netlist/build.hpp"

namespace tauhls::verify {

// ---- gate IR -------------------------------------------------------------

namespace {

// Builds "n<id>" without operator+(const char*, string&&), which trips a
// gcc-12 -Wrestrict false positive under -O2.
std::string netLabel(netlist::NetId id) {
  std::string s = "n";
  s += std::to_string(id);
  return s;
}

}  // namespace

void lintNetlist(const netlist::Netlist& net, Report& report) {
  const std::string artifact = "netlist " + net.name();
  const std::size_t n = net.numGates();

  std::vector<int> fanoutCount(n, 0);
  std::vector<bool> isOutput(n, false);
  for (const auto& [name, id] : net.outputs()) {
    if (id < n) isOutput[id] = true;
  }

  for (netlist::NetId id = 0; id < n; ++id) {
    const netlist::Gate& g = net.gate(id);
    const std::size_t arity = g.fanins.size();
    switch (g.kind) {
      case netlist::GateKind::Input:
      case netlist::GateKind::Const0:
      case netlist::GateKind::Const1:
        if (arity != 0) {
          report.add("NET008", artifact, g.name,
                     std::string(netlist::gateKindName(g.kind)) + " gate has " +
                         std::to_string(arity) + " fanins");
        }
        break;
      case netlist::GateKind::Inv:
        if (arity != 1) {
          report.add("NET008", artifact, netLabel(id),
                     "INV gate has " + std::to_string(arity) + " fanins");
        }
        break;
      case netlist::GateKind::And:
      case netlist::GateKind::Or:
        if (arity < 2) {
          report.add("NET008", artifact, netLabel(id),
                     std::string(netlist::gateKindName(g.kind)) +
                         " gate has " + std::to_string(arity) + " fanins");
        }
        break;
    }
    for (const netlist::NetId f : g.fanins) {
      if (f >= id) {
        // The IR's acyclicity invariant: fanins reference earlier nets.
        report.add("NET001", artifact, netLabel(id),
                   "fanin " + netLabel(f) +
                       " does not precede the gate (cyclic reference)");
      } else {
        ++fanoutCount[f];
      }
    }
  }

  for (netlist::NetId id = 0; id < n; ++id) {
    const netlist::Gate& g = net.gate(id);
    if (fanoutCount[id] > 0 || isOutput[id]) continue;
    if (g.kind == netlist::GateKind::Input) {
      report.add("NET006", artifact, g.name, "primary input drives no gate");
    } else if (g.kind != netlist::GateKind::Const0 &&
               g.kind != netlist::GateKind::Const1) {
      report.add("NET007", artifact, netLabel(id),
                 std::string(netlist::gateKindName(g.kind)) +
                     " gate drives nothing");
    }
  }
}

// ---- parsed RTL ----------------------------------------------------------

namespace {

void collectExprRefs(const vsim::Expr* e, std::set<std::string>& refs) {
  if (e == nullptr) return;
  if (e->kind == vsim::ExprKind::Ref) refs.insert(e->name);
  for (const vsim::ExprPtr& a : e->args) collectExprRefs(a.get(), refs);
}

void collectStmtRefs(const std::vector<vsim::StmtPtr>& body,
                     std::set<std::string>& reads,
                     std::set<std::string>& writes) {
  for (const vsim::StmtPtr& s : body) {
    switch (s->kind) {
      case vsim::StmtKind::Assign:
        collectExprRefs(s->rhs.get(), reads);
        writes.insert(s->lhs);
        break;
      case vsim::StmtKind::If:
        collectExprRefs(s->condition.get(), reads);
        collectStmtRefs(s->thenBody, reads, writes);
        collectStmtRefs(s->elseBody, reads, writes);
        break;
      case vsim::StmtKind::Case:
        collectExprRefs(s->subject.get(), reads);
        for (const vsim::CaseArm& arm : s->arms) {
          collectExprRefs(arm.label.get(), reads);
          collectStmtRefs(arm.body, reads, writes);
        }
        break;
    }
  }
}

/// Constant value of an expression when statically known (consts and
/// localparam references).
std::optional<std::uint64_t> constValueOf(const vsim::Module& m,
                                          const vsim::Expr* e) {
  if (e == nullptr) return std::nullopt;
  if (e->kind == vsim::ExprKind::Const) return e->value;
  if (e->kind == vsim::ExprKind::Ref) {
    const auto it = m.localparams.find(e->name);
    if (it != m.localparams.end()) return it->second;
  }
  return std::nullopt;
}

struct ModuleIndex {
  std::map<std::string, int> widthOf;  ///< declared nets and ports
  std::set<std::string> inputs;
  std::set<std::string> outputs;
};

ModuleIndex indexModule(const vsim::Module& m) {
  ModuleIndex idx;
  for (const vsim::Port& p : m.ports) {
    idx.widthOf.emplace(p.name, 1);
    (p.dir == vsim::PortDir::Input ? idx.inputs : idx.outputs).insert(p.name);
  }
  for (const vsim::NetDecl& d : m.nets) {
    idx.widthOf[d.name] = d.width;  // refines a port's default width
  }
  return idx;
}

/// Declared width of a pure reference, when the expression is one.
std::optional<int> refWidth(const ModuleIndex& idx, const vsim::Expr* e) {
  if (e == nullptr || e->kind != vsim::ExprKind::Ref) return std::nullopt;
  const auto it = idx.widthOf.find(e->name);
  if (it == idx.widthOf.end()) return std::nullopt;
  return it->second;
}

bool fitsWidth(std::uint64_t value, int width) {
  if (width >= 64) return true;
  return value < (std::uint64_t{1} << width);
}

/// NET004 checks inside one expression tree: constants compared against or
/// assigned to a reference must fit its declared width.
void checkExprWidths(const vsim::Module& m, const ModuleIndex& idx,
                     const std::string& artifact, const vsim::Expr* e,
                     Report& report) {
  if (e == nullptr) return;
  if (e->kind == vsim::ExprKind::Eq || e->kind == vsim::ExprKind::NotEq) {
    for (int side = 0; side < 2 && e->args.size() == 2; ++side) {
      const std::optional<int> w = refWidth(idx, e->args[side ? 1 : 0].get());
      const std::optional<std::uint64_t> v =
          constValueOf(m, e->args[side ? 0 : 1].get());
      if (w.has_value() && v.has_value() && !fitsWidth(*v, *w)) {
        report.add("NET004", artifact, e->args[side ? 1 : 0]->name,
                   "compared against constant " + std::to_string(*v) +
                       " which does not fit " + std::to_string(*w) + " bit(s)");
      }
    }
  }
  for (const vsim::ExprPtr& a : e->args) {
    checkExprWidths(m, idx, artifact, a.get(), report);
  }
}

void checkStmtWidths(const vsim::Module& m, const ModuleIndex& idx,
                     const std::string& artifact,
                     const std::vector<vsim::StmtPtr>& body, Report& report) {
  for (const vsim::StmtPtr& s : body) {
    switch (s->kind) {
      case vsim::StmtKind::Assign: {
        checkExprWidths(m, idx, artifact, s->rhs.get(), report);
        const auto lw = idx.widthOf.find(s->lhs);
        const std::optional<std::uint64_t> v = constValueOf(m, s->rhs.get());
        if (lw != idx.widthOf.end() && v.has_value() &&
            !fitsWidth(*v, lw->second)) {
          report.add("NET004", artifact, s->lhs,
                     "assigned constant " + std::to_string(*v) +
                         " which does not fit " + std::to_string(lw->second) +
                         " bit(s)");
        }
        break;
      }
      case vsim::StmtKind::If:
        checkExprWidths(m, idx, artifact, s->condition.get(), report);
        checkStmtWidths(m, idx, artifact, s->thenBody, report);
        checkStmtWidths(m, idx, artifact, s->elseBody, report);
        break;
      case vsim::StmtKind::Case: {
        checkExprWidths(m, idx, artifact, s->subject.get(), report);
        const std::optional<int> sw = refWidth(idx, s->subject.get());
        for (const vsim::CaseArm& arm : s->arms) {
          const std::optional<std::uint64_t> v =
              constValueOf(m, arm.label.get());
          if (sw.has_value() && v.has_value() && !fitsWidth(*v, *sw)) {
            report.add("NET004", artifact, s->subject->name,
                       "case label " + std::to_string(*v) +
                           " does not fit " + std::to_string(*sw) + " bit(s)");
          }
          checkStmtWidths(m, idx, artifact, arm.body, report);
        }
        break;
      }
    }
  }
}

/// Report one combinational cycle (if any) in the signal dependence graph.
void reportCombCycle(const std::map<std::string, std::set<std::string>>& deps,
                     const std::string& artifact, Report& report) {
  // Iterative DFS with tricolor marking; the first back edge yields a cycle.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  for (const auto& [start, ignored] : deps) {
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, std::vector<std::string>>> stack;
    std::vector<std::string> path;
    stack.push_back({start, {}});
    while (!stack.empty()) {
      auto& [node, pending] = stack.back();
      if (color[node] == 0) {
        color[node] = 1;
        path.push_back(node);
        const auto it = deps.find(node);
        if (it != deps.end()) {
          pending.assign(it->second.begin(), it->second.end());
        }
      }
      if (pending.empty()) {
        color[node] = 2;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string next = pending.back();
      pending.pop_back();
      if (color[next] == 1) {
        std::string cycle;
        const auto begin = std::find(path.begin(), path.end(), next);
        for (auto it = begin; it != path.end(); ++it) cycle += *it + " -> ";
        cycle += next;
        report.add("NET001", artifact, next, "combinational cycle: " + cycle);
        return;
      }
      if (color[next] == 0) stack.push_back({next, {}});
    }
  }
}

void lintModule(const vsim::Design& design, const vsim::Module& m,
                Report& report) {
  const std::string artifact = "rtl " + m.name;
  const ModuleIndex idx = indexModule(m);

  // Driver and reader maps across all construct kinds.
  std::map<std::string, std::vector<std::string>> driversOf;
  std::set<std::string> reads;
  std::map<std::string, std::set<std::string>> combDeps;  // lhs -> read refs

  for (const vsim::ContinuousAssign& a : m.assigns) {
    driversOf[a.lhs].push_back("assign");
    std::set<std::string> rhsRefs;
    collectExprRefs(a.rhs.get(), rhsRefs);
    reads.insert(rhsRefs.begin(), rhsRefs.end());
    combDeps[a.lhs].insert(rhsRefs.begin(), rhsRefs.end());
    checkExprWidths(m, idx, artifact, a.rhs.get(), report);
  }

  for (const vsim::GateInst& g : m.gates) {
    driversOf[g.output].push_back(g.kind + " gate");
    const std::size_t want = g.kind == "not" ? 1 : 2;
    if ((g.kind == "not" && g.inputs.size() != 1) ||
        (g.kind != "not" && g.inputs.size() < want)) {
      report.add("NET008", artifact, g.output,
                 g.kind + " gate has " + std::to_string(g.inputs.size()) +
                     " inputs");
    }
    for (const std::string& in : g.inputs) {
      reads.insert(in);
      combDeps[g.output].insert(in);
      const auto w = idx.widthOf.find(in);
      if (w != idx.widthOf.end() && w->second != 1) {
        report.add("NET004", artifact, in,
                   "connects a " + std::to_string(w->second) +
                       "-bit net to a 1-bit " + g.kind + " gate pin");
      }
    }
    const auto w = idx.widthOf.find(g.output);
    if (w != idx.widthOf.end() && w->second != 1) {
      report.add("NET004", artifact, g.output,
                 "a 1-bit " + g.kind + " gate drives a " +
                     std::to_string(w->second) + "-bit net");
    }
  }

  for (const vsim::AlwaysBlock& b : m.always) {
    std::set<std::string> blockReads;
    std::set<std::string> blockWrites;
    collectStmtRefs(b.body, blockReads, blockWrites);
    checkStmtWidths(m, idx, artifact, b.body, report);
    reads.insert(blockReads.begin(), blockReads.end());
    if (b.sequential) reads.insert("clk");
    for (const std::string& w : blockWrites) {
      driversOf[w].push_back(b.sequential ? "sequential always"
                                          : "combinational always");
      if (!b.sequential) {
        combDeps[w].insert(blockReads.begin(), blockReads.end());
      }
    }
  }

  for (const vsim::Instance& inst : m.instances) {
    const vsim::Module* inner = design.findModule(inst.moduleName);
    if (inner == nullptr) {
      report.add("NET005", artifact, inst.instanceName,
                 "instantiates unknown module " + inst.moduleName);
      continue;
    }
    for (const auto& [port, outer] : inst.connections) {
      const auto pit =
          std::find_if(inner->ports.begin(), inner->ports.end(),
                       [&](const vsim::Port& p) { return p.name == port; });
      if (pit == inner->ports.end()) {
        report.add("NET005", artifact, inst.instanceName,
                   "connects missing port " + port + " of module " +
                       inst.moduleName);
        continue;
      }
      if (pit->dir == vsim::PortDir::Output) {
        driversOf[outer].push_back("instance " + inst.instanceName);
      } else {
        reads.insert(outer);
      }
      // Instances stay opaque in combDeps: cross-instance feedback is a
      // functional question (checkControlLoops), not a structural one.
    }
  }

  // NET003: more than one driver for a signal.
  for (const auto& [sig, drivers] : driversOf) {
    if (drivers.size() > 1) {
      std::string kinds;
      for (const std::string& d : drivers) {
        if (!kinds.empty()) kinds += ", ";
        kinds += d;
      }
      report.add("NET003", artifact, sig, "driven by " + kinds);
    }
  }

  // NET002: read or exported signals nothing drives.
  auto isDriven = [&](const std::string& sig) {
    if (driversOf.contains(sig)) return true;
    if (idx.inputs.contains(sig)) return true;
    if (m.localparams.contains(sig)) return true;
    // wire n = <expr>; declarations carry their driver inline.
    return std::any_of(m.nets.begin(), m.nets.end(), [&](const vsim::NetDecl& d) {
      return d.name == sig && d.init != nullptr;
    });
  };
  for (const std::string& sig : reads) {
    if (!isDriven(sig)) {
      report.add("NET002", artifact, sig, "read but never driven");
    }
  }
  for (const std::string& out : idx.outputs) {
    if (!isDriven(out)) {
      report.add("NET002", artifact, out, "output port is never driven");
    }
  }

  // NET006 / NET007: dead declarations.
  for (const std::string& in : idx.inputs) {
    if (!reads.contains(in)) {
      report.add("NET006", artifact, in, "input port is never read");
    }
  }
  for (const vsim::NetDecl& d : m.nets) {
    if (idx.inputs.contains(d.name) || idx.outputs.contains(d.name)) continue;
    if (!reads.contains(d.name) && (driversOf.contains(d.name) || d.init)) {
      report.add("NET007", artifact, d.name, "declared net is never read");
    }
  }

  // NET001: intra-module combinational cycles (instances opaque).
  reportCombCycle(combDeps, artifact, report);
}

}  // namespace

void lintRtl(const vsim::Design& design, Report& report) {
  for (const vsim::Module& m : design.modules) lintModule(design, m, report);
}

// ---- functional cross-controller loops -----------------------------------

namespace {

/// Structural support (primary input names) of `target` in `net`.
std::set<std::string> structuralSupport(const netlist::Netlist& net,
                                        netlist::NetId target) {
  std::set<std::string> support;
  std::vector<bool> seen(net.numGates(), false);
  std::vector<netlist::NetId> stack = {target};
  while (!stack.empty()) {
    const netlist::NetId id = stack.back();
    stack.pop_back();
    if (id >= net.numGates() || seen[id]) continue;
    seen[id] = true;
    const netlist::Gate& g = net.gate(id);
    if (g.kind == netlist::GateKind::Input) support.insert(g.name);
    for (const netlist::NetId f : g.fanins) stack.push_back(f);
  }
  return support;
}

/// Exact functional dependence of output net `target` on input `x`,
/// enumerated over the (small) structural support.  Falls back to the
/// structural answer when the support is too large to enumerate.
bool functionallyDepends(const netlist::Netlist& net, netlist::NetId target,
                         const std::string& x,
                         const std::set<std::string>& support) {
  if (!support.contains(x)) return false;
  std::vector<std::string> others;
  for (const std::string& s : support) {
    if (s != x) others.push_back(s);
  }
  if (others.size() > 18) return true;  // conservative: assume dependence
  for (std::uint64_t a = 0; a < (std::uint64_t{1} << others.size()); ++a) {
    std::unordered_set<std::string> asserted;
    for (std::size_t i = 0; i < others.size(); ++i) {
      if ((a >> i) & 1) asserted.insert(others[i]);
    }
    const bool low = net.evaluate(asserted)[target];
    asserted.insert(x);
    const bool high = net.evaluate(asserted)[target];
    if (low != high) return true;
  }
  return false;
}

}  // namespace

void checkControlLoops(const fsm::DistributedControlUnit& dcu,
                       const std::string& name, Report& report) {
  const std::string artifact = "controllers " + name;

  // Dependence edges CCO_a -> CCO_b: the controller producing b combinationally
  // reads a in b's output function (through the latch's live-pulse bypass).
  std::map<std::string, std::set<std::string>> deps;
  for (const fsm::UnitController& ctl : dcu.controllers) {
    const netlist::ControllerNetlist cn =
        netlist::buildControllerNetlist(ctl.fsm);
    for (const auto& [outName, outNet] : cn.net.outputs()) {
      if (!dcu.producerOf.contains(outName)) continue;  // not a CCO wire
      const std::set<std::string> support =
          structuralSupport(cn.net, outNet);
      for (const std::string& in : support) {
        if (!dcu.producerOf.contains(in)) continue;  // state bit or C_T
        if (functionallyDepends(cn.net, outNet, in, support)) {
          deps[outName].insert(in);
        }
      }
    }
  }
  reportCombCycle(deps, artifact, report);
}

}  // namespace tauhls::verify
