#include "verify/lowering.hpp"

#include <algorithm>
#include <bit>
#include <tuple>
#include <utility>

#include "common/error.hpp"

namespace tauhls::verify::lowering {

using aig::Aig;
using aig::kLitFalse;
using aig::kLitTrue;
using aig::Lit;

ControllerContext::ControllerContext(const fsm::Fsm& f,
                                     synth::EncodingStyle style)
    : fsm(&f), enc(synth::encodeStates(f, style)) {
  for (int b = 0; b < enc.bits; ++b) {
    stateBits.push_back(g.addInput("state" + std::to_string(b)));
  }
  for (const std::string& in : f.inputs()) {
    inputOf.emplace(in, g.addInput(in));
  }
  for (std::size_t s = 0; s < f.numStates(); ++s) {
    valid = g.orLit(valid, stateMatch(static_cast<int>(s)));
  }
}

Lit ControllerContext::stateMatch(int s) {
  Lit acc = kLitTrue;
  for (int b = 0; b < enc.bits; ++b) {
    const bool bit = (enc.codeOf[static_cast<std::size_t>(s)] >> b) & 1u;
    acc = g.andLit(acc, bit ? stateBits[static_cast<std::size_t>(b)]
                            : aig::negate(stateBits[static_cast<std::size_t>(b)]));
  }
  return acc;
}

Lit ControllerContext::guardLit(const fsm::Guard& guard) {
  Lit acc = kLitFalse;
  for (const fsm::GuardTerm& term : guard.terms()) {
    Lit t = kLitTrue;
    for (const auto& [sig, positive] : term.literals) {
      const Lit in = inputOf.at(sig);
      t = g.andLit(t, positive ? in : aig::negate(in));
    }
    acc = g.orLit(acc, t);
  }
  return acc;
}

std::vector<std::string> ControllerContext::functionNames() const {
  std::vector<std::string> names;
  for (int b = 0; b < enc.bits; ++b) names.push_back("ns" + std::to_string(b));
  for (const std::string& o : fsm->outputs()) names.push_back(o);
  return names;
}

// --- representation 1: the FSM specification -------------------------------

FnMap specFunctions(ControllerContext& ctx) {
  const fsm::Fsm& f = *ctx.fsm;
  std::vector<Lit> ns(static_cast<std::size_t>(ctx.enc.bits), kLitFalse);
  std::map<std::string, Lit> out;
  for (const std::string& o : f.outputs()) out[o] = kLitFalse;
  for (const fsm::Transition& t : f.transitions()) {
    const Lit fire = ctx.g.andLit(ctx.stateMatch(t.from), ctx.guardLit(t.guard));
    const std::uint32_t code = ctx.enc.codeOf[static_cast<std::size_t>(t.to)];
    for (int b = 0; b < ctx.enc.bits; ++b) {
      if ((code >> b) & 1u) {
        ns[static_cast<std::size_t>(b)] =
            ctx.g.orLit(ns[static_cast<std::size_t>(b)], fire);
      }
    }
    for (const std::string& o : t.outputs) out[o] = ctx.g.orLit(out[o], fire);
  }
  FnMap fns;
  for (int b = 0; b < ctx.enc.bits; ++b) {
    fns.emplace_back("ns" + std::to_string(b), ns[static_cast<std::size_t>(b)]);
  }
  for (const std::string& o : f.outputs()) fns.emplace_back(o, out.at(o));
  return fns;
}

// --- representation 2: the minimized two-level covers ----------------------

Lit coverLit(ControllerContext& ctx, const logic::Cover& cover) {
  // Cover variable order (synth/extract.hpp): state bits LSB first, then
  // the declared input signals.
  Lit acc = kLitFalse;
  for (const logic::Cube& cube : cover.cubes()) {
    Lit term = kLitTrue;
    for (int v = 0; v < cover.numVars(); ++v) {
      if (!cube.hasLiteral(v)) continue;
      Lit var;
      if (v < ctx.enc.bits) {
        var = ctx.stateBits[static_cast<std::size_t>(v)];
      } else {
        var = ctx.inputOf.at(
            ctx.fsm->inputs()[static_cast<std::size_t>(v - ctx.enc.bits)]);
      }
      term = ctx.g.andLit(term, cube.literalPositive(v) ? var : aig::negate(var));
    }
    acc = ctx.g.orLit(acc, term);
  }
  return acc;
}

FnMap coverFunctions(ControllerContext& ctx, const synth::SynthesizedFsm& syn) {
  FnMap fns;
  for (std::size_t b = 0; b < syn.nextStateLogic.size(); ++b) {
    fns.emplace_back("ns" + std::to_string(b),
                     coverLit(ctx, syn.nextStateLogic[b]));
  }
  for (std::size_t o = 0; o < syn.outputLogic.size(); ++o) {
    fns.emplace_back(ctx.fsm->outputs()[o], coverLit(ctx, syn.outputLogic[o]));
  }
  return fns;
}

// --- representation 3: the gate netlist ------------------------------------

FnMap netlistFunctions(ControllerContext& ctx, const netlist::Netlist& net) {
  std::vector<Lit> value(net.numGates(), kLitFalse);
  for (netlist::NetId i = 0; i < net.numGates(); ++i) {
    const netlist::Gate& gate = net.gate(i);
    switch (gate.kind) {
      case netlist::GateKind::Input: {
        Lit in = ctx.g.findInput(gate.name);
        // An input the spec does not know becomes a fresh free variable, so
        // any dependence on it surfaces as a counterexample.
        if (in == kLitFalse) in = ctx.g.addInput(gate.name);
        value[i] = in;
        break;
      }
      case netlist::GateKind::Const0:
        value[i] = kLitFalse;
        break;
      case netlist::GateKind::Const1:
        value[i] = kLitTrue;
        break;
      case netlist::GateKind::Inv:
        value[i] = aig::negate(value[gate.fanins[0]]);
        break;
      case netlist::GateKind::And:
      case netlist::GateKind::Or: {
        std::vector<Lit> fanins;
        for (const netlist::NetId f : gate.fanins) fanins.push_back(value[f]);
        value[i] = gate.kind == netlist::GateKind::And ? ctx.g.andN(fanins)
                                                       : ctx.g.orN(fanins);
        break;
      }
    }
  }
  FnMap fns;
  for (const auto& [name, id] : net.outputs()) fns.emplace_back(name, value[id]);
  return fns;
}

// --- representation 4: the reparsed emitted Verilog ------------------------

SymbolicEval::SymbolicEval(Aig& g, const vsim::Module& m)
    : g_(g), module_(m) {
  for (const vsim::NetDecl& d : m.nets) width_[d.name] = d.width;
}

int SymbolicEval::widthOf(const std::string& name) const {
  const auto it = width_.find(name);
  return it == width_.end() ? 1 : it->second;
}

void SymbolicEval::runCombinational(Env& env) {
  for (const vsim::NetDecl& d : module_.nets) {
    if (d.init) env[d.name] = resize(eval(*d.init, env), widthOf(d.name));
  }
  for (const vsim::ContinuousAssign& a : module_.assigns) {
    env[a.lhs] = resize(eval(*a.rhs, env), widthOf(a.lhs));
  }
  for (const vsim::AlwaysBlock& blk : module_.always) {
    if (!blk.sequential) exec(blk.body, env);
  }
}

void SymbolicEval::runSequential(Env& env) {
  for (const vsim::AlwaysBlock& blk : module_.always) {
    if (blk.sequential) exec(blk.body, env);
  }
}

Lit SymbolicEval::nonzero(const std::vector<Lit>& bits) { return g_.orN(bits); }

std::vector<Lit> SymbolicEval::eval(const vsim::Expr& e, const Env& env) {
  switch (e.kind) {
    case vsim::ExprKind::Const: {
      const int w = e.width > 0 ? e.width
                                : std::max(1, 64 - std::countl_zero(
                                                    e.value | 1ull));
      std::vector<Lit> bits;
      for (int b = 0; b < w; ++b) {
        bits.push_back((e.value >> b) & 1ull ? kLitTrue : kLitFalse);
      }
      return bits;
    }
    case vsim::ExprKind::Ref: {
      const auto lp = module_.localparams.find(e.name);
      if (lp != module_.localparams.end()) {
        vsim::Expr c;
        c.kind = vsim::ExprKind::Const;
        c.value = lp->second;
        return eval(c, env);
      }
      const auto it = env.find(e.name);
      TAUHLS_CHECK(it != env.end(),
                   "symbolic evaluation: unbound signal '" + e.name + "'");
      return it->second;
    }
    case vsim::ExprKind::Not:
      return {aig::negate(nonzero(eval(*e.args[0], env)))};
    case vsim::ExprKind::And:
      return {g_.andLit(nonzero(eval(*e.args[0], env)),
                        nonzero(eval(*e.args[1], env)))};
    case vsim::ExprKind::Or:
      return {g_.orLit(nonzero(eval(*e.args[0], env)),
                       nonzero(eval(*e.args[1], env)))};
    case vsim::ExprKind::Xor:
      return {g_.xorLit(nonzero(eval(*e.args[0], env)),
                        nonzero(eval(*e.args[1], env)))};
    case vsim::ExprKind::Eq:
    case vsim::ExprKind::NotEq: {
      std::vector<Lit> a = eval(*e.args[0], env);
      std::vector<Lit> b = eval(*e.args[1], env);
      const std::size_t w = std::max(a.size(), b.size());
      const Lit eq = g_.eqVec(resize(a, static_cast<int>(w)),
                              resize(b, static_cast<int>(w)));
      return {e.kind == vsim::ExprKind::Eq ? eq : aig::negate(eq)};
    }
    case vsim::ExprKind::Cond: {
      const Lit sel = nonzero(eval(*e.args[0], env));
      std::vector<Lit> t = eval(*e.args[1], env);
      std::vector<Lit> f = eval(*e.args[2], env);
      const std::size_t w = std::max(t.size(), f.size());
      t = resize(t, static_cast<int>(w));
      f = resize(f, static_cast<int>(w));
      std::vector<Lit> bits;
      for (std::size_t b = 0; b < w; ++b) {
        bits.push_back(g_.muxLit(sel, t[b], f[b]));
      }
      return bits;
    }
    case vsim::ExprKind::Concat: {
      // args are MSB first; the result vector is LSB first.
      std::vector<Lit> bits;
      for (std::size_t i = e.args.size(); i > 0; --i) {
        const std::vector<Lit> part = eval(*e.args[i - 1], env);
        bits.insert(bits.end(), part.begin(), part.end());
      }
      return bits;
    }
    case vsim::ExprKind::RedAnd:
      return {g_.andN(eval(*e.args[0], env))};
    case vsim::ExprKind::RedOr:
      return {g_.orN(eval(*e.args[0], env))};
    case vsim::ExprKind::RedXor: {
      Lit acc = kLitFalse;
      for (const Lit b : eval(*e.args[0], env)) acc = g_.xorLit(acc, b);
      return {acc};
    }
  }
  TAUHLS_FAIL("symbolic evaluation: unknown expression kind");
}

std::vector<Lit> SymbolicEval::resize(std::vector<Lit> bits, int width) {
  bits.resize(static_cast<std::size_t>(width), kLitFalse);  // zero-extend
  return bits;
}

void SymbolicEval::exec(const std::vector<vsim::StmtPtr>& stmts, Env& env) {
  for (const vsim::StmtPtr& s : stmts) {
    switch (s->kind) {
      case vsim::StmtKind::Assign:
        env[s->lhs] = resize(eval(*s->rhs, env), widthOf(s->lhs));
        break;
      case vsim::StmtKind::If: {
        const Lit cond = nonzero(eval(*s->condition, env));
        Env thenEnv = env;
        exec(s->thenBody, thenEnv);
        Env elseEnv = env;
        exec(s->elseBody, elseEnv);
        mergeEnv(cond, thenEnv, elseEnv, env);
        break;
      }
      case vsim::StmtKind::Case: {
        const std::vector<Lit> subject = eval(*s->subject, env);
        const vsim::CaseArm* defaultArm = nullptr;
        for (const vsim::CaseArm& arm : s->arms) {
          if (!arm.label) defaultArm = &arm;
        }
        execArms(s->arms, 0, subject, defaultArm, env);
        break;
      }
    }
  }
}

void SymbolicEval::execArms(const std::vector<vsim::CaseArm>& arms,
                            std::size_t idx, const std::vector<Lit>& subject,
                            const vsim::CaseArm* defaultArm, Env& env) {
  while (idx < arms.size() && !arms[idx].label) ++idx;
  if (idx == arms.size()) {
    if (defaultArm != nullptr) exec(defaultArm->body, env);
    return;
  }
  std::vector<Lit> label = eval(*arms[idx].label, env);
  const std::size_t w = std::max(subject.size(), label.size());
  std::vector<Lit> subj = subject;
  const Lit cond = g_.eqVec(resize(std::move(subj), static_cast<int>(w)),
                            resize(std::move(label), static_cast<int>(w)));
  Env thenEnv = env;
  exec(arms[idx].body, thenEnv);
  Env elseEnv = env;
  execArms(arms, idx + 1, subject, defaultArm, elseEnv);
  mergeEnv(cond, thenEnv, elseEnv, env);
}

void SymbolicEval::mergeEnv(Lit cond, const Env& thenEnv, const Env& elseEnv,
                            Env& out) {
  Env merged;
  for (const Env* side : {&thenEnv, &elseEnv}) {
    for (const auto& [name, bits] : *side) {
      if (merged.contains(name)) continue;
      const auto t = thenEnv.find(name);
      const auto f = elseEnv.find(name);
      const std::vector<Lit> zero(bits.size(), kLitFalse);
      const std::vector<Lit>& tb = t != thenEnv.end() ? t->second : zero;
      const std::vector<Lit>& fb = f != elseEnv.end() ? f->second : zero;
      std::vector<Lit> mb;
      for (std::size_t b = 0; b < bits.size(); ++b) {
        const Lit tl = b < tb.size() ? tb[b] : kLitFalse;
        const Lit fl = b < fb.size() ? fb[b] : kLitFalse;
        mb.push_back(g_.muxLit(cond, tl, fl));
      }
      merged[name] = std::move(mb);
    }
  }
  out = std::move(merged);
}

FnMap rtlFunctions(ControllerContext& ctx, const vsim::Module& m) {
  SymbolicEval eval(ctx.g, m);
  SymbolicEval::Env env;
  for (const vsim::Port& p : m.ports) {
    if (p.dir != vsim::PortDir::Input || p.name == "clk" || p.name == "rst") {
      continue;
    }
    const auto it = ctx.inputOf.find(p.name);
    env[p.name] = {it != ctx.inputOf.end() ? it->second
                                           : ctx.g.addInput("rtl_" + p.name)};
  }
  env["state"] = ctx.stateBits;
  eval.runCombinational(env);
  const auto ns = env.find("state_next");
  TAUHLS_CHECK(ns != env.end(),
               "emitted controller lacks a state_next assignment");
  FnMap fns;
  for (int b = 0; b < ctx.enc.bits; ++b) {
    const std::size_t sb = static_cast<std::size_t>(b);
    fns.emplace_back("ns" + std::to_string(b),
                     sb < ns->second.size() ? ns->second[sb] : kLitFalse);
  }
  for (const std::string& o : ctx.fsm->outputs()) {
    const auto it = env.find(o);
    TAUHLS_CHECK(it != env.end(),
                 "emitted controller never assigns output '" + o + "'");
    fns.emplace_back(o, eval.nonzero(it->second));
  }
  return fns;
}

// --- counterexample decoding ------------------------------------------------

std::string describeCounterexample(const ControllerContext& ctx,
                                   const aig::CecResult& r) {
  std::uint32_t code = 0;
  std::string inputs;
  for (const auto& [name, value] : r.counterexample) {
    if (name.starts_with("state") && name.size() > 5 &&
        name.find_first_not_of("0123456789", 5) == std::string::npos) {
      if (value) code |= 1u << std::stoi(name.substr(5));
      continue;
    }
    if (!inputs.empty()) inputs += ", ";
    inputs += name + "=" + (value ? "1" : "0");
  }
  const int state = ctx.enc.stateOf(code);
  std::string out = "state=";
  out += state >= 0 ? ctx.fsm->stateName(state)
                    : "<code " + std::to_string(code) + ">";
  if (!inputs.empty()) out += ", " + inputs;
  return out;
}

}  // namespace tauhls::verify::lowering
